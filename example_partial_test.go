package iosched_test

import (
	"bytes"
	"fmt"
	"log"

	iosched "repro"
)

// ExampleMergeShardFilesPartial renders provisional results from an
// incomplete shard set — two of three shards — and then grows the cover
// to completion: the partial merge reports exactly what is missing, the
// partial aggregation is an honest estimate over the present cells, and
// the completed cover is byte-identical to the strict full merge.
func ExampleMergeShardFilesPartial() {
	params := iosched.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}
	files := make([]*iosched.ShardFile, 3)
	for i := range files {
		f, err := iosched.RunExperimentShard("fig5", params, 1, 3, i)
		if err != nil {
			log.Fatal(err)
		}
		files[i] = f
	}

	// Shard 1 has not arrived yet: merge what exists.
	cover, err := iosched.MergeShardFilesPartial([]*iosched.ShardFile{files[0], files[2]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial cover: %d/%d cells, missing shards %v\n",
		cover.CellsHave(), cover.CellsTotal(), cover.Missing)

	// Provisional Figure 5 over the present cells, with per-point coverage.
	res, cov, err := iosched.Fig5FromCellsPartial(params.Config(), cover.File.Runs[0].Cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisional points: %d, first point covers %s systems\n",
		len(res.Points), cov.Point(0))

	// The last shard arrives: the grown cover is complete and
	// byte-identical to the strict merge of all three files.
	grown, err := iosched.MergeShardFilesPartial([]*iosched.ShardFile{cover.File, files[1]})
	if err != nil {
		log.Fatal(err)
	}
	full, err := iosched.MergeShardFiles(files)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := grown.File.Encode()
	b, _ := full.Encode()
	fmt.Printf("complete: %v, byte-identical to the full merge: %v\n",
		grown.Complete(), bytes.Equal(a, b))
	// Output:
	// partial cover: 40/60 cells, missing shards [1]
	// provisional points: 15, first point covers 3/4 systems
	// complete: true, byte-identical to the full merge: true
}
