// Package iosched is the public facade of the reproduction of
// "Timing-Accurate General-Purpose I/O for Multi- and Many-Core Systems:
// Scheduling and Hardware Support" (Zhao et al., DAC 2020).
//
// It re-exports the task model, the two proposed scheduling methods (the
// Ψ-maximising heuristic and the multi-objective GA), the FPS and GPIOCP
// baselines, the quality metrics Ψ and Υ, the synthetic system generator,
// the cycle-accurate I/O controller with its NoC substrate, and the
// experiment registry that regenerates every table and figure of the
// paper — and any study registered alongside them.
//
// Quick start:
//
//	ts, _ := iosched.NewTaskSet([]iosched.Task{{
//		Name: "injector", C: 1 * iosched.Millisecond,
//		T: 20 * iosched.Millisecond, Delta: 8 * iosched.Millisecond,
//		Theta: 5 * iosched.Millisecond,
//	}})
//	ts.AssignDMPO()
//	ts.ApplyPaperQuality(1)
//	schedules, _ := iosched.ScheduleWith(ts, iosched.MethodStatic)
//	psi, upsilon := schedules.Metrics(iosched.LinearCurve)
//
// # Parallel execution
//
// Every compute-heavy layer runs on the deterministic parallel execution
// engine in internal/exec: device partitions are scheduled concurrently
// (ScheduleAllParallel), the GA evaluates population fitness in parallel
// chunks (GAOptions.Parallelism), and the experiment runners fan their
// systems × utilisation grids across a bounded worker pool
// (ExperimentConfig.Parallelism). The engine's invariant — enforced by
// the parallel/serial equivalence tests — is that parallelism only
// changes wall-clock time, never results: parallelism 1 and NumCPU
// produce byte-identical schedules, fronts and figures for the same
// seed. Pick Parallelism 0 (one worker per CPU) for throughput, 1 to
// debug serially, or an explicit bound to share a host; randomness is
// always derived per task from mixed sub-seeds, never drawn from a
// shared source across goroutines.
//
// # Experiment registry
//
// Every study is a registered Experiment: a named grid, a per-cell
// computation with a grid-path-derived seed, a versioned payload codec,
// and a fixed-order aggregation with render hooks. Experiments() lists
// them, RunExperiment runs one, and RegisterExperiment plugs a new study
// into running, sharding, dispatch, partial merges and the CLI at once —
// no per-experiment plumbing anywhere else. The per-figure entry points
// (Fig5, Fig6And7, the FromCells and FromCellsPartial variants) remain
// as deprecated wrappers over the same engines. docs/EXPERIMENTS.md
// walks through adding an experiment, using the tailq study as the
// worked example.
//
// # Sharding
//
// The same invariant extends across process — and machine — boundaries:
// every experiment grid cell derives its randomness from its
// (experiment, point, system) path, so any subset of cells can be
// evaluated anywhere
// and reassembled. RunExperimentShard evaluates one round-robin shard of
// an experiment selection and returns a versioned cell file
// (ShardFile.WriteFile/ReadShardFile); MergeShardFiles validates that N
// shard
// files form one complete, disjoint cover of the same run and returns
// the single-shard equivalent; ExperimentFromCells rebuilds the exact
// results an unsharded run
// produces. Cell files persist as indented JSON (v1) or as the compact
// binary/columnar container (v2, ShardEncodingBinary) — readers
// auto-detect per file, so covers may mix encodings freely.
// cmd/ioschedbench exposes the workflow as -shards,
// -shard-index, -out, -codec and the merge subcommand. Both shard file
// formats are specified in docs/SHARD_FORMAT.md.
//
// # Dispatch
//
// DispatchShards drives the whole sharded workflow fault-tolerantly: it
// fans the shard indices out to a pool of DispatchWorkers (local
// subprocesses via LocalProcWorker, arbitrary command templates — e.g.
// ssh — via CmdWorker), re-runs shards whose worker crashed, timed out or
// produced a corrupt or partial file, journals progress so an
// interrupted dispatch resumes by re-running only missing indices, and
// merges the complete cover. The work decomposition is pluggable
// (DispatchOptions.Balance): fixed round-robin shards, or cost-packed
// cell batches sized by a per-cell cost model that resumes refine with
// observed wall-clock; with DispatchOptions.Steal, idle workers race a
// duplicate copy of the heaviest straggler and the first completion
// wins. Because every cell's randomness derives from its grid path, a
// retried, re-split or stolen cell reproduces the lost one exactly, and
// dispatched output is byte-identical to the unsharded run for every
// decomposition. The CLI equivalent is "ioschedbench dispatch" with
// -balance and -steal.
//
// # Streaming
//
// A paper-scale sweep takes hours; nothing forces the operator to wait
// for the last shard before seeing anything. MergeShardFilesPartial
// merges whatever consistent subset of a run's shard files exists into a
// provisional cover with exact accounting of what is missing; the
// FromCellsPartial aggregators (Fig5FromCellsPartial, …) render
// provisional figures over the present cells with per-point coverage.
// DispatchShards streams the same information live: a typed
// progress-event stream (DispatchOptions.Progress, folded into per-shard
// state and an ETA by DispatchTracker), periodic auto-partial merges
// into the dispatch directory (DispatchOptions.PartialEvery), and a
// pure-reader view of any dispatch journal (ReadDispatchJournal). The
// invariant the whole subsystem preserves: partial output is computed by
// the exact aggregation code of the full run restricted to the present
// cells, so the moment the cover completes, the output is byte-identical
// to the unsharded run — provisional results converge to the final
// figures, never diverge from them. The CLI equivalents are
// "ioschedbench merge -partial", "ioschedbench dispatch -progress
// -partial-every" and "ioschedbench status"; the journal and
// progress-event schemas are specified in docs/DISPATCH.md.
//
// # Coordinator service
//
// DispatchShards drives one sweep from one process over a shared
// filesystem. NewCoordinator lifts the same engine into a long-running
// network service: workers connect over HTTP (RunCoordinatorWorker
// wraps any DispatchWorker as a protocol client), lease units, and push
// result files back over the wire — no shared filesystem. The
// coordinator multiplexes concurrent sweeps, journals each run in the
// dispatch journal schema so a restart resumes it, detects lost workers
// by heartbeat timeout and reassigns their units, and discards
// duplicate completions first-completion-wins — the merged output stays
// byte-identical to the unsharded run through every failure mode. The
// CLI equivalents are "ioschedbench serve", "work" and "submit"; the
// wire protocol is specified in docs/COORDINATOR.md, and the
// fault-injection test harness lives in internal/coord/coordtest.
//
// # Wall-clock replay
//
// Everything above evaluates schedules analytically. Replay executes
// one: each device partition gets a locked OS thread (pinned to a CPU
// where the platform allows), and a sleep-then-spin timer loop fires
// every schedule entry at its scaled instant against the real clock,
// recording intended-versus-actual dispatch times. The result is the
// delivered timing accuracy of this machine — jitter distributions,
// exact-dispatch counts, missed deadlines — rather than the scheduled
// quality. Such measurements are deliberately outside the determinism
// invariant: the jitter experiment registers as non-reproducible
// (ExperimentReproducible reports false), is excluded from the "all"
// selection, never enters the cell cache, and its shard files carry a
// HostFingerprint. ReplaySimClock substitutes a deterministic simulated
// clock for unit tests. The CLI equivalent is "ioschedbench replay";
// the harness is specified in docs/REPLAY.md.
package iosched

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/controller"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/hwcost"
	"repro/internal/noc"
	"repro/internal/quality"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Time units (integer microsecond time base).
type (
	// Time is an instant or duration on the scheduling timeline (µs).
	Time = timing.Time
	// Cycle is an instant or duration on the hardware timeline.
	Cycle = timing.Cycle
	// ClockHz is a controller clock frequency.
	ClockHz = timing.ClockHz
)

// Re-exported time constants.
const (
	Microsecond = timing.Microsecond
	Millisecond = timing.Millisecond
	Second      = timing.Second
	// HyperPeriod1440ms is the evaluation's hyper-period.
	HyperPeriod1440ms = timing.HyperPeriod1440ms
	// Clock100MHz is the default controller clock.
	Clock100MHz = timing.Clock100MHz
)

// Task model (Section II).
type (
	// Task is the timed I/O task 6-tuple {C, T, D, P, δ, θ}.
	Task = taskmodel.Task
	// TaskSet is an ordered set of tasks with DMPO and quality helpers.
	TaskSet = taskmodel.TaskSet
	// Job is one release λi^j with its absolute window.
	Job = taskmodel.Job
	// JobID identifies a job by task index and release index.
	JobID = taskmodel.JobID
	// DeviceID identifies an I/O device partition.
	DeviceID = taskmodel.DeviceID
)

// NewTaskSet validates and normalises a task set (implicit deadlines are
// filled in, IDs assigned by position).
func NewTaskSet(tasks []Task) (*TaskSet, error) { return taskmodel.NewTaskSet(tasks) }

// Scheduling (Section III).
type (
	// Schedule is an explicit per-device schedule.
	Schedule = sched.Schedule
	// DeviceSchedules maps device partitions to schedules.
	DeviceSchedules = sched.DeviceSchedules
	// Scheduler is the common scheduling interface.
	Scheduler = sched.Scheduler
	// StaticOptions configures the Ψ-maximising heuristic (Algorithm 1).
	StaticOptions = staticsched.Options
	// GAOptions configures the multi-objective GA.
	GAOptions = ga.Options
	// GAResult is the GA's non-dominated front.
	GAResult = ga.Result
	// GASolution is one front member.
	GASolution = ga.Solution
)

// ErrInfeasible is returned when no feasible schedule exists; test with
// errors.Is.
var ErrInfeasible = sched.ErrInfeasible

// Method names a scheduling method.
type Method = core.Method

// The available methods.
const (
	MethodStatic     = core.MethodStatic
	MethodGA         = core.MethodGA
	MethodFPSOffline = core.MethodFPSOffline
	MethodGPIOCP     = core.MethodGPIOCP
)

// NewStaticScheduler returns the paper's heuristic scheduler (Algorithm 1:
// dependency-graph decomposition + LCC-D allocation).
func NewStaticScheduler(opts StaticOptions) Scheduler { return staticsched.New(opts) }

// NewGAScheduler returns the multi-objective GA scheduler.
func NewGAScheduler(opts GAOptions) Scheduler { return &ga.Scheduler{Opts: opts} }

// NewFPSOffline returns the clairvoyant non-preemptive FPS baseline.
func NewFPSOffline() Scheduler { return fps.Offline{} }

// NewGPIOCP returns the GPIOCP FIFO baseline.
func NewGPIOCP() Scheduler { return gpiocp.Scheduler{} }

// GASolve runs the GA on one device partition's jobs and returns the
// non-dominated (Ψ, Υ) front.
func GASolve(jobs []Job, opts GAOptions) (*GAResult, error) { return ga.Solve(jobs, opts) }

// GAPaperOptions returns the paper's solver budget (population 300 × 500
// generations); GADefaultOptions the scaled-down default.
func GAPaperOptions() GAOptions   { return ga.PaperOptions() }
func GADefaultOptions() GAOptions { return ga.DefaultOptions() }

// ScheduleWith runs the named method on every device partition of the
// task set, one partition at a time.
func ScheduleWith(ts *TaskSet, m Method) (DeviceSchedules, error) {
	return ScheduleWithParallel(ts, m, 1)
}

// ScheduleWithParallel is ScheduleWith with the device partitions
// scheduled concurrently on a bounded worker pool (parallelism <= 0 means
// one worker per CPU). The result is identical at every parallelism.
func ScheduleWithParallel(ts *TaskSet, m Method, parallelism int) (DeviceSchedules, error) {
	var gaOpts *ga.Options
	if m == MethodGA {
		// The parallelism knob alone governs the goroutine budget here:
		// each GA solve runs serially inside its partition's worker, so
		// parallelism 1 really is single-threaded and parallelism N never
		// nests a second pool per partition. (Seed 1 matches
		// core.NewScheduler's nil-options default; for a parallel GA on a
		// single partition use GASolve with GAOptions.Parallelism.)
		o := ga.DefaultOptions()
		o.Seed = 1
		o.Parallelism = 1
		gaOpts = &o
	}
	s, err := core.NewScheduler(m, gaOpts)
	if err != nil {
		return nil, err
	}
	return sched.ScheduleAllParallel(ts, s, parallelism)
}

// ScheduleAllParallel runs the scheduler concurrently over the task set's
// device partitions; see ScheduleWithParallel for the parallelism
// semantics. When s is a GA scheduler, set its GAOptions.Parallelism to 1
// so the per-partition fitness pools do not nest inside this one.
func ScheduleAllParallel(ts *TaskSet, s Scheduler, parallelism int) (DeviceSchedules, error) {
	return sched.ScheduleAllParallel(ts, s, parallelism)
}

// FPSOnlineSchedulable applies the worst-case non-preemptive
// response-time analysis (the "FPS-online" baseline) to one partition's
// tasks.
func FPSOnlineSchedulable(tasks []Task) bool { return fps.Analyze(tasks).Schedulable }

// Quality model (Section II, Figure 1).
type (
	// Curve maps a job and start instant to a quality value.
	Curve = quality.Curve
	// StartTimes maps jobs to their start instants κ.
	StartTimes = quality.StartTimes
)

// LinearCurve is the paper's evaluation curve: Vmax at δ, linear decay to
// Vmin at δ±θ.
var LinearCurve Curve = quality.Linear{}

// ExponentialCurve returns a steeper, exponentially decaying quality curve
// (the paper notes curves are application-dependent).
func ExponentialCurve(sharpness float64) Curve { return quality.Exponential{Sharpness: sharpness} }

// PenalisedCurve wraps a curve with the paper's footnote-1 semantics: a
// fixed (typically large negative) value outside the timing boundary.
func PenalisedCurve(base Curve, penalty float64) Curve {
	return quality.Penalised{Base: base, Penalty: penalty}
}

// Psi returns Ψ = |exact jobs| / |jobs| (Equation 1).
func Psi(jobs []Job, starts StartTimes) (float64, error) { return quality.Psi(jobs, starts) }

// Upsilon returns Υ = ΣV(κ)/ΣV(δ) (Equation 2).
func Upsilon(jobs []Job, starts StartTimes, c Curve) (float64, error) {
	return quality.Upsilon(jobs, starts, c)
}

// Synthetic system generation (Section V-A).
type GenConfig = gen.Config

// PaperGenConfig returns the evaluation's generator parameterisation.
func PaperGenConfig() GenConfig { return gen.PaperConfig() }

// Hardware (Section IV).
type (
	// Kernel is the deterministic discrete-event simulator.
	Kernel = sim.Kernel
	// Controller is the proposed I/O controller (memory + per-device
	// processors).
	Controller = controller.Controller
	// ControllerProcessor is one per-device controller processor.
	ControllerProcessor = controller.Processor
	// Program is a pre-loaded I/O task command sequence.
	Program = controller.Program
	// Command is one EXU instruction.
	Command = controller.Command
	// GPIOBank is a pin bank with waveform capture.
	GPIOBank = device.GPIOBank
	// Mesh is the 2-D NoC.
	Mesh = noc.Mesh
	// System is a deployable timed-I/O system (tasks + programs +
	// devices).
	System = core.System
	// Deployment is a scheduled system running on the simulated
	// controller.
	Deployment = core.Deployment
)

// NewController returns a controller with the reference 32 KB memory.
func NewController() *Controller { return controller.New() }

// NewGPIOBank builds a GPIO bank device.
func NewGPIOBank(name string, pins int) (*GPIOBank, error) { return device.NewGPIOBank(name, pins) }

// Experiments (Section V) — the pluggable experiment registry; see
// cmd/ioschedbench for the CLI and docs/EXPERIMENTS.md for the "add an
// experiment" walkthrough.
type (
	// ExperimentConfig is the sweep configuration of the experiment
	// runners.
	ExperimentConfig = experiment.Config
	// Experiment is one registered study: grid, per-cell computation with
	// its derived-seed path, versioned payload codec, and fixed-order
	// aggregation with render hooks. Implement and register it to plug a
	// new study into running, sharding, dispatch, partial merges and the
	// CLI at once.
	Experiment = experiment.Experiment
	// ExperimentResult is a registered experiment's aggregated dataset.
	ExperimentResult = experiment.Result
	// ExperimentRunContext is the resolved configuration an experiment's
	// hooks see.
	ExperimentRunContext = experiment.RunContext
	// ExperimentCodec is an experiment's versioned cell-payload codec.
	ExperimentCodec = experiment.Codec
	// MotivationConfig parameterises the Section I latency experiment.
	MotivationConfig = experiment.MotivationConfig
)

// DefaultExperimentConfig returns the scaled-down experiment configuration;
// PaperScaleConfig the full 1000-system, GA-300×500 configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiment.Default() }
func PaperScaleConfig() ExperimentConfig        { return experiment.PaperScale() }

// Experiments returns the registered experiments in the canonical "all"
// order — the paper's five studies plus any study registered through
// RegisterExperiment.
func Experiments() []Experiment { return experiment.All() }

// LookupExperiment returns the registered experiment with the given
// name.
func LookupExperiment(name string) (Experiment, bool) { return experiment.Lookup(name) }

// RegisterExperiment adds a new study to the registry, wiring it into
// RunExperiment, RunExperimentShard, DispatchShards, the FromCells
// aggregators and the CLI's selection set at once. Registering a
// duplicate name panics.
func RegisterExperiment(e Experiment) { experiment.Register(e) }

// RunExperiment runs the named registered experiment in process:
// it evaluates the full cell grid (fanned across parallelism workers;
// <= 0 selects one per CPU) and aggregates it — the same two phases a
// sharded run splits across processes, so results are identical either
// way.
func RunExperiment(name string, p ShardParams, parallelism int) (ExperimentResult, error) {
	return experiment.Run(name, p.Context(parallelism))
}

// ExperimentFromCells rebuilds the named experiment's result from a
// complete (merged) cell set — identical to what RunExperiment computes
// in process.
func ExperimentFromCells(name string, p ShardParams, cells []ShardCell) (ExperimentResult, error) {
	return experiment.FromCells(name, p.Context(0), cells)
}

// ExperimentFromCellsPartial rebuilds a provisional result from any
// subset of the named experiment's grid cells, with exact coverage: the
// full run's aggregation restricted to the present cells. A nil result
// (with nil error) means the experiment has no provisional result for
// the subset.
func ExperimentFromCellsPartial(name string, p ShardParams, cells []ShardCell) (ExperimentResult, ExperimentCoverage, error) {
	return experiment.FromCellsPartial(name, p.Context(0), cells)
}

// Wall-clock replay (see the package comment's Wall-clock replay
// section and docs/REPLAY.md).
type (
	// ReplayOptions configures the replay harness: tick scale, horizon
	// cap, warmup, pinning and an optional injected clock.
	ReplayOptions = replay.Options
	// ReplayReport is one replay run's delivered-timing census.
	ReplayReport = replay.Report
	// ReplayStats is the reduced jitter distribution of a report.
	ReplayStats = replay.Stats
	// ReplaySample is one dispatch's intended-versus-actual record.
	ReplaySample = replay.Sample
	// ReplayDeviceReport is one executor thread's summary.
	ReplayDeviceReport = replay.DeviceReport
	// ReplayClock is the harness's injectable time source.
	ReplayClock = replay.Clock
	// ReplaySimClock is the deterministic simulated clock for tests.
	ReplaySimClock = replay.SimClock
)

// Replay executes the schedules in real time — one locked, pinned
// executor thread per device — and reports the delivered dispatch
// timing. With ReplayOptions.Clock set it replays deterministically
// against the injected clock instead.
func Replay(ds DeviceSchedules, opts ReplayOptions) (*ReplayReport, error) {
	return replay.Run(ds, opts)
}

// NewReplaySimClock returns a simulated clock whose Now costs poll
// cycles of simulated time (1 cycle = 1ns), for exact-expectation
// replay tests.
func NewReplaySimClock(poll Cycle) *ReplaySimClock { return replay.NewSimClock(poll) }

// ExperimentReproducible reports whether the experiment's cell payloads
// are a pure function of the seed (true for every analytic study). A
// non-reproducible experiment measures the host: it is excluded from
// the "all" selection, never cell-cached, and its shard files carry a
// host fingerprint.
func ExperimentReproducible(e Experiment) bool { return experiment.Reproducible(e) }

// HostFingerprint identifies the measuring machine
// (GOOS/GOARCH/CPU count/Go version) recorded in non-reproducible
// shard files.
func HostFingerprint() string { return experiment.HostFingerprint() }

// Fig5 regenerates Figure 5 (schedulability).
//
// Deprecated: use RunExperiment("fig5", …); this forwards to the same
// engine.
func Fig5(cfg ExperimentConfig) (*experiment.Fig5Result, error) { return experiment.Fig5(cfg) }

// Fig6And7 regenerates Figures 6 (Ψ) and 7 (Υ).
//
// Deprecated: use RunExperiment("fig6", …) and RunExperiment("fig7", …);
// this forwards to their shared cell grid.
func Fig6And7(cfg ExperimentConfig) (*experiment.FigQResult, *experiment.FigQResult, error) {
	return experiment.Fig6And7(cfg)
}

// Shard/merge workflow: split an experiment's cell grid across processes
// or machines and reassemble the exact single-process result (see the
// package comment's Sharding section).
type (
	// ShardFile is one shard process's versioned cell file.
	ShardFile = shard.File
	// ShardRun is one experiment's sharded cells inside a file.
	ShardRun = shard.Run
	// ShardCell is one evaluated grid cell with its derived seed.
	ShardCell = shard.Cell
	// ShardGrid gives a run's grid dimensions.
	ShardGrid = shard.Grid
	// ShardParams is the run parameterisation recorded in shard files.
	ShardParams = experiment.ShardParams
	// ExperimentCellSelector picks the grid cells a run evaluates; nil
	// selects all.
	ExperimentCellSelector = experiment.CellSelector
)

// RunExperimentShard evaluates shard index of shards for the selection
// ("all" or one experiment name) and returns the cell file to persist
// with ShardFile.WriteFile. Any shard may run at any parallelism on any
// host: merged results never depend on the decomposition.
func RunExperimentShard(selection string, p ShardParams, parallelism, shards, index int) (*ShardFile, error) {
	return experiment.RunShard(selection, p, parallelism, shards, index)
}

// ReadShardFile reads and validates one shard cell file.
func ReadShardFile(path string) (*ShardFile, error) { return shard.ReadFile(path) }

// MergeShardFiles validates that the files form one complete, disjoint
// cover of a single run's grids and returns the single-shard equivalent
// (cells complete, in grid order) ready for the FromCells aggregators.
func MergeShardFiles(files []*ShardFile) (*ShardFile, error) { return shard.Merge(files) }

// Shard files persist in one of two encodings, chosen per file at write
// time and auto-detected on every read (ReadShardFile accepts either, so
// mixed covers merge freely): the indented JSON container (v1) and the
// compact binary/columnar container (v2, roughly a tenth the bytes per
// cell at paper scale). ShardFile.WriteFileAs/EncodeAs select one
// explicitly; WriteFile keeps writing JSON. The CLI equivalent is the
// -codec flag; the v2 layout is specified in docs/SHARD_FORMAT.md.
const (
	// ShardEncodingJSON is the versioned, indented JSON container (v1).
	ShardEncodingJSON = shard.EncodingJSON
	// ShardEncodingBinary is the compact binary/columnar container (v2).
	ShardEncodingBinary = shard.EncodingBinary
)

// ShardPayloadCodec packs one experiment's cell payloads as a typed
// column inside the binary container; ExperimentCodec.Payload registers
// one alongside the experiment. Experiments without one still shard,
// merge and dispatch in either encoding — their payloads travel as a
// compact JSON column.
type ShardPayloadCodec = shard.PayloadCodec

// ParseShardEncoding normalises an encoding name ("" and "json" to
// ShardEncodingJSON, "binary" to ShardEncodingBinary) and rejects
// anything else — the validation behind every -codec flag.
func ParseShardEncoding(s string) (string, error) { return shard.ParseEncoding(s) }

// SniffShardFileEncoding reports which container encoding the file at
// path uses, without decoding it.
func SniffShardFileEncoding(path string) (string, error) { return shard.SniffFileEncoding(path) }

// ShardBatchInfo is the header marking a file as a cell batch: an
// explicit per-run cell set (the unit of cost-balanced dispatch) instead
// of a round-robin share. See docs/SHARD_FORMAT.md.
type ShardBatchInfo = shard.BatchInfo

// ParseCellSpec decodes a cell-batch spec ("fig5=0-7;fig6=2,5") into
// run names and per-run ascending global cell indices — the grammar of
// the CLI's -cells flag and the journal's batch events.
func ParseCellSpec(spec string) (names []string, cells [][]int, err error) {
	return shard.ParseCellSpec(spec)
}

// FormatCellSpec is ParseCellSpec's inverse.
func FormatCellSpec(names []string, cells [][]int) (string, error) {
	return shard.FormatCellSpec(names, cells)
}

// RunExperimentCells evaluates exactly the given cells (one ascending
// global-index set per run of the selection, parallel to the canonical
// run order) and returns the batch file to persist. Like any shard, a
// batch may run at any parallelism on any host: merged results never
// depend on the decomposition. The CLI equivalent is the -cells flag.
func RunExperimentCells(selection string, p ShardParams, parallelism int, cells [][]int) (*ShardFile, error) {
	return experiment.RunBatchCached(selection, p, parallelism, cells, nil)
}

// MergeShardBatches validates that the batch files cover every cell of a
// single run's grids and returns the single-shard equivalent plus the
// number of duplicate cells discarded. Unlike MergeShardFiles, inputs
// may overlap — work stealing legitimately computes a cell twice — and
// later copies are discarded first-completion-wins by cell key, which
// determinism makes safe: both copies are byte-identical.
func MergeShardBatches(files []*ShardFile) (*ShardFile, int, error) {
	return shard.MergeBatches(files)
}

// Streaming/partial merge: render provisional results from whatever
// shards exist, with exact coverage accounting, long before — and
// byte-identically converging to — the complete cover. See the package
// comment's Streaming section and docs/SHARD_FORMAT.md.
type (
	// ShardPartialCover is the merge of an incomplete shard subset: the
	// provisional single-shard-equivalent file plus per-run coverage and
	// the missing shard indices.
	ShardPartialCover = shard.PartialCover
	// ShardRunCoverage is one run's coverage inside a partial cover.
	ShardRunCoverage = shard.RunCoverage
	// ShardPartialInfo is the header a partial cover file carries.
	ShardPartialInfo = shard.PartialInfo
	// ExperimentCoverage reports how much of a grid a partial cell set
	// covers, per point.
	ExperimentCoverage = experiment.Coverage
)

// MergeShardFilesPartial merges any mutually-consistent subset of a
// run's shard files — including partial cover files from an earlier
// partial merge — without requiring completeness. The cover reports
// exactly which shards and cells are missing; its File feeds the
// FromCellsPartial aggregators for provisional figures, and re-merging it
// with the remaining shards converges byte-identically to
// MergeShardFiles of the full set. The CLI equivalent is
// "ioschedbench merge -partial".
func MergeShardFilesPartial(files []*ShardFile) (*ShardPartialCover, error) {
	return shard.MergePartial(files)
}

// Fig5FromCellsPartial rebuilds a provisional Figure 5 result from any
// subset of the grid's cells, with per-point coverage; a complete subset
// equals Fig5FromCells.
//
// Deprecated: use ExperimentFromCellsPartial("fig5", …); this forwards
// to the same engine.
func Fig5FromCellsPartial(cfg ExperimentConfig, cells []ShardCell) (*experiment.Fig5Result, ExperimentCoverage, error) {
	return experiment.Fig5FromCellsPartial(cfg, cells)
}

// Fig6And7FromCellsPartial rebuilds provisional Figures 6 and 7 results
// from any subset of their shared grid's cells; a complete subset equals
// Fig6And7FromCells.
//
// Deprecated: use ExperimentFromCellsPartial("fig6", …) and
// ExperimentFromCellsPartial("fig7", …); this forwards to them.
func Fig6And7FromCellsPartial(cfg ExperimentConfig, cells []ShardCell) (*experiment.FigQResult, *experiment.FigQResult, ExperimentCoverage, error) {
	return experiment.FigQFromCellsPartial(cfg, cells)
}

// Dispatched execution: a fault-tolerant driver that fans the shard
// indices of one run out to a pool of workers, retries lost, failed,
// corrupt and timed-out shards by index, journals progress so an
// interrupted dispatch resumes, and auto-merges the complete cover.
// DispatchOptions.Balance selects the decomposition (round-robin shards,
// or cost-packed cell batches refined by observed wall-clock on resume)
// and DispatchOptions.Steal lets idle workers race a duplicate copy of
// the heaviest straggler — first completion wins, duplicates are
// discarded by cell key, and every combination merges byte-identical to
// the unsharded run. See the package comment's Dispatch section,
// internal/dispatch and docs/DISPATCH.md.
type (
	// DispatchSpec names the dispatched run: selection, params, shards.
	DispatchSpec = dispatch.Spec
	// DispatchOptions tunes attempts, timeout, working directory and
	// logging.
	DispatchOptions = dispatch.Options
	// DispatchWorker evaluates one shard per call; implement it to add a
	// custom backend.
	DispatchWorker = dispatch.Worker
	// DispatchTask is one unit handed to a worker.
	DispatchTask = dispatch.Task
	// DispatchResult reports the merged file and the attempt/retry log.
	DispatchResult = dispatch.Result
	// DispatchAttempt records one worker attempt at one shard.
	DispatchAttempt = dispatch.Attempt
	// LocalProcWorker runs shards as local ioschedbench subprocesses.
	LocalProcWorker = dispatch.LocalProcWorker
	// CmdWorker runs shards through a user-supplied command template
	// (e.g. "ssh host ioschedbench {args} -out /dev/stdout").
	CmdWorker = dispatch.CmdWorker
	// DispatchProgressEvent is one event of the typed progress stream a
	// dispatch emits through DispatchOptions.Progress (schema version
	// dispatch.ProgressVersion; spec: docs/DISPATCH.md).
	DispatchProgressEvent = dispatch.ProgressEvent
	// DispatchTracker folds the progress stream into queryable snapshots
	// (per-shard state, counts, ETA) for live status displays.
	DispatchTracker = dispatch.Tracker
	// DispatchSnapshot is a Tracker's point-in-time view of a dispatch.
	DispatchSnapshot = dispatch.Snapshot
	// DispatchJournalState is the decoded state of a dispatch journal —
	// what the "ioschedbench status" subcommand prints.
	DispatchJournalState = dispatch.JournalState
)

// NewDispatchTracker returns an empty progress tracker; pass its Observe
// method through DispatchOptions.Progress.
func NewDispatchTracker() *DispatchTracker { return dispatch.NewTracker() }

// ReadDispatchJournal decodes the journal inside a dispatch directory —
// live, finished or dead — into its per-shard state, missing indices and
// failure log. It never writes, so it is safe against a running dispatch.
func ReadDispatchJournal(dir string) (*DispatchJournalState, error) {
	return dispatch.ReadJournalDir(dir)
}

// DispatchShards runs the spec's shards across the worker pool with
// per-shard retry and returns the merged single-shard equivalent —
// byte-identical (once encoded) to RunExperimentShard with shards 1. The
// CLI equivalent is "ioschedbench dispatch".
func DispatchShards(ctx context.Context, spec DispatchSpec, workers []DispatchWorker, opts DispatchOptions) (*DispatchResult, error) {
	return dispatch.Run(ctx, spec, workers, opts)
}

// Coordinator service: the network-native face of dispatch. A
// Coordinator owns a state directory of journalled runs; workers
// connect through CoordinatorClient (or RunCoordinatorWorker), sweep
// clients submit and observe through the same client. See the package
// comment's Coordinator section, internal/coord and docs/COORDINATOR.md.
type (
	// Coordinator is the long-running sweep coordinator service; serve
	// its Handler over HTTP and point workers at it.
	Coordinator = coord.Coordinator
	// CoordinatorOptions tunes heartbeat and lease timeouts, the attempt
	// budget and logging.
	CoordinatorOptions = coord.Options
	// CoordinatorClient speaks the coordinator's HTTP protocol: submit
	// and observe runs, or register/lease/push as a worker.
	CoordinatorClient = coord.Client
	// CoordinatorLease is one leased unit of work on the wire.
	CoordinatorLease = coord.Lease
	// CoordinatorSubmit is a sweep submission.
	CoordinatorSubmit = coord.SubmitRequest
	// CoordinatorRunStatus is one run's status as reported over the wire.
	CoordinatorRunStatus = coord.RunStatus
	// CoordinatorWorkerOptions configures RunCoordinatorWorker.
	CoordinatorWorkerOptions = coord.WorkerOptions
)

// NewCoordinator opens (or resumes) a coordinator over a state
// directory; every journaled run under it is restored. The CLI
// equivalent is "ioschedbench serve".
func NewCoordinator(dir string, opts CoordinatorOptions) (*Coordinator, error) {
	return coord.New(dir, opts)
}

// RunCoordinatorWorker serves a coordinator as one worker: register,
// heartbeat, lease units, compute them through any DispatchWorker, and
// push the results back. It returns when ctx is cancelled. The CLI
// equivalent is "ioschedbench work".
func RunCoordinatorWorker(ctx context.Context, cl *CoordinatorClient, name string, w DispatchWorker, opts CoordinatorWorkerOptions) error {
	return coord.RunWorker(ctx, cl, name, w, opts)
}

// Fig5FromCells rebuilds the Figure 5 result from a complete (merged)
// cell set — identical to what Fig5 computes in process.
//
// Deprecated: use ExperimentFromCells("fig5", …); this forwards to the
// same engine.
func Fig5FromCells(cfg ExperimentConfig, cells []ShardCell) (*experiment.Fig5Result, error) {
	return experiment.Fig5FromCells(cfg, cells)
}

// Fig6And7FromCells rebuilds the Figures 6 and 7 results from a complete
// cell set.
//
// Deprecated: use ExperimentFromCells("fig6", …) and
// ExperimentFromCells("fig7", …); this forwards to them.
func Fig6And7FromCells(cfg ExperimentConfig, cells []ShardCell) (*experiment.FigQResult, *experiment.FigQResult, error) {
	return experiment.FigQFromCells(cfg, cells)
}

// Table1 regenerates Table I (hardware cost model vs paper).
func Table1() []hwcost.Row { return hwcost.Table1() }

// I/O-aware end-to-end analysis (Section III-C).
type (
	// Flow is a periodic NoC packet flow for the end-to-end analysis.
	Flow = analysis.Flow
	// Transaction is a CPU → controller → device → CPU I/O operation.
	Transaction = analysis.Transaction
	// StageBounds decomposes a transaction's response-time bound.
	StageBounds = analysis.StageBounds
)

// AnalyzeTransaction bounds an end-to-end I/O transaction: NoC flow
// response times plus the I/O task's finish time from the offline schedule.
func AnalyzeTransaction(tx Transaction, flows []Flow, schedules DeviceSchedules) (StageBounds, error) {
	return analysis.Analyze(tx, flows, schedules)
}
