package iosched_test

import (
	"fmt"
	"log"
	"strings"

	iosched "repro"
)

// ExampleNewTaskSet builds a small timed-I/O task set and compares the
// timing accuracy the paper's static heuristic achieves against the
// clairvoyant non-preemptive FPS baseline on the same jobs.
func ExampleNewTaskSet() {
	ts, err := iosched.NewTaskSet([]iosched.Task{
		{Name: "sample-adc", C: 2 * iosched.Millisecond, T: 40 * iosched.Millisecond,
			Delta: 10 * iosched.Millisecond, Theta: 10 * iosched.Millisecond},
		{Name: "pwm-hi", C: 1 * iosched.Millisecond, T: 20 * iosched.Millisecond,
			Delta: 5 * iosched.Millisecond, Theta: 5 * iosched.Millisecond},
		{Name: "pwm-lo", C: 1 * iosched.Millisecond, T: 20 * iosched.Millisecond,
			Delta: 15 * iosched.Millisecond, Theta: 5 * iosched.Millisecond},
		{Name: "heartbeat", C: 3 * iosched.Millisecond, T: 80 * iosched.Millisecond,
			Delta: 30 * iosched.Millisecond, Theta: 20 * iosched.Millisecond},
		// Collides with sample-adc's ideal window on purpose.
		{Name: "status-led", C: 2 * iosched.Millisecond, T: 40 * iosched.Millisecond,
			Delta: 10 * iosched.Millisecond, Theta: 10 * iosched.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts.AssignDMPO()         // deadline-monotonic priorities
	ts.ApplyPaperQuality(1) // Vmax = P+1, Vmin = 1

	for _, m := range []iosched.Method{iosched.MethodStatic, iosched.MethodFPSOffline} {
		schedules, err := iosched.ScheduleWith(ts, m)
		if err != nil {
			log.Fatal(err)
		}
		psi, ups := schedules.Metrics(iosched.LinearCurve)
		fmt.Printf("%-11s Psi = %.3f  Upsilon = %.3f\n", m, psi, ups)
	}
	// Output:
	// static      Psi = 0.846  Upsilon = 0.960
	// fps-offline Psi = 0.000  Upsilon = 0.263
}

// ExampleRunExperimentShard splits the Figure 5 sweep into three shards —
// as three processes or hosts would — merges the cell files, and rebuilds
// the result, which is identical to the unsharded run's.
func ExampleRunExperimentShard() {
	// Tiny configuration so the example runs in milliseconds; zero values
	// select the CLI defaults.
	params := iosched.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}

	var files []*iosched.ShardFile
	for i := 0; i < 3; i++ {
		f, err := iosched.RunExperimentShard("fig5", params, 1, 3, i)
		if err != nil {
			log.Fatal(err)
		}
		// A real sweep persists each shard with f.WriteFile and reloads it
		// with iosched.ReadShardFile on the merging host.
		fmt.Printf("shard %d/3 holds %d cells\n", i, f.CellCount())
		files = append(files, f)
	}

	merged, err := iosched.MergeShardFiles(files)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iosched.Fig5FromCells(params.Config(), merged.Runs[0].Cells)
	if err != nil {
		log.Fatal(err)
	}
	x, series := res.Series()
	fmt.Printf("merged %d cells: %d utilisation points x %d methods\n",
		merged.CellCount(), len(x), len(series))
	// Output:
	// shard 0/3 holds 20 cells
	// shard 1/3 holds 20 cells
	// shard 2/3 holds 20 cells
	// merged 60 cells: 15 utilisation points x 5 methods
}

// ExampleRunExperiment drives the experiment registry generically: list
// the registered studies, run one by name, and render its table — the
// workflow that replaces the per-figure entry points, and the one a
// newly registered experiment (docs/EXPERIMENTS.md) joins automatically.
func ExampleRunExperiment() {
	params := iosched.ShardParams{Systems: 3, Seed: 1}

	var names []string
	for _, e := range iosched.Experiments() {
		names = append(names, e.Name())
	}
	fmt.Println(strings.Join(names, " "))

	res, err := iosched.RunExperiment("tailq", params, 1)
	if err != nil {
		log.Fatal(err)
	}
	headers, rows := res.Rows()
	fmt.Printf("tailq: %d columns x %d utilisation points, first column %q\n",
		len(headers), len(rows), headers[0])
	// Output:
	// fig5 fig6 fig7 table1 motivation ablation multidevice jitter tailq
	// tailq: 8 columns x 15 utilisation points, first column "U"
}
