// Command hwreport prints Table I: the structural resource model's
// estimate for every evaluated I/O controller design next to the paper's
// published Vivado synthesis figures, plus the Section V-B ratio claims.
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/hwcost"
	"repro/internal/textplot"
)

func main() {
	rows := experiment.Table1()
	h, r := experiment.Table1Rows(rows)
	fmt.Println("Table I: hardware overhead of evaluated I/O controllers (model / paper)")
	fmt.Println()
	fmt.Println(textplot.Table(h, r))

	byName := map[string]hwcost.Resources{}
	for _, row := range rows {
		byName[row.Name] = row.Model
	}
	p, g := byName["Proposed"], byName["GPIOCP"]
	mbB, mbF := byName["MB-B"], byName["MB-F"]
	fmt.Println("Section V-B claims (model):")
	fmt.Printf("  proposed vs MB-F:   %5.1f%% LUTs, %5.1f%% registers (paper: 23.6%%, 22.4%%)\n",
		pct(p.LUTs, mbF.LUTs), pct(p.Registers, mbF.Registers))
	fmt.Printf("  proposed vs MB-B:   %5.1f%% LUTs, %5.1f%% registers (paper: 135.4%%, 185.6%%)\n",
		pct(p.LUTs, mbB.LUTs), pct(p.Registers, mbB.Registers))
	fmt.Printf("  proposed vs GPIOCP: +%4.1f%% LUTs, +%4.1f%% registers (paper: +30.5%%, +52.2%%)\n",
		pct(p.LUTs, g.LUTs)-100, pct(p.Registers, g.Registers)-100)
	fmt.Printf("  power vs MB-B: %4.1f%%  vs MB-F: %4.1f%% (paper: 8.7%%, 4.6%%)\n",
		100*p.PowerMW/mbB.PowerMW, 100*p.PowerMW/mbF.PowerMW)
}

func pct(a, b int) float64 { return 100 * float64(a) / float64(b) }
