package main

// Provisional rendering of an incomplete shard cover (merge -partial):
// every figure is drawn from the cells that exist, the gaps are named
// explicitly — overall banner, per-experiment coverage lines, and a
// per-point "cells" column in the tables and CSVs — and any run whose own
// grid happens to be fully covered renders exactly as the final output
// will. A complete cover never reaches this file: runMerge routes it
// through renderMerged, which is what keeps the finished sweep
// byte-identical to the unsharded run. The loop below is registry-driven:
// a newly registered experiment gets partial rendering with no edit here.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/shard"
)

// shardList renders shard indices as " 2 5" for banner lines.
func shardList(idxs []int) string {
	var b strings.Builder
	for _, i := range idxs {
		fmt.Fprintf(&b, " %d", i)
	}
	return b.String()
}

// partialNote is the per-experiment annotation line naming the gap.
func partialNote(cov experiment.Coverage, missing []int) string {
	return fmt.Sprintf("PARTIAL: %s; missing shards:%s\n\n", cov, shardList(missing))
}

// coverageColumn appends a per-point "cells" column to a result table, so
// every row states how many of its systems it was averaged over.
func coverageColumn(headers []string, rows [][]string, cov experiment.Coverage) ([]string, [][]string) {
	headers = append(headers, "cells")
	for i := range rows {
		rows[i] = append(rows[i], cov.Point(i))
	}
	return headers, rows
}

// renderPartialCover renders provisional results from an incomplete
// cover, in the registry's canonical experiment order.
func renderPartialCover(cover *shard.PartialCover, csvDir string) error {
	var params experiment.ShardParams
	if err := json.Unmarshal(cover.File.Params, &params); err != nil {
		return fmt.Errorf("recorded params: %w", err)
	}
	rc := params.Context(0)

	fmt.Printf("PARTIAL results: %d/%d shards present (missing shards:%s); %d/%d cells (%.1f%%)\n",
		len(cover.Present), cover.Shards, shardList(cover.Missing),
		cover.CellsHave(), cover.CellsTotal(), 100*cover.Fraction())
	fmt.Printf("Provisional output: every value is computed over the cells present; the\n")
	fmt.Printf("complete merge of all %d shards is byte-identical to the unsharded run.\n\n", cover.Shards)

	byName := make(map[string][]shard.Cell, len(cover.File.Runs))
	for _, r := range cover.File.Runs {
		byName[r.Experiment] = r.Cells
	}
	which := cover.File.Selection
	ran := false
	for _, e := range experiment.All() {
		name := e.Name()
		if which != experiment.ExpAll && which != name {
			continue
		}
		ran = true
		if e.Codec().New == nil {
			// Closed-form experiments carry no cells: a partial cover
			// renders them in full, in their canonical place.
			res, err := experiment.Run(name, rc)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Print(e.Header(rc))
			if err := renderBody(e, res, nil, csvDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			continue
		}
		cells, ok := byName[name]
		if !ok {
			if which == experiment.ExpAll {
				// The cover was written before this experiment registered:
				// the file's recorded run list says what the sweep
				// computed, so render that, not this binary's registry.
				continue
			}
			return fmt.Errorf("%s: shard files carry no cells", name)
		}
		res, cov, err := experiment.FromCellsPartial(name, rc, cells)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Print(e.Header(rc))
		switch {
		case res == nil:
			// The experiment has no provisional result for this subset;
			// explain the gap in its place.
			if sk, ok := e.(experiment.PartialSkipper); ok {
				fmt.Print(sk.PartialSkipNote(cov, shardList(cover.Missing)))
			} else {
				fmt.Printf("PARTIAL: %s; missing shards:%s — no provisional result for an incomplete grid.\n\n",
					cov, shardList(cover.Missing))
			}
		case cov.Complete():
			// This run's own grid is fully covered (smaller than the shard
			// count): it renders exactly as the final output will.
			if err := renderBody(e, res, nil, csvDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		default:
			fmt.Print(partialNote(cov, cover.Missing))
			if err := renderBody(e, res, &cov, csvDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	if !ran {
		// A hand-edited selection passes Decode and MergePartial; mirror
		// the full render path's failure instead of printing nothing.
		return fmt.Errorf("%w %q", experiment.ErrUnknownExperiment, which)
	}
	return nil
}
