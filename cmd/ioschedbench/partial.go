package main

// Provisional rendering of an incomplete shard cover (merge -partial):
// every figure is drawn from the cells that exist, the gaps are named
// explicitly — overall banner, per-experiment coverage lines, and a
// per-point "cells" column in the tables and CSVs — and any run whose own
// grid happens to be fully covered renders exactly as the final output
// will. A complete cover never reaches this file: runMerge routes it
// through renderMerged, which is what keeps the finished sweep
// byte-identical to the unsharded run.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

// shardList renders shard indices as " 2 5" for banner lines.
func shardList(idxs []int) string {
	var b strings.Builder
	for _, i := range idxs {
		fmt.Fprintf(&b, " %d", i)
	}
	return b.String()
}

// partialNote is the per-experiment annotation line naming the gap.
func partialNote(cov experiment.Coverage, missing []int) string {
	return fmt.Sprintf("PARTIAL: %s; missing shards:%s\n\n", cov, shardList(missing))
}

// coverageColumn appends a per-point "cells" column to a result table, so
// every row states how many of its systems it was averaged over.
func coverageColumn(headers []string, rows [][]string, cov experiment.Coverage) ([]string, [][]string) {
	headers = append(headers, "cells")
	for i := range rows {
		rows[i] = append(rows[i], cov.Point(i))
	}
	return headers, rows
}

// renderPartialCover renders provisional results from an incomplete
// cover, in the same experiment order as the full render loop.
func renderPartialCover(cover *shard.PartialCover, csvDir string) error {
	var params experiment.ShardParams
	if err := json.Unmarshal(cover.File.Params, &params); err != nil {
		return fmt.Errorf("recorded params: %w", err)
	}
	cfg := params.Config()
	mcfg := params.Motivation()

	fmt.Printf("PARTIAL results: %d/%d shards present (missing shards:%s); %d/%d cells (%.1f%%)\n",
		len(cover.Present), cover.Shards, shardList(cover.Missing),
		cover.CellsHave(), cover.CellsTotal(), 100*cover.Fraction())
	fmt.Printf("Provisional output: every value is computed over the cells present; the\n")
	fmt.Printf("complete merge of all %d shards is byte-identical to the unsharded run.\n\n", cover.Shards)

	byName := make(map[string][]shard.Cell, len(cover.File.Runs))
	for _, r := range cover.File.Runs {
		byName[r.Experiment] = r.Cells
	}
	which := cover.File.Selection
	steps := []struct {
		name string
		fn   func(cells []shard.Cell) error
	}{
		{experiment.ExpFig5, func(cells []shard.Cell) error {
			return renderPartialFig5(cfg, cells, cover.Missing, csvDir)
		}},
		{experiment.ExpFig6, func(cells []shard.Cell) error {
			return renderPartialFigQ(cfg, cells, cover.Missing, csvDir, true)
		}},
		{experiment.ExpFig7, func(cells []shard.Cell) error {
			return renderPartialFigQ(cfg, cells, cover.Missing, csvDir, false)
		}},
		{experiment.ExpMotivation, func(cells []shard.Cell) error {
			return renderPartialMotivation(mcfg, cells, cover.Missing)
		}},
		{experiment.ExpAblation, func(cells []shard.Cell) error {
			return renderPartialAblation(cfg, params.ResolvedAblationU(), cells, cover.Missing)
		}},
		{experiment.ExpMultiDevice, func(cells []shard.Cell) error {
			return renderPartialMultiDevice(cfg, params, cells, cover.Missing)
		}},
	}
	ran := false
	for _, s := range steps {
		if which != experiment.ExpAll && which != s.name {
			continue
		}
		ran = true
		cells, ok := byName[s.name]
		if !ok {
			return fmt.Errorf("%s: shard files carry no cells", s.name)
		}
		if err := s.fn(cells); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		// Table I is a closed-form model with no cells: a partial cover
		// renders it in full, in its canonical place after Figure 7.
		if s.name == experiment.ExpFig7 && which == experiment.ExpAll {
			if err := renderTable1(csvDir); err != nil {
				return fmt.Errorf("table1: %w", err)
			}
		}
	}
	if !ran {
		// A hand-edited selection passes Decode and MergePartial; mirror
		// the full render path's failure instead of printing nothing.
		return fmt.Errorf("%w %q", experiment.ErrUnknownExperiment, which)
	}
	return nil
}

func renderPartialFig5(cfg experiment.Config, cells []shard.Cell, missing []int, csvDir string) error {
	res, cov, err := experiment.Fig5FromCellsPartial(cfg, cells)
	if err != nil {
		return err
	}
	fmt.Print(fig5Header(cfg))
	fmt.Print(partialNote(cov, missing))
	x, series := res.Series()
	plotSeries("Fig 5: schedulable fraction vs utilisation", x, series)
	h, rows := res.Rows()
	h, rows = coverageColumn(h, rows, cov)
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, "fig5.csv", h, rows)
}

func renderPartialFigQ(cfg experiment.Config, cells []shard.Cell, missing []int, csvDir string, psi bool) error {
	psiRes, upsRes, cov, err := experiment.FigQFromCellsPartial(cfg, cells)
	if err != nil {
		return err
	}
	name, metric := figqTitle(psi)
	fmt.Print(figqHeader(cfg, psi))
	fmt.Print(partialNote(cov, missing))
	res, file := psiRes, "fig6.csv"
	if !psi {
		res, file = upsRes, "fig7.csv"
	}
	x, series := res.Series()
	plotSeries(name+": "+metric, x, series)
	h, rows := res.Rows()
	h, rows = coverageColumn(h, rows, cov)
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, file, h, rows)
}

func renderPartialMotivation(mcfg experiment.MotivationConfig, cells []shard.Cell, missing []int) error {
	res, cov, err := experiment.MotivationFromCellsPartial(mcfg, cells)
	if err != nil {
		return err
	}
	fmt.Print(motivationHeader(mcfg))
	if res == nil {
		fmt.Printf("PARTIAL: %d/%d designs present; missing shards:%s — skipped, the\n",
			cov.Have, cov.Total, shardList(missing))
		fmt.Printf("experiment is a two-design comparison and needs both cells.\n\n")
		return nil
	}
	// Both designs present: this run renders complete even in a partial
	// cover.
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	fmt.Printf("uncontended CPU->controller latency: %d cycles (compensated by the remote design)\n",
		res.BaseLatency)
	return nil
}

func renderPartialAblation(cfg experiment.Config, u float64, cells []shard.Cell, missing []int) error {
	res, cov, err := experiment.AblationFromCellsPartial(cfg, cells)
	if err != nil {
		return err
	}
	fmt.Print(ablationHeader(cfg, u))
	fmt.Print(partialNote(cov, missing))
	h, rows := experiment.AblationRows(res)
	fmt.Println(textplot.Table(h, rows))
	return nil
}

func renderPartialMultiDevice(cfg experiment.Config, params experiment.ShardParams, cells []shard.Cell, missing []int) error {
	_, mdCounts := params.ResolvedMultiDevice()
	res, cov, err := experiment.MultiDeviceFromCellsPartial(cfg, mdCounts, cells)
	if err != nil {
		return err
	}
	fmt.Print(multiDeviceHeader(cfg))
	fmt.Print(partialNote(cov, missing))
	h, rows := experiment.MultiDeviceRows(res)
	h, rows = coverageColumn(h, rows, cov)
	fmt.Println(textplot.Table(h, rows))
	return nil
}
