package main

// The bench subcommand: measure the tier benchmarks through the shared
// internal/benchtraj bodies (the exact code `go test -bench` runs),
// write a BENCH_*.json trajectory snapshot, and optionally gate against
// a committed baseline. allocs/op is gated on every machine; ns/op only
// when the host fingerprint matches the baseline's. See docs/CACHE.md
// for the trajectory workflow.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/benchtraj"
)

func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		out       = fs.String("o", "bench/BENCH_0010.json", "trajectory file to write (empty = don't write)")
		compare   = fs.String("compare", "", "baseline trajectory to gate against; regressions make the command fail")
		tolerance = fs.Float64("tolerance", 0.15, "allowed relative regression before the gate fails")
		benchtime = fs.String("benchtime", "500ms", "per-benchmark measuring time (test.benchtime syntax, e.g. 2s or 10x)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench bench [-o bench/BENCH_0010.json] [-compare baseline.json] [flags]")
		fmt.Fprintln(os.Stderr, "\nMeasures the tier benchmarks (shared with `go test -bench` via")
		fmt.Fprintln(os.Stderr, "internal/benchtraj), the Figure 5 serial/parallel speedup, the cell")
		fmt.Fprintln(os.Stderr, "cache warm hit rate, the dispatch makespan ratio, the shard codec")
		fmt.Fprintln(os.Stderr, "bytes-per-cell sizes and the (ungated) wall-clock replay jitter")
		fmt.Fprintln(os.Stderr, "baseline, and writes them as one trajectory snapshot.")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance %v: must be >= 0", *tolerance)
	}

	// testing.Benchmark sizes b.N from the test.benchtime flag, which
	// exists only after testing.Init registers it. Our own flags live on
	// the subcommand's FlagSet, so flag.CommandLine is free for it here.
	testing.Init()
	if err := flag.CommandLine.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("-benchtime %q: %w", *benchtime, err)
	}

	traj := &benchtraj.Trajectory{
		Version:    benchtraj.Version,
		Benchmarks: make(map[string]benchtraj.Measurement),
		Host:       benchtraj.CurrentHost(),
	}
	for _, bench := range benchtraj.Tier() {
		r := testing.Benchmark(bench.Body)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed (zero iterations)", bench.Name)
		}
		m := benchtraj.Measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		traj.Benchmarks[bench.Name] = m
		fmt.Fprintf(w, "bench: %-24s %12.0f ns/op %8d B/op %6d allocs/op\n",
			bench.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	serial := testing.Benchmark(benchtraj.Fig5(1))
	par := testing.Benchmark(benchtraj.Fig5(runtime.NumCPU()))
	if serial.N == 0 || par.N == 0 {
		return fmt.Errorf("benchmark Fig5Parallel failed (zero iterations)")
	}
	serialNs := float64(serial.T.Nanoseconds()) / float64(serial.N)
	parNs := float64(par.T.Nanoseconds()) / float64(par.N)
	if parNs > 0 {
		traj.ParallelSpeedup = serialNs / parNs
	}
	fmt.Fprintf(w, "bench: Fig5 serial/parallel-%d speedup: %.2fx\n", runtime.NumCPU(), traj.ParallelSpeedup)

	cacheDir, err := os.MkdirTemp("", "ioschedbench-bench-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	hitRate, err := benchtraj.MeasureCacheHitRate(cacheDir)
	if err != nil {
		return fmt.Errorf("measuring cache hit rate: %w", err)
	}
	traj.CacheHitRate = hitRate
	fmt.Fprintf(w, "bench: cell cache warm hit rate: %.0f%%\n", 100*hitRate)

	ratio, err := benchtraj.MeasureDispatchMakespan()
	if err != nil {
		return fmt.Errorf("measuring dispatch makespan: %w", err)
	}
	traj.DispatchMakespanRatio = ratio
	fmt.Fprintf(w, "bench: dispatch makespan roundrobin/cost ratio: %.3fx\n", ratio)

	sizes, err := benchtraj.MeasureCodecSizes()
	if err != nil {
		return fmt.Errorf("measuring codec sizes: %w", err)
	}
	traj.CodecBytesPerCellV1 = sizes.V1BytesPerCell
	traj.CodecBytesPerCellV2 = sizes.V2BytesPerCell
	fmt.Fprintf(w, "bench: codec bytes/cell json %.1f, binary %.1f (ratio %.3f over %d cells)\n",
		sizes.V1BytesPerCell, sizes.V2BytesPerCell, sizes.Ratio(), sizes.Cells)

	jitter, err := benchtraj.MeasureReplayJitter()
	if err != nil {
		return fmt.Errorf("measuring replay jitter: %w", err)
	}
	traj.ReplayJitter = jitter
	fmt.Fprintf(w, "bench: replay jitter (ungated host baseline): %d dispatches, exact %.2f, missed %.2f, mean %.0fns, p99 %dns, max %dns\n",
		jitter.Dispatched, jitter.Exact, jitter.Missed, jitter.MeanNs, jitter.P99Ns, jitter.MaxNs)

	if *out != "" {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		if err := traj.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench: wrote trajectory to %s\n", *out)
	}

	if *compare != "" {
		baseline, err := benchtraj.ReadFile(*compare)
		if err != nil {
			return err
		}
		if baseline.Host != traj.Host {
			fmt.Fprintf(w, "bench: host differs from baseline %s; gating allocs/op only\n", *compare)
		}
		regs := benchtraj.Compare(baseline, traj, *tolerance)
		for _, r := range regs {
			fmt.Fprintf(w, "bench: REGRESSION: %s\n", r)
		}
		if len(regs) > 0 {
			return fmt.Errorf("%d regression(s) against %s", len(regs), *compare)
		}
		fmt.Fprintf(w, "bench: gate passed against %s (tolerance %.0f%%)\n", *compare, 100**tolerance)
	}
	return nil
}
