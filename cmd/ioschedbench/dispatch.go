package main

// The dispatch subcommand: fan a sharded run out to a pool of workers,
// retry lost or corrupt shards, and render the merged result exactly as
// the unsharded run would have. See internal/dispatch for the driver and
// docs/SHARD_FORMAT.md for the file format it moves around.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/shard"
)

// runDispatch drives a whole sharded sweep from one invocation:
//
//	ioschedbench dispatch -workers 3 -retries 2 [run flags]
//	ioschedbench dispatch -worker 'ssh h1 ioschedbench {args} -out /dev/stdout' ...
//
// Local workers re-execute this binary; -worker templates replace them
// for remote or wrapped execution. Progress and retries go to stderr;
// stdout carries only the rendered results, byte-identical to the
// unsharded run.
func runDispatch(args []string) error {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	rf := registerRunFlags(fs)
	cf := registerCacheFlags(fs)
	codecF := registerCodecFlag(fs)
	var cmds []string
	var (
		workers      = fs.Int("workers", 2, "local worker subprocesses (ignored when -worker is given)")
		retries      = fs.Int("retries", 2, "retries per shard after its first failed attempt")
		timeout      = fs.Duration("timeout", 0, "per-attempt time budget (0 = none); an attempt over budget is killed and retried")
		delay        = fs.Duration("retry-delay", 0, "pause before re-queueing a failed shard")
		dir          = fs.String("dir", "", "working directory for shard and journal files (default: fresh temp dir; set it to resume an interrupted dispatch)")
		shards       = fs.Int("shards", 0, "shard count (0 = one per worker)")
		parallel     = fs.Int("parallel", 0, "per-worker goroutines, forwarded to local workers; never changes results")
		csvDir       = fs.String("csv", "", "directory to write CSV result files into")
		out          = fs.String("out", "", "also write the merged cell file to this path (a valid 1-shard file)")
		progress     = fs.Bool("progress", false, "live status line on stderr (done/running/failed counts and an ETA) instead of per-event log lines")
		partialEvery = fs.Duration("partial-every", 0, "periodically merge the shards completed so far into <dir>/partial.json for \"merge -partial\" (requires -dir)")
		balance      = fs.String("balance", dispatch.BalanceRoundRobin, "cell decomposition: \"roundrobin\" (fixed (point*systems+system) mod shards shares) or \"cost\" (cost-packed cell batches, refined by observed wall-clock on resume)")
		steal        = fs.Bool("steal", false, "let idle workers steal duplicate attempts at straggling shards (first completion wins; duplicates are discarded by cell key)")
	)
	fs.Func("worker", "command template run once per shard (repeatable; placeholders {args} {index} {shards} {out}); replaces the local worker pool; split on whitespace — no quoting, so arguments cannot contain spaces (wrap complex commands in a script)", func(s string) error {
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("empty -worker template")
		}
		cmds = append(cmds, s)
		return nil
	})
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench dispatch [flags]")
		fmt.Fprintln(os.Stderr, "\nRuns the selected experiments as N shards on a pool of workers, retries")
		fmt.Fprintln(os.Stderr, "lost/failed/timed-out shards, merges, and renders output byte-identical")
		fmt.Fprintln(os.Stderr, "to the unsharded run.")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	params, err := rf.shardParams()
	if err != nil {
		return err
	}
	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		return err
	}
	cache, err := cf.open()
	if err != nil {
		return err
	}
	if cache != nil {
		if err := cache.SetEncoding(codec); err != nil {
			return err
		}
	}

	var pool []dispatch.Worker
	if len(cmds) > 0 {
		for i, tmpl := range cmds {
			pool = append(pool, &dispatch.CmdWorker{
				Argv:   strings.Fields(tmpl),
				Stderr: os.Stderr,
				Label:  fmt.Sprintf("cmd[%d]", i),
			})
		}
	} else {
		if *workers < 1 {
			return fmt.Errorf("-workers %d: need at least one worker", *workers)
		}
		bin, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary for local workers: %w", err)
		}
		// -parallel 0 means one goroutine per CPU *per subprocess*; with N
		// local workers that would oversubscribe the host N-fold, so split
		// the CPUs across the pool instead. Results are unchanged either
		// way — parallelism never affects them.
		per := *parallel
		if per == 0 {
			if per = runtime.NumCPU() / *workers; per < 1 {
				per = 1
			}
		}
		extra := []string{"-parallel", strconv.Itoa(per)}
		if cdir := cf.resolvedDir(); cdir != "" {
			// Local workers share the cache: each deposits the cells it
			// computes and reuses what overlapping runs left (host-local,
			// like -parallel — never part of the run identity).
			extra = append(extra, "-cache-dir", cdir)
		}
		if codec != shard.EncodingJSON {
			// Forward the write encoding to local workers; validation and
			// merge auto-detect, so this only shrinks the shard files.
			extra = append(extra, "-codec", codec)
		}
		for i := 0; i < *workers; i++ {
			pool = append(pool, &dispatch.LocalProcWorker{
				Binary:    bin,
				ExtraArgs: extra,
				Stderr:    os.Stderr,
				Label:     fmt.Sprintf("local[%d]", i),
			})
		}
	}

	n := *shards
	if n == 0 {
		n = len(pool)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: must be >= 0", *retries)
	}

	logger := log.New(os.Stderr, "ioschedbench: ", 0)
	opts := dispatch.Options{
		MaxAttempts:    *retries + 1,
		AttemptTimeout: *timeout,
		RetryDelay:     *delay,
		Dir:            *dir,
		Logf:           logger.Printf,
		PartialEvery:   *partialEvery,
		Cache:          cache,
		Balance:        *balance,
		Steal:          *steal,
		Codec:          codec,
	}
	if *progress {
		// The live line redraws in place; the per-event log lines would
		// tear it, so the journal keeps the event history instead.
		opts.Logf = nil
		opts.Progress = progressLine(os.Stderr)
	}
	res, err := dispatch.Run(context.Background(),
		dispatch.Spec{Selection: *rf.which, Params: params, Shards: n},
		pool, opts)
	if *progress {
		// Terminate the redrawn line before any summary or error output
		// lands on the same terminal row.
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	// The steal suffix only appears when stealing actually happened, so the
	// classic summary stays stable for scripts that match on it.
	extraSummary := ""
	if res.Steals > 0 {
		extraSummary = fmt.Sprintf(", %d steals (%d duplicates discarded)", res.Steals, res.Duplicates)
	}
	logger.Printf("dispatch: %d shards done (%d resumed, %d cached, %d run, %d retries%s) in %s",
		res.Shards, res.Resumed, res.Cached, res.Ran, res.Retries, extraSummary, summaryDir(res.Dir))
	if cache != nil {
		st := cache.Stats()
		logger.Printf("dispatch: cell cache: %d hits, %d misses (%.0f%% hit rate)",
			st.Hits, st.Misses, 100*st.HitRate())
	}
	if *out != "" {
		if err := res.Merged.WriteFileAs(*out, codec); err != nil {
			return err
		}
	}
	return renderMerged(res.Merged, *csvDir)
}

// summaryDir names the working directory for the completion log line.
func summaryDir(dir string) string {
	if dir == "" {
		return "a temporary directory (removed)"
	}
	return dir
}

// progressLine returns a Progress handler that folds the event stream
// through a Tracker and redraws one status line in place on w. Events
// arrive from multiple goroutines; the tracker's lock orders them and the
// handler's own mutex keeps the redraws whole.
func progressLine(w io.Writer) func(dispatch.ProgressEvent) {
	tr := dispatch.NewTracker()
	var mu sync.Mutex
	prev := 0
	return func(e dispatch.ProgressEvent) {
		// Observe, snapshot and print under one lock, so a descheduled
		// handler cannot overwrite a newer snapshot with an older one.
		mu.Lock()
		defer mu.Unlock()
		tr.Observe(e)
		if e.Kind == dispatch.ProgressPartial && e.Err != "" {
			// With -progress the per-event log is off; a failing
			// auto-partial write must still reach the operator, on its
			// own committed line so the redrawn status survives below it.
			fmt.Fprintf(w, "\r%-*s\n", prev, "dispatch: partial merge failed: "+e.Err)
			prev = 0
		}
		s := tr.Snapshot()
		line := fmt.Sprintf("dispatch: %d/%d done, %d running, %d failed", s.Done, s.Total, s.Running, s.Failed)
		if s.Resumed > 0 {
			line += fmt.Sprintf(" (%d resumed)", s.Resumed)
		}
		if s.Steals > 0 {
			line += fmt.Sprintf(", %d steals", s.Steals)
		}
		if s.ETA > 0 {
			line += ", ETA " + s.ETA.Round(time.Second).String()
		}
		if s.Merged {
			line += ", merged"
		}
		// Pad over the previous line's full width, so a shorter redraw
		// never leaves the old tail on the terminal.
		width := len(line)
		if prev > width {
			width = prev
		}
		prev = len(line)
		fmt.Fprintf(w, "\r%-*s", width, line)
	}
}
