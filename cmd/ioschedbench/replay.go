package main

// The replay subcommand: the CLI surface of the wall-clock replay
// harness (internal/replay). It runs a non-reproducible measurement
// experiment — jitter by default — on this machine: generate the
// seed-deterministic workloads, schedule them, replay the schedules
// against the real clock on pinned executor threads, and render the
// delivered-timing distributions. The run flows through the ordinary
// shard machinery (RunShardCached → FromCells), so -out writes a valid
// shard file; it differs from a figure run only in what the registry
// declares: the payloads measure the host, so the file carries a host
// fingerprint and the cell cache is bypassed.

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/shard"
)

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		which   = fs.String("experiment", experiment.ExpJitter, "non-reproducible experiment to replay")
		seed    = fs.Int64("seed", 1, "random seed for the replayed workloads (the measurement itself is not seeded)")
		tick    = fs.Duration("tick", 0, "wall-clock duration of one schedule tick (0 = the experiment default)")
		capF    = fs.Duration("cap", 0, "per-device replay horizon; later entries are skipped (0 = the experiment default)")
		warmup  = fs.Int("warmup", 0, "synthetic dispatches per device before the measured epoch (0 = the experiment default)")
		noPin   = fs.Bool("no-pin", false, "do not pin executor threads to CPUs")
		systems = fs.Int("replay-systems", 0, "systems replayed per utilisation point (0 = the experiment default)")
		csvDir  = fs.String("csv", "", "directory to write CSV result files into")
		out     = fs.String("out", "", "also write the measurement as a shard cell file to this path")
		codecF  = registerCodecFlag(fs)
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench replay [-experiment jitter] [-tick 1ms] [-cap 100ms] [-warmup 64] [-no-pin] [-replay-systems 6] [-seed 1] [-csv dir] [-codec json|binary] [-out jitter.json]")
		fmt.Fprintln(os.Stderr, "\nReplays computed schedules against this machine's clock and reports the")
		fmt.Fprintln(os.Stderr, "delivered dispatch timing. The result measures the host, not the seed:")
		fmt.Fprintln(os.Stderr, "the shard file carries a host fingerprint and is never cell-cached.")
		fmt.Fprintln(os.Stderr, "See docs/REPLAY.md.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *tick < 0 || *capF < 0 || *warmup < 0 || *systems < 0 {
		return fmt.Errorf("-tick, -cap, -warmup and -replay-systems must be >= 0 (0 = default)")
	}
	if _, err := experiment.SelectionRuns(*which); err != nil {
		return err
	}
	if experiment.SelectionReproducible(*which) {
		return fmt.Errorf("-experiment %q is reproducible; replay runs measurement experiments — use the top-level command for figures", *which)
	}
	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		return err
	}
	params := experiment.ShardParams{
		Seed:          *seed,
		ReplayTickNs:  int64(*tick),
		ReplayCapNs:   int64(*capF),
		ReplayWarmup:  *warmup,
		ReplaySystems: *systems,
		ReplayNoPin:   *noPin,
	}
	// One executor thread per device is the measurement; a worker pool on
	// top would make executors contend with each other for CPUs, so the
	// cells run serially (parallelism 1).
	f, err := experiment.RunShardCached(*which, params, 1, 1, 0, nil)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := f.WriteFileAs(*out, codec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ioschedbench: wrote measurement of %q (%d cells, host %q) to %s\n",
			*which, f.CellCount(), f.Host, *out)
	}
	return renderMerged(f, *csvDir)
}
