package main

// The submit subcommand: the sweep client of a coordinator. It submits
// a run (or attaches to one), optionally follows the progress stream,
// and renders the merged result exactly as the unsharded run would
// have — the coordinator path keeps the same byte-identity contract as
// merge and dispatch.

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/coord"
	"repro/internal/dispatch"
	"repro/internal/shard"
)

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	rf := registerRunFlags(fs)
	var (
		connect = fs.String("connect", "", "coordinator base URL, e.g. http://host:8337 (required)")
		shards  = fs.Int("shards", 2, "work units to split the sweep into")
		balance = fs.String("balance", dispatch.BalanceRoundRobin, "cell decomposition: \"roundrobin\" or \"cost\"")
		runID   = fs.String("run", "", "attach to this existing run instead of submitting a new one (run flags are ignored)")
		wait    = fs.Bool("wait", false, "follow the run and render the merged result when it completes (otherwise print the run id and return)")
		out     = fs.String("out", "", "also write the merged cell file to this path (with -wait; a valid 1-shard file)")
		csvDir  = fs.String("csv", "", "directory to write CSV result files into (with -wait)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench submit -connect http://host:8337 [-wait] [run flags]")
		fmt.Fprintln(os.Stderr, "\nSubmits a sweep to a coordinator. With -wait, streams progress to stderr")
		fmt.Fprintln(os.Stderr, "and renders the merged result — byte-identical to the unsharded run —")
		fmt.Fprintln(os.Stderr, "once every unit completes. Without it, prints the run id.")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *connect == "" {
		fs.Usage()
		return fmt.Errorf("-connect is required")
	}

	logger := log.New(os.Stderr, "ioschedbench: submit: ", 0)
	cl := &coord.Client{BaseURL: *connect}
	ctx := context.Background()

	id := *runID
	if id == "" {
		params, err := rf.shardParams()
		if err != nil {
			return err
		}
		id, err = cl.Submit(ctx, coord.SubmitRequest{
			Selection: *rf.which, Params: params, Shards: *shards, Balance: *balance,
		})
		if err != nil {
			return err
		}
		logger.Printf("submitted %q as %s (%d units, %s balance)", *rf.which, id, *shards, *balance)
	}
	if !*wait {
		// The id is the output: scripts capture it and attach later with
		// "submit -run <id> -wait".
		fmt.Println(id)
		return nil
	}

	// Follow the event stream until the run reaches a terminal state. The
	// coordinator replays history first, so attaching late (or after a
	// coordinator restart) loses nothing.
	err := cl.Events(ctx, id, func(e dispatch.ProgressEvent) {
		switch e.Kind {
		case dispatch.ProgressPlan:
			logger.Printf("%s: %d units planned", id, e.Shards)
		case dispatch.ProgressResumed:
			logger.Printf("%s: unit %d resumed from the journal", id, e.Shard)
		case dispatch.ProgressAttempt:
			logger.Printf("%s: unit %d attempt %d on %s", id, e.Shard, e.Attempt, e.Worker)
		case dispatch.ProgressDone:
			logger.Printf("%s: unit %d done (%d cells)", id, e.Shard, e.Cells)
		case dispatch.ProgressFailed:
			logger.Printf("%s: unit %d attempt %d failed: %s", id, e.Shard, e.Attempt, e.Err)
		case dispatch.ProgressMerged:
			logger.Printf("%s: merged (%d cells)", id, e.Cells)
		}
	})
	if err != nil {
		return err
	}
	st, err := cl.Run(ctx, id)
	if err != nil {
		return err
	}
	if st.State != "merged" {
		return fmt.Errorf("run %s ended %q: %s", id, st.State, st.Failure)
	}

	// Fetch the merged cover and render it through the same path merge
	// and dispatch use — that shared path is the byte-identity guarantee.
	data, err := cl.Result(ctx, id)
	if err != nil {
		return err
	}
	merged, err := shard.Decode(data)
	if err != nil {
		return fmt.Errorf("run %s result: %w", id, err)
	}
	if *out != "" {
		if err := merged.WriteFile(*out); err != nil {
			return err
		}
	}
	return renderMerged(merged, *csvDir)
}
