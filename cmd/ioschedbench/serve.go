package main

// The serve subcommand: the long-running coordinator service. Workers
// connect over HTTP (the work subcommand), sweeps are submitted and
// watched remotely (the submit subcommand), and the run state lives in
// journalled run directories a restart resumes from. Protocol spec in
// docs/COORDINATOR.md.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/shard"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8337", "listen address (host:port; port 0 picks a free port)")
		addrFile     = fs.String("addr-file", "", "write the coordinator's base URL to this file once listening (for scripts using -addr with port 0)")
		dir          = fs.String("dir", "", "state directory for run journals and result files (required; restart over the same directory resumes every run)")
		hbTimeout    = fs.Duration("heartbeat-timeout", 15*time.Second, "reassign a worker's leases after this long without a heartbeat")
		leaseTimeout = fs.Duration("lease-timeout", 0, "fail and requeue a unit leased longer than this, even if its worker still heartbeats (0 = no bound)")
		retries      = fs.Int("retries", 2, "retries per unit after its first failed attempt; an exhausted unit fails its run")
	)
	codecF := registerCodecFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench serve -dir state/ [-addr host:port]")
		fmt.Fprintln(os.Stderr, "\nRuns the sweep coordinator: workers connect with \"ioschedbench work\",")
		fmt.Fprintln(os.Stderr, "sweeps are submitted with \"ioschedbench submit\". Run state is journalled")
		fmt.Fprintln(os.Stderr, "under -dir; restarting over the same directory resumes every run.")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required: the journals under it are the coordinator's durable state")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries %d: must be >= 0", *retries)
	}

	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "ioschedbench: serve: ", 0)
	c, err := coord.New(*dir, coord.Options{
		HeartbeatTimeout: *hbTimeout,
		LeaseTimeout:     *leaseTimeout,
		MaxAttempts:      *retries + 1,
		Logf:             logger.Printf,
		Codec:            codec,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	baseURL := "http://" + ln.Addr().String()
	logger.Printf("listening on %s (state in %s)", baseURL, c.Dir())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(baseURL+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("-addr-file: %w", err)
		}
	}

	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Printf("shutting down (journals in %s carry the state)", c.Dir())
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
		}
		<-errc
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
