package main

// The status subcommand: read the journal of a dispatch directory — live,
// finished or dead — and print where the sweep stands: per-shard state,
// coverage, exactly which shard indices are missing, and what failed
// where. It is a pure reader over the journal (docs/DISPATCH.md), so it
// is always safe to run next to a live dispatch.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

// statusDetailMax bounds the detail column so one long worker error does
// not wrap the whole table.
const statusDetailMax = 60

func truncateDetail(s string) string {
	if len(s) <= statusDetailMax {
		return s
	}
	// Truncate on a rune boundary: error text can carry non-ASCII (paths,
	// OS messages) and a byte slice could cut a rune in half.
	runes := []rune(s)
	if len(runes) <= statusDetailMax {
		return s
	}
	return string(runes[:statusDetailMax-3]) + "..."
}

// runStatus prints the journaled state of a dispatch to w (stdout in
// production; tests pass a buffer and compare golden output).
func runStatus(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench status <dispatch-dir | journal-file>")
		fmt.Fprintln(os.Stderr, "\nPrints a dispatch's journaled state: per-shard progress, coverage,")
		fmt.Fprintln(os.Stderr, "missing shard indices and failures. Works on live and dead dispatches.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one dispatch directory or journal file")
	}
	target := fs.Arg(0)
	var (
		st  *dispatch.JournalState
		err error
	)
	if fi, serr := os.Stat(target); serr == nil && fi.IsDir() {
		st, err = dispatch.ReadJournalDir(target)
	} else {
		st, err = dispatch.ReadJournal(target)
	}
	if err != nil {
		return err
	}
	return printStatus(w, st)
}

// resolveShardFile resolves a journaled shard file to the path it lives
// at now, or "" when it is gone. The journal records the path as the
// dispatch invocation spelled it — often relative to the dispatch's
// working directory — so when the verbatim path does not resolve
// (status run from another cwd), the file is also looked for next to
// the journal itself before being declared missing.
func resolveShardFile(journalPath, file string) string {
	if _, err := os.Stat(file); err == nil {
		return file
	}
	if filepath.IsAbs(file) {
		return ""
	}
	beside := filepath.Join(filepath.Dir(journalPath), filepath.Base(file))
	if _, err := os.Stat(beside); err == nil {
		return beside
	}
	return ""
}

// shardFileDetail renders a done shard's file column: the journaled
// path, annotated with the on-disk encoding ([json] or [binary] —
// sniffed from the container magic, the only mark that distinguishes a
// v2 binary file from a v1 JSON one) or with "(file missing)".
func shardFileDetail(journalPath, file string) string {
	if file == "" {
		return ""
	}
	resolved := resolveShardFile(journalPath, file)
	if resolved == "" {
		return file + " (file missing)"
	}
	enc, err := shard.SniffFileEncoding(resolved)
	if err != nil {
		return file
	}
	return file + " [" + enc + "]"
}

// printStatus renders one journal state. Output is deterministic in the
// journal's content (no wall-clock), which keeps it golden-testable and
// script-friendly.
func printStatus(w io.Writer, st *dispatch.JournalState) error {
	bal := ""
	if st.Balance != "" {
		bal = ", balance " + st.Balance
	}
	fmt.Fprintf(w, "dispatch run: selection %q, %d shards (journal v%d%s)\n", st.Selection, st.Shards, st.Version, bal)
	if !experiment.SelectionReproducible(st.Selection) {
		fmt.Fprintln(w, "note: non-reproducible selection — cell payloads measure the worker hosts, not the seed")
	}
	fmt.Fprintln(w)

	headers := []string{"shard", "state", "attempts", "steals", "worker", "detail"}
	var rows [][]string
	for _, sh := range st.ShardStates {
		state := string(sh.State)
		worker := sh.Worker
		detail := ""
		switch {
		case sh.Superseded:
			// A split parent or a re-planned-away prior batch: nobody owes
			// its cells any more — later batches carry them.
			state = "dropped"
			detail = "superseded; its cells moved to later batches"
		case sh.State == dispatch.ShardDone:
			if sh.Winner != "" {
				worker = sh.Winner
			}
			detail = shardFileDetail(st.Path, sh.File)
		case sh.State == dispatch.ShardFailed:
			detail = truncateDetail(sh.Err)
		case sh.State == dispatch.ShardRunning:
			detail = "attempt journaled, no outcome yet (in flight, or interrupted)"
		case sh.Spec != "":
			detail = truncateDetail("cells " + sh.Spec)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", sh.Index),
			state,
			fmt.Sprintf("%d", sh.Attempts),
			fmt.Sprintf("%d", sh.Steals),
			worker,
			detail,
		})
	}
	fmt.Fprintln(w, textplot.Table(headers, rows))

	done := st.DoneCount()
	total := st.Shards
	if st.Balance != "" {
		// A balanced dispatch's unit count is the planned (and possibly
		// re-split) batch table, not the requested shard count.
		total = 0
		for _, sh := range st.ShardStates {
			if !sh.Superseded {
				total++
			}
		}
	}
	pct := 100.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	fmt.Fprintf(w, "coverage: %d/%d shards done (%.1f%%)\n", done, total, pct)
	if missing := st.Missing(); len(missing) > 0 {
		fmt.Fprintf(w, "missing shards:%s\n", shardList(missing))
	}
	if failed := st.Failed(); len(failed) > 0 {
		fmt.Fprintf(w, "failed shards:%s (every attempt is in the journal)\n", shardList(failed))
	}
	// The driver removes partial.json after the final merge; once merged,
	// the journaled partial event only describes a deleted file.
	if st.PartialFile != "" && !st.Merged {
		fmt.Fprintf(w, "partial merge: %s (%d shards, %d cells)\n", st.PartialFile, st.PartialShards, st.PartialCells)
	}
	if st.Merged {
		fmt.Fprintf(w, "merged: yes (%d cells)\n", st.MergedCells)
	} else {
		fmt.Fprintf(w, "merged: no — resume by re-running the dispatch with the same -dir,\n")
		fmt.Fprintf(w, "or render provisional results: ioschedbench merge -partial <shard files>\n")
	}
	return nil
}
