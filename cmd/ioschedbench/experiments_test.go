package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestExperimentsGolden pins the experiments subcommand's exact output:
// the listing is generated from the registry, so drift means either an
// intentional registry change (re-run with -update) or a broken one.
func TestExperimentsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperiments(nil, &buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/experiments/golden.txt"
	if *update {
		if err := os.MkdirAll("testdata/experiments", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("experiments output drifted from %s (re-run with -update after intentional changes):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestExperimentsListsRegistry: every registered experiment appears once,
// in canonical order, and the new tailq study is among them.
func TestExperimentsListsRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperiments(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	last := -1
	for _, name := range []string{"fig5", "fig6", "fig7", "table1", "motivation", "ablation", "multidevice", "jitter", "tailq"} {
		// Match the name at the start of its table row: descriptions may
		// mention another experiment's name ("jitter" appears in the
		// motivation study's description).
		idx := strings.Index(out, "\n"+name+" ")
		if idx < 0 {
			t.Fatalf("experiment %q missing from listing:\n%s", name, out)
		}
		if idx < last {
			t.Errorf("experiment %q listed out of canonical order", name)
		}
		last = idx
	}
}

func TestExperimentsRejectsArguments(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperiments([]string{"bogus"}, &buf); err == nil {
		t.Error("stray argument accepted")
	}
}
