package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/shard"
)

// silenceStdout routes the renderers' stdout to /dev/null for the
// duration of fn, so compatibility tests don't flood the test log with
// charts.
func silenceStdout(t *testing.T, fn func() error) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	old := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return fn()
}

// TestRenderMergedAcceptsPreRegistryFiles: an "all" cover written before
// an experiment registered (here: a file with the tailq run stripped,
// standing in for any pre-registry sweep) must still render — the file's
// recorded run list, not this binary's registry, says what the sweep
// computed. A specifically selected experiment must still be present.
func TestRenderMergedAcceptsPreRegistryFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := experiment.ShardParams{Systems: 2, Seed: 1, GAPopulation: 8, GAGenerations: 5}
	f, err := experiment.RunShard(experiment.ExpAll, p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var runs []shard.Run
	for _, r := range f.Runs {
		if r.Experiment != experiment.ExpTailQ {
			runs = append(runs, r)
		}
	}
	old := *f
	old.Runs = runs
	if err := silenceStdout(t, func() error { return renderMerged(&old, "") }); err != nil {
		t.Errorf("pre-registry all-file failed to render: %v", err)
	}

	// A file that never computed a specifically selected experiment is
	// still an error, not a silent no-op.
	bad := *f
	bad.Selection = experiment.ExpTailQ
	bad.Runs = runs
	err = silenceStdout(t, func() error { return renderMerged(&bad, "") })
	if err == nil || !strings.Contains(err.Error(), "tailq") {
		t.Errorf("missing selected run not reported: %v", err)
	}
}
