package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coord"
)

// copyTree copies the fixture state directory into a scratch directory:
// the coordinator opens journals for append, so tests must never load
// the checked-in fixture in place.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
}

// TestServeStatusGolden pins the serve status endpoint's exact output on
// a journaled fixture: a merged 2-shard run, a failed run reloaded as
// resumable, and a run interrupted before any worker appeared. The
// status text is derived from the journals alone — no wall-clock, no
// ordering races — which is what makes it golden-testable, exactly like
// the status subcommand's golden next door.
func TestServeStatusGolden(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, filepath.Join("testdata", "serve"), dir)
	c, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %s: %s", resp.Status, got)
	}

	golden := filepath.Join("testdata", "serve", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("serve status output drifted from %s (re-run with -update after intentional changes):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestServeStatusResumesRuns spells out what the golden pins: the
// journals alone reconstruct every run's state across a restart.
func TestServeStatusResumesRuns(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, filepath.Join("testdata", "serve"), dir)
	c, err := coord.New(dir, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := c.StatusText()
	if !strings.Contains(out, "coordinator: 3 run(s)") {
		t.Errorf("run count wrong:\n%s", out)
	}
	st, err := c.Status("run-0001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "merged" || st.Done != 2 || st.MergedCells != 60 {
		t.Errorf("run-0001 resumed as %+v, want merged 2/2 with 60 cells", st)
	}
	// run-0002's worker loss exhausted its attempts live, but a restart
	// is operator intervention: the journaled attempts reload as
	// resumable work with a fresh budget.
	st, err = c.Status("run-0002")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Done != 0 {
		t.Errorf("run-0002 resumed as %+v, want running 0/2", st)
	}
	st, err = c.Status("run-0003")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Total != 3 {
		t.Errorf("run-0003 resumed as %+v, want running 0/3", st)
	}
}
