package main

// The experiments subcommand: list the registered experiments — name,
// grid shape, cell-sharing key, CSV output and description — straight
// from the registry, so the listing can never drift from what the binary
// actually runs.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

// runExperiments renders the registry listing to w.
func runExperiments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench experiments")
		fmt.Fprintln(os.Stderr, "\nLists the registered experiments in the canonical \"all\" order.")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	// Grid shapes are configuration-dependent; show them at the default
	// scale the CLI runs without flags.
	rc := experiment.ShardParams{Seed: 1}.Context(1)
	headers := []string{"name", "grid", "cell key", "payload", "repro", "csv", "description"}
	var rows [][]string
	for _, e := range experiment.All() {
		g, err := e.Grid(rc)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		grid, key, payload := "-", "-", "-"
		if c := e.Codec(); c.New != nil {
			grid = fmt.Sprintf("%dx%d", g.Points, g.Systems)
			key = e.CellKey()
			// The payload column names the codec version and whether binary
			// shard files pack this experiment's cells natively (a codec is
			// registered under the experiment's name and version) or fall
			// back to the compact-JSON column.
			payload = fmt.Sprintf("v%d json", c.Version)
			if _, ok := shard.LookupPayloadCodec(e.Name(), c.Version); ok {
				payload = fmt.Sprintf("v%d binary", c.Version)
			}
		}
		repro := "yes"
		if !experiment.Reproducible(e) {
			repro = "no (host)"
		}
		csvName := e.CSVName()
		if csvName == "" {
			csvName = "-"
		}
		rows = append(rows, []string{e.Name(), grid, key, payload, repro, csvName, e.Describe()})
	}
	fmt.Fprintln(w, "Registered experiments (canonical registry order; grids at the default scale):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, textplot.Table(headers, rows))
	fmt.Fprintln(w, "Experiments sharing a cell key are computed once per run; \"-\" marks a")
	fmt.Fprintln(w, "closed-form experiment with no grid to shard. The payload column is the")
	fmt.Fprintln(w, "cell payload version and how -codec binary packs it (binary = a native")
	fmt.Fprintln(w, "columnar codec, json = the compact-JSON fallback column).")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "repro \"no (host)\" marks a non-reproducible experiment: its payloads measure")
	fmt.Fprintln(w, "this machine, not the seed, so it runs only when named (excluded from")
	fmt.Fprintln(w, "-experiment all), is never cell-cached, and its shard files carry a host")
	fmt.Fprintln(w, "fingerprint. Run it with the replay subcommand: ioschedbench replay.")
	return nil
}
