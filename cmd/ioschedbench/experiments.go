package main

// The experiments subcommand: list the registered experiments — name,
// grid shape, cell-sharing key, CSV output and description — straight
// from the registry, so the listing can never drift from what the binary
// actually runs.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiment"
	"repro/internal/textplot"
)

// runExperiments renders the registry listing to w.
func runExperiments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench experiments")
		fmt.Fprintln(os.Stderr, "\nLists the registered experiments in the canonical \"all\" order.")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	// Grid shapes are configuration-dependent; show them at the default
	// scale the CLI runs without flags.
	rc := experiment.ShardParams{Seed: 1}.Context(1)
	headers := []string{"name", "grid", "cell key", "csv", "description"}
	var rows [][]string
	for _, e := range experiment.All() {
		g, err := e.Grid(rc)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		grid, key := "-", "-"
		if e.Codec().New != nil {
			grid = fmt.Sprintf("%dx%d", g.Points, g.Systems)
			key = e.CellKey()
		}
		csvName := e.CSVName()
		if csvName == "" {
			csvName = "-"
		}
		rows = append(rows, []string{e.Name(), grid, key, csvName, e.Describe()})
	}
	fmt.Fprintln(w, "Registered experiments (canonical \"all\" order; grids at the default scale):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, textplot.Table(headers, rows))
	fmt.Fprintln(w, "Experiments sharing a cell key are computed once per run; \"-\" marks a")
	fmt.Fprintln(w, "closed-form experiment with no grid to shard.")
	return nil
}
