package main

// The work subcommand: a coordinator client that wraps the same
// subprocess worker "ioschedbench dispatch" uses. It registers with a
// coordinator, heartbeats, leases units, computes them by re-executing
// this binary, and pushes the result files back over the wire — no
// shared filesystem with the coordinator.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro/internal/coord"
	"repro/internal/dispatch"
	"repro/internal/shard"
)

func runWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	cf := registerCacheFlags(fs)
	codecF := registerCodecFlag(fs)
	var (
		connect  = fs.String("connect", "", "coordinator base URL, e.g. http://host:8337 (required)")
		name     = fs.String("name", "", "worker name reported to the coordinator (default: hostname)")
		parallel = fs.Int("parallel", 0, "goroutines per unit, forwarded to the compute subprocess (0 = one per CPU); never changes results")
		bin      = fs.String("bin", "", "experiment binary to execute per unit (default: this binary)")
		scratch  = fs.String("scratch", "", "local directory for result files before they are pushed (default: fresh temp dir)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench work -connect http://host:8337")
		fmt.Fprintln(os.Stderr, "\nServes a coordinator as one worker: lease units, compute them in a")
		fmt.Fprintln(os.Stderr, "subprocess, push the results back. Runs until interrupted.")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *connect == "" {
		fs.Usage()
		return fmt.Errorf("-connect is required")
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = host
	}
	binary := *bin
	if binary == "" {
		own, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary (use -bin): %w", err)
		}
		binary = own
	}
	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		return err
	}
	var extra []string
	if *parallel > 0 {
		extra = append(extra, "-parallel", strconv.Itoa(*parallel))
	}
	if cdir := cf.resolvedDir(); cdir != "" {
		// The cell cache is host-local, exactly as under dispatch: hits are
		// byte-identical to recomputation, so it never changes what is
		// pushed.
		extra = append(extra, "-cache-dir", cdir)
	}
	if codec != shard.EncodingJSON {
		// Host-local like the cache: the coordinator stores pushed files
		// verbatim and decodes either encoding, so this only shrinks what
		// travels over the wire.
		extra = append(extra, "-codec", codec)
	}

	logger := log.New(os.Stderr, "ioschedbench: work: ", 0)
	w := &dispatch.LocalProcWorker{
		Binary:    binary,
		ExtraArgs: extra,
		Stderr:    os.Stderr,
		Label:     *name,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = coord.RunWorker(ctx, &coord.Client{BaseURL: *connect}, *name, w, coord.WorkerOptions{
		ScratchDir: *scratch,
		Logf:       logger.Printf,
	})
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
