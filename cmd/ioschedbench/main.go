// Command ioschedbench regenerates every table and figure of the paper's
// evaluation (Section V) plus the motivation, ablation and extension
// experiments. The experiments come from a pluggable registry
// (internal/experiment): run "ioschedbench experiments" for the live
// list. A few:
//
//	ioschedbench -experiment fig5        # schedulability vs utilisation
//	ioschedbench -experiment fig6        # Ψ of the offline methods
//	ioschedbench -experiment fig7        # Υ of the offline methods
//	ioschedbench -experiment table1      # hardware cost model vs paper
//	ioschedbench -experiment motivation  # NoC jitter vs pre-loaded controller
//	ioschedbench -experiment ablation    # design-choice variants
//	ioschedbench -experiment multidevice # partitioned-controller scaling
//	ioschedbench -experiment tailq       # per-job quality tail distribution
//	ioschedbench -experiment all
//
// The replay subcommand measures delivered I/O timing instead of
// computing it: it replays the static scheduler's output against this
// machine's clock on pinned executor threads (internal/replay) and
// reports dispatch-jitter distributions. Its experiments are
// non-reproducible — the payloads measure the host, not the seed — so
// they are excluded from "all", never cell-cached, and their shard
// files carry a host fingerprint. See docs/REPLAY.md:
//
//	ioschedbench replay                  # jitter at the default scale
//	ioschedbench replay -tick 10us -cap 50ms -no-pin -out jitter.json
//
// The default configuration is a calibrated scale-down (100 systems per
// point, GA 60×80); -paperscale switches to the paper's 1000 systems and
// GA 300×500, which takes hours. All runs are deterministic in -seed:
// the runners fan work across -parallel workers (0 = one per CPU) on the
// deterministic execution engine, so the output is byte-identical at
// every -parallel value.
//
// # Sharding
//
// Paper-scale sweeps split across processes — or machines — with
// -shards/-shard-index: each invocation evaluates its round-robin share
// of every experiment grid and writes the cells to a versioned JSON file
// instead of rendering output. The merge subcommand reassembles the
// shard files and renders output byte-identical to the unsharded run:
//
//	for i in 0 1 2; do
//	    ioschedbench -paperscale -shards 3 -shard-index $i -out shard$i.json &
//	done; wait
//	ioschedbench merge shard0.json shard1.json shard2.json
//
// Every shard must run with the same experiment flags (-experiment,
// -seed, -systems, …); merge verifies this from the parameters recorded
// in each file and refuses to mix runs, naming the offending file and
// parameter. -parallel is per-host and may differ. If a shard is lost,
// re-run just that index: cells derive their seeds from their grid
// position, so a re-run reproduces them exactly.
//
// -cells evaluates an explicit cell set instead of a round-robin share
// ("fig5=0-7;fig6=2,5" — one clause per selected run, ascending global
// cell indices) and writes a cell-batch file; merge reassembles a set
// of batch files the same way, discarding overlap first-completion-wins
// (work stealing computes some cells twice; determinism makes both
// copies byte-identical). Batches are the unit of balanced dispatch.
//
// -codec selects the cell-file container this process writes: json (the
// human-readable default) or binary, a compact columnar container about
// a tenth the size at paper scale. Readers always auto-detect per file,
// so shard sets, caches and dispatch directories may mix encodings and
// still merge byte-identical to the unsharded run. The layouts are
// specified in docs/SHARD_FORMAT.md.
//
// # Dispatch
//
// The dispatch subcommand automates the shard → retry → merge loop: it
// fans the shard indices out to a pool of workers, re-runs shards whose
// worker crashed, timed out or wrote a corrupt or partial file, and
// renders the merged result — still byte-identical to the unsharded run:
//
//	ioschedbench dispatch -workers 3 -retries 2 -paperscale -dir sweep/
//
// Local workers re-execute this binary; -worker command templates cover
// remote hosts instead:
//
//	ioschedbench dispatch -shards 8 -retries 2 -dir sweep/ \
//	    -worker 'ssh host1 ioschedbench {args} -out /dev/stdout' \
//	    -worker 'ssh host2 ioschedbench {args} -out /dev/stdout'
//
// With -dir set, an interrupted dispatch resumes: completed shards are
// journalled and skipped, only missing indices re-run.
//
// -balance cost replaces the fixed round-robin shares with cell batches
// packed by the experiments' per-cell cost model (a resume re-packs the
// missing cells under costs refined by observed wall-clock from the
// journal), and -steal lets idle workers race a duplicate copy of the
// heaviest straggling batch — first completion wins. Neither can change
// a byte of the merged output.
//
// # Streaming and observability
//
// Long sweeps need not be opaque until they finish. dispatch -progress
// draws a live status line (per-shard state and an ETA from observed
// shard wall-clock); dispatch -partial-every keeps a provisional merge
// of everything completed so far in <dir>/partial.json; the status
// subcommand reads any dispatch's journal — live or dead — and names
// exactly the missing shard indices; and merge -partial renders
// provisional, coverage-annotated figures from whatever shard files
// exist:
//
//	ioschedbench dispatch -workers 3 -dir sweep/ -progress -partial-every 5m &
//	ioschedbench status sweep/
//	ioschedbench merge -partial sweep/partial.json
//
// Partial output converges: once the cover completes, the annotations
// disappear and the output is byte-identical to the unsharded run.
//
// # Coordinator service
//
// Where dispatch drives one sweep from one process over a shared
// filesystem, the serve subcommand runs a long-lived coordinator that
// workers connect to over HTTP and push result files back to — no
// shared filesystem, multiple concurrent sweeps, and journalled state a
// restart resumes from:
//
//	ioschedbench serve -dir state/ &
//	ioschedbench work -connect http://localhost:8337 &   # per machine
//	ioschedbench submit -connect http://localhost:8337 -wait -shards 8
//
// A worker that crashes or goes silent mid-unit is detected by
// heartbeat timeout and its units reassigned; duplicate completions are
// discarded first-completion-wins, so the merged output stays
// byte-identical to the unsharded run regardless of failures. The wire
// protocol is specified in docs/COORDINATOR.md.
//
// The shard file format is specified in docs/SHARD_FORMAT.md, the
// journal and progress-event schemas in docs/DISPATCH.md, the registry
// and its extension walkthrough in docs/EXPERIMENTS.md, and the full
// flag reference in docs/CLI.md.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			if err := runMerge(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: merge: %v\n", err)
				os.Exit(1)
			}
			return
		case "dispatch":
			if err := runDispatch(os.Args[2:]); err != nil {
				// Route through fail so a bad -experiment value keeps its
				// historical exit code 2 here too.
				fail(fmt.Errorf("dispatch: %w", err))
			}
			return
		case "status":
			if err := runStatus(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: status: %v\n", err)
				os.Exit(1)
			}
			return
		case "experiments":
			if err := runExperiments(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: experiments: %v\n", err)
				os.Exit(1)
			}
			return
		case "bench":
			if err := runBench(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: bench: %v\n", err)
				os.Exit(1)
			}
			return
		case "replay":
			if err := runReplay(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: replay: %v\n", err)
				os.Exit(1)
			}
			return
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: serve: %v\n", err)
				os.Exit(1)
			}
			return
		case "work":
			if err := runWork(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: work: %v\n", err)
				os.Exit(1)
			}
			return
		case "submit":
			if err := runSubmit(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: submit: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	rf := registerRunFlags(flag.CommandLine)
	cf := registerCacheFlags(flag.CommandLine)
	var (
		codecF     = registerCodecFlag(flag.CommandLine)
		csvDir     = flag.String("csv", "", "directory to write CSV result files into")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = one per CPU, 1 = serial); never changes results")
		shards     = flag.Int("shards", 0, "split the experiment grids into this many shards (0 = run unsharded)")
		shardIndex = flag.Int("shard-index", 0, "which shard this process evaluates, in [0,shards)")
		cellSpec   = flag.String("cells", "", "evaluate exactly these cells (\"fig5=0-2,9;fig6=\") and write a cell-batch file to -out; replaces -shards/-shard-index")
		out        = flag.String("out", "", "shard cell file to write (required with -shards or -cells; implies -shards 1 alone)")
	)
	flag.Parse()

	params, err := rf.shardParams()
	if err != nil {
		fail(err)
	}
	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		fail(err)
	}
	cache, err := cf.open()
	if err != nil {
		fail(err)
	}
	if cache != nil {
		if err := cache.SetEncoding(codec); err != nil {
			fail(err)
		}
	}

	if *cellSpec != "" {
		if *shards > 0 {
			fail(fmt.Errorf("-cells and -shards are mutually exclusive"))
		}
		if err := writeBatch(*rf.which, params, *parallel, *cellSpec, *out, cache, codec); err != nil {
			fail(err)
		}
		return
	}

	if *shards > 0 || *out != "" {
		n := *shards
		if n == 0 {
			n = 1
		}
		if err := writeShard(*rf.which, params, *parallel, n, *shardIndex, *out, cache, codec); err != nil {
			fail(err)
		}
		return
	}

	if err := render(*rf.which, params.Context(*parallel).WithCache(cache), nil, *csvDir); err != nil {
		fail(err)
	}
}

// cacheFlags holds the cell-cache flags shared by the top-level command
// and the dispatch subcommand. The cache is host-local (like -parallel):
// it never changes results — hits are byte-identical to recomputation —
// so it is not part of the run params and never forwarded through
// dispatch.Spec.WorkerArgs (the dispatch CLI forwards it to its local
// workers itself).
type cacheFlags struct {
	dir     *string
	noCache *bool
}

func registerCacheFlags(fs *flag.FlagSet) *cacheFlags {
	return &cacheFlags{
		dir:     fs.String("cache-dir", "", "content-addressed cell cache directory (default: $IOSCHEDBENCH_CACHE_DIR; empty = no caching)"),
		noCache: fs.Bool("no-cache", false, "disable the cell cache even when -cache-dir or $IOSCHEDBENCH_CACHE_DIR is set"),
	}
}

// open resolves the flags (and the IOSCHEDBENCH_CACHE_DIR fallback) into
// an opened store, or nil when caching is off.
func (c *cacheFlags) open() (*cellcache.Store, error) {
	if *c.noCache {
		return nil, nil
	}
	dir := *c.dir
	if dir == "" {
		dir = os.Getenv("IOSCHEDBENCH_CACHE_DIR")
	}
	if dir == "" {
		return nil, nil
	}
	return cellcache.Open(dir)
}

// registerCodecFlag registers the shared -codec flag: which cell-file
// encoding this process writes (shard files, cell batches, cache
// entries). It is host-local like -parallel and -cache-dir — readers
// auto-detect the encoding per file, so any mix of settings across a
// worker pool merges identically — and is therefore never part of the
// run params.
func registerCodecFlag(fs *flag.FlagSet) *string {
	return fs.String("codec", "", "cell-file encoding to write: json (default) or binary; readers auto-detect either")
}

// resolvedDir returns the effective cache directory ("" = caching off),
// for forwarding to worker subprocesses.
func (c *cacheFlags) resolvedDir() string {
	if *c.noCache {
		return ""
	}
	if *c.dir != "" {
		return *c.dir
	}
	return os.Getenv("IOSCHEDBENCH_CACHE_DIR")
}

// runFlags holds the experiment-run flags shared by the top-level command
// and the dispatch subcommand, so both spell the same run identically
// (dispatch forwards them to its workers via dispatch.Spec.WorkerArgs).
type runFlags struct {
	which      *string
	systems    *int
	seed       *int64
	gaPop      *int
	gaGens     *int
	paperScale *bool
	ablU       *float64
}

func registerRunFlags(fs *flag.FlagSet) *runFlags {
	// The -experiment value set comes from the registry, so a newly
	// registered experiment is selectable with no CLI edit.
	usage := strings.Join(experiment.Names(), "|") + "|" + experiment.ExpAll
	return &runFlags{
		which:      fs.String("experiment", experiment.ExpAll, usage),
		systems:    fs.Int("systems", 0, "systems per utilisation point (0 = config default)"),
		seed:       fs.Int64("seed", 1, "random seed"),
		gaPop:      fs.Int("gapop", 0, "GA population (0 = config default)"),
		gaGens:     fs.Int("gagens", 0, "GA generations (0 = config default)"),
		paperScale: fs.Bool("paperscale", false, "use the paper's full experiment scale"),
		ablU:       fs.Float64("ablation-u", 0.6, "utilisation for the ablation study"),
	}
}

// shardParams resolves the registered flags into run params. A zero
// -ablation-u would silently resolve to the 0.6 default (ShardParams
// treats the zero value as "unset"); reject it rather than mislabel the
// run.
func (r *runFlags) shardParams() (experiment.ShardParams, error) {
	if *r.ablU <= 0 {
		return experiment.ShardParams{}, fmt.Errorf("-ablation-u %v: the study utilisation must be positive", *r.ablU)
	}
	return experiment.ShardParams{
		PaperScale:    *r.paperScale,
		Systems:       *r.systems,
		Seed:          *r.seed,
		GAPopulation:  *r.gaPop,
		GAGenerations: *r.gaGens,
		AblationU:     *r.ablU,
	}, nil
}

// fail prints the error and exits — with the historical code 2 for a bad
// -experiment value (on the sharded and unsharded paths alike), 1
// otherwise.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "ioschedbench: %v\n", err)
	if errors.Is(err, experiment.ErrUnknownExperiment) {
		os.Exit(2)
	}
	os.Exit(1)
}

// writeShard evaluates one shard of the selection's grids and writes the
// cell file. Progress goes to stderr: stdout stays reserved for rendered
// results, so sharded runs compose with shells and Makefiles the same way
// unsharded runs do.
func writeShard(selection string, p experiment.ShardParams, parallel, shards, index int, out string, cache *cellcache.Store, codec string) error {
	if out == "" {
		return fmt.Errorf("sharded runs need -out <file> for the cell file")
	}
	f, err := experiment.RunShardCached(selection, p, parallel, shards, index, cache)
	if err != nil {
		return err
	}
	if err := f.WriteFileAs(out, codec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ioschedbench: wrote shard %d/%d of %q (%d cells across %d runs) to %s\n",
		index, shards, selection, f.CellCount(), len(f.Runs), out)
	return nil
}

// writeBatch evaluates exactly the cells of a -cells spec and writes the
// cell-batch file (shard.BatchInfo header) — the worker side of balanced
// dispatch, and usable by hand for surgical re-runs. The spec must name
// the selection's runs in their canonical order, so a batch file always
// merges against its siblings without reordering.
func writeBatch(selection string, p experiment.ShardParams, parallel int, spec, out string, cache *cellcache.Store, codec string) error {
	if out == "" {
		return fmt.Errorf("-cells needs -out <file> for the cell-batch file")
	}
	names, err := experiment.SelectionRuns(selection)
	if err != nil {
		return err
	}
	specNames, sets, err := shard.ParseCellSpec(spec)
	if err != nil {
		return err
	}
	if len(specNames) != len(names) {
		return fmt.Errorf("-cells names %d runs, selection %q has %d (%s)",
			len(specNames), selection, len(names), strings.Join(names, ","))
	}
	for i, n := range specNames {
		if n != names[i] {
			return fmt.Errorf("-cells run %d is %q, want %q (the selection's canonical order)", i, n, names[i])
		}
	}
	f, err := experiment.RunBatchCached(selection, p, parallel, sets, cache)
	if err != nil {
		return err
	}
	if err := f.WriteFileAs(out, codec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ioschedbench: wrote cell batch of %q (%d cells across %d runs) to %s\n",
		selection, f.CellCount(), len(f.Runs), out)
	return nil
}

// runMerge reassembles shard files and renders the selection exactly as
// the unsharded run would have. With -partial it accepts any consistent
// subset of a run's shard files — including partial cover files a
// previous -partial merge (or the dispatch driver's -partial-every)
// wrote — and renders provisional output with explicit coverage
// annotations; once the set is complete the output is byte-identical to
// the strict merge's, annotations and all gone.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	csvDir := fs.String("csv", "", "directory to write CSV result files into")
	out := fs.String("out", "", "also write the merged cell file to this path (a valid 1-shard file; with -partial, a partial cover file)")
	partial := fs.Bool("partial", false, "accept an incomplete shard set and render provisional results with coverage annotations")
	codecF := registerCodecFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench merge [-partial] [-codec json|binary] [-csv dir] [-out merged.json] shard.json ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	codec, err := shard.ParseEncoding(*codecF)
	if err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no shard files given")
	}
	files := make([]*shard.File, len(paths))
	for i, path := range paths {
		f, err := shard.ReadFile(path)
		if err != nil {
			return err
		}
		files[i] = f
	}
	allBatch := true
	for _, f := range files {
		if f.Batch == nil {
			allBatch = false
			break
		}
	}
	if allBatch {
		// Cell-batch files (balanced dispatch, or -cells by hand) merge by
		// cell key: the set must cover each run's grid exactly, and
		// overlapping cells — steal races — keep the first completion.
		if *partial {
			return fmt.Errorf("-partial renders shard covers; cell-batch files always merge strictly (drop -partial)")
		}
		merged, dups, err := shard.MergeBatches(files)
		if err != nil {
			return err
		}
		if dups > 0 {
			fmt.Fprintf(os.Stderr, "ioschedbench: merge: %d duplicate cells discarded (first completion wins)\n", dups)
		}
		if *out != "" {
			if err := merged.WriteFileAs(*out, codec); err != nil {
				return err
			}
		}
		return renderMerged(merged, *csvDir)
	}
	if *partial {
		cover, err := shard.MergePartial(files)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := cover.File.WriteFileAs(*out, codec); err != nil {
				return err
			}
		}
		if cover.Complete() {
			// The cover grew to completion: render exactly the full merge.
			return renderMerged(cover.File, *csvDir)
		}
		return renderPartialCover(cover, *csvDir)
	}
	merged, err := shard.Merge(files)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := merged.WriteFileAs(*out, codec); err != nil {
			return err
		}
	}
	return renderMerged(merged, *csvDir)
}

// renderMerged renders a merged cell file exactly as the unsharded run
// would have, rebuilding the configuration from the recorded params. The
// merge and dispatch subcommands share it, which is what makes their
// stdout byte-identical to the unsharded run's.
func renderMerged(merged *shard.File, csvDir string) error {
	var params experiment.ShardParams
	if err := json.Unmarshal(merged.Params, &params); err != nil {
		return fmt.Errorf("recorded params: %w", err)
	}
	byName := make(map[string][]shard.Cell, len(merged.Runs))
	for _, r := range merged.Runs {
		byName[r.Experiment] = r.Cells
	}
	cells := func(name string) ([]shard.Cell, bool) { cs, ok := byName[name]; return cs, ok }
	return render(merged.Selection, params.Context(0), cells, csvDir)
}

// render draws the selected experiments in the registry's canonical
// order. cells supplies a merged run's cell sets; nil runs the
// experiments in process. Both paths aggregate and render through the
// same registry hooks, which is what makes merged output byte-identical
// to an unsharded run's — and what makes a newly registered experiment
// renderable with no CLI edit.
//
// An "all" merge renders the grid experiments the file recorded: a file
// written before an experiment registered legitimately lacks its cells,
// and its recorded run list — not this binary's registry — says what
// the sweep computed. A specifically selected experiment must be
// present.
func render(which string, rc experiment.RunContext, cells func(name string) ([]shard.Cell, bool), csvDir string) error {
	ran := false
	// In-process "all" runs reuse one cell computation per cell key
	// (Figures 6 and 7 share their grid).
	liveCache := map[string][]shard.Cell{}
	for _, e := range experiment.All() {
		name := e.Name()
		if which != experiment.ExpAll && which != name {
			continue
		}
		if which == experiment.ExpAll && !experiment.Reproducible(e) {
			// Non-reproducible experiments (wall-clock measurements) run
			// only when named, so "all" output stays a pure function of the
			// seed on every machine.
			continue
		}
		res, err := resultFor(e, rc, cells, liveCache)
		if err != nil {
			if err == errRunNotRecorded && which == experiment.ExpAll {
				continue
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		ran = true
		fmt.Print(e.Header(rc))
		if err := renderBody(e, res, nil, csvDir); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if !ran {
		return fmt.Errorf("%w %q", experiment.ErrUnknownExperiment, which)
	}
	return nil
}

// errRunNotRecorded marks a registered grid experiment absent from a
// merged file's recorded runs (a file from before the experiment
// registered).
var errRunNotRecorded = fmt.Errorf("shard files carry no cells for this experiment")

// resultFor aggregates one experiment's result from the cell source (or
// in process when cells is nil).
func resultFor(e experiment.Experiment, rc experiment.RunContext, cells func(name string) ([]shard.Cell, bool), liveCache map[string][]shard.Cell) (experiment.Result, error) {
	name := e.Name()
	if e.Codec().New == nil {
		// Closed-form: recomputed at render time on every path.
		return experiment.Run(name, rc)
	}
	if cells != nil {
		cs, ok := cells(name)
		if !ok {
			return nil, errRunNotRecorded
		}
		return experiment.FromCells(name, rc, cs)
	}
	key := e.CellKey()
	cs, ok := liveCache[key]
	if !ok {
		var err error
		if cs, _, err = experiment.RunCells(name, rc, nil); err != nil {
			return nil, err
		}
		liveCache[key] = cs
	}
	return experiment.FromCells(name, rc, cs)
}

// renderBody renders a result below its header: optional chart, table
// (with a per-point coverage column when cov is a partial cover whose
// points map to the table rows), optional footer and CSV.
func renderBody(e experiment.Experiment, res experiment.Result, cov *experiment.Coverage, csvDir string) error {
	if p, ok := res.(experiment.Plottable); ok {
		x, series := p.Series()
		plotSeries(p.PlotTitle(), x, series)
	}
	h, rows := res.Rows()
	if cov != nil && len(rows) == len(cov.PointHave) {
		h, rows = coverageColumn(h, rows, *cov)
	}
	fmt.Println(textplot.Table(h, rows))
	if f, ok := res.(experiment.Footnoted); ok {
		if note := f.Footer(); note != "" {
			fmt.Println(note)
		}
	}
	if e.CSVName() != "" {
		return writeCSV(csvDir, e.CSVName(), h, rows)
	}
	return nil
}

func plotSeries(title string, xlabels []string, cs []experiment.Curveable) {
	var series []textplot.Series
	for _, c := range cs {
		series = append(series, textplot.Series{Name: c.Name, Values: c.Values})
	}
	fmt.Println(textplot.Chart(title, xlabels, series, 0, 1, 12))
}

func writeCSV(dir, name string, headers []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
