// Command ioschedbench regenerates every table and figure of the paper's
// evaluation (Section V) plus the motivation and ablation experiments:
//
//	ioschedbench -experiment fig5        # schedulability vs utilisation
//	ioschedbench -experiment fig6        # Ψ of the offline methods
//	ioschedbench -experiment fig7        # Υ of the offline methods
//	ioschedbench -experiment table1      # hardware cost model vs paper
//	ioschedbench -experiment motivation  # NoC jitter vs pre-loaded controller
//	ioschedbench -experiment ablation    # design-choice variants
//	ioschedbench -experiment multidevice # partitioned-controller scaling
//	ioschedbench -experiment all
//
// The default configuration is a calibrated scale-down (100 systems per
// point, GA 60×80); -paperscale switches to the paper's 1000 systems and
// GA 300×500, which takes hours. All runs are deterministic in -seed:
// the runners fan work across -parallel workers (0 = one per CPU) on the
// deterministic execution engine, so the output is byte-identical at
// every -parallel value.
//
// # Sharding
//
// Paper-scale sweeps split across processes — or machines — with
// -shards/-shard-index: each invocation evaluates its round-robin share
// of every experiment grid and writes the cells to a versioned JSON file
// instead of rendering output. The merge subcommand reassembles the
// shard files and renders output byte-identical to the unsharded run:
//
//	for i in 0 1 2; do
//	    ioschedbench -paperscale -shards 3 -shard-index $i -out shard$i.json &
//	done; wait
//	ioschedbench merge shard0.json shard1.json shard2.json
//
// Every shard must run with the same experiment flags (-experiment,
// -seed, -systems, …); merge verifies this from the parameters recorded
// in each file and refuses to mix runs. -parallel is per-host and may
// differ. If a shard is lost, re-run just that index: cells derive their
// seeds from their grid position, so a re-run reproduces them exactly.
//
// # Dispatch
//
// The dispatch subcommand automates the shard → retry → merge loop: it
// fans the shard indices out to a pool of workers, re-runs shards whose
// worker crashed, timed out or wrote a corrupt or partial file, and
// renders the merged result — still byte-identical to the unsharded run:
//
//	ioschedbench dispatch -workers 3 -retries 2 -paperscale -dir sweep/
//
// Local workers re-execute this binary; -worker command templates cover
// remote hosts instead:
//
//	ioschedbench dispatch -shards 8 -retries 2 -dir sweep/ \
//	    -worker 'ssh host1 ioschedbench {args} -out /dev/stdout' \
//	    -worker 'ssh host2 ioschedbench {args} -out /dev/stdout'
//
// With -dir set, an interrupted dispatch resumes: completed shards are
// journalled and skipped, only missing indices re-run.
//
// # Streaming and observability
//
// Long sweeps need not be opaque until they finish. dispatch -progress
// draws a live status line (per-shard state and an ETA from observed
// shard wall-clock); dispatch -partial-every keeps a provisional merge
// of everything completed so far in <dir>/partial.json; the status
// subcommand reads any dispatch's journal — live or dead — and names
// exactly the missing shard indices; and merge -partial renders
// provisional, coverage-annotated figures from whatever shard files
// exist:
//
//	ioschedbench dispatch -workers 3 -dir sweep/ -progress -partial-every 5m &
//	ioschedbench status sweep/
//	ioschedbench merge -partial sweep/partial.json
//
// Partial output converges: once the cover completes, the annotations
// disappear and the output is byte-identical to the unsharded run. The
// shard file format is specified in docs/SHARD_FORMAT.md, the journal
// and progress-event schemas in docs/DISPATCH.md, and the full flag
// reference in docs/CLI.md.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "merge":
			if err := runMerge(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: merge: %v\n", err)
				os.Exit(1)
			}
			return
		case "dispatch":
			if err := runDispatch(os.Args[2:]); err != nil {
				// Route through fail so a bad -experiment value keeps its
				// historical exit code 2 here too.
				fail(fmt.Errorf("dispatch: %w", err))
			}
			return
		case "status":
			if err := runStatus(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ioschedbench: status: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	rf := registerRunFlags(flag.CommandLine)
	var (
		csvDir     = flag.String("csv", "", "directory to write CSV result files into")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = one per CPU, 1 = serial); never changes results")
		shards     = flag.Int("shards", 0, "split the experiment grids into this many shards (0 = run unsharded)")
		shardIndex = flag.Int("shard-index", 0, "which shard this process evaluates, in [0,shards)")
		out        = flag.String("out", "", "shard cell file to write (required with -shards; implies -shards 1 alone)")
	)
	flag.Parse()

	params, err := rf.shardParams()
	if err != nil {
		fail(err)
	}

	if *shards > 0 || *out != "" {
		n := *shards
		if n == 0 {
			n = 1
		}
		if err := writeShard(*rf.which, params, *parallel, n, *shardIndex, *out); err != nil {
			fail(err)
		}
		return
	}

	cfg := params.Config()
	cfg.Parallelism = *parallel
	mcfg := params.Motivation()
	mcfg.Parallelism = *parallel
	if err := render(*rf.which, cfg, mcfg, params, liveSource(cfg, mcfg, params), *csvDir); err != nil {
		fail(err)
	}
}

// runFlags holds the experiment-run flags shared by the top-level command
// and the dispatch subcommand, so both spell the same run identically
// (dispatch forwards them to its workers via dispatch.Spec.WorkerArgs).
type runFlags struct {
	which      *string
	systems    *int
	seed       *int64
	gaPop      *int
	gaGens     *int
	paperScale *bool
	ablU       *float64
}

func registerRunFlags(fs *flag.FlagSet) *runFlags {
	return &runFlags{
		which:      fs.String("experiment", "all", "fig5|fig6|fig7|table1|motivation|ablation|multidevice|all"),
		systems:    fs.Int("systems", 0, "systems per utilisation point (0 = config default)"),
		seed:       fs.Int64("seed", 1, "random seed"),
		gaPop:      fs.Int("gapop", 0, "GA population (0 = config default)"),
		gaGens:     fs.Int("gagens", 0, "GA generations (0 = config default)"),
		paperScale: fs.Bool("paperscale", false, "use the paper's full experiment scale"),
		ablU:       fs.Float64("ablation-u", 0.6, "utilisation for the ablation study"),
	}
}

// shardParams resolves the registered flags into run params. A zero
// -ablation-u would silently resolve to the 0.6 default (ShardParams
// treats the zero value as "unset"); reject it rather than mislabel the
// run.
func (r *runFlags) shardParams() (experiment.ShardParams, error) {
	if *r.ablU <= 0 {
		return experiment.ShardParams{}, fmt.Errorf("-ablation-u %v: the study utilisation must be positive", *r.ablU)
	}
	return experiment.ShardParams{
		PaperScale:    *r.paperScale,
		Systems:       *r.systems,
		Seed:          *r.seed,
		GAPopulation:  *r.gaPop,
		GAGenerations: *r.gaGens,
		AblationU:     *r.ablU,
	}, nil
}

// fail prints the error and exits — with the historical code 2 for a bad
// -experiment value (on the sharded and unsharded paths alike), 1
// otherwise.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "ioschedbench: %v\n", err)
	if errors.Is(err, experiment.ErrUnknownExperiment) {
		os.Exit(2)
	}
	os.Exit(1)
}

// writeShard evaluates one shard of the selection's grids and writes the
// cell file. Progress goes to stderr: stdout stays reserved for rendered
// results, so sharded runs compose with shells and Makefiles the same way
// unsharded runs do.
func writeShard(selection string, p experiment.ShardParams, parallel, shards, index int, out string) error {
	if out == "" {
		return fmt.Errorf("sharded runs need -out <file> for the cell file")
	}
	f, err := experiment.RunShard(selection, p, parallel, shards, index)
	if err != nil {
		return err
	}
	if err := f.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ioschedbench: wrote shard %d/%d of %q (%d cells across %d runs) to %s\n",
		index, shards, selection, f.CellCount(), len(f.Runs), out)
	return nil
}

// runMerge reassembles shard files and renders the selection exactly as
// the unsharded run would have. With -partial it accepts any consistent
// subset of a run's shard files — including partial cover files a
// previous -partial merge (or the dispatch driver's -partial-every)
// wrote — and renders provisional output with explicit coverage
// annotations; once the set is complete the output is byte-identical to
// the strict merge's, annotations and all gone.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	csvDir := fs.String("csv", "", "directory to write CSV result files into")
	out := fs.String("out", "", "also write the merged cell file to this path (a valid 1-shard file; with -partial, a partial cover file)")
	partial := fs.Bool("partial", false, "accept an incomplete shard set and render provisional results with coverage annotations")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ioschedbench merge [-partial] [-csv dir] [-out merged.json] shard.json ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no shard files given")
	}
	files := make([]*shard.File, len(paths))
	for i, path := range paths {
		f, err := shard.ReadFile(path)
		if err != nil {
			return err
		}
		files[i] = f
	}
	if *partial {
		cover, err := shard.MergePartial(files)
		if err != nil {
			return err
		}
		if *out != "" {
			if err := cover.File.WriteFile(*out); err != nil {
				return err
			}
		}
		if cover.Complete() {
			// The cover grew to completion: render exactly the full merge.
			return renderMerged(cover.File, *csvDir)
		}
		return renderPartialCover(cover, *csvDir)
	}
	merged, err := shard.Merge(files)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := merged.WriteFile(*out); err != nil {
			return err
		}
	}
	return renderMerged(merged, *csvDir)
}

// renderMerged renders a merged cell file exactly as the unsharded run
// would have, rebuilding the configuration from the recorded params. The
// merge and dispatch subcommands share it, which is what makes their
// stdout byte-identical to the unsharded run's.
func renderMerged(merged *shard.File, csvDir string) error {
	var params experiment.ShardParams
	if err := json.Unmarshal(merged.Params, &params); err != nil {
		return fmt.Errorf("recorded params: %w", err)
	}
	cfg := params.Config()
	mcfg := params.Motivation()
	return render(merged.Selection, cfg, mcfg, params, mergedSource(merged, cfg, mcfg, params), csvDir)
}

// source yields experiment results for the render loop: live runners for
// a normal run, merged-cell aggregation for the merge subcommand. Both
// paths share the renderers below, which is what makes merged output
// byte-identical to an unsharded run's.
type source struct {
	fig5        func() (*experiment.Fig5Result, error)
	figq        func() (*experiment.FigQResult, *experiment.FigQResult, error)
	motivation  func() (*experiment.MotivationResult, error)
	ablation    func() ([]experiment.AblationResult, error)
	multidevice func() ([]experiment.MultiDevicePoint, error)
}

func liveSource(cfg experiment.Config, mcfg experiment.MotivationConfig, p experiment.ShardParams) source {
	mdU, mdCounts := p.ResolvedMultiDevice()
	return source{
		fig5:       func() (*experiment.Fig5Result, error) { return experiment.Fig5(cfg) },
		figq:       func() (*experiment.FigQResult, *experiment.FigQResult, error) { return experiment.Fig6And7(cfg) },
		motivation: func() (*experiment.MotivationResult, error) { return experiment.Motivation(mcfg) },
		ablation: func() ([]experiment.AblationResult, error) {
			return experiment.Ablation(cfg, p.ResolvedAblationU())
		},
		multidevice: func() ([]experiment.MultiDevicePoint, error) {
			return experiment.MultiDevice(cfg, mdU, mdCounts)
		},
	}
}

func mergedSource(f *shard.File, cfg experiment.Config, mcfg experiment.MotivationConfig, p experiment.ShardParams) source {
	byName := make(map[string][]shard.Cell, len(f.Runs))
	for _, r := range f.Runs {
		byName[r.Experiment] = r.Cells
	}
	cells := func(name string) ([]shard.Cell, error) {
		cs, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("shard files carry no %q cells", name)
		}
		return cs, nil
	}
	_, mdCounts := p.ResolvedMultiDevice()
	return source{
		fig5: func() (*experiment.Fig5Result, error) {
			cs, err := cells(experiment.ExpFig5)
			if err != nil {
				return nil, err
			}
			return experiment.Fig5FromCells(cfg, cs)
		},
		figq: func() (*experiment.FigQResult, *experiment.FigQResult, error) {
			// Figures 6 and 7 share one cell grid; either name serves both.
			cs, err := cells(experiment.ExpFig6)
			if err != nil {
				if cs, err = cells(experiment.ExpFig7); err != nil {
					return nil, nil, err
				}
			}
			return experiment.FigQFromCells(cfg, cs)
		},
		motivation: func() (*experiment.MotivationResult, error) {
			cs, err := cells(experiment.ExpMotivation)
			if err != nil {
				return nil, err
			}
			return experiment.MotivationFromCells(mcfg, cs)
		},
		ablation: func() ([]experiment.AblationResult, error) {
			cs, err := cells(experiment.ExpAblation)
			if err != nil {
				return nil, err
			}
			return experiment.AblationFromCells(cfg, cs)
		},
		multidevice: func() ([]experiment.MultiDevicePoint, error) {
			cs, err := cells(experiment.ExpMultiDevice)
			if err != nil {
				return nil, err
			}
			return experiment.MultiDeviceFromCells(cfg, mdCounts, cs)
		},
	}
}

// render draws the selected experiments from src in the canonical order.
func render(which string, cfg experiment.Config, mcfg experiment.MotivationConfig, p experiment.ShardParams, src source, csvDir string) error {
	ran := false
	run := func(name string, fn func() error) error {
		if which != experiment.ExpAll && which != name {
			return nil
		}
		ran = true
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	steps := []struct {
		name string
		fn   func() error
	}{
		{experiment.ExpFig5, func() error { return renderFig5(cfg, src, csvDir) }},
		{experiment.ExpFig6, func() error { return renderFigQ(cfg, src, csvDir, true) }},
		{experiment.ExpFig7, func() error { return renderFigQ(cfg, src, csvDir, false) }},
		{experiment.ExpTable1, func() error { return renderTable1(csvDir) }},
		{experiment.ExpMotivation, func() error { return renderMotivation(mcfg, src) }},
		{experiment.ExpAblation, func() error { return renderAblation(cfg, p.ResolvedAblationU(), src) }},
		{experiment.ExpMultiDevice, func() error { return renderMultiDevice(cfg, src) }},
	}
	for _, s := range steps {
		if err := run(s.name, s.fn); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("%w %q", experiment.ErrUnknownExperiment, which)
	}
	return nil
}

func plotSeries(title string, xlabels []string, cs []experiment.Curveable) {
	var series []textplot.Series
	for _, c := range cs {
		series = append(series, textplot.Series{Name: c.Name, Values: c.Values})
	}
	fmt.Println(textplot.Chart(title, xlabels, series, 0, 1, 12))
}

func writeCSV(dir, name string, headers []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// The experiment header lines are shared by the full renderers below and
// the partial renderers (partial.go), so provisional output cannot drift
// from the final spelling it converges to.

func fig5Header(cfg experiment.Config) string {
	return fmt.Sprintf("Figure 5: system schedulability (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
}

// figqTitle names the figure and its metric; figqHeader is its header
// block.
func figqTitle(psi bool) (name, metric string) {
	if psi {
		return "Figure 6", "Psi (fraction of exact timing-accurate jobs)"
	}
	return "Figure 7", "Upsilon (normalised quality)"
}

func figqHeader(cfg experiment.Config, psi bool) string {
	name, metric := figqTitle(psi)
	return fmt.Sprintf("%s: %s (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		name, metric, cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
}

func motivationHeader(mcfg experiment.MotivationConfig) string {
	return fmt.Sprintf("Motivation (Section I): timing accuracy of remote I/O writes over a %dx%d NoC\n",
		mcfg.Mesh.Width, mcfg.Mesh.Height) +
		fmt.Sprintf("(%d periodic writes, %d cross-traffic flows, seed=%d)\n\n",
			mcfg.Writes, mcfg.CrossFlows, mcfg.Seed)
}

func multiDeviceHeader(cfg experiment.Config) string {
	return fmt.Sprintf("Partitioned scaling: static scheduler at total U=0.8 over 1..8 devices (systems=%d)\n\n", cfg.Systems)
}

func ablationHeader(cfg experiment.Config, u float64) string {
	return fmt.Sprintf("Ablation at U=%s (systems=%d, seed=%d)\n\n",
		strconv.FormatFloat(u, 'f', 2, 64), cfg.Systems, cfg.Seed)
}

func renderFig5(cfg experiment.Config, src source, csvDir string) error {
	fmt.Print(fig5Header(cfg))
	res, err := src.fig5()
	if err != nil {
		return err
	}
	x, series := res.Series()
	plotSeries("Fig 5: schedulable fraction vs utilisation", x, series)
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, "fig5.csv", h, rows)
}

func renderFigQ(cfg experiment.Config, src source, csvDir string, psi bool) error {
	name, metric := figqTitle(psi)
	fmt.Print(figqHeader(cfg, psi))
	psiRes, upsRes, err := src.figq()
	if err != nil {
		return err
	}
	res := psiRes
	file := "fig6.csv"
	if !psi {
		res = upsRes
		file = "fig7.csv"
	}
	x, series := res.Series()
	plotSeries(name+": "+metric, x, series)
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, file, h, rows)
}

func renderTable1(csvDir string) error {
	fmt.Println("Table I: hardware overhead of the evaluated I/O controllers")
	fmt.Println("(structural resource model vs the paper's Vivado synthesis)")
	fmt.Println()
	rows := experiment.Table1()
	h, r := experiment.Table1Rows(rows)
	fmt.Println(textplot.Table(h, r))
	return writeCSV(csvDir, "table1.csv", h, r)
}

func renderMotivation(mcfg experiment.MotivationConfig, src source) error {
	fmt.Print(motivationHeader(mcfg))
	res, err := src.motivation()
	if err != nil {
		return err
	}
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	fmt.Printf("uncontended CPU->controller latency: %d cycles (compensated by the remote design)\n",
		res.BaseLatency)
	return nil
}

func renderMultiDevice(cfg experiment.Config, src source) error {
	fmt.Print(multiDeviceHeader(cfg))
	points, err := src.multidevice()
	if err != nil {
		return err
	}
	h, rows := experiment.MultiDeviceRows(points)
	fmt.Println(textplot.Table(h, rows))
	return nil
}

func renderAblation(cfg experiment.Config, u float64, src source) error {
	fmt.Print(ablationHeader(cfg, u))
	res, err := src.ablation()
	if err != nil {
		return err
	}
	h, rows := experiment.AblationRows(res)
	fmt.Println(textplot.Table(h, rows))
	return nil
}
