// Command ioschedbench regenerates every table and figure of the paper's
// evaluation (Section V) plus the motivation and ablation experiments:
//
//	ioschedbench -experiment fig5        # schedulability vs utilisation
//	ioschedbench -experiment fig6        # Ψ of the offline methods
//	ioschedbench -experiment fig7        # Υ of the offline methods
//	ioschedbench -experiment table1      # hardware cost model vs paper
//	ioschedbench -experiment motivation  # NoC jitter vs pre-loaded controller
//	ioschedbench -experiment ablation    # design-choice variants
//	ioschedbench -experiment multidevice # partitioned-controller scaling
//	ioschedbench -experiment all
//
// The default configuration is a calibrated scale-down (100 systems per
// point, GA 60×80); -paperscale switches to the paper's 1000 systems and
// GA 300×500, which takes hours. All runs are deterministic in -seed:
// the runners fan work across -parallel workers (0 = one per CPU) on the
// deterministic execution engine, so the output is byte-identical at
// every -parallel value.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/textplot"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "fig5|fig6|fig7|table1|motivation|ablation|multidevice|all")
		systems    = flag.Int("systems", 0, "systems per utilisation point (0 = config default)")
		seed       = flag.Int64("seed", 1, "random seed")
		gaPop      = flag.Int("gapop", 0, "GA population (0 = config default)")
		gaGens     = flag.Int("gagens", 0, "GA generations (0 = config default)")
		paperScale = flag.Bool("paperscale", false, "use the paper's full experiment scale")
		ablU       = flag.Float64("ablation-u", 0.6, "utilisation for the ablation study")
		csvDir     = flag.String("csv", "", "directory to write CSV result files into")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = one per CPU, 1 = serial); never changes results")
	)
	flag.Parse()

	cfg := experiment.Default()
	if *paperScale {
		cfg = experiment.PaperScale()
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	if *systems > 0 {
		cfg.Systems = *systems
	}
	if *gaPop > 0 {
		cfg.GA.Population = *gaPop
	}
	if *gaGens > 0 {
		cfg.GA.Generations = *gaGens
	}

	ran := false
	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		ran = true
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ioschedbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() error { return runFig5(cfg, *csvDir) })
	run("fig6", func() error { return runFigQ(cfg, *csvDir, true) })
	run("fig7", func() error { return runFigQ(cfg, *csvDir, false) })
	run("table1", func() error { return runTable1(*csvDir) })
	run("motivation", func() error { return runMotivation(*seed, *parallel) })
	run("ablation", func() error { return runAblation(cfg, *ablU) })
	run("multidevice", func() error { return runMultiDevice(cfg) })
	if !ran {
		fmt.Fprintf(os.Stderr, "ioschedbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func plotSeries(title string, xlabels []string, cs []experiment.Curveable) {
	var series []textplot.Series
	for _, c := range cs {
		series = append(series, textplot.Series{Name: c.Name, Values: c.Values})
	}
	fmt.Println(textplot.Chart(title, xlabels, series, 0, 1, 12))
}

func writeCSV(dir, name string, headers []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func runFig5(cfg experiment.Config, csvDir string) error {
	fmt.Printf("Figure 5: system schedulability (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
	res, err := experiment.Fig5(cfg)
	if err != nil {
		return err
	}
	x, series := res.Series()
	plotSeries("Fig 5: schedulable fraction vs utilisation", x, series)
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, "fig5.csv", h, rows)
}

func runFigQ(cfg experiment.Config, csvDir string, psi bool) error {
	name, metric := "Figure 6", "Psi (fraction of exact timing-accurate jobs)"
	if !psi {
		name, metric = "Figure 7", "Upsilon (normalised quality)"
	}
	fmt.Printf("%s: %s (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		name, metric, cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
	psiRes, upsRes, err := experiment.Fig6And7(cfg)
	if err != nil {
		return err
	}
	res := psiRes
	file := "fig6.csv"
	if !psi {
		res = upsRes
		file = "fig7.csv"
	}
	x, series := res.Series()
	plotSeries(name+": "+metric, x, series)
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	return writeCSV(csvDir, file, h, rows)
}

func runTable1(csvDir string) error {
	fmt.Println("Table I: hardware overhead of the evaluated I/O controllers")
	fmt.Println("(structural resource model vs the paper's Vivado synthesis)")
	fmt.Println()
	rows := experiment.Table1()
	h, r := experiment.Table1Rows(rows)
	fmt.Println(textplot.Table(h, r))
	return writeCSV(csvDir, "table1.csv", h, r)
}

func runMotivation(seed int64, parallel int) error {
	cfg := experiment.DefaultMotivation()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	fmt.Printf("Motivation (Section I): timing accuracy of remote I/O writes over a %dx%d NoC\n",
		cfg.Mesh.Width, cfg.Mesh.Height)
	fmt.Printf("(%d periodic writes, %d cross-traffic flows, seed=%d)\n\n",
		cfg.Writes, cfg.CrossFlows, seed)
	res, err := experiment.Motivation(cfg)
	if err != nil {
		return err
	}
	h, rows := res.Rows()
	fmt.Println(textplot.Table(h, rows))
	fmt.Printf("uncontended CPU->controller latency: %d cycles (compensated by the remote design)\n",
		res.BaseLatency)
	return nil
}

func runMultiDevice(cfg experiment.Config) error {
	fmt.Printf("Partitioned scaling: static scheduler at total U=0.8 over 1..8 devices (systems=%d)\n\n", cfg.Systems)
	points, err := experiment.MultiDevice(cfg, 0.8, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	h, rows := experiment.MultiDeviceRows(points)
	fmt.Println(textplot.Table(h, rows))
	return nil
}

func runAblation(cfg experiment.Config, u float64) error {
	fmt.Printf("Ablation at U=%s (systems=%d, seed=%d)\n\n",
		strconv.FormatFloat(u, 'f', 2, 64), cfg.Systems, cfg.Seed)
	res, err := experiment.Ablation(cfg, u)
	if err != nil {
		return err
	}
	h, rows := experiment.AblationRows(res)
	fmt.Println(textplot.Table(h, rows))
	return nil
}
