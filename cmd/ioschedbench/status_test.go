package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// update regenerates the status golden file instead of diffing against
// it: go test ./cmd/ioschedbench -run TestStatusGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestStatusGolden pins the status subcommand's exact output on a
// journaled fixture: a 3-shard dispatch with one shard done (file
// present), one done after a retry (file since deleted), and one
// interrupted mid-attempt. The journal's content fully determines the
// output — no wall-clock — which is what makes it golden-testable.
func TestStatusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runStatus([]string{"testdata/status"}, &buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/status/golden.txt"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("status output drifted from %s (re-run with -update after intentional changes):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestStatusListsExactMissingShards is the acceptance check in assertion
// form: on an interrupted dispatch journal, status names exactly the
// not-done indices.
func TestStatusListsExactMissingShards(t *testing.T) {
	var buf bytes.Buffer
	if err := runStatus([]string{"testdata/status/dispatch.journal"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "missing shards: 2\n") {
		t.Errorf("missing-shard line absent or wrong:\n%s", out)
	}
	if !strings.Contains(out, "coverage: 2/3 shards done (66.7%)") {
		t.Errorf("coverage line absent or wrong:\n%s", out)
	}
	if !strings.Contains(out, "failed shards: 1") {
		t.Errorf("failed-shard line absent or wrong:\n%s", out)
	}
	if !strings.Contains(out, "(file missing)") {
		t.Errorf("deleted done-file not flagged:\n%s", out)
	}
	if strings.Contains(out, "merged: yes") {
		t.Errorf("unfinished dispatch reported merged:\n%s", out)
	}
}

// TestStatusMergedHidesStalePartial: after the final merge the driver
// deletes partial.json, so status must not advertise the journaled
// partial event of a finished sweep.
func TestStatusMergedHidesStalePartial(t *testing.T) {
	dir := t.TempDir()
	journal := `{"event":"plan","v":1,"selection":"fig5","shards":1,"params":{"seed":1}}
{"event":"attempt","shard":0,"attempt":1,"worker":"w"}
{"event":"done","shard":0,"attempt":1,"file":"shard0.json"}
{"event":"partial","file":"partial.json","shards":1,"cells":20}
{"event":"merged","shards":1,"cells":20}
`
	if err := os.WriteFile(dir+"/dispatch.journal", []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runStatus([]string{dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "merged: yes (20 cells)") {
		t.Errorf("merged line absent:\n%s", out)
	}
	if strings.Contains(out, "partial merge:") {
		t.Errorf("stale partial advertised on a merged sweep:\n%s", out)
	}
}

// TestStatusResolvesFilesNextToJournal: the journal records shard paths
// as the dispatch spelled them (often cwd-relative); run from another
// directory, status must look next to the journal before declaring a
// done shard's file missing.
func TestStatusResolvesFilesNextToJournal(t *testing.T) {
	dir := t.TempDir()
	journal := `{"event":"plan","v":1,"selection":"fig5","shards":1,"params":{"seed":1}}
{"event":"done","shard":0,"attempt":1,"file":"work/shard0.json"}
{"event":"merged","shards":1,"cells":20}
`
	if err := os.WriteFile(dir+"/dispatch.journal", []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/shard0.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runStatus([]string{dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "(file missing)") {
		t.Errorf("existing file next to the journal reported missing:\n%s", out)
	}
}

func TestStatusRejectsBadTargets(t *testing.T) {
	var buf bytes.Buffer
	if err := runStatus([]string{t.TempDir()}, &buf); err == nil {
		t.Error("journal-less directory accepted")
	}
	if err := runStatus([]string{"testdata/status/absent.journal"}, &buf); err == nil {
		t.Error("absent journal accepted")
	}
}

// TestStatusMarksNonReproducibleSelection: a dispatch of a measurement
// selection (the jitter experiment) is flagged in the status header —
// its cell payloads depend on which hosts the workers ran on. The
// reproducible-selection goldens above prove the note stays absent
// everywhere else.
func TestStatusMarksNonReproducibleSelection(t *testing.T) {
	dir := t.TempDir()
	journal := `{"event":"plan","v":1,"selection":"jitter","shards":1,"params":{"seed":1}}
{"event":"attempt","shard":0,"attempt":1,"worker":"w"}
{"event":"done","shard":0,"attempt":1,"file":"shard0.json"}
`
	if err := os.WriteFile(dir+"/dispatch.journal", []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runStatus([]string{dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "non-reproducible selection") {
		t.Errorf("non-reproducible note absent:\n%s", out)
	}
}
