// Command ioschedtrace inspects one synthetic system: it generates a
// paper-style task set, schedules it with the chosen method, prints the
// per-job schedule with quality annotations and an ASCII Gantt chart, then
// deploys the schedule to the simulated controller and reports the
// hardware-level accuracy.
//
//	ioschedtrace -method static -u 0.5 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/ga"
	"repro/internal/taskmodel"
	"repro/internal/textplot"
	"repro/internal/timing"
)

func main() {
	var (
		method = flag.String("method", "static", "static|ga|fps-offline|gpiocp")
		u      = flag.Float64("u", 0.5, "system utilisation")
		seed   = flag.Int64("seed", 1, "random seed")
		gaPop  = flag.Int("gapop", 60, "GA population")
		gaGens = flag.Int("gagens", 80, "GA generations")
	)
	flag.Parse()

	if err := run(*method, *u, *seed, *gaPop, *gaGens); err != nil {
		fmt.Fprintln(os.Stderr, "ioschedtrace:", err)
		os.Exit(1)
	}
}

func run(method string, u float64, seed int64, gaPop, gaGens int) error {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
	if err != nil {
		return err
	}
	fmt.Printf("system: %d tasks, U = %.3f, hyper-period %v\n",
		len(ts.Tasks), ts.Utilization(), ts.Hyperperiod())
	taskHeaders := []string{"task", "C", "T", "P", "delta", "theta", "Vmax"}
	var taskRows [][]string
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		taskRows = append(taskRows, []string{
			fmt.Sprintf("tau%d", t.ID), t.C.String(), t.T.String(),
			fmt.Sprintf("%d", t.P), t.Delta.String(), t.Theta.String(),
			fmt.Sprintf("%.0f", t.Vmax),
		})
	}
	fmt.Println(textplot.Table(taskHeaders, taskRows))

	gaOpts := ga.DefaultOptions()
	gaOpts.Population, gaOpts.Generations, gaOpts.Seed = gaPop, gaGens, seed
	scheduler, err := core.NewScheduler(core.Method(method), &gaOpts)
	if err != nil {
		return err
	}
	schedules, err := sched.ScheduleAll(ts, scheduler)
	if err != nil {
		return fmt.Errorf("%s: %w", scheduler.Name(), err)
	}
	psi, ups := schedules.Metrics(quality.Linear{})
	fmt.Printf("method %s: Psi = %.3f, Upsilon = %.3f\n\n", scheduler.Name(), psi, ups)

	for dev, s := range schedules {
		fmt.Printf("device %d schedule (%d jobs):\n", dev, len(s.Entries))
		headers := []string{"job", "start", "ideal", "dev", "C", "quality"}
		var rows [][]string
		curve := quality.Linear{}
		for i := range s.Entries {
			e := &s.Entries[i]
			rows = append(rows, []string{
				e.Job.ID.String(), e.Start.String(), e.Job.Ideal.String(),
				timing.Abs(e.Start - e.Job.Ideal).String(), e.Job.C.String(),
				fmt.Sprintf("%.2f/%.0f", curve.Value(&e.Job, e.Start), e.Job.Vmax),
			})
		}
		fmt.Println(textplot.Table(headers, rows))
		fmt.Println(gantt(s, ts.Hyperperiod()))
	}

	return deployAndVerify(ts, scheduler)
}

// gantt renders a coarse one-line-per-task occupancy chart.
func gantt(s *sched.Schedule, h timing.Time) string {
	const cols = 96
	perCol := h / cols
	if perCol == 0 {
		perCol = 1
	}
	rows := map[int][]byte{}
	for i := range s.Entries {
		e := &s.Entries[i]
		row, ok := rows[e.Job.ID.Task]
		if !ok {
			row = []byte(strings.Repeat(".", cols))
			rows[e.Job.ID.Task] = row
		}
		from := int(e.Start / perCol)
		to := int((e.Start + e.Job.C) / perCol)
		for c := from; c <= to && c < cols; c++ {
			row[c] = '#'
		}
		// Mark the ideal start.
		if c := int(e.Job.Ideal / perCol); c < cols && row[c] == '.' {
			row[c] = '|'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt (one hyper-period, # = execution, | = unmet ideal):\n")
	for task := 0; task < len(rows)+8; task++ {
		row, ok := rows[task]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  tau%-3d %s\n", task, string(row))
	}
	return b.String()
}

func deployAndVerify(ts *taskmodel.TaskSet, scheduler sched.Scheduler) error {
	bank, err := device.NewGPIOBank("gpio", 32)
	if err != nil {
		return err
	}
	progs := map[int]controller.Program{}
	for i := range ts.Tasks {
		progs[ts.Tasks[i].ID] = controller.Program{
			{Op: controller.OpTogglePin, Pin: device.Pin(i % 32)},
		}
	}
	execs := map[taskmodel.DeviceID]controller.Executor{}
	for _, dev := range ts.Devices() {
		execs[dev] = controller.GPIOExecutor{Bank: bank}
	}
	sys := &core.System{Tasks: ts, Programs: progs, Executors: execs, Clock: timing.Clock10MHz}
	d, err := sys.Run(scheduler, 1)
	if err != nil {
		return err
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("hardware verification: %d executions, all at scheduled cycles\n", len(report.Events))
	fmt.Printf("hardware accuracy vs ideal: exact %.3f, mean |dev| %.0f cycles, max %d cycles\n",
		report.ExactFraction(), report.MeanDeviation, report.MaxDeviation)
	return nil
}
