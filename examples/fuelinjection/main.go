// Fuel injection: the paper's motivating application (Section I cites
// optimal fuel injection as the case where periodic I/O must occur at
// accurate instants).
//
// A four-cylinder engine at 6000 RPM fires one cylinder every 5 ms; each
// cylinder needs a long injector pulse at a precise crank angle and a
// spark command whose ideal instant lands inside the injector pulse of the
// same cylinder. All eight actuation tasks share one GPIO bank driven by a
// single controller processor, so their ideal I/O windows genuinely
// contend and no schedule can make every operation exact. The example
// schedules the workload with GPIOCP's FIFO, the static heuristic and the
// GA, deploys each schedule onto the simulated controller, and measures
// the actuation-edge accuracy the engine would actually see.
//
//	go run ./examples/fuelinjection
package main

import (
	"fmt"
	"log"

	iosched "repro"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

const (
	cycleTime = 20 * timing.Millisecond // 720° at 6000 RPM
	pulse     = 2200 * timing.Microsecond
	advance   = 1500 * timing.Microsecond // spark lead inside the pulse
)

func main() {
	var tasks []iosched.Task
	for cyl := 0; cyl < 4; cyl++ {
		tdc := timing.Time(cyl) * 5 * timing.Millisecond // firing order offset
		// The injector pulse should open exactly at its crank instant;
		// tolerance ±2.2 ms with steep quality decay.
		tasks = append(tasks, iosched.Task{
			Name: fmt.Sprintf("inj%d", cyl), C: pulse,
			T: cycleTime, Delta: clampDelta(tdc+2500*timing.Microsecond, cycleTime),
			Theta: pulse,
		})
		// The spark's ideal instant lies inside the injector pulse: a
		// genuine conflict the scheduler must arbitrate.
		tasks = append(tasks, iosched.Task{
			Name: fmt.Sprintf("spark%d", cyl), C: 400 * timing.Microsecond,
			T: cycleTime, Delta: clampDelta(tdc+2500*timing.Microsecond+advance, cycleTime),
			Theta: 2 * timing.Millisecond,
		})
	}
	ts, err := iosched.NewTaskSet(tasks)
	if err != nil {
		log.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	fmt.Printf("engine workload: %d tasks, U = %.4f, cycle %v\n\n",
		len(ts.Tasks), ts.Utilization(), ts.Hyperperiod())

	for _, m := range []iosched.Method{iosched.MethodGPIOCP, iosched.MethodStatic, iosched.MethodGA} {
		if err := runMethod(ts, m); err != nil {
			fmt.Printf("%-12s %v\n", m, err)
		}
	}
}

func clampDelta(d, period timing.Time) timing.Time {
	theta := pulse
	if d < theta {
		return theta
	}
	if d > period-theta {
		return period - theta
	}
	return d
}

func runMethod(ts *iosched.TaskSet, m iosched.Method) error {
	scheduler, err := core.NewScheduler(m, nil)
	if err != nil {
		return err
	}
	bank, err := device.NewGPIOBank("engine", 8)
	if err != nil {
		return err
	}
	progs := map[int]controller.Program{}
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		width := uint64(timing.Clock100MHz.ToCycles(t.C)) - 2
		progs[t.ID] = controller.Program{
			{Op: controller.OpSetPin, Pin: device.Pin(t.ID)},
			{Op: controller.OpWait, Arg: width},
			{Op: controller.OpClearPin, Pin: device.Pin(t.ID)},
		}
	}
	sys := &core.System{
		Tasks:    ts,
		Programs: progs,
		Executors: map[taskmodel.DeviceID]controller.Executor{
			0: controller.GPIOExecutor{Bank: bank},
		},
	}
	d, err := sys.Run(scheduler, 2) // two engine cycles
	if err != nil {
		return err
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		return err
	}
	psi, ups := d.Metrics()
	fmt.Printf("%-12s Psi = %.3f  Upsilon = %.3f  | injector edges: exact %.0f%%, mean dev %.1f us, max %.1f us\n",
		scheduler.Name(), psi, ups,
		100*report.ExactFraction(),
		report.MeanDeviation/100, // cycles at 100 MHz -> µs
		float64(report.MaxDeviation)/100)

	// Show the first engine cycle's rising edges for injector 0.
	edges := bank.EdgesFor(0)
	if len(edges) >= 2 {
		want := ts.ByID(0).Delta
		got := timing.Clock100MHz.ToTime(edges[0].At)
		fmt.Printf("             inj0 first pulse: opened at %v (crank target %v), width %v\n",
			got, want, timing.Clock100MHz.ToTime(edges[1].At-edges[0].At))
	}
	return nil
}
