// Fault recovery: Section IV's synchroniser includes a run-time
// fault-recovery unit that handles exceptions such as "an I/O task is not
// received" while preserving the correctness of the rest of the schedule.
//
// This example deploys a four-task schedule, then simulates three runs:
//
//  1. all requests arrive — every job fires exactly on time;
//
//  2. one task's request packet is lost — its jobs are skipped and logged
//     as faults while the surviving tasks keep their exact instants; and
//
//  3. a mis-loaded program overruns its budget — execution is truncated at
//     the budget boundary so the next table entry still starts on time.
//
//     go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/timing"
)

const hyper = timing.Cycle(100_000)

func buildProcessor(k *sim.Kernel) (*controller.Processor, *device.GPIOBank, *controller.Memory) {
	mem, err := controller.NewMemory(controller.DefaultMemoryBytes)
	if err != nil {
		log.Fatal(err)
	}
	bank, err := device.NewGPIOBank("bank", 4)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := controller.NewProcessor(k, mem, controller.GPIOExecutor{Bank: bank}, controller.SkipMissing)
	if err != nil {
		log.Fatal(err)
	}
	for task := 0; task < 4; task++ {
		prog := controller.Program{
			{Op: controller.OpSetPin, Pin: device.Pin(task)},
			{Op: controller.OpWait, Arg: 400},
			{Op: controller.OpClearPin, Pin: device.Pin(task)},
		}
		if err := mem.Preload(task, prog); err != nil {
			log.Fatal(err)
		}
	}
	var entries []controller.TableEntry
	for task := 0; task < 4; task++ {
		entries = append(entries, controller.TableEntry{
			Task: task, Job: 0, Start: timing.Cycle(10_000 * (task + 1)), Budget: 500,
		})
	}
	if err := proc.LoadTable(entries); err != nil {
		log.Fatal(err)
	}
	return proc, bank, mem
}

func report(name string, proc *controller.Processor, bank *device.GPIOBank) {
	fmt.Printf("%s:\n", name)
	for _, e := range proc.Executions() {
		fmt.Printf("  task %d job %d executed [%d, %d)\n", e.Task, e.Job, e.Start, e.End)
	}
	for _, f := range proc.Faults() {
		fmt.Printf("  FAULT %-16s task %d job %d at cycle %d\n", f.Kind, f.Task, f.Job, f.At)
	}
	for pin := 0; pin < 4; pin++ {
		es := bank.EdgesFor(device.Pin(pin))
		switch {
		case len(es) >= 2:
			fmt.Printf("  pin %d pulsed at cycle %d (width %d)\n", pin, es[0].At, es[1].At-es[0].At)
		case len(es) == 1:
			fmt.Printf("  pin %d STUCK %v since cycle %d (pulse truncated)\n", pin, es[0].Level, es[0].At)
		}
	}
	fmt.Println()
}

func main() {
	// Run 1: every request arrives.
	{
		var k sim.Kernel
		proc, bank, _ := buildProcessor(&k)
		for task := 0; task < 4; task++ {
			proc.EnableTask(task)
		}
		if err := proc.Start(hyper, 1); err != nil {
			log.Fatal(err)
		}
		k.Run(0)
		report("run 1: all requests received", proc, bank)
	}

	// Run 2: task 1's request packet never arrives.
	{
		var k sim.Kernel
		proc, bank, _ := buildProcessor(&k)
		for _, task := range []int{0, 2, 3} {
			proc.EnableTask(task)
		}
		if err := proc.Start(hyper, 1); err != nil {
			log.Fatal(err)
		}
		k.Run(0)
		report("run 2: task 1 request lost (skipped, others unaffected)", proc, bank)
	}

	// Run 3: task 2's program was mis-loaded with a runaway wait.
	{
		var k sim.Kernel
		proc, bank, mem := buildProcessor(&k)
		bad := controller.Program{
			{Op: controller.OpSetPin, Pin: 2},
			{Op: controller.OpWait, Arg: 9_000}, // far beyond the 500-cycle budget
			{Op: controller.OpClearPin, Pin: 2},
		}
		if err := mem.Preload(2, bad); err != nil {
			log.Fatal(err)
		}
		for task := 0; task < 4; task++ {
			proc.EnableTask(task)
		}
		if err := proc.Start(hyper, 1); err != nil {
			log.Fatal(err)
		}
		k.Run(0)
		report("run 3: task 2 overruns its budget (truncated at the boundary)", proc, bank)
	}
}
