// Quickstart: build a small timed-I/O task set, schedule it with the
// paper's two methods and the two baselines, and compare the timing
// accuracy each achieves on the same jobs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	iosched "repro"
)

func main() {
	// Five periodic I/O tasks sharing one GPIO device. Each wants to fire
	// at a precise instant δ within its period and tolerates ±θ with
	// degraded quality (Figure 1's curve).
	tasks := []iosched.Task{
		{Name: "sample-adc", C: 2 * iosched.Millisecond, T: 40 * iosched.Millisecond,
			Delta: 10 * iosched.Millisecond, Theta: 10 * iosched.Millisecond},
		{Name: "pwm-hi", C: 1 * iosched.Millisecond, T: 20 * iosched.Millisecond,
			Delta: 5 * iosched.Millisecond, Theta: 5 * iosched.Millisecond},
		{Name: "pwm-lo", C: 1 * iosched.Millisecond, T: 20 * iosched.Millisecond,
			Delta: 15 * iosched.Millisecond, Theta: 5 * iosched.Millisecond},
		{Name: "heartbeat", C: 3 * iosched.Millisecond, T: 80 * iosched.Millisecond,
			Delta: 30 * iosched.Millisecond, Theta: 20 * iosched.Millisecond},
		// This one collides with sample-adc's ideal window on purpose.
		{Name: "status-led", C: 2 * iosched.Millisecond, T: 40 * iosched.Millisecond,
			Delta: 10 * iosched.Millisecond, Theta: 10 * iosched.Millisecond},
	}
	ts, err := iosched.NewTaskSet(tasks)
	if err != nil {
		log.Fatal(err)
	}
	ts.AssignDMPO()         // deadline-monotonic priorities
	ts.ApplyPaperQuality(1) // Vmax = P+1, Vmin = 1

	fmt.Printf("task set: %d tasks, U = %.3f, hyper-period %v\n\n",
		len(ts.Tasks), ts.Utilization(), ts.Hyperperiod())

	for _, m := range []iosched.Method{
		iosched.MethodStatic, iosched.MethodGA,
		iosched.MethodFPSOffline, iosched.MethodGPIOCP,
	} {
		schedules, err := iosched.ScheduleWith(ts, m)
		if err != nil {
			fmt.Printf("%-12s infeasible: %v\n", m, err)
			continue
		}
		psi, ups := schedules.Metrics(iosched.LinearCurve)
		fmt.Printf("%-12s Psi = %.3f  Upsilon = %.3f\n", m, psi, ups)
	}

	// Inspect the static schedule job by job.
	schedules, err := iosched.ScheduleWith(ts, iosched.MethodStatic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstatic schedule (device 0):")
	for _, e := range schedules[0].Entries {
		name := ts.ByID(e.Job.ID.Task).Name
		dev := e.Start - e.Job.Ideal
		if dev < 0 {
			dev = -dev
		}
		marker := ""
		if dev == 0 {
			marker = "  <- exact"
		}
		fmt.Printf("  %-11s job %d  start %-8v ideal %-8v |dev| %-7v%s\n",
			name, e.Job.ID.J, e.Start, e.Job.Ideal, dev, marker)
	}
}
