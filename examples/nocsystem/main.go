// NoC system: the paper's Figure 3 deployment, end to end.
//
// A 4×4 mesh NoC carries traffic between application CPUs and the I/O
// controller sitting at a router's home port. The example contrasts the
// two ways of driving a periodic waveform:
//
//  1. remote instigation — CPU (0,0) sends one write packet per actuation
//     across the mesh while other CPUs generate cross-traffic; actuation
//     jitter is whatever the interconnect happens to add; and
//  2. the proposed controller — the CPU pre-loads the I/O task and the
//     offline schedule once, and the controller's synchroniser fires each
//     job from its scheduling table on the global timer.
//
// The same mesh also delivers the pre-loading traffic for case 2,
// demonstrating that configuration-time latency is harmless: only the
// run-time path must be latency-free.
//
//	go run ./examples/nocsystem
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/trace"
)

const (
	writes     = 100
	period     = timing.Cycle(2000) // cycles between actuations
	crossFlows = 12
)

func main() {
	meshCfg := noc.DefaultConfig()
	// Multi-flit packets occupy each link for several cycles, so link
	// arbitration genuinely serialises competing flows.
	meshCfg.LinkDelay = 8
	cpu := noc.Coord{X: 0, Y: 0}
	ioPort := noc.Coord{X: 3, Y: 3}

	remote, err := runRemote(meshCfg, cpu, ioPort)
	if err != nil {
		log.Fatal(err)
	}
	preloaded, err := runPreloaded(meshCfg, cpu, ioPort)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("periodic actuation over a %dx%d mesh (%d writes, %d cross-traffic flows)\n\n",
		meshCfg.Width, meshCfg.Height, writes, crossFlows)
	fmt.Printf("%-28s %8s %12s %12s %8s\n", "design", "exact", "mean jitter", "max jitter", "p95")
	print := func(name string, r *trace.Report) {
		fmt.Printf("%-28s %7.1f%% %9.2f cy %9d cy %5d cy\n",
			name, 100*r.ExactFraction(), r.MeanDeviation, r.MaxDeviation, r.Percentile(95))
	}
	print("remote write over NoC", remote)
	print("pre-loaded controller", preloaded)
	fmt.Println("\nthe controller eliminates interconnect jitter because the run-time")
	fmt.Println("trigger is its local scheduling table, not a packet arrival.")
}

// runRemote drives the pin by sending one packet per actuation through the
// loaded mesh; the pin toggles when the packet arrives.
func runRemote(cfg noc.Config, cpu, ioPort noc.Coord) (*trace.Report, error) {
	var k sim.Kernel
	mesh, err := noc.New(&k, cfg)
	if err != nil {
		return nil, err
	}
	bank, err := device.NewGPIOBank("remote-gpio", 1)
	if err != nil {
		return nil, err
	}
	if err := mesh.Attach(ioPort, func(p *noc.Packet) {
		if p.Src == cpu {
			bank.Toggle(0, k.Now())
		}
	}); err != nil {
		return nil, err
	}
	base := cfg.UncontendedLatency(cpu, ioPort)
	expected := make([]timing.Cycle, writes)
	for i := 0; i < writes; i++ {
		ideal := timing.Cycle(i+1) * period
		expected[i] = ideal
		k.At(ideal-base, func() { // compensate the zero-load latency
			mesh.Inject(&noc.Packet{Src: cpu, Dst: ioPort, Priority: 1})
		})
	}
	// Cross-traffic from the other CPUs.
	rng := rand.New(rand.NewSource(7))
	for f := 0; f < crossFlows; f++ {
		src := noc.Coord{X: rng.Intn(cfg.Width), Y: rng.Intn(cfg.Height)}
		dst := noc.Coord{X: cfg.Width - 1, Y: rng.Intn(cfg.Height)}
		step := timing.Cycle(41 + 3*f)
		for t := timing.Cycle(f); t < timing.Cycle(writes+1)*period; t += step {
			src, dst := src, dst
			k.At(t, func() { mesh.Inject(&noc.Packet{Src: src, Dst: dst, Priority: 1}) })
		}
	}
	k.Run(0)
	observed := make([]timing.Cycle, 0, writes)
	for _, e := range bank.EdgesFor(0) {
		observed = append(observed, e.At)
	}
	return trace.Measure(nil, expected, observed)
}

// runPreloaded configures the controller over the mesh (pre-loading and
// table installation as packets), then lets the synchroniser fire the jobs
// locally.
func runPreloaded(cfg noc.Config, cpu, ioPort noc.Coord) (*trace.Report, error) {
	var k sim.Kernel
	mesh, err := noc.New(&k, cfg)
	if err != nil {
		return nil, err
	}
	mem, err := controller.NewMemory(controller.DefaultMemoryBytes)
	if err != nil {
		return nil, err
	}
	bank, err := device.NewGPIOBank("ctrl-gpio", 1)
	if err != nil {
		return nil, err
	}
	proc, err := controller.NewProcessor(&k, mem, controller.GPIOExecutor{Bank: bank}, controller.SkipMissing)
	if err != nil {
		return nil, err
	}
	// Configuration messages travel the same mesh. Payloads carry closures
	// that apply the configuration on arrival — the model's equivalent of
	// the controller's Port A writes.
	if err := mesh.Attach(ioPort, func(p *noc.Packet) {
		if apply, ok := p.Payload.(func()); ok {
			apply()
		}
	}); err != nil {
		return nil, err
	}
	expected := make([]timing.Cycle, writes)
	entries := make([]controller.TableEntry, writes)
	for i := 0; i < writes; i++ {
		expected[i] = timing.Cycle(i+1) * period
		entries[i] = controller.TableEntry{Task: 0, Job: i, Start: expected[i], Budget: 2}
	}
	// Phase 1: pre-load the program. Phase 2: install the table. Phase 3:
	// enable and arm. All before the first actuation instant.
	mesh.Inject(&noc.Packet{Src: cpu, Dst: ioPort, Priority: 2, Payload: func() {
		if err := mem.Preload(0, controller.Program{{Op: controller.OpTogglePin, Pin: 0}}); err != nil {
			log.Fatal(err)
		}
	}})
	mesh.Inject(&noc.Packet{Src: cpu, Dst: ioPort, Priority: 2, Payload: func() {
		if err := proc.LoadTable(entries); err != nil {
			log.Fatal(err)
		}
		proc.EnableTask(0)
		if err := proc.Start(0, 1); err != nil {
			log.Fatal(err)
		}
	}})
	k.Run(0)
	if n := len(proc.Faults()); n > 0 {
		return nil, fmt.Errorf("controller recorded %d faults", n)
	}
	observed := make([]timing.Cycle, 0, writes)
	for _, e := range bank.EdgesFor(0) {
		observed = append(observed, e.At)
	}
	return trace.Measure(nil, expected, observed)
}
