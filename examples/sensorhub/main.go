// Sensor hub: a multi-device deployment with an I/O-aware end-to-end
// schedulability argument (Section III-C).
//
// One controller runs three processors, each bound to a different device:
//
//   - SPI: an IMU is sampled every 10 ms at a precise instant (sensor
//     fusion wants equidistant samples);
//   - UART: a telemetry frame is emitted every 40 ms;
//   - CAN: a heartbeat frame is broadcast every 80 ms.
//
// Because the partitions are independent, each device's schedule is exact.
// The example then composes the paper's Section III-C argument: the actual
// finish time of the SPI sampling task — fixed by the offline schedule —
// is fed into a priority-preemptive NoC flow analysis to bound a complete
// CPU → controller → SPI → CPU read transaction, forming an I/O-aware
// end-to-end schedulability test.
//
//	go run ./examples/sensorhub
package main

import (
	"fmt"
	"log"

	iosched "repro"

	"repro/internal/analysis"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/noc"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

const (
	devSPI  taskmodel.DeviceID = 0
	devUART taskmodel.DeviceID = 1
	devCAN  taskmodel.DeviceID = 2
)

func main() {
	tasks := []iosched.Task{
		{Name: "imu-sample", C: 200 * timing.Microsecond, T: 10 * timing.Millisecond,
			Delta: 2 * timing.Millisecond, Theta: 1 * timing.Millisecond, Device: devSPI},
		{Name: "telemetry", C: 4 * timing.Millisecond, T: 40 * timing.Millisecond,
			Delta: 10 * timing.Millisecond, Theta: 8 * timing.Millisecond, Device: devUART},
		{Name: "heartbeat", C: 1 * timing.Millisecond, T: 80 * timing.Millisecond,
			Delta: 30 * timing.Millisecond, Theta: 20 * timing.Millisecond, Device: devCAN},
	}
	ts, err := iosched.NewTaskSet(tasks)
	if err != nil {
		log.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)

	spi, err := device.NewSPI("imu", 16, 50) // 16-bit words, 2 MHz at 100 MHz clock
	if err != nil {
		log.Fatal(err)
	}
	uart, err := device.NewUART("telemetry", 868) // 115200 baud
	if err != nil {
		log.Fatal(err)
	}
	can, err := device.NewCAN("bus", 200) // 500 kbit/s
	if err != nil {
		log.Fatal(err)
	}
	sys := &core.System{
		Tasks: ts,
		Programs: map[int]controller.Program{
			0: {{Op: controller.OpSPIXfer, Arg: 0xABCD}},
			1: {{Op: controller.OpUARTSend, Arg: 'T'}, {Op: controller.OpUARTSend, Arg: 'M'}},
			2: {{Op: controller.OpCANSend, Data: []byte{0xBE, 0xEF}}},
		},
		Executors: map[taskmodel.DeviceID]controller.Executor{
			devSPI:  controller.SPIExecutor{Dev: spi},
			devUART: controller.UARTExecutor{Dev: uart},
			devCAN:  controller.CANExecutor{Dev: can},
		},
	}
	scheduler, err := core.NewScheduler(core.MethodStatic, nil)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.Run(scheduler, 1)
	if err != nil {
		log.Fatal(err)
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		log.Fatal(err)
	}
	psi, ups := d.Metrics()
	fmt.Printf("three-device hub: Psi = %.3f, Upsilon = %.3f (hardware exact %.0f%%)\n\n",
		psi, ups, 100*report.ExactFraction())
	fmt.Printf("SPI frames:  %d (first at cycle %d)\n", len(spi.Frames()), spi.Frames()[0].At)
	fmt.Printf("UART frames: %d (first at cycle %d)\n", len(uart.Frames()), uart.Frames()[0].At)
	fmt.Printf("CAN frames:  %d (first at cycle %d)\n\n", len(can.Frames()), can.Frames()[0].At)

	// --- I/O-aware end-to-end test (Section III-C) ---
	// CPU (0,0) reads the IMU through the controller at (3,3); a video
	// stream between other nodes interferes with both directions.
	cpu := noc.Coord{X: 0, Y: 0}
	ctl := noc.Coord{X: 3, Y: 3}
	flows := []analysis.Flow{
		{Name: "imu-request", Priority: 2, Period: 10 * timing.Millisecond,
			BasicLatency: 50 * timing.Microsecond, Route: analysis.XYRoute(cpu, ctl)},
		{Name: "imu-response", Priority: 2, Period: 10 * timing.Millisecond,
			BasicLatency: 50 * timing.Microsecond, Route: analysis.XYRoute(ctl, cpu)},
		{Name: "video", Priority: 3, Period: 2 * timing.Millisecond,
			BasicLatency: 300 * timing.Microsecond,
			Route:        analysis.XYRoute(noc.Coord{X: 0, Y: 2}, noc.Coord{X: 3, Y: 2})},
	}
	tx := analysis.Transaction{
		Name: "imu-read", Request: 0, Response: 1,
		Task: 0, Device: int(devSPI), Deadline: 5 * timing.Millisecond,
	}
	bounds, err := analysis.Analyze(tx, flows, d.Schedules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("I/O-aware end-to-end bound for the imu-read transaction:")
	fmt.Printf("  request over NoC:  %v\n", bounds.RequestNet)
	fmt.Printf("  I/O finish time:   %v  (from the offline schedule)\n", bounds.IOFinish)
	fmt.Printf("  response over NoC: %v\n", bounds.ResponseNet)
	fmt.Printf("  total %v vs deadline %v -> schedulable: %v\n",
		bounds.Total, tx.Deadline, bounds.Schedulable)
}
