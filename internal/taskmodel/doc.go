// Package taskmodel implements the timed I/O task model of Section II of
// the paper.
//
// A timed I/O task τi is the 6-tuple {Ci, Ti, Di, Pi, δi, θi}: worst-case
// device occupancy Ci, period Ti, implicit deadline Di = Ti, a
// deadline-monotonic priority Pi (larger value = higher priority; the paper
// writes "D1 > D2 so that P1 < P2"), a relative ideal start time δi, and a
// timing margin θi. Each task releases jobs λi^j over the hyper-period; job
// j is released at Ti·j, must finish by Ti·j + Di, and ideally starts at
// Ti·j + δi. Jobs are executed non-preemptively on the task's I/O device.
package taskmodel
