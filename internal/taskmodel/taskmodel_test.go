package taskmodel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

const ms = timing.Millisecond

func validTask() Task {
	return Task{
		Name:  "t",
		C:     2 * ms,
		T:     20 * ms,
		D:     20 * ms,
		Delta: 8 * ms,
		Theta: 5 * ms,
		Vmax:  2,
		Vmin:  1,
	}
}

func TestTaskValidate(t *testing.T) {
	ok := validTask()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Task)
		frag   string
	}{
		{"zero C", func(x *Task) { x.C = 0 }, "C ="},
		{"negative C", func(x *Task) { x.C = -1 }, "C ="},
		{"zero T", func(x *Task) { x.T = 0 }, "T ="},
		{"D beyond T", func(x *Task) { x.D = x.T + 1 }, "D ="},
		{"C beyond D", func(x *Task) { x.C = x.D + 1 }, "exceeds D"},
		{"negative theta", func(x *Task) { x.Theta = -1 }, "θ ="},
		{"delta below theta", func(x *Task) { x.Delta = x.Theta - 1 }, "δ ="},
		{"delta above D-theta", func(x *Task) { x.Delta = x.D - x.Theta + 1 }, "δ ="},
		{"Vmax below Vmin", func(x *Task) { x.Vmax = 0.5 }, "Vmax"},
	}
	for _, c := range cases {
		bad := validTask()
		c.mutate(&bad)
		err := bad.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestNewTaskSetAssignsIDsAndImplicitDeadlines(t *testing.T) {
	a, b := validTask(), validTask()
	b.D = 0 // implicit
	b.T = 40 * ms
	ts, err := NewTaskSet([]Task{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tasks[0].ID != 0 || ts.Tasks[1].ID != 1 {
		t.Errorf("IDs = %d,%d", ts.Tasks[0].ID, ts.Tasks[1].ID)
	}
	if ts.Tasks[1].D != 40*ms {
		t.Errorf("implicit deadline = %v, want 40ms", ts.Tasks[1].D)
	}
}

func TestNewTaskSetEmpty(t *testing.T) {
	if _, err := NewTaskSet(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestNewTaskSetDoesNotAliasInput(t *testing.T) {
	in := []Task{validTask()}
	ts, err := NewTaskSet(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0].C = 999 * ms
	if ts.Tasks[0].C == 999*ms {
		t.Error("TaskSet aliases caller's slice")
	}
}

func TestHyperperiodAndUtilization(t *testing.T) {
	a, b, c := validTask(), validTask(), validTask()
	a.T, a.D = 120*ms, 120*ms
	a.Delta = 30 * ms
	b.T, b.D = 160*ms, 160*ms
	b.Delta = 40 * ms
	c.T, c.D = 180*ms, 180*ms
	c.Delta = 45 * ms
	ts, err := NewTaskSet([]Task{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if h := ts.Hyperperiod(); h != timing.HyperPeriod1440ms {
		t.Errorf("hyperperiod = %v, want 1440ms", h)
	}
	u := ts.Utilization()
	want := 2.0/120 + 2.0/160 + 2.0/180
	if diff := u - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("U = %g, want %g", u, want)
	}
}

func TestAssignDMPO(t *testing.T) {
	a, b, c := validTask(), validTask(), validTask()
	a.T, a.D = 120*ms, 120*ms
	a.Delta = 30 * ms
	b.T, b.D = 40*ms, 40*ms
	b.Delta = 10 * ms
	c.T, c.D = 240*ms, 240*ms
	c.Delta = 60 * ms
	ts, err := NewTaskSet([]Task{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	// Shortest deadline (b, 40ms) must get the highest priority value.
	if ts.Tasks[1].P != 3 {
		t.Errorf("b.P = %d, want 3", ts.Tasks[1].P)
	}
	if ts.Tasks[0].P != 2 {
		t.Errorf("a.P = %d, want 2", ts.Tasks[0].P)
	}
	if ts.Tasks[2].P != 1 {
		t.Errorf("c.P = %d, want 1", ts.Tasks[2].P)
	}
}

func TestAssignDMPOTieBreakDeterministic(t *testing.T) {
	a, b := validTask(), validTask()
	ts, err := NewTaskSet([]Task{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	// Equal deadlines: lower index wins the higher priority.
	if ts.Tasks[0].P != 2 || ts.Tasks[1].P != 1 {
		t.Errorf("tie break: P0=%d P1=%d, want 2,1", ts.Tasks[0].P, ts.Tasks[1].P)
	}
}

func TestApplyPaperQuality(t *testing.T) {
	a, b := validTask(), validTask()
	b.T, b.D = 40*ms, 40*ms
	b.Delta = 10 * ms
	ts, _ := NewTaskSet([]Task{a, b})
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	for i := range ts.Tasks {
		if ts.Tasks[i].Vmax != float64(ts.Tasks[i].P)+1 {
			t.Errorf("task %d Vmax = %g, want P+1 = %d", i, ts.Tasks[i].Vmax, ts.Tasks[i].P+1)
		}
		if ts.Tasks[i].Vmin != 1 {
			t.Errorf("task %d Vmin = %g, want 1", i, ts.Tasks[i].Vmin)
		}
	}
}

func TestJobsExpansion(t *testing.T) {
	a, b := validTask(), validTask()
	a.T, a.D, a.Delta = 20*ms, 20*ms, 8*ms
	b.T, b.D, b.Delta = 40*ms, 40*ms, 10*ms
	ts, _ := NewTaskSet([]Task{a, b})
	ts.AssignDMPO()
	jobs := ts.Jobs()
	// Hyper-period 40ms: a releases 2 jobs, b releases 1.
	if len(jobs) != 3 {
		t.Fatalf("len(jobs) = %d, want 3", len(jobs))
	}
	byID := make(map[JobID]Job)
	for _, j := range jobs {
		byID[j.ID] = j
	}
	j01 := byID[JobID{Task: 0, J: 1}]
	if j01.Release != 20*ms || j01.Deadline != 40*ms || j01.Ideal != 28*ms {
		t.Errorf("λ0^1 window = [%v, %v] ideal %v", j01.Release, j01.Deadline, j01.Ideal)
	}
	// Jobs sorted by ideal start.
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].Ideal > jobs[i].Ideal {
			t.Errorf("jobs not sorted by ideal: %v then %v", jobs[i-1].Ideal, jobs[i].Ideal)
		}
	}
}

func TestJobCountPanicsOnNonDividingHyperperiod(t *testing.T) {
	tk := validTask()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tk.JobCount(30 * ms) // 30 % 20 != 0
}

func TestJobWindowHelpers(t *testing.T) {
	j := Job{
		Release:  100,
		Deadline: 200,
		Ideal:    150,
		C:        20,
		Theta:    30,
	}
	if j.BoundaryLo() != 120 {
		t.Errorf("BoundaryLo = %v, want 120", j.BoundaryLo())
	}
	if j.BoundaryHi() != 180 {
		t.Errorf("BoundaryHi = %v, want 180 (clamped by latest start)", j.BoundaryHi())
	}
	if j.LatestStart() != 180 {
		t.Errorf("LatestStart = %v, want 180", j.LatestStart())
	}
	if j.IdealEnd() != 170 {
		t.Errorf("IdealEnd = %v, want 170", j.IdealEnd())
	}
	// Clamping: ideal near release.
	j2 := Job{Release: 100, Deadline: 200, Ideal: 110, C: 50, Theta: 30}
	if j2.BoundaryLo() != 100 {
		t.Errorf("BoundaryLo clamp = %v, want 100", j2.BoundaryLo())
	}
	if j2.BoundaryHi() != 140 {
		t.Errorf("BoundaryHi = %v, want 140", j2.BoundaryHi())
	}
}

func TestOverlapsIdeal(t *testing.T) {
	a := &Job{Ideal: 100, C: 20}
	cases := []struct {
		ideal, c timing.Time
		want     bool
	}{
		{80, 20, false},  // touches at 100: half-open, no overlap
		{80, 21, true},   // spills into [100,120)
		{120, 10, false}, // starts exactly at a's end
		{119, 10, true},
		{100, 20, true}, // identical
		{105, 1, true},  // nested
	}
	for _, c := range cases {
		b := &Job{Ideal: c.ideal, C: c.c}
		if got := a.OverlapsIdeal(b); got != c.want {
			t.Errorf("overlap([100,120),[%d,%d)) = %v, want %v", c.ideal, c.ideal+c.c, got, c.want)
		}
		if got := b.OverlapsIdeal(a); got != c.want {
			t.Errorf("overlap symmetric([%d,%d)) = %v, want %v", c.ideal, c.ideal+c.c, got, c.want)
		}
	}
}

func TestJobsByDeviceAndDevices(t *testing.T) {
	a, b, c := validTask(), validTask(), validTask()
	a.Device, b.Device, c.Device = 1, 0, 1
	ts, _ := NewTaskSet([]Task{a, b, c})
	parts := ts.JobsByDevice()
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	if len(parts[1]) != 2 || len(parts[0]) != 1 {
		t.Errorf("partition sizes: dev0=%d dev1=%d", len(parts[0]), len(parts[1]))
	}
	devs := ts.Devices()
	if len(devs) != 2 || devs[0] != 0 || devs[1] != 1 {
		t.Errorf("Devices() = %v", devs)
	}
}

func TestByID(t *testing.T) {
	ts, _ := NewTaskSet([]Task{validTask()})
	if ts.ByID(0) == nil || ts.ByID(0).ID != 0 {
		t.Error("ByID(0) broken")
	}
	if ts.ByID(-1) != nil || ts.ByID(1) != nil {
		t.Error("ByID out of range should be nil")
	}
}

// Property: expanded jobs always lie within the hyper-period, ideal starts
// are inside [release+θ, deadline−θ], and the per-task job count is H/T.
func TestJobsExpansionProperties(t *testing.T) {
	periods := []timing.Time{20 * ms, 40 * ms, 60 * ms, 120 * ms}
	f := func(p1, p2 uint8, cRaw, dRaw uint8) bool {
		t1 := periods[int(p1)%len(periods)]
		t2 := periods[int(p2)%len(periods)]
		c := timing.Time(int64(cRaw)%4+1) * ms
		theta := t1 / 4
		if c > theta {
			c = theta
		}
		delta := theta + timing.Time(int64(dRaw))*ms
		if delta > t1-theta {
			delta = t1 - theta
		}
		a := Task{C: c, T: t1, D: t1, Delta: delta, Theta: theta, Vmax: 2, Vmin: 1}
		theta2 := t2 / 4
		c2 := timing.Min(c, theta2)
		b := Task{C: c2, T: t2, D: t2, Delta: theta2, Theta: theta2, Vmax: 2, Vmin: 1}
		ts, err := NewTaskSet([]Task{a, b})
		if err != nil {
			return false
		}
		h := ts.Hyperperiod()
		jobs := ts.Jobs()
		counts := map[int]int{}
		for _, j := range jobs {
			counts[j.ID.Task]++
			if j.Release < 0 || j.Deadline > h {
				return false
			}
			if j.Ideal < j.Release+j.Theta-0 || j.Ideal > j.Deadline-j.Theta {
				return false
			}
			if j.BoundaryLo() > j.BoundaryHi() {
				return false
			}
		}
		return counts[0] == int(h/t1) && counts[1] == int(h/t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
