package taskmodel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/timing"
)

// DeviceID identifies the I/O device a task operates on. The scheduling
// model is fully partitioned: one controller processor per device, so only
// tasks sharing a DeviceID contend with each other.
type DeviceID int

// Task is a periodic timed I/O task (Section II).
type Task struct {
	// ID is the task's index within its TaskSet; it is assigned by
	// TaskSet.Normalize and used to identify jobs.
	ID int
	// Name is an optional human-readable label used in traces and examples.
	Name string
	// C is the worst-case computation time for operating the I/O device.
	C timing.Time
	// T is the release period.
	T timing.Time
	// Offset is the release offset of the first job (Section III-C: "the
	// proposed methods can also be applied to I/O tasks with different
	// release offsets"). Job j is released at Offset + T·j. Must satisfy
	// 0 ≤ Offset < T.
	Offset timing.Time
	// D is the relative deadline. The paper uses implicit deadlines (D = T).
	D timing.Time
	// P is the deadline-monotonic priority. Larger values denote higher
	// priority. AssignDMPO fills it in.
	P int
	// Delta is δi, the relative ideal start time within each period.
	Delta timing.Time
	// Theta is θi, the timing margin: a job retains above-minimum quality
	// when started within [δ−θ, δ+θ] of its release.
	Theta timing.Time
	// Device is the I/O device the task operates on.
	Device DeviceID
	// Vmax is the quality obtained by starting exactly at the ideal instant.
	// The paper's evaluation sets Vmax = Pi + 1.
	Vmax float64
	// Vmin is the quality obtained by a job that starts outside the timing
	// boundary but still meets its deadline. The paper's evaluation uses a
	// global Vmin = 1.
	Vmin float64
}

// Validate checks the structural invariants of a single task.
func (t *Task) Validate() error {
	switch {
	case t.C <= 0:
		return fmt.Errorf("task %d (%s): C = %v, must be positive", t.ID, t.Name, t.C)
	case t.T <= 0:
		return fmt.Errorf("task %d (%s): T = %v, must be positive", t.ID, t.Name, t.T)
	case t.D <= 0 || t.D > t.T:
		return fmt.Errorf("task %d (%s): D = %v, must be in (0, T=%v]", t.ID, t.Name, t.D, t.T)
	case t.Offset < 0 || t.Offset >= t.T:
		return fmt.Errorf("task %d (%s): offset = %v, must be in [0, T=%v)", t.ID, t.Name, t.Offset, t.T)
	case t.C > t.D:
		return fmt.Errorf("task %d (%s): C = %v exceeds D = %v", t.ID, t.Name, t.C, t.D)
	case t.Theta < 0:
		return fmt.Errorf("task %d (%s): θ = %v, must be non-negative", t.ID, t.Name, t.Theta)
	case t.Delta < t.Theta || t.Delta > t.D-t.Theta:
		// The evaluation draws δ from [θ, D−θ] so the whole boundary lies
		// inside the release window.
		return fmt.Errorf("task %d (%s): δ = %v outside [θ=%v, D−θ=%v]",
			t.ID, t.Name, t.Delta, t.Theta, t.D-t.Theta)
	case t.Vmax < t.Vmin:
		return fmt.Errorf("task %d (%s): Vmax = %g < Vmin = %g", t.ID, t.Name, t.Vmax, t.Vmin)
	}
	return nil
}

// Utilization returns C/T as a float. It is only used for reporting; all
// feasibility decisions use integer arithmetic.
func (t *Task) Utilization() float64 { return float64(t.C) / float64(t.T) }

// JobCount returns the number of jobs the task releases within a
// hyper-period h. It panics if h is not a multiple of T, which indicates a
// malformed task set rather than a recoverable input.
func (t *Task) JobCount(h timing.Time) int {
	if h%t.T != 0 {
		panic(fmt.Sprintf("taskmodel: hyper-period %v is not a multiple of task %d period %v", h, t.ID, t.T))
	}
	return int(h / t.T)
}

// JobID uniquely identifies job λi^j: task index i and release index j.
type JobID struct {
	Task int
	J    int
}

func (id JobID) String() string { return fmt.Sprintf("λ%d^%d", id.Task, id.J) }

// Job is one release λi^j of a task within the hyper-period, with its
// absolute window precomputed.
type Job struct {
	ID JobID
	// Release is the absolute release instant Ti·j.
	Release timing.Time
	// Deadline is the absolute deadline Ti·j + Di.
	Deadline timing.Time
	// Ideal is the absolute ideal start instant Ti·j + δi.
	Ideal timing.Time
	// C is the job's device occupancy (the task's WCET).
	C timing.Time
	// P is the task's priority (larger = higher).
	P int
	// Theta, Vmax and Vmin mirror the task's quality parameters.
	Theta timing.Time
	Vmax  float64
	Vmin  float64
	// Device is the device partition the job belongs to.
	Device DeviceID
}

// BoundaryLo returns the earliest start instant with above-minimum quality,
// clamped to the release instant.
func (j *Job) BoundaryLo() timing.Time { return timing.Max(j.Release, j.Ideal-j.Theta) }

// BoundaryHi returns the latest start instant with above-minimum quality,
// clamped so the job still meets its deadline.
func (j *Job) BoundaryHi() timing.Time {
	return timing.Min(j.Ideal+j.Theta, j.LatestStart())
}

// LatestStart returns the latest feasible start instant (deadline − C).
func (j *Job) LatestStart() timing.Time { return j.Deadline - j.C }

// IdealEnd returns the finish instant of an exactly-accurate execution.
func (j *Job) IdealEnd() timing.Time { return j.Ideal + j.C }

// OverlapsIdeal reports whether the ideal execution intervals
// [Ideal, Ideal+C) of two jobs intersect. This is the edge relation of the
// dependency graphs in Algorithm 1 phase one.
func (j *Job) OverlapsIdeal(o *Job) bool {
	return j.Ideal < o.IdealEnd() && o.Ideal < j.IdealEnd()
}

// TaskSet is an ordered collection of timed I/O tasks.
type TaskSet struct {
	Tasks []Task
}

// ErrEmpty is returned when an operation requires at least one task.
var ErrEmpty = errors.New("taskmodel: empty task set")

// NewTaskSet normalises and validates a set of tasks: IDs are assigned by
// position, implicit deadlines are filled in (D = T when D is zero), and
// every task is validated.
func NewTaskSet(tasks []Task) (*TaskSet, error) {
	if len(tasks) == 0 {
		return nil, ErrEmpty
	}
	ts := &TaskSet{Tasks: append([]Task(nil), tasks...)}
	for i := range ts.Tasks {
		ts.Tasks[i].ID = i
		if ts.Tasks[i].D == 0 {
			ts.Tasks[i].D = ts.Tasks[i].T
		}
	}
	for i := range ts.Tasks {
		if err := ts.Tasks[i].Validate(); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// Hyperperiod returns the least common multiple of all task periods.
func (ts *TaskSet) Hyperperiod() timing.Time {
	periods := make([]timing.Time, len(ts.Tasks))
	for i, t := range ts.Tasks {
		periods[i] = t.T
	}
	return timing.LCMTimes(periods)
}

// Utilization returns the total utilisation ΣCi/Ti.
func (ts *TaskSet) Utilization() float64 {
	var u float64
	for i := range ts.Tasks {
		u += ts.Tasks[i].Utilization()
	}
	return u
}

// AssignDMPO assigns deadline-monotonic priorities: the task with the
// shortest deadline receives the highest priority value (n for n tasks,
// matching the paper's "D1 > D2 so that P1 < P2" with P ∈ {1..n}).
// Deadline ties are broken by task index for determinism.
func (ts *TaskSet) AssignDMPO() {
	order := make([]int, len(ts.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := &ts.Tasks[order[a]], &ts.Tasks[order[b]]
		if ta.D != tb.D {
			return ta.D > tb.D // longest deadline first = lowest priority first
		}
		return ta.ID > tb.ID
	})
	for rank, idx := range order {
		ts.Tasks[idx].P = rank + 1
	}
}

// ApplyPaperQuality sets the evaluation's quality parameters:
// Vmax = Pi + 1 per task and the supplied global Vmin (the paper uses 1).
func (ts *TaskSet) ApplyPaperQuality(vmin float64) {
	for i := range ts.Tasks {
		ts.Tasks[i].Vmax = float64(ts.Tasks[i].P) + 1
		ts.Tasks[i].Vmin = vmin
	}
}

// MaxOffset returns the largest release offset in the set.
func (ts *TaskSet) MaxOffset() timing.Time {
	var m timing.Time
	for i := range ts.Tasks {
		if ts.Tasks[i].Offset > m {
			m = ts.Tasks[i].Offset
		}
	}
	return m
}

// ScheduleHorizon returns the window the offline schedulers must cover so
// that every job released before the steady state is included: one
// hyper-period for synchronous sets, two for sets with release offsets
// (Section III-C: "produce explicit schedule for different hyper-periods
// of the input jobs, until the schedule can repeat").
func (ts *TaskSet) ScheduleHorizon() timing.Time {
	h := ts.Hyperperiod()
	if ts.MaxOffset() == 0 {
		return h
	}
	return 2 * h
}

// Jobs expands every task into its jobs over the schedule horizon, ordered
// by (ideal start, task ID). For synchronous task sets that is one
// hyper-period; with release offsets it is two, and only jobs whose whole
// window fits inside the horizon are included (the release pattern repeats
// with the hyper-period, so the second period already exhibits the steady
// state). The ordering is deterministic and convenient for the schedulers;
// none of them rely on it for correctness.
func (ts *TaskSet) Jobs() []Job {
	horizon := ts.ScheduleHorizon()
	var jobs []Job
	for i := range ts.Tasks {
		t := &ts.Tasks[i]
		for j := 0; ; j++ {
			rel := t.Offset + t.T*timing.Time(j)
			if rel+t.D > horizon {
				break
			}
			jobs = append(jobs, Job{
				ID:       JobID{Task: t.ID, J: j},
				Release:  rel,
				Deadline: rel + t.D,
				Ideal:    rel + t.Delta,
				C:        t.C,
				P:        t.P,
				Theta:    t.Theta,
				Vmax:     t.Vmax,
				Vmin:     t.Vmin,
				Device:   t.Device,
			})
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Ideal != jobs[b].Ideal {
			return jobs[a].Ideal < jobs[b].Ideal
		}
		return jobs[a].ID.Task < jobs[b].ID.Task
	})
	return jobs
}

// JobsByDevice partitions the expanded jobs by device, reflecting the
// fully-partitioned scheduling model (one controller processor per device).
func (ts *TaskSet) JobsByDevice() map[DeviceID][]Job {
	parts := make(map[DeviceID][]Job)
	for _, j := range ts.Jobs() {
		parts[j.Device] = append(parts[j.Device], j)
	}
	return parts
}

// Devices returns the distinct device IDs in ascending order.
func (ts *TaskSet) Devices() []DeviceID {
	seen := make(map[DeviceID]bool)
	var out []DeviceID
	for i := range ts.Tasks {
		d := ts.Tasks[i].Device
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ByID returns a pointer to the task with the given ID, or nil.
func (ts *TaskSet) ByID(id int) *Task {
	if id < 0 || id >= len(ts.Tasks) {
		return nil
	}
	return &ts.Tasks[id]
}
