package taskmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func offsetTask(offset timing.Time) Task {
	return Task{
		C: 2 * ms, T: 20 * ms, D: 20 * ms, Offset: offset,
		Delta: 8 * ms, Theta: 5 * ms, Vmax: 2, Vmin: 1,
	}
}

func TestOffsetValidation(t *testing.T) {
	ok := offsetTask(5 * ms)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid offset rejected: %v", err)
	}
	bad := offsetTask(-1)
	if err := bad.Validate(); err == nil {
		t.Error("negative offset accepted")
	}
	bad = offsetTask(20 * ms) // offset == T
	if err := bad.Validate(); err == nil {
		t.Error("offset == T accepted")
	}
}

func TestScheduleHorizonSynchronousVsOffset(t *testing.T) {
	sync, err := NewTaskSet([]Task{offsetTask(0), offsetTask(0)})
	if err != nil {
		t.Fatal(err)
	}
	if sync.ScheduleHorizon() != sync.Hyperperiod() {
		t.Errorf("synchronous horizon = %v, want one hyper-period", sync.ScheduleHorizon())
	}
	off, err := NewTaskSet([]Task{offsetTask(0), offsetTask(7 * ms)})
	if err != nil {
		t.Fatal(err)
	}
	if off.ScheduleHorizon() != 2*off.Hyperperiod() {
		t.Errorf("offset horizon = %v, want two hyper-periods", off.ScheduleHorizon())
	}
	if off.MaxOffset() != 7*ms {
		t.Errorf("max offset = %v", off.MaxOffset())
	}
}

func TestJobsWithOffsets(t *testing.T) {
	a := offsetTask(0)
	b := offsetTask(7 * ms)
	b.T, b.D = 40*ms, 40*ms
	ts, err := NewTaskSet([]Task{a, b})
	if err != nil {
		t.Fatal(err)
	}
	jobs := ts.Jobs()
	// Horizon = 2H = 80 ms. Task a (T=20, offset 0): releases 0..60 → 4
	// jobs. Task b (T=40, offset 7ms): releases 7, 47; deadlines 47, 87 —
	// the second exceeds the 80 ms horizon, so only 1 job qualifies.
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.ID.Task]++
		if j.ID.Task == 1 {
			wantRel := 7*ms + 40*ms*timing.Time(j.ID.J)
			if j.Release != wantRel {
				t.Errorf("λ1^%d release = %v, want %v", j.ID.J, j.Release, wantRel)
			}
		}
	}
	if counts[0] != 4 {
		t.Errorf("task 0 jobs = %d, want 4", counts[0])
	}
	if counts[1] != 1 {
		t.Errorf("task 1 jobs = %d, want 1 (second job's window crosses the horizon)", counts[1])
	}
}

func TestSynchronousExpansionUnchangedByOffsetCode(t *testing.T) {
	// The offset-aware expansion must reproduce the classic synchronous
	// expansion exactly: H/T jobs per task, all windows inside [0, H).
	ts, err := NewTaskSet([]Task{offsetTask(0), {
		C: 1 * ms, T: 40 * ms, D: 40 * ms, Delta: 10 * ms, Theta: 10 * ms, Vmax: 2, Vmin: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := ts.Jobs()
	if len(jobs) != 2+1 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	h := ts.Hyperperiod()
	for _, j := range jobs {
		if j.Deadline > h {
			t.Errorf("job %v deadline %v beyond hyper-period", j.ID, j.Deadline)
		}
	}
}

// Property: all expanded jobs (with or without offsets) have windows inside
// the schedule horizon, releases at Offset + j·T, and consecutive jobs of a
// task exactly one period apart.
func TestOffsetJobsProperty(t *testing.T) {
	f := func(off1Raw, off2Raw uint8) bool {
		o1 := timing.Time(off1Raw%20) * ms
		o2 := timing.Time(off2Raw%40) * ms
		a := offsetTask(o1)
		b := Task{C: 1 * ms, T: 40 * ms, D: 40 * ms, Offset: o2,
			Delta: 10 * ms, Theta: 10 * ms, Vmax: 2, Vmin: 1}
		ts, err := NewTaskSet([]Task{a, b})
		if err != nil {
			return false
		}
		horizon := ts.ScheduleHorizon()
		rel := map[int][]timing.Time{}
		for _, j := range ts.Jobs() {
			if j.Release < 0 || j.Deadline > horizon {
				return false
			}
			rel[j.ID.Task] = append(rel[j.ID.Task], j.Release)
		}
		for task, rs := range rel {
			period := ts.Tasks[task].T
			offset := ts.Tasks[task].Offset
			for i, r := range rs {
				if r != offset+period*timing.Time(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Offsets flow through the schedulers untouched: a staggered task set that
// is infeasible synchronously becomes feasible with phase separation.
func TestOffsetsSeparateConflictingTasks(t *testing.T) {
	// Two tasks with identical δ: synchronously their ideal intervals
	// collide every period; with a half-period offset they interleave.
	mk := func(offset timing.Time) Task {
		return Task{C: 4 * ms, T: 20 * ms, D: 20 * ms, Offset: offset,
			Delta: 8 * ms, Theta: 5 * ms, Vmax: 2, Vmin: 1}
	}
	syncSet, err := NewTaskSet([]Task{mk(0), mk(0)})
	if err != nil {
		t.Fatal(err)
	}
	offSet, err := NewTaskSet([]Task{mk(0), mk(10 * ms)})
	if err != nil {
		t.Fatal(err)
	}
	syncConflicts, offConflicts := 0, 0
	sj, oj := syncSet.Jobs(), offSet.Jobs()
	for a := range sj {
		for b := a + 1; b < len(sj); b++ {
			if sj[a].OverlapsIdeal(&sj[b]) {
				syncConflicts++
			}
		}
	}
	for a := range oj {
		for b := a + 1; b < len(oj); b++ {
			if oj[a].OverlapsIdeal(&oj[b]) {
				offConflicts++
			}
		}
	}
	if syncConflicts == 0 {
		t.Fatal("synchronous set should conflict")
	}
	if offConflicts != 0 {
		t.Errorf("offset set still has %d conflicts", offConflicts)
	}
}
