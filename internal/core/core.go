package core

import (
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/sim"
	"repro/internal/taskmodel"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Method selects a scheduling method by name.
type Method string

// The available scheduling methods.
const (
	MethodStatic     Method = "static"
	MethodGA         Method = "ga"
	MethodFPSOffline Method = "fps-offline"
	MethodGPIOCP     Method = "gpiocp"
)

// NewScheduler constructs the named scheduler. The GA uses opts when
// provided (nil means ga.DefaultOptions with seed 1).
func NewScheduler(m Method, gaOpts *ga.Options) (sched.Scheduler, error) {
	switch m {
	case MethodStatic:
		return staticsched.New(staticsched.Options{}), nil
	case MethodGA:
		opts := ga.DefaultOptions()
		opts.Seed = 1
		if gaOpts != nil {
			opts = *gaOpts
		}
		return &ga.Scheduler{Opts: opts}, nil
	case MethodFPSOffline:
		return fps.Offline{}, nil
	case MethodGPIOCP:
		return gpiocp.Scheduler{}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheduling method %q", m)
	}
}

// System is a deployable timed-I/O system: the task set, the per-task
// command programs, and the executor (device binding) for every device
// partition.
type System struct {
	Tasks     *taskmodel.TaskSet
	Programs  map[int]controller.Program
	Executors map[taskmodel.DeviceID]controller.Executor
	// Clock converts the µs scheduling timeline to controller cycles
	// (default 100 MHz).
	Clock timing.ClockHz
	// Policy is the fault-recovery policy (default SkipMissing, with all
	// tasks requested at deployment).
	Policy controller.Policy
}

// Validate checks that every task has a program whose worst-case duration
// fits the task's C budget, and that every device has an executor.
func (s *System) Validate() error {
	if s.Tasks == nil || len(s.Tasks.Tasks) == 0 {
		return fmt.Errorf("core: system has no tasks")
	}
	clock := s.clock()
	for i := range s.Tasks.Tasks {
		t := &s.Tasks.Tasks[i]
		prog, ok := s.Programs[t.ID]
		if !ok {
			return fmt.Errorf("core: task %d (%s) has no program", t.ID, t.Name)
		}
		if len(prog) == 0 {
			return fmt.Errorf("core: task %d (%s) has an empty program", t.ID, t.Name)
		}
		if _, ok := s.Executors[t.Device]; !ok {
			return fmt.Errorf("core: device %d has no executor", t.Device)
		}
		budget := clock.ToCycles(t.C)
		if d := programDuration(prog, s.Executors[t.Device]); d > budget {
			return fmt.Errorf("core: task %d program takes %d cycles, budget C = %d",
				t.ID, d, budget)
		}
	}
	return nil
}

func (s *System) clock() timing.ClockHz {
	if s.Clock == 0 {
		return timing.Clock100MHz
	}
	return s.Clock
}

// programDuration sums the occupancy of a program using the executor's
// side-effect-free Cost method. Commands the device cannot execute count
// as zero here and surface as faults at run time.
func programDuration(prog controller.Program, exec controller.Executor) timing.Cycle {
	var d timing.Cycle
	for _, cmd := range prog {
		busy, err := exec.Cost(cmd)
		if err != nil {
			continue
		}
		d += busy
	}
	return d
}

// Deployment is a scheduled system running on the simulated controller.
type Deployment struct {
	System    *System
	Schedules sched.DeviceSchedules
	Kernel    *sim.Kernel
	Ctrl      *controller.Controller
	// Periods is the number of hyper-periods armed.
	Periods int
}

// Run produces the offline schedule with the given scheduler, deploys it
// onto a fresh controller and runs the simulation for the given number of
// hyper-periods. Validation uses the executors'
// side-effect-free Cost methods, so the device state observed afterwards
// comes from the simulation only.
func (s *System) Run(scheduler sched.Scheduler, periods int) (*Deployment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if periods < 1 {
		return nil, fmt.Errorf("core: periods = %d", periods)
	}
	schedules, err := sched.ScheduleAll(s.Tasks, scheduler)
	if err != nil {
		return nil, fmt.Errorf("core: %s scheduling failed: %w", scheduler.Name(), err)
	}
	var k sim.Kernel
	ctrl := controller.New()
	for dev, exec := range s.Executors {
		if _, err := ctrl.AddProcessor(&k, dev, exec, s.Policy); err != nil {
			return nil, err
		}
	}
	// Request every task up front; fault-injection tests disable selected
	// tasks before running the kernel.
	for i := range s.Tasks.Tasks {
		t := &s.Tasks.Tasks[i]
		ctrl.Processors[t.Device].EnableTask(t.ID)
	}
	h := s.Tasks.Hyperperiod()
	if err := ctrl.Deploy(s.Programs, schedules, s.clock(), h, periods); err != nil {
		return nil, err
	}
	d := &Deployment{System: s, Schedules: schedules, Kernel: &k, Ctrl: ctrl, Periods: periods}
	return d, nil
}

// Simulate drains the event kernel.
func (d *Deployment) Simulate() {
	d.Kernel.Run(0)
}

// Verify checks that every scheduled job of every armed hyper-period
// executed exactly at its scheduled cycle, and returns the accuracy report
// of executions against the jobs' ideal instants (the hardware-level Ψ and
// jitter). Faults make verification fail.
func (d *Deployment) Verify() (*trace.Report, error) {
	clock := d.System.clock()
	h := clock.ToCycles(d.System.Tasks.Hyperperiod())
	var labels []string
	var expectedIdeal, observed []timing.Cycle
	for dev, proc := range d.Ctrl.Processors {
		if faults := proc.Faults(); len(faults) > 0 {
			return nil, fmt.Errorf("core: device %d recorded %d faults (first: %v %s)",
				dev, len(faults), faults[0].Kind, fmtFault(faults[0]))
		}
		exec := proc.Executions()
		schedule := d.Schedules[dev]
		expectTotal := len(schedule.Entries) * d.Periods
		if len(exec) != expectTotal {
			return nil, fmt.Errorf("core: device %d executed %d jobs, scheduled %d",
				dev, len(exec), expectTotal)
		}
		for rep := 0; rep < d.Periods; rep++ {
			offset := timing.Cycle(rep) * h
			for i := range schedule.Entries {
				entry := &schedule.Entries[i]
				key := [2]int{entry.Job.ID.Task, entry.Job.ID.J}
				want := offset + clock.ToCycles(entry.Start)
				got, ok := findExecution(exec, key, want)
				if !ok {
					return nil, fmt.Errorf("core: job %v period %d did not start at its scheduled cycle %d",
						entry.Job.ID, rep, want)
				}
				labels = append(labels, entry.Job.ID.String())
				expectedIdeal = append(expectedIdeal, offset+clock.ToCycles(entry.Job.Ideal))
				observed = append(observed, got)
			}
		}
	}
	// Sort by observation instant so reports read chronologically.
	idx := make([]int, len(observed))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return observed[idx[a]] < observed[idx[b]] })
	sl, se, so := make([]string, len(idx)), make([]timing.Cycle, len(idx)), make([]timing.Cycle, len(idx))
	for i, k := range idx {
		sl[i], se[i], so[i] = labels[k], expectedIdeal[k], observed[k]
	}
	return trace.Measure(sl, se, so)
}

func findExecution(exec []controller.Execution, key [2]int, want timing.Cycle) (timing.Cycle, bool) {
	for _, e := range exec {
		if e.Task == key[0] && e.Job == key[1] && e.Start == want {
			return e.Start, true
		}
	}
	return 0, false
}

func fmtFault(f controller.Fault) string {
	return fmt.Sprintf("task %d job %d at cycle %d", f.Task, f.Job, f.At)
}

// Metrics returns the offline schedule's Ψ and Υ under the linear curve.
func (d *Deployment) Metrics() (psi, upsilon float64) {
	return d.Schedules.Metrics(quality.Linear{})
}
