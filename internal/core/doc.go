// Package core integrates the paper's contribution end to end: it takes a
// timed I/O task set, produces an offline schedule with one of the
// scheduling methods (Section III), deploys the schedule and the task
// programs onto the proposed I/O controller (Section IV), runs the
// cycle-accurate simulation, and verifies that the hardware executed every
// job exactly at its scheduled instant.
//
// The package is the programmatic counterpart of the paper's three-phase
// routine — pre-loading, offline scheduling, timed execution — and is what
// the examples and the full-system experiments build on.
package core
