package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/gen"
	"repro/internal/sched/ga"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

const ms = timing.Millisecond

// pulseSystem builds a two-task, one-device system whose programs raise
// and lower distinct pins.
func pulseSystem(t *testing.T) (*System, *device.GPIOBank) {
	t.Helper()
	tasks := []taskmodel.Task{
		{Name: "valve", C: 1 * ms, T: 40 * ms, D: 40 * ms, Delta: 10 * ms, Theta: 10 * ms},
		{Name: "spark", C: 1 * ms, T: 80 * ms, D: 80 * ms, Delta: 30 * ms, Theta: 20 * ms},
	}
	ts, err := taskmodel.NewTaskSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	bank, err := device.NewGPIOBank("bank", 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1 ms at 100 MHz = 100000 cycles; the pulse fits the budget.
	sys := &System{
		Tasks: ts,
		Programs: map[int]controller.Program{
			0: {{Op: controller.OpSetPin, Pin: 0}, {Op: controller.OpWait, Arg: 99_000}, {Op: controller.OpClearPin, Pin: 0}},
			1: {{Op: controller.OpTogglePin, Pin: 1}},
		},
		Executors: map[taskmodel.DeviceID]controller.Executor{
			0: controller.GPIOExecutor{Bank: bank},
		},
	}
	return sys, bank
}

func TestNewScheduler(t *testing.T) {
	for _, m := range []Method{MethodStatic, MethodGA, MethodFPSOffline, MethodGPIOCP} {
		s, err := NewScheduler(m, nil)
		if err != nil || s == nil {
			t.Errorf("method %q: %v", m, err)
		}
	}
	if _, err := NewScheduler("nonsense", nil); err == nil {
		t.Error("unknown method accepted")
	}
	opts := ga.DefaultOptions()
	opts.Seed = 42
	s, err := NewScheduler(MethodGA, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ga" {
		t.Error("GA scheduler name")
	}
}

func TestValidateCatchesMistakes(t *testing.T) {
	sys, _ := pulseSystem(t)
	if err := sys.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	// Missing program.
	progs := sys.Programs
	sys.Programs = map[int]controller.Program{0: progs[0]}
	if err := sys.Validate(); err == nil || !strings.Contains(err.Error(), "no program") {
		t.Errorf("missing program: %v", err)
	}
	sys.Programs = progs
	// Over-budget program.
	sys.Programs[0] = controller.Program{{Op: controller.OpWait, Arg: 200_000}}
	if err := sys.Validate(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("over budget: %v", err)
	}
	sys.Programs[0] = controller.Program{{Op: controller.OpTogglePin, Pin: 0}}
	// Missing executor.
	ex := sys.Executors
	sys.Executors = map[taskmodel.DeviceID]controller.Executor{}
	if err := sys.Validate(); err == nil || !strings.Contains(err.Error(), "executor") {
		t.Errorf("missing executor: %v", err)
	}
	sys.Executors = ex
	// No tasks.
	empty := &System{}
	if err := empty.Validate(); err == nil {
		t.Error("empty system accepted")
	}
}

func TestRunStaticEndToEnd(t *testing.T) {
	sys, bank := pulseSystem(t)
	scheduler, _ := NewScheduler(MethodStatic, nil)
	d, err := sys.Run(scheduler, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// Conflict-free system: everything exact, at both the schedule and the
	// hardware level.
	if report.ExactFraction() != 1 {
		t.Errorf("hardware exact fraction = %g, want 1", report.ExactFraction())
	}
	psi, ups := d.Metrics()
	if psi != 1 || ups != 1 {
		t.Errorf("metrics = %g, %g", psi, ups)
	}
	// The pin actually pulsed: 2 tasks × 2 hyper-periods of 80ms.
	// valve (T=40) runs 4 times → 8 edges; spark toggles 2 times.
	if edges := bank.EdgesFor(0); len(edges) != 8 {
		t.Errorf("valve edges = %d, want 8", len(edges))
	}
	if edges := bank.EdgesFor(1); len(edges) != 2 {
		t.Errorf("spark edges = %d, want 2", len(edges))
	}
	// First valve rising edge exactly at δ = 10ms = 1,000,000 cycles.
	if e := bank.EdgesFor(0)[0]; e.At != 1_000_000 {
		t.Errorf("first valve edge at %d, want 1000000", e.At)
	}
}

func TestRunAllMethodsVerify(t *testing.T) {
	for _, m := range []Method{MethodStatic, MethodGA, MethodFPSOffline, MethodGPIOCP} {
		sys, _ := pulseSystem(t)
		scheduler, err := NewScheduler(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.Run(scheduler, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		d.Simulate()
		if _, err := d.Verify(); err != nil {
			t.Errorf("%s: verification failed: %v", m, err)
		}
	}
}

func TestFaultInjectionMissingRequest(t *testing.T) {
	sys, bank := pulseSystem(t)
	scheduler, _ := NewScheduler(MethodStatic, nil)
	d, err := sys.Run(scheduler, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drop task 0's request before simulating: the fault-recovery unit
	// must skip its jobs and keep task 1 exactly on time.
	d.Ctrl.Processors[0].DisableTask(0)
	d.Simulate()
	if _, err := d.Verify(); err == nil {
		t.Fatal("verification should fail with faults recorded")
	}
	faults := d.Ctrl.Processors[0].Faults()
	if len(faults) == 0 {
		t.Fatal("no faults recorded")
	}
	for _, f := range faults {
		if f.Kind != controller.FaultMissingRequest || f.Task != 0 {
			t.Errorf("unexpected fault %v task %d", f.Kind, f.Task)
		}
	}
	if len(bank.EdgesFor(0)) != 0 {
		t.Error("skipped task touched its pin")
	}
	if len(bank.EdgesFor(1)) != 1 {
		t.Error("surviving task disturbed")
	}
}

func TestRunPaperScaleSystemOnHardware(t *testing.T) {
	// A generated paper-style system deployed end to end: the hardware
	// must reproduce the offline schedule cycle-exactly.
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(3)), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bank, _ := device.NewGPIOBank("bank", 16)
	// Give every task a minimal program: C budgets are huge (ms scale), a
	// single toggle always fits. Use a 10 MHz clock to keep cycle counts
	// small.
	progs := map[int]controller.Program{}
	for i := range ts.Tasks {
		progs[ts.Tasks[i].ID] = controller.Program{
			{Op: controller.OpTogglePin, Pin: device.Pin(i % 16)},
		}
	}
	sys := &System{
		Tasks:    ts,
		Programs: progs,
		Executors: map[taskmodel.DeviceID]controller.Executor{
			0: controller.GPIOExecutor{Bank: bank},
		},
		Clock: timing.Clock10MHz,
	}
	scheduler, _ := NewScheduler(MethodStatic, nil)
	d, err := sys.Run(scheduler, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	psi, _ := d.Metrics()
	// Hardware-level exactness must equal the offline schedule's Ψ: the
	// controller adds no jitter.
	if hw := report.ExactFraction(); hw != psi {
		t.Errorf("hardware Ψ = %g, offline Ψ = %g", hw, psi)
	}
}

func TestRunRejectsBadPeriods(t *testing.T) {
	sys, _ := pulseSystem(t)
	scheduler, _ := NewScheduler(MethodStatic, nil)
	if _, err := sys.Run(scheduler, 0); err == nil {
		t.Error("zero periods accepted")
	}
}

// Section III-C: offset task sets flow through the whole pipeline — the
// schedule horizon widens to two hyper-periods and the controller still
// executes everything exactly.
func TestRunWithReleaseOffsets(t *testing.T) {
	tasks := []taskmodel.Task{
		{Name: "a", C: 1 * ms, T: 20 * ms, D: 20 * ms, Delta: 8 * ms, Theta: 5 * ms},
		{Name: "b", C: 1 * ms, T: 20 * ms, D: 20 * ms, Offset: 10 * ms, Delta: 8 * ms, Theta: 5 * ms},
	}
	ts, err := taskmodel.NewTaskSet(tasks)
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	if ts.ScheduleHorizon() != 2*ts.Hyperperiod() {
		t.Fatalf("horizon = %v", ts.ScheduleHorizon())
	}
	bank, _ := device.NewGPIOBank("bank", 2)
	sys := &System{
		Tasks: ts,
		Programs: map[int]controller.Program{
			0: {{Op: controller.OpTogglePin, Pin: 0}},
			1: {{Op: controller.OpTogglePin, Pin: 1}},
		},
		Executors: map[taskmodel.DeviceID]controller.Executor{
			0: controller.GPIOExecutor{Bank: bank},
		},
		Clock: timing.Clock10MHz,
	}
	scheduler, _ := NewScheduler(MethodStatic, nil)
	d, err := sys.Run(scheduler, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Simulate()
	report, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// With staggered phases the two tasks never conflict: all exact.
	if report.ExactFraction() != 1 {
		t.Errorf("offset pipeline exact = %g", report.ExactFraction())
	}
	// Task b's first edge lands at offset + δ = 18 ms.
	es := bank.EdgesFor(1)
	if len(es) == 0 || es[0].At != timing.Clock10MHz.ToCycles(18*ms) {
		t.Errorf("task b first edge = %v", es)
	}
}
