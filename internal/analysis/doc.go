// Package analysis implements the I/O-aware end-to-end schedulability test
// sketched in Section III-C: because the offline schedule fixes the actual
// finish time of every I/O task, a higher-level NoC analysis (the paper
// cites Indrusiak's end-to-end tests for priority-preemptive wormhole
// NoCs) can integrate that value and bound a complete CPU → controller →
// device → CPU transaction.
//
// The NoC part follows the classic flow-level response-time analysis for
// priority-preemptive wormhole switching: a periodic packet flow suffers
// direct interference from every higher-priority flow sharing at least one
// link of its route, iterated to a fixed point. The I/O part takes the
// task's worst release-relative completion bound straight from the
// offline schedule (sched.Schedule.ResponseBound). The total bound is
//
//	R(end-to-end) = R(request flow) + finish(I/O task) + R(response flow)
//
// and the transaction is schedulable when the bound meets its deadline.
package analysis
