package analysis

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Link is one directed mesh link, identified by its endpoints.
type Link struct {
	From, To noc.Coord
}

// Flow is a periodic packet flow on the NoC.
type Flow struct {
	// Name labels the flow in reports.
	Name string
	// Priority wins link arbitration; larger is stronger.
	Priority int
	// Period is the minimum inter-release time of the flow's packets.
	Period timing.Time
	// BasicLatency is the zero-load traversal time of one packet.
	BasicLatency timing.Time
	// Jitter is the release jitter of the flow.
	Jitter timing.Time
	// Route is the ordered set of links the packets traverse.
	Route []Link
}

// XYRoute returns the links of the dimension-ordered (XY) route between
// two mesh nodes — the routing the noc package implements.
func XYRoute(src, dst noc.Coord) []Link {
	var links []Link
	at := src
	for at.X != dst.X {
		next := at
		if dst.X > at.X {
			next.X++
		} else {
			next.X--
		}
		links = append(links, Link{From: at, To: next})
		at = next
	}
	for at.Y != dst.Y {
		next := at
		if dst.Y > at.Y {
			next.Y++
		} else {
			next.Y--
		}
		links = append(links, Link{From: at, To: next})
		at = next
	}
	return links
}

// SharesLink reports whether two routes contend for at least one link.
func SharesLink(a, b []Link) bool {
	seen := make(map[Link]bool, len(a))
	for _, l := range a {
		seen[l] = true
	}
	for _, l := range b {
		if seen[l] {
			return true
		}
	}
	return false
}

// FlowResponse bounds the worst-case network latency of flows[i] under
// direct interference from every higher-priority flow sharing a link
// (the priority-preemptive wormhole analysis). It returns the bound and
// whether the fixed point converged within the flow's period — a flow
// whose response exceeds its period is reported unschedulable without a
// busy-period extension, which keeps the test conservative.
func FlowResponse(flows []Flow, i int) (timing.Time, bool) {
	f := &flows[i]
	if f.Period <= 0 || f.BasicLatency <= 0 {
		return 0, false
	}
	var interferers []*Flow
	for k := range flows {
		if k == i {
			continue
		}
		g := &flows[k]
		if g.Priority > f.Priority && SharesLink(f.Route, g.Route) {
			interferers = append(interferers, g)
		}
	}
	r := f.BasicLatency
	for iter := 0; iter < 1_000_000; iter++ {
		next := f.BasicLatency
		for _, g := range interferers {
			next += ceilDiv(r+g.Jitter, g.Period) * g.BasicLatency
		}
		if next > f.Period {
			return next, false
		}
		if next == r {
			return r, true
		}
		r = next
	}
	return r, false
}

func ceilDiv(a, b timing.Time) timing.Time {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Transaction is one end-to-end I/O operation: a request flow from the
// application CPU to the controller, the scheduled I/O task on the device,
// and a response flow back.
type Transaction struct {
	// Name labels the transaction.
	Name string
	// Request and Response index into the flow set handed to Analyze.
	// Response may be -1 for fire-and-forget writes.
	Request, Response int
	// Task is the I/O task whose offline finish time bounds the device
	// stage.
	Task int
	// Device is the partition the task was scheduled on.
	Device int
	// Deadline is the end-to-end deadline of the transaction.
	Deadline timing.Time
}

// StageBounds decomposes a transaction's response-time bound.
type StageBounds struct {
	Transaction string
	// RequestNet and ResponseNet are the NoC flow bounds (response 0 if
	// fire-and-forget).
	RequestNet  timing.Time
	ResponseNet timing.Time
	// IOFinish is the task's worst finish time from the offline schedule,
	// relative to its release.
	IOFinish timing.Time
	// Total = RequestNet + IOFinish + ResponseNet.
	Total timing.Time
	// Schedulable reports Total ≤ Deadline with all stages convergent.
	Schedulable bool
}

// Analyze runs the complete I/O-aware end-to-end test: NoC bounds for the
// request/response flows plus the offline schedule's finish time for the
// device stage. schedules must contain the partition the task was
// scheduled on.
func Analyze(tx Transaction, flows []Flow, schedules sched.DeviceSchedules) (StageBounds, error) {
	out := StageBounds{Transaction: tx.Name}
	if tx.Request < 0 || tx.Request >= len(flows) {
		return out, fmt.Errorf("analysis: transaction %q request flow %d out of range", tx.Name, tx.Request)
	}
	reqR, reqOK := FlowResponse(flows, tx.Request)
	out.RequestNet = reqR
	respOK := true
	if tx.Response >= 0 {
		if tx.Response >= len(flows) {
			return out, fmt.Errorf("analysis: transaction %q response flow %d out of range", tx.Name, tx.Response)
		}
		var respR timing.Time
		respR, respOK = FlowResponse(flows, tx.Response)
		out.ResponseNet = respR
	}
	s, ok := schedules[taskmodel.DeviceID(tx.Device)]
	if !ok {
		return out, fmt.Errorf("analysis: transaction %q: no schedule for device %d", tx.Name, tx.Device)
	}
	finish, found := s.ResponseBound(tx.Task)
	if !found {
		return out, fmt.Errorf("analysis: transaction %q: task %d not in device %d schedule", tx.Name, tx.Task, tx.Device)
	}
	out.IOFinish = finish
	out.Total = out.RequestNet + out.IOFinish + out.ResponseNet
	out.Schedulable = reqOK && respOK && out.Total <= tx.Deadline
	return out, nil
}
