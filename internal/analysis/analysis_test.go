package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

const ms = timing.Millisecond

func TestXYRoute(t *testing.T) {
	links := XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 2, Y: 1})
	// X first: (0,0)->(1,0)->(2,0), then Y: (2,0)->(2,1).
	want := []Link{
		{From: noc.Coord{X: 0, Y: 0}, To: noc.Coord{X: 1, Y: 0}},
		{From: noc.Coord{X: 1, Y: 0}, To: noc.Coord{X: 2, Y: 0}},
		{From: noc.Coord{X: 2, Y: 0}, To: noc.Coord{X: 2, Y: 1}},
	}
	if len(links) != len(want) {
		t.Fatalf("route = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("route = %v, want %v", links, want)
		}
	}
	// Degenerate route.
	if len(XYRoute(noc.Coord{X: 1, Y: 1}, noc.Coord{X: 1, Y: 1})) != 0 {
		t.Error("self route should be empty")
	}
	// Westward/southward.
	back := XYRoute(noc.Coord{X: 2, Y: 1}, noc.Coord{X: 0, Y: 0})
	if len(back) != 3 {
		t.Errorf("reverse route = %v", back)
	}
}

func TestSharesLink(t *testing.T) {
	a := XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 0})
	b := XYRoute(noc.Coord{X: 1, Y: 0}, noc.Coord{X: 2, Y: 0})
	if !SharesLink(a, b) {
		t.Error("overlapping east routes should share a link")
	}
	// Opposite directions use different directed links.
	c := XYRoute(noc.Coord{X: 3, Y: 0}, noc.Coord{X: 0, Y: 0})
	if SharesLink(a, c) {
		t.Error("opposite directions should not share directed links")
	}
	if SharesLink(nil, a) {
		t.Error("empty route shares nothing")
	}
}

func TestFlowResponseNoInterference(t *testing.T) {
	flows := []Flow{{
		Name: "solo", Priority: 1, Period: 100 * ms, BasicLatency: 2 * ms,
		Route: XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 3}),
	}}
	r, ok := FlowResponse(flows, 0)
	if !ok || r != 2*ms {
		t.Fatalf("solo flow R = %v ok=%v, want basic latency", r, ok)
	}
}

func TestFlowResponseDirectInterference(t *testing.T) {
	shared := XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 0})
	flows := []Flow{
		{Name: "victim", Priority: 1, Period: 100 * ms, BasicLatency: 2 * ms, Route: shared},
		{Name: "hp", Priority: 2, Period: 10 * ms, BasicLatency: 1 * ms, Route: shared},
	}
	r, ok := FlowResponse(flows, 0)
	if !ok {
		t.Fatal("should converge")
	}
	// w = 2 + ceil(w/10)*1: w=3 → ceil(3/10)=1 → 3. Fixed point 3ms.
	if r != 3*ms {
		t.Errorf("R = %v, want 3ms", r)
	}
	// The high-priority flow is unaffected.
	rHP, ok := FlowResponse(flows, 1)
	if !ok || rHP != 1*ms {
		t.Errorf("hp R = %v", rHP)
	}
}

func TestFlowResponseDisjointRoutesNoInterference(t *testing.T) {
	flows := []Flow{
		{Name: "a", Priority: 1, Period: 50 * ms, BasicLatency: 2 * ms,
			Route: XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 0})},
		{Name: "b", Priority: 9, Period: 5 * ms, BasicLatency: 4 * ms,
			Route: XYRoute(noc.Coord{X: 0, Y: 1}, noc.Coord{X: 3, Y: 1})},
	}
	r, ok := FlowResponse(flows, 0)
	if !ok || r != 2*ms {
		t.Errorf("disjoint routes: R = %v", r)
	}
}

func TestFlowResponseOverload(t *testing.T) {
	shared := XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 1, Y: 0})
	flows := []Flow{
		{Name: "victim", Priority: 1, Period: 10 * ms, BasicLatency: 5 * ms, Route: shared},
		{Name: "hog", Priority: 2, Period: 6 * ms, BasicLatency: 6 * ms, Route: shared},
	}
	if _, ok := FlowResponse(flows, 0); ok {
		t.Fatal("overloaded link should be unschedulable")
	}
	// Invalid flows are rejected.
	if _, ok := FlowResponse([]Flow{{Period: 0, BasicLatency: 1}}, 0); ok {
		t.Error("zero period accepted")
	}
}

// buildSchedule creates a one-task schedule with a known finish time.
func buildSchedule(t *testing.T, finish timing.Time) sched.DeviceSchedules {
	t.Helper()
	j := taskmodel.Job{
		ID: taskmodel.JobID{Task: 0, J: 0}, Release: 0, Deadline: 100 * ms,
		Ideal: finish - 1*ms, C: 1 * ms, Vmax: 2, Vmin: 1,
	}
	s, err := sched.New([]taskmodel.Job{j}, quality.StartTimes{j.ID: finish - 1*ms})
	if err != nil {
		t.Fatal(err)
	}
	return sched.DeviceSchedules{0: s}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	schedules := buildSchedule(t, 10*ms) // finish time = 10ms after release
	route := XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 3})
	flows := []Flow{
		{Name: "req", Priority: 2, Period: 50 * ms, BasicLatency: 1 * ms, Route: route},
		{Name: "resp", Priority: 2, Period: 50 * ms, BasicLatency: 1 * ms,
			Route: XYRoute(noc.Coord{X: 3, Y: 3}, noc.Coord{X: 0, Y: 0})},
	}
	tx := Transaction{
		Name: "read-sensor", Request: 0, Response: 1,
		Task: 0, Device: 0, Deadline: 20 * ms,
	}
	b, err := Analyze(tx, flows, schedules)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 1*ms+10*ms+1*ms {
		t.Errorf("total = %v, want 12ms", b.Total)
	}
	if !b.Schedulable {
		t.Error("12ms ≤ 20ms should be schedulable")
	}
	// Tighten the deadline below the bound.
	tx.Deadline = 11 * ms
	b, _ = Analyze(tx, flows, schedules)
	if b.Schedulable {
		t.Error("12ms > 11ms should fail")
	}
	// Fire-and-forget write: no response stage.
	tx.Response = -1
	tx.Deadline = 11 * ms
	b, err = Analyze(tx, flows, schedules)
	if err != nil {
		t.Fatal(err)
	}
	if b.ResponseNet != 0 || !b.Schedulable {
		t.Errorf("write-only bounds = %+v", b)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	schedules := buildSchedule(t, 10*ms)
	flows := []Flow{{Name: "req", Priority: 1, Period: 50 * ms, BasicLatency: 1 * ms,
		Route: XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 1, Y: 0})}}
	if _, err := Analyze(Transaction{Request: 5}, flows, schedules); err == nil {
		t.Error("bad request index accepted")
	}
	if _, err := Analyze(Transaction{Request: 0, Response: 7}, flows, schedules); err == nil {
		t.Error("bad response index accepted")
	}
	if _, err := Analyze(Transaction{Request: 0, Response: -1, Device: 9}, flows, schedules); err == nil {
		t.Error("missing device accepted")
	}
	if _, err := Analyze(Transaction{Request: 0, Response: -1, Device: 0, Task: 42}, flows, schedules); err == nil {
		t.Error("missing task accepted")
	}
}

// Property: XY routes have exactly HopDistance links, and a flow's response
// bound never decreases when an interfering flow is added.
func TestAnalysisProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := noc.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
		dst := noc.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
		route := XYRoute(src, dst)
		if len(route) != noc.HopDistance(src, dst) {
			return false
		}
		flows := []Flow{{
			Name: "victim", Priority: 1,
			Period:       timing.Time(rng.Intn(50)+10) * ms,
			BasicLatency: timing.Time(rng.Intn(3)+1) * ms,
			Route:        XYRoute(noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 2}),
		}}
		r0, ok0 := FlowResponse(flows, 0)
		if !ok0 {
			return false // solo flow always converges (basic ≤ period here)
		}
		flows = append(flows, Flow{
			Name: "hp", Priority: 2,
			Period:       timing.Time(rng.Intn(40)+20) * ms,
			BasicLatency: timing.Time(rng.Intn(2)+1) * ms,
			Route:        XYRoute(noc.Coord{X: rng.Intn(4), Y: 0}, noc.Coord{X: 3, Y: rng.Intn(3)}),
		})
		r1, _ := FlowResponse(flows, 0)
		return r1 >= r0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
