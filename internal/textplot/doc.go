// Package textplot renders the experiment results as ASCII charts so the
// CLI can show Figures 5–7 directly in a terminal.
package textplot
