package textplot

import (
	"fmt"
	"strings"
)

// Series is one named curve over shared x positions.
type Series struct {
	Name   string
	Values []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart draws the series over the x labels into a fixed-size ASCII grid.
// y is scaled to [ymin, ymax]. Series longer than xlabels are truncated;
// shorter series simply stop early.
func Chart(title string, xlabels []string, series []Series, ymin, ymax float64, height int) string {
	if height < 2 {
		height = 2
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	cols := len(xlabels)
	colW := 6
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colW))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if i >= cols {
				break
			}
			frac := (v - ymin) / (ymax - ymin)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row := int(frac*float64(height-1) + 0.5)
			r := height - 1 - row
			c := i*colW + colW/2
			if grid[r][c] == ' ' {
				grid[r][c] = m
			} else {
				// Collision: stack a second marker next to the first.
				for off := 1; off < colW/2; off++ {
					if grid[r][c+off] == ' ' {
						grid[r][c+off] = m
						break
					}
				}
			}
		}
	}
	for r := range grid {
		frac := float64(height-1-r) / float64(height-1)
		y := ymin + frac*(ymax-ymin)
		fmt.Fprintf(&b, "%6.2f |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", cols*colW))
	fmt.Fprintf(&b, "        ")
	for _, xl := range xlabels {
		fmt.Fprintf(&b, "%-*s", colW, center(xl, colW))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "        legend: ")
	for si, s := range series {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// Histogram renders labelled counts as horizontal bars scaled to width
// characters. Labels are right-aligned, each bar is followed by its
// count, and a zero-count bucket draws no bar. All-zero (or empty)
// counts render bars of zero length rather than dividing by zero.
func Histogram(title string, labels []string, counts []int64, width int) string {
	if width < 1 {
		width = 1
	}
	n := len(labels)
	if len(counts) < n {
		n = len(counts)
	}
	var max int64
	for i := 0; i < n; i++ {
		if counts[i] > max {
			max = counts[i]
		}
	}
	labelW := 0
	for i := 0; i < n; i++ {
		if w := len([]rune(labels[i])); w > labelW {
			labelW = w
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i := 0; i < n; i++ {
		bar := 0
		if max > 0 && counts[i] > 0 {
			bar = int(float64(counts[i]) / float64(max) * float64(width))
			// A non-empty bucket always shows at least one mark.
			if bar == 0 {
				bar = 1
			}
		}
		pad := labelW - len([]rune(labels[i]))
		fmt.Fprintf(&b, "%s%s |%s %d\n", strings.Repeat(" ", pad), labels[i],
			strings.Repeat("#", bar), counts[i])
	}
	return b.String()
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
