package textplot

import (
	"strings"
	"testing"
)

func TestChartContainsMarkersAndLegend(t *testing.T) {
	out := Chart("Fig X", []string{"0.2", "0.3", "0.4"},
		[]Series{
			{Name: "a", Values: []float64{0.1, 0.5, 1.0}},
			{Name: "b", Values: []float64{1.0, 0.5, 0.1}},
		}, 0, 1, 8)
	if !strings.Contains(out, "Fig X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("missing legend: %s", out)
	}
	if !strings.Contains(out, "0.3") {
		t.Error("missing x label")
	}
	if strings.Count(out, "*") < 3 {
		t.Errorf("series a markers missing:\n%s", out)
	}
}

func TestChartClampsOutOfRange(t *testing.T) {
	out := Chart("t", []string{"x"}, []Series{{Name: "s", Values: []float64{99}}}, 0, 1, 4)
	if !strings.Contains(out, "*") {
		t.Error("clamped value not drawn")
	}
	// Degenerate y range must not panic.
	_ = Chart("t", []string{"x"}, []Series{{Name: "s", Values: []float64{0.5}}}, 1, 1, 4)
	// Tiny height is raised to a drawable minimum.
	_ = Chart("t", []string{"x"}, []Series{{Name: "s", Values: []float64{0.5}}}, 0, 1, 1)
}

func TestChartCollisionStacksMarkers(t *testing.T) {
	out := Chart("t", []string{"x"}, []Series{
		{Name: "a", Values: []float64{0.5}},
		{Name: "b", Values: []float64{0.5}},
	}, 0, 1, 5)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("collision lost a marker:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{
		{"long-name-here", "1"},
		{"b", "234"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows equal width for the first column.
	if !strings.HasPrefix(lines[2], "long-name-here") {
		t.Errorf("row 1 = %q", lines[2])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestCenter(t *testing.T) {
	if center("ab", 6) != "  ab" {
		t.Errorf("center = %q", center("ab", 6))
	}
	if center("abcdefgh", 4) != "abcd" {
		t.Errorf("overlong center = %q", center("abcdefgh", 4))
	}
}

func TestHistogramBarsScaleToMax(t *testing.T) {
	out := Histogram("jitter", []string{"a", "bb", "≤1µs"}, []int64{4, 0, 2}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "jitter" {
		t.Fatalf("unexpected layout:\n%s", out)
	}
	// Labels right-align on rune width (the ≤/µ multi-byte labels must
	// not skew the column), the max bucket fills the width, a zero bucket
	// draws no bar, and every line ends with its count.
	if lines[1] != "   a |######## 4" {
		t.Errorf("max bucket line = %q", lines[1])
	}
	if lines[2] != "  bb | 0" {
		t.Errorf("zero bucket line = %q", lines[2])
	}
	if lines[3] != "≤1µs |#### 2" {
		t.Errorf("half bucket line = %q", lines[3])
	}
}

func TestHistogramNonZeroBucketAlwaysMarks(t *testing.T) {
	// 1-of-1000 rounds to zero width but must still draw one mark: an
	// outlier bucket that silently vanishes would hide exactly the events
	// the histogram exists to surface.
	out := Histogram("t", []string{"big", "tiny"}, []int64{1000, 1}, 10)
	if !strings.Contains(out, "tiny |# 1") {
		t.Errorf("tiny bucket lost its mark:\n%s", out)
	}
}

func TestHistogramDegenerateInputs(t *testing.T) {
	if out := Histogram("empty", nil, nil, 40); out != "empty\n" {
		t.Errorf("empty histogram = %q", out)
	}
	// All-zero counts must not divide by zero.
	out := Histogram("zeros", []string{"a", "b"}, []int64{0, 0}, 40)
	if !strings.Contains(out, "a | 0") || !strings.Contains(out, "b | 0") {
		t.Errorf("all-zero histogram = %q", out)
	}
	// Mismatched lengths render the common prefix.
	out = Histogram("mismatch", []string{"a", "b"}, []int64{5}, 4)
	if !strings.Contains(out, "a |#### 5") || strings.Contains(out, "b |") {
		t.Errorf("mismatched histogram = %q", out)
	}
}
