package experiment

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sched/staticsched"
	"repro/internal/stats"
)

// MultiDevicePoint summarises one device-count configuration.
type MultiDevicePoint struct {
	Devices     int
	Schedulable stats.Ratio
	MeanPsi     float64
	MeanUpsilon float64
}

// MultiDevice studies the fully-partitioned controller's headline scaling
// property: at a fixed total utilisation, spreading the I/O tasks across
// more devices (one controller processor each, Section III's "global I/O
// controller with a fully-partitioned I/O scheduling model") removes
// inter-task contention, so the fraction of exactly timing-accurate jobs
// climbs towards 1. The static scheduler is used; each partition is
// scheduled independently.
func MultiDevice(cfg Config, u float64, deviceCounts []int) ([]MultiDevicePoint, error) {
	if err := multiDeviceCheck(deviceCounts); err != nil {
		return nil, err
	}
	outcomes, err := gridMap(cfg.Parallelism, len(deviceCounts), cfg.Systems,
		func(di, s int) (qOutcome, error) { return multiDeviceCell(cfg, u, deviceCounts, di, s) })
	if err != nil {
		return nil, err
	}
	return multiDeviceAggregate(cfg, deviceCounts, outcomes.at, nil), nil
}

// multiDeviceCheck rejects invalid device-count axes.
func multiDeviceCheck(deviceCounts []int) error {
	for _, devs := range deviceCounts {
		if devs < 1 {
			return fmt.Errorf("experiment: device count %d", devs)
		}
	}
	return nil
}

// multiDeviceCell evaluates one (device count, system) cell with the
// static scheduler; the outcome doubles as the shard-cell payload.
func multiDeviceCell(cfg Config, u float64, deviceCounts []int, di, s int) (qOutcome, error) {
	devs := deviceCounts[di]
	gen := cfg.Gen
	gen.Devices = devs
	ts, err := gen.System(exec.RNG(cfg.Seed, streamMultiDevice, int64(di), int64(s), subGen), u)
	if err != nil {
		return qOutcome{}, fmt.Errorf("multidevice %d devices system %d: %w", devs, s, err)
	}
	ds, err := sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
	if err != nil {
		return qOutcome{}, nil
	}
	psi, ups := ds.Metrics(cfg.curve())
	return qOutcome{Psi: psi, Ups: ups, OK: true}, nil
}

// multiDeviceAggregate folds an outcome grid into the study points in
// grid order — shared by the in-process runner and the shard merge path.
// A nil has aggregates the complete grid; a partial cover's predicate
// restricts each device-count row to its present systems.
func multiDeviceAggregate(cfg Config, deviceCounts []int, at func(o, i int) qOutcome, has func(o, i int) bool) []MultiDevicePoint {
	var out []MultiDevicePoint
	for di, devs := range deviceCounts {
		point := MultiDevicePoint{Devices: devs}
		var psis, upss []float64
		for s := 0; s < cfg.Systems; s++ {
			if has != nil && !has(di, s) {
				continue
			}
			o := at(di, s)
			point.Schedulable.Trials++
			if !o.OK {
				continue
			}
			point.Schedulable.Successes++
			psis = append(psis, o.Psi)
			upss = append(upss, o.Ups)
		}
		point.MeanPsi = stats.Mean(psis)
		point.MeanUpsilon = stats.Mean(upss)
		out = append(out, point)
	}
	return out
}

// MultiDeviceRows renders the study as a text table.
func MultiDeviceRows(points []MultiDevicePoint) ([]string, [][]string) {
	headers := []string{"devices", "schedulable", "mean Psi", "mean Upsilon"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%.3f", p.Schedulable.Value()),
			fmt.Sprintf("%.3f", p.MeanPsi),
			fmt.Sprintf("%.3f", p.MeanUpsilon),
		})
	}
	return headers, rows
}
