package experiment

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sched/staticsched"
	"repro/internal/stats"
)

// MultiDevicePoint summarises one device-count configuration.
type MultiDevicePoint struct {
	Devices     int
	Schedulable stats.Ratio
	MeanPsi     float64
	MeanUpsilon float64
}

// MultiDevice studies the fully-partitioned controller's headline scaling
// property: at a fixed total utilisation, spreading the I/O tasks across
// more devices (one controller processor each, Section III's "global I/O
// controller with a fully-partitioned I/O scheduling model") removes
// inter-task contention, so the fraction of exactly timing-accurate jobs
// climbs towards 1. The static scheduler is used; each partition is
// scheduled independently.
func MultiDevice(cfg Config, u float64, deviceCounts []int) ([]MultiDevicePoint, error) {
	for _, devs := range deviceCounts {
		if devs < 1 {
			return nil, fmt.Errorf("experiment: device count %d", devs)
		}
	}
	outcomes, err := gridMap(cfg.Parallelism, len(deviceCounts), cfg.Systems,
		func(di, s int) (qOutcome, error) {
			devs := deviceCounts[di]
			gen := cfg.Gen
			gen.Devices = devs
			ts, err := gen.System(exec.RNG(cfg.Seed, streamMultiDevice, int64(di), int64(s), subGen), u)
			if err != nil {
				return qOutcome{}, fmt.Errorf("multidevice %d devices system %d: %w", devs, s, err)
			}
			ds, err := sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
			if err != nil {
				return qOutcome{}, nil
			}
			psi, ups := ds.Metrics(cfg.curve())
			return qOutcome{psi: psi, ups: ups, ok: true}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []MultiDevicePoint
	for di, devs := range deviceCounts {
		point := MultiDevicePoint{Devices: devs}
		var psis, upss []float64
		for s := 0; s < cfg.Systems; s++ {
			o := outcomes.at(di, s)
			point.Schedulable.Trials++
			if !o.ok {
				continue
			}
			point.Schedulable.Successes++
			psis = append(psis, o.psi)
			upss = append(upss, o.ups)
		}
		point.MeanPsi = stats.Mean(psis)
		point.MeanUpsilon = stats.Mean(upss)
		out = append(out, point)
	}
	return out, nil
}

// MultiDeviceRows renders the study as a text table.
func MultiDeviceRows(points []MultiDevicePoint) ([]string, [][]string) {
	headers := []string{"devices", "schedulable", "mean Psi", "mean Upsilon"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%.3f", p.Schedulable.Value()),
			fmt.Sprintf("%.3f", p.MeanPsi),
			fmt.Sprintf("%.3f", p.MeanUpsilon),
		})
	}
	return headers, rows
}
