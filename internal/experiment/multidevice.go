package experiment

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/stats"
)

// MultiDevicePoint summarises one device-count configuration.
type MultiDevicePoint struct {
	Devices     int
	Schedulable stats.Ratio
	MeanPsi     float64
	MeanUpsilon float64
}

// MultiDevice studies the fully-partitioned controller's headline scaling
// property: at a fixed total utilisation, spreading the I/O tasks across
// more devices (one controller processor each, Section III's "global I/O
// controller with a fully-partitioned I/O scheduling model") removes
// inter-task contention, so the fraction of exactly timing-accurate jobs
// climbs towards 1. The static scheduler is used; each partition is
// scheduled independently. A zero u or empty deviceCounts selects the
// defaults (U=0.8 over 1,2,4,8 devices, matching ShardParams
// semantics).
//
// Deprecated: use Run(ExpMultiDevice, …); this forwards to it.
func MultiDevice(cfg Config, u float64, deviceCounts []int) ([]MultiDevicePoint, error) {
	rc := contextFor(cfg)
	rc.Params.MultiDeviceU = u
	rc.Params.MultiDeviceCounts = deviceCounts
	res, err := Run(ExpMultiDevice, rc)
	if err != nil {
		return nil, err
	}
	return res.(MultiDeviceResult), nil
}

// MultiDeviceResult is the scaling study's registry result: one row per
// device count.
type MultiDeviceResult []MultiDevicePoint

// Rows renders the study as a text table.
func (ps MultiDeviceResult) Rows() ([]string, [][]string) { return MultiDeviceRows(ps) }

// multiDeviceExperiment is the partitioned scaling study as a registry
// entry.
type multiDeviceExperiment struct{}

func (multiDeviceExperiment) Name() string { return ExpMultiDevice }
func (multiDeviceExperiment) Describe() string {
	return "Partitioned scaling: static scheduler quality vs device count"
}
func (multiDeviceExperiment) CellKey() string { return ExpMultiDevice }
func (multiDeviceExperiment) CSVName() string { return "" }
func (multiDeviceExperiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new(qOutcome) }, Payload: qPayloadCodec()}
}
func (multiDeviceExperiment) Grid(rc RunContext) (shard.Grid, error) {
	_, counts := rc.Params.ResolvedMultiDevice()
	g := shard.Grid{Points: len(counts), Systems: rc.Config.Systems}
	return g, multiDeviceCheck(counts)
}
func (multiDeviceExperiment) Cell(rc RunContext, point, system int) (any, error) {
	u, counts := rc.Params.ResolvedMultiDevice()
	return multiDeviceCell(rc.Config, u, counts, point, system)
}
func (multiDeviceExperiment) CellSeed(rc RunContext, point, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamMultiDevice, int64(point), int64(system), subGen)
}
func (multiDeviceExperiment) Header(rc RunContext) string {
	return fmt.Sprintf("Partitioned scaling: static scheduler at total U=0.8 over 1..8 devices (systems=%d)\n\n",
		rc.Config.Systems)
}
func (multiDeviceExperiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	_, counts := rc.Params.ResolvedMultiDevice()
	return MultiDeviceResult(multiDeviceAggregate(rc.Config, counts,
		func(o, i int) qOutcome { return *at(o, i).(*qOutcome) }, has)), nil
}

// DefaultParams implements ParamDefaulter: the axis defaults to U=0.8
// over 1, 2, 4 and 8 devices.
func (multiDeviceExperiment) DefaultParams(p ShardParams) ShardParams {
	p.MultiDeviceU, p.MultiDeviceCounts = p.ResolvedMultiDevice()
	return p
}

// multiDeviceCheck rejects invalid device-count axes.
func multiDeviceCheck(deviceCounts []int) error {
	for _, devs := range deviceCounts {
		if devs < 1 {
			return fmt.Errorf("experiment: device count %d", devs)
		}
	}
	return nil
}

// multiDeviceCell evaluates one (device count, system) cell with the
// static scheduler; the outcome doubles as the shard-cell payload.
func multiDeviceCell(cfg Config, u float64, deviceCounts []int, di, s int) (qOutcome, error) {
	devs := deviceCounts[di]
	gen := cfg.Gen
	gen.Devices = devs
	ts, err := gen.System(exec.RNG(cfg.Seed, streamMultiDevice, int64(di), int64(s), subGen), u)
	if err != nil {
		return qOutcome{}, fmt.Errorf("multidevice %d devices system %d: %w", devs, s, err)
	}
	ds, err := sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
	if err != nil {
		return qOutcome{}, nil
	}
	psi, ups := ds.Metrics(cfg.curve())
	return qOutcome{Psi: psi, Ups: ups, OK: true}, nil
}

// multiDeviceAggregate folds an outcome grid into the study points in
// grid order — shared by the in-process runner and the shard merge path.
// A nil has aggregates the complete grid; a partial cover's predicate
// restricts each device-count row to its present systems.
func multiDeviceAggregate(cfg Config, deviceCounts []int, at func(o, i int) qOutcome, has func(o, i int) bool) []MultiDevicePoint {
	var out []MultiDevicePoint
	for di, devs := range deviceCounts {
		point := MultiDevicePoint{Devices: devs}
		var psis, upss []float64
		for s := 0; s < cfg.Systems; s++ {
			if has != nil && !has(di, s) {
				continue
			}
			o := at(di, s)
			point.Schedulable.Trials++
			if !o.OK {
				continue
			}
			point.Schedulable.Successes++
			psis = append(psis, o.Psi)
			upss = append(upss, o.Ups)
		}
		point.MeanPsi = stats.Mean(psis)
		point.MeanUpsilon = stats.Mean(upss)
		out = append(out, point)
	}
	return out
}

// MultiDeviceRows renders the study as a text table.
func MultiDeviceRows(points []MultiDevicePoint) ([]string, [][]string) {
	headers := []string{"devices", "schedulable", "mean Psi", "mean Upsilon"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%.3f", p.Schedulable.Value()),
			fmt.Sprintf("%.3f", p.MeanPsi),
			fmt.Sprintf("%.3f", p.MeanUpsilon),
		})
	}
	return headers, rows
}
