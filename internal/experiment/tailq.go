package experiment

// The tailq experiment: the distribution of per-job quality across the
// utilisation sweep — a robustness view neither paper figure shows.
// Figure 6 reports the fraction of exact jobs and Figure 7 the mean
// normalised quality Υ, both system-level aggregates; tailq asks how the
// individual jobs behind those means are doing under the deployable
// static scheduler: what fraction of all jobs land exactly on their
// ideal instant, within 90% and 50% of their ideal quality, and how bad
// the single worst job gets.
//
// The file is also the registry's worked extensibility example
// (docs/EXPERIMENTS.md): the experiment is wired into sharding, dispatch
// retry, partial merges, the CLI and the facade purely by the Register
// call below — no switch in internal/shard, internal/dispatch or
// cmd/ioschedbench names it.

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stats"
)

// streamTailQ is the experiment's private seed stream. It must differ
// from every other experiment's stream tag (experiment.go's iota block
// ends at streamMotivation == 5) so tailq draws systems independent of
// the other sweeps.
const streamTailQ int64 = 6

// tailqOutcome is one system's per-job quality census; it doubles as the
// tailq shard-cell payload. All fields are integer counts or fixed-order
// float sums, so aggregation across systems is deterministic in grid
// order by construction.
type tailqOutcome struct {
	// OK marks the system schedulable by the static scheduler; the job
	// fields are zero otherwise.
	OK bool `json:"ok"`
	// Jobs counts the system's jobs; Exact those starting exactly at
	// their ideal instants; Ge90 and Ge50 those achieving at least 90%
	// and 50% of their ideal quality (cumulative bands: Exact ⊆ Ge90 ⊆
	// Ge50 under any curve maximal at the ideal instant).
	Jobs  int `json:"jobs"`
	Exact int `json:"exact"`
	Ge90  int `json:"ge90"`
	Ge50  int `json:"ge50"`
	// SumUps is the sum of per-job normalised qualities υ = V(κ)/V(δ);
	// MinUps the worst single job's υ (1 when the system has no jobs).
	SumUps float64 `json:"sum_upsilon"`
	MinUps float64 `json:"min_upsilon"`
}

// TailQPoint summarises the pooled per-job quality distribution at one
// utilisation.
type TailQPoint struct {
	U float64
	// Schedulable is the fraction of systems the static scheduler
	// scheduled; the job statistics pool over exactly those systems.
	Schedulable stats.Ratio
	// Jobs counts the pooled jobs; Exact, Ge90 and Ge50 the fractions of
	// them in each quality band; MeanUps their mean υ; MinUps the single
	// worst job's υ.
	Jobs    int
	Exact   float64
	Ge90    float64
	Ge50    float64
	MeanUps float64
	MinUps  float64
}

// TailQResult is the tailq dataset: one pooled distribution per
// utilisation point.
type TailQResult struct {
	Points []TailQPoint
}

// Rows renders the result as a text table.
func (r *TailQResult) Rows() ([]string, [][]string) {
	headers := []string{"U", "schedulable", "jobs", "exact", ">=0.9", ">=0.5", "mean", "min"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.U),
			fmt.Sprintf("%.3f", p.Schedulable.Value()),
			fmt.Sprintf("%d", p.Jobs),
			fmt.Sprintf("%.3f", p.Exact),
			fmt.Sprintf("%.3f", p.Ge90),
			fmt.Sprintf("%.3f", p.Ge50),
			fmt.Sprintf("%.3f", p.MeanUps),
			fmt.Sprintf("%.3f", p.MinUps),
		})
	}
	return headers, rows
}

// PlotTitle implements Plottable.
func (r *TailQResult) PlotTitle() string {
	return "TailQ: fraction of jobs per quality band vs utilisation"
}

// Series converts the quality-band fractions to plot series.
func (r *TailQResult) Series() (xlabels []string, series []Curveable) {
	for _, p := range r.Points {
		xlabels = append(xlabels, fmt.Sprintf("%.2f", p.U))
	}
	bands := []struct {
		name string
		at   func(p TailQPoint) float64
	}{
		{"exact", func(p TailQPoint) float64 { return p.Exact }},
		{">=0.9", func(p TailQPoint) float64 { return p.Ge90 }},
		{">=0.5", func(p TailQPoint) float64 { return p.Ge50 }},
	}
	for _, b := range bands {
		vals := make([]float64, len(r.Points))
		for i, p := range r.Points {
			vals[i] = b.at(p)
		}
		series = append(series, Curveable{Name: b.name, Values: vals})
	}
	return xlabels, series
}

// tailqExperiment is the per-job quality-tail study as a registry entry.
type tailqExperiment struct{}

func init() { Register(tailqExperiment{}) }

func (tailqExperiment) Name() string { return ExpTailQ }
func (tailqExperiment) Describe() string {
	return "TailQ: per-job quality tail distribution vs utilisation (static scheduler)"
}
func (tailqExperiment) CellKey() string { return ExpTailQ }
func (tailqExperiment) CSVName() string { return "tailq.csv" }
func (tailqExperiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new(tailqOutcome) }, Payload: tailqPayloadCodec()}
}
func (tailqExperiment) Grid(rc RunContext) (shard.Grid, error) {
	return shard.Grid{Points: len(Fig5Utils()), Systems: rc.Config.Systems}, nil
}
func (tailqExperiment) CellSeed(rc RunContext, point, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamTailQ, int64(point), int64(system), subGen)
}
func (tailqExperiment) Header(rc RunContext) string {
	cfg := rc.Config
	return fmt.Sprintf("TailQ: per-job quality distribution under the static scheduler (systems/point=%d, seed=%d)\n\n",
		cfg.Systems, cfg.Seed)
}

// Cell evaluates one (utilisation point, system) cell: it generates the
// system from the cell's derived sub-seed, schedules it with the static
// scheduler and takes a census of every job's normalised quality.
func (tailqExperiment) Cell(rc RunContext, point, system int) (any, error) {
	cfg := rc.Config
	us := Fig5Utils()
	u := us[point]
	ts, err := cfg.Gen.System(exec.RNG(cfg.Seed, streamTailQ, int64(point), int64(system), subGen), u)
	if err != nil {
		return tailqOutcome{}, fmt.Errorf("tailq u=%.2f system %d: %w", u, system, err)
	}
	ds, err := scheduleStatic(ts)
	if err != nil {
		if errors.Is(err, sched.ErrInfeasible) {
			return tailqOutcome{}, nil
		}
		return tailqOutcome{}, fmt.Errorf("tailq u=%.2f system %d: unexpected: %w", u, system, err)
	}
	curve := cfg.curve()
	o := tailqOutcome{OK: true, MinUps: 1}
	// Devices, then each schedule's job order: a fixed iteration order
	// keeps the float sum reproducible everywhere.
	for _, dev := range ts.Devices() {
		s := ds[dev]
		starts := s.StartTimes()
		for _, j := range s.Jobs() {
			kappa := starts[j.ID]
			ideal := curve.Value(&j, j.Ideal)
			if ideal <= 0 {
				continue
			}
			ups := curve.Value(&j, kappa) / ideal
			o.Jobs++
			o.SumUps += ups
			if ups < o.MinUps {
				o.MinUps = ups
			}
			if quality.Exact(&j, kappa) {
				o.Exact++
			}
			if ups >= 0.9 {
				o.Ge90++
			}
			if ups >= 0.5 {
				o.Ge50++
			}
		}
	}
	return o, nil
}

// Aggregate pools the per-system censuses per utilisation point in grid
// order: integer band counts and fixed-order float sums, so sharded,
// partial and in-process runs agree exactly.
func (tailqExperiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	cfg := rc.Config
	res := &TailQResult{}
	for ui, u := range Fig5Utils() {
		p := TailQPoint{U: u, MinUps: 1}
		var sum float64
		var exact, ge90, ge50 int
		for s := 0; s < cfg.Systems; s++ {
			if has != nil && !has(ui, s) {
				continue
			}
			o := *at(ui, s).(*tailqOutcome)
			p.Schedulable.Trials++
			if !o.OK {
				continue
			}
			p.Schedulable.Successes++
			p.Jobs += o.Jobs
			exact += o.Exact
			ge90 += o.Ge90
			ge50 += o.Ge50
			sum += o.SumUps
			if o.Jobs > 0 && o.MinUps < p.MinUps {
				p.MinUps = o.MinUps
			}
		}
		if p.Jobs > 0 {
			n := float64(p.Jobs)
			p.Exact = float64(exact) / n
			p.Ge90 = float64(ge90) / n
			p.Ge50 = float64(ge50) / n
			p.MeanUps = sum / n
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
