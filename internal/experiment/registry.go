package experiment

// The experiment registry: every study — the paper's five figure/table
// runners and any new experiment — is one Experiment value registered
// under its CLI/shard-file name. The generic engines (engine.go) drive
// any registered experiment through the same phases the hard-coded
// runners used to special-case: evaluate grid cells (with grid-path
// derived seeds), serialise them through the versioned payload codec,
// and aggregate in fixed grid order. Shard selection, dispatch
// validation, the CLI and the facade all resolve experiments through
// Lookup/All, so registering a new experiment is the only step needed to
// make it runnable, shardable, dispatchable and renderable.

import (
	"fmt"
	"sync"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// RunContext carries the resolved configuration the experiment hooks
// see. The engines build it from normalised ShardParams (Context); the
// legacy wrappers build it from their caller's Config/MotivationConfig
// directly, so library callers keep access to knobs ShardParams cannot
// express (a custom quality Curve or generator).
//
// Config and Motivation are authoritative for what they cover (systems,
// seed, GA budget, curve, parallelism; the motivation mesh); Params
// carries the experiment-specific extras (ablation utilisation,
// multi-device axis) through its Resolved* helpers.
type RunContext struct {
	Params     ShardParams
	Config     Config
	Motivation MotivationConfig
	// Cache, when non-nil, is consulted before any cell is computed and
	// receives every cell computed (engine.go's frontier evaluation). It
	// is sound only when Config and Motivation are derived from Params —
	// the cache key is built from Params, so a context carrying knobs
	// Params cannot express (a custom Curve or generator) must leave it
	// nil. Context never sets it; callers opt in explicitly, and the
	// legacy contextFor/motivationContext wrappers never do.
	Cache *cellcache.Store
}

// WithCache returns the context with the cell cache attached. Use only
// on contexts built by ShardParams.Context, whose Config/Motivation are
// fully described by Params (see Cache).
func (rc RunContext) WithCache(c *cellcache.Store) RunContext {
	rc.Cache = c
	return rc
}

// Context resolves the params into the RunContext the generic engines
// pass to the experiment hooks. Parallelism is host-local and never
// changes results; <= 0 selects one worker per CPU.
func (p ShardParams) Context(parallelism int) RunContext {
	p = p.Normalised()
	cfg := p.Config()
	cfg.Parallelism = parallelism
	mcfg := p.Motivation()
	mcfg.Parallelism = parallelism
	return RunContext{Params: p, Config: cfg, Motivation: mcfg}
}

// contextFor adapts a library Config to a RunContext for the legacy
// sweep wrappers: Config is taken verbatim (custom Curve and Gen
// included), Params resolves to the defaults of everything else.
func contextFor(cfg Config) RunContext {
	p := ShardParams{Seed: cfg.Seed}.Normalised()
	mcfg := DefaultMotivation()
	mcfg.Seed = cfg.Seed
	mcfg.Parallelism = cfg.Parallelism
	return RunContext{Params: p, Config: cfg, Motivation: mcfg}
}

// motivationContext adapts a MotivationConfig for the legacy motivation
// wrappers; only the motivation hooks read it.
func motivationContext(mcfg MotivationConfig) RunContext {
	var rc RunContext
	rc.Motivation = mcfg
	rc.Config.Parallelism = mcfg.Parallelism
	return rc
}

// Codec is an experiment's versioned cell-payload codec. Payloads are
// JSON-encoded; Version identifies the payload layout and is recorded in
// shard files (shard.Run.PayloadVersion) so a reader rejects cells
// written by an incompatible layout instead of silently mis-decoding
// them. Bump Version whenever the payload struct changes incompatibly.
//
// A zero Codec (nil New) marks a closed-form experiment with no cell
// grid: Table I is recomputed at render time and never sharded.
type Codec struct {
	Version int
	// New returns a pointer to a zero payload for decoding one cell.
	New func() any
	// Payload, when non-nil, is the experiment's columnar payload codec
	// for the v2 binary shard container: Register wires it into the shard
	// layer under (Name, Version), and binary-encoded files then pack the
	// experiment's payload column with it instead of per-cell JSON. An
	// experiment without one still shards, caches and dispatches —
	// binary files just fall back to the compact-JSON payload column.
	Payload PayloadCodec
}

// PayloadCodec is the experiment-side spelling of shard.PayloadCodec: a
// lossless packer from one run's compact-JSON cell payloads to a binary
// column and back (see payloadcodec.go for the columnCodec helper every
// built-in experiment uses).
type PayloadCodec = shard.PayloadCodec

// Result is one experiment's aggregated dataset. Rows is the only
// required render hook; results may additionally implement Plottable
// (text chart) and Footnoted (trailing note lines).
type Result interface {
	// Rows renders the result as a text table.
	Rows() (headers []string, rows [][]string)
}

// Plottable is implemented by results that render a text chart above
// their table.
type Plottable interface {
	// PlotTitle is the chart caption.
	PlotTitle() string
	// Series converts the result to plot series.
	Series() (xlabels []string, series []Curveable)
}

// Footnoted is implemented by results with note lines after the table
// (the motivation experiment's base-latency line).
type Footnoted interface {
	// Footer returns the note block without a trailing newline; "" means
	// none.
	Footer() string
}

// Experiment is one registered study: a named cell grid, the per-cell
// computation with its derived-seed path, the versioned payload codec,
// and the fixed-order aggregation with its render hooks. Implementations
// must keep the determinism invariants: Cell's randomness derives only
// from the cell's grid path (CellSeed records it), and Aggregate folds
// cells in grid order with fixed-order float sums, so sharded, partial
// and in-process runs agree byte for byte.
type Experiment interface {
	// Name is the CLI and shard-file spelling of the experiment.
	Name() string
	// Describe returns a one-line description for listings.
	Describe() string
	// CellKey identifies the experiment's cell grid. Experiments sharing
	// a key (fig6/fig7) share one cell computation, recorded under each
	// name exactly as an unsharded run renders one computation twice.
	CellKey() string
	// CSVName is the CSV file the CLI writes for the result ("" = none).
	CSVName() string
	// Grid returns the run's cell grid under rc, validating the
	// configuration the experiment cannot model.
	Grid(rc RunContext) (shard.Grid, error)
	// Codec returns the versioned cell-payload codec; a zero Codec marks
	// a closed-form experiment with nothing to shard.
	Codec() Codec
	// Cell evaluates one grid cell; the returned payload must round-trip
	// losslessly through the codec.
	Cell(rc RunContext, point, system int) (any, error)
	// CellSeed returns the derived sub-seed recorded with the cell (0 if
	// the cell draws no randomness).
	CellSeed(rc RunContext, point, system int) int64
	// Header renders the block the CLI prints above the result.
	Header(rc RunContext) string
	// Aggregate folds decoded cell payloads into the result in grid
	// order. at(point, system) returns what Codec().New decoded for the
	// cell; has restricts aggregation to the present cells (nil = the
	// complete grid). A nil Result with a nil error means no provisional
	// result exists for the subset (the motivation two-design
	// comparison).
	Aggregate(rc RunContext, at func(point, system int) any, has func(point, system int) bool) (Result, error)
}

// ParamDefaulter is implemented by experiments that own defaultable
// ShardParams fields: DefaultParams resolves the zero-valued fields to
// their effective defaults. ShardParams.Normalised applies every
// registered defaulter, so recorded params are byte-equal across
// spellings without the params layer hard-coding any experiment.
type ParamDefaulter interface {
	DefaultParams(p ShardParams) ShardParams
}

// NonReproducible is implemented by experiments whose cell payloads are
// measurements of the host rather than functions of the seed (the
// replay jitter experiment). Reproducible() must return false — the
// interface's presence alone is not the marker, so an implementation
// can keep the method and flip the value under test doubles.
//
// A non-reproducible experiment is exempt from the byte-identical
// invariant and is treated specially everywhere the invariant is load-
// bearing: it is excluded from the "all" selection, its cells are never
// deposited to or served from the cell cache, and shard files holding
// its runs carry a host fingerprint (shard.File.Host). Everything else
// — sharding, merge, partial render, dispatch transport — works
// unchanged, because none of it assumes two computations of the same
// cell agree.
type NonReproducible interface {
	Reproducible() bool
}

// Reproducible reports whether the experiment keeps the byte-identical
// invariant. Experiments are reproducible unless they declare
// otherwise.
func Reproducible(e Experiment) bool {
	if nr, ok := e.(NonReproducible); ok {
		return nr.Reproducible()
	}
	return true
}

// PartialSkipper is implemented by experiments whose provisional result
// does not exist until their grid is complete: PartialSkipNote explains
// the gap in place of the result (missingShards is the pre-rendered
// " 2 5"-style shard list).
type PartialSkipper interface {
	PartialSkipNote(cov Coverage, missingShards string) string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
	regOrder []string
)

// Register adds e to the registry. The registration order is the
// canonical order: shard files, the CLI's "all" selection and listings
// all follow it. Registering a duplicate name panics — a wiring bug, not
// a runtime condition.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	name := e.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiment: %q registered twice", name))
	}
	registry[name] = e
	regOrder = append(regOrder, name)
	// The payload codec registers alongside the experiment, so binary
	// shard files can pack (and unpack) the experiment's payload column
	// the moment the experiment exists — no second registration step.
	if c := e.Codec(); c.Payload != nil {
		shard.RegisterPayloadCodec(name, c.Version, c.Payload)
	}
}

// Lookup returns the registered experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns the registered experiments in canonical (registration)
// order.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, len(regOrder))
	for i, name := range regOrder {
		out[i] = registry[name]
	}
	return out
}

// Names returns the registered experiment names in canonical order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// GridExperiments lists the registered experiments that carry a
// shardable cell grid, in canonical order (Table I is closed-form and
// excluded).
func GridExperiments() []string {
	var out []string
	for _, e := range All() {
		if e.Codec().New != nil {
			out = append(out, e.Name())
		}
	}
	return out
}

// ReproducibleGridExperiments lists the grid experiments that keep the
// byte-identical invariant, in canonical order. This is the "all"
// selection: non-reproducible experiments (replay jitter) only run when
// named explicitly, so every byte-identity check over "all" stays
// exact.
func ReproducibleGridExperiments() []string {
	var out []string
	for _, e := range All() {
		if e.Codec().New != nil && Reproducible(e) {
			out = append(out, e.Name())
		}
	}
	return out
}

// The paper's studies register here in canonical order. A new
// experiment registers itself from its own file's init (see tailq.go);
// within a package, init functions run in compiler file order, so files
// sorted after registry.go append after the built-ins — pinned by
// TestRegistryCanonicalOrder.
func init() {
	Register(fig5Experiment{})
	Register(figqExperiment{psi: true})
	Register(figqExperiment{psi: false})
	Register(table1Experiment{})
	Register(motivationExperiment{})
	Register(ablationExperiment{})
	Register(multiDeviceExperiment{})
}
