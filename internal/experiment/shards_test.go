package experiment

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/shard"
)

// shardParamsFast keeps the sharded integration runs quick.
func shardParamsFast() ShardParams {
	return ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}
}

// TestShardMergeEquivalence pins the tentpole invariant end to end: for
// shard counts 1, 3 and 8, with the shards themselves run at different
// parallelism levels (alternating 1 and NumCPU), merging the shard files
// and re-aggregating yields results deep-equal to the unsharded run of
// every experiment — the cells are location-independent and the payloads
// round-trip losslessly through the file format.
func TestShardMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	cfg := p.Config()
	mcfg := p.Motivation()
	mdU, mdCounts := p.ResolvedMultiDevice()

	refFig5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refPsi, refUps, err := Fig6And7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refMot, err := Motivation(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	refAbl, err := Ablation(cfg, p.ResolvedAblationU())
	if err != nil {
		t.Fatal(err)
	}
	refMD, err := MultiDevice(cfg, mdU, mdCounts)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 3, 8} {
		files := make([]*shard.File, n)
		for i := 0; i < n; i++ {
			// Alternate the per-shard parallelism: the merged result must
			// not depend on any shard's worker count.
			par := 1
			if i%2 == 1 {
				par = runtime.NumCPU()
			}
			f, err := RunShard(ExpAll, p, par, n, i)
			if err != nil {
				t.Fatalf("N=%d shard %d: %v", n, i, err)
			}
			// Round-trip through the encoded form, as a real multi-process
			// run would.
			data, err := f.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if files[i], err = shard.Decode(data); err != nil {
				t.Fatal(err)
			}
		}
		// Merge in reversed order: file order must not matter.
		rev := make([]*shard.File, n)
		for i := range files {
			rev[n-1-i] = files[i]
		}
		merged, err := shard.Merge(rev)
		if err != nil {
			t.Fatalf("N=%d: merge: %v", n, err)
		}
		byName := map[string]shard.Run{}
		for _, r := range merged.Runs {
			byName[r.Experiment] = r
		}
		if want := len(ReproducibleGridExperiments()); len(byName) != want {
			t.Fatalf("N=%d: merged %d runs, want %d: %v", n, len(byName), want, Names())
		}

		if got, err := Fig5FromCells(cfg, byName[ExpFig5].Cells); err != nil || !reflect.DeepEqual(refFig5, got) {
			t.Errorf("N=%d: Fig5 differs from unsharded (err=%v)", n, err)
		}
		for _, name := range []string{ExpFig6, ExpFig7} {
			gotPsi, gotUps, err := FigQFromCells(cfg, byName[name].Cells)
			if err != nil || !reflect.DeepEqual(refPsi, gotPsi) || !reflect.DeepEqual(refUps, gotUps) {
				t.Errorf("N=%d: %s differs from unsharded (err=%v)", n, name, err)
			}
		}
		if got, err := MotivationFromCells(mcfg, byName[ExpMotivation].Cells); err != nil || !reflect.DeepEqual(refMot, got) {
			t.Errorf("N=%d: Motivation differs from unsharded (err=%v)", n, err)
		}
		if got, err := AblationFromCells(cfg, byName[ExpAblation].Cells); err != nil || !reflect.DeepEqual(refAbl, got) {
			t.Errorf("N=%d: Ablation differs from unsharded (err=%v)", n, err)
		}
		if got, err := MultiDeviceFromCells(cfg, mdCounts, byName[ExpMultiDevice].Cells); err != nil || !reflect.DeepEqual(refMD, got) {
			t.Errorf("N=%d: MultiDevice differs from unsharded (err=%v)", n, err)
		}
	}
}

// TestShardFileBytesAreDeterministic: the same shard evaluated twice
// (at different parallelism) encodes to identical bytes — the property
// that lets CI diff merged output against the unsharded run.
func TestShardFileBytesAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	a, err := RunShard(ExpMultiDevice, p, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(ExpMultiDevice, p, runtime.NumCPU(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("shard bytes depend on parallelism")
	}
}

func TestRunShardValidation(t *testing.T) {
	p := shardParamsFast()
	if _, err := RunShard("bogus", p, 1, 3, 0); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("bogus selection: %v", err)
	}
	if _, err := RunShard(ExpTable1, p, 1, 3, 0); err == nil || !strings.Contains(err.Error(), "no grid") {
		t.Errorf("table1 selection: %v", err)
	}
	if _, err := RunShard(ExpFig5, p, 1, 0, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := RunShard(ExpFig5, p, 1, 3, 3); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestFromCellsRejectsBadSets(t *testing.T) {
	mcfg := DefaultMotivation()
	mcfg.Writes = 10
	cells, _, err := MotivationCells(mcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if _, err := MotivationFromCells(mcfg, cells[:1]); err == nil {
		t.Error("incomplete cell set accepted")
	}
	dup := []shard.Cell{cells[0], cells[0]}
	if _, err := MotivationFromCells(mcfg, dup); err == nil {
		t.Error("duplicate cell accepted")
	}
	oob := []shard.Cell{cells[0], cells[1]}
	oob[1].System = 7
	if _, err := MotivationFromCells(mcfg, oob); err == nil {
		t.Error("out-of-range cell accepted")
	}
	bad := []shard.Cell{cells[0], cells[1]}
	bad[1].Data = []byte(`{"report":`)
	if _, err := MotivationFromCells(mcfg, bad); err == nil {
		t.Error("corrupt payload accepted")
	}
}

// TestShardParamsSpellingsMerge: shards of the same run must merge even
// when produced from different spellings of the defaults (the CLI passes
// its flag defaults explicitly; library callers leave fields zero) —
// RunShard records normalised params, and merge compares the bytes.
func TestShardParamsSpellingsMerge(t *testing.T) {
	explicit := ShardParams{Systems: 3, Seed: 1, AblationU: 0.6, MultiDeviceU: 0.8,
		MultiDeviceCounts: []int{1, 2, 4, 8}, MotivationWrites: DefaultMotivation().Writes}
	zeroed := ShardParams{Systems: 3, Seed: 1}
	f0, err := RunShard(ExpMultiDevice, explicit, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := RunShard(ExpMultiDevice, zeroed, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := shard.Merge([]*shard.File{f0, f1})
	if err != nil {
		t.Fatalf("equivalent spellings refused to merge: %v", err)
	}
	if got := len(merged.Runs[0].Cells); got != merged.Runs[0].Grid.Cells() {
		t.Errorf("merged cells = %d", got)
	}
}

// TestShardParamsResolution pins the params → configuration mapping merge
// relies on.
func TestShardParamsResolution(t *testing.T) {
	var p ShardParams
	p.Seed = 42
	cfg := p.Config()
	if cfg.Systems != Default().Systems || cfg.Seed != 42 {
		t.Errorf("zero params resolved to %+v", cfg)
	}
	if u := p.ResolvedAblationU(); u != 0.6 {
		t.Errorf("ablation u = %g", u)
	}
	if u, counts := p.ResolvedMultiDevice(); u != 0.8 || len(counts) != 4 {
		t.Errorf("multidevice = %g %v", u, counts)
	}
	if m := p.Motivation(); m.Seed != 42 || m.Writes != DefaultMotivation().Writes {
		t.Errorf("motivation = %+v", m)
	}

	p = ShardParams{PaperScale: true, Systems: 7, GAPopulation: 11, GAGenerations: 13, MotivationWrites: 5}
	cfg = p.Config()
	if cfg.Systems != 7 || cfg.GA.Population != 11 || cfg.GA.Generations != 13 {
		t.Errorf("override params resolved to %+v", cfg)
	}
	if m := p.Motivation(); m.Writes != 5 {
		t.Errorf("motivation writes = %d", m.Writes)
	}
}
