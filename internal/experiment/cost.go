package experiment

// The per-cell cost model behind cost-packed decomposition. Every cell's
// dominant cost is its GA solve — population × generations fitness
// evaluations over a system whose job count grows with the utilisation
// point — so the predicted cost of a cell is the GA budget scaled by the
// point's utilisation when the experiment exposes one. The model only
// has to be *proportional* to wall-clock to pack well; balanced dispatch
// further refines it with observed per-cell rates from prior journals
// (internal/dispatch), and no decomposition ever changes results.

import (
	"fmt"

	"repro/internal/shard"
)

// CellCoster is implemented by experiments that can predict a relative
// cost for each grid cell. Units are arbitrary — only ratios matter to a
// cost-packed decomposition. Experiments without the hook cost every
// cell the flat GA budget.
type CellCoster interface {
	CellCost(rc RunContext, point, system int) float64
}

// gaBudget is the flat per-cell cost: one GA solve's fitness-evaluation
// budget under the context's configuration.
func gaBudget(rc RunContext) float64 {
	n := rc.Config.GA.Population * rc.Config.GA.Generations
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// CellCost implements CellCoster for Figure 5: the GA budget scaled by
// the cell's utilisation point (higher utilisation → more jobs → more
// expensive fitness evaluations).
func (fig5Experiment) CellCost(rc RunContext, point, system int) float64 {
	us := Fig5Utils()
	if point < 0 || point >= len(us) {
		return gaBudget(rc)
	}
	return gaBudget(rc) * us[point]
}

// CellCost implements CellCoster for Figures 6/7, which share one cell
// computation over the quality sweep's utilisation axis.
func (figqExperiment) CellCost(rc RunContext, point, system int) float64 {
	us := FigQUtils()
	if point < 0 || point >= len(us) {
		return gaBudget(rc)
	}
	return gaBudget(rc) * us[point]
}

// RunPlan describes a selection's decomposable surface: the runs a shard
// file for the selection records, their grids, which runs share one cell
// computation, and the predicted per-cell costs — everything a
// Decomposition needs to split the work without running any of it.
type RunPlan struct {
	// Names lists the runs in the selection's canonical order.
	Names []string
	// Grids holds each run's cell grid, parallel to Names.
	Grids []shard.Grid
	// Groups[ri] is the index of the first run sharing run ri's cell
	// computation (CellKey): fig6 and fig7 form one group, so a
	// decomposition splits the computation once and every member records
	// the same cells.
	Groups []int
	// Costs[ri][g] is the predicted cost of run ri's global cell index g,
	// from the experiment's CellCoster hook (flat GA budget without one).
	// Runs of one group carry identical rows.
	Costs [][]float64
}

// PlanSelection builds the RunPlan for a selection under params p.
func PlanSelection(selection string, p ShardParams) (*RunPlan, error) {
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, err
	}
	rc := p.Normalised().Context(1)
	plan := &RunPlan{Names: names}
	firstOfKey := make(map[string]int)
	for ri, name := range names {
		e, err := get(name)
		if err != nil {
			return nil, err
		}
		g, err := e.Grid(rc)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", name, err)
		}
		group, ok := firstOfKey[e.CellKey()]
		if !ok {
			group = ri
			firstOfKey[e.CellKey()] = ri
		}
		costs := make([]float64, g.Cells())
		coster, _ := e.(CellCoster)
		for o := 0; o < g.Points; o++ {
			for i := 0; i < g.Systems; i++ {
				c := gaBudget(rc)
				if coster != nil {
					c = coster.CellCost(rc, o, i)
				}
				costs[o*g.Systems+i] = c
			}
		}
		plan.Grids = append(plan.Grids, g)
		plan.Groups = append(plan.Groups, group)
		plan.Costs = append(plan.Costs, costs)
	}
	return plan, nil
}

// TotalCost sums the predicted cost of the given per-run cell sets (nil
// sets cost nothing). Group members are summed individually, mirroring
// how every member records its cells.
func (rp *RunPlan) TotalCost(cells [][]int) float64 {
	total := 0.0
	for ri := range rp.Costs {
		if ri >= len(cells) {
			break
		}
		for _, g := range cells[ri] {
			if g >= 0 && g < len(rp.Costs[ri]) {
				total += rp.Costs[ri][g]
			}
		}
	}
	return total
}
