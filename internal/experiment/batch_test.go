package experiment

import (
	"testing"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// splitPlan runs the given decomposition over a selection's plan and
// returns the per-part cell sets: parts[p][ri] = run ri's cells in part p.
func splitPlan(t *testing.T, rp *RunPlan, d shard.Decomposition, parts int) [][][]int {
	t.Helper()
	assign, err := d.Split(rp.Grids, parts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]int, parts)
	for pi := range out {
		out[pi] = make([][]int, len(rp.Grids))
	}
	for ri := range rp.Grids {
		// Group members share their representative's assignment, exactly
		// as balanced dispatch copies it.
		src := assign[rp.Groups[ri]]
		for g, part := range src {
			out[part][ri] = append(out[part][ri], g)
		}
	}
	return out
}

func TestBatchMergeByteIdenticalToUnsharded(t *testing.T) {
	p := ShardParams{Systems: 3, Seed: 7, GAPopulation: 8, GAGenerations: 4}
	for _, selection := range []string{ExpFig5, ExpAll} {
		unsharded, err := RunShard(selection, p, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := unsharded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := PlanSelection(selection, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []shard.Decomposition{shard.RoundRobin{}, shard.CostPacked{Costs: rp.Costs}} {
			var files []*shard.File
			for _, cells := range splitPlan(t, rp, d, 3) {
				f, err := RunBatchCached(selection, p, 1, cells, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.ValidateCells(); err != nil {
					t.Fatalf("%s/%s: batch invalid: %v", selection, d.Name(), err)
				}
				files = append(files, f)
			}
			merged, dups, err := shard.MergeBatches(files)
			if err != nil {
				t.Fatalf("%s/%s: %v", selection, d.Name(), err)
			}
			if dups != 0 {
				t.Errorf("%s/%s: %d duplicates from disjoint batches", selection, d.Name(), dups)
			}
			got, err := merged.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(ref) {
				t.Errorf("%s/%s: batch merge differs from the unsharded run", selection, d.Name())
			}
		}
	}
}

func TestCachedBatchServesWarmStore(t *testing.T) {
	p := ShardParams{Systems: 2, Seed: 1, GAPopulation: 8, GAGenerations: 5}
	cells := [][]int{{0, 3, 5}}
	store, err := cellcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Cold probe misses; a computed batch deposits; the warm probe must
	// return byte-identical bytes.
	if _, ok, err := CachedBatch(store, ExpFig5, p, cells); err != nil || ok {
		t.Fatalf("cold probe = %v, %v; want miss", ok, err)
	}
	computed, err := RunBatchCached(ExpFig5, p, 1, cells, store)
	if err != nil {
		t.Fatal(err)
	}
	warm, ok, err := CachedBatch(store, ExpFig5, p, cells)
	if err != nil || !ok {
		t.Fatalf("warm probe = %v, %v; want hit", ok, err)
	}
	a, err := computed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("cached batch differs from the computed batch")
	}
}

func TestPlanSelectionGroupsAndCosts(t *testing.T) {
	p := ShardParams{Systems: 2, Seed: 1, GAPopulation: 10, GAGenerations: 6}
	rp, err := PlanSelection(ExpAll, p)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]int)
	for ri, name := range rp.Names {
		byName[name] = ri
	}
	// fig6 and fig7 share one cell computation; their group ids collapse.
	if rp.Groups[byName[ExpFig7]] != byName[ExpFig6] {
		t.Errorf("fig7 group = %d, want fig6's index %d", rp.Groups[byName[ExpFig7]], byName[ExpFig6])
	}
	if rp.Groups[byName[ExpFig5]] != byName[ExpFig5] {
		t.Errorf("fig5 not its own group")
	}
	// fig5's coster scales by utilisation: the last point costs more than
	// the first, and all costs are positive.
	costs := rp.Costs[byName[ExpFig5]]
	g := rp.Grids[byName[ExpFig5]]
	if first, last := costs[0], costs[(g.Points-1)*g.Systems]; !(last > first) || first <= 0 {
		t.Errorf("fig5 costs not utilisation-scaled: first %v last %v", first, last)
	}
	if rp.TotalCost([][]int{nil}) != 0 {
		t.Error("TotalCost of empty sets != 0")
	}
	if rp.TotalCost(rowsAll(rp)) <= 0 {
		t.Error("TotalCost of everything <= 0")
	}
}

func rowsAll(rp *RunPlan) [][]int {
	all := make([][]int, len(rp.Grids))
	for ri, g := range rp.Grids {
		for i := 0; i < g.Cells(); i++ {
			all[ri] = append(all[ri], i)
		}
	}
	return all
}
