package experiment

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// fastConfig keeps the integration tests quick while preserving enough
// samples for the qualitative assertions.
func fastConfig() Config {
	cfg := Default()
	cfg.Systems = 12
	cfg.GA.Population = 16
	cfg.GA.Generations = 10
	return cfg
}

func TestFig5Utils(t *testing.T) {
	us := Fig5Utils()
	if len(us) != 15 {
		t.Fatalf("x axis has %d points, want 15 (0.20..0.90 step 0.05): %v", len(us), us)
	}
	if us[0] != 0.20 || us[len(us)-1] != 0.90 {
		t.Errorf("range = [%g, %g]", us[0], us[len(us)-1])
	}
}

// TestRound2 pins half-away-from-zero rounding. Regression: the previous
// int-truncation formula rounded negative inputs toward zero (−0.005 →
// 0.00 instead of −0.01), which would silently corrupt any metric that
// can go negative, such as a Penalised-curve Υ.
func TestRound2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{0.20, 0.20},
		{0.204, 0.20},
		{0.205, 0.21},
		{0.8999999, 0.90},
		{1.0, 1.0},
		{-0.005, -0.01},
		{-0.204, -0.20},
		{-0.205, -0.21},
		{-1.239, -1.24},
		{-999.999, -1000.0},
	}
	for _, tc := range cases {
		if got := round2(tc.in); got != tc.want {
			t.Errorf("round2(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := fastConfig()
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 15 {
		t.Fatalf("points = %d", len(res.Points))
	}
	at := func(u float64) Fig5Point {
		for _, p := range res.Points {
			if p.U == u {
				return p
			}
		}
		t.Fatalf("no point at %g", u)
		return Fig5Point{}
	}
	low, high := at(0.30), at(0.90)
	// FPS-offline schedules essentially everything (the paper's boundary
	// condition; the harmonic generation was calibrated for it).
	if v := high.Rates[MethodFPSOffline].Value(); v < 0.9 {
		t.Errorf("FPS-offline at 0.9 = %g, want ≈ 1", v)
	}
	// The proposed methods stay at or above FPS-online...
	for _, m := range []string{MethodStatic, MethodGA} {
		if high.Rates[m].Value() < high.Rates[MethodFPSOnline].Value()-1e-9 {
			t.Errorf("%s at 0.9 = %g below FPS-online %g", m,
				high.Rates[m].Value(), high.Rates[MethodFPSOnline].Value())
		}
	}
	// ...and everything beats GPIOCP, which collapses at high U.
	if v := high.Rates[MethodGPIOCP].Value(); v > 0.25 {
		t.Errorf("GPIOCP at 0.9 = %g, expected collapse", v)
	}
	if lowV, highV := low.Rates[MethodGPIOCP].Value(), high.Rates[MethodGPIOCP].Value(); lowV < highV {
		t.Errorf("GPIOCP should fall with U: %g@0.3 vs %g@0.9", lowV, highV)
	}
	// Rows/Series agree with the data.
	h, rows := res.Rows()
	if len(h) != 6 || len(rows) != 15 {
		t.Errorf("table shape %dx%d", len(h), len(rows))
	}
	x, series := res.Series()
	if len(x) != 15 || len(series) != 5 {
		t.Errorf("series shape %d/%d", len(x), len(series))
	}
}

func TestFig6And7ShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := fastConfig()
	psi, ups, err := Fig6And7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(psi.Points) != 5 || len(ups.Points) != 5 {
		t.Fatalf("points = %d/%d", len(psi.Points), len(ups.Points))
	}
	psiMeans := psi.SummaryStats()
	upsMeans := ups.SummaryStats()
	// Figure 6: FPS achieves no exact jobs; static ≥ GA ≥ GPIOCP overall.
	if psiMeans[MethodFPSOffline] > 0.02 {
		t.Errorf("FPS Ψ = %g, paper reports 0", psiMeans[MethodFPSOffline])
	}
	if psiMeans[MethodStatic] < psiMeans[MethodGA]-0.05 {
		t.Errorf("static Ψ %g should be ≥ GA Ψ %g", psiMeans[MethodStatic], psiMeans[MethodGA])
	}
	if psiMeans[MethodGA] < psiMeans[MethodGPIOCP]-0.05 {
		t.Errorf("GA Ψ %g should be ≥ GPIOCP Ψ %g", psiMeans[MethodGA], psiMeans[MethodGPIOCP])
	}
	// Figure 7: GA yields the best quality; FPS the worst.
	if upsMeans[MethodGA] < upsMeans[MethodStatic]-0.02 {
		t.Errorf("GA Υ %g should be ≥ static Υ %g", upsMeans[MethodGA], upsMeans[MethodStatic])
	}
	if upsMeans[MethodFPSOffline] > upsMeans[MethodGPIOCP] {
		t.Errorf("FPS Υ %g should be worst (GPIOCP %g)",
			upsMeans[MethodFPSOffline], upsMeans[MethodGPIOCP])
	}
	// Ψ declines with utilisation for the timing-aware methods.
	first, last := psi.Points[0], psi.Points[len(psi.Points)-1]
	for _, m := range []string{MethodStatic, MethodGA} {
		if first.Mean[m] < last.Mean[m] {
			t.Errorf("%s Ψ should decline: %g@0.3 vs %g@0.7", m, first.Mean[m], last.Mean[m])
		}
	}
}

func TestFig6And7RejectsMultiDevice(t *testing.T) {
	cfg := fastConfig()
	cfg.Gen.Devices = 2
	if _, _, err := Fig6And7(cfg); err == nil {
		t.Fatal("multi-device config accepted")
	}
}

func TestTable1RowsRender(t *testing.T) {
	rows := Table1()
	h, r := Table1Rows(rows)
	if len(h) != 6 || len(r) != 7 {
		t.Fatalf("table shape %dx%d", len(h), len(r))
	}
	if !strings.Contains(r[0][1], "/") {
		t.Errorf("cell should be model/paper: %q", r[0][1])
	}
}

func TestMotivationControllerIsExact(t *testing.T) {
	cfg := DefaultMotivation()
	cfg.Writes = 40
	res, err := Motivation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-loaded controller is always exact; the remote design pays
	// contention-dependent jitter under cross-traffic.
	if res.Controller.ExactFraction() != 1 {
		t.Errorf("controller exact = %g, want 1", res.Controller.ExactFraction())
	}
	if res.Controller.MaxDeviation != 0 {
		t.Errorf("controller max jitter = %d", res.Controller.MaxDeviation)
	}
	if res.Remote.ExactFraction() >= res.Controller.ExactFraction() {
		t.Errorf("remote exact %g should be below controller's 1.0", res.Remote.ExactFraction())
	}
	if res.Remote.MaxDeviation == 0 {
		t.Error("remote design showed no jitter under cross-traffic")
	}
	if res.BaseLatency <= 0 {
		t.Error("base latency missing")
	}
	h, rows := res.Rows()
	if len(h) != 5 || len(rows) != 2 {
		t.Errorf("rows shape %dx%d", len(h), len(rows))
	}
}

func TestMotivationRejectsZeroWrites(t *testing.T) {
	cfg := DefaultMotivation()
	cfg.Writes = 0
	if _, err := Motivation(cfg); err == nil {
		t.Fatal("zero writes accepted")
	}
}

func TestAblationVariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := fastConfig()
	cfg.Systems = 6
	res, err := Ablation(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(AblationVariants()) {
		t.Fatalf("variants = %d", len(res))
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Name] = r
		if r.Schedulable.Trials != 6 {
			t.Errorf("%s trials = %d", r.Name, r.Schedulable.Trials)
		}
	}
	// Demotion never schedules fewer systems than the literal algorithm.
	paper := byName["static (paper: LCC-D)"]
	demo := byName["static + demotion"]
	if demo.Schedulable.Successes < paper.Schedulable.Successes {
		t.Errorf("demotion %d < literal %d schedulable",
			demo.Schedulable.Successes, paper.Schedulable.Successes)
	}
	// Near-ideal placement should not reduce mean Υ.
	near := byName["static near-ideal placement"]
	if near.MeanUpsilon < paper.MeanUpsilon-0.02 {
		t.Errorf("near-ideal Υ %g < paper Υ %g", near.MeanUpsilon, paper.MeanUpsilon)
	}
	h, rows := AblationRows(res)
	if len(h) != 4 || len(rows) != len(res) {
		t.Errorf("rows shape %dx%d", len(h), len(rows))
	}
}

func TestDefaultAndPaperScaleConfigs(t *testing.T) {
	d, p := Default(), PaperScale()
	if d.Systems != 100 {
		t.Errorf("default systems = %d", d.Systems)
	}
	if p.Systems != 1000 || p.GA.Population != 300 || p.GA.Generations != 500 {
		t.Errorf("paper scale = %+v", p)
	}
	if d.curve() == nil {
		t.Error("default curve missing")
	}
}

func TestMultiDeviceScaling(t *testing.T) {
	cfg := fastConfig()
	cfg.Systems = 15
	points, err := MultiDevice(cfg, 0.8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// More devices → less per-device contention → Ψ climbs.
	if points[2].MeanPsi < points[0].MeanPsi {
		t.Errorf("Ψ should improve with devices: %g@1 vs %g@4",
			points[0].MeanPsi, points[2].MeanPsi)
	}
	if points[2].MeanPsi < 0.75 {
		t.Errorf("4-device Ψ = %g, expected high at low per-device load", points[2].MeanPsi)
	}
	h, rows := MultiDeviceRows(points)
	if len(h) != 4 || len(rows) != 3 {
		t.Errorf("rows shape %dx%d", len(h), len(rows))
	}
	if _, err := MultiDevice(cfg, 0.5, []int{0}); err == nil {
		t.Error("zero devices accepted")
	}
}

// TestRunnersParallelismInvariant pins the engine's invariant at the
// experiment layer: every runner produces deep-equal results at
// parallelism 1, 2 and NumCPU for the same seed.
func TestRunnersParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := fastConfig()
	cfg.Systems = 5
	cfg.GA.Population = 12
	cfg.GA.Generations = 8

	at := func(par int) Config {
		c := cfg
		c.Parallelism = par
		return c
	}
	refFig5, err := Fig5(at(1))
	if err != nil {
		t.Fatal(err)
	}
	refPsi, refUps, err := Fig6And7(at(1))
	if err != nil {
		t.Fatal(err)
	}
	refAbl, err := Ablation(at(1), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	refMD, err := MultiDevice(at(1), 0.8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, runtime.NumCPU()} {
		if got, err := Fig5(at(par)); err != nil || !reflect.DeepEqual(refFig5, got) {
			t.Errorf("Fig5 at parallelism %d differs from serial (err=%v)", par, err)
		}
		gotPsi, gotUps, err := Fig6And7(at(par))
		if err != nil || !reflect.DeepEqual(refPsi, gotPsi) || !reflect.DeepEqual(refUps, gotUps) {
			t.Errorf("Fig6And7 at parallelism %d differs from serial (err=%v)", par, err)
		}
		if got, err := Ablation(at(par), 0.6); err != nil || !reflect.DeepEqual(refAbl, got) {
			t.Errorf("Ablation at parallelism %d differs from serial (err=%v)", par, err)
		}
		if got, err := MultiDevice(at(par), 0.8, []int{1, 2, 4}); err != nil || !reflect.DeepEqual(refMD, got) {
			t.Errorf("MultiDevice at parallelism %d differs from serial (err=%v)", par, err)
		}
	}
}

// TestMotivationParallelismInvariant covers the remaining runner: the two
// fanned-out design simulations report identically at every parallelism.
func TestMotivationParallelismInvariant(t *testing.T) {
	cfg := DefaultMotivation()
	cfg.Writes = 30
	cfg.Parallelism = 1
	ref, err := Motivation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, runtime.NumCPU()} {
		cfg.Parallelism = par
		got, err := Motivation(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("motivation at parallelism %d differs from serial", par)
		}
	}
}
