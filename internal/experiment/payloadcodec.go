package experiment

// The built-in experiments' columnar payload codecs for the v2 binary
// shard container (internal/shard/codec.go). Each one packs the
// experiment's typed payload into fixed binary primitives — bool
// bitmasks, raw float bits, varints — instead of per-cell JSON: a fig5
// verdict shrinks from ~70 JSON bytes to one byte, a quality outcome
// from ~40 to 17.
//
// Losslessness is structural, not hoped for: a codec unpacks back into
// the same payload struct json.Marshal produced the JSON from, so the
// re-marshalled bytes are identical whenever the value round-trips the
// binary form bit-exactly (floats travel as raw IEEE bits, nil-ness is
// an explicit flag). The shard encoder additionally verifies every
// packed column against the original compact JSON and falls back to the
// JSON column on any mismatch, so a payload these codecs cannot express
// (foreign fields from another build, non-canonical number spellings)
// costs compression, never correctness.

import (
	"encoding/json"
	"fmt"

	"repro/internal/shard"
	"repro/internal/timing"
	"repro/internal/trace"
)

// columnCodec lifts a typed pack/unpack pair over one payload value into
// a shard.PayloadCodec over a whole column. EncodeColumn rejects any
// payload that does not unmarshal into T (the shard encoder treats that
// as "fall back to JSON", not an error); DecodeColumn re-marshals each
// unpacked value, reproducing the exact compact JSON json.Marshal wrote
// when the cell was computed.
type columnCodec[T any] struct {
	pack   func(w *shard.ColumnWriter, v *T)
	unpack func(r *shard.ColumnReader, v *T) error
}

func (c columnCodec[T]) EncodeColumn(payloads []json.RawMessage) ([]byte, error) {
	w := &shard.ColumnWriter{}
	for i, p := range payloads {
		var v T
		if err := json.Unmarshal(p, &v); err != nil {
			return nil, fmt.Errorf("experiment: payload %d: %w", i, err)
		}
		c.pack(w, &v)
	}
	return w.Bytes(), nil
}

func (c columnCodec[T]) DecodeColumn(data []byte, n int) ([]json.RawMessage, error) {
	r := shard.NewColumnReader(data)
	out := make([]json.RawMessage, n)
	for i := range out {
		var v T
		if err := c.unpack(r, &v); err != nil {
			return nil, fmt.Errorf("experiment: payload %d: %w", i, err)
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("experiment: payload %d: %w", i, err)
		}
		out[i] = b
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("experiment: %d trailing bytes after the last payload", r.Remaining())
	}
	return out, nil
}

// ---- shared qOutcome primitives ----

// qOutcomeSize is a qOutcome's packed size: two raw float64s and a bool
// byte. Count caps for variable-length payloads divide by it.
const qOutcomeSize = 17

func packQOutcome(w *shard.ColumnWriter, q *qOutcome) {
	w.Float64(q.Psi)
	w.Float64(q.Ups)
	w.Bool(q.OK)
}

func unpackQOutcome(r *shard.ColumnReader, q *qOutcome) (err error) {
	if q.Psi, err = r.Float64(); err != nil {
		return err
	}
	if q.Ups, err = r.Float64(); err != nil {
		return err
	}
	q.OK, err = r.Bool()
	return err
}

// ---- per-experiment codecs ----

// fig5PayloadCodec packs the five method verdicts into one bitmask byte.
func fig5PayloadCodec() PayloadCodec {
	return columnCodec[fig5Outcome]{
		pack: func(w *shard.ColumnWriter, v *fig5Outcome) {
			var b byte
			for i, ok := range [...]bool{v.Offline, v.Online, v.GPIOCP, v.Static, v.GA} {
				if ok {
					b |= 1 << i
				}
			}
			w.Byte(b)
		},
		unpack: func(r *shard.ColumnReader, v *fig5Outcome) error {
			b, err := r.Byte()
			if err != nil {
				return err
			}
			if b > 0x1f {
				return fmt.Errorf("experiment: fig5 verdict bits %#x out of range", b)
			}
			v.Offline, v.Online, v.GPIOCP, v.Static, v.GA =
				b&1 != 0, b&2 != 0, b&4 != 0, b&8 != 0, b&16 != 0
			return nil
		},
	}
}

// figqPayloadCodec packs the four per-method quality outcomes.
func figqPayloadCodec() PayloadCodec {
	return columnCodec[figqOutcome]{
		pack: func(w *shard.ColumnWriter, v *figqOutcome) {
			packQOutcome(w, &v.Offline)
			packQOutcome(w, &v.CP)
			packQOutcome(w, &v.Static)
			packQOutcome(w, &v.GA)
		},
		unpack: func(r *shard.ColumnReader, v *figqOutcome) error {
			for _, q := range [...]*qOutcome{&v.Offline, &v.CP, &v.Static, &v.GA} {
				if err := unpackQOutcome(r, q); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// qPayloadCodec packs a single quality outcome (the multidevice cell).
func qPayloadCodec() PayloadCodec {
	return columnCodec[qOutcome]{
		pack:   packQOutcome,
		unpack: unpackQOutcome,
	}
}

// qSlicePayloadCodec packs a variant slice of quality outcomes (the
// ablation cell). nil and empty slices are distinct JSON ("null" vs
// "[]"), so nil-ness travels as an explicit flag.
func qSlicePayloadCodec() PayloadCodec {
	return columnCodec[[]qOutcome]{
		pack: func(w *shard.ColumnWriter, v *[]qOutcome) {
			w.Bool(*v == nil)
			w.Uvarint(uint64(len(*v)))
			for i := range *v {
				packQOutcome(w, &(*v)[i])
			}
		},
		unpack: func(r *shard.ColumnReader, v *[]qOutcome) error {
			isNil, err := r.Bool()
			if err != nil {
				return err
			}
			n, err := r.Int()
			if err != nil {
				return err
			}
			if isNil {
				if n != 0 {
					return fmt.Errorf("experiment: nil variant slice declares %d outcomes", n)
				}
				*v = nil
				return nil
			}
			if n > r.Remaining()/qOutcomeSize {
				return fmt.Errorf("experiment: %d variant outcomes declared, %d bytes remain", n, r.Remaining())
			}
			out := make([]qOutcome, n)
			for i := range out {
				if err := unpackQOutcome(r, &out[i]); err != nil {
					return err
				}
			}
			*v = out
			return nil
		},
	}
}

// tailqPayloadCodec packs the per-job quality census.
func tailqPayloadCodec() PayloadCodec {
	return columnCodec[tailqOutcome]{
		pack: func(w *shard.ColumnWriter, v *tailqOutcome) {
			w.Bool(v.OK)
			w.Varint(int64(v.Jobs))
			w.Varint(int64(v.Exact))
			w.Varint(int64(v.Ge90))
			w.Varint(int64(v.Ge50))
			w.Float64(v.SumUps)
			w.Float64(v.MinUps)
		},
		unpack: func(r *shard.ColumnReader, v *tailqOutcome) error {
			ok, err := r.Bool()
			if err != nil {
				return err
			}
			v.OK = ok
			for _, p := range [...]*int{&v.Jobs, &v.Exact, &v.Ge90, &v.Ge50} {
				n, err := r.Varint()
				if err != nil {
					return err
				}
				*p = int(n)
			}
			if v.SumUps, err = r.Float64(); err != nil {
				return err
			}
			v.MinUps, err = r.Float64()
			return err
		},
	}
}

// jitterPayloadCodec packs the replay jitter census: a bool byte,
// varint counts and percentiles, the raw-bits mean, and the histogram
// as a nil-flagged varint sequence (nil and empty are distinct JSON).
func jitterPayloadCodec() PayloadCodec {
	return columnCodec[jitterOutcome]{
		pack: func(w *shard.ColumnWriter, v *jitterOutcome) {
			w.Bool(v.OK)
			w.Varint(int64(v.Dispatched))
			w.Varint(int64(v.Skipped))
			w.Varint(int64(v.Exact))
			w.Varint(int64(v.Missed))
			w.Varint(int64(v.Devices))
			w.Varint(int64(v.Pinned))
			w.Float64(v.MeanNs)
			w.Varint(v.P50Ns)
			w.Varint(v.P95Ns)
			w.Varint(v.P99Ns)
			w.Varint(v.MaxNs)
			w.Bool(v.Hist == nil)
			w.Uvarint(uint64(len(v.Hist)))
			for _, n := range v.Hist {
				w.Varint(n)
			}
		},
		unpack: func(r *shard.ColumnReader, v *jitterOutcome) error {
			ok, err := r.Bool()
			if err != nil {
				return err
			}
			v.OK = ok
			for _, p := range [...]*int{&v.Dispatched, &v.Skipped, &v.Exact, &v.Missed, &v.Devices, &v.Pinned} {
				n, err := r.Varint()
				if err != nil {
					return err
				}
				*p = int(n)
			}
			if v.MeanNs, err = r.Float64(); err != nil {
				return err
			}
			for _, p := range [...]*int64{&v.P50Ns, &v.P95Ns, &v.P99Ns, &v.MaxNs} {
				if *p, err = r.Varint(); err != nil {
					return err
				}
			}
			isNil, err := r.Bool()
			if err != nil {
				return err
			}
			n, err := r.Int()
			if err != nil {
				return err
			}
			if isNil {
				if n != 0 {
					return fmt.Errorf("experiment: nil jitter histogram declares %d buckets", n)
				}
				v.Hist = nil
				return nil
			}
			// Each histogram varint is at least one byte.
			if n > r.Remaining() {
				return fmt.Errorf("experiment: %d histogram buckets declared, %d bytes remain", n, r.Remaining())
			}
			v.Hist = make([]int64, n)
			for i := range v.Hist {
				if v.Hist[i], err = r.Varint(); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// motivationPayloadCodec packs the simulated accuracy report: nil-ness
// flags for the report pointer and its event slice, per-event label and
// cycle varints, and the summary statistics.
func motivationPayloadCodec() PayloadCodec {
	// An event is at minimum a zero-length label prefix and two one-byte
	// varints; the count cap divides by it.
	const minEventSize = 3
	return columnCodec[motivationOutcome]{
		pack: func(w *shard.ColumnWriter, v *motivationOutcome) {
			w.Bool(v.Report == nil)
			if rep := v.Report; rep != nil {
				w.Bool(rep.Events == nil)
				w.Uvarint(uint64(len(rep.Events)))
				for _, e := range rep.Events {
					w.String(e.Label)
					w.Varint(int64(e.Expected))
					w.Varint(int64(e.Observed))
				}
				w.Varint(int64(rep.Exact))
				w.Varint(int64(rep.MaxDeviation))
				w.Float64(rep.MeanDeviation)
			}
			w.Varint(int64(v.BaseLatency))
		},
		unpack: func(r *shard.ColumnReader, v *motivationOutcome) error {
			noReport, err := r.Bool()
			if err != nil {
				return err
			}
			if !noReport {
				rep := &trace.Report{}
				noEvents, err := r.Bool()
				if err != nil {
					return err
				}
				n, err := r.Int()
				if err != nil {
					return err
				}
				switch {
				case noEvents && n != 0:
					return fmt.Errorf("experiment: nil event slice declares %d events", n)
				case !noEvents:
					if n > r.Remaining()/minEventSize {
						return fmt.Errorf("experiment: %d events declared, %d bytes remain", n, r.Remaining())
					}
					rep.Events = make([]trace.Event, n)
					for i := range rep.Events {
						e := &rep.Events[i]
						if e.Label, err = r.String(); err != nil {
							return err
						}
						exp, err := r.Varint()
						if err != nil {
							return err
						}
						obs, err := r.Varint()
						if err != nil {
							return err
						}
						e.Expected, e.Observed = timing.Cycle(exp), timing.Cycle(obs)
					}
				}
				exact, err := r.Varint()
				if err != nil {
					return err
				}
				rep.Exact = int(exact)
				maxDev, err := r.Varint()
				if err != nil {
					return err
				}
				rep.MaxDeviation = timing.Cycle(maxDev)
				if rep.MeanDeviation, err = r.Float64(); err != nil {
					return err
				}
				v.Report = rep
			}
			base, err := r.Varint()
			if err != nil {
				return err
			}
			v.BaseLatency = timing.Cycle(base)
			return nil
		},
	}
}
