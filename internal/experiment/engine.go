package experiment

// The generic experiment engines: one implementation of run / shard /
// aggregate / partial-aggregate that drives any registered Experiment,
// subsuming the per-figure entry points (Fig5, Fig5Cells, Fig5FromCells,
// Fig5FromCellsPartial and their nineteen siblings — kept as thin
// deprecated wrappers). The determinism invariants hold by construction:
// every cell draws randomness only from its grid path (the experiment's
// CellSeed/Cell hooks), payloads round-trip losslessly through the
// experiment's codec, and FromCells/FromCellsPartial re-enter the exact
// Aggregate hook the in-process Run uses — partial output is the full
// run's aggregation restricted to the present cells.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/cellcache"
	"repro/internal/exec"
	"repro/internal/shard"
)

// get resolves a registered experiment, reporting ErrUnknownExperiment
// for names the registry does not hold.
func get(name string) (Experiment, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiment: %w %q", ErrUnknownExperiment, name)
	}
	return e, nil
}

// Run runs the named experiment in process: it evaluates the full cell
// grid and aggregates it — the same two phases a sharded run splits
// across processes, so in-process, sharded and partial results agree by
// construction, not by parallel maintenance of separate code paths.
func Run(name string, rc RunContext) (Result, error) {
	e, err := get(name)
	if err != nil {
		return nil, err
	}
	if e.Codec().New == nil {
		// Closed-form: no grid, nothing to fan out.
		return e.Aggregate(rc, nil, nil)
	}
	cells, _, err := runCells(e, rc, nil)
	if err != nil {
		return nil, err
	}
	return fromCells(e, rc, cells)
}

// RunCells evaluates the selected cells of the named experiment's grid
// (nil selects all) and returns them as shard cells with their derived
// seeds recorded — the generic engine under the legacy *Cells functions
// and the shard workflow.
func RunCells(name string, rc RunContext, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	e, err := get(name)
	if err != nil {
		return nil, shard.Grid{}, err
	}
	return runCells(e, rc, sel)
}

func runCells(e Experiment, rc RunContext, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	g, err := e.Grid(rc)
	if err != nil {
		return nil, g, err
	}
	if e.Codec().New == nil {
		return nil, g, fmt.Errorf("experiment: %q is a closed-form model with no cell grid", e.Name())
	}
	// A non-reproducible experiment's payloads measure the host, so the
	// cache — whose contract is "a hit's bytes equal a recomputation's"
	// — can neither serve nor store them: the cache is bypassed, never
	// poisoned.
	if rc.Cache != nil && Reproducible(e) {
		return runCellsCached(e, rc, g, sel)
	}
	refs, vals, err := gridSubset(rc.Config.Parallelism, g.Points, g.Systems, sel,
		func(o, i int) (any, error) { return e.Cell(rc, o, i) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(o, i int) int64 { return e.CellSeed(rc, o, i) })
	return cells, g, err
}

// runCellsCached is runCells with the context's cell cache consulted
// first: cached cells are reused verbatim (their recorded seed must match
// the seed this run derives, or they read as misses), only the frontier —
// the selected cells the cache does not hold — is computed, and every
// computed cell is deposited back. The returned cells are byte-identical
// to an uncached run's: a hit's payload bytes were marshalled by an
// earlier run of the very same deterministic cell computation.
func runCellsCached(e Experiment, rc RunContext, g shard.Grid, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	key, err := cacheKey(e, rc)
	if err != nil {
		return nil, g, err
	}
	refs := make([]cellRef, 0, g.Cells())
	for o := 0; o < g.Points; o++ {
		for i := 0; i < g.Systems; i++ {
			if sel == nil || sel(o, i) {
				refs = append(refs, cellRef{o, i})
			}
		}
	}
	cells := make([]shard.Cell, len(refs))
	var frontier []int // indices into refs the cache does not cover
	for k, r := range refs {
		seed := e.CellSeed(rc, r.o, r.i)
		if data, ok := rc.Cache.Get(key, r.o, r.i, seed); ok {
			cells[k] = shard.Cell{Point: r.o, System: r.i, Seed: seed, Data: data}
		} else {
			frontier = append(frontier, k)
		}
	}
	vals, err := exec.Map(exec.New(rc.Config.Parallelism), context.Background(), len(frontier),
		func(_ context.Context, m int) (any, error) {
			r := refs[frontier[m]]
			return e.Cell(rc, r.o, r.i)
		})
	if err != nil {
		return nil, g, err
	}
	for m, k := range frontier {
		r := refs[k]
		data, err := json.Marshal(vals[m])
		if err != nil {
			return nil, g, fmt.Errorf("experiment: encode cell (%d,%d): %w", r.o, r.i, err)
		}
		seed := e.CellSeed(rc, r.o, r.i)
		cells[k] = shard.Cell{Point: r.o, System: r.i, Seed: seed, Data: data}
		// Deposits are best-effort: a full or read-only cache directory
		// must not fail the run it merely accelerates.
		_ = rc.Cache.Put(key, r.o, r.i, seed, data)
	}
	return cells, g, nil
}

// cacheKey derives the context's cache namespace for e: the experiment's
// cell-grid identity (CellKey — Figures 6 and 7 share entries exactly as
// they share one computation), the canonical JSON of the normalised
// params, and the payload layout version (bumping the codec orphans the
// old entries).
func cacheKey(e Experiment, rc RunContext) (cellcache.Key, error) {
	params, err := json.Marshal(rc.Params)
	if err != nil {
		return cellcache.Key{}, fmt.Errorf("experiment: encode params: %w", err)
	}
	return cellcache.RunKey(e.CellKey(), params, e.Codec().Version), nil
}

// FromCells rebuilds the named experiment's result from a complete
// (merged) cell set, via the exact Aggregate hook the in-process run
// uses. Incomplete, duplicated, out-of-range or undecodable cells are
// rejected.
func FromCells(name string, rc RunContext, cells []shard.Cell) (Result, error) {
	e, err := get(name)
	if err != nil {
		return nil, err
	}
	return fromCells(e, rc, cells)
}

func fromCells(e Experiment, rc RunContext, cells []shard.Cell) (Result, error) {
	if e.Codec().New == nil {
		return e.Aggregate(rc, nil, nil)
	}
	g, err := e.Grid(rc)
	if err != nil {
		return nil, err
	}
	at, _, cov, err := decodeCells(e, g, cells)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Name(), err)
	}
	if !cov.Complete() {
		return nil, fmt.Errorf("%s: experiment: %d cells for a %dx%d grid", e.Name(), len(cells), g.Points, g.Systems)
	}
	return e.Aggregate(rc, at, nil)
}

// FromCellsPartial rebuilds a provisional result from any subset of the
// named experiment's grid cells, alongside an exact Coverage report: the
// full run's aggregation restricted to the present cells. A complete
// subset returns the same result as FromCells; a nil result (with nil
// error) means the experiment has no provisional result for the subset.
func FromCellsPartial(name string, rc RunContext, cells []shard.Cell) (Result, Coverage, error) {
	e, err := get(name)
	if err != nil {
		return nil, Coverage{}, err
	}
	if e.Codec().New == nil {
		// Closed-form experiments render in full from any cover.
		res, err := e.Aggregate(rc, nil, nil)
		return res, Coverage{}, err
	}
	g, err := e.Grid(rc)
	if err != nil {
		return nil, Coverage{}, err
	}
	at, has, cov, err := decodeCells(e, g, cells)
	if err != nil {
		return nil, Coverage{}, fmt.Errorf("%s: %w", e.Name(), err)
	}
	res, err := e.Aggregate(rc, at, has)
	if err != nil {
		return nil, Coverage{}, err
	}
	return res, cov, nil
}

// CellCoverage reports how much of the named experiment's grid a cell
// subset covers, validating positions without decoding payloads.
func CellCoverage(name string, rc RunContext, cells []shard.Cell) (Coverage, error) {
	e, err := get(name)
	if err != nil {
		return Coverage{}, err
	}
	g, err := e.Grid(rc)
	if err != nil {
		return Coverage{}, err
	}
	cov := Coverage{Total: g.Cells(), PointHave: make([]int, g.Points), Inner: g.Systems}
	present := make([]bool, g.Cells())
	for _, c := range cells {
		idx, err := g.Index(c.Point, c.System)
		if err != nil {
			return Coverage{}, fmt.Errorf("%s: experiment: %w", name, err)
		}
		if present[idx] {
			return Coverage{}, fmt.Errorf("%s: experiment: cell (%d,%d) appears twice", name, c.Point, c.System)
		}
		present[idx] = true
		cov.Have++
		cov.PointHave[c.Point]++
	}
	return cov, nil
}

// decodeCells decodes an arbitrary subset of a grid's cells through the
// experiment's codec into a sparse payload grid with a presence map and
// its coverage. Duplicated, out-of-range and undecodable cells are
// rejected — a partial result must be an honest subset of the full run,
// never a guess.
func decodeCells(e Experiment, g shard.Grid, cells []shard.Cell) (at func(o, i int) any, has func(o, i int) bool, cov Coverage, err error) {
	codec := e.Codec()
	cov = Coverage{Total: g.Cells(), PointHave: make([]int, g.Points), Inner: g.Systems}
	if len(cells) > g.Cells() {
		return nil, nil, Coverage{}, fmt.Errorf("experiment: %d cells for a %dx%d grid", len(cells), g.Points, g.Systems)
	}
	payloads := make([]any, g.Cells())
	present := make([]bool, g.Cells())
	for _, c := range cells {
		idx, err := g.Index(c.Point, c.System)
		if err != nil {
			return nil, nil, Coverage{}, fmt.Errorf("experiment: %w", err)
		}
		if present[idx] {
			return nil, nil, Coverage{}, fmt.Errorf("experiment: cell (%d,%d) appears twice", c.Point, c.System)
		}
		present[idx] = true
		cov.Have++
		cov.PointHave[c.Point]++
		p := codec.New()
		if err := json.Unmarshal(c.Data, p); err != nil {
			return nil, nil, Coverage{}, fmt.Errorf("experiment: decode cell (%d,%d): %w", c.Point, c.System, err)
		}
		payloads[idx] = p
	}
	at = func(o, i int) any { return payloads[o*g.Systems+i] }
	has = func(o, i int) bool { return present[o*g.Systems+i] }
	return at, has, cov, nil
}

// ValidateRuns checks a shard file's run headers against the registry:
// every run must name a registered experiment, carry the grid the
// recorded params produce, and a payload version the experiment's codec
// reads (0 — written before versions were recorded — is accepted).
// Dispatch drivers call it before accepting a worker's output, so a
// worker built against a different payload layout is retried, not
// merged.
func ValidateRuns(f *shard.File, p ShardParams) error {
	rc := p.Context(1)
	for _, r := range f.Runs {
		e, ok := Lookup(r.Experiment)
		if !ok {
			return fmt.Errorf("experiment: %w %q in shard file", ErrUnknownExperiment, r.Experiment)
		}
		g, err := e.Grid(rc)
		if err != nil {
			return err
		}
		if r.Grid != g {
			return fmt.Errorf("experiment: run %q records grid %dx%d, the params produce %dx%d",
				r.Experiment, r.Grid.Points, r.Grid.Systems, g.Points, g.Systems)
		}
		if v := e.Codec().Version; r.PayloadVersion != 0 && r.PayloadVersion != v {
			return fmt.Errorf("experiment: run %q records payload version %d, this build reads %d",
				r.Experiment, r.PayloadVersion, v)
		}
	}
	return nil
}
