package experiment

import (
	"reflect"
	"testing"

	"repro/internal/shard"
)

// partialSubset picks the cells a subset of round-robin shards owns, as a
// partial merge over those shard files would deliver them.
func partialSubset(cells []shard.Cell, g shard.Grid, shards int, present ...int) []shard.Cell {
	in := make(map[int]bool)
	for _, i := range present {
		in[i] = true
	}
	var out []shard.Cell
	for _, c := range cells {
		if in[(c.Point*g.Systems+c.System)%shards] {
			out = append(out, c)
		}
	}
	return out
}

// TestPartialAggregatorsConvergeToComplete is the experiment-layer half of
// the streaming invariant: aggregating the complete cell set through the
// partial path is deep-equal to the complete FromCells path, and strict
// subsets report exact coverage.
func TestPartialAggregatorsConvergeToComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	cfg := p.Config()
	mcfg := p.Motivation()
	mdU, mdCounts := p.ResolvedMultiDevice()

	t.Run("fig5", func(t *testing.T) {
		cells, g, err := Fig5Cells(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Fig5FromCells(cfg, cells)
		if err != nil {
			t.Fatal(err)
		}
		got, cov, err := Fig5FromCellsPartial(cfg, cells)
		if err != nil || !cov.Complete() || !reflect.DeepEqual(ref, got) {
			t.Fatalf("complete partial differs (cov=%v, err=%v)", cov, err)
		}
		sub := partialSubset(cells, g, 3, 0, 2)
		res, cov, err := Fig5FromCellsPartial(cfg, sub)
		if err != nil {
			t.Fatal(err)
		}
		if cov.Complete() || cov.Have != len(sub) || cov.Total != g.Cells() {
			t.Fatalf("coverage = %+v for %d of %d cells", cov, len(sub), g.Cells())
		}
		havePoints := 0
		for p := range cov.PointHave {
			havePoints += cov.PointHave[p]
		}
		if havePoints != cov.Have {
			t.Fatalf("per-point coverage sums to %d, want %d", havePoints, cov.Have)
		}
		// Every rate must be an honest estimate over the present systems.
		for pi, point := range res.Points {
			for _, m := range Fig5Methods {
				if tr := point.Rates[m].Trials; tr != cov.PointHave[pi] {
					t.Fatalf("point %d method %s trials = %d, want %d", pi, m, tr, cov.PointHave[pi])
				}
			}
		}
	})

	t.Run("figq", func(t *testing.T) {
		cells, g, err := FigQCells(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		refPsi, refUps, err := FigQFromCells(cfg, cells)
		if err != nil {
			t.Fatal(err)
		}
		gotPsi, gotUps, cov, err := FigQFromCellsPartial(cfg, cells)
		if err != nil || !cov.Complete() ||
			!reflect.DeepEqual(refPsi, gotPsi) || !reflect.DeepEqual(refUps, gotUps) {
			t.Fatalf("complete partial differs (cov=%v, err=%v)", cov, err)
		}
		sub := partialSubset(cells, g, 4, 1)
		psi, _, cov, err := FigQFromCellsPartial(cfg, sub)
		if err != nil || cov.Complete() || cov.Have != len(sub) {
			t.Fatalf("subset coverage = %+v, err=%v", cov, err)
		}
		for pi, point := range psi.Points {
			n := 0
			for _, m := range FigQMethods {
				n += point.N[m]
			}
			if n > len(FigQMethods)*cov.PointHave[pi] {
				t.Fatalf("point %d samples %d exceed present cells %d", pi, n, cov.PointHave[pi])
			}
		}
	})

	t.Run("motivation", func(t *testing.T) {
		cells, g, err := MotivationCells(mcfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := MotivationFromCells(mcfg, cells)
		if err != nil {
			t.Fatal(err)
		}
		got, cov, err := MotivationFromCellsPartial(mcfg, cells)
		if err != nil || !cov.Complete() || !reflect.DeepEqual(ref, got) {
			t.Fatalf("complete partial differs (cov=%v, err=%v)", cov, err)
		}
		half := partialSubset(cells, g, 2, 0)
		res, cov, err := MotivationFromCellsPartial(mcfg, half)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil || cov.Complete() || cov.Have != 1 {
			t.Fatalf("half cover yielded result=%v coverage=%+v", res, cov)
		}
	})

	t.Run("ablation", func(t *testing.T) {
		cells, g, err := AblationCells(cfg, p.ResolvedAblationU(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AblationFromCells(cfg, cells)
		if err != nil {
			t.Fatal(err)
		}
		got, cov, err := AblationFromCellsPartial(cfg, cells)
		if err != nil || !cov.Complete() || !reflect.DeepEqual(ref, got) {
			t.Fatalf("complete partial differs (cov=%v, err=%v)", cov, err)
		}
		sub := partialSubset(cells, g, 2, 1)
		res, cov, err := AblationFromCellsPartial(cfg, sub)
		if err != nil || cov.Complete() {
			t.Fatalf("subset coverage = %+v, err=%v", cov, err)
		}
		for _, r := range res {
			if r.Schedulable.Trials != cov.Have {
				t.Fatalf("variant %q trials = %d, want %d", r.Name, r.Schedulable.Trials, cov.Have)
			}
		}
	})

	t.Run("multidevice", func(t *testing.T) {
		cells, g, err := MultiDeviceCells(cfg, mdU, mdCounts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := MultiDeviceFromCells(cfg, mdCounts, cells)
		if err != nil {
			t.Fatal(err)
		}
		got, cov, err := MultiDeviceFromCellsPartial(cfg, mdCounts, cells)
		if err != nil || !cov.Complete() || !reflect.DeepEqual(ref, got) {
			t.Fatalf("complete partial differs (cov=%v, err=%v)", cov, err)
		}
		sub := partialSubset(cells, g, 3, 0)
		res, cov, err := MultiDeviceFromCellsPartial(cfg, mdCounts, sub)
		if err != nil || cov.Complete() {
			t.Fatalf("subset coverage = %+v, err=%v", cov, err)
		}
		for di, r := range res {
			if r.Schedulable.Trials != cov.PointHave[di] {
				t.Fatalf("point %d trials = %d, want %d", di, r.Schedulable.Trials, cov.PointHave[di])
			}
		}
	})
}

func TestPartialAggregatorsRejectBadSets(t *testing.T) {
	mcfg := DefaultMotivation()
	mcfg.Writes = 10
	cells, _, err := MotivationCells(mcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MotivationFromCellsPartial(mcfg, []shard.Cell{cells[0], cells[0]}); err == nil {
		t.Error("duplicate cell accepted")
	}
	oob := cells[0]
	oob.System = 7
	if _, _, err := MotivationFromCellsPartial(mcfg, []shard.Cell{oob}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	bad := cells[0]
	bad.Data = []byte(`{"report":`)
	if _, _, err := MotivationFromCellsPartial(mcfg, []shard.Cell{bad}); err == nil {
		t.Error("corrupt payload accepted")
	}
	// The empty subset is a valid (if useless) partial cover.
	if _, cov, err := MotivationFromCellsPartial(mcfg, nil); err != nil || cov.Have != 0 {
		t.Errorf("empty subset: cov=%+v err=%v", cov, err)
	}
}

func TestCoverageRendering(t *testing.T) {
	c := Coverage{Have: 40, Total: 60, PointHave: []int{4, 0, 6}, Inner: 6}
	if c.Complete() || c.Fraction() < 0.66 || c.Fraction() > 0.67 {
		t.Errorf("coverage = %+v", c)
	}
	if got := c.String(); got != "40/60 cells (66.7%)" {
		t.Errorf("String() = %q", got)
	}
	if got := c.Point(1); got != "0/6" {
		t.Errorf("Point(1) = %q", got)
	}
	full := Coverage{Have: 0, Total: 0}
	if !full.Complete() || full.Fraction() != 1 {
		t.Errorf("empty grid coverage = %+v", full)
	}
}
