// Package experiment is the pluggable registry of the paper's studies —
// and of any study added since. Each experiment (docs/EXPERIMENTS.md)
// is one Experiment value registered under its CLI/shard-file name:
//
//	fig5        — schedulable fraction vs utilisation for the five methods
//	fig6, fig7  — Ψ and Υ vs utilisation for the four offline methods
//	              (one shared cell grid, two aggregations)
//	table1      — hardware cost of the controller designs (closed-form)
//	motivation  — remote-write jitter over the NoC vs pre-loaded controller
//	ablation    — design-choice variants of the static and GA schedulers
//	multidevice — partitioned-controller scaling with device count
//	tailq       — per-job quality tail distribution (the registry's worked
//	              extensibility example: registered, never plumbed)
//
// The generic engines drive any registered experiment: Run evaluates
// and aggregates in process, RunCells/RunShard evaluate arbitrary cell
// subsets for cross-process sharding, FromCells rebuilds exact results
// from complete merged sets, and FromCellsPartial renders provisional
// results from any subset with an exact Coverage report — the same
// Aggregate hook on every path, restricted to the present cells, so
// partial output converges byte-identically to the full run's once the
// cover completes. The per-figure entry points (Fig5, Fig5Cells,
// Fig5FromCells, Fig5FromCellsPartial and their siblings) remain as
// deprecated wrappers over the engines, pinned byte-identical by the
// registry-equivalence tests.
//
// Every experiment is deterministic given its seed: cells derive their
// randomness from their (experiment, point, system) grid path via
// exec.DeriveSeed, aggregation folds in grid order with fixed-order
// float sums, and payloads round-trip losslessly through each
// experiment's versioned codec. The paper's full scale (1000 systems
// per point, GA population 300 × 500 generations) is reproduced by
// PaperScale; the defaults are a calibrated scaled-down configuration
// that preserves every qualitative relationship and finishes in seconds
// (docs/EXPERIMENTS.md records both).
package experiment
