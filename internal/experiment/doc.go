// Package experiment contains one runner per table and figure of the
// paper's evaluation (Section V), plus the motivation latency experiment
// and the ablation studies:
//
//	Fig5       — schedulable fraction vs utilisation for the five methods
//	Fig6And7   — Ψ and Υ vs utilisation for the four offline methods
//	Table1     — hardware cost of the controller designs (via hwcost)
//	Motivation — remote-write jitter over the NoC vs pre-loaded controller
//	Ablation   — design-choice variants of the static and GA schedulers
//
// Every runner is deterministic given Config.Seed. The paper's full scale
// (1000 systems per point, GA population 300 × 500 generations) is
// reproduced by setting the corresponding Config fields; the defaults are
// a calibrated scaled-down configuration that preserves every qualitative
// relationship and finishes in seconds (EXPERIMENTS.md records both).
//
// Every grid runner is split into a per-cell computation and a
// grid-order aggregation (see shards.go), which is what the shard,
// dispatch and streaming layers build on: the *Cells functions evaluate
// arbitrary cell subsets for cross-process sharding, the *FromCells
// aggregators rebuild exact results from complete merged sets, and the
// *FromCellsPartial aggregators (partial.go) render provisional results
// from any subset with an exact Coverage report — same aggregation code,
// restricted to the present cells, so partial output converges
// byte-identically to the full run's once the cover completes.
package experiment
