package experiment

// Streaming/partial aggregation: FromCellsPartial (engine.go) accepts
// any subset of a run's grid cells — typically the contents of a
// shard.PartialCover built from whichever shard files exist — and
// renders provisional results over the present cells only, alongside an
// exact Coverage report. It re-enters the same Aggregate hook the
// complete FromCells path uses with a presence predicate, so a complete
// cell set produces results identical to the full run's: partial output
// converges to, never diverges from, the final figures. The per-figure
// *FromCellsPartial functions survive below as thin deprecated wrappers.

import (
	"fmt"

	"repro/internal/shard"
)

// Coverage reports how much of a run's grid a partial cell set covers.
type Coverage struct {
	// Have and Total count present cells against the full grid.
	Have, Total int
	// PointHave[p] counts the present cells at outer grid point p; each
	// point has Inner cells in the full grid.
	PointHave []int
	// Inner is the grid's inner dimension (systems per point).
	Inner int
}

// Complete reports whether every cell of the grid is present.
func (c Coverage) Complete() bool { return c.Have == c.Total }

// Fraction returns the covered fraction of the grid, in [0, 1].
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Have) / float64(c.Total)
}

// String renders the coverage as "have/total cells (pct%)".
func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d cells (%.1f%%)", c.Have, c.Total, 100*c.Fraction())
}

// Point renders one outer point's coverage as "have/inner" for per-row
// table annotations.
func (c Coverage) Point(p int) string {
	return fmt.Sprintf("%d/%d", c.PointHave[p], c.Inner)
}

// Fig5FromCellsPartial rebuilds a provisional Figure 5 result from any
// subset of the grid's cells: every rate is computed over the present
// systems at its point, and the coverage names exactly what is missing.
// A complete subset returns the same result as Fig5FromCells.
//
// Deprecated: use FromCellsPartial(ExpFig5, …); this forwards to it.
func Fig5FromCellsPartial(cfg Config, cells []shard.Cell) (*Fig5Result, Coverage, error) {
	res, cov, err := FromCellsPartial(ExpFig5, contextFor(cfg), cells)
	if err != nil {
		return nil, Coverage{}, err
	}
	return res.(*Fig5Result), cov, nil
}

// FigQFromCellsPartial rebuilds provisional Figure 6 (Ψ) and Figure 7 (Υ)
// results from any subset of the shared grid's cells. A complete subset
// returns the same results as FigQFromCells.
//
// Deprecated: use FromCellsPartial(ExpFig6, …) and FromCellsPartial(
// ExpFig7, …); this forwards to their shared decode and aggregation.
func FigQFromCellsPartial(cfg Config, cells []shard.Cell) (*FigQResult, *FigQResult, Coverage, error) {
	return figqPair(contextFor(cfg), cells)
}

// MotivationFromCellsPartial reports the motivation experiment's coverage
// for any subset of its 1 × 2 design grid. The experiment is a two-design
// comparison, so a provisional result only exists once both designs are
// present — until then the result is nil and the coverage says which half
// is done.
//
// Deprecated: use FromCellsPartial(ExpMotivation, …); this forwards to
// it.
func MotivationFromCellsPartial(cfg MotivationConfig, cells []shard.Cell) (*MotivationResult, Coverage, error) {
	res, cov, err := FromCellsPartial(ExpMotivation, motivationContext(cfg), cells)
	if err != nil {
		return nil, Coverage{}, err
	}
	if res == nil {
		return nil, cov, nil
	}
	return res.(*MotivationResult), cov, nil
}

// AblationFromCellsPartial rebuilds a provisional ablation study from any
// subset of its 1 × Systems grid: every variant's means run over the
// present systems. A complete subset returns the same results as
// AblationFromCells.
//
// Deprecated: use FromCellsPartial(ExpAblation, …); this forwards to it.
func AblationFromCellsPartial(cfg Config, cells []shard.Cell) ([]AblationResult, Coverage, error) {
	res, cov, err := FromCellsPartial(ExpAblation, contextFor(cfg), cells)
	if err != nil {
		return nil, Coverage{}, err
	}
	return res.(AblationStudy), cov, nil
}

// MultiDeviceFromCellsPartial rebuilds a provisional scaling study from
// any subset of its device-counts × systems grid. A complete subset
// returns the same results as MultiDeviceFromCells.
//
// Deprecated: use FromCellsPartial(ExpMultiDevice, …); this forwards to
// it.
func MultiDeviceFromCellsPartial(cfg Config, deviceCounts []int, cells []shard.Cell) ([]MultiDevicePoint, Coverage, error) {
	rc := contextFor(cfg)
	rc.Params.MultiDeviceCounts = deviceCounts
	res, cov, err := FromCellsPartial(ExpMultiDevice, rc, cells)
	if err != nil {
		return nil, Coverage{}, err
	}
	return res.(MultiDeviceResult), cov, nil
}
