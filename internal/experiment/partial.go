package experiment

// Streaming/partial aggregation: the *FromCellsPartial functions accept
// any subset of a run's grid cells — typically the contents of a
// shard.PartialCover built from whichever shard files exist — and render
// provisional results over the present cells only, alongside an exact
// Coverage report. They re-enter the same aggregation code as the
// complete *FromCells functions with a presence predicate, so a complete
// cell set produces results identical to the full run's: partial output
// converges to, never diverges from, the final figures.

import (
	"fmt"

	"repro/internal/shard"
)

// Coverage reports how much of a run's grid a partial cell set covers.
type Coverage struct {
	// Have and Total count present cells against the full grid.
	Have, Total int
	// PointHave[p] counts the present cells at outer grid point p; each
	// point has Inner cells in the full grid.
	PointHave []int
	// Inner is the grid's inner dimension (systems per point).
	Inner int
}

// Complete reports whether every cell of the grid is present.
func (c Coverage) Complete() bool { return c.Have == c.Total }

// Fraction returns the covered fraction of the grid, in [0, 1].
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Have) / float64(c.Total)
}

// String renders the coverage as "have/total cells (pct%)".
func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d cells (%.1f%%)", c.Have, c.Total, 100*c.Fraction())
}

// Point renders one outer point's coverage as "have/inner" for per-row
// table annotations.
func (c Coverage) Point(p int) string {
	return fmt.Sprintf("%d/%d", c.PointHave[p], c.Inner)
}

// cellsToPartialGrid decodes an arbitrary subset of a grid's cells into a
// sparse grid with a presence map and its coverage. Duplicated,
// out-of-range and undecodable cells are rejected — a partial result must
// be an honest subset of the full run, never a guess.
func cellsToPartialGrid[T any](g shard.Grid, cells []shard.Cell) (grid[T], func(o, i int) bool, Coverage, error) {
	cov := Coverage{Total: g.Cells(), PointHave: make([]int, g.Points), Inner: g.Systems}
	out := grid[T]{inner: g.Systems, cells: make([]T, g.Cells())}
	present := make([]bool, g.Cells())
	if len(cells) > g.Cells() {
		return grid[T]{}, nil, Coverage{}, fmt.Errorf("experiment: %d cells for a %dx%d grid", len(cells), g.Points, g.Systems)
	}
	for _, c := range cells {
		idx, err := g.Index(c.Point, c.System)
		if err != nil {
			return grid[T]{}, nil, Coverage{}, fmt.Errorf("experiment: %w", err)
		}
		if present[idx] {
			return grid[T]{}, nil, Coverage{}, fmt.Errorf("experiment: cell (%d,%d) appears twice", c.Point, c.System)
		}
		present[idx] = true
		cov.Have++
		cov.PointHave[c.Point]++
		if err := unmarshalCell(c, &out.cells[idx]); err != nil {
			return grid[T]{}, nil, Coverage{}, err
		}
	}
	has := func(o, i int) bool { return present[o*g.Systems+i] }
	return out, has, cov, nil
}

// Fig5FromCellsPartial rebuilds a provisional Figure 5 result from any
// subset of the grid's cells: every rate is computed over the present
// systems at its point, and the coverage names exactly what is missing.
// A complete subset returns the same result as Fig5FromCells.
func Fig5FromCellsPartial(cfg Config, cells []shard.Cell) (*Fig5Result, Coverage, error) {
	us := Fig5Utils()
	g, has, cov, err := cellsToPartialGrid[fig5Outcome](shard.Grid{Points: len(us), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, Coverage{}, fmt.Errorf("fig5: %w", err)
	}
	return fig5Aggregate(cfg, us, g.at, has), cov, nil
}

// FigQFromCellsPartial rebuilds provisional Figure 6 (Ψ) and Figure 7 (Υ)
// results from any subset of the shared grid's cells. A complete subset
// returns the same results as FigQFromCells.
func FigQFromCellsPartial(cfg Config, cells []shard.Cell) (*FigQResult, *FigQResult, Coverage, error) {
	us := FigQUtils()
	g, has, cov, err := cellsToPartialGrid[figqOutcome](shard.Grid{Points: len(us), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, nil, Coverage{}, fmt.Errorf("fig6/7: %w", err)
	}
	psi, ups := figqAggregate(cfg, us, g.at, has)
	return psi, ups, cov, nil
}

// MotivationFromCellsPartial reports the motivation experiment's coverage
// for any subset of its 1 × 2 design grid. The experiment is a two-design
// comparison, so a provisional result only exists once both designs are
// present — until then the result is nil and the coverage says which half
// is done.
func MotivationFromCellsPartial(cfg MotivationConfig, cells []shard.Cell) (*MotivationResult, Coverage, error) {
	g, _, cov, err := cellsToPartialGrid[motivationOutcome](shard.Grid{Points: 1, Systems: motivationDesigns}, cells)
	if err != nil {
		return nil, Coverage{}, fmt.Errorf("motivation: %w", err)
	}
	if !cov.Complete() {
		return nil, cov, nil
	}
	return motivationAggregate(g.at), cov, nil
}

// AblationFromCellsPartial rebuilds a provisional ablation study from any
// subset of its 1 × Systems grid: every variant's means run over the
// present systems. A complete subset returns the same results as
// AblationFromCells.
func AblationFromCellsPartial(cfg Config, cells []shard.Cell) ([]AblationResult, Coverage, error) {
	g, has, cov, err := cellsToPartialGrid[[]qOutcome](shard.Grid{Points: 1, Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, Coverage{}, fmt.Errorf("ablation: %w", err)
	}
	return ablationAggregate(cfg, g.at, has), cov, nil
}

// MultiDeviceFromCellsPartial rebuilds a provisional scaling study from
// any subset of its device-counts × systems grid. A complete subset
// returns the same results as MultiDeviceFromCells.
func MultiDeviceFromCellsPartial(cfg Config, deviceCounts []int, cells []shard.Cell) ([]MultiDevicePoint, Coverage, error) {
	g, has, cov, err := cellsToPartialGrid[qOutcome](shard.Grid{Points: len(deviceCounts), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, Coverage{}, fmt.Errorf("multidevice: %w", err)
	}
	return multiDeviceAggregate(cfg, deviceCounts, g.at, has), cov, nil
}
