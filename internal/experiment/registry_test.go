package experiment

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/shard"
)

// TestRegistryCanonicalOrder pins the registration order the shard
// files, the CLI's "all" selection and the listings all follow. The
// built-ins register from registry.go's init; jitter and tailq append
// themselves from their own files' inits (file order within the
// package: replayjitter.go, then tailq.go), which is exactly the
// extension contract docs/EXPERIMENTS.md documents.
func TestRegistryCanonicalOrder(t *testing.T) {
	want := []string{ExpFig5, ExpFig6, ExpFig7, ExpTable1, ExpMotivation, ExpAblation, ExpMultiDevice, ExpJitter, ExpTailQ}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	wantGrid := []string{ExpFig5, ExpFig6, ExpFig7, ExpMotivation, ExpAblation, ExpMultiDevice, ExpJitter, ExpTailQ}
	if got := GridExperiments(); !reflect.DeepEqual(got, wantGrid) {
		t.Fatalf("GridExperiments() = %v, want %v", got, wantGrid)
	}
	// The "all" selection is the grid list minus the non-reproducible
	// experiments: jitter only runs when named.
	wantAll := []string{ExpFig5, ExpFig6, ExpFig7, ExpMotivation, ExpAblation, ExpMultiDevice, ExpTailQ}
	if got := ReproducibleGridExperiments(); !reflect.DeepEqual(got, wantAll) {
		t.Fatalf("ReproducibleGridExperiments() = %v, want %v", got, wantAll)
	}
	if got, err := SelectionRuns(ExpAll); err != nil || !reflect.DeepEqual(got, wantAll) {
		t.Fatalf("SelectionRuns(all) = %v, %v, want %v", got, err, wantAll)
	}
	for _, name := range want {
		e, _ := Lookup(name)
		if got, wantRepro := Reproducible(e), name != ExpJitter; got != wantRepro {
			t.Errorf("Reproducible(%s) = %v, want %v", name, got, wantRepro)
		}
	}
	if SelectionReproducible(ExpJitter) || !SelectionReproducible(ExpAll) || !SelectionReproducible(ExpTailQ) {
		t.Error("SelectionReproducible misclassifies a selection")
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok || e.Name() != name {
			t.Errorf("Lookup(%q) = %v, %v", name, e, ok)
		}
		if e.Describe() == "" {
			t.Errorf("%s has no description", name)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
}

// mustJSON renders a result for byte comparison; registry equivalence is
// asserted on encoded bytes, not DeepEqual, because byte identity is the
// contract the CLI diff jobs rely on.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLegacyEntryPointsMatchGenericPath is the registry-equivalence
// suite: every legacy per-figure entry point — the in-process runners,
// the *Cells evaluators, and the *FromCells / *FromCellsPartial
// aggregators — produces results byte-identical to its generic
// registry-path equivalent, for parallelism ∈ {1, NumCPU} and the cells
// assembled from shard counts ∈ {1, 3}.
func TestLegacyEntryPointsMatchGenericPath(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	for _, par := range []int{1, runtime.NumCPU()} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			rc := p.Context(par)
			cfg := rc.Config
			mcfg := rc.Motivation

			// In-process runners vs the generic Run engine.
			legacyFig5, err := Fig5(cfg)
			if err != nil {
				t.Fatal(err)
			}
			genericFig5, err := Run(ExpFig5, rc)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, legacyFig5) != mustJSON(t, genericFig5) {
				t.Error("Fig5 differs from Run(fig5)")
			}
			legacyPsi, legacyUps, err := Fig6And7(cfg)
			if err != nil {
				t.Fatal(err)
			}
			genericPsi, err := Run(ExpFig6, rc)
			if err != nil {
				t.Fatal(err)
			}
			genericUps, err := Run(ExpFig7, rc)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, legacyPsi) != mustJSON(t, genericPsi) || mustJSON(t, legacyUps) != mustJSON(t, genericUps) {
				t.Error("Fig6And7 differs from Run(fig6)/Run(fig7)")
			}
			legacyMot, err := Motivation(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			genericMot, err := Run(ExpMotivation, rc)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, legacyMot) != mustJSON(t, genericMot) {
				t.Error("Motivation differs from Run(motivation)")
			}
			legacyAbl, err := Ablation(cfg, p.ResolvedAblationU())
			if err != nil {
				t.Fatal(err)
			}
			genericAbl, err := Run(ExpAblation, rc)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, legacyAbl) != mustJSON(t, genericAbl) {
				t.Error("Ablation differs from Run(ablation)")
			}
			mdU, mdCounts := p.ResolvedMultiDevice()
			legacyMD, err := MultiDevice(cfg, mdU, mdCounts)
			if err != nil {
				t.Fatal(err)
			}
			genericMD, err := Run(ExpMultiDevice, rc)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, legacyMD) != mustJSON(t, genericMD) {
				t.Error("MultiDevice differs from Run(multidevice)")
			}

			// Cell evaluators: legacy *Cells vs generic RunCells, encoded.
			type cellsFn struct {
				name    string
				legacy  func() ([]shard.Cell, shard.Grid, error)
				generic string
			}
			for _, cf := range []cellsFn{
				{"Fig5Cells", func() ([]shard.Cell, shard.Grid, error) { return Fig5Cells(cfg, nil) }, ExpFig5},
				{"FigQCells", func() ([]shard.Cell, shard.Grid, error) { return FigQCells(cfg, nil) }, ExpFig6},
				{"MotivationCells", func() ([]shard.Cell, shard.Grid, error) { return MotivationCells(mcfg, nil) }, ExpMotivation},
				{"AblationCells", func() ([]shard.Cell, shard.Grid, error) { return AblationCells(cfg, p.ResolvedAblationU(), nil) }, ExpAblation},
				{"MultiDeviceCells", func() ([]shard.Cell, shard.Grid, error) { return MultiDeviceCells(cfg, mdU, mdCounts, nil) }, ExpMultiDevice},
			} {
				lc, lg, err := cf.legacy()
				if err != nil {
					t.Fatalf("%s: %v", cf.name, err)
				}
				gc, gg, err := RunCells(cf.generic, rc, nil)
				if err != nil {
					t.Fatalf("RunCells(%s): %v", cf.generic, err)
				}
				if lg != gg || mustJSON(t, lc) != mustJSON(t, gc) {
					t.Errorf("%s cells differ from RunCells(%s)", cf.name, cf.generic)
				}
			}

			// Aggregators over merged cell sets from 1-shard and 3-shard
			// decompositions: legacy FromCells / FromCellsPartial vs the
			// generic engines.
			for _, shards := range []int{1, 3} {
				files := make([]*shard.File, shards)
				for i := range files {
					f, err := RunShard(ExpAll, p, par, shards, i)
					if err != nil {
						t.Fatalf("shards=%d index=%d: %v", shards, i, err)
					}
					files[i] = f
				}
				merged, err := shard.Merge(files)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				byName := map[string][]shard.Cell{}
				for _, r := range merged.Runs {
					byName[r.Experiment] = r.Cells
				}

				if l, err := Fig5FromCells(cfg, byName[ExpFig5]); err != nil {
					t.Fatal(err)
				} else if g, err := FromCells(ExpFig5, rc, byName[ExpFig5]); err != nil || mustJSON(t, l) != mustJSON(t, g) {
					t.Errorf("shards=%d: Fig5FromCells differs from FromCells (err=%v)", shards, err)
				}
				lp, lu, err := FigQFromCells(cfg, byName[ExpFig6])
				if err != nil {
					t.Fatal(err)
				}
				gp, err := FromCells(ExpFig6, rc, byName[ExpFig6])
				if err != nil {
					t.Fatal(err)
				}
				gu, err := FromCells(ExpFig7, rc, byName[ExpFig7])
				if err != nil {
					t.Fatal(err)
				}
				if mustJSON(t, lp) != mustJSON(t, gp) || mustJSON(t, lu) != mustJSON(t, gu) {
					t.Errorf("shards=%d: FigQFromCells differs from FromCells", shards)
				}
				if l, err := MotivationFromCells(mcfg, byName[ExpMotivation]); err != nil {
					t.Fatal(err)
				} else if g, err := FromCells(ExpMotivation, rc, byName[ExpMotivation]); err != nil || mustJSON(t, l) != mustJSON(t, g) {
					t.Errorf("shards=%d: MotivationFromCells differs from FromCells (err=%v)", shards, err)
				}
				if l, err := AblationFromCells(cfg, byName[ExpAblation]); err != nil {
					t.Fatal(err)
				} else if g, err := FromCells(ExpAblation, rc, byName[ExpAblation]); err != nil || mustJSON(t, l) != mustJSON(t, g) {
					t.Errorf("shards=%d: AblationFromCells differs from FromCells (err=%v)", shards, err)
				}
				if l, err := MultiDeviceFromCells(cfg, mdCounts, byName[ExpMultiDevice]); err != nil {
					t.Fatal(err)
				} else if g, err := FromCells(ExpMultiDevice, rc, byName[ExpMultiDevice]); err != nil || mustJSON(t, l) != mustJSON(t, g) {
					t.Errorf("shards=%d: MultiDeviceFromCells differs from FromCells (err=%v)", shards, err)
				}

				// Partial aggregators over the shard-0 subset.
				sub := map[string][]shard.Cell{}
				for _, r := range files[0].Runs {
					sub[r.Experiment] = r.Cells
				}
				if l, lcov, err := Fig5FromCellsPartial(cfg, sub[ExpFig5]); err != nil {
					t.Fatal(err)
				} else if g, gcov, err := FromCellsPartial(ExpFig5, rc, sub[ExpFig5]); err != nil ||
					mustJSON(t, l) != mustJSON(t, g) || !reflect.DeepEqual(lcov, gcov) {
					t.Errorf("shards=%d: Fig5FromCellsPartial differs from FromCellsPartial (err=%v)", shards, err)
				}
				lpp, lup, lcov, err := FigQFromCellsPartial(cfg, sub[ExpFig6])
				if err != nil {
					t.Fatal(err)
				}
				gpp, gcov, err := FromCellsPartial(ExpFig6, rc, sub[ExpFig6])
				if err != nil {
					t.Fatal(err)
				}
				gup, _, err := FromCellsPartial(ExpFig7, rc, sub[ExpFig7])
				if err != nil {
					t.Fatal(err)
				}
				if mustJSON(t, lpp) != mustJSON(t, gpp) || mustJSON(t, lup) != mustJSON(t, gup) || !reflect.DeepEqual(lcov, gcov) {
					t.Errorf("shards=%d: FigQFromCellsPartial differs from FromCellsPartial", shards)
				}
				lm, lmcov, err := MotivationFromCellsPartial(mcfg, sub[ExpMotivation])
				if err != nil {
					t.Fatal(err)
				}
				gm, gmcov, err := FromCellsPartial(ExpMotivation, rc, sub[ExpMotivation])
				if err != nil || !reflect.DeepEqual(lmcov, gmcov) {
					t.Fatalf("shards=%d: motivation partial coverage differs (err=%v)", shards, err)
				}
				if (lm == nil) != (gm == nil) {
					t.Errorf("shards=%d: motivation partial nil-ness differs: legacy=%v generic=%v", shards, lm, gm)
				} else if lm != nil && mustJSON(t, lm) != mustJSON(t, gm) {
					t.Errorf("shards=%d: MotivationFromCellsPartial differs from FromCellsPartial", shards)
				}
				if l, lcov, err := AblationFromCellsPartial(cfg, sub[ExpAblation]); err != nil {
					t.Fatal(err)
				} else if g, gcov, err := FromCellsPartial(ExpAblation, rc, sub[ExpAblation]); err != nil ||
					mustJSON(t, l) != mustJSON(t, g) || !reflect.DeepEqual(lcov, gcov) {
					t.Errorf("shards=%d: AblationFromCellsPartial differs from FromCellsPartial (err=%v)", shards, err)
				}
				if l, lcov, err := MultiDeviceFromCellsPartial(cfg, mdCounts, sub[ExpMultiDevice]); err != nil {
					t.Fatal(err)
				} else if g, gcov, err := FromCellsPartial(ExpMultiDevice, rc, sub[ExpMultiDevice]); err != nil ||
					mustJSON(t, l) != mustJSON(t, g) || !reflect.DeepEqual(lcov, gcov) {
					t.Errorf("shards=%d: MultiDeviceFromCellsPartial differs from FromCellsPartial (err=%v)", shards, err)
				}
			}
		})
	}
}

// TestTailQRegistryOnly: the new experiment is reachable exclusively
// through the registry — run, shard, merge, partial — with results
// identical on every path, proving a study can be added with zero edits
// to the shard, dispatch or CLI plumbing.
func TestTailQRegistryOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := ShardParams{Systems: 5, Seed: 3}
	rc := p.Context(1)
	ref, err := Run(ExpTailQ, rc)
	if err != nil {
		t.Fatal(err)
	}
	res := ref.(*TailQResult)
	if len(res.Points) != len(Fig5Utils()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Schedulable.Trials != 5 {
			t.Errorf("U=%.2f trials = %d", pt.U, pt.Schedulable.Trials)
		}
		if pt.Jobs > 0 {
			if pt.Exact > pt.Ge90+1e-12 || pt.Ge90 > pt.Ge50+1e-12 {
				t.Errorf("U=%.2f bands not cumulative: exact=%g ge90=%g ge50=%g", pt.U, pt.Exact, pt.Ge90, pt.Ge50)
			}
			if pt.MinUps < 0 || pt.MinUps > 1 || pt.MeanUps < 0 || pt.MeanUps > 1+1e-12 {
				t.Errorf("U=%.2f quality out of range: mean=%g min=%g", pt.U, pt.MeanUps, pt.MinUps)
			}
		}
	}
	// The tail degrades with utilisation: the exact fraction at the top of
	// the sweep must not beat the bottom.
	if first, last := res.Points[0], res.Points[len(res.Points)-1]; last.Exact > first.Exact {
		t.Errorf("exact fraction should not improve with U: %g@%.2f vs %g@%.2f",
			first.Exact, first.U, last.Exact, last.U)
	}

	// Sharded: 3 shards at mixed parallelism, merged, re-aggregated.
	files := make([]*shard.File, 3)
	for i := range files {
		par := 1
		if i%2 == 1 {
			par = runtime.NumCPU()
		}
		f, err := RunShard(ExpTailQ, p, par, 3, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Runs) != 1 || f.Runs[0].Experiment != ExpTailQ {
			t.Fatalf("shard %d runs = %+v", i, f.Runs)
		}
		if f.Runs[0].PayloadVersion != (tailqExperiment{}).Codec().Version {
			t.Fatalf("shard %d payload version = %d", i, f.Runs[0].PayloadVersion)
		}
		files[i] = f
	}
	merged, err := shard.Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromCells(ExpTailQ, rc, merged.Runs[0].Cells)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, ref) != mustJSON(t, got) {
		t.Error("merged tailq differs from in-process run")
	}

	// Partial: the complete set through the partial path equals the full
	// result; a strict subset reports exact coverage.
	full, cov, err := FromCellsPartial(ExpTailQ, rc, merged.Runs[0].Cells)
	if err != nil || !cov.Complete() || mustJSON(t, full) != mustJSON(t, ref) {
		t.Fatalf("complete partial differs (cov=%v err=%v)", cov, err)
	}
	sub := files[0].Runs[0].Cells
	_, cov, err = FromCellsPartial(ExpTailQ, rc, sub)
	if err != nil || cov.Complete() || cov.Have != len(sub) {
		t.Fatalf("subset coverage = %+v err=%v", cov, err)
	}
}

// TestCellCoverage: the decode-free coverage engine agrees with the
// decoding partial path and rejects the same malformed subsets.
func TestCellCoverage(t *testing.T) {
	p := ShardParams{Systems: 4, Seed: 1}
	rc := p.Context(1)
	f, err := RunShard(ExpMultiDevice, p, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sub := f.Runs[0].Cells
	cov, err := CellCoverage(ExpMultiDevice, rc, sub)
	if err != nil {
		t.Fatal(err)
	}
	_, decCov, err := FromCellsPartial(ExpMultiDevice, rc, sub)
	if err != nil || !reflect.DeepEqual(cov, decCov) {
		t.Errorf("CellCoverage = %+v, partial decode reports %+v (err=%v)", cov, decCov, err)
	}
	if cov.Complete() || cov.Have != len(sub) {
		t.Errorf("subset coverage = %+v for %d cells", cov, len(sub))
	}
	if _, err := CellCoverage(ExpMultiDevice, rc, append([]shard.Cell{sub[0]}, sub...)); err == nil {
		t.Error("duplicate cell accepted")
	}
	oob := sub[0]
	oob.System = 99
	if _, err := CellCoverage(ExpMultiDevice, rc, []shard.Cell{oob}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if _, err := CellCoverage("bogus", rc, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestValidateRuns pins the registry-driven shard-file validation the
// dispatch driver relies on: unknown experiments, wrong grids and
// incompatible payload versions are all rejected with named errors.
func TestValidateRuns(t *testing.T) {
	p := ShardParams{Systems: 3, Seed: 1}
	f, err := RunShard(ExpMultiDevice, p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRuns(f, p); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	// Version 0 (pre-recording files) is accepted.
	old := *f
	old.Runs = append([]shard.Run(nil), f.Runs...)
	old.Runs[0].PayloadVersion = 0
	if err := ValidateRuns(&old, p); err != nil {
		t.Errorf("version-0 file rejected: %v", err)
	}
	bad := *f
	bad.Runs = append([]shard.Run(nil), f.Runs...)
	bad.Runs[0].PayloadVersion = 99
	err = ValidateRuns(&bad, p)
	if err == nil || !strings.Contains(err.Error(), "payload version 99") {
		t.Errorf("incompatible payload version accepted: %v", err)
	}
	unknown := *f
	unknown.Runs = append([]shard.Run(nil), f.Runs...)
	unknown.Runs[0].Experiment = "bogus"
	if err := ValidateRuns(&unknown, p); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment accepted: %v", err)
	}
	wrongGrid := *f
	wrongGrid.Runs = append([]shard.Run(nil), f.Runs...)
	wrongGrid.Runs[0].Grid = shard.Grid{Points: 9, Systems: 9}
	if err := ValidateRuns(&wrongGrid, p); err == nil || !strings.Contains(err.Error(), "records grid 9x9") {
		t.Errorf("wrong grid accepted: %v", err)
	}
}

// TestNormalisedIsRegistryDriven: Normalised resolves every registered
// defaulter, so two spellings of the same run record byte-equal params —
// including after new experiments register.
func TestNormalisedIsRegistryDriven(t *testing.T) {
	a := ShardParams{Seed: 7}.Normalised()
	b := ShardParams{
		Seed: 7, Systems: Default().Systems,
		GAPopulation: Default().GA.Population, GAGenerations: Default().GA.Generations,
		AblationU: 0.6, MultiDeviceU: 0.8, MultiDeviceCounts: []int{1, 2, 4, 8},
		MotivationWrites: DefaultMotivation().Writes,
	}.Normalised()
	aj, bj := mustJSON(t, a), mustJSON(t, b)
	if aj != bj {
		t.Errorf("spellings normalise differently:\n%s\n%s", aj, bj)
	}
}
