package experiment

// The jitter experiment: wall-clock replay of computed schedules. Every
// other experiment in the registry evaluates a schedule analytically;
// this one hands the static scheduler's output to internal/replay and
// measures what the host actually delivers — dispatch jitter
// distributions, exact-hit counts and missed deadlines per utilisation
// point.
//
// It is the registry's one non-reproducible experiment: a cell payload
// is a measurement of this machine at this moment, not a function of
// the seed, so Reproducible() returns false and the machinery treats it
// specially — excluded from the "all" selection, never cell-cached, and
// its shard files carry a host fingerprint (shard.File.Host). The grid
// itself (which systems are generated, which schedules replayed) is
// still seed-derived on a private stream, so two hosts measure the same
// workload.
//
// This file sorts after registry.go, so its init registers jitter after
// the built-ins (and before tailq.go's) — see TestRegistryCanonicalOrder.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// streamJitter is the experiment's private seed stream (tailq.go holds
// 6).
const streamJitter int64 = 7

// JitterUtils is the experiment's utilisation axis: three points, not
// Figure 5's fifteen, because every cell costs real wall-clock time
// (warmup plus up to the replay cap).
func JitterUtils() []float64 { return []float64{0.3, 0.5, 0.7} }

// Replay-knob defaults recorded by the experiment's ParamDefaulter.
const (
	defaultReplayTick    = time.Microsecond      // real time: the schedule's native scale
	defaultReplayCap     = 25 * time.Millisecond // horizon per device, not per hyper-period
	defaultReplayWarmup  = 64                    // synthetic dispatches before the epoch
	defaultReplaySystems = 6                     // systems per utilisation point
)

// ResolvedReplay returns the replay harness options and the per-point
// system count the params describe (zero fields select the defaults
// above; ReplayNoPin's zero value means "pin").
func (p ShardParams) ResolvedReplay() (replay.Options, int) {
	opts := replay.Options{
		Tick:   time.Duration(p.ReplayTickNs),
		Cap:    time.Duration(p.ReplayCapNs),
		Warmup: p.ReplayWarmup,
		Pin:    !p.ReplayNoPin,
	}
	if opts.Tick == 0 {
		opts.Tick = defaultReplayTick
	}
	if opts.Cap == 0 {
		opts.Cap = defaultReplayCap
	}
	if opts.Warmup == 0 {
		opts.Warmup = defaultReplayWarmup
	}
	systems := p.ReplaySystems
	if systems == 0 {
		systems = defaultReplaySystems
	}
	return opts, systems
}

// jitterOutcome is one replayed system's delivered-timing census; it
// doubles as the jitter shard-cell payload. Durations are nanoseconds.
type jitterOutcome struct {
	// OK marks the system schedulable (there was a schedule to replay);
	// the measurement fields are zero otherwise.
	OK bool `json:"ok"`
	// Dispatched and Skipped partition the schedule's entries: fired
	// versus dropped by the replay cap.
	Dispatched int `json:"dispatched"`
	Skipped    int `json:"skipped"`
	// Exact counts zero-jitter dispatches (the delivered Ψ numerator);
	// Missed counts dispatches past their job's latest feasible start.
	Exact  int `json:"exact"`
	Missed int `json:"missed"`
	// Devices counts the replayed partitions, Pinned how many of their
	// executor threads got CPU affinity.
	Devices int `json:"devices"`
	Pinned  int `json:"pinned"`
	// MeanNs, the percentiles and MaxNs summarise |actual − intended|.
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
	// Hist is the fixed-bound deviation histogram (replay.HistBounds
	// layout), poolable across cells by elementwise addition.
	Hist []int64 `json:"hist"`
}

// JitterPoint pools the delivered-timing census at one utilisation.
type JitterPoint struct {
	U float64
	// Schedulable is the fraction of systems the static scheduler
	// scheduled; the measurements pool over exactly those systems.
	Schedulable stats.Ratio
	Dispatched  int
	Skipped     int
	// Exact and Missed are fractions of the pooled dispatches.
	Exact  float64
	Missed float64
	// MeanNs is the dispatch-weighted mean deviation; P99Ns the worst
	// single cell's p99; MaxNs the worst single deviation.
	MeanNs float64
	P99Ns  int64
	MaxNs  int64
	Hist   []int64
}

// JitterResult is the jitter dataset: one pooled point per utilisation,
// plus the run-wide histogram its Footer renders.
type JitterResult struct {
	Points []JitterPoint
	// Pinned / Devices count executor threads across all cells.
	Pinned  int
	Devices int
}

// Rows renders the result as a text table.
func (r *JitterResult) Rows() ([]string, [][]string) {
	headers := []string{"U", "schedulable", "dispatched", "skipped", "exact", "missed", "mean", "p99", "max"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.U),
			fmt.Sprintf("%.3f", p.Schedulable.Value()),
			fmt.Sprintf("%d", p.Dispatched),
			fmt.Sprintf("%d", p.Skipped),
			fmt.Sprintf("%.3f", p.Exact),
			fmt.Sprintf("%.3f", p.Missed),
			fmtNs(int64(p.MeanNs)),
			fmtNs(p.P99Ns),
			fmtNs(p.MaxNs),
		})
	}
	return headers, rows
}

// fmtNs renders a nanosecond figure in its most natural unit.
func fmtNs(ns int64) string { return time.Duration(ns).String() }

// Footer implements Footnoted: the pooled deviation histogram and the
// reproducibility note.
func (r *JitterResult) Footer() string {
	labels := replay.HistLabels()
	pooled := make([]int64, len(labels))
	for _, p := range r.Points {
		for i, n := range p.Hist {
			if i < len(pooled) {
				pooled[i] += n
			}
		}
	}
	var b strings.Builder
	b.WriteString(textplot.Histogram("dispatch deviation histogram (all points)", labels, pooled, 40))
	fmt.Fprintf(&b, "executors pinned: %d/%d\n", r.Pinned, r.Devices)
	b.WriteString("note: jitter is non-reproducible — payloads measure the host, not the seed")
	return b.String()
}

// jitterExperiment is the wall-clock replay study as a registry entry.
type jitterExperiment struct{}

func init() { Register(jitterExperiment{}) }

func (jitterExperiment) Name() string { return ExpJitter }
func (jitterExperiment) Describe() string {
	return "Jitter: wall-clock replay of static schedules, delivered dispatch timing (non-reproducible)"
}
func (jitterExperiment) CellKey() string { return ExpJitter }
func (jitterExperiment) CSVName() string { return "jitter.csv" }

// Reproducible implements NonReproducible: the payloads are host
// measurements.
func (jitterExperiment) Reproducible() bool { return false }

func (jitterExperiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new(jitterOutcome) }, Payload: jitterPayloadCodec()}
}
func (jitterExperiment) Grid(rc RunContext) (shard.Grid, error) {
	_, systems := rc.Params.ResolvedReplay()
	if systems < 1 {
		return shard.Grid{}, fmt.Errorf("jitter: replay systems %d < 1", systems)
	}
	return shard.Grid{Points: len(JitterUtils()), Systems: systems}, nil
}
func (jitterExperiment) CellSeed(rc RunContext, point, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamJitter, int64(point), int64(system), subGen)
}
func (jitterExperiment) Header(rc RunContext) string {
	opts, systems := rc.Params.ResolvedReplay()
	return fmt.Sprintf("Jitter: wall-clock replay of static schedules (systems/point=%d, seed=%d, tick=%v, cap=%v, warmup=%d, pin=%v)\nhost: %s\n\n",
		systems, rc.Config.Seed, opts.Tick, opts.Cap, opts.Warmup, opts.Pin, HostFingerprint())
}

// DefaultParams implements ParamDefaulter: the replay knobs resolve to
// the harness defaults.
func (jitterExperiment) DefaultParams(p ShardParams) ShardParams {
	opts, systems := p.ResolvedReplay()
	p.ReplayTickNs = int64(opts.Tick)
	p.ReplayCapNs = int64(opts.Cap)
	p.ReplayWarmup = opts.Warmup
	p.ReplaySystems = systems
	return p
}

// Cell generates the cell's system from its derived sub-seed, schedules
// it with the static scheduler, and replays the schedule against the
// real clock. The workload is seed-deterministic; the measurement is
// not — which is exactly what Reproducible() == false declares.
func (jitterExperiment) Cell(rc RunContext, point, system int) (any, error) {
	cfg := rc.Config
	u := JitterUtils()[point]
	ts, err := cfg.Gen.System(exec.RNG(cfg.Seed, streamJitter, int64(point), int64(system), subGen), u)
	if err != nil {
		return jitterOutcome{}, fmt.Errorf("jitter u=%.2f system %d: %w", u, system, err)
	}
	ds, err := scheduleStatic(ts)
	if err != nil {
		if errors.Is(err, sched.ErrInfeasible) {
			return jitterOutcome{}, nil
		}
		return jitterOutcome{}, fmt.Errorf("jitter u=%.2f system %d: unexpected: %w", u, system, err)
	}
	opts, _ := rc.Params.ResolvedReplay()
	rep, err := replay.Run(ds, opts)
	if err != nil {
		return jitterOutcome{}, fmt.Errorf("jitter u=%.2f system %d: %w", u, system, err)
	}
	o := jitterOutcome{
		OK:         true,
		Dispatched: rep.Stats.Dispatched,
		Skipped:    rep.Stats.Skipped,
		Exact:      rep.Stats.Exact,
		Missed:     rep.Stats.Missed,
		Devices:    len(rep.Devices),
		MeanNs:     rep.Stats.MeanNs,
		P50Ns:      rep.Stats.P50Ns,
		P95Ns:      rep.Stats.P95Ns,
		P99Ns:      rep.Stats.P99Ns,
		MaxNs:      rep.Stats.MaxNs,
		Hist:       rep.Stats.Hist,
	}
	for _, d := range rep.Devices {
		if d.Pinned {
			o.Pinned++
		}
	}
	return o, nil
}

// Aggregate pools the per-system censuses per utilisation point in grid
// order. The usual fixed-order discipline applies even though this
// experiment is exempt from byte-identity: a partial render and a full
// render of the same cells still agree.
func (jitterExperiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	_, systems := rc.Params.ResolvedReplay()
	res := &JitterResult{}
	for ui, u := range JitterUtils() {
		p := JitterPoint{U: u, Hist: make([]int64, len(replay.HistBounds())+1)}
		var exact, missed int
		var meanSum float64
		for s := 0; s < systems; s++ {
			if has != nil && !has(ui, s) {
				continue
			}
			o := *at(ui, s).(*jitterOutcome)
			p.Schedulable.Trials++
			if !o.OK {
				continue
			}
			p.Schedulable.Successes++
			p.Dispatched += o.Dispatched
			p.Skipped += o.Skipped
			exact += o.Exact
			missed += o.Missed
			meanSum += o.MeanNs * float64(o.Dispatched)
			if o.P99Ns > p.P99Ns {
				p.P99Ns = o.P99Ns
			}
			if o.MaxNs > p.MaxNs {
				p.MaxNs = o.MaxNs
			}
			for i, n := range o.Hist {
				if i < len(p.Hist) {
					p.Hist[i] += n
				}
			}
			res.Devices += o.Devices
			res.Pinned += o.Pinned
		}
		if p.Dispatched > 0 {
			n := float64(p.Dispatched)
			p.Exact = float64(exact) / n
			p.Missed = float64(missed) / n
			p.MeanNs = meanSum / n
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
