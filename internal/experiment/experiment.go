package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/taskmodel"
)

// Config parameterises the experiment runners.
type Config struct {
	// Systems is the number of synthetic systems per utilisation point
	// (paper: 1000).
	Systems int
	// Seed drives all randomness. Each (utilisation point, system) pair
	// derives a private sub-seed (exec.DeriveSeed), so results are
	// identical at every Parallelism.
	Seed int64
	// Parallelism bounds the worker goroutines the runners fan the
	// systems × utilisation-point grid across; <= 0 selects one worker
	// per CPU, 1 runs serially. It never changes the results — only the
	// wall-clock time. The runners parallelise across systems and run
	// each GA solve serially, so Parallelism alone decides the goroutine
	// budget.
	Parallelism int
	// GA is the solver configuration (paper: population 300, 500
	// generations).
	GA ga.Options
	// Gen is the task-set generator configuration.
	Gen gen.Config
	// Curve is the quality model (nil = linear, the paper's curve).
	Curve quality.Curve
}

// Default returns the scaled-down configuration used by tests, benches and
// the CLI unless overridden.
func Default() Config {
	return Config{
		Systems: 100,
		Seed:    1,
		GA:      ga.DefaultOptions(),
		Gen:     gen.PaperConfig(),
		Curve:   quality.Linear{},
	}
}

// PaperScale returns the full Section V-A configuration. Running it takes
// hours of CPU; the CLI exposes it behind -paperscale.
func PaperScale() Config {
	c := Default()
	c.Systems = 1000
	c.GA = ga.PaperOptions()
	return c
}

func (c *Config) curve() quality.Curve {
	if c.Curve == nil {
		return quality.Linear{}
	}
	return c.Curve
}

// Seed-stream tags keeping the runners' derived randomness disjoint.
const (
	streamFig5 int64 = iota + 1
	streamFigQ
	streamAblation
	streamMultiDevice
	streamMotivation
)

// Per-cell sub-stream tags: each (runner, point, system) cell owns one
// stream for system generation and one for the GA solver seed.
const (
	subGen int64 = iota
	subGA
)

// qOutcome is one cell's quality outcome, shared by the runners: the
// achieved metrics and whether the method scheduled the system at all.
// The fields are exported (with stable JSON names) because the outcome is
// also the cell payload of the shard files.
type qOutcome struct {
	Psi float64 `json:"psi"`
	Ups float64 `json:"upsilon"`
	OK  bool    `json:"ok"`
}

// cellRef locates one cell of an outer × inner grid.
type cellRef struct{ o, i int }

// CellSelector picks the grid cells a run evaluates; nil selects every
// cell. The shard workflow passes a round-robin ownership predicate
// (shard.Plan.Selector) so N processes cover the grid disjointly.
type CellSelector func(point, system int) bool

// gridSubset fans fn over the cells selected by sel (nil = all) in grid
// order and returns their locations and values, also in grid order. It is
// the engine under both the in-process runners (full grid, aggregated
// immediately) and the shard workflow (arbitrary subsets, serialised and
// merged later): every cell derives its randomness from a private
// sub-seed over the (runner, point, system) path, so a cell evaluates to
// the same value in any subset, any process, at any parallelism.
func gridSubset[T any](parallelism, outer, inner int, sel CellSelector, fn func(o, i int) (T, error)) ([]cellRef, []T, error) {
	refs := make([]cellRef, 0, outer*inner)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			if sel == nil || sel(o, i) {
				refs = append(refs, cellRef{o, i})
			}
		}
	}
	vals, err := exec.Map(exec.New(parallelism), context.Background(), len(refs),
		func(_ context.Context, k int) (T, error) {
			return fn(refs[k].o, refs[k].i)
		})
	if err != nil {
		return nil, nil, err
	}
	return refs, vals, nil
}

// Method names as they appear in the figures.
const (
	MethodFPSOffline = "FPS-offline"
	MethodFPSOnline  = "FPS-online"
	MethodGPIOCP     = "GPIOCP"
	MethodStatic     = "Static"
	MethodGA         = "GA"
)

// Fig5Methods lists the schedulability curves of Figure 5 in legend order.
var Fig5Methods = []string{MethodFPSOffline, MethodFPSOnline, MethodGPIOCP, MethodStatic, MethodGA}

// FigQMethods lists the offline methods of Figures 6 and 7.
var FigQMethods = []string{MethodFPSOffline, MethodGPIOCP, MethodStatic, MethodGA}

// Fig5Point is the schedulable fraction of every method at one utilisation.
type Fig5Point struct {
	U     float64
	Rates map[string]stats.Ratio
}

// Fig5Result is the full Figure 5 dataset.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5Utils is the x axis of Figure 5.
func Fig5Utils() []float64 {
	var us []float64
	for u := 0.20; u <= 0.901; u += 0.05 {
		us = append(us, round2(u))
	}
	return us
}

// round2 rounds to two decimals, away from zero on ties. (The previous
// int-truncation formula rounded negative inputs toward zero — −0.005
// became 0.00 — which would silently corrupt any metric that can go
// negative, such as a Penalised-curve Υ.)
func round2(x float64) float64 { return math.Round(x*100) / 100 }

// scheduleStatic runs the static scheduler over all partitions.
func scheduleStatic(ts *taskmodel.TaskSet) (sched.DeviceSchedules, error) {
	return sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
}

// scheduleGA solves every partition with the GA and returns the fronts.
// With the paper's single-device configuration there is exactly one front.
func scheduleGA(ts *taskmodel.TaskSet, opts ga.Options) (map[taskmodel.DeviceID]*ga.Result, error) {
	fronts := make(map[taskmodel.DeviceID]*ga.Result)
	parts := ts.JobsByDevice()
	for _, dev := range ts.Devices() {
		res, err := ga.Solve(parts[dev], opts)
		if err != nil {
			return nil, err
		}
		fronts[dev] = res
	}
	return fronts, nil
}

// fpsOnlineSchedulable applies the worst-case analysis per device
// partition.
func fpsOnlineSchedulable(ts *taskmodel.TaskSet) bool {
	byDev := make(map[taskmodel.DeviceID][]taskmodel.Task)
	for i := range ts.Tasks {
		t := ts.Tasks[i]
		byDev[t.Device] = append(byDev[t.Device], t)
	}
	for _, tasks := range byDev {
		if !fps.Analyze(tasks).Schedulable {
			return false
		}
	}
	return true
}

// fig5Outcome is the per-system verdict of the five methods; it doubles
// as the Figure 5 shard-cell payload.
type fig5Outcome struct {
	Offline bool `json:"offline"`
	Online  bool `json:"online"`
	GPIOCP  bool `json:"gpiocp"`
	Static  bool `json:"static"`
	GA      bool `json:"ga"`
}

// fig5Cell evaluates one (utilisation point, system) cell: it generates
// the system from the cell's derived sub-seed and runs all five methods.
func fig5Cell(cfg Config, us []float64, ui, s int) (fig5Outcome, error) {
	u := us[ui]
	ts, err := cfg.Gen.System(exec.RNG(cfg.Seed, streamFig5, int64(ui), int64(s), subGen), u)
	if err != nil {
		return fig5Outcome{}, fmt.Errorf("fig5 u=%.2f system %d: %w", u, s, err)
	}
	var o fig5Outcome
	_, offErr := sched.ScheduleAll(ts, fps.Offline{})
	o.Offline = offErr == nil
	o.Online = fpsOnlineSchedulable(ts)
	_, cpErr := sched.ScheduleAll(ts, gpiocp.Scheduler{})
	o.GPIOCP = cpErr == nil
	_, stErr := scheduleStatic(ts)
	o.Static = stErr == nil
	gaOpts := cfg.solverOpts(streamFig5, int64(ui), int64(s))
	_, gaErr := scheduleGA(ts, gaOpts)
	o.GA = gaErr == nil
	for _, err := range []error{offErr, cpErr, stErr, gaErr} {
		if err != nil && !errors.Is(err, sched.ErrInfeasible) {
			return fig5Outcome{}, fmt.Errorf("fig5 u=%.2f system %d: unexpected: %w", u, s, err)
		}
	}
	return o, nil
}

// fig5Aggregate folds an outcome grid into the Figure 5 result in grid
// order. Both the in-process runner and the shard merge path end here,
// which is what makes a merged result identical to an unsharded run's.
// A nil has aggregates the complete grid; a partial cover passes its
// presence predicate and the rates are computed over the present cells
// only (Trials counts present systems, so a partial point's fraction is
// an honest estimate, not a complete point's value diluted by gaps).
func fig5Aggregate(cfg Config, us []float64, at func(o, i int) fig5Outcome, has func(o, i int) bool) *Fig5Result {
	res := &Fig5Result{}
	for ui, u := range us {
		point := Fig5Point{U: u, Rates: make(map[string]stats.Ratio)}
		record := func(method string, ok bool) {
			r := point.Rates[method]
			r.Trials++
			if ok {
				r.Successes++
			}
			point.Rates[method] = r
		}
		for s := 0; s < cfg.Systems; s++ {
			if has != nil && !has(ui, s) {
				continue
			}
			o := at(ui, s)
			record(MethodFPSOffline, o.Offline)
			record(MethodFPSOnline, o.Online)
			record(MethodGPIOCP, o.GPIOCP)
			record(MethodStatic, o.Static)
			record(MethodGA, o.GA)
		}
		res.Points = append(res.Points, point)
	}
	return res
}

// Fig5 regenerates Figure 5: the fraction of schedulable systems per
// utilisation for FPS-offline, FPS-online, GPIOCP, static and GA. The
// systems × utilisation-point grid is fanned across the worker pool; each
// cell generates its system from a derived sub-seed and the verdicts are
// aggregated in grid order, so the result is identical at every
// cfg.Parallelism.
//
// Deprecated: use Run(ExpFig5, …); this forwards to it.
func Fig5(cfg Config) (*Fig5Result, error) {
	res, err := Run(ExpFig5, contextFor(cfg))
	if err != nil {
		return nil, err
	}
	return res.(*Fig5Result), nil
}

// fig5Experiment is Figure 5 as a registry entry.
type fig5Experiment struct{}

func (fig5Experiment) Name() string { return ExpFig5 }
func (fig5Experiment) Describe() string {
	return "Figure 5: schedulable fraction vs utilisation for the five methods"
}
func (fig5Experiment) CellKey() string { return ExpFig5 }
func (fig5Experiment) CSVName() string { return "fig5.csv" }
func (fig5Experiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new(fig5Outcome) }, Payload: fig5PayloadCodec()}
}
func (fig5Experiment) Grid(rc RunContext) (shard.Grid, error) {
	return shard.Grid{Points: len(Fig5Utils()), Systems: rc.Config.Systems}, nil
}
func (fig5Experiment) Cell(rc RunContext, point, system int) (any, error) {
	return fig5Cell(rc.Config, Fig5Utils(), point, system)
}
func (fig5Experiment) CellSeed(rc RunContext, point, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamFig5, int64(point), int64(system), subGen)
}
func (fig5Experiment) Header(rc RunContext) string {
	cfg := rc.Config
	return fmt.Sprintf("Figure 5: system schedulability (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
}
func (fig5Experiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	return fig5Aggregate(rc.Config, Fig5Utils(),
		func(o, i int) fig5Outcome { return *at(o, i).(*fig5Outcome) }, has), nil
}

// solverOpts derives the GA options for one grid cell: a private solver
// seed, and serial fitness evaluation — the runner already owns the
// worker pool, so nesting a second pool per system would only oversubscribe
// the CPUs.
func (c *Config) solverOpts(stream int64, point, system int64) ga.Options {
	opts := c.GA
	opts.Seed = exec.DeriveSeed(c.Seed, stream, point, system, subGA)
	opts.Parallelism = 1
	return opts
}

// Rows renders the result as a text table (one row per utilisation).
func (r *Fig5Result) Rows() ([]string, [][]string) {
	headers := append([]string{"U"}, Fig5Methods...)
	var rows [][]string
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%.2f", p.U)}
		for _, m := range Fig5Methods {
			row = append(row, fmt.Sprintf("%.3f", p.Rates[m].Value()))
		}
		rows = append(rows, row)
	}
	return headers, rows
}

// PlotTitle implements Plottable.
func (r *Fig5Result) PlotTitle() string { return "Fig 5: schedulable fraction vs utilisation" }

// Series converts the result to plot series in method order.
func (r *Fig5Result) Series() (xlabels []string, series []Curveable) {
	for _, p := range r.Points {
		xlabels = append(xlabels, fmt.Sprintf("%.2f", p.U))
	}
	for _, m := range Fig5Methods {
		vals := make([]float64, len(r.Points))
		for i, p := range r.Points {
			vals[i] = p.Rates[m].Value()
		}
		series = append(series, Curveable{Name: m, Values: vals})
	}
	return xlabels, series
}

// Curveable is a named value series (decoupled from textplot so results
// remain plain data).
type Curveable struct {
	Name   string
	Values []float64
}
