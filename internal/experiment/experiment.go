// Package experiment contains one runner per table and figure of the
// paper's evaluation (Section V), plus the motivation latency experiment
// and the ablation studies:
//
//	Fig5       — schedulable fraction vs utilisation for the five methods
//	Fig6And7   — Ψ and Υ vs utilisation for the four offline methods
//	Table1     — hardware cost of the controller designs (via hwcost)
//	Motivation — remote-write jitter over the NoC vs pre-loaded controller
//	Ablation   — design-choice variants of the static and GA schedulers
//
// Every runner is deterministic given Config.Seed. The paper's full scale
// (1000 systems per point, GA population 300 × 500 generations) is
// reproduced by setting the corresponding Config fields; the defaults are
// a calibrated scaled-down configuration that preserves every qualitative
// relationship and finishes in seconds (EXPERIMENTS.md records both).
package experiment

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/stats"
	"repro/internal/taskmodel"
)

// Config parameterises the experiment runners.
type Config struct {
	// Systems is the number of synthetic systems per utilisation point
	// (paper: 1000).
	Systems int
	// Seed drives all randomness.
	Seed int64
	// GA is the solver configuration (paper: population 300, 500
	// generations).
	GA ga.Options
	// Gen is the task-set generator configuration.
	Gen gen.Config
	// Curve is the quality model (nil = linear, the paper's curve).
	Curve quality.Curve
}

// Default returns the scaled-down configuration used by tests, benches and
// the CLI unless overridden.
func Default() Config {
	return Config{
		Systems: 100,
		Seed:    1,
		GA:      ga.DefaultOptions(),
		Gen:     gen.PaperConfig(),
		Curve:   quality.Linear{},
	}
}

// PaperScale returns the full Section V-A configuration. Running it takes
// hours of CPU; the CLI exposes it behind -paperscale.
func PaperScale() Config {
	c := Default()
	c.Systems = 1000
	c.GA = ga.PaperOptions()
	return c
}

func (c *Config) curve() quality.Curve {
	if c.Curve == nil {
		return quality.Linear{}
	}
	return c.Curve
}

// Method names as they appear in the figures.
const (
	MethodFPSOffline = "FPS-offline"
	MethodFPSOnline  = "FPS-online"
	MethodGPIOCP     = "GPIOCP"
	MethodStatic     = "Static"
	MethodGA         = "GA"
)

// Fig5Methods lists the schedulability curves of Figure 5 in legend order.
var Fig5Methods = []string{MethodFPSOffline, MethodFPSOnline, MethodGPIOCP, MethodStatic, MethodGA}

// FigQMethods lists the offline methods of Figures 6 and 7.
var FigQMethods = []string{MethodFPSOffline, MethodGPIOCP, MethodStatic, MethodGA}

// Fig5Point is the schedulable fraction of every method at one utilisation.
type Fig5Point struct {
	U     float64
	Rates map[string]stats.Ratio
}

// Fig5Result is the full Figure 5 dataset.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5Utils is the x axis of Figure 5.
func Fig5Utils() []float64 {
	var us []float64
	for u := 0.20; u <= 0.901; u += 0.05 {
		us = append(us, round2(u))
	}
	return us
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

// scheduleStatic runs the static scheduler over all partitions.
func scheduleStatic(ts *taskmodel.TaskSet) (sched.DeviceSchedules, error) {
	return sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
}

// scheduleGA solves every partition with the GA and returns the fronts.
// With the paper's single-device configuration there is exactly one front.
func scheduleGA(ts *taskmodel.TaskSet, opts ga.Options) (map[taskmodel.DeviceID]*ga.Result, error) {
	fronts := make(map[taskmodel.DeviceID]*ga.Result)
	parts := ts.JobsByDevice()
	for _, dev := range ts.Devices() {
		res, err := ga.Solve(parts[dev], opts)
		if err != nil {
			return nil, err
		}
		fronts[dev] = res
	}
	return fronts, nil
}

// fpsOnlineSchedulable applies the worst-case analysis per device
// partition.
func fpsOnlineSchedulable(ts *taskmodel.TaskSet) bool {
	byDev := make(map[taskmodel.DeviceID][]taskmodel.Task)
	for i := range ts.Tasks {
		t := ts.Tasks[i]
		byDev[t.Device] = append(byDev[t.Device], t)
	}
	for _, tasks := range byDev {
		if !fps.Analyze(tasks).Schedulable {
			return false
		}
	}
	return true
}

// Fig5 regenerates Figure 5: the fraction of schedulable systems per
// utilisation for FPS-offline, FPS-online, GPIOCP, static and GA.
func Fig5(cfg Config) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, u := range Fig5Utils() {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(u*1000)))
		point := Fig5Point{U: u, Rates: make(map[string]stats.Ratio)}
		for s := 0; s < cfg.Systems; s++ {
			ts, err := cfg.Gen.System(rng, u)
			if err != nil {
				return nil, fmt.Errorf("fig5 u=%.2f system %d: %w", u, s, err)
			}
			record := func(method string, ok bool) {
				r := point.Rates[method]
				r.Trials++
				if ok {
					r.Successes++
				}
				point.Rates[method] = r
			}
			_, offErr := sched.ScheduleAll(ts, fps.Offline{})
			record(MethodFPSOffline, offErr == nil)
			record(MethodFPSOnline, fpsOnlineSchedulable(ts))
			_, cpErr := sched.ScheduleAll(ts, gpiocp.Scheduler{})
			record(MethodGPIOCP, cpErr == nil)
			_, stErr := scheduleStatic(ts)
			record(MethodStatic, stErr == nil)
			gaOpts := cfg.GA
			gaOpts.Seed = cfg.Seed + int64(s)
			_, gaErr := scheduleGA(ts, gaOpts)
			record(MethodGA, gaErr == nil)
			for _, err := range []error{offErr, cpErr, stErr, gaErr} {
				if err != nil && !errors.Is(err, sched.ErrInfeasible) {
					return nil, fmt.Errorf("fig5 u=%.2f system %d: unexpected: %w", u, s, err)
				}
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Rows renders the result as a text table (one row per utilisation).
func (r *Fig5Result) Rows() ([]string, [][]string) {
	headers := append([]string{"U"}, Fig5Methods...)
	var rows [][]string
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%.2f", p.U)}
		for _, m := range Fig5Methods {
			row = append(row, fmt.Sprintf("%.3f", p.Rates[m].Value()))
		}
		rows = append(rows, row)
	}
	return headers, rows
}

// Series converts the result to plot series in method order.
func (r *Fig5Result) Series() (xlabels []string, series []Curveable) {
	for _, p := range r.Points {
		xlabels = append(xlabels, fmt.Sprintf("%.2f", p.U))
	}
	for _, m := range Fig5Methods {
		vals := make([]float64, len(r.Points))
		for i, p := range r.Points {
			vals[i] = p.Rates[m].Value()
		}
		series = append(series, Curveable{Name: m, Values: vals})
	}
	return xlabels, series
}

// Curveable is a named value series (decoupled from textplot so results
// remain plain data).
type Curveable struct {
	Name   string
	Values []float64
}
