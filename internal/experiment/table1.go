package experiment

import (
	"fmt"

	"repro/internal/hwcost"
	"repro/internal/shard"
)

// Table1 regenerates Table I: the structural-model estimate next to the
// paper's published figure for every design.
func Table1() []hwcost.Row { return hwcost.Table1() }

// Table1Result is the hardware-cost comparison as a registry result.
type Table1Result []hwcost.Row

// Rows renders the comparison as a text table.
func (rs Table1Result) Rows() ([]string, [][]string) { return Table1Rows(rs) }

// table1Experiment is Table I as a registry entry. It is closed-form —
// a zero Codec, no cell grid — so it renders in full from any cover and
// is never sharded.
type table1Experiment struct{}

func (table1Experiment) Name() string { return ExpTable1 }
func (table1Experiment) Describe() string {
	return "Table I: hardware cost of the controller designs (closed-form)"
}
func (table1Experiment) CellKey() string                     { return ExpTable1 }
func (table1Experiment) CSVName() string                     { return "table1.csv" }
func (table1Experiment) Codec() Codec                        { return Codec{} }
func (table1Experiment) Grid(RunContext) (shard.Grid, error) { return shard.Grid{}, nil }
func (table1Experiment) Cell(RunContext, int, int) (any, error) {
	return nil, fmt.Errorf("experiment: table1 is closed-form and has no cells")
}
func (table1Experiment) CellSeed(RunContext, int, int) int64 { return 0 }
func (table1Experiment) Header(RunContext) string {
	return "Table I: hardware overhead of the evaluated I/O controllers\n" +
		"(structural resource model vs the paper's Vivado synthesis)\n\n"
}
func (table1Experiment) Aggregate(RunContext, func(int, int) any, func(int, int) bool) (Result, error) {
	return Table1Result(Table1()), nil
}

// Table1Rows renders the comparison as a text table.
func Table1Rows(rows []hwcost.Row) ([]string, [][]string) {
	headers := []string{
		"I/O controller",
		"LUTs (model/paper)", "Registers (model/paper)",
		"DSP (m/p)", "RAM KB (m/p)", "Power mW (m/p)",
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d / %d", r.Model.LUTs, r.Paper.LUTs),
			fmt.Sprintf("%d / %d", r.Model.Registers, r.Paper.Registers),
			fmt.Sprintf("%d / %d", r.Model.DSPs, r.Paper.DSPs),
			fmt.Sprintf("%d / %d", r.Model.BRAMKB, r.Paper.BRAMKB),
			fmt.Sprintf("%.1f / %.1f", r.Model.PowerMW, r.Paper.PowerMW),
		})
	}
	return headers, out
}
