package experiment

import (
	"fmt"

	"repro/internal/hwcost"
)

// Table1 regenerates Table I: the structural-model estimate next to the
// paper's published figure for every design.
func Table1() []hwcost.Row { return hwcost.Table1() }

// Table1Rows renders the comparison as a text table.
func Table1Rows(rows []hwcost.Row) ([]string, [][]string) {
	headers := []string{
		"I/O controller",
		"LUTs (model/paper)", "Registers (model/paper)",
		"DSP (m/p)", "RAM KB (m/p)", "Power mW (m/p)",
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d / %d", r.Model.LUTs, r.Paper.LUTs),
			fmt.Sprintf("%d / %d", r.Model.Registers, r.Paper.Registers),
			fmt.Sprintf("%d / %d", r.Model.DSPs, r.Paper.DSPs),
			fmt.Sprintf("%d / %d", r.Model.BRAMKB, r.Paper.BRAMKB),
			fmt.Sprintf("%.1f / %.1f", r.Model.PowerMW, r.Paper.PowerMW),
		})
	}
	return headers, out
}
