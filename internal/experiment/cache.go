package experiment

// Dispatch-facing cache entry points: CachedShard answers "is this whole
// shard already in the cache?" so a dispatch driver can journal it as
// cached instead of queueing a worker, and DepositFile feeds a validated
// worker output back into the cache so later runs — wider grids, more
// shards, a re-render — start from a warm store. Both speak the same key
// derivation as the engine's frontier evaluation (cacheKey), so every
// run path shares one namespace.

import (
	"encoding/json"
	"fmt"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// CachedShard builds shard index of shards for the selection purely from
// the cache — no cell is computed. It returns ok=false (with a nil file)
// as soon as any owned cell is absent, corrupt or recorded under a
// different seed; a true return carries a file byte-identical to what
// RunShard would produce, because every payload was deposited by an
// earlier run of the same deterministic cell computation and the grid,
// params and run layout are rebuilt from the registry exactly as RunShard
// builds them.
func CachedShard(cache *cellcache.Store, selection string, p ShardParams, shards, index int) (*shard.File, bool, error) {
	plan, err := shard.NewPlan(shards, index)
	if err != nil {
		return nil, false, err
	}
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, false, err
	}
	if !SelectionReproducible(selection) {
		// Non-reproducible cells are never cached, so the cache can
		// never answer for them — a fresh measurement is required.
		return nil, false, nil
	}
	p = p.Normalised()
	rc := p.Context(1)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, false, fmt.Errorf("experiment: encode params: %w", err)
	}
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: selection,
		Shards:    shards,
		Index:     index,
		Params:    params,
	}
	type computed struct {
		cells []shard.Cell
		grid  shard.Grid
	}
	byKey := make(map[string]computed)
	for _, name := range names {
		e, err := get(name)
		if err != nil {
			return nil, false, err
		}
		c, ok := byKey[e.CellKey()]
		if !ok {
			g, err := e.Grid(rc)
			if err != nil {
				return nil, false, err
			}
			key, err := cacheKey(e, rc)
			if err != nil {
				return nil, false, err
			}
			sel := plan.Selector(g.Systems)
			// Non-nil even when the shard owns no cell of this grid, so the
			// encoded file matches RunShard's ("[]", never "null").
			cells := make([]shard.Cell, 0, g.Cells()/shards+1)
			for o := 0; o < g.Points; o++ {
				for i := 0; i < g.Systems; i++ {
					if !sel(o, i) {
						continue
					}
					seed := e.CellSeed(rc, o, i)
					data, hit := cache.Get(key, o, i, seed)
					if !hit {
						return nil, false, nil
					}
					cells = append(cells, shard.Cell{Point: o, System: i, Seed: seed, Data: data})
				}
			}
			c = computed{cells: cells, grid: g}
			byKey[e.CellKey()] = c
		}
		f.Runs = append(f.Runs, shard.Run{
			Experiment:     name,
			Grid:           c.grid,
			PayloadVersion: e.Codec().Version,
			Cells:          c.cells,
		})
	}
	return f, true, nil
}

// DepositFile deposits every cell of a shard (or merged) file into the
// cache under the run's key for params p. Runs whose recorded payload
// version differs from the registered codec's — files written by an older
// or newer build — are skipped rather than deposited under a layout they
// do not carry; runs sharing a cell key (Figures 6 and 7) deposit once.
// Callers pass files they have validated (dispatch validates before
// merging); the recorded seeds are stored as-is, and a wrong one can
// never be served — Get re-checks the seed on every read.
func DepositFile(cache *cellcache.Store, f *shard.File, p ShardParams) error {
	params, err := json.Marshal(p.Normalised())
	if err != nil {
		return fmt.Errorf("experiment: encode params: %w", err)
	}
	seen := make(map[string]bool)
	for _, r := range f.Runs {
		e, ok := Lookup(r.Experiment)
		if !ok {
			return fmt.Errorf("experiment: %w %q in shard file", ErrUnknownExperiment, r.Experiment)
		}
		if r.PayloadVersion != e.Codec().Version {
			continue
		}
		if !Reproducible(e) {
			// Depositing a host measurement would let a later run serve
			// it as if it were this host's; refuse silently, like the
			// version skip above.
			continue
		}
		ck := e.CellKey()
		if seen[ck] {
			continue
		}
		seen[ck] = true
		key := cellcache.RunKey(ck, params, e.Codec().Version)
		for _, c := range r.Cells {
			if err := cache.Put(key, c.Point, c.System, c.Seed, c.Data); err != nil {
				return err
			}
		}
	}
	return nil
}
