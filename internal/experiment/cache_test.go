package experiment

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// encoded renders a shard file to the exact bytes it would persist.
func encoded(t *testing.T, f *shard.File) []byte {
	t.Helper()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// openStore opens a cell cache rooted in dir.
func openStore(t *testing.T, dir string) *cellcache.Store {
	t.Helper()
	s, err := cellcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCacheWarmColdByteIdentical extends the registry-equivalence suite
// to the cell cache: for every registered grid experiment (the "all"
// selection records one run per experiment), the cold cached run, the
// warm cached run, and warm runs under a different shard decomposition
// all encode byte-identically to the uncached path — the cache is
// invisible in the output, visible only in the hit counters.
func TestCacheWarmColdByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	dir := t.TempDir()

	ref, err := RunShard(ExpAll, p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := encoded(t, ref)

	cold := openStore(t, dir)
	coldFile, err := RunShardCached(ExpAll, p, 1, 1, 0, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded(t, coldFile), want) {
		t.Fatal("cold cached run differs from the uncached run")
	}
	if cold.Stats().Misses == 0 {
		t.Fatal("cold run recorded no misses: nothing was computed into the cache")
	}

	// Reopen for fresh counters: the warm run must compute nothing.
	warm := openStore(t, dir)
	warmFile, err := RunShardCached(ExpAll, p, 1, 1, 0, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded(t, warmFile), want) {
		t.Fatal("warm cached run differs from the uncached run")
	}
	if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("warm run stats = %+v, want all hits", st)
	}

	// Cells are keyed by grid position, not shard decomposition: a 3-shard
	// warm run reuses the 1-shard run's entries and merges byte-identically.
	split := openStore(t, dir)
	files := make([]*shard.File, 3)
	for i := range files {
		if files[i], err = RunShardCached(ExpAll, p, 1, 3, i, split); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := shard.Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded(t, merged), want) {
		t.Fatal("3-shard warm merge differs from the uncached run")
	}
	if st := split.Stats(); st.Misses != 0 {
		t.Fatalf("re-sharded warm run recomputed %d cells", st.Misses)
	}
}

// TestCachedShardAndDeposit covers the dispatch driver's two cache
// hooks: DepositFile seeds a cache from a validated shard file, and
// CachedShard reassembles a shard byte-identically from a fully-warm
// cache — and reports a miss (never a partial file) when any cell is
// absent.
func TestCachedShardAndDeposit(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()

	// Empty cache: no file, no error.
	empty := openStore(t, t.TempDir())
	if f, ok, err := CachedShard(empty, ExpFig5, p, 1, 0); err != nil || ok || f != nil {
		t.Fatalf("empty cache returned %v, %v, %v", f, ok, err)
	}

	ref, err := RunShard(ExpFig5, p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	store := openStore(t, t.TempDir())
	if err := DepositFile(store, ref, p); err != nil {
		t.Fatal(err)
	}
	got, ok, err := CachedShard(store, ExpFig5, p, 1, 0)
	if err != nil || !ok {
		t.Fatalf("warm CachedShard = %v, %v", ok, err)
	}
	if !bytes.Equal(encoded(t, got), encoded(t, ref)) {
		t.Fatal("cached shard differs from the computed shard")
	}

	// The deposited 1-shard file also serves any other decomposition.
	for i := 0; i < 3; i++ {
		want, err := RunShard(ExpFig5, p, 1, 3, i)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := CachedShard(store, ExpFig5, p, 3, i)
		if err != nil || !ok {
			t.Fatalf("shard %d: CachedShard = %v, %v", i, ok, err)
		}
		if !bytes.Equal(encoded(t, got), encoded(t, want)) {
			t.Fatalf("shard %d: cached shard differs from the computed shard", i)
		}
	}

	// Remove one entry: the shard owning it must miss entirely.
	path := someEntry(t, store.Dir())
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 3; i++ {
		if _, ok, err := CachedShard(store, ExpFig5, p, 3, i); err != nil {
			t.Fatal(err)
		} else if ok {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("%d/3 shards served after deleting one entry, want 2", hits)
	}
}

// TestCacheCorruptEntryRecomputed: a truncated entry is silently
// recomputed, never trusted — the warm run stays byte-identical and the
// store self-heals the damaged file.
func TestCacheCorruptEntryRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := shardParamsFast()
	dir := t.TempDir()

	ref, err := RunShard(ExpFig5, p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := encoded(t, ref)
	cold := openStore(t, dir)
	if _, err := RunShardCached(ExpFig5, p, 1, 1, 0, cold); err != nil {
		t.Fatal(err)
	}

	victim := someEntry(t, dir)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	warm := openStore(t, dir)
	got, err := RunShardCached(ExpFig5, p, 1, 1, 0, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded(t, got), want) {
		t.Fatal("run over a corrupt cache differs from the uncached run")
	}
	if st := warm.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly the corrupt entry recomputed", st)
	}
	if repaired, err := os.ReadFile(victim); err != nil || len(repaired) <= len(data)/2 {
		t.Fatalf("entry not rewritten after recomputation (err=%v, %d bytes)", err, len(repaired))
	}
}

// someEntry returns one cached cell entry file under dir (deterministic:
// the lexicographically first).
func someEntry(t *testing.T, dir string) string {
	t.Helper()
	var entries []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return err
	})
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries under %s (err=%v)", dir, err)
	}
	return entries[0]
}
