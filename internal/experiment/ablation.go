package experiment

import (
	"fmt"
	"strconv"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sched/ga"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/taskmodel"
)

// AblationVariant is one design-choice configuration under study.
type AblationVariant struct {
	Name string
	// Run schedules one system and returns (Ψ, Υ); infeasible systems
	// return an error.
	Run func(cfg Config, seed int64, ts *taskmodel.TaskSet) (float64, float64, error)
}

// AblationResult summarises one variant at the study utilisation.
type AblationResult struct {
	Name        string
	Schedulable stats.Ratio
	MeanPsi     float64
	MeanUpsilon float64
}

// AblationVariants returns the studied design choices:
//
//   - the LCC-D slot policy against first-fit and best-fit (is the
//     contention term worth it?);
//   - near-ideal placement of sacrificed jobs (recovering Υ at no Ψ cost);
//   - the bounded demotion extension (schedulability beyond Algorithm 1's
//     deliberate stop);
//   - the GA without the reconfiguration's ideal-snapping, and without the
//     all-ideal seed individual.
func AblationVariants() []AblationVariant {
	staticVariant := func(name string, opts staticsched.Options) AblationVariant {
		return AblationVariant{
			Name: name,
			Run: func(cfg Config, seed int64, ts *taskmodel.TaskSet) (float64, float64, error) {
				ds, err := sched.ScheduleAll(ts, staticsched.New(opts))
				if err != nil {
					return 0, 0, err
				}
				psi, ups := ds.Metrics(cfg.curve())
				return psi, ups, nil
			},
		}
	}
	gaVariant := func(name string, mutate func(*ga.Options)) AblationVariant {
		return AblationVariant{
			Name: name,
			Run: func(cfg Config, seed int64, ts *taskmodel.TaskSet) (float64, float64, error) {
				opts := cfg.GA
				opts.Seed = seed
				opts.Curve = cfg.curve()
				// The runner parallelises across systems; keep the solver
				// serial so the pools do not nest.
				opts.Parallelism = 1
				mutate(&opts)
				fronts, err := scheduleGA(ts, opts)
				if err != nil {
					return 0, 0, err
				}
				// Single-device study: report the front's best points.
				// Sum in device order — float sums must have a fixed order
				// to stay reproducible.
				var psi, ups float64
				for _, dev := range ts.Devices() {
					f := fronts[dev]
					psi += f.BestPsi().Psi
					ups += f.BestUpsilon().Upsilon
				}
				n := float64(len(fronts))
				return psi / n, ups / n, nil
			},
		}
	}
	return []AblationVariant{
		staticVariant("static (paper: LCC-D)", staticsched.Options{}),
		staticVariant("static first-fit", staticsched.Options{Policy: staticsched.FirstFit}),
		staticVariant("static best-fit", staticsched.Options{Policy: staticsched.BestFit}),
		staticVariant("static near-ideal placement", staticsched.Options{PlaceNearIdeal: true}),
		staticVariant("static + demotion", staticsched.Options{AllowDemotion: true}),
		gaVariant("GA (paper)", func(*ga.Options) {}),
		gaVariant("GA no ideal-snap", func(o *ga.Options) { o.SnapToIdeal = false }),
		gaVariant("GA no ideal seed", func(o *ga.Options) { o.SeedIdeal = false }),
	}
}

// ablationUTag converts the caller-chosen study utilisation into a seed
// stream tag. The study point is not an axis index; tagging the seed path
// with the mill value makes sweeps over u draw independent systems
// (matching the other runners' point tags).
func ablationUTag(u float64) int64 { return int64(u * 1000) }

// ablationCell evaluates one system against every variant; the per-system
// variant outcomes double as the ablation shard-cell payload.
func ablationCell(cfg Config, u float64, s int) ([]qOutcome, error) {
	variants := AblationVariants()
	uTag := ablationUTag(u)
	ts, err := cfg.Gen.System(exec.RNG(cfg.Seed, streamAblation, uTag, int64(s), subGen), u)
	if err != nil {
		return nil, fmt.Errorf("ablation system %d: %w", s, err)
	}
	seed := exec.DeriveSeed(cfg.Seed, streamAblation, uTag, int64(s), subGA)
	out := make([]qOutcome, len(variants))
	for i, v := range variants {
		psi, ups, err := v.Run(cfg, seed, ts)
		if err != nil {
			continue
		}
		out[i] = qOutcome{Psi: psi, Ups: ups, OK: true}
	}
	return out, nil
}

// ablationAggregate folds the per-system variant outcomes into the study
// results in system order — shared by the in-process runner and the shard
// merge path. A nil has aggregates every system; a partial cover's
// predicate restricts the study to the present systems.
func ablationAggregate(cfg Config, at func(o, i int) []qOutcome, has func(o, i int) bool) []AblationResult {
	variants := AblationVariants()
	results := make([]AblationResult, len(variants))
	psis := make([][]float64, len(variants))
	upss := make([][]float64, len(variants))
	for i, v := range variants {
		results[i].Name = v.Name
	}
	for s := 0; s < cfg.Systems; s++ {
		if has != nil && !has(0, s) {
			continue
		}
		for i, o := range at(0, s) {
			results[i].Schedulable.Trials++
			if !o.OK {
				continue
			}
			results[i].Schedulable.Successes++
			psis[i] = append(psis[i], o.Psi)
			upss[i] = append(upss[i], o.Ups)
		}
	}
	for i := range results {
		results[i].MeanPsi = stats.Mean(psis[i])
		results[i].MeanUpsilon = stats.Mean(upss[i])
	}
	return results
}

// Ablation runs every variant on the same systems at utilisation u. The
// systems are fanned across the worker pool as a 1 × Systems grid (every
// variant sees system s before system s+1 in the aggregates, so results
// are identical at every cfg.Parallelism). A zero u selects the default
// study utilisation (0.6, matching ShardParams semantics).
//
// Deprecated: use Run(ExpAblation, …); this forwards to it.
func Ablation(cfg Config, u float64) ([]AblationResult, error) {
	rc := contextFor(cfg)
	rc.Params.AblationU = u
	res, err := Run(ExpAblation, rc)
	if err != nil {
		return nil, err
	}
	return res.(AblationStudy), nil
}

// AblationStudy is the ablation experiment's registry result: one row
// per studied variant.
type AblationStudy []AblationResult

// Rows renders the study as a text table.
func (rs AblationStudy) Rows() ([]string, [][]string) { return AblationRows(rs) }

// ablationExperiment is the design-choice study as a registry entry.
type ablationExperiment struct{}

func (ablationExperiment) Name() string { return ExpAblation }
func (ablationExperiment) Describe() string {
	return "Ablation: static and GA design-choice variants at one utilisation"
}
func (ablationExperiment) CellKey() string { return ExpAblation }
func (ablationExperiment) CSVName() string { return "" }
func (ablationExperiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new([]qOutcome) }, Payload: qSlicePayloadCodec()}
}
func (ablationExperiment) Grid(rc RunContext) (shard.Grid, error) {
	return shard.Grid{Points: 1, Systems: rc.Config.Systems}, nil
}
func (ablationExperiment) Cell(rc RunContext, _, system int) (any, error) {
	return ablationCell(rc.Config, rc.Params.ResolvedAblationU(), system)
}
func (ablationExperiment) CellSeed(rc RunContext, _, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamAblation,
		ablationUTag(rc.Params.ResolvedAblationU()), int64(system), subGen)
}
func (ablationExperiment) Header(rc RunContext) string {
	return fmt.Sprintf("Ablation at U=%s (systems=%d, seed=%d)\n\n",
		strconv.FormatFloat(rc.Params.ResolvedAblationU(), 'f', 2, 64), rc.Config.Systems, rc.Config.Seed)
}
func (ablationExperiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	return AblationStudy(ablationAggregate(rc.Config,
		func(o, i int) []qOutcome { return *at(o, i).(*[]qOutcome) }, has)), nil
}

// DefaultParams implements ParamDefaulter: the study utilisation
// defaults to 0.6.
func (ablationExperiment) DefaultParams(p ShardParams) ShardParams {
	p.AblationU = p.ResolvedAblationU()
	return p
}

// AblationRows renders the study as a text table.
func AblationRows(rs []AblationResult) ([]string, [][]string) {
	headers := []string{"variant", "schedulable", "mean Psi", "mean Upsilon"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.3f", r.Schedulable.Value()),
			fmt.Sprintf("%.3f", r.MeanPsi),
			fmt.Sprintf("%.3f", r.MeanUpsilon),
		})
	}
	return headers, rows
}
