package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/shard"
)

// fillRandom populates v (a pointer into a payload value) with
// deterministic pseudo-random content: every bool/int/float/string leaf
// is randomised, pointers and slices are sometimes nil, so the codecs
// see the full shape space — nil reports, empty event lists, negative
// cycles, floats that need all 17 significant digits.
func fillRandom(rng *rand.Rand, v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		// Mix magnitudes: small counts, cycle-scale values, negatives.
		switch rng.Intn(3) {
		case 0:
			v.SetInt(int64(rng.Intn(16)))
		case 1:
			v.SetInt(rng.Int63n(1 << 40))
		default:
			v.SetInt(-rng.Int63n(1 << 40))
		}
	case reflect.Float64:
		switch rng.Intn(3) {
		case 0:
			v.SetFloat(rng.Float64())
		case 1:
			v.SetFloat(float64(rng.Intn(100)) / 7) // repeating decimals
		default:
			v.SetFloat(-rng.Float64() * 1e-9)
		}
	case reflect.String:
		v.SetString(fmt.Sprintf("ev-%d", rng.Intn(1000)))
	case reflect.Ptr:
		if rng.Intn(3) == 0 {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.New(v.Type().Elem()))
		fillRandom(rng, v.Elem())
	case reflect.Slice:
		if rng.Intn(4) == 0 {
			v.Set(reflect.Zero(v.Type())) // nil, distinct from empty
			return
		}
		n := rng.Intn(4)
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fillRandom(rng, s.Index(i))
		}
		v.Set(s)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				fillRandom(rng, v.Field(i))
			}
		}
	default:
		panic(fmt.Sprintf("fillRandom: unhandled kind %v", v.Kind()))
	}
}

// randomPayloads generates n marshalled random payloads for e.
func randomPayloads(t *testing.T, rng *rand.Rand, e Experiment, n int) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, n)
	for i := range out {
		v := e.Codec().New()
		fillRandom(rng, reflect.ValueOf(v).Elem())
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal random payload: %v", e.Name(), err)
		}
		out[i] = b
	}
	return out
}

// TestPayloadCodecRoundTrip is the direct property test: for every
// registered experiment with a native payload codec, random payloads
// packed into a column and unpacked again must reproduce the original
// compact JSON byte for byte. This is the same check the binary encoder
// runs per file (verifyColumn); here it must hold unconditionally, not
// fall back.
func TestPayloadCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tested := 0
	for _, e := range All() {
		c := e.Codec()
		if c.Payload == nil {
			if c.New != nil {
				t.Errorf("%s: grid experiment without a payload codec", e.Name())
			}
			continue
		}
		tested++
		for round := 0; round < 50; round++ {
			payloads := randomPayloads(t, rng, e, 1+rng.Intn(8))
			packed, err := c.Payload.EncodeColumn(payloads)
			if err != nil {
				t.Fatalf("%s: EncodeColumn: %v", e.Name(), err)
			}
			got, err := c.Payload.DecodeColumn(packed, len(payloads))
			if err != nil {
				t.Fatalf("%s: DecodeColumn: %v", e.Name(), err)
			}
			for i := range payloads {
				if !bytes.Equal(got[i], payloads[i]) {
					t.Fatalf("%s: payload %d round trip:\ngot  %s\nwant %s", e.Name(), i, got[i], payloads[i])
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no payload codecs registered")
	}
}

// TestBinaryContainerRoundTripAllExperiments drives the same property
// through the whole container: a shard file holding one run of random
// cells per registry experiment must decode from its binary form to
// payloads that deep-equal the originals, and its v1 JSON render must
// be byte-identical whether it travelled as v1 or v2.
func TestBinaryContainerRoundTripAllExperiments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: "all",
		Shards:    1,
		Index:     0,
		Params:    json.RawMessage(`{"seed":1,"systems":6,"util":"0.35"}`),
	}
	for _, e := range All() {
		if e.Codec().New == nil {
			continue
		}
		payloads := randomPayloads(t, rng, e, 6)
		run := shard.Run{
			Experiment:     e.Name(),
			Grid:           shard.Grid{Points: len(payloads), Systems: 1},
			PayloadVersion: e.Codec().Version,
		}
		for i, p := range payloads {
			run.Cells = append(run.Cells, shard.Cell{Point: i, Seed: rng.Int63() - rng.Int63(), Data: p})
		}
		f.Runs = append(f.Runs, run)
	}

	bin, err := f.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(v1) {
		t.Errorf("binary encoding (%d bytes) is not smaller than JSON (%d bytes)", len(bin), len(v1))
	}
	got, err := shard.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}

	// Payloads deep-equal the originals when decoded through each
	// experiment's own codec type.
	for ri, run := range got.Runs {
		e, ok := Lookup(run.Experiment)
		if !ok {
			t.Fatalf("run %d: unknown experiment %q", ri, run.Experiment)
		}
		for ci, cell := range run.Cells {
			want := e.Codec().New()
			if err := json.Unmarshal(f.Runs[ri].Cells[ci].Data, want); err != nil {
				t.Fatal(err)
			}
			gotV := e.Codec().New()
			if err := json.Unmarshal(cell.Data, gotV); err != nil {
				t.Fatalf("%s cell %d: decoded payload does not unmarshal: %v", run.Experiment, ci, err)
			}
			if !reflect.DeepEqual(gotV, want) {
				t.Fatalf("%s cell %d: decoded payload differs:\ngot  %+v\nwant %+v", run.Experiment, ci, gotV, want)
			}
		}
	}

	// v1 → v2 → v1: the rendered JSON is byte-identical.
	rendered, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered, v1) {
		t.Fatal("v1 render differs after a binary round trip")
	}
	// And the binary form is a fixed point of its own decode/encode.
	bin2, err := got.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin2, bin) {
		t.Fatal("binary encoding is not deterministic across a round trip")
	}
}
