package experiment

// Cell-batch runners: the experiment layer's side of pluggable
// decomposition. RunBatchCached is RunShardCached with an explicit
// per-run cell set in place of the implicit round-robin share, producing
// a batch file (shard.BatchInfo) that merges through shard.MergeBatches;
// CachedBatch is the matching whole-batch cache probe. Both preserve the
// determinism invariant: a cell's payload depends only on its grid path,
// never on which batch computed it.

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// batchSets validates and canonicalises per-run cell sets against the
// selection's runs: one set per run, each de-duplicated, sorted and
// in-range. Returns the canonical sets and per-run membership tests.
func batchSets(names []string, grids []shard.Grid, cells [][]int) ([][]int, []map[int]bool, error) {
	if len(cells) != len(names) {
		return nil, nil, fmt.Errorf("experiment: batch lists %d cell sets for %d runs", len(cells), len(names))
	}
	canon := make([][]int, len(names))
	member := make([]map[int]bool, len(names))
	for ri := range names {
		member[ri] = make(map[int]bool, len(cells[ri]))
		for _, g := range cells[ri] {
			if g < 0 || g >= grids[ri].Cells() {
				return nil, nil, fmt.Errorf("experiment: %s batch cell %d outside %dx%d grid",
					names[ri], g, grids[ri].Points, grids[ri].Systems)
			}
			member[ri][g] = true
		}
		canon[ri] = make([]int, 0, len(member[ri]))
		for g := range member[ri] {
			canon[ri] = append(canon[ri], g)
		}
		sort.Ints(canon[ri])
	}
	return canon, member, nil
}

// RunBatchCached evaluates exactly the given cells of the selection —
// cells[ri] holds run ri's global cell indices, parallel to
// SelectionRuns' order — and returns a batch file recording them (cache
// optional, nil = compute everything). Runs sharing a cell key and a
// cell set are computed once and recorded under each name, exactly like
// RunShard.
func RunBatchCached(selection string, p ShardParams, parallelism int, cells [][]int, cache *cellcache.Store) (*shard.File, error) {
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, err
	}
	p = p.Normalised()
	rc := p.Context(parallelism).WithCache(cache)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("experiment: encode params: %w", err)
	}
	grids := make([]shard.Grid, len(names))
	exps := make([]Experiment, len(names))
	for ri, name := range names {
		e, err := get(name)
		if err != nil {
			return nil, err
		}
		g, err := e.Grid(rc)
		if err != nil {
			return nil, err
		}
		exps[ri], grids[ri] = e, g
	}
	canon, member, err := batchSets(names, grids, cells)
	if err != nil {
		return nil, err
	}
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: selection,
		Shards:    1,
		Index:     0,
		Params:    params,
		Batch:     &shard.BatchInfo{Cells: canon},
	}
	if !SelectionReproducible(selection) {
		f.Host = HostFingerprint()
	}
	type computed struct {
		cells []shard.Cell
		grid  shard.Grid
	}
	byKey := make(map[string]computed)
	for ri, name := range names {
		e := exps[ri]
		// Shared-key runs dedup only when their cell sets agree too; a
		// decomposition that assigned them differently computes each.
		key := e.CellKey() + "|" + shard.FormatRanges(canon[ri])
		c, ok := byKey[key]
		if !ok {
			m := member[ri]
			sel := func(o, i int) bool { return m[o*grids[ri].Systems+i] }
			cs, _, err := runCells(e, rc, sel)
			if err != nil {
				return nil, err
			}
			if cs == nil {
				cs = []shard.Cell{}
			}
			c = computed{cells: cs, grid: grids[ri]}
			byKey[key] = c
		}
		f.Runs = append(f.Runs, shard.Run{
			Experiment:     name,
			Grid:           c.grid,
			PayloadVersion: e.Codec().Version,
			Cells:          c.cells,
		})
	}
	return f, nil
}

// CachedBatch builds the batch purely from the cache — no cell is
// computed. It returns ok=false (with a nil file) as soon as any listed
// cell is absent; a true return carries a file byte-identical to what
// RunBatchCached would produce for the same cells.
func CachedBatch(cache *cellcache.Store, selection string, p ShardParams, cells [][]int) (*shard.File, bool, error) {
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, false, err
	}
	if !SelectionReproducible(selection) {
		// Same refusal as CachedShard: measurements are never cached.
		return nil, false, nil
	}
	p = p.Normalised()
	rc := p.Context(1)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, false, fmt.Errorf("experiment: encode params: %w", err)
	}
	grids := make([]shard.Grid, len(names))
	exps := make([]Experiment, len(names))
	for ri, name := range names {
		e, err := get(name)
		if err != nil {
			return nil, false, err
		}
		g, err := e.Grid(rc)
		if err != nil {
			return nil, false, err
		}
		exps[ri], grids[ri] = e, g
	}
	canon, _, err := batchSets(names, grids, cells)
	if err != nil {
		return nil, false, err
	}
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: selection,
		Shards:    1,
		Index:     0,
		Params:    params,
		Batch:     &shard.BatchInfo{Cells: canon},
	}
	type computed struct {
		cells []shard.Cell
		grid  shard.Grid
	}
	byKey := make(map[string]computed)
	for ri, name := range names {
		e := exps[ri]
		key, err := cacheKey(e, rc)
		if err != nil {
			return nil, false, err
		}
		dedup := e.CellKey() + "|" + shard.FormatRanges(canon[ri])
		c, ok := byKey[dedup]
		if !ok {
			g := grids[ri]
			cs := make([]shard.Cell, 0, len(canon[ri]))
			for _, gi := range canon[ri] {
				o, i := gi/g.Systems, gi%g.Systems
				seed := e.CellSeed(rc, o, i)
				data, hit := cache.Get(key, o, i, seed)
				if !hit {
					return nil, false, nil
				}
				cs = append(cs, shard.Cell{Point: o, System: i, Seed: seed, Data: data})
			}
			c = computed{cells: cs, grid: g}
			byKey[dedup] = c
		}
		f.Runs = append(f.Runs, shard.Run{
			Experiment:     name,
			Grid:           c.grid,
			PayloadVersion: e.Codec().Version,
			Cells:          c.cells,
		})
	}
	return f, true, nil
}
