package experiment

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/stats"
)

// FigQUtils is the x axis of Figures 6 and 7.
func FigQUtils() []float64 { return []float64{0.3, 0.4, 0.5, 0.6, 0.7} }

// FigQPoint holds, per method, the mean metric over the systems that
// method scheduled (with the sample count), at one utilisation.
type FigQPoint struct {
	U float64
	// Mean maps method to mean Ψ (Fig. 6) or Υ (Fig. 7).
	Mean map[string]float64
	// N maps method to the number of schedulable systems averaged over.
	N map[string]int
}

// FigQResult is the Figure 6 (Ψ) or Figure 7 (Υ) dataset.
type FigQResult struct {
	Metric string // "Psi" or "Upsilon"
	Points []FigQPoint
}

// Fig6And7 regenerates Figures 6 and 7 in one pass: for every generated
// system each offline method is run, and the achieved Ψ and Υ are averaged
// per method over its schedulable systems. (The paper reports the methods'
// I/O performance "among 1000 schedulable systems"; averaging per method
// keeps every method's sample as large as possible and is recorded in
// docs/EXPERIMENTS.md.) The GA contributes its best-Ψ front point to
// Figure 6 and its best-Υ point to Figure 7, exactly as the paper
// describes.
//
// The runner requires the single-device configuration the paper uses for
// these experiments.
//
// Deprecated: use Run(ExpFig6, …) and Run(ExpFig7, …); this forwards to
// the shared cell grid and both aggregations.
func Fig6And7(cfg Config) (*FigQResult, *FigQResult, error) {
	rc := contextFor(cfg)
	// The two figures share one cell grid: compute it once, aggregate it
	// under each name — exactly what a sharded "all" run records.
	cells, _, err := RunCells(ExpFig6, rc, nil)
	if err != nil {
		return nil, nil, err
	}
	psi, ups, cov, err := figqPair(rc, cells)
	if err != nil {
		return nil, nil, err
	}
	if !cov.Complete() {
		return nil, nil, fmt.Errorf("fig6/7: experiment: %d cells for a %dx%d grid",
			len(cells), len(FigQUtils()), rc.Config.Systems)
	}
	return psi, ups, nil
}

// figqPair decodes the shared cell grid once and aggregates both
// figures in one pass — the pair-returning fast path under the legacy
// Fig6And7* wrappers (the per-name engines decode per figure). It uses
// the exact decode and aggregation hooks of the registry entries, so
// the results are identical to the generic path's.
func figqPair(rc RunContext, cells []shard.Cell) (*FigQResult, *FigQResult, Coverage, error) {
	e := figqExperiment{psi: true}
	g, err := e.Grid(rc)
	if err != nil {
		return nil, nil, Coverage{}, err
	}
	at, has, cov, err := decodeCells(e, g, cells)
	if err != nil {
		return nil, nil, Coverage{}, fmt.Errorf("fig6/7: %w", err)
	}
	if cov.Complete() {
		// A complete set aggregates as the full grid, exactly like the
		// generic FromCells path (nil predicate).
		has = nil
	}
	psi, ups := figqAggregate(rc.Config, FigQUtils(),
		func(o, i int) figqOutcome { return *at(o, i).(*figqOutcome) }, has)
	return psi, ups, cov, nil
}

// figqExperiment is Figure 6 (psi true) or Figure 7 (psi false) as a
// registry entry. The two entries share one cell key — and so one cell
// computation — because every payload carries both metrics.
type figqExperiment struct{ psi bool }

func (e figqExperiment) Name() string {
	if e.psi {
		return ExpFig6
	}
	return ExpFig7
}
func (e figqExperiment) Describe() string {
	if e.psi {
		return "Figure 6: mean Psi of the offline methods vs utilisation"
	}
	return "Figure 7: mean Upsilon of the offline methods vs utilisation"
}
func (figqExperiment) CellKey() string { return "figq" }
func (e figqExperiment) CSVName() string {
	if e.psi {
		return "fig6.csv"
	}
	return "fig7.csv"
}
func (figqExperiment) Codec() Codec {
	return Codec{Version: 1, New: func() any { return new(figqOutcome) }, Payload: figqPayloadCodec()}
}
func (figqExperiment) Grid(rc RunContext) (shard.Grid, error) {
	g := shard.Grid{Points: len(FigQUtils()), Systems: rc.Config.Systems}
	return g, figqCheck(rc.Config)
}
func (figqExperiment) Cell(rc RunContext, point, system int) (any, error) {
	return figqCell(rc.Config, FigQUtils(), point, system)
}
func (figqExperiment) CellSeed(rc RunContext, point, system int) int64 {
	return exec.DeriveSeed(rc.Config.Seed, streamFigQ, int64(point), int64(system), subGen)
}
func (e figqExperiment) Header(rc RunContext) string {
	cfg := rc.Config
	name, metric := figqTitle(e.psi)
	return fmt.Sprintf("%s: %s (systems/point=%d, GA %dx%d, seed=%d)\n\n",
		name, metric, cfg.Systems, cfg.GA.Population, cfg.GA.Generations, cfg.Seed)
}
func (e figqExperiment) Aggregate(rc RunContext, at func(o, i int) any, has func(o, i int) bool) (Result, error) {
	psi, ups := figqAggregate(rc.Config, FigQUtils(),
		func(o, i int) figqOutcome { return *at(o, i).(*figqOutcome) }, has)
	if e.psi {
		return psi, nil
	}
	return ups, nil
}

// figqTitle names the figure and its metric for headers and plot
// captions.
func figqTitle(psi bool) (name, metric string) {
	if psi {
		return "Figure 6", "Psi (fraction of exact timing-accurate jobs)"
	}
	return "Figure 7", "Upsilon (normalised quality)"
}

// figqCheck rejects configurations the Figures 6/7 runner does not model.
func figqCheck(cfg Config) error {
	if cfg.Gen.Devices > 1 {
		return fmt.Errorf("experiment: figures 6/7 use a single-device configuration")
	}
	return nil
}

// figqOutcome holds one system's per-method quality outcomes; it doubles
// as the Figures 6/7 shard-cell payload.
type figqOutcome struct {
	Offline qOutcome `json:"offline"`
	CP      qOutcome `json:"gpiocp"`
	Static  qOutcome `json:"static"`
	GA      qOutcome `json:"ga"`
}

// figqCell evaluates one (utilisation point, system) cell: the system is
// generated from the cell's derived sub-seed and every offline method is
// measured on it.
func figqCell(cfg Config, us []float64, ui, s int) (figqOutcome, error) {
	curve := cfg.curve()
	u := us[ui]
	ts, err := cfg.Gen.System(exec.RNG(cfg.Seed, streamFigQ, int64(ui), int64(s), subGen), u)
	if err != nil {
		return figqOutcome{}, fmt.Errorf("fig6/7 u=%.2f system %d: %w", u, s, err)
	}
	jobs := ts.Jobs()
	measure := func(sc *sched.Schedule, err error) qOutcome {
		if err != nil {
			return qOutcome{}
		}
		return qOutcome{Psi: sc.Psi(), Ups: sc.Upsilon(curve), OK: true}
	}
	var o figqOutcome
	o.Offline = measure((fps.Offline{}).Schedule(jobs))
	o.CP = measure((gpiocp.Scheduler{}).Schedule(jobs))
	o.Static = measure(staticsched.New(staticsched.Options{}).Schedule(jobs))
	gaOpts := cfg.solverOpts(streamFigQ, int64(ui), int64(s))
	gaOpts.Curve = curve
	if res, err := scheduleGA(ts, gaOpts); err == nil {
		front := res[ts.Devices()[0]]
		o.GA = qOutcome{Psi: front.BestPsi().Psi, Ups: front.BestUpsilon().Upsilon, OK: true}
	}
	return o, nil
}

// figqAggregate folds an outcome grid into the Figure 6 and 7 results in
// grid order — shared by the in-process runner and the shard merge path.
// A nil has aggregates the complete grid; a partial cover's predicate
// restricts the per-method means to the present systems.
func figqAggregate(cfg Config, us []float64, at func(o, i int) figqOutcome, has func(o, i int) bool) (*FigQResult, *FigQResult) {
	psi := &FigQResult{Metric: "Psi"}
	ups := &FigQResult{Metric: "Upsilon"}
	for ui, u := range us {
		psiSum := map[string]float64{}
		upsSum := map[string]float64{}
		n := map[string]int{}
		for s := 0; s < cfg.Systems; s++ {
			if has != nil && !has(ui, s) {
				continue
			}
			o := at(ui, s)
			for _, mq := range []struct {
				method string
				q      qOutcome
			}{
				{MethodFPSOffline, o.Offline},
				{MethodGPIOCP, o.CP},
				{MethodStatic, o.Static},
				{MethodGA, o.GA},
			} {
				if mq.q.OK {
					psiSum[mq.method] += mq.q.Psi
					upsSum[mq.method] += mq.q.Ups
					n[mq.method]++
				}
			}
		}
		pp := FigQPoint{U: u, Mean: map[string]float64{}, N: map[string]int{}}
		up := FigQPoint{U: u, Mean: map[string]float64{}, N: map[string]int{}}
		for _, m := range FigQMethods {
			if n[m] > 0 {
				pp.Mean[m] = psiSum[m] / float64(n[m])
				up.Mean[m] = upsSum[m] / float64(n[m])
			}
			pp.N[m] = n[m]
			up.N[m] = n[m]
		}
		psi.Points = append(psi.Points, pp)
		ups.Points = append(ups.Points, up)
	}
	return psi, ups
}

// Rows renders the result as a text table.
func (r *FigQResult) Rows() ([]string, [][]string) {
	headers := []string{"U"}
	for _, m := range FigQMethods {
		headers = append(headers, m, "n")
	}
	var rows [][]string
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%.1f", p.U)}
		for _, m := range FigQMethods {
			row = append(row, fmt.Sprintf("%.3f", p.Mean[m]), fmt.Sprintf("%d", p.N[m]))
		}
		rows = append(rows, row)
	}
	return headers, rows
}

// PlotTitle implements Plottable; the title names the figure the
// result's metric belongs to.
func (r *FigQResult) PlotTitle() string {
	name, metric := figqTitle(r.Metric == "Psi")
	return name + ": " + metric
}

// Series converts the result to plot series.
func (r *FigQResult) Series() (xlabels []string, series []Curveable) {
	for _, p := range r.Points {
		xlabels = append(xlabels, fmt.Sprintf("%.1f", p.U))
	}
	for _, m := range FigQMethods {
		vals := make([]float64, len(r.Points))
		for i, p := range r.Points {
			vals[i] = p.Mean[m]
		}
		series = append(series, Curveable{Name: m, Values: vals})
	}
	return xlabels, series
}

// SummaryStats exposes simple aggregates for tests: the mean over all
// points per method.
func (r *FigQResult) SummaryStats() map[string]float64 {
	sums := map[string][]float64{}
	for _, p := range r.Points {
		for m, v := range p.Mean {
			sums[m] = append(sums[m], v)
		}
	}
	out := map[string]float64{}
	for m, vs := range sums {
		out[m] = stats.Mean(vs)
	}
	return out
}
