package experiment

// Shard/merge support: every grid runner decomposes into a cell
// computation and a grid-order aggregation (see gridSubset), so any cell
// subset can be evaluated by an independent process and re-aggregated
// later. This file is the bridge to internal/shard: it marshals cell
// subsets into shard files (Fig5Cells, FigQCells, …), rebuilds runner
// results from complete merged cell sets (Fig5FromCells, …), and drives
// whole sharded runs (RunShard).
//
// The invariant, inherited from the execution engine and enforced by the
// shard-equivalence tests: for any shard count and any parallelism,
// merging the N shard outputs and aggregating is identical to the
// unsharded run — each cell's randomness comes from a derived sub-seed
// over its (runner, point, system) path, the cell payloads round-trip
// losslessly through JSON, and the merge path re-enters the exact
// aggregation code the in-process runners use.

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/shard"
)

// ErrUnknownExperiment reports a selection that names no experiment;
// test with errors.Is (the CLI maps it to its historical exit code 2).
var ErrUnknownExperiment = errors.New("unknown experiment")

// Experiment names as the CLI and the shard files spell them.
const (
	ExpFig5        = "fig5"
	ExpFig6        = "fig6"
	ExpFig7        = "fig7"
	ExpTable1      = "table1"
	ExpMotivation  = "motivation"
	ExpAblation    = "ablation"
	ExpMultiDevice = "multidevice"
	// ExpAll selects every experiment.
	ExpAll = "all"
)

// AllExperiments lists the experiments in the CLI's canonical "all"
// order.
func AllExperiments() []string {
	return []string{ExpFig5, ExpFig6, ExpFig7, ExpTable1, ExpMotivation, ExpAblation, ExpMultiDevice}
}

// gridExperiments lists the experiments that carry a shardable cell grid
// (Table I is a closed-form cost model with no cells; merge re-renders it
// directly).
func gridExperiments() []string {
	return []string{ExpFig5, ExpFig6, ExpFig7, ExpMotivation, ExpAblation, ExpMultiDevice}
}

// ShardParams is the run parameterisation recorded in every shard file:
// everything that decides the grid contents and the rendered output,
// and nothing host-local (parallelism is deliberately absent — it never
// changes results, and each shard host picks its own). Merge rebuilds
// the experiment configuration from the recorded params exactly as the
// CLI builds one from its flags, and rejects shard files whose params
// differ.
//
// Zero values select the configuration defaults (matching the CLI's "0 =
// config default" flag semantics); Seed is always taken literally.
// RunShard records the params with every default resolved to its
// effective value, so shards of the same run merge regardless of which
// spelling (zero value or explicit default) produced them.
type ShardParams struct {
	PaperScale    bool  `json:"paper_scale,omitempty"`
	Systems       int   `json:"systems,omitempty"`
	Seed          int64 `json:"seed"`
	GAPopulation  int   `json:"ga_population,omitempty"`
	GAGenerations int   `json:"ga_generations,omitempty"`
	// AblationU is the ablation study utilisation (0 = 0.6, the CLI
	// default).
	AblationU float64 `json:"ablation_u,omitempty"`
	// MultiDeviceU and MultiDeviceCounts parameterise the partitioned
	// scaling study (0/nil = the CLI's U=0.8 over 1,2,4,8 devices).
	MultiDeviceU      float64 `json:"multidevice_u,omitempty"`
	MultiDeviceCounts []int   `json:"multidevice_counts,omitempty"`
	// MotivationWrites overrides the motivation experiment's write count
	// (0 = DefaultMotivation's).
	MotivationWrites int `json:"motivation_writes,omitempty"`
}

// Config resolves the sweep configuration the params describe, mirroring
// the CLI's flag handling so a merge reproduces the unsharded run's
// configuration bit for bit.
func (p ShardParams) Config() Config {
	cfg := Default()
	if p.PaperScale {
		cfg = PaperScale()
	}
	cfg.Seed = p.Seed
	if p.Systems > 0 {
		cfg.Systems = p.Systems
	}
	if p.GAPopulation > 0 {
		cfg.GA.Population = p.GAPopulation
	}
	if p.GAGenerations > 0 {
		cfg.GA.Generations = p.GAGenerations
	}
	return cfg
}

// Motivation resolves the motivation experiment configuration.
func (p ShardParams) Motivation() MotivationConfig {
	cfg := DefaultMotivation()
	cfg.Seed = p.Seed
	if p.MotivationWrites > 0 {
		cfg.Writes = p.MotivationWrites
	}
	return cfg
}

// ResolvedAblationU returns the ablation study utilisation.
func (p ShardParams) ResolvedAblationU() float64 {
	if p.AblationU == 0 {
		return 0.6
	}
	return p.AblationU
}

// ResolvedMultiDevice returns the partitioned-scaling study's total
// utilisation and device-count axis.
func (p ShardParams) ResolvedMultiDevice() (float64, []int) {
	u, counts := p.MultiDeviceU, p.MultiDeviceCounts
	if u == 0 {
		u = 0.8
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	return u, counts
}

// Normalised resolves every defaultable field to its effective value, so
// equivalent runs record byte-equal params no matter which zero-value
// spelling produced them — shard.Merge compares the recorded bytes, and
// a CLI shard must merge with a library shard of the same run. RunShard
// normalises before recording; dispatch drivers normalise before
// comparing a worker's output against the plan.
func (p ShardParams) Normalised() ShardParams {
	cfg := p.Config()
	p.Systems = cfg.Systems
	p.GAPopulation = cfg.GA.Population
	p.GAGenerations = cfg.GA.Generations
	p.AblationU = p.ResolvedAblationU()
	p.MultiDeviceU, p.MultiDeviceCounts = p.ResolvedMultiDevice()
	p.MotivationWrites = p.Motivation().Writes
	return p
}

// marshalCells encodes subset values as shard cells, recording each
// cell's derived seed.
func marshalCells[T any](refs []cellRef, vals []T, seedFor func(o, i int) int64) ([]shard.Cell, error) {
	cells := make([]shard.Cell, len(refs))
	for k, r := range refs {
		data, err := json.Marshal(vals[k])
		if err != nil {
			return nil, fmt.Errorf("experiment: encode cell (%d,%d): %w", r.o, r.i, err)
		}
		cells[k] = shard.Cell{Point: r.o, System: r.i, Seed: seedFor(r.o, r.i), Data: data}
	}
	return cells, nil
}

// cellsToGrid decodes a complete cell set into a dense grid. It rejects
// incomplete, duplicated or out-of-range cells — merge guarantees none of
// these, but the aggregators are public API and must not mis-aggregate a
// hand-assembled set silently. It is the partial grid builder
// (cellsToPartialGrid) plus a completeness requirement, so the two paths
// share one validation loop.
func cellsToGrid[T any](g shard.Grid, cells []shard.Cell) (grid[T], error) {
	out, _, cov, err := cellsToPartialGrid[T](g, cells)
	if err != nil {
		return grid[T]{}, err
	}
	if !cov.Complete() {
		return grid[T]{}, fmt.Errorf("experiment: %d cells for a %dx%d grid", len(cells), g.Points, g.Systems)
	}
	return out, nil
}

// unmarshalCell decodes one cell's payload.
func unmarshalCell[T any](c shard.Cell, into *T) error {
	if err := json.Unmarshal(c.Data, into); err != nil {
		return fmt.Errorf("experiment: decode cell (%d,%d): %w", c.Point, c.System, err)
	}
	return nil
}

// Fig5Cells evaluates the selected cells of the Figure 5 grid
// (utilisation points × systems) and returns them as shard cells.
func Fig5Cells(cfg Config, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	us := Fig5Utils()
	g := shard.Grid{Points: len(us), Systems: cfg.Systems}
	refs, vals, err := gridSubset(cfg.Parallelism, g.Points, g.Systems, sel,
		func(ui, s int) (fig5Outcome, error) { return fig5Cell(cfg, us, ui, s) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(o, i int) int64 {
		return exec.DeriveSeed(cfg.Seed, streamFig5, int64(o), int64(i), subGen)
	})
	return cells, g, err
}

// Fig5FromCells rebuilds the Figure 5 result from a complete (merged)
// cell set, via the same aggregation the in-process runner uses.
func Fig5FromCells(cfg Config, cells []shard.Cell) (*Fig5Result, error) {
	us := Fig5Utils()
	g, err := cellsToGrid[fig5Outcome](shard.Grid{Points: len(us), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	return fig5Aggregate(cfg, us, g.at, nil), nil
}

// FigQCells evaluates the selected cells of the Figures 6/7 grid. One
// cell set serves both figures: each payload carries every offline
// method's (Ψ, Υ) outcome.
func FigQCells(cfg Config, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	us := FigQUtils()
	g := shard.Grid{Points: len(us), Systems: cfg.Systems}
	if err := figqCheck(cfg); err != nil {
		return nil, g, err
	}
	refs, vals, err := gridSubset(cfg.Parallelism, g.Points, g.Systems, sel,
		func(ui, s int) (figqOutcome, error) { return figqCell(cfg, us, ui, s) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(o, i int) int64 {
		return exec.DeriveSeed(cfg.Seed, streamFigQ, int64(o), int64(i), subGen)
	})
	return cells, g, err
}

// FigQFromCells rebuilds the Figure 6 (Ψ) and Figure 7 (Υ) results from a
// complete cell set.
func FigQFromCells(cfg Config, cells []shard.Cell) (*FigQResult, *FigQResult, error) {
	us := FigQUtils()
	g, err := cellsToGrid[figqOutcome](shard.Grid{Points: len(us), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, nil, fmt.Errorf("fig6/7: %w", err)
	}
	psi, ups := figqAggregate(cfg, us, g.at, nil)
	return psi, ups, nil
}

// MotivationCells evaluates the selected cells of the motivation
// experiment's 1 × 2 design grid.
func MotivationCells(cfg MotivationConfig, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	g := shard.Grid{Points: 1, Systems: motivationDesigns}
	if err := motivationCheck(cfg); err != nil {
		return nil, g, err
	}
	refs, vals, err := gridSubset(cfg.Parallelism, g.Points, g.Systems, sel,
		func(_, design int) (motivationOutcome, error) { return motivationCell(cfg, design) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(_, design int) int64 {
		if design == 0 {
			// Only the remote design draws randomness (cross-traffic).
			return exec.DeriveSeed(cfg.Seed, streamMotivation)
		}
		return 0
	})
	return cells, g, err
}

// MotivationFromCells rebuilds the motivation result from a complete cell
// set.
func MotivationFromCells(cfg MotivationConfig, cells []shard.Cell) (*MotivationResult, error) {
	g, err := cellsToGrid[motivationOutcome](shard.Grid{Points: 1, Systems: motivationDesigns}, cells)
	if err != nil {
		return nil, fmt.Errorf("motivation: %w", err)
	}
	return motivationAggregate(g.at), nil
}

// AblationCells evaluates the selected cells of the ablation study's
// 1 × Systems grid at utilisation u.
func AblationCells(cfg Config, u float64, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	g := shard.Grid{Points: 1, Systems: cfg.Systems}
	refs, vals, err := gridSubset(cfg.Parallelism, g.Points, g.Systems, sel,
		func(_, s int) ([]qOutcome, error) { return ablationCell(cfg, u, s) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(_, s int) int64 {
		return exec.DeriveSeed(cfg.Seed, streamAblation, ablationUTag(u), int64(s), subGen)
	})
	return cells, g, err
}

// AblationFromCells rebuilds the ablation study from a complete cell set.
func AblationFromCells(cfg Config, cells []shard.Cell) ([]AblationResult, error) {
	g, err := cellsToGrid[[]qOutcome](shard.Grid{Points: 1, Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	return ablationAggregate(cfg, g.at, nil), nil
}

// MultiDeviceCells evaluates the selected cells of the partitioned
// scaling study's device-counts × systems grid.
func MultiDeviceCells(cfg Config, u float64, deviceCounts []int, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	g := shard.Grid{Points: len(deviceCounts), Systems: cfg.Systems}
	if err := multiDeviceCheck(deviceCounts); err != nil {
		return nil, g, err
	}
	refs, vals, err := gridSubset(cfg.Parallelism, g.Points, g.Systems, sel,
		func(di, s int) (qOutcome, error) { return multiDeviceCell(cfg, u, deviceCounts, di, s) })
	if err != nil {
		return nil, g, err
	}
	cells, err := marshalCells(refs, vals, func(di, s int) int64 {
		return exec.DeriveSeed(cfg.Seed, streamMultiDevice, int64(di), int64(s), subGen)
	})
	return cells, g, err
}

// MultiDeviceFromCells rebuilds the scaling study from a complete cell
// set.
func MultiDeviceFromCells(cfg Config, deviceCounts []int, cells []shard.Cell) ([]MultiDevicePoint, error) {
	g, err := cellsToGrid[qOutcome](shard.Grid{Points: len(deviceCounts), Systems: cfg.Systems}, cells)
	if err != nil {
		return nil, fmt.Errorf("multidevice: %w", err)
	}
	return multiDeviceAggregate(cfg, deviceCounts, g.at, nil), nil
}

// SelectionRuns expands a CLI selection ("all" or one experiment name)
// into the grid experiments a shard file for that selection records, in
// canonical order. It rejects selections with no grid to shard: Table I
// is a closed-form model, and unknown names report ErrUnknownExperiment.
func SelectionRuns(selection string) ([]string, error) {
	if selection == ExpAll {
		return gridExperiments(), nil
	}
	for _, name := range gridExperiments() {
		if selection == name {
			return []string{name}, nil
		}
	}
	if selection == ExpTable1 {
		return nil, fmt.Errorf("experiment: %q is a closed-form model with no grid to shard; run it directly", selection)
	}
	return nil, fmt.Errorf("experiment: %w %q", ErrUnknownExperiment, selection)
}

// RunShard evaluates shard index of shards for the given selection ("all"
// or one grid experiment) and returns the versioned shard file recording
// the run parameters and every evaluated cell. The decomposition is
// round-robin over each runner's grid, so all shards carry a near-equal
// share of every utilisation point. Figures 6 and 7 share one cell grid:
// their cells are computed once and recorded under both names, exactly as
// an unsharded "all" run renders one computation twice.
func RunShard(selection string, p ShardParams, parallelism, shards, index int) (*shard.File, error) {
	plan, err := shard.NewPlan(shards, index)
	if err != nil {
		return nil, err
	}
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, err
	}
	p = p.Normalised()
	cfg := p.Config()
	cfg.Parallelism = parallelism
	params, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("experiment: encode params: %w", err)
	}
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: selection,
		Shards:    shards,
		Index:     index,
		Params:    params,
	}
	var figq []shard.Cell
	var figqGrid shard.Grid
	for _, name := range names {
		var (
			cells []shard.Cell
			g     shard.Grid
		)
		switch name {
		case ExpFig5:
			cells, g, err = Fig5Cells(cfg, plan.Selector(cfg.Systems))
		case ExpFig6, ExpFig7:
			if figq == nil {
				figq, figqGrid, err = FigQCells(cfg, plan.Selector(cfg.Systems))
			}
			cells, g = figq, figqGrid
		case ExpMotivation:
			mcfg := p.Motivation()
			mcfg.Parallelism = parallelism
			cells, g, err = MotivationCells(mcfg, plan.Selector(motivationDesigns))
		case ExpAblation:
			cells, g, err = AblationCells(cfg, p.ResolvedAblationU(), plan.Selector(cfg.Systems))
		case ExpMultiDevice:
			u, counts := p.ResolvedMultiDevice()
			cells, g, err = MultiDeviceCells(cfg, u, counts, plan.Selector(cfg.Systems))
		default:
			err = fmt.Errorf("experiment: no cell runner for %q", name)
		}
		if err != nil {
			return nil, err
		}
		f.Runs = append(f.Runs, shard.Run{Experiment: name, Grid: g, Cells: cells})
	}
	return f, nil
}
