package experiment

// Shard/merge support: every grid experiment decomposes into a cell
// computation and a grid-order aggregation (see engine.go), so any cell
// subset can be evaluated by an independent process and re-aggregated
// later. This file is the bridge to internal/shard: ShardParams is the
// run parameterisation recorded in every shard file, RunShard drives
// whole sharded runs through the registry, and the per-figure *Cells /
// *FromCells functions survive as thin deprecated wrappers over the
// generic engines.
//
// The invariant, inherited from the execution engine and enforced by the
// shard-equivalence tests: for any shard count and any parallelism,
// merging the N shard outputs and aggregating is identical to the
// unsharded run — each cell's randomness comes from a derived sub-seed
// over its (experiment, point, system) path, the cell payloads
// round-trip losslessly through the versioned codec, and the merge path
// re-enters the exact aggregation code the in-process runners use.

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/cellcache"
	"repro/internal/shard"
)

// ErrUnknownExperiment reports a selection that names no registered
// experiment; test with errors.Is (the CLI maps it to its historical
// exit code 2).
var ErrUnknownExperiment = errors.New("unknown experiment")

// Experiment names as the CLI and the shard files spell them.
const (
	ExpFig5        = "fig5"
	ExpFig6        = "fig6"
	ExpFig7        = "fig7"
	ExpTable1      = "table1"
	ExpMotivation  = "motivation"
	ExpAblation    = "ablation"
	ExpMultiDevice = "multidevice"
	ExpTailQ       = "tailq"
	// ExpJitter is the wall-clock replay jitter experiment. It is
	// non-reproducible (payloads measure the host), so ExpAll excludes
	// it: it only runs when named explicitly.
	ExpJitter = "jitter"
	// ExpAll selects every reproducible experiment.
	ExpAll = "all"
)

// AllExperiments lists the registered experiment names in the canonical
// "all" order.
//
// Deprecated: use Names, which this forwards to.
func AllExperiments() []string { return Names() }

// ShardParams is the run parameterisation recorded in every shard file:
// everything that decides the grid contents and the rendered output,
// and nothing host-local (parallelism is deliberately absent — it never
// changes results, and each shard host picks its own). Merge rebuilds
// the experiment configuration from the recorded params exactly as the
// CLI builds one from its flags, and rejects shard files whose params
// differ.
//
// Zero values select the configuration defaults (matching the CLI's "0 =
// config default" flag semantics); Seed is always taken literally.
// RunShard records the params with every default resolved to its
// effective value, so shards of the same run merge regardless of which
// spelling (zero value or explicit default) produced them.
type ShardParams struct {
	PaperScale    bool  `json:"paper_scale,omitempty"`
	Systems       int   `json:"systems,omitempty"`
	Seed          int64 `json:"seed"`
	GAPopulation  int   `json:"ga_population,omitempty"`
	GAGenerations int   `json:"ga_generations,omitempty"`
	// AblationU is the ablation study utilisation (0 = 0.6, the CLI
	// default).
	AblationU float64 `json:"ablation_u,omitempty"`
	// MultiDeviceU and MultiDeviceCounts parameterise the partitioned
	// scaling study (0/nil = the CLI's U=0.8 over 1,2,4,8 devices).
	MultiDeviceU      float64 `json:"multidevice_u,omitempty"`
	MultiDeviceCounts []int   `json:"multidevice_counts,omitempty"`
	// MotivationWrites overrides the motivation experiment's write count
	// (0 = DefaultMotivation's).
	MotivationWrites int `json:"motivation_writes,omitempty"`
	// The replay jitter experiment's knobs (0 = the defaults its
	// ParamDefaulter records; see replayjitter.go). Durations are in
	// nanoseconds because ShardParams is a wire format.
	ReplayTickNs  int64 `json:"replay_tick_ns,omitempty"`
	ReplayCapNs   int64 `json:"replay_cap_ns,omitempty"`
	ReplayWarmup  int   `json:"replay_warmup,omitempty"`
	ReplaySystems int   `json:"replay_systems,omitempty"`
	// ReplayNoPin disables sched-affinity pinning. The polarity is
	// inverted so the zero value means "pin", matching the harness
	// default.
	ReplayNoPin bool `json:"replay_no_pin,omitempty"`
}

// Config resolves the sweep configuration the params describe, mirroring
// the CLI's flag handling so a merge reproduces the unsharded run's
// configuration bit for bit.
func (p ShardParams) Config() Config {
	cfg := Default()
	if p.PaperScale {
		cfg = PaperScale()
	}
	cfg.Seed = p.Seed
	if p.Systems > 0 {
		cfg.Systems = p.Systems
	}
	if p.GAPopulation > 0 {
		cfg.GA.Population = p.GAPopulation
	}
	if p.GAGenerations > 0 {
		cfg.GA.Generations = p.GAGenerations
	}
	return cfg
}

// Motivation resolves the motivation experiment configuration.
func (p ShardParams) Motivation() MotivationConfig {
	cfg := DefaultMotivation()
	cfg.Seed = p.Seed
	if p.MotivationWrites > 0 {
		cfg.Writes = p.MotivationWrites
	}
	return cfg
}

// ResolvedAblationU returns the ablation study utilisation.
func (p ShardParams) ResolvedAblationU() float64 {
	if p.AblationU == 0 {
		return 0.6
	}
	return p.AblationU
}

// ResolvedMultiDevice returns the partitioned-scaling study's total
// utilisation and device-count axis.
func (p ShardParams) ResolvedMultiDevice() (float64, []int) {
	u, counts := p.MultiDeviceU, p.MultiDeviceCounts
	if u == 0 {
		u = 0.8
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	return u, counts
}

// Normalised resolves every defaultable field to its effective value, so
// equivalent runs record byte-equal params no matter which zero-value
// spelling produced them — shard.Merge compares the recorded bytes, and
// a CLI shard must merge with a library shard of the same run. RunShard
// normalises before recording; dispatch drivers normalise before
// comparing a worker's output against the plan.
//
// The base sweep fields resolve through Config; every registered
// experiment that owns params of its own resolves them through its
// ParamDefaulter hook, so the params layer never hard-codes an
// experiment.
func (p ShardParams) Normalised() ShardParams {
	cfg := p.Config()
	p.Systems = cfg.Systems
	p.GAPopulation = cfg.GA.Population
	p.GAGenerations = cfg.GA.Generations
	for _, e := range All() {
		if d, ok := e.(ParamDefaulter); ok {
			p = d.DefaultParams(p)
		}
	}
	return p
}

// HostFingerprint is the one-line host identity recorded in shard
// files holding non-reproducible runs: platform, CPU count and Go
// release — the coordinates a jitter distribution is meaningless
// without.
func HostFingerprint() string {
	return fmt.Sprintf("%s/%s cpus=%d %s",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version())
}

// marshalCells encodes subset values as shard cells, recording each
// cell's derived seed.
func marshalCells[T any](refs []cellRef, vals []T, seedFor func(o, i int) int64) ([]shard.Cell, error) {
	cells := make([]shard.Cell, len(refs))
	for k, r := range refs {
		data, err := json.Marshal(vals[k])
		if err != nil {
			return nil, fmt.Errorf("experiment: encode cell (%d,%d): %w", r.o, r.i, err)
		}
		cells[k] = shard.Cell{Point: r.o, System: r.i, Seed: seedFor(r.o, r.i), Data: data}
	}
	return cells, nil
}

// SelectionRuns expands a CLI selection ("all" or one experiment name)
// into the grid experiments a shard file for that selection records, in
// canonical order, resolving names through the registry. "all" expands
// to the reproducible grid experiments only — a non-reproducible
// experiment (replay jitter) runs when named explicitly, never as a
// stowaway that would break the byte-identity of an "all" run. It
// rejects selections with no grid to shard (Table I is a closed-form
// model) and reports ErrUnknownExperiment for unregistered names.
func SelectionRuns(selection string) ([]string, error) {
	if selection == ExpAll {
		return ReproducibleGridExperiments(), nil
	}
	e, ok := Lookup(selection)
	if !ok {
		return nil, fmt.Errorf("experiment: %w %q", ErrUnknownExperiment, selection)
	}
	if e.Codec().New == nil {
		return nil, fmt.Errorf("experiment: %q is a closed-form model with no grid to shard; run it directly", selection)
	}
	return []string{e.Name()}, nil
}

// SelectionReproducible reports whether every experiment the selection
// expands to keeps the byte-identical invariant. Unknown selections
// report true: the caller's next registry lookup surfaces the real
// error.
func SelectionReproducible(selection string) bool {
	names, err := SelectionRuns(selection)
	if err != nil {
		return true
	}
	for _, name := range names {
		if e, ok := Lookup(name); ok && !Reproducible(e) {
			return false
		}
	}
	return true
}

// RunShard evaluates shard index of shards for the given selection ("all"
// or one grid experiment) and returns the versioned shard file recording
// the run parameters and every evaluated cell. The decomposition is
// round-robin over each experiment's grid, so all shards carry a
// near-equal share of every utilisation point. Experiments sharing a
// cell key (Figures 6 and 7) are computed once and recorded under each
// name, exactly as an unsharded "all" run renders one computation twice.
func RunShard(selection string, p ShardParams, parallelism, shards, index int) (*shard.File, error) {
	return RunShardCached(selection, p, parallelism, shards, index, nil)
}

// RunShardCached is RunShard with a cell cache attached (nil behaves
// exactly like RunShard): cached cells are reused, computed cells are
// deposited, and the returned file is byte-identical to an uncached run's
// (see runCellsCached).
func RunShardCached(selection string, p ShardParams, parallelism, shards, index int, cache *cellcache.Store) (*shard.File, error) {
	plan, err := shard.NewPlan(shards, index)
	if err != nil {
		return nil, err
	}
	names, err := SelectionRuns(selection)
	if err != nil {
		return nil, err
	}
	p = p.Normalised()
	rc := p.Context(parallelism).WithCache(cache)
	params, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("experiment: encode params: %w", err)
	}
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: selection,
		Shards:    shards,
		Index:     index,
		Params:    params,
	}
	if !SelectionReproducible(selection) {
		// Non-reproducible payloads are measurements of a host; record
		// which one, so a reader of the file (or of a merge of files)
		// knows what produced the numbers.
		f.Host = HostFingerprint()
	}
	type computed struct {
		cells []shard.Cell
		grid  shard.Grid
	}
	byKey := make(map[string]computed)
	for _, name := range names {
		e, err := get(name)
		if err != nil {
			return nil, err
		}
		c, ok := byKey[e.CellKey()]
		if !ok {
			g, err := e.Grid(rc)
			if err != nil {
				return nil, err
			}
			cells, _, err := runCells(e, rc, plan.Selector(g.Systems))
			if err != nil {
				return nil, err
			}
			c = computed{cells: cells, grid: g}
			byKey[e.CellKey()] = c
		}
		f.Runs = append(f.Runs, shard.Run{
			Experiment:     name,
			Grid:           c.grid,
			PayloadVersion: e.Codec().Version,
			Cells:          c.cells,
		})
	}
	return f, nil
}

// The per-figure shard entry points, superseded by the generic engines.

// Fig5Cells evaluates the selected cells of the Figure 5 grid
// (utilisation points × systems) and returns them as shard cells.
//
// Deprecated: use RunCells(ExpFig5, …); this forwards to it.
func Fig5Cells(cfg Config, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	return RunCells(ExpFig5, contextFor(cfg), sel)
}

// Fig5FromCells rebuilds the Figure 5 result from a complete (merged)
// cell set, via the same aggregation the in-process runner uses.
//
// Deprecated: use FromCells(ExpFig5, …); this forwards to it.
func Fig5FromCells(cfg Config, cells []shard.Cell) (*Fig5Result, error) {
	res, err := FromCells(ExpFig5, contextFor(cfg), cells)
	if err != nil {
		return nil, err
	}
	return res.(*Fig5Result), nil
}

// FigQCells evaluates the selected cells of the Figures 6/7 grid. One
// cell set serves both figures: each payload carries every offline
// method's (Ψ, Υ) outcome.
//
// Deprecated: use RunCells(ExpFig6, …); this forwards to it.
func FigQCells(cfg Config, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	return RunCells(ExpFig6, contextFor(cfg), sel)
}

// FigQFromCells rebuilds the Figure 6 (Ψ) and Figure 7 (Υ) results from a
// complete cell set.
//
// Deprecated: use FromCells(ExpFig6, …) and FromCells(ExpFig7, …); this
// forwards to their shared decode and aggregation.
func FigQFromCells(cfg Config, cells []shard.Cell) (*FigQResult, *FigQResult, error) {
	rc := contextFor(cfg)
	psi, ups, cov, err := figqPair(rc, cells)
	if err != nil {
		return nil, nil, err
	}
	if !cov.Complete() {
		return nil, nil, fmt.Errorf("fig6/7: experiment: %d cells for a %dx%d grid",
			len(cells), len(FigQUtils()), rc.Config.Systems)
	}
	return psi, ups, nil
}

// MotivationCells evaluates the selected cells of the motivation
// experiment's 1 × 2 design grid.
//
// Deprecated: use RunCells(ExpMotivation, …); this forwards to it.
func MotivationCells(cfg MotivationConfig, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	return RunCells(ExpMotivation, motivationContext(cfg), sel)
}

// MotivationFromCells rebuilds the motivation result from a complete cell
// set.
//
// Deprecated: use FromCells(ExpMotivation, …); this forwards to it.
func MotivationFromCells(cfg MotivationConfig, cells []shard.Cell) (*MotivationResult, error) {
	res, err := FromCells(ExpMotivation, motivationContext(cfg), cells)
	if err != nil {
		return nil, err
	}
	return res.(*MotivationResult), nil
}

// AblationCells evaluates the selected cells of the ablation study's
// 1 × Systems grid at utilisation u (0 selects the 0.6 default,
// matching ShardParams semantics).
//
// Deprecated: use RunCells(ExpAblation, …); this forwards to it.
func AblationCells(cfg Config, u float64, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	rc := contextFor(cfg)
	rc.Params.AblationU = u
	return RunCells(ExpAblation, rc, sel)
}

// AblationFromCells rebuilds the ablation study from a complete cell set.
//
// Deprecated: use FromCells(ExpAblation, …); this forwards to it.
func AblationFromCells(cfg Config, cells []shard.Cell) ([]AblationResult, error) {
	res, err := FromCells(ExpAblation, contextFor(cfg), cells)
	if err != nil {
		return nil, err
	}
	return res.(AblationStudy), nil
}

// MultiDeviceCells evaluates the selected cells of the partitioned
// scaling study's device-counts × systems grid (a zero u or empty
// deviceCounts selects the defaults, matching ShardParams semantics).
//
// Deprecated: use RunCells(ExpMultiDevice, …); this forwards to it.
func MultiDeviceCells(cfg Config, u float64, deviceCounts []int, sel CellSelector) ([]shard.Cell, shard.Grid, error) {
	rc := contextFor(cfg)
	rc.Params.MultiDeviceU = u
	rc.Params.MultiDeviceCounts = deviceCounts
	return RunCells(ExpMultiDevice, rc, sel)
}

// MultiDeviceFromCells rebuilds the scaling study from a complete cell
// set.
//
// Deprecated: use FromCells(ExpMultiDevice, …); this forwards to it.
func MultiDeviceFromCells(cfg Config, deviceCounts []int, cells []shard.Cell) ([]MultiDevicePoint, error) {
	rc := contextFor(cfg)
	rc.Params.MultiDeviceCounts = deviceCounts
	res, err := FromCells(ExpMultiDevice, rc, cells)
	if err != nil {
		return nil, err
	}
	return res.(MultiDeviceResult), nil
}
