package gpiocphw

import (
	"fmt"
	"sort"

	"repro/internal/controller"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Request asks GPIOCP to execute task Task's pre-loaded program at cycle
// FireAt — GPIOCP's "execute I/O command X on device D at time Y".
type Request struct {
	Task int
	Job  int
	// FireAt is the instant the request enters the FIFO queue.
	FireAt timing.Cycle
}

// Processor is one GPIOCP instance bound to a device.
type Processor struct {
	k    *sim.Kernel
	mem  *controller.Memory
	exec controller.Executor

	fifo       []Request
	seqs       []uint64
	seq        uint64
	busy       bool
	executions []controller.Execution
	faults     []controller.Fault
}

// New builds a GPIOCP processor on the kernel.
func New(k *sim.Kernel, mem *controller.Memory, exec controller.Executor) (*Processor, error) {
	if k == nil || mem == nil || exec == nil {
		return nil, fmt.Errorf("gpiocphw: nil kernel, memory or executor")
	}
	return &Processor{k: k, mem: mem, exec: exec}, nil
}

// Submit schedules the request to fire at its FireAt instant. Must be
// called before the simulation reaches FireAt.
func (p *Processor) Submit(r Request) {
	p.k.At(r.FireAt, func() {
		p.seq++
		p.fifo = append(p.fifo, r)
		p.seqs = append(p.seqs, p.seq)
		if !p.busy {
			p.drain()
		}
	})
}

// drain pops the queue head and executes it; completion re-arms the drain.
func (p *Processor) drain() {
	if len(p.fifo) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	// FIFO: requests are appended in fire order; same-instant requests
	// keep submission order via seqs (already sorted by construction).
	r := p.fifo[0]
	p.fifo = p.fifo[1:]
	p.seqs = p.seqs[1:]
	start := p.k.Now()
	prog, ok := p.mem.Fetch(r.Task)
	if !ok {
		p.faults = append(p.faults, controller.Fault{
			Kind: controller.FaultMissingProgram, Task: r.Task, Job: r.Job, At: start,
		})
		p.drain()
		return
	}
	cursor := start
	for _, cmd := range prog {
		busy, _, err := p.exec.Exec(cmd, cursor)
		if err != nil {
			p.faults = append(p.faults, controller.Fault{
				Kind: controller.FaultExecError, Task: r.Task, Job: r.Job, At: cursor, Err: err,
			})
			break
		}
		cursor += busy
	}
	p.executions = append(p.executions, controller.Execution{
		Task: r.Task, Job: r.Job, Start: start, End: cursor,
	})
	if cursor == start {
		// Zero-length program: continue draining without re-scheduling.
		p.drain()
		return
	}
	p.k.At(cursor, p.drain)
}

// Executions returns completed executions sorted by start.
func (p *Processor) Executions() []controller.Execution {
	out := append([]controller.Execution(nil), p.executions...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Faults returns recorded faults.
func (p *Processor) Faults() []controller.Fault { return p.faults }
