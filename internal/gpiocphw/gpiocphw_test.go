package gpiocphw

import (
	"math/rand"
	"testing"

	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/gen"
	"repro/internal/sched/gpiocp"
	"repro/internal/sim"
	"repro/internal/timing"
)

func newProc(t *testing.T) (*sim.Kernel, *controller.Memory, *device.GPIOBank, *Processor) {
	t.Helper()
	var k sim.Kernel
	mem, err := controller.NewMemory(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := device.NewGPIOBank("g", 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(&k, mem, controller.GPIOExecutor{Bank: bank})
	if err != nil {
		t.Fatal(err)
	}
	return &k, mem, bank, p
}

func TestUncontendedRequestRunsAtFireTime(t *testing.T) {
	k, mem, bank, p := newProc(t)
	mem.Preload(0, controller.Program{{Op: controller.OpTogglePin, Pin: 0}})
	p.Submit(Request{Task: 0, Job: 0, FireAt: 123})
	k.Run(0)
	ex := p.Executions()
	if len(ex) != 1 || ex[0].Start != 123 {
		t.Fatalf("executions = %v", ex)
	}
	if es := bank.EdgesFor(0); len(es) != 1 || es[0].At != 123 {
		t.Errorf("edges = %v", es)
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	k, mem, _, p := newProc(t)
	mem.Preload(0, controller.Program{{Op: controller.OpWait, Arg: 100}})
	mem.Preload(1, controller.Program{{Op: controller.OpTogglePin, Pin: 1}})
	p.Submit(Request{Task: 0, Job: 0, FireAt: 10})
	p.Submit(Request{Task: 1, Job: 0, FireAt: 50}) // fires mid-execution
	k.Run(0)
	ex := p.Executions()
	if len(ex) != 2 {
		t.Fatalf("executions = %v", ex)
	}
	if ex[1].Start != 110 {
		t.Errorf("queued request started at %d, want 110 (after head)", ex[1].Start)
	}
}

func TestMissingProgramFaultContinues(t *testing.T) {
	k, mem, _, p := newProc(t)
	mem.Preload(1, controller.Program{{Op: controller.OpTogglePin, Pin: 0}})
	p.Submit(Request{Task: 9, Job: 0, FireAt: 10})
	p.Submit(Request{Task: 1, Job: 0, FireAt: 10})
	k.Run(0)
	if len(p.Faults()) != 1 || p.Faults()[0].Kind != controller.FaultMissingProgram {
		t.Fatalf("faults = %v", p.Faults())
	}
	if len(p.Executions()) != 1 {
		t.Fatalf("executions = %v", p.Executions())
	}
}

// The hardware FIFO model and the offline gpiocp schedule baseline must
// agree: same fire instants, same start times (modulo the µs→cycle scale).
func TestHardwareMatchesOfflineBaseline(t *testing.T) {
	cfg := gen.PaperConfig()
	clock := timing.Clock10MHz
	for seed := int64(0); seed < 5; seed++ {
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		jobs := ts.Jobs()
		offline, err := gpiocp.Scheduler{}.Schedule(jobs)
		if err != nil {
			continue // unschedulable under FIFO: hardware would miss too
		}
		k, mem, _, p := func() (*sim.Kernel, *controller.Memory, *device.GPIOBank, *Processor) {
			var k sim.Kernel
			mem, _ := controller.NewMemory(1 << 20)
			bank, _ := device.NewGPIOBank("g", 4)
			pr, _ := New(&k, mem, controller.GPIOExecutor{Bank: bank})
			return &k, mem, bank, pr
		}()
		// One program per task: busy-wait for the task's WCET in cycles.
		for i := range ts.Tasks {
			c := clock.ToCycles(ts.Tasks[i].C)
			mem.Preload(ts.Tasks[i].ID, controller.Program{{Op: controller.OpWait, Arg: uint64(c)}})
		}
		for i := range jobs {
			p.Submit(Request{
				Task: jobs[i].ID.Task, Job: jobs[i].ID.J,
				FireAt: clock.ToCycles(jobs[i].Ideal),
			})
		}
		k.Run(0)
		got := map[[2]int]timing.Cycle{}
		for _, e := range p.Executions() {
			got[[2]int{e.Task, e.Job}] = e.Start
		}
		for _, entry := range offline.Entries {
			want := clock.ToCycles(entry.Start)
			key := [2]int{entry.Job.ID.Task, entry.Job.ID.J}
			if got[key] != want {
				t.Fatalf("seed %d: job %v hardware start %d, offline %d",
					seed, entry.Job.ID, got[key], want)
			}
		}
	}
}

func TestNilArguments(t *testing.T) {
	var k sim.Kernel
	mem, _ := controller.NewMemory(64)
	bank, _ := device.NewGPIOBank("g", 1)
	if _, err := New(nil, mem, controller.GPIOExecutor{Bank: bank}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := New(&k, nil, controller.GPIOExecutor{Bank: bank}); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(&k, mem, nil); err == nil {
		t.Error("nil executor accepted")
	}
}
