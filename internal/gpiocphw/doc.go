// Package gpiocphw models the GPIOCP baseline hardware (Jiang & Audsley,
// DATE 2017) at the same level of detail as the proposed controller: timed
// requests fire into a FIFO queue, and a command executor drains the queue
// head-first, work-conservingly, with no scheduling table and no notion of
// deadlines. It shares the controller package's Memory and Executor
// abstractions so the two designs are directly comparable in simulation.
package gpiocphw
