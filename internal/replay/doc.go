// Package replay executes a computed schedule against a clock and
// measures delivered dispatch timing — the layer between "scheduled
// quality" (what the analytic schedulers in internal/sched promise)
// and "delivered quality" (what a real host actually fires).
//
// Run takes any sched.DeviceSchedules and plays each device partition
// on its own executor: one locked OS thread per device, optionally
// pinned to a CPU via sched-affinity where the platform supports it
// (Linux; elsewhere the harness degrades gracefully and reports the
// thread unpinned). Each sched.Entry is fired at its scaled start
// instant by a sleep-then-spin timer loop — sleep until shortly before
// the target, then busy-poll the monotonic clock across the final spin
// window — and every dispatch records a Sample pairing the intended
// instant with the observed one, plus the entry's deadline slack at
// the schedule's own timing scale.
//
// Samples reduce to a Stats distribution (exact count, missed-deadline
// count, mean/p50/p95/p99/max deviation, fixed-bound histogram)
// through internal/trace's Measure/Percentile machinery, so the
// hardware-level Ψ definition is shared with the simulated experiments
// rather than re-derived here.
//
// Clock is injectable: the default host clock reads the monotonic
// wall clock, while SimClock replays the identical state machine
// against a discrete-event sim.Kernel with a deterministic poll cost
// and optional injected oversleep. Everything above the Clock —
// ordering, cap accounting, deadline slack, histogram bucketing — is
// therefore unit-testable with exact expected outputs; real-clock
// nondeterminism is confined to the one hostClock leaf. That is also
// why the jitter experiment built on this package is registered
// non-reproducible: its payloads are measurements of the host, not
// functions of the seed. See docs/REPLAY.md.
package replay
