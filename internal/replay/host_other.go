//go:build !linux

package replay

import (
	"errors"
	"time"
)

// errPinUnsupported reports that this platform has no sched-affinity
// call the harness knows how to make. Callers degrade to an unpinned
// locked thread.
var errPinUnsupported = errors.New("replay: thread pinning unsupported on this platform")

func pinThread(cpu int) error { return errPinUnsupported }

func threadCPUTime() (time.Duration, bool) { return 0, false }
