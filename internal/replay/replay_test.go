package replay

import (
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// testSchedule builds a one-device schedule with entries at the given
// start ticks. Each job gets slack ticks of room between its start and
// its latest feasible start.
func testSchedule(dev taskmodel.DeviceID, starts []timing.Time, slack timing.Time) *sched.Schedule {
	s := &sched.Schedule{}
	for i, start := range starts {
		const c = timing.Time(1)
		s.Entries = append(s.Entries, sched.Entry{
			Job: taskmodel.Job{
				ID:       taskmodel.JobID{Task: int(dev), J: i},
				Release:  start,
				Deadline: start + c + slack,
				Ideal:    start,
				C:        c,
				Device:   dev,
			},
			Start: start,
		})
	}
	return s
}

// simOpts are the deterministic-mode options the exact-output tests
// share: 1ns poll, a 50ns spin window, no warmup, real-time tick.
func simOpts(c *SimClock) Options {
	return Options{Tick: time.Microsecond, SpinWindow: 50 * time.Nanosecond, Clock: c}
}

// TestSimExactDispatch pins the zero-jitter baseline: against a lag-free
// SimClock every dispatch lands on its target to the nanosecond.
func TestSimExactDispatch(t *testing.T) {
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{10, 20, 30}, 5),
	}
	clock := NewSimClock(1)
	rep, err := Run(ds, simOpts(clock))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Samples), 3; got != want {
		t.Fatalf("samples = %d, want %d", got, want)
	}
	for i, s := range rep.Samples {
		want := time.Duration(10*(i+1)) * time.Microsecond
		if s.Intended != want || s.Actual != want {
			t.Errorf("sample %d: intended %v actual %v, want both %v", i, s.Intended, s.Actual, want)
		}
		if s.Offset() != 0 || s.Missed() {
			t.Errorf("sample %d: offset %v missed %v, want exact hit", i, s.Offset(), s.Missed())
		}
	}
	st := rep.Stats
	if st.Dispatched != 3 || st.Exact != 3 || st.Missed != 0 || st.Skipped != 0 {
		t.Errorf("stats counts = %+v, want 3 dispatched, all exact", st)
	}
	if st.MeanNs != 0 || st.P50Ns != 0 || st.P99Ns != 0 || st.MaxNs != 0 {
		t.Errorf("stats deviations = %+v, want all zero", st)
	}
	if st.Hist[0] != 3 {
		t.Errorf("hist = %v, want all three in the exact bucket", st.Hist)
	}
	if clock.Wakes() != 3 || clock.Processed() != 3 {
		t.Errorf("wakes %d processed %d, want one kernel event per entry", clock.Wakes(), clock.Processed())
	}
}

// TestSimInjectedLag checks lateness accounting with deterministic
// oversleep: a wake that overshoots by lag lands lag−SpinWindow past
// the target.
func TestSimInjectedLag(t *testing.T) {
	// Slack is 1 tick = 1µs at this scale: the 500ns-late dispatches
	// hold their deadlines, the 5µs-late one misses.
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{10, 20, 30}, 1),
	}
	clock := NewSimClock(1)
	lags := []time.Duration{
		550 * time.Nanosecond,  // offset 500ns
		50 * time.Nanosecond,   // offset 0 (lag == spin window)
		5050 * time.Nanosecond, // offset 5µs > 1µs slack: miss
	}
	clock.Lag = func(wake int) time.Duration { return lags[wake] }
	rep, err := Run(ds, simOpts(clock))
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []time.Duration{500 * time.Nanosecond, 0, 5 * time.Microsecond}
	for i, s := range rep.Samples {
		if s.Offset() != wantOffsets[i] {
			t.Errorf("sample %d: offset %v, want %v", i, s.Offset(), wantOffsets[i])
		}
	}
	st := rep.Stats
	if st.Exact != 1 || st.Missed != 1 {
		t.Errorf("exact %d missed %d, want 1 and 1", st.Exact, st.Missed)
	}
	if st.MaxNs != 5000 || st.P50Ns != 500 {
		t.Errorf("max %dns p50 %dns, want 5000 and 500", st.MaxNs, st.P50Ns)
	}
	wantHist := []int64{1, 1, 1, 0, 0, 0, 0}
	for i, n := range wantHist {
		if st.Hist[i] != n {
			t.Fatalf("hist = %v, want %v", st.Hist, wantHist)
		}
	}
}

// TestSimCap checks that entries whose scaled start exceeds the cap are
// skipped and counted, not dispatched.
func TestSimCap(t *testing.T) {
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{10, 20, 30}, 5),
	}
	opts := simOpts(NewSimClock(1))
	opts.Cap = 15 * time.Microsecond
	rep, err := Run(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Dispatched != 1 || rep.Stats.Skipped != 2 {
		t.Errorf("dispatched %d skipped %d, want 1 and 2", rep.Stats.Dispatched, rep.Stats.Skipped)
	}
	if d := rep.Devices[0]; d.Dispatched != 1 || d.Skipped != 2 {
		t.Errorf("device report = %+v, want 1 dispatched 2 skipped", d)
	}
}

// TestSimMultiDeviceOrder checks deterministic-mode ordering: devices
// replay sequentially in device order, each against its own epoch, and
// the flattened sample order is device-major.
func TestSimMultiDeviceOrder(t *testing.T) {
	ds := sched.DeviceSchedules{
		2: testSchedule(2, []timing.Time{10}, 5),
		0: testSchedule(0, []timing.Time{10, 20}, 5),
	}
	rep, err := Run(ds, simOpts(NewSimClock(1)))
	if err != nil {
		t.Fatal(err)
	}
	wantDev := []taskmodel.DeviceID{0, 0, 2}
	if len(rep.Samples) != len(wantDev) {
		t.Fatalf("samples = %d, want %d", len(rep.Samples), len(wantDev))
	}
	for i, s := range rep.Samples {
		if s.Device != wantDev[i] || s.Offset() != 0 {
			t.Errorf("sample %d: device %d offset %v, want device %d exact", i, s.Device, s.Offset(), wantDev[i])
		}
	}
	if len(rep.Devices) != 2 || rep.Devices[0].Device != 0 || rep.Devices[1].Device != 2 {
		t.Errorf("device reports out of order: %+v", rep.Devices)
	}
	for _, d := range rep.Devices {
		if d.Pinned {
			t.Errorf("device %d pinned in deterministic mode", d.Device)
		}
	}
}

// TestSimWarmup checks that warmup dispatches run before the epoch and
// do not contaminate the samples.
func TestSimWarmup(t *testing.T) {
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{10}, 5),
	}
	clock := NewSimClock(1)
	opts := simOpts(clock)
	opts.Warmup = 3
	rep, err := Run(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != 1 || rep.Samples[0].Offset() != 0 {
		t.Fatalf("samples = %+v, want one exact dispatch", rep.Samples)
	}
	if clock.Wakes() != 4 {
		t.Errorf("wakes = %d, want 3 warmup + 1 entry", clock.Wakes())
	}
}

// TestSimTickScaling checks that Tick rescales intended instants and
// deadline slack together.
func TestSimTickScaling(t *testing.T) {
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{10}, 3),
	}
	opts := simOpts(NewSimClock(1))
	opts.Tick = 10 * time.Microsecond
	rep, err := Run(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Samples[0]
	if s.Intended != 100*time.Microsecond {
		t.Errorf("intended = %v, want 100µs at 10µs/tick", s.Intended)
	}
	if s.Slack != 30*time.Microsecond {
		t.Errorf("slack = %v, want 30µs at 10µs/tick", s.Slack)
	}
}

func TestRunOptionErrors(t *testing.T) {
	ds := sched.DeviceSchedules{0: testSchedule(0, []timing.Time{10}, 5)}
	for _, opts := range []Options{
		{Tick: -time.Microsecond},
		{Cap: -time.Second},
		{Warmup: -1},
		{SpinWindow: -time.Nanosecond},
	} {
		if _, err := Run(ds, opts); err == nil {
			t.Errorf("Run(%+v) accepted invalid options", opts)
		}
	}
	if _, err := Run(sched.DeviceSchedules{0: nil}, Options{}); err == nil {
		t.Error("Run accepted a nil schedule")
	}
}

func TestHistBuckets(t *testing.T) {
	if got, want := len(HistLabels()), len(HistBounds())+1; got != want {
		t.Fatalf("len(HistLabels) = %d, want %d", got, want)
	}
	cases := []struct {
		dev  time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 1},
		{time.Microsecond, 1},
		{time.Microsecond + 1, 2},
		{10 * time.Microsecond, 2},
		{100 * time.Microsecond, 3},
		{time.Millisecond, 4},
		{10 * time.Millisecond, 5},
		{10*time.Millisecond + 1, 6},
		{time.Hour, 6},
	}
	for _, c := range cases {
		if got := histBucket(c.dev); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.dev, got, c.want)
		}
	}
}

// TestRealClockSmoke runs the real-time path — locked threads, pinning
// requested, host clocks — on a short schedule. Assertions are
// structural and generously bounded: this is a shared machine, not a
// calibrated rig.
func TestRealClockSmoke(t *testing.T) {
	ds := sched.DeviceSchedules{
		0: testSchedule(0, []timing.Time{100, 300, 500}, 1000),
		1: testSchedule(1, []timing.Time{200, 400}, 1000),
	}
	rep, err := Run(ds, Options{Warmup: 8, Pin: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Dispatched != 5 || len(rep.Samples) != 5 {
		t.Fatalf("dispatched = %d, want all 5 entries", rep.Stats.Dispatched)
	}
	for i, s := range rep.Samples {
		if s.Offset() < 0 {
			t.Errorf("sample %d dispatched early by %v", i, -s.Offset())
		}
		if s.Offset() > 10*time.Second {
			t.Errorf("sample %d offset %v is implausible", i, s.Offset())
		}
	}
	var total int64
	for _, n := range rep.Stats.Hist {
		total += n
	}
	if total != 5 {
		t.Errorf("histogram counts %d samples, want 5", total)
	}
	if len(rep.Devices) != 2 {
		t.Fatalf("device reports = %d, want 2", len(rep.Devices))
	}
	for _, d := range rep.Devices {
		if d.Wall <= 0 {
			t.Errorf("device %d wall = %v, want positive", d.Device, d.Wall)
		}
		// Pinned may be false (no affinity syscall, or it was
		// refused): graceful degradation, not an error.
	}
}
