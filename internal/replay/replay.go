package replay

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Options configures a replay run. The zero value replays at real time
// (one scheduling tick = 1µs) with the default spin window, no cap, no
// warmup, and no pinning.
type Options struct {
	// Tick is the real duration of one scheduling tick. The schedule's
	// native scale is 1µs per tick; a larger Tick slows the replay down
	// (easier targets, longer wall-clock), a smaller one compresses it.
	// Zero means 1µs; negative is an error.
	Tick time.Duration
	// Cap bounds the replayed horizon per device: entries whose scaled
	// start instant exceeds Cap are skipped (and counted) rather than
	// dispatched, so an unattended run cannot burn a hyper-period of
	// wall-clock. Zero means no cap.
	Cap time.Duration
	// Warmup is the number of synthetic sleep-then-spin dispatches each
	// executor performs before its epoch is taken, so the measured
	// entries do not pay first-iteration costs (timer arming, paging,
	// frequency ramp).
	Warmup int
	// Pin requests sched-affinity pinning of each executor thread to
	// one CPU (device index modulo NumCPU). Unsupported platforms and
	// refused syscalls degrade to an unpinned locked thread, reported
	// per device — never an error.
	Pin bool
	// SpinWindow is how far before each target the executor stops
	// sleeping and starts busy-polling the clock. Zero means 100µs;
	// negative is an error.
	SpinWindow time.Duration
	// Clock, when non-nil, replaces the per-device host clocks with one
	// injected clock and switches Run to deterministic mode: devices
	// replay sequentially in device order on the calling goroutine, no
	// threads are locked or pinned, and no warmup is performed unless
	// requested. This is the unit-testing mode; see SimClock.
	Clock Clock
}

const (
	defaultTick       = time.Microsecond
	defaultSpinWindow = 100 * time.Microsecond
)

// Sample is one delivered dispatch: the instant the schedule intended
// (scaled to wall-clock) against the instant the executor observed.
type Sample struct {
	Device taskmodel.DeviceID
	Job    taskmodel.JobID
	// Intended is the entry's scaled start instant, relative to the
	// device epoch.
	Intended time.Duration
	// Actual is the observed dispatch instant, relative to the same
	// epoch. Never before Intended: the spin loop returns the first
	// observation at or past the target.
	Actual time.Duration
	// Slack is the scaled distance from the entry's start to the job's
	// latest feasible start (deadline − C). A dispatch later than
	// Intended+Slack would miss the job's deadline at this Tick scale.
	Slack time.Duration
}

// Offset returns how late (positive) or early (negative) the dispatch
// fired.
func (s *Sample) Offset() time.Duration { return s.Actual - s.Intended }

// Missed reports whether the dispatch fired past the job's latest
// feasible start — a deadline miss at the replay's own timing scale.
func (s *Sample) Missed() bool { return s.Offset() > s.Slack }

// DeviceReport describes one device executor's run.
type DeviceReport struct {
	Device taskmodel.DeviceID
	// Dispatched and Skipped partition the device's entries: fired
	// versus dropped by the Cap.
	Dispatched int
	Skipped    int
	// Pinned reports whether sched-affinity pinning succeeded on this
	// executor's thread. Always false when pinning was not requested,
	// unsupported, or in deterministic-clock mode.
	Pinned bool
	// Wall is the clock time from the device epoch to the last
	// dispatch observation.
	Wall time.Duration
	// CPU is the executor thread's consumed CPU time across the
	// measured region, when the platform can read it (CPUValid).
	CPU      time.Duration
	CPUValid bool
}

// Stats is the reduced jitter distribution over all samples of a run.
// Deviations are |Actual − Intended| in nanoseconds, reduced through
// internal/trace (one trace cycle = 1ns), so Exact is the
// hardware-level Ψ numerator.
type Stats struct {
	Dispatched int
	Skipped    int
	// Exact counts zero-deviation dispatches; Missed counts dispatches
	// past their job's latest feasible start.
	Exact  int
	Missed int
	// MeanNs, percentiles and MaxNs summarise the deviation
	// distribution (nearest-rank percentiles).
	MeanNs float64
	P50Ns  int64
	P95Ns  int64
	P99Ns  int64
	MaxNs  int64
	// Hist counts deviations per bucket; bucket i spans
	// (HistBounds[i-1], HistBounds[i]], bucket 0 is exactly zero, and
	// the final bucket is everything past the last bound.
	Hist []int64
}

// Report is the full outcome of one Run.
type Report struct {
	// Tick is the resolved tick scale the replay ran at.
	Tick time.Duration
	// Samples holds every dispatch in device order, entry order within
	// a device.
	Samples []Sample
	// Devices holds one report per device, in device order.
	Devices []DeviceReport
	Stats   Stats
}

// histBounds are the histogram bucket upper bounds. They are fixed —
// not derived from the observed range — so histograms from different
// hosts and runs are structurally comparable (same buckets, different
// counts), which is what lets the jitter experiment aggregate them by
// plain elementwise addition.
var histBounds = [...]time.Duration{
	0,
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
}

// HistBounds returns the histogram bucket upper bounds. Stats.Hist has
// len(HistBounds())+1 buckets; the last is the overflow bucket.
func HistBounds() []time.Duration {
	out := make([]time.Duration, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// HistLabels returns one short label per Stats.Hist bucket.
func HistLabels() []string {
	out := make([]string, len(histBounds)+1)
	for i, b := range histBounds {
		if b == 0 {
			out[i] = "0"
			continue
		}
		out[i] = "≤" + b.String()
	}
	out[len(histBounds)] = ">" + histBounds[len(histBounds)-1].String()
	return out
}

// histBucket returns the Stats.Hist index for an absolute deviation.
func histBucket(dev time.Duration) int {
	for i, b := range histBounds {
		if dev <= b {
			return i
		}
	}
	return len(histBounds)
}

// Run replays every device partition of ds and reduces the delivered
// dispatch timing. In real-time mode (Options.Clock nil) each device
// runs on its own locked, optionally pinned OS thread against its own
// monotonic clock; with an injected Clock the devices replay
// sequentially and deterministically. Device partitions are
// independent by construction (the fully-partitioned model), so each
// device measures against its own epoch.
func Run(ds sched.DeviceSchedules, opts Options) (*Report, error) {
	switch {
	case opts.Tick < 0:
		return nil, fmt.Errorf("replay: negative tick %v", opts.Tick)
	case opts.Cap < 0:
		return nil, fmt.Errorf("replay: negative cap %v", opts.Cap)
	case opts.Warmup < 0:
		return nil, fmt.Errorf("replay: negative warmup %d", opts.Warmup)
	case opts.SpinWindow < 0:
		return nil, fmt.Errorf("replay: negative spin window %v", opts.SpinWindow)
	}
	if opts.Tick == 0 {
		opts.Tick = defaultTick
	}
	if opts.SpinWindow == 0 {
		opts.SpinWindow = defaultSpinWindow
	}
	devs := make([]taskmodel.DeviceID, 0, len(ds))
	for dev, s := range ds {
		if s == nil {
			return nil, fmt.Errorf("replay: device %d has a nil schedule", dev)
		}
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(a, b int) bool { return devs[a] < devs[b] })

	reports := make([]DeviceReport, len(devs))
	samples := make([][]Sample, len(devs))
	if opts.Clock != nil {
		// Deterministic mode: one shared clock, sequential devices.
		for i, dev := range devs {
			reports[i], samples[i] = runDevice(dev, ds[dev], opts, opts.Clock, false)
		}
	} else {
		// Real-time mode: one locked OS thread per device. All
		// executors lock (and pin) first, then start together, so no
		// device's measured region overlaps another's thread setup.
		ready := make(chan struct{})
		var setup, done sync.WaitGroup
		setup.Add(len(devs))
		done.Add(len(devs))
		for i, dev := range devs {
			go func(i int, dev taskmodel.DeviceID) {
				defer done.Done()
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
				pinned := false
				if opts.Pin {
					pinned = pinThread(i%runtime.NumCPU()) == nil
				}
				setup.Done()
				<-ready
				reports[i], samples[i] = runDevice(dev, ds[dev], opts, newHostClock(), pinned)
			}(i, dev)
		}
		setup.Wait()
		close(ready)
		done.Wait()
	}

	rep := &Report{Tick: opts.Tick, Devices: reports}
	for _, s := range samples {
		rep.Samples = append(rep.Samples, s...)
	}
	st, err := reduce(rep.Samples, reports)
	if err != nil {
		return nil, err
	}
	rep.Stats = st
	return rep, nil
}

// scaleTicks converts a scheduling instant to wall-clock at the given
// tick scale.
func scaleTicks(t timing.Time, tick time.Duration) time.Duration {
	return time.Duration(t.Microseconds()) * tick
}

// runDevice replays one device partition against one clock: warmup
// dispatches on synthetic targets, then the real entries, each fired by
// sleep-until-window followed by a spin to the target. The device epoch
// is taken after warmup; all sample instants are epoch-relative.
func runDevice(dev taskmodel.DeviceID, s *sched.Schedule, opts Options, c Clock, pinned bool) (DeviceReport, []Sample) {
	rep := DeviceReport{Device: dev, Pinned: pinned}
	lead := opts.SpinWindow + time.Microsecond
	for i := 0; i < opts.Warmup; i++ {
		target := c.Now() + lead
		c.SleepUntil(target - opts.SpinWindow)
		spinWait(c, target)
	}
	cpu0, cpuOK := threadCPUTime()
	epoch := c.Now()
	samples := make([]Sample, 0, len(s.Entries))
	for i := range s.Entries {
		e := &s.Entries[i]
		intended := scaleTicks(e.Start, opts.Tick)
		if opts.Cap > 0 && intended > opts.Cap {
			rep.Skipped = len(s.Entries) - i
			break
		}
		c.SleepUntil(epoch + intended - opts.SpinWindow)
		actual := spinWait(c, epoch+intended) - epoch
		samples = append(samples, Sample{
			Device:   dev,
			Job:      e.Job.ID,
			Intended: intended,
			Actual:   actual,
			Slack:    scaleTicks(e.Job.LatestStart()-e.Start, opts.Tick),
		})
		rep.Dispatched++
	}
	rep.Wall = c.Now() - epoch
	if cpu1, ok := threadCPUTime(); cpuOK && ok {
		rep.CPU = cpu1 - cpu0
		rep.CPUValid = true
	}
	return rep, samples
}

// reduce folds samples into the jitter distribution via internal/trace
// (one cycle = 1ns).
func reduce(samples []Sample, devices []DeviceReport) (Stats, error) {
	st := Stats{Hist: make([]int64, len(histBounds)+1)}
	expected := make([]timing.Cycle, len(samples))
	observed := make([]timing.Cycle, len(samples))
	for i := range samples {
		s := &samples[i]
		expected[i] = timing.Cycle(s.Intended)
		observed[i] = timing.Cycle(s.Actual)
		if s.Missed() {
			st.Missed++
		}
		dev := s.Offset()
		if dev < 0 {
			dev = -dev
		}
		st.Hist[histBucket(dev)]++
	}
	r, err := trace.Measure(nil, expected, observed)
	if err != nil {
		return Stats{}, fmt.Errorf("replay: %w", err)
	}
	st.Dispatched = len(samples)
	for i := range devices {
		st.Skipped += devices[i].Skipped
	}
	st.Exact = r.Exact
	st.MeanNs = r.MeanDeviation
	st.P50Ns = int64(r.Percentile(50))
	st.P95Ns = int64(r.Percentile(95))
	st.P99Ns = int64(r.Percentile(99))
	st.MaxNs = int64(r.MaxDeviation)
	return st, nil
}
