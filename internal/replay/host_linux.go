//go:build linux

package replay

import (
	"fmt"
	"syscall"
	"time"
	"unsafe"
)

// affinityMaskCPUs is the widest CPU index the fixed-size affinity mask
// can express. 1024 matches the kernel's historical CPU_SETSIZE.
const affinityMaskCPUs = 1024

// pinThread binds the calling OS thread (which the caller must have
// locked with runtime.LockOSThread) to the single CPU cpu via
// sched_setaffinity(2) with pid 0. A raw syscall keeps the call on the
// calling thread itself.
func pinThread(cpu int) error {
	if cpu < 0 || cpu >= affinityMaskCPUs {
		return fmt.Errorf("replay: cpu %d outside affinity mask range [0,%d)", cpu, affinityMaskCPUs)
	}
	var mask [affinityMaskCPUs / 64]uint64
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("replay: sched_setaffinity(cpu %d): %w", cpu, errno)
	}
	return nil
}

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>: the
// per-thread CPU-time clock of the calling thread.
const clockThreadCPUTimeID = 3

// threadCPUTime returns the calling thread's consumed CPU time. The
// boolean is false when the platform cannot read it.
func threadCPUTime() (time.Duration, bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.RawSyscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec), true
}
