package replay

import (
	"time"

	"repro/internal/sim"
	"repro/internal/timing"
)

// Clock is the time source a device executor runs against. Instants are
// durations since the clock's own epoch; callers only ever compare and
// subtract them, so the epoch is arbitrary as long as it is fixed.
//
// The host implementation reads the monotonic clock; SimClock replays
// the same state machine deterministically. Implementations need not be
// safe for concurrent use — each executor owns its clock.
type Clock interface {
	// Now returns the current instant. Observing the clock may itself
	// cost time (it does on SimClock, by design): two consecutive calls
	// need not return the same value.
	Now() time.Duration
	// SleepUntil blocks until the clock reaches t. It returns
	// immediately when t is not in the future. The wake-up may be late
	// (the OS oversleeps; SimClock can inject lag) — precise arrival is
	// the spin phase's job, not the sleep's.
	SleepUntil(t time.Duration)
}

// hostClock is the real-time Clock: monotonic readings from time.Since
// against a fixed epoch, sleeps via time.Sleep of the positive
// remainder. One is created per device executor after its OS thread is
// locked, so readings never migrate between threads mid-run.
type hostClock struct {
	epoch time.Time
}

func newHostClock() *hostClock { return &hostClock{epoch: time.Now()} }

func (h *hostClock) Now() time.Duration { return time.Since(h.epoch) }

func (h *hostClock) SleepUntil(t time.Duration) {
	if d := t - h.Now(); d > 0 {
		time.Sleep(d)
	}
}

// SimClock is a deterministic Clock backed by a discrete-event
// sim.Kernel, one kernel cycle per nanosecond. It exists so the replay
// state machine — entry ordering, cap accounting, deadline slack,
// histogram bucketing — can be unit-tested with exact expected outputs.
//
// Observation costs time: each Now call returns the current instant and
// then advances the kernel by Poll, so a spin loop makes progress
// exactly as it would against real hardware, one poll per iteration.
// With the default 1ns poll and no injected lag, a sleep-then-spin
// dispatch lands on its target to the nanosecond, which pins the
// zero-jitter baseline in tests.
//
// The zero value is not ready to use; call NewSimClock.
type SimClock struct {
	// Poll is the simulated cost of one Now observation, in kernel
	// cycles (nanoseconds). Always >= 1: a free observation would let a
	// spin loop run forever without advancing time.
	Poll timing.Cycle
	// Lag, when non-nil, is called with the 0-based ordinal of each
	// SleepUntil wake-up and returns how far past the requested instant
	// the sleep overshoots — deterministic injected oversleep, for
	// testing lateness and missed-deadline accounting.
	Lag func(wake int) time.Duration

	kernel sim.Kernel
	wakes  int
}

// NewSimClock returns a SimClock whose Now observations cost poll
// nanoseconds each (poll < 1 is raised to 1).
func NewSimClock(poll timing.Cycle) *SimClock {
	if poll < 1 {
		poll = 1
	}
	return &SimClock{Poll: poll}
}

// Now returns the current simulated instant, then advances the kernel
// by the poll cost (firing any events that window covers).
func (c *SimClock) Now() time.Duration {
	now := c.kernel.Now()
	c.kernel.RunUntil(now + c.Poll)
	return time.Duration(now)
}

// SleepUntil advances the kernel to t (plus any injected Lag) through a
// scheduled wake-up event, mirroring a timer interrupt. Requests at or
// before the current instant return without advancing time or counting
// as a wake-up.
func (c *SimClock) SleepUntil(t time.Duration) {
	target := timing.Cycle(t)
	if target <= c.kernel.Now() {
		return
	}
	if c.Lag != nil {
		target += timing.Cycle(c.Lag(c.wakes))
	}
	c.wakes++
	c.kernel.At(target, func() {})
	c.kernel.RunUntil(target)
}

// Wakes returns how many SleepUntil calls actually slept.
func (c *SimClock) Wakes() int { return c.wakes }

// Processed returns the number of kernel events executed — one per
// wake-up — for auditing that the harness drove the simulator.
func (c *SimClock) Processed() uint64 { return c.kernel.Processed() }

// spinWait busy-polls c until it reaches target and returns the first
// observation at or past it — the dispatch timestamp. The caller is
// expected to have slept to within the spin window already; the loop
// body is a bare clock read so the final approach is as tight as the
// clock allows.
func spinWait(c Clock, target time.Duration) time.Duration {
	now := c.Now()
	for now < target {
		now = c.Now()
	}
	return now
}
