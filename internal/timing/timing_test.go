package timing

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0"},
		{1, "1us"},
		{999, "999us"},
		{Millisecond, "1ms"},
		{1440 * Millisecond, "1440ms"},
		{Second, "1s"},
		{2 * Second, "2s"},
		{1500, "1500us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if HyperPeriod1440ms.Milliseconds() != 1440 {
		t.Fatalf("hyper-period = %d ms, want 1440", HyperPeriod1440ms.Milliseconds())
	}
	if HyperPeriod1440ms.Microseconds() != 1_440_000 {
		t.Fatalf("hyper-period = %d us, want 1440000", HyperPeriod1440ms.Microseconds())
	}
	d := 3 * time.Millisecond
	if FromDuration(d) != 3*Millisecond {
		t.Errorf("FromDuration(3ms) = %v", FromDuration(d))
	}
	if (3 * Millisecond).Duration() != d {
		t.Errorf("Duration round trip = %v", (3 * Millisecond).Duration())
	}
	// Sub-microsecond precision truncates.
	if FromDuration(1500*time.Nanosecond) != 1 {
		t.Errorf("FromDuration(1500ns) = %v, want 1", FromDuration(1500*time.Nanosecond))
	}
}

func TestClockConversions(t *testing.T) {
	if Clock100MHz.CyclesPerMicrosecond() != 100 {
		t.Fatalf("100MHz cycles/us = %d", Clock100MHz.CyclesPerMicrosecond())
	}
	if got := Clock100MHz.ToCycles(5 * Microsecond); got != 500 {
		t.Errorf("ToCycles(5us) = %d, want 500", got)
	}
	if got := Clock100MHz.ToTime(500); got != 5 {
		t.Errorf("ToTime(500cy) = %v, want 5us", got)
	}
	if got := Clock10MHz.ToCycles(Millisecond); got != 10_000 {
		t.Errorf("10MHz ToCycles(1ms) = %d, want 10000", got)
	}
}

func TestClockPanicsOnFractional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-MHz-multiple clock")
		}
	}()
	ClockHz(1_500_000).CyclesPerMicrosecond()
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{12, 18, 6},
		{18, 12, 6},
		{7, 13, 1},
		{-12, 18, 6},
		{12, -18, 6},
		{1440, 360, 360},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{3, 7, 21},
		{120, 144, 720},
		{720, 1440, 1440},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	LCM(1<<62, (1<<62)-1)
}

func TestLCMTimes(t *testing.T) {
	if got := LCMTimes(nil); got != 0 {
		t.Errorf("LCMTimes(nil) = %v", got)
	}
	ts := []Time{120 * Millisecond, 160 * Millisecond, 180 * Millisecond}
	if got := LCMTimes(ts); got != HyperPeriod1440ms {
		t.Errorf("LCMTimes(120,160,180 ms) = %v, want 1440ms", got)
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int64{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	// 1440 = 2^5 * 3^2 * 5 has (5+1)(2+1)(1+1) = 36 divisors.
	if d := Divisors(1440); len(d) != 36 {
		t.Errorf("1440 has %d divisors, want 36", len(d))
	}
}

func TestDivisorsPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	Divisors(0)
}

func TestMinMaxAbs(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
}

// Property: GCD divides both operands and LCM is divisible by both.
func TestGCDLCMProperties(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		if x%g != 0 || y%g != 0 {
			return false
		}
		l := LCM(x, y)
		if x == 0 || y == 0 {
			return l == 0
		}
		return l%x == 0 && l%y == 0 && l > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every divisor returned by Divisors divides n, the list is
// strictly ascending, and contains 1 and n.
func TestDivisorsProperties(t *testing.T) {
	f := func(raw uint16) bool {
		n := int64(raw)%5000 + 1
		ds := Divisors(n)
		if ds[0] != 1 || ds[len(ds)-1] != n {
			return false
		}
		for i, d := range ds {
			if n%d != 0 {
				return false
			}
			if i > 0 && ds[i-1] >= d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: clock conversion round-trips exactly for whole microseconds.
func TestClockRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		tm := Time(raw % 10_000_000)
		return Clock100MHz.ToTime(Clock100MHz.ToCycles(tm)) == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: whole-microsecond Times round-trip exactly through
// time.Duration — the conversion the replay harness leans on when it
// scales schedule ticks to wall-clock instants.
func TestDurationRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		tm := Time(raw % 10_000_000)
		return FromDuration(tm.Duration()) == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: FromDuration truncates toward zero by less than one
// microsecond, so Duration(FromDuration(d)) never overshoots d.
func TestFromDurationTruncates(t *testing.T) {
	f := func(raw uint32) bool {
		d := time.Duration(raw) * time.Nanosecond
		back := FromDuration(d).Duration()
		return back <= d && d-back < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Negative durations truncate toward zero too (Go integer division).
	if FromDuration(-1500*time.Nanosecond) != -1 {
		t.Errorf("FromDuration(-1500ns) = %v, want -1", FromDuration(-1500*time.Nanosecond))
	}
}
