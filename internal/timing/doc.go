// Package timing provides the integer time base shared by the scheduling
// and hardware-simulation layers of the repository.
//
// All scheduling arithmetic uses Time, an int64 count of microseconds.
// The paper's 1440 ms hyper-period is therefore 1,440,000 ticks and every
// feasibility decision is exact integer arithmetic. The hardware layer uses
// Cycle, an int64 count of controller clock cycles; conversion between the
// two requires an explicit ClockHz value so that no implicit unit mixing can
// occur.
package timing
