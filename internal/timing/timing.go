package timing

import (
	"fmt"
	"time"
)

// Time is an instant or duration on the scheduling timeline, in microseconds.
// The zero Time is the start of the hyper-period.
type Time int64

// Common durations expressed in scheduling ticks.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// HyperPeriod1440ms is the hyper-period used throughout the paper's
// evaluation (Section V-A).
const HyperPeriod1440ms = 1440 * Millisecond

// String renders the time in the most natural unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0"
	case t%Second == 0:
		return fmt.Sprintf("%ds", int64(t/Second))
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(t/Millisecond))
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// Microseconds returns t as a raw microsecond count.
func (t Time) Microseconds() int64 { return int64(t) }

// Milliseconds returns t in milliseconds, truncating sub-millisecond ticks.
func (t Time) Milliseconds() int64 { return int64(t) / int64(Millisecond) }

// Duration converts t to a time.Duration for interoperability with the
// standard library. It never loses precision: one tick is 1 µs.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// FromDuration converts a time.Duration to scheduling ticks, truncating
// sub-microsecond precision.
func FromDuration(d time.Duration) Time { return Time(d / time.Microsecond) }

// Cycle is an instant or duration on the hardware timeline, counted in
// controller clock cycles.
type Cycle int64

// ClockHz describes a hardware clock frequency used to convert between the
// scheduling and hardware timelines.
type ClockHz int64

// Common controller clock rates.
const (
	Clock100MHz ClockHz = 100_000_000
	Clock50MHz  ClockHz = 50_000_000
	Clock10MHz  ClockHz = 10_000_000
)

// CyclesPerMicrosecond returns the number of cycles in one scheduling tick.
// It panics if the clock is not an integer multiple of 1 MHz, because a
// fractional cycles-per-tick ratio would make schedule translation inexact.
func (c ClockHz) CyclesPerMicrosecond() Cycle {
	if c <= 0 || c%1_000_000 != 0 {
		panic(fmt.Sprintf("timing: clock %d Hz is not a positive multiple of 1 MHz", c))
	}
	return Cycle(c / 1_000_000)
}

// ToCycles converts a scheduling time to hardware cycles at clock c.
func (c ClockHz) ToCycles(t Time) Cycle { return Cycle(t) * c.CyclesPerMicrosecond() }

// ToTime converts a hardware cycle count to scheduling time, truncating any
// sub-microsecond remainder.
func (c ClockHz) ToTime(cy Cycle) Time { return Time(cy / c.CyclesPerMicrosecond()) }

// GCD returns the greatest common divisor of a and b. GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 if either is 0.
// It panics on overflow, which in this repository indicates a malformed
// period set rather than a recoverable condition.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	q := a / g
	r := q * b
	if r/b != q {
		panic(fmt.Sprintf("timing: LCM(%d, %d) overflows int64", a, b))
	}
	if r < 0 {
		return -r
	}
	return r
}

// LCMTimes folds LCM over a list of Times. An empty list yields 0.
func LCMTimes(ts []Time) Time {
	var acc int64
	for i, t := range ts {
		if i == 0 {
			acc = int64(t)
			continue
		}
		acc = LCM(acc, int64(t))
	}
	return Time(acc)
}

// Divisors returns all positive divisors of n in ascending order.
// It panics if n <= 0.
func Divisors(n int64) []int64 {
	if n <= 0 {
		panic(fmt.Sprintf("timing: Divisors(%d): n must be positive", n))
	}
	var small, large []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if q := n / d; q != d {
				large = append(large, q)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// Min returns the smaller of two Times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two Times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of t.
func Abs(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}
