// Package hwcost estimates the FPGA implementation cost of the I/O
// controllers compared in Table I.
//
// The paper synthesises the designs with Vivado 2017.4 on a Xilinx VC709
// and reports LUTs, registers, DSPs, BRAM and power. That toolchain is a
// hardware gate for this reproduction, so the package substitutes a
// structural resource model: every design is described as a bill of
// materials over RTL primitives (registers, counters, comparators, FSMs,
// FIFO controllers, bus interfaces, decoders), each with a LUT/FF cost
// typical of a Xilinx 7-series mapping, and the estimator sums them.
// Dynamic power follows an activity-based model calibrated per design
// class (CPUs toggle almost every cycle; I/O controllers are mostly idle).
//
// The model's purpose is to reproduce Table I's *relationships* — the
// proposed controller costs ~30% more logic than GPIOCP and ~35% more than
// a basic MicroBlaze, a quarter of a full MicroBlaze, and an order of
// magnitude less power than either CPU — rather than the absolute LUT
// counts of a particular Vivado run. EXPERIMENTS.md records model vs paper
// for every cell.
package hwcost
