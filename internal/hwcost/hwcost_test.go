package hwcost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveCosts(t *testing.T) {
	if r := Reg(32); r.Registers != 32 || r.LUTs != 0 {
		t.Errorf("Reg(32) = %+v", r)
	}
	if r := Counter(16); r.LUTs != 16 || r.Registers != 16 {
		t.Errorf("Counter(16) = %+v", r)
	}
	if r := Comparator(64); r.LUTs != 32 {
		t.Errorf("Comparator(64) = %+v", r)
	}
	if r := Adder(32); r.LUTs != 32 {
		t.Errorf("Adder(32) = %+v", r)
	}
	if r := Mux(8, 1); r.LUTs != 0 {
		t.Errorf("degenerate mux = %+v", r)
	}
	if r := Mux(32, 4); r.LUTs != 64 {
		t.Errorf("Mux(32,4) = %+v", r)
	}
	if r := FSM(12, 16); r.Registers != 4+16 || r.LUTs != 24+16 {
		t.Errorf("FSM(12,16) = %+v", r)
	}
	if r := BRAM(32); r.BRAMKB != 32 {
		t.Errorf("BRAM(32) = %+v", r)
	}
	if r := DSP(6); r.DSPs != 6 {
		t.Errorf("DSP(6) = %+v", r)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := Resources{LUTs: 10, Registers: 20, DSPs: 1, BRAMKB: 2}
	b := Resources{LUTs: 5, Registers: 6, DSPs: 2, BRAMKB: 3}
	sum := a.Add(b)
	if sum.LUTs != 15 || sum.Registers != 26 || sum.DSPs != 3 || sum.BRAMKB != 5 {
		t.Errorf("Add = %+v", sum)
	}
}

// Every Table I cell of the model must land within 20% of the published
// value (BRAM and DSP exactly — they are provisioned, not estimated).
func TestModelMatchesPaperTable1(t *testing.T) {
	const tol = 0.20
	for _, row := range Table1() {
		if row.Paper.LUTs == 0 {
			t.Fatalf("%s: no paper row", row.Name)
		}
		if e := RelErr(float64(row.Model.LUTs), float64(row.Paper.LUTs)); math.Abs(e) > tol {
			t.Errorf("%s LUTs: model %d vs paper %d (%.0f%%)",
				row.Name, row.Model.LUTs, row.Paper.LUTs, e*100)
		}
		if e := RelErr(float64(row.Model.Registers), float64(row.Paper.Registers)); math.Abs(e) > tol {
			t.Errorf("%s registers: model %d vs paper %d (%.0f%%)",
				row.Name, row.Model.Registers, row.Paper.Registers, e*100)
		}
		if row.Model.DSPs != row.Paper.DSPs {
			t.Errorf("%s DSPs: model %d vs paper %d", row.Name, row.Model.DSPs, row.Paper.DSPs)
		}
		if row.Model.BRAMKB != row.Paper.BRAMKB {
			t.Errorf("%s BRAM: model %d vs paper %d", row.Name, row.Model.BRAMKB, row.Paper.BRAMKB)
		}
		if row.Paper.PowerMW > 0 {
			if e := RelErr(row.Model.PowerMW, row.Paper.PowerMW); math.Abs(e) > 0.35 {
				t.Errorf("%s power: model %.1f vs paper %.1f (%.0f%%)",
					row.Name, row.Model.PowerMW, row.Paper.PowerMW, e*100)
			}
		}
	}
}

// The section V-B claims, as ordering relations the model must reproduce.
func TestTable1Relationships(t *testing.T) {
	est := map[string]Resources{}
	for _, d := range AllDesigns() {
		est[d.Name] = d.Estimate()
	}
	p, g := est["Proposed"], est["GPIOCP"]
	mbB, mbF := est["MB-B"], est["MB-F"]

	// "utilises significantly less hardware than a MB-F (23.6% LUTs)".
	if r := float64(p.LUTs) / float64(mbF.LUTs); r > 0.35 || r < 0.15 {
		t.Errorf("Proposed/MB-F LUT ratio = %.2f, paper ≈ 0.24", r)
	}
	// "similar to a MB-B (135.4% LUTs)".
	if r := float64(p.LUTs) / float64(mbB.LUTs); r < 1.1 || r > 1.6 {
		t.Errorf("Proposed/MB-B LUT ratio = %.2f, paper ≈ 1.35", r)
	}
	// "additional 30.5% LUTs, 52.2% registers" over GPIOCP.
	if r := float64(p.LUTs)/float64(g.LUTs) - 1; r < 0.15 || r > 0.45 {
		t.Errorf("Proposed over GPIOCP LUTs = +%.0f%%, paper ≈ +30%%", r*100)
	}
	if r := float64(p.Registers)/float64(g.Registers) - 1; r < 0.30 || r > 0.75 {
		t.Errorf("Proposed over GPIOCP registers = +%.0f%%, paper ≈ +52%%", r*100)
	}
	// "only 8.7% and 4.6% power compared to the MB-B and MB-F".
	if r := p.PowerMW / mbB.PowerMW; r > 0.15 {
		t.Errorf("Proposed/MB-B power ratio = %.3f, paper ≈ 0.087", r)
	}
	if r := p.PowerMW / mbF.PowerMW; r > 0.10 {
		t.Errorf("Proposed/MB-F power ratio = %.3f, paper ≈ 0.046", r)
	}
	// Proposed costs more than every plain I/O controller.
	for _, name := range []string{"UART", "SPI", "CAN"} {
		if est[name].LUTs >= p.LUTs {
			t.Errorf("%s LUTs %d ≥ proposed %d", name, est[name].LUTs, p.LUTs)
		}
	}
}

func TestPowerModel(t *testing.T) {
	pm := PowerModel{ClockMHz: 100, StaticMW: 1, Activity: 0.5}
	r := Resources{LUTs: 100, Registers: 100, BRAMKB: 1, DSPs: 1}
	// dyn = 100 * (90 + 60 + 8 + 25)/1000 = 18.3; total = 1 + 9.15.
	want := 1 + 0.5*18.3
	if got := pm.Power(r); math.Abs(got-want) > 1e-9 {
		t.Errorf("power = %g, want %g", got, want)
	}
}

func TestRelErrPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RelErr(1, 0)
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	wantOrder := []string{"Proposed", "MB-B", "MB-F", "UART", "SPI", "CAN", "GPIOCP"}
	for i, r := range rows {
		if r.Name != wantOrder[i] {
			t.Errorf("row %d = %s, want %s", i, r.Name, wantOrder[i])
		}
	}
}

// Property: estimates are monotone — adding any block never reduces any
// resource, and power is non-decreasing in activity.
func TestEstimateMonotoneProperty(t *testing.T) {
	f := func(widthRaw, extraRaw uint8) bool {
		width := int(widthRaw)%64 + 1
		d := UARTController()
		base := d.Estimate()
		d.Blocks = append(d.Blocks, Counter(width))
		grown := d.Estimate()
		if grown.LUTs < base.LUTs || grown.Registers < base.Registers {
			return false
		}
		pmLow := PowerModel{ClockMHz: 100, StaticMW: 1, Activity: 0.1}
		pmHigh := PowerModel{ClockMHz: 100, StaticMW: 1, Activity: 0.9}
		return pmHigh.Power(grown) >= pmLow.Power(grown)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
