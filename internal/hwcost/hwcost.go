package hwcost

import "fmt"

// Resources is one design's implementation cost.
type Resources struct {
	LUTs      int
	Registers int
	DSPs      int
	BRAMKB    int
	PowerMW   float64
}

// Add returns the sum of two resource vectors (power excluded — power is
// computed from the total by Estimate).
func (r Resources) Add(o Resources) Resources {
	return Resources{
		LUTs:      r.LUTs + o.LUTs,
		Registers: r.Registers + o.Registers,
		DSPs:      r.DSPs + o.DSPs,
		BRAMKB:    r.BRAMKB + o.BRAMKB,
	}
}

// Primitive blocks. Costs follow common 7-series mapping rules of thumb:
// a flip-flop per register bit, a LUT per counter bit (increment + carry),
// half a LUT per comparator bit (carry chain packing), and so on.

// Reg is a plain register of the given width.
func Reg(bits int) Resources { return Resources{Registers: bits} }

// Counter is a loadable up-counter.
func Counter(bits int) Resources { return Resources{LUTs: bits, Registers: bits} }

// Comparator is an equality/magnitude comparator.
func Comparator(bits int) Resources { return Resources{LUTs: (bits + 1) / 2} }

// Adder is a ripple/carry-chain adder.
func Adder(bits int) Resources { return Resources{LUTs: bits} }

// Mux is a ways-to-1 multiplexer of the given width.
func Mux(width, ways int) Resources {
	if ways < 2 {
		return Resources{}
	}
	return Resources{LUTs: width * ((ways + 2) / 3)}
}

// FSM is a Moore machine with the given state and output counts.
func FSM(states, outputs int) Resources {
	bits := 0
	for 1<<bits < states {
		bits++
	}
	return Resources{LUTs: 2*states + outputs, Registers: bits + outputs}
}

// FIFOCtl is the control logic of a FIFO of the given depth and width,
// with LUTRAM storage (distributed RAM packs 32 bits per LUT pair).
func FIFOCtl(depth, width int) Resources {
	ptr := 1
	for 1<<ptr < depth {
		ptr++
	}
	storage := (depth*width + 31) / 32 * 2
	return Resources{
		LUTs:      storage + 2*ptr + (width+1)/2,
		Registers: 2*ptr + width,
	}
}

// BusInterface is a memory-mapped slave interface (address decode,
// handshake, read/write data paths).
func BusInterface(dataBits int) Resources {
	return Resources{LUTs: 3*dataBits + 30, Registers: 3*dataBits + 20}
}

// Decoder is an opcode/command decoder with the given input bits and
// decoded control signals.
func Decoder(inBits, signals int) Resources {
	return Resources{LUTs: signals*2 + inBits*4, Registers: signals / 2}
}

// BRAM provisions block RAM in kilobytes.
func BRAM(kb int) Resources { return Resources{BRAMKB: kb} }

// DSP provisions DSP48 slices.
func DSP(n int) Resources { return Resources{DSPs: n} }

// PowerModel computes dynamic power from the resource totals and a
// switching-activity factor, plus a static floor. The coefficients are
// mW per MHz of effective toggling, calibrated against the published
// MicroBlaze numbers.
type PowerModel struct {
	ClockMHz float64
	// StaticMW is the per-design leakage floor.
	StaticMW float64
	// Activity is the fraction of the design toggling each cycle.
	Activity float64
}

// Power evaluates the model on the resource totals.
func (pm PowerModel) Power(r Resources) float64 {
	dyn := pm.ClockMHz * (0.9*float64(r.LUTs) + 0.6*float64(r.Registers) +
		8*float64(r.BRAMKB) + 25*float64(r.DSPs)) / 1000
	return pm.StaticMW + pm.Activity*dyn
}

// Design is a named bill of materials plus its power model.
type Design struct {
	Name     string
	Blocks   []Resources
	PowerMod PowerModel
}

// Packing overheads: the primitive costs above are pre-synthesis
// estimates; place-and-route replication (fanout buffering, control-set
// splitting, pipeline balancing) inflates LUT and FF counts by a roughly
// constant factor on 7-series parts. The factors below are the single
// global calibration of the model, fitted once against the published
// MicroBlaze rows.
const (
	packOverheadLUT = 1.35
	packOverheadFF  = 1.25
)

// Estimate sums the blocks, applies the packing overheads and the power
// model.
func (d *Design) Estimate() Resources {
	var total Resources
	for _, b := range d.Blocks {
		total = total.Add(b)
	}
	total.LUTs = int(float64(total.LUTs)*packOverheadLUT + 0.5)
	total.Registers = int(float64(total.Registers)*packOverheadFF + 0.5)
	total.PowerMW = round1(d.PowerMod.Power(total))
	return total
}

func round1(x float64) float64 {
	return float64(int(x*10+0.5)) / 10
}

// Clock100 is the synthesis clock of the evaluation.
const Clock100 = 100.0

// idle and busy are the calibrated activity classes: dedicated I/O logic
// is mostly quiescent between I/O instants, while a CPU fetches and
// executes continuously.
const (
	activityIO      = 0.05
	activityCPUBase = 1.00
	activityCPUFull = 0.29
)

// ProposedController is the paper's I/O controller: one controller
// processor (scheduling table, request channel, execution module with
// global timer + synchroniser + fault recovery + EXU, response channel)
// plus the controller memory interface, with 32 KB of task storage.
func ProposedController() *Design {
	return &Design{
		Name: "Proposed",
		Blocks: []Resources{
			// Request channel: bus slave + request FIFO.
			BusInterface(32),
			FIFOCtl(16, 16),
			// Scheduling table: entry storage control (table body lives in
			// BRAM), next-entry pointer, fetch registers.
			FIFOCtl(8, 40),
			Reg(80),     // current + prefetched entry
			Counter(16), // table index
			// Execution module.
			Counter(64),    // global timer
			Comparator(64), // start-time match
			FSM(12, 16),    // synchroniser sequencing
			Reg(64),        // synchroniser working registers
			Mux(32, 4),     // command routing
			// Fault recovery unit.
			FSM(8, 8),
			FIFOCtl(8, 32), // fault log
			Comparator(32), // budget check
			// EXU.
			Decoder(8, 24),
			Counter(32), // wait/pulse counter
			Reg(64),     // operand/pin registers
			Mux(8, 8),   // pin output mux
			// Response channel.
			FIFOCtl(16, 32),
			BusInterface(32),
			// Controller memory interface + storage.
			Decoder(6, 12),
			Reg(48),
			BRAM(32),
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 0.5, Activity: activityIO},
	}
}

// GPIOCPController is the DATE 2017 baseline: pre-loading memory, a FIFO
// request queue and a command executor — no scheduling table, no
// synchroniser comparator tree, no fault recovery.
func GPIOCPController() *Design {
	return &Design{
		Name: "GPIOCP",
		Blocks: []Resources{
			BusInterface(32),
			FIFOCtl(16, 16), // request queue
			Counter(32),     // timestamp counter
			FSM(8, 10),      // executor sequencing
			Decoder(8, 20),
			Counter(32), // wait counter
			Reg(64),
			Mux(8, 8),
			FIFOCtl(16, 32), // response path
			BusInterface(32),
			Decoder(6, 10), // memory interface
			Reg(32),
			Counter(16), // queue occupancy counter
			Mux(16, 4),  // command field select
			Decoder(4, 8),
			Reg(16),
			BRAM(16),
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 0.5, Activity: activityIO},
	}
}

// MicroBlazeBasic approximates MB-B: a 3-stage integer pipeline with
// LUTRAM register file and 16 KB of local memory.
func MicroBlazeBasic() *Design {
	return &Design{
		Name: "MB-B",
		Blocks: []Resources{
			Reg(3 * 32),      // pipeline registers
			FIFOCtl(32, 32),  // register file in LUTRAM
			Adder(32),        // ALU add/sub
			Mux(32, 6),       // ALU operand/result muxes
			Decoder(32, 40),  // instruction decode
			Counter(32),      // program counter
			BusInterface(32), // LMB/AXI port
			FSM(12, 12),      // control
			Reg(64),          // special registers
			Adder(32),        // branch/address adder
			Reg(32),          // exception state
			BRAM(16),
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 2, Activity: activityCPUBase},
	}
}

// MicroBlazeFull approximates MB-F: 5-stage pipeline, barrel shifter,
// hardware multiplier/divider (DSP-mapped), FPU, MMU and caches.
func MicroBlazeFull() *Design {
	return &Design{
		Name: "MB-F",
		Blocks: []Resources{
			Reg(5 * 32),     // pipeline registers
			FIFOCtl(32, 32), // register file
			Adder(32),
			Mux(32, 10),
			Decoder(32, 80),
			Counter(32),
			BusInterface(32),
			BusInterface(32), // second (cache) port
			FSM(24, 24),
			Reg(256),        // MSR/ESR/FSR, MMU TLB registers
			FIFOCtl(64, 64), // MMU TLB / cache tags in LUTRAM
			Adder(64),       // FPU significand path
			Mux(64, 8),      // FPU normalisation
			Decoder(16, 64), // FPU/MMU control
			Reg(512),        // FPU pipeline registers
			FSM(32, 32),
			Mux(32, 32),      // barrel shifter (logarithmic)
			Adder(32),        // branch/address unit
			Reg(640),         // cache control + exception state
			Decoder(32, 128), // hazard/forwarding network
			Mux(64, 16),      // forwarding muxes
			FIFOCtl(64, 32),  // branch target buffer
			Decoder(16, 32),  // exception/interrupt controller
			FSM(24, 24),      // I-cache controller
			FSM(24, 24),      // D-cache controller
			FIFOCtl(8, 64),   // store buffer
			Mux(32, 8),       // writeback select
			Reg(1024),        // CSR bank, FPU state, cache-line registers
			DSP(6),           // multiplier + divider + FPU mul
			BRAM(128),        // caches + local memory
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 2, Activity: activityCPUFull},
	}
}

// UARTController is a mainstream UART (cf. Xilinx AXI UART Lite).
func UARTController() *Design {
	return &Design{
		Name: "UART",
		Blocks: []Resources{
			Counter(16), // baud generator
			Reg(10),     // TX shift
			Reg(10),     // RX shift
			FSM(4, 4),
			Decoder(4, 8), // register-select decode
			Reg(24),       // control/status/data registers
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 0.3, Activity: activityIO},
	}
}

// SPIController is a mainstream SPI master (cf. AXI Quad SPI): register
// heavy (config/status/shift registers) relative to its logic.
func SPIController() *Design {
	return &Design{
		Name: "SPI",
		Blocks: []Resources{
			Counter(16), // clock divider
			Reg(2 * 32), // TX/RX shift registers
			Reg(4 * 32), // control/status/slave-select registers
			FSM(8, 10),
			Decoder(6, 12), // register-select decode
			Reg(64),        // interrupt enable/status registers
			FIFOCtl(16, 8), // TX FIFO
			FIFOCtl(16, 8), // RX FIFO
			BusInterface(32),
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 0.3, Activity: activityIO},
	}
}

// CANController is a mainstream CAN node (cf. Xilinx CAN core): bit
// timing, stuffing, CRC, acceptance filters and buffers.
func CANController() *Design {
	return &Design{
		Name: "CAN",
		Blocks: []Resources{
			Counter(16),     // bit timing prescaler
			FSM(16, 16),     // bit stream processor
			FSM(16, 16),     // error management logic
			Reg(128),        // TX buffer
			Reg(64),         // RX staging buffer
			Comparator(32),  // acceptance filter
			Reg(64),         // filter mask/ID registers
			Adder(15),       // CRC-15 (transmit)
			Adder(15),       // CRC-15 (receive)
			Decoder(8, 24),  // bit stuffing/destuffing
			FIFOCtl(16, 16), // RX FIFO
			FIFOCtl(16, 16), // TX FIFO
			Mux(16, 4),      // field serialisation
			Decoder(8, 16),  // frame field sequencing
			BusInterface(32),
		},
		PowerMod: PowerModel{ClockMHz: Clock100, StaticMW: 0.3, Activity: activityIO},
	}
}

// PaperTable1 is the published Table I, for side-by-side reporting.
var PaperTable1 = map[string]Resources{
	"Proposed": {LUTs: 1156, Registers: 982, DSPs: 0, BRAMKB: 32, PowerMW: 11},
	"MB-B":     {LUTs: 854, Registers: 529, DSPs: 0, BRAMKB: 16, PowerMW: 127},
	"MB-F":     {LUTs: 4908, Registers: 4385, DSPs: 6, BRAMKB: 128, PowerMW: 238},
	"UART":     {LUTs: 93, Registers: 85, DSPs: 0, BRAMKB: 0, PowerMW: 1},
	"SPI":      {LUTs: 334, Registers: 552, DSPs: 0, BRAMKB: 0, PowerMW: 4},
	"CAN":      {LUTs: 711, Registers: 604, DSPs: 0, BRAMKB: 0, PowerMW: 5},
	"GPIOCP":   {LUTs: 886, Registers: 645, DSPs: 0, BRAMKB: 16, PowerMW: 7},
}

// AllDesigns returns the Table I rows in the paper's order.
func AllDesigns() []*Design {
	return []*Design{
		ProposedController(),
		MicroBlazeBasic(),
		MicroBlazeFull(),
		UARTController(),
		SPIController(),
		CANController(),
		GPIOCPController(),
	}
}

// Row is one reported table line: the model estimate next to the paper's
// published figure.
type Row struct {
	Name  string
	Model Resources
	Paper Resources
}

// Table1 evaluates every design.
func Table1() []Row {
	var rows []Row
	for _, d := range AllDesigns() {
		rows = append(rows, Row{Name: d.Name, Model: d.Estimate(), Paper: PaperTable1[d.Name]})
	}
	return rows
}

// RelErr returns the relative error of the model against the paper for a
// strictly positive paper value; comparing against a zero paper value is a
// caller bug.
func RelErr(model, paper float64) float64 {
	if paper == 0 {
		panic(fmt.Sprintf("hwcost: relative error against zero (model=%g)", model))
	}
	return (model - paper) / paper
}
