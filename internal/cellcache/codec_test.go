package cellcache

import (
	"encoding/json"
	"os"
	"testing"
)

func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEncoding(EncodingBinary); err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	data := json.RawMessage(`{"x":42,"s":"<&>"}`)
	if err := s.Put(k, 3, 7, -99, data); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.cellPath(k, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !isEnvelope(raw) {
		t.Fatalf("binary store wrote a non-envelope entry: %q", raw)
	}
	got, ok := s.Get(k, 3, 7, -99)
	if !ok || string(got) != string(data) {
		t.Fatalf("Get = %q, %v; want %s", got, ok, data)
	}
	// Wrong seed is still a miss.
	if _, ok := s.Get(k, 3, 7, 99); ok {
		t.Fatal("binary entry served under a different seed")
	}
}

// TestMixedEncodingDirectory: entries written under either encoding are
// served by a store configured with the other — reads auto-detect per
// entry, so flipping -codec never invalidates a warm cache.
func TestMixedEncodingDirectory(t *testing.T) {
	dir := t.TempDir()
	jsonStore, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	binStore, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := binStore.SetEncoding(EncodingBinary); err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	if err := jsonStore.Put(k, 0, 0, 1, json.RawMessage(`"via-json"`)); err != nil {
		t.Fatal(err)
	}
	if err := binStore.Put(k, 0, 1, 2, json.RawMessage(`"via-binary"`)); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Store{jsonStore, binStore} {
		if got, ok := s.Get(k, 0, 0, 1); !ok || string(got) != `"via-json"` {
			t.Fatalf("json entry via %q store: %q, %v", s.encoding, got, ok)
		}
		if got, ok := s.Get(k, 0, 1, 2); !ok || string(got) != `"via-binary"` {
			t.Fatalf("binary entry via %q store: %q, %v", s.encoding, got, ok)
		}
	}
}

// TestCorruptBinaryEnvelopeIsMiss pins the miss-never-error contract on
// the binary path.
func TestCorruptBinaryEnvelopeIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEncoding(EncodingBinary); err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	if err := s.Put(k, 1, 2, 5, json.RawMessage(`{"payload":"with enough bytes to truncate"}`)); err != nil {
		t.Fatal(err)
	}
	path := s.cellPath(k, 1, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"magic-only": func(b []byte) []byte { return b[:len(envelopeMagic)] },
		"payload-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		},
		"digest-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x01
			return c
		},
		"trailing": func(b []byte) []byte { return append(append([]byte(nil), b...), 0xff) },
	} {
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k, 1, 2, 5); ok {
			t.Fatalf("%s binary entry served", name)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(k, 1, 2, 5); !ok {
		t.Fatal("pristine entry no longer served")
	}
}

func TestSetEncodingRejectsUnknown(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEncoding("v3"); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	if err := s.SetEncoding(""); err != nil || s.encoding != EncodingJSON {
		t.Fatalf("empty encoding: %v, %q", err, s.encoding)
	}
}
