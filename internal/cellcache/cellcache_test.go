package cellcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	data := json.RawMessage(`{"x":42}`)
	if err := s.Put(k, 3, 7, 99, data); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k, 3, 7, 99)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(got) != string(data) {
		t.Fatalf("got %s, want %s", got, data)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMisses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	if _, ok := s.Get(k, 0, 0, 1); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, 0, 0, 1, json.RawMessage(`true`)); err != nil {
		t.Fatal(err)
	}
	// Wrong seed: the derivation changed, the entry must not be served.
	if _, ok := s.Get(k, 0, 0, 2); ok {
		t.Fatal("hit under a different seed")
	}
	// Other cell of the same run.
	if _, ok := s.Get(k, 0, 1, 1); ok {
		t.Fatal("hit on an absent cell")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if r := s.Stats().HitRate(); r != 0 {
		t.Fatalf("hit rate = %g", r)
	}
}

func TestKeySeparatesRuns(t *testing.T) {
	keys := map[string]bool{}
	for _, tc := range []struct {
		cellKey string
		params  string
		version int
	}{
		{"fig5", `{"seed":1}`, 1},
		{"fig5", `{"seed":2}`, 1},
		{"fig5", `{"seed":1}`, 2},
		{"figq", `{"seed":1}`, 1},
		// Length-prefixing: shifting bytes between the fields must not
		// collide.
		{"fig5x", `{"seed":1}`, 1},
		{"fig5", `x{"seed":1}`, 1},
	} {
		k := RunKey(tc.cellKey, []byte(tc.params), tc.version)
		if keys[k.String()] {
			t.Fatalf("key collision at %+v", tc)
		}
		keys[k.String()] = true
	}
}

// TestCorruptEntryIsMiss pins the trust model: a truncated or tampered
// entry is recomputed, never served.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	if err := s.Put(k, 1, 2, 5, json.RawMessage(`{"long":"payload with enough bytes to truncate"}`)); err != nil {
		t.Fatal(err)
	}
	path := s.cellPath(k, 1, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip a byte inside the payload, keeping the JSON well-formed.
			c[len(c)/2] ^= 0x01
			return c
		},
		"empty": func([]byte) []byte { return nil },
	} {
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k, 1, 2, 5); ok {
			t.Fatalf("%s entry served", name)
		}
		// A fresh Put repairs the entry.
		if err := s.Put(k, 1, 2, 5, json.RawMessage(`"repaired"`)); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(k, 1, 2, 5); !ok || string(got) != `"repaired"` {
			t.Fatalf("after repair of %s: %q, %v", name, got, ok)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrent exercises racing readers and writers over one directory
// (run under -race in CI).
func TestConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	const cells, workers = 16, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < cells; c++ {
				want := json.RawMessage(fmt.Sprintf(`{"cell":%d}`, c))
				if got, ok := s.Get(k, c, 0, int64(c)); ok && string(got) != string(want) {
					t.Errorf("worker %d read wrong payload for cell %d: %s", w, c, got)
					return
				}
				if err := s.Put(k, c, 0, int64(c), want); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if got, ok := s.Get(k, c, 0, int64(c)); !ok || string(got) != string(want) {
					t.Errorf("worker %d: cell %d after own Put: %q, %v", w, c, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// No temp droppings survive the writes.
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".put-") {
			t.Errorf("leftover temp file %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// TestPutCompactsWhitespace: depositing a pretty-printed payload (cells
// re-read from an indented shard file) must verify and serve on read —
// the envelope stores compact JSON, and the digest is taken over exactly
// those bytes. This is the regression test for the dispatch deposit
// path, whose payloads arrive with the shard file's indentation.
func TestPutCompactsWhitespace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := RunKey("fig5", []byte(`{"seed":1}`), 1)
	indented := json.RawMessage("{\n  \"psi\": 0.5,\n  \"ok\": true\n}")
	if err := s.Put(k, 0, 0, 7, indented); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k, 0, 0, 7)
	if !ok {
		t.Fatal("indented deposit reads as a miss")
	}
	if want := `{"psi":0.5,"ok":true}`; string(got) != want {
		t.Fatalf("served %q, want the compact form %q", got, want)
	}
	if err := s.Put(k, 0, 1, 7, json.RawMessage("not json")); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
}
