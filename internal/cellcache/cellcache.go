// Package cellcache is the content-addressed on-disk cell cache: every
// evaluated experiment grid cell can be deposited under the address
// derived from what determines its value — the experiment's cell-grid
// identity, the normalised run parameters and the payload layout version
// — and looked up by any later run of the same cells. Because cells are
// deterministic functions of that address (each one draws its randomness
// only from the derived seed over its grid path), a cache hit is
// byte-identical to recomputation; the recorded seed is re-checked on
// every read, so an entry written under a different seed derivation can
// never be served.
//
// Layout: <dir>/<hh>/<hash>/<point>_<system>.json, where hash is the
// hex SHA-256 of the (cell key, params, payload version) tuple and hh its
// first two digits (a fan-out level, keeping directories small). Each
// entry is an envelope carrying the cell's derived seed, the payload
// bytes and their SHA-256 digest — a JSON document by default, or the
// compact binary form of codec.go when the store is switched with
// SetEncoding (the file name keeps its .json suffix either way; the
// envelope magic, not the name, identifies the format). Reads
// auto-detect the envelope encoding and verify the digest and the
// expected seed; anything that fails — unreadable file, truncated
// envelope, digest or seed mismatch — is a miss, never an error: the
// caller recomputes, and the next Put repairs the entry. Writes go
// through a temp file and an atomic rename, so concurrent readers and
// writers (racing dispatch workers, parallel runs sharing one store)
// see either a complete entry or none.
package cellcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store is one on-disk cache directory. The zero value is unusable; open
// stores with Open. A Store is safe for concurrent use by any number of
// goroutines and processes sharing the directory.
type Store struct {
	dir      string
	encoding string // what Put writes; reads always auto-detect
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// Open opens (creating if needed) the cache rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cellcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	return &Store{dir: dir, encoding: EncodingJSON}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetEncoding selects the envelope encoding Put writes (EncodingJSON or
// EncodingBinary). Reads are unaffected: Get auto-detects per entry, so
// a directory written under one setting stays fully readable under the
// other and mixed directories are fine.
func (s *Store) SetEncoding(encoding string) error {
	switch encoding {
	case "", EncodingJSON:
		s.encoding = EncodingJSON
	case EncodingBinary:
		s.encoding = EncodingBinary
	default:
		return fmt.Errorf("cellcache: unknown encoding %q (want %q or %q)", encoding, EncodingJSON, EncodingBinary)
	}
	return nil
}

// Key addresses one run's cell namespace: all cells of one experiment
// grid under one parameterisation and payload layout share a Key, and
// individual cells are located by their grid path (point, system).
type Key struct {
	hash string
}

// String returns the key's hex address (for logs and tests).
func (k Key) String() string { return k.hash }

// RunKey derives the cache key for one experiment grid. cellKey is the
// experiment's CellKey (experiments sharing a grid — Figures 6 and 7 —
// share cache entries exactly as they share one cell computation), params
// is the canonical JSON of the normalised run parameters, and
// payloadVersion is the experiment codec's version: bumping it orphans
// the old entries, which is the invalidation story — stale layouts are
// never read, only left behind for a manual sweep of the directory.
func RunKey(cellKey string, params []byte, payloadVersion int) Key {
	h := sha256.New()
	// Length-prefixed fields: no concatenation of (cellKey, params) pairs
	// can collide with another spelling.
	fmt.Fprintf(h, "%d:%s|%d:", len(cellKey), cellKey, len(params))
	h.Write(params)
	fmt.Fprintf(h, "|v%d", payloadVersion)
	return Key{hash: hex.EncodeToString(h.Sum(nil))}
}

// entry is the on-disk envelope of one cached cell.
type entry struct {
	// Seed is the cell's derived sub-seed (shard.Cell.Seed); Get re-checks
	// it against the seed the caller derives, so a stale derivation rule
	// can never serve a wrong payload.
	Seed int64 `json:"seed"`
	// Sum is the hex SHA-256 of Data: a truncated or bit-rotted entry
	// fails the check and reads as a miss.
	Sum string `json:"sha256"`
	// Data is the cell payload in compact JSON form. Put compacts before
	// digesting, so deposits of the same value spelled with different
	// whitespace (an in-memory marshal vs a re-read pretty-printed shard
	// file) store and serve identical bytes.
	Data json.RawMessage `json:"data"`
}

func (s *Store) cellPath(k Key, point, system int) string {
	return filepath.Join(s.dir, k.hash[:2], k.hash[2:], fmt.Sprintf("%d_%d.json", point, system))
}

func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Get returns the cached payload of cell (point, system) under k, or
// (nil, false) on a miss. seed is the derived sub-seed the caller's run
// would record for the cell; an entry whose recorded seed differs is a
// miss (and so is any unreadable, truncated or corrupt entry — the cache
// recomputes, it never guesses).
func (s *Store) Get(k Key, point, system int, seed int64) (json.RawMessage, bool) {
	raw, err := os.ReadFile(s.cellPath(k, point, system))
	if err == nil {
		var e entry
		if isEnvelope(raw) {
			if seed2, data, sum, derr := decodeEnvelope(raw); derr == nil {
				e = entry{Seed: seed2, Sum: sum, Data: data}
			}
		} else if json.Unmarshal(raw, &e) != nil {
			e = entry{}
		}
		if e.Data != nil && e.Seed == seed && e.Sum == digest(e.Data) {
			s.hits.Add(1)
			return e.Data, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Put deposits the payload of cell (point, system) under k with its
// derived seed. The payload is compacted first: json.Marshal compacts
// RawMessage fields when writing the envelope, so the digest must be
// taken over the compact form or a pretty-printed deposit (cells re-read
// from an indented shard file) would never verify again. The write is
// atomic (temp file + rename): concurrent writers of the same cell race
// benignly — their payloads are identical by the determinism invariant,
// and the last rename wins.
func (s *Store) Put(k Key, point, system int, seed int64, data json.RawMessage) error {
	path := s.cellPath(k, point, system)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cellcache: %w", err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, data); err != nil {
		return fmt.Errorf("cellcache: cell (%d,%d) payload is not JSON: %w", point, system, err)
	}
	data = compact.Bytes()
	var raw []byte
	if s.encoding == EncodingBinary {
		raw = encodeEnvelope(seed, data)
	} else {
		var err error
		raw, err = json.Marshal(entry{Seed: seed, Sum: digest(data), Data: data})
		if err != nil {
			return fmt.Errorf("cellcache: encode cell (%d,%d): %w", point, system, err)
		}
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("cellcache: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cellcache: write cell (%d,%d): %w", point, system, werr)
	}
	return nil
}

// Stats is the store's hit/miss tally since Open.
type Stats struct {
	Hits, Misses uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before the first lookup.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns the lookup tally so far (monotonic; safe to read
// concurrently with lookups).
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load()}
}
