package cellcache

// The binary cell-envelope codec. A store opened with the binary
// encoding writes each cached cell as a compact binary envelope instead
// of the JSON one: a magic, the derived seed as a zigzag varint, the
// length-prefixed compact payload and the raw 32-byte SHA-256 digest.
// Reads always auto-detect — the magic cannot open a JSON document — so
// one directory can hold a mix of encodings and a store configured
// either way serves both; the encoding only selects what Put writes.
// The envelope is hand-rolled (cellcache deliberately does not import
// internal/shard) but keeps the same defensive posture: any structural
// defect is a miss, never an error.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Encoding names for Store envelopes; mirrored by the shard layer's
// file encodings so one -codec flag drives both.
const (
	EncodingJSON   = "json"
	EncodingBinary = "binary"
)

// envelopeMagic opens every binary cell envelope. Same construction as
// the shard container's magic (high bit set so no JSON or UTF-8 text
// can collide, CRLF as a transfer-corruption canary) with a distinct
// name so the two formats can never be mistaken for each other.
var envelopeMagic = [8]byte{0x89, 'I', 'O', 'S', 'C', '1', '\r', '\n'}

const sumSize = sha256.Size

// encodeEnvelope renders one cell entry in the binary envelope form.
// data must already be compact.
func encodeEnvelope(seed int64, data []byte) []byte {
	out := make([]byte, 0, len(envelopeMagic)+binary.MaxVarintLen64*2+len(data)+sumSize)
	out = append(out, envelopeMagic[:]...)
	out = binary.AppendVarint(out, seed)
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = append(out, data...)
	sum := sha256.Sum256(data)
	out = append(out, sum[:]...)
	return out
}

// decodeEnvelope parses a binary cell envelope. It mirrors Get's JSON
// path exactly: the returned digest is re-checked by the caller, and
// any structural defect (truncation, length overrun, trailing bytes) is
// an error the caller treats as a miss.
func decodeEnvelope(raw []byte) (seed int64, data json.RawMessage, sum string, err error) {
	rest := raw[len(envelopeMagic):]
	seed, n := binary.Varint(rest)
	if n <= 0 {
		return 0, nil, "", fmt.Errorf("cellcache: bad seed varint")
	}
	rest = rest[n:]
	dlen, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, "", fmt.Errorf("cellcache: bad length varint")
	}
	rest = rest[n:]
	if dlen > uint64(len(rest)) {
		return 0, nil, "", fmt.Errorf("cellcache: payload length %d exceeds %d remaining bytes", dlen, len(rest))
	}
	data, rest = rest[:dlen], rest[dlen:]
	if len(rest) != sumSize {
		return 0, nil, "", fmt.Errorf("cellcache: %d trailing bytes, want a %d-byte digest", len(rest), sumSize)
	}
	return seed, json.RawMessage(data), fmt.Sprintf("%x", rest), nil
}

// isEnvelope reports whether raw opens with the binary envelope magic.
func isEnvelope(raw []byte) bool {
	return len(raw) >= len(envelopeMagic) && string(raw[:len(envelopeMagic)]) == string(envelopeMagic[:])
}
