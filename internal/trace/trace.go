package trace

import (
	"fmt"
	"sort"

	"repro/internal/timing"
)

// Event pairs an expected instant with an observed one.
type Event struct {
	Label    string
	Expected timing.Cycle
	Observed timing.Cycle
}

// Deviation returns |expected − observed|.
func (e Event) Deviation() timing.Cycle {
	d := e.Observed - e.Expected
	if d < 0 {
		d = -d
	}
	return d
}

// Report aggregates deviations over a set of events.
type Report struct {
	Events []Event
	// Exact counts zero-deviation events.
	Exact int
	// MaxDeviation and MeanDeviation summarise the jitter.
	MaxDeviation  timing.Cycle
	MeanDeviation float64
}

// Measure matches expected instants against observations in order and
// builds a report. The two slices must have equal length: a missing
// observation is a real fault that callers must surface, not average away.
func Measure(labels []string, expected, observed []timing.Cycle) (*Report, error) {
	if len(expected) != len(observed) {
		return nil, fmt.Errorf("trace: %d expected events but %d observed", len(expected), len(observed))
	}
	if len(labels) != 0 && len(labels) != len(expected) {
		return nil, fmt.Errorf("trace: %d labels for %d events", len(labels), len(expected))
	}
	r := &Report{}
	var sum int64
	for i := range expected {
		ev := Event{Expected: expected[i], Observed: observed[i]}
		if len(labels) > 0 {
			ev.Label = labels[i]
		}
		r.Events = append(r.Events, ev)
		d := ev.Deviation()
		if d == 0 {
			r.Exact++
		}
		if d > r.MaxDeviation {
			r.MaxDeviation = d
		}
		sum += int64(d)
	}
	if len(r.Events) > 0 {
		r.MeanDeviation = float64(sum) / float64(len(r.Events))
	}
	return r, nil
}

// ExactFraction returns the fraction of events with zero deviation — the
// hardware-level Ψ.
func (r *Report) ExactFraction() float64 {
	if len(r.Events) == 0 {
		return 0
	}
	return float64(r.Exact) / float64(len(r.Events))
}

// Percentile returns the p-th percentile deviation (0 ≤ p ≤ 100) using the
// nearest-rank method.
func (r *Report) Percentile(p float64) timing.Cycle {
	if len(r.Events) == 0 {
		return 0
	}
	devs := make([]timing.Cycle, len(r.Events))
	for i, e := range r.Events {
		devs[i] = e.Deviation()
	}
	sort.Slice(devs, func(a, b int) bool { return devs[a] < devs[b] })
	if p <= 0 {
		return devs[0]
	}
	if p >= 100 {
		return devs[len(devs)-1]
	}
	rank := int(p/100*float64(len(devs))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(devs) {
		rank = len(devs) - 1
	}
	return devs[rank]
}
