package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestMeasureBasics(t *testing.T) {
	r, err := Measure(
		[]string{"a", "b", "c"},
		[]timing.Cycle{100, 200, 300},
		[]timing.Cycle{100, 210, 295},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact != 1 {
		t.Errorf("exact = %d, want 1", r.Exact)
	}
	if r.MaxDeviation != 10 {
		t.Errorf("max = %v, want 10", r.MaxDeviation)
	}
	if r.MeanDeviation != 5 {
		t.Errorf("mean = %g, want 5", r.MeanDeviation)
	}
	if f := r.ExactFraction(); f != 1.0/3 {
		t.Errorf("exact fraction = %g", f)
	}
	if r.Events[0].Label != "a" {
		t.Error("labels lost")
	}
}

func TestMeasureLengthMismatch(t *testing.T) {
	if _, err := Measure(nil, []timing.Cycle{1}, nil); err == nil {
		t.Error("missing observation accepted")
	}
	if _, err := Measure([]string{"a"}, []timing.Cycle{1, 2}, []timing.Cycle{1, 2}); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestMeasureEmpty(t *testing.T) {
	r, err := Measure(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExactFraction() != 0 || r.Percentile(50) != 0 {
		t.Error("empty report misbehaves")
	}
}

func TestDeviationSymmetric(t *testing.T) {
	early := Event{Expected: 100, Observed: 90}
	late := Event{Expected: 100, Observed: 110}
	if early.Deviation() != 10 || late.Deviation() != 10 {
		t.Error("deviation must be absolute")
	}
}

func TestPercentile(t *testing.T) {
	exp := make([]timing.Cycle, 10)
	obs := make([]timing.Cycle, 10)
	for i := range exp {
		exp[i] = timing.Cycle(i * 100)
		obs[i] = exp[i] + timing.Cycle(i) // deviations 0..9
	}
	r, err := Measure(nil, exp, obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Percentile(0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	if got := r.Percentile(100); got != 9 {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Percentile(50); got != 4 {
		t.Errorf("p50 = %v, want 4", got)
	}
}

// Property: mean ≤ max, exact count matches zero deviations, percentiles
// are monotone in p.
func TestReportProperty(t *testing.T) {
	f := func(devs []int16) bool {
		exp := make([]timing.Cycle, len(devs))
		obs := make([]timing.Cycle, len(devs))
		for i, d := range devs {
			exp[i] = timing.Cycle(1000 * (i + 1))
			obs[i] = exp[i] + timing.Cycle(d%100)
		}
		r, err := Measure(nil, exp, obs)
		if err != nil {
			return false
		}
		if float64(r.MaxDeviation) < r.MeanDeviation {
			return false
		}
		zero := 0
		for _, e := range r.Events {
			if e.Deviation() == 0 {
				zero++
			}
		}
		if zero != r.Exact {
			return false
		}
		return r.Percentile(25) <= r.Percentile(75)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPercentileSmallSampleRanks pins the nearest-rank arithmetic on the
// sample counts the replay harness reduces: a device replaying a handful
// of dispatches asks for p50/p95/p99 over single-digit event counts, so
// the rank rounding at those sizes is load-bearing, not a corner case.
func TestPercentileSmallSampleRanks(t *testing.T) {
	expected := []timing.Cycle{10, 20, 30}
	observed := []timing.Cycle{10, 520, 5030} // deviations 0, 500, 5000
	r, err := Measure(nil, expected, observed)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		p    float64
		want timing.Cycle
	}{{0, 0}, {50, 500}, {95, 5000}, {99, 5000}, {100, 5000}} {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("p%g = %d, want %d", c.p, got, c.want)
		}
	}
	// A single event is every percentile.
	one, err := Measure(nil, []timing.Cycle{5}, []timing.Cycle{12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := one.Percentile(p); got != 7 {
			t.Errorf("single-event p%g = %d, want 7", p, got)
		}
	}
}

// TestMeasureUnlabelled: nil labels are the replay harness's calling
// convention — events carry empty labels and everything else still
// reduces.
func TestMeasureUnlabelled(t *testing.T) {
	r, err := Measure(nil, []timing.Cycle{1, 2}, []timing.Cycle{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != 2 || r.Events[0].Label != "" {
		t.Fatalf("unlabelled events = %+v", r.Events)
	}
	if r.Exact != 1 || r.MaxDeviation != 2 || r.MeanDeviation != 1 {
		t.Errorf("report = %+v", r)
	}
}
