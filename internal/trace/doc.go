// Package trace measures timing accuracy on observed hardware behaviour:
// given the instants I/O operations were expected to occur and the instants
// they actually occurred (pin edges or execution records), it computes the
// per-event deviation |ideal − actual| — the paper's Section I definition
// of timing accuracy — and aggregates jitter statistics.
package trace
