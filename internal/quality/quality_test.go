package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func job(ideal, c, theta timing.Time, vmax, vmin float64) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: 0, J: 0},
		Release:  0,
		Deadline: ideal + theta + c + 1000,
		Ideal:    ideal,
		C:        c,
		Theta:    theta,
		Vmax:     vmax,
		Vmin:     vmin,
	}
}

func TestLinearCurveShape(t *testing.T) {
	j := job(100, 10, 40, 9, 1)
	curve := Linear{}
	cases := []struct {
		t    timing.Time
		want float64
	}{
		{100, 9}, // exact: Vmax
		{60, 1},  // boundary edge: Vmin
		{140, 1}, // boundary edge: Vmin
		{80, 5},  // halfway: midpoint of [1,9]
		{120, 5},
		{0, 1},   // far outside: Vmin
		{500, 1}, // far outside: Vmin
		{110, 7}, // quarter out
	}
	for _, c := range cases {
		if got := curve.Value(&j, c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("V(%d) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestLinearZeroTheta(t *testing.T) {
	j := job(100, 10, 0, 5, 1)
	curve := Linear{}
	if got := curve.Value(&j, 100); got != 5 {
		t.Errorf("exact with θ=0: %g, want 5", got)
	}
	if got := curve.Value(&j, 101); got != 1 {
		t.Errorf("off by one with θ=0: %g, want 1", got)
	}
}

func TestPenalisedCurve(t *testing.T) {
	j := job(100, 10, 40, 9, 1)
	curve := Penalised{Base: Linear{}, Penalty: -1000}
	if got := curve.Value(&j, 100); got != 9 {
		t.Errorf("exact = %g, want 9", got)
	}
	if got := curve.Value(&j, 80); got != 5 {
		t.Errorf("inside boundary = %g, want 5", got)
	}
	if got := curve.Value(&j, 200); got != -1000 {
		t.Errorf("outside boundary = %g, want -1000", got)
	}
	if got := curve.Value(&j, 140); got != -1000 {
		t.Errorf("at boundary edge = %g, want penalty", got)
	}
}

// TestPenalisedBoundaryConsistency pins the on-boundary semantics against
// Linear's: both curves treat dist == Theta as outside the timing
// boundary (Linear clamps to Vmin there, so Penalised must already apply
// the penalty there, not one tick later).
func TestPenalisedBoundaryConsistency(t *testing.T) {
	j := job(100, 10, 40, 9, 1)
	lin := Linear{}
	pen := Penalised{Base: lin, Penalty: -1000}
	for _, tc := range []struct {
		t       timing.Time
		linWant float64
		out     bool // outside the boundary under both curves
	}{
		{60, 1, true},     // dist == Theta, early edge
		{140, 1, true},    // dist == Theta, late edge
		{61, 1.2, false},  // one tick inside the early edge
		{139, 1.2, false}, // one tick inside the late edge
		{59, 1, true},     // one tick outside
		{100, 9, false},   // exact
	} {
		if got := lin.Value(&j, tc.t); math.Abs(got-tc.linWant) > 1e-12 {
			t.Errorf("Linear V(%d) = %g, want %g", tc.t, got, tc.linWant)
		}
		got := pen.Value(&j, tc.t)
		if tc.out {
			if got != -1000 {
				t.Errorf("Penalised V(%d) = %g, want penalty (Linear gives Vmin here)", tc.t, got)
			}
		} else if want := lin.Value(&j, tc.t); got != want {
			t.Errorf("Penalised V(%d) = %g, want base %g", tc.t, got, want)
		}
	}
}

// TestPenalisedZeroTheta: for a θ=0 job every start is on the boundary
// (dist >= Theta always holds), so only the exact instant escapes the
// penalty — mirroring Linear, whose θ=0 special case only rewards the
// exact instant with Vmax.
func TestPenalisedZeroTheta(t *testing.T) {
	j := job(100, 10, 0, 5, 1)
	lin := Linear{}
	pen := Penalised{Base: lin, Penalty: -1000}
	if got := pen.Value(&j, 100); got != 5 {
		t.Errorf("exact with θ=0: %g, want base Vmax 5", got)
	}
	if got := lin.Value(&j, 100); got != 5 {
		t.Errorf("Linear exact with θ=0: %g, want 5", got)
	}
	for _, at := range []timing.Time{99, 101, 0, 500} {
		if got := pen.Value(&j, at); got != -1000 {
			t.Errorf("θ=0 off-ideal V(%d) = %g, want penalty", at, got)
		}
		if got := lin.Value(&j, at); got != 1 {
			t.Errorf("θ=0 off-ideal Linear V(%d) = %g, want Vmin", at, got)
		}
	}
}

func twoJobs() []taskmodel.Job {
	a := job(100, 10, 40, 9, 1)
	a.ID = taskmodel.JobID{Task: 0, J: 0}
	b := job(300, 10, 40, 5, 1)
	b.ID = taskmodel.JobID{Task: 1, J: 0}
	return []taskmodel.Job{a, b}
}

func TestPsi(t *testing.T) {
	jobs := twoJobs()
	cases := []struct {
		starts StartTimes
		want   float64
	}{
		{StartTimes{jobs[0].ID: 100, jobs[1].ID: 300}, 1.0},
		{StartTimes{jobs[0].ID: 100, jobs[1].ID: 301}, 0.5},
		{StartTimes{jobs[0].ID: 99, jobs[1].ID: 301}, 0.0},
	}
	for i, c := range cases {
		got, err := Psi(jobs, c.starts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: Ψ = %g, want %g", i, got, c.want)
		}
	}
}

func TestPsiMissingStart(t *testing.T) {
	jobs := twoJobs()
	if _, err := Psi(jobs, StartTimes{jobs[0].ID: 100}); err == nil {
		t.Fatal("expected error for missing start")
	}
}

func TestPsiEmpty(t *testing.T) {
	got, err := Psi(nil, nil)
	if err != nil || got != 0 {
		t.Fatalf("Psi(nil) = %g, %v", got, err)
	}
}

func TestUpsilon(t *testing.T) {
	jobs := twoJobs()
	curve := Linear{}
	// All ideal: Υ = 1.
	got, err := Upsilon(jobs, StartTimes{jobs[0].ID: 100, jobs[1].ID: 300}, curve)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("all-ideal Υ = %g, %v", got, err)
	}
	// First at midpoint (V=5 of 9), second ideal (V=5 of 5): (5+5)/(9+5).
	got, err = Upsilon(jobs, StartTimes{jobs[0].ID: 80, jobs[1].ID: 300}, curve)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 14.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Υ = %g, want %g", got, want)
	}
	// Both far out: (1+1)/(9+5).
	got, _ = Upsilon(jobs, StartTimes{jobs[0].ID: 500, jobs[1].ID: 700}, curve)
	want = 2.0 / 14.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("worst-case Υ = %g, want %g", got, want)
	}
}

func TestUpsilonErrors(t *testing.T) {
	jobs := twoJobs()
	if _, err := Upsilon(jobs, StartTimes{jobs[0].ID: 100}, Linear{}); err == nil {
		t.Error("expected error for missing start")
	}
	// Non-positive ideal sum (degenerate Vmax=Vmin=0).
	z := job(100, 10, 40, 0, 0)
	if _, err := Upsilon([]taskmodel.Job{z}, StartTimes{z.ID: 100}, Linear{}); err == nil {
		t.Error("expected error for zero ideal quality")
	}
}

func TestAccuracy(t *testing.T) {
	j := job(100, 10, 40, 9, 1)
	if Accuracy(&j, 100) != 0 {
		t.Error("exact accuracy should be 0")
	}
	if Accuracy(&j, 90) != 10 || Accuracy(&j, 110) != 10 {
		t.Error("accuracy should be symmetric")
	}
}

func TestMeasureAccuracy(t *testing.T) {
	jobs := twoJobs()
	starts := StartTimes{jobs[0].ID: 100, jobs[1].ID: 350}
	s, err := MeasureAccuracy(jobs, starts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Exact != 1 || s.Total != 2 {
		t.Errorf("exact/total = %d/%d", s.Exact, s.Total)
	}
	if s.MaxDeviation != 50 {
		t.Errorf("max dev = %v, want 50", s.MaxDeviation)
	}
	if s.MeanDeviation != 25 {
		t.Errorf("mean dev = %g, want 25", s.MeanDeviation)
	}
	// job 1 deviates 50 > θ=40, so only job 0 is within boundary.
	if s.WithinBoundary != 1 {
		t.Errorf("within boundary = %d, want 1", s.WithinBoundary)
	}
	if _, err := MeasureAccuracy(jobs, StartTimes{}); err == nil {
		t.Error("expected error for missing starts")
	}
}

// Property: the linear curve is bounded by [Vmin, Vmax], symmetric about δ,
// and non-increasing in |t − δ|.
func TestLinearCurveProperties(t *testing.T) {
	curve := Linear{}
	f := func(idealRaw, thetaRaw uint16, d1, d2 uint16, vmaxRaw uint8) bool {
		ideal := timing.Time(idealRaw) + 1000
		theta := timing.Time(thetaRaw % 500)
		vmax := float64(vmaxRaw%20) + 1.5
		j := job(ideal, 10, theta, vmax, 1)
		a := timing.Time(d1 % 1000)
		b := timing.Time(d2 % 1000)
		va := curve.Value(&j, ideal+a)
		vb := curve.Value(&j, ideal+b)
		// Bounds.
		if va < 1-1e-9 || va > vmax+1e-9 {
			return false
		}
		// Symmetry.
		if math.Abs(curve.Value(&j, ideal-a)-va) > 1e-9 {
			return false
		}
		// Monotone decay: larger deviation never yields higher value.
		if a <= b && va < vb-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Ψ and Υ are in [0, 1] for feasible schedules with Vmin ≥ 0,
// and Υ = 1 whenever Ψ = 1.
func TestMetricProperties(t *testing.T) {
	f := func(offsets [4]int16) bool {
		jobs := make([]taskmodel.Job, 4)
		starts := StartTimes{}
		for i := range jobs {
			jobs[i] = job(timing.Time(1000*(i+1)), 10, 100, float64(i+2), 1)
			jobs[i].ID = taskmodel.JobID{Task: i, J: 0}
			starts[jobs[i].ID] = jobs[i].Ideal + timing.Time(offsets[i]%300)
		}
		psi, err := Psi(jobs, starts)
		if err != nil {
			return false
		}
		ups, err := Upsilon(jobs, starts, Linear{})
		if err != nil {
			return false
		}
		if psi < 0 || psi > 1 || ups < 0 || ups > 1+1e-9 {
			return false
		}
		if psi == 1 && math.Abs(ups-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestExponentialCurve(t *testing.T) {
	j := job(100, 10, 40, 9, 1)
	curve := Exponential{Sharpness: 2}
	if got := curve.Value(&j, 100); math.Abs(got-9) > 1e-12 {
		t.Errorf("exact = %g, want Vmax", got)
	}
	if got := curve.Value(&j, 140); got != 1 {
		t.Errorf("boundary edge = %g, want Vmin", got)
	}
	if got := curve.Value(&j, 500); got != 1 {
		t.Errorf("outside = %g, want Vmin", got)
	}
	// Steeper than linear at the same mid-point deviation.
	lin := Linear{}
	mid := curve.Value(&j, 120)
	if mid >= lin.Value(&j, 120) {
		t.Errorf("exponential mid = %g should be below linear %g", mid, lin.Value(&j, 120))
	}
	if mid <= 1 || mid >= 9 {
		t.Errorf("mid = %g out of (Vmin, Vmax)", mid)
	}
	// Zero sharpness falls back to the default.
	d := Exponential{}
	if got := d.Value(&j, 120); math.Abs(got-mid) > 1e-12 {
		t.Errorf("default sharpness mismatch: %g vs %g", got, mid)
	}
	// θ = 0 degenerates to a spike.
	z := job(100, 10, 0, 5, 1)
	if curve.Value(&z, 100) != 5 || curve.Value(&z, 101) != 1 {
		t.Error("zero-θ exponential broken")
	}
}

// Property: the exponential curve is bounded, symmetric and monotone, like
// the linear one.
func TestExponentialCurveProperties(t *testing.T) {
	curve := Exponential{Sharpness: 3}
	f := func(d1, d2 uint16) bool {
		j := job(5000, 10, 400, 7, 1)
		a := timing.Time(d1 % 800)
		b := timing.Time(d2 % 800)
		va := curve.Value(&j, 5000+a)
		if va < 1-1e-9 || va > 7+1e-9 {
			return false
		}
		if math.Abs(curve.Value(&j, 5000-a)-va) > 1e-9 {
			return false
		}
		vb := curve.Value(&j, 5000+b)
		if a <= b && va < vb-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
