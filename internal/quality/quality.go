package quality

import (
	"fmt"
	"math"

	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Curve evaluates the quality of starting a job at a given instant.
// Implementations must be maximal at j.Ideal and must never exceed Vmax or
// fall below Vmin for feasible starts.
type Curve interface {
	// Value returns the quality of job j when its execution starts at t.
	// t must be a feasible start (within [Release, Deadline−C]); the value
	// for infeasible t is unspecified.
	Value(j *taskmodel.Job, t timing.Time) float64
}

// Linear is the paper's evaluation curve (Figure 1): a symmetric triangular
// decay from Vmax at δ to Vmin at δ±θ, and Vmin beyond.
type Linear struct{}

// Value implements Curve.
func (Linear) Value(j *taskmodel.Job, t timing.Time) float64 {
	dist := timing.Abs(t - j.Ideal)
	if j.Theta == 0 {
		if dist == 0 {
			return j.Vmax
		}
		return j.Vmin
	}
	if dist >= j.Theta {
		return j.Vmin
	}
	frac := float64(dist) / float64(j.Theta)
	return j.Vmax - (j.Vmax-j.Vmin)*frac
}

// Penalised wraps another curve and replaces the out-of-boundary quality
// with a fixed penalty value, modelling the paper's footnote 1: in
// safety-critical systems a large negative value (e.g. −1000) can be applied
// to I/O operations outside the timing boundary.
type Penalised struct {
	Base    Curve
	Penalty float64
}

// Value implements Curve.
func (p Penalised) Value(j *taskmodel.Job, t timing.Time) float64 {
	if timing.Abs(t-j.Ideal) >= j.Theta && t != j.Ideal {
		return p.Penalty
	}
	return p.Base.Value(j, t)
}

// StartTimes maps each job to its scheduled start instant κ.
type StartTimes map[taskmodel.JobID]timing.Time

// Exact reports whether job j starts exactly at its ideal instant under κ,
// i.e. Ti·j + δi − κi^j = 0 (Equation 1's membership test).
func Exact(j *taskmodel.Job, kappa timing.Time) bool { return kappa == j.Ideal }

// Psi returns Ψ = |E|/|λ|: the fraction of jobs started exactly at their
// ideal instants. It returns an error if any job lacks a start time.
// An empty job list yields Ψ = 0.
func Psi(jobs []taskmodel.Job, starts StartTimes) (float64, error) {
	if len(jobs) == 0 {
		return 0, nil
	}
	exact := 0
	for i := range jobs {
		k, ok := starts[jobs[i].ID]
		if !ok {
			return 0, fmt.Errorf("quality: job %v has no start time", jobs[i].ID)
		}
		if Exact(&jobs[i], k) {
			exact++
		}
	}
	return float64(exact) / float64(len(jobs)), nil
}

// Upsilon returns Υ = Σ V(κ) / Σ V(δ): the schedule's total quality
// normalised by the all-ideal quality (Equation 2). It returns an error if
// any job lacks a start time or if the ideal quality sum is not positive.
func Upsilon(jobs []taskmodel.Job, starts StartTimes, curve Curve) (float64, error) {
	if len(jobs) == 0 {
		return 0, nil
	}
	var got, ideal float64
	for i := range jobs {
		j := &jobs[i]
		k, ok := starts[j.ID]
		if !ok {
			return 0, fmt.Errorf("quality: job %v has no start time", j.ID)
		}
		got += curve.Value(j, k)
		ideal += curve.Value(j, j.Ideal)
	}
	if ideal <= 0 {
		return 0, fmt.Errorf("quality: ideal quality sum %g is not positive", ideal)
	}
	return got / ideal, nil
}

// PsiIndexed returns Ψ over index-keyed start times: starts[i] is the
// start instant of jobs[i]. It is the allocation-free form of Psi for hot
// paths (the GA fitness evaluator) that hold starts in a reusable slice
// instead of a StartTimes map; the two agree whenever the map holds the
// same instants. starts must have at least len(jobs) entries. An empty
// job list yields Ψ = 0.
func PsiIndexed(jobs []taskmodel.Job, starts []timing.Time) float64 {
	if len(jobs) == 0 {
		return 0
	}
	exact := 0
	for i := range jobs {
		if Exact(&jobs[i], starts[i]) {
			exact++
		}
	}
	return float64(exact) / float64(len(jobs))
}

// UpsilonIndexed returns Υ over index-keyed start times: starts[i] is the
// start instant of jobs[i] (the allocation-free counterpart of Upsilon;
// see PsiIndexed). It returns an error if the ideal quality sum is not
// positive. starts must have at least len(jobs) entries. An empty job
// list yields Υ = 0.
func UpsilonIndexed(jobs []taskmodel.Job, starts []timing.Time, curve Curve) (float64, error) {
	if len(jobs) == 0 {
		return 0, nil
	}
	var got, ideal float64
	for i := range jobs {
		j := &jobs[i]
		got += curve.Value(j, starts[i])
		ideal += curve.Value(j, j.Ideal)
	}
	if ideal <= 0 {
		return 0, fmt.Errorf("quality: ideal quality sum %g is not positive", ideal)
	}
	return got / ideal, nil
}

// Accuracy returns the timing accuracy of one job: |ideal − actual|, the
// paper's Section I definition (smaller is better; 0 is exact).
func Accuracy(j *taskmodel.Job, kappa timing.Time) timing.Time {
	return timing.Abs(kappa - j.Ideal)
}

// AccuracyStats summarises per-job accuracy over a schedule.
type AccuracyStats struct {
	// Exact is the number of jobs with zero deviation.
	Exact int
	// Total is the number of jobs measured.
	Total int
	// MeanDeviation is the average |ideal − actual| in ticks.
	MeanDeviation float64
	// MaxDeviation is the worst |ideal − actual|.
	MaxDeviation timing.Time
	// WithinBoundary is the number of jobs started inside [δ−θ, δ+θ].
	WithinBoundary int
}

// MeasureAccuracy computes accuracy statistics for the given schedule.
func MeasureAccuracy(jobs []taskmodel.Job, starts StartTimes) (AccuracyStats, error) {
	var s AccuracyStats
	var sum int64
	for i := range jobs {
		j := &jobs[i]
		k, ok := starts[j.ID]
		if !ok {
			return AccuracyStats{}, fmt.Errorf("quality: job %v has no start time", j.ID)
		}
		dev := Accuracy(j, k)
		s.Total++
		if dev == 0 {
			s.Exact++
		}
		if dev <= j.Theta {
			s.WithinBoundary++
		}
		if dev > s.MaxDeviation {
			s.MaxDeviation = dev
		}
		sum += int64(dev)
	}
	if s.Total > 0 {
		s.MeanDeviation = float64(sum) / float64(s.Total)
	}
	return s, nil
}

// Exponential is an alternative quality curve for applications with sharp
// accuracy requirements: quality decays exponentially with the deviation,
// reaching Vmin at the boundary edges and staying there beyond. Sharpness
// controls how fast the decay bites (2 ≈ noticeably steeper than linear;
// the paper notes the exact curve is application-dependent and evaluates
// with the linear one).
type Exponential struct {
	Sharpness float64
}

// Value implements Curve.
func (e Exponential) Value(j *taskmodel.Job, t timing.Time) float64 {
	dist := timing.Abs(t - j.Ideal)
	if j.Theta == 0 {
		if dist == 0 {
			return j.Vmax
		}
		return j.Vmin
	}
	if dist >= j.Theta {
		return j.Vmin
	}
	s := e.Sharpness
	if s <= 0 {
		s = 2
	}
	frac := float64(dist) / float64(j.Theta)
	// Normalised exponential decay: 1 at frac=0, 0 at frac=1.
	denom := 1 - math.Exp(-s)
	scale := (math.Exp(-s*frac) - math.Exp(-s)) / denom
	return j.Vmin + (j.Vmax-j.Vmin)*scale
}
