package quality

import (
	"math/rand"
	"testing"

	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// TestIndexedMatchesMapMetrics: the allocation-free index-keyed forms
// agree exactly with the map-keyed originals on randomised schedules —
// the equivalence the GA hot path relies on.
func TestIndexedMatchesMapMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	curves := []Curve{Linear{}, Penalised{Base: Linear{}, Penalty: -1000}, Exponential{Sharpness: 2}}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		jobs := make([]taskmodel.Job, n)
		idx := make([]timing.Time, n)
		m := make(StartTimes, n)
		for i := range jobs {
			ideal := timing.Time(100 + rng.Intn(1000))
			jobs[i] = taskmodel.Job{
				ID:       taskmodel.JobID{Task: i / 3, J: i % 3},
				Release:  0,
				Deadline: ideal + 2000,
				Ideal:    ideal,
				C:        timing.Time(1 + rng.Intn(20)),
				Theta:    timing.Time(10 + rng.Intn(100)),
				P:        rng.Intn(4),
				Vmax:     2 + rng.Float64()*8,
				Vmin:     1,
			}
			start := ideal
			if rng.Intn(2) == 0 {
				start += timing.Time(rng.Intn(300)) - 150
			}
			idx[i] = start
			m[jobs[i].ID] = start
		}
		wantPsi, err := Psi(jobs, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := PsiIndexed(jobs, idx); got != wantPsi {
			t.Fatalf("trial %d: PsiIndexed = %g, Psi = %g", trial, got, wantPsi)
		}
		for _, c := range curves {
			wantUps, wantErr := Upsilon(jobs, m, c)
			gotUps, gotErr := UpsilonIndexed(jobs, idx, c)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
			}
			if wantErr == nil && gotUps != wantUps {
				t.Fatalf("trial %d: UpsilonIndexed = %g, Upsilon = %g (curve %T)", trial, gotUps, wantUps, c)
			}
		}
	}
}
