// Package quality implements the timing-accuracy quality model of
// Section II (Figure 1) and the two I/O performance metrics of Section III:
//
//   - Ψ (Psi): the fraction of jobs that start exactly at their ideal
//     instant, Ψ = |E| / |λ| (Equation 1);
//   - Υ (Upsilon): the normalised total quality of the schedule,
//     Υ = Σ V(κ) / Σ V(δ) (Equation 2).
//
// The quality curve is application-dependent; the paper (and this
// reproduction) evaluates with a common piecewise-linear curve: quality is
// Vmax at the ideal start instant, decays linearly to Vmin at the edges of
// the timing boundary [δ−θ, δ+θ], and is Vmin outside the boundary provided
// the job still meets its deadline. A job that misses its deadline has no
// defined quality: the schedule is simply infeasible.
package quality
