// Package coordtest is the in-process fault-injection harness for the
// coordinator service: it spins a Coordinator plus N workers over a
// loopback HTTP server and injects the failure modes a distributed
// dispatch actually meets — worker crashes mid-unit, hangs, dropped and
// duplicated result pushes, clock-skewed heartbeats, and coordinator
// restarts — while the tests assert the journal record and the
// byte-identity of the merged output against the unsharded run.
package coordtest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/shard"
)

// Faults configures one worker's injected failure modes. Unit ids key
// the compute-side faults: they equal the lease's Unit field (round
// robin shard index, or cost batch id).
type Faults struct {
	// HeartbeatEvery overrides the server-suggested heartbeat interval —
	// set it beyond the coordinator's timeout to model a worker whose
	// clock (or scheduler) is skewed enough to look dead while it still
	// computes.
	HeartbeatEvery time.Duration
	// Die kills the whole worker (heartbeats included) the first time it
	// starts computing a unit for which Die returns true: the mid-batch
	// crash. The worker never comes back.
	Die func(unit int) bool
	// Hang blocks the compute of matching units until the rig shuts
	// down, while heartbeats keep flowing — the stuck-but-alive worker
	// only a lease timeout can recover from.
	Hang func(unit int) bool
	// DropPush computes matching units and then silently discards the
	// result instead of pushing it.
	DropPush func(l *coord.Lease) bool
	// DoublePush pushes matching units twice, modelling a retried
	// delivery whose first copy did arrive.
	DoublePush func(l *coord.Lease) bool
	// PushDelay sleeps before pushing a matching unit's result — long
	// enough, and the unit is reassigned first, making this the stale
	// push that must lose (or win, first-completion-wins) cleanly.
	PushDelay func(l *coord.Lease) time.Duration
}

// Worker is a handle on one rig worker.
type Worker struct {
	Name   string
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// Kill cancels the worker's context: compute aborts, heartbeats stop,
// nothing is reported — exactly a crashed process.
func (w *Worker) Kill() { w.cancel() }

// Done is closed when the worker loop has exited.
func (w *Worker) Done() <-chan struct{} { return w.done }

// Rig is a coordinator plus workers over loopback HTTP.
type Rig struct {
	T      testing.TB
	Dir    string
	Opts   coord.Options
	Client *coord.Client

	mu      sync.Mutex
	coord   *coord.Coordinator
	srv     *httptest.Server
	workers []*Worker
	hang    chan struct{}
	ctx     context.Context
	stop    context.CancelFunc
}

// New starts a coordinator over a fresh temp state directory and a
// loopback server in front of it. Everything is cleaned up with the
// test; the server URL stays stable across Restart.
func New(t testing.TB, opts coord.Options) *Rig {
	t.Helper()
	c, err := coord.New(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("coordtest: %v", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	r := &Rig{T: t, Dir: c.Dir(), Opts: opts, coord: c, hang: make(chan struct{}), ctx: ctx, stop: stop}
	r.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		h := r.coord.Handler()
		r.mu.Unlock()
		h.ServeHTTP(w, req)
	}))
	r.Client = &coord.Client{BaseURL: r.srv.URL}
	t.Cleanup(func() {
		stop()
		close(r.hang)
		r.mu.Lock()
		ws := append([]*Worker(nil), r.workers...)
		r.mu.Unlock()
		for _, w := range ws {
			w.Kill()
			<-w.Done()
		}
		r.srv.Close()
		r.Coordinator().Close()
	})
	return r
}

// Coordinator returns the current coordinator instance.
func (r *Rig) Coordinator() *coord.Coordinator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coord
}

// Restart closes the coordinator and opens a fresh one over the same
// state directory — journals are the only memory carried across, which
// is the point. The loopback URL is unchanged, so live workers simply
// re-register when their old identity stops being honoured.
func (r *Rig) Restart() {
	r.T.Helper()
	r.mu.Lock()
	old := r.coord
	r.mu.Unlock()
	if err := old.Close(); err != nil {
		r.T.Fatalf("coordtest: restart close: %v", err)
	}
	c, err := coord.New(r.Dir, r.Opts)
	if err != nil {
		r.T.Fatalf("coordtest: restart: %v", err)
	}
	r.mu.Lock()
	r.coord = c
	r.mu.Unlock()
}

// StartWorker launches a worker loop named name with the given faults,
// computing leases in-process through the experiment registry.
func (r *Rig) StartWorker(name string, f Faults) *Worker {
	r.T.Helper()
	ctx, cancel := context.WithCancel(r.ctx)
	w := &Worker{Name: name, cancel: cancel, done: make(chan struct{})}
	cw := &inprocWorker{name: name, faults: f, kill: cancel, hang: r.hang}
	opts := coord.WorkerOptions{
		ScratchDir:     r.T.TempDir(),
		HeartbeatEvery: f.HeartbeatEvery,
		LeaseWait:      100 * time.Millisecond,
		Logf:           func(format string, args ...any) { r.T.Logf("coordtest: "+format, args...) },
	}
	if f.DropPush != nil || f.DoublePush != nil || f.PushDelay != nil {
		opts.Push = func(l *coord.Lease, push func() (*coord.PushResponse, error)) error {
			if f.PushDelay != nil {
				if d := f.PushDelay(l); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
			if f.DropPush != nil && f.DropPush(l) {
				return nil
			}
			n := 1
			if f.DoublePush != nil && f.DoublePush(l) {
				n = 2
			}
			for i := 0; i < n; i++ {
				if _, err := push(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	go func() {
		defer close(w.done)
		w.err = coord.RunWorker(ctx, r.Client, name, cw, opts)
	}()
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// Submit submits a sweep through the HTTP API and returns its run id.
func (r *Rig) Submit(req coord.SubmitRequest) string {
	r.T.Helper()
	id, err := r.Client.Submit(context.Background(), req)
	if err != nil {
		r.T.Fatalf("coordtest: submit: %v", err)
	}
	return id
}

// WaitMerged polls until the run merges (fatals on run failure or
// timeout) and returns its final status.
func (r *Rig) WaitMerged(runID string, timeout time.Duration) coord.RunStatus {
	r.T.Helper()
	st := r.WaitTerminal(runID, timeout)
	if st.State != "merged" {
		r.T.Fatalf("coordtest: run %s ended %q (%s), want merged", runID, st.State, st.Failure)
	}
	return st
}

// WaitTerminal polls until the run leaves the running state.
func (r *Rig) WaitTerminal(runID string, timeout time.Duration) coord.RunStatus {
	r.T.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := r.Coordinator().Status(runID)
		if err != nil {
			r.T.Fatalf("coordtest: status: %v", err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			r.T.Fatalf("coordtest: run %s still %q after %s (%d/%d done)", runID, st.State, timeout, st.Done, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Result fetches a merged run's bytes through the HTTP API.
func (r *Rig) Result(runID string) []byte {
	r.T.Helper()
	data, err := r.Client.Result(context.Background(), runID)
	if err != nil {
		r.T.Fatalf("coordtest: result: %v", err)
	}
	return data
}

// Reference computes the unsharded reference bytes for a sweep: the
// exact file a merged coordinator run must reproduce.
func Reference(t testing.TB, selection string, p experiment.ShardParams) []byte {
	t.Helper()
	f, err := experiment.RunShard(selection, p, 0, 1, 0)
	if err != nil {
		t.Fatalf("coordtest: reference: %v", err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatalf("coordtest: reference: %v", err)
	}
	return data
}

// inprocWorker computes leases through the experiment registry, with
// the compute-side faults wired in.
type inprocWorker struct {
	name   string
	faults Faults
	kill   context.CancelFunc
	hang   <-chan struct{}
	once   sync.Once
}

func (w *inprocWorker) Name() string { return w.name }

func (w *inprocWorker) Run(ctx context.Context, t dispatch.Task) error {
	if w.faults.Die != nil && w.faults.Die(t.Index) {
		died := false
		w.once.Do(func() {
			died = true
			w.kill()
		})
		if died {
			<-ctx.Done()
			return ctx.Err()
		}
	}
	if w.faults.Hang != nil && w.faults.Hang(t.Index) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.hang:
			return fmt.Errorf("coordtest: hang released at shutdown")
		}
	}
	var (
		f   *shard.File
		err error
	)
	if t.Cells != "" {
		var cells [][]int
		cells, err = alignCells(t.Spec.Selection, t.Cells)
		if err == nil {
			f, err = experiment.RunBatchCached(t.Spec.Selection, t.Spec.Params, 1, cells, nil)
		}
	} else {
		f, err = experiment.RunShard(t.Spec.Selection, t.Spec.Params, 1, t.Spec.Shards, t.Index)
	}
	if err != nil {
		return err
	}
	return f.WriteFile(t.Out)
}

// alignCells maps a cell spec's per-name sets onto the selection's
// canonical run order, as the CLI's -cells path does.
func alignCells(selection, spec string) ([][]int, error) {
	runNames, err := experiment.SelectionRuns(selection)
	if err != nil {
		return nil, err
	}
	names, sets, err := shard.ParseCellSpec(spec)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(runNames))
	for i, n := range runNames {
		byName[n] = i
	}
	cells := make([][]int, len(runNames))
	for i, n := range names {
		ri, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("coordtest: cell spec names unknown run %q", n)
		}
		cells[ri] = sets[i]
	}
	return cells, nil
}
