package coord

import (
	"strings"
	"testing"
)

func TestDecodeSubmit(t *testing.T) {
	good := `{"selection":"fig5","params":{"Systems":4},"shards":3,"balance":"cost"}`
	m, err := DecodeSubmit([]byte(good))
	if err != nil {
		t.Fatalf("DecodeSubmit(%q): %v", good, err)
	}
	if m.Selection != "fig5" || m.Shards != 3 || m.Balance != "cost" {
		t.Fatalf("DecodeSubmit(%q) = %+v", good, m)
	}
	bad := []string{
		``,                                // not JSON
		`{"shards":0}`,                    // shards out of range
		`{"shards":-1}`,                   // negative
		`{"shards":2000000}`,              // beyond limit
		`{"shards":2,"balance":"speed"}`,  // unknown balance
		`{"shards":2,"selection":"a\nb"}`, // control char in selection
		`{"shards":2,"selection":"` + strings.Repeat("x", 200) + `"}`, // too long
	}
	for _, s := range bad {
		if _, err := DecodeSubmit([]byte(s)); err == nil {
			t.Errorf("DecodeSubmit(%q) accepted", s)
		}
	}
}

func TestDecodeLease(t *testing.T) {
	good := `{"run_id":"run-0001","unit":2,"attempt":1,"selection":"all","shards":3,"index":2}`
	l, err := DecodeLease([]byte(good))
	if err != nil {
		t.Fatalf("DecodeLease(%q): %v", good, err)
	}
	if l.Unit != 2 || l.Index != 2 || l.Shards != 3 {
		t.Fatalf("DecodeLease(%q) = %+v", good, l)
	}
	withCells := `{"run_id":"run-0002","unit":0,"attempt":2,"selection":"fig5","shards":2,"index":0,"cells":"fig5=0-4,9"}`
	if _, err := DecodeLease([]byte(withCells)); err != nil {
		t.Fatalf("DecodeLease(%q): %v", withCells, err)
	}
	bad := []string{
		`{"run_id":"","unit":0,"attempt":1,"selection":"all","shards":1,"index":0}`,                         // no run id
		`{"run_id":"run/1","unit":0,"attempt":1,"selection":"all","shards":1,"index":0}`,                    // bad id chars
		`{"run_id":"run-1","unit":-1,"attempt":1,"selection":"all","shards":1,"index":0}`,                   // bad unit
		`{"run_id":"run-1","unit":0,"attempt":0,"selection":"all","shards":1,"index":0}`,                    // bad attempt
		`{"run_id":"run-1","unit":0,"attempt":1,"selection":"all","shards":2,"index":2}`,                    // index out of range
		`{"run_id":"run-1","unit":0,"attempt":1,"selection":"all","shards":1,"index":0,"cells":"nonsense"}`, // bad spec
	}
	for _, s := range bad {
		if _, err := DecodeLease([]byte(s)); err == nil {
			t.Errorf("DecodeLease(%q) accepted", s)
		}
	}
}

func TestDecodeWorkerMessages(t *testing.T) {
	if m, err := DecodeRegister([]byte(`{"name":"w1"}`)); err != nil || m.Name != "w1" {
		t.Fatalf("DecodeRegister: %+v, %v", m, err)
	}
	if _, err := DecodeRegister([]byte(`{"name":"bad\nname"}`)); err == nil {
		t.Error("DecodeRegister accepted a newline name")
	}
	if _, err := DecodeHeartbeat([]byte(`{"worker_id":"w-0001"}`)); err != nil {
		t.Errorf("DecodeHeartbeat: %v", err)
	}
	if _, err := DecodeHeartbeat([]byte(`{"worker_id":"w 1"}`)); err == nil {
		t.Error("DecodeHeartbeat accepted a space in the id")
	}
	if _, err := DecodeLeaseRequest([]byte(`{"worker_id":"w-0001","wait_ms":1000}`)); err != nil {
		t.Errorf("DecodeLeaseRequest: %v", err)
	}
	if _, err := DecodeLeaseRequest([]byte(`{"worker_id":"w-0001","wait_ms":120000}`)); err == nil {
		t.Error("DecodeLeaseRequest accepted an oversize wait")
	}
	if _, err := DecodeFail([]byte(`{"worker_id":"w-0001","attempt":1,"error":"boom"}`)); err != nil {
		t.Errorf("DecodeFail: %v", err)
	}
	if _, err := DecodeFail([]byte(`{"worker_id":"w-0001","attempt":1,"error":"` + strings.Repeat("x", 20<<10) + `"}`)); err == nil {
		t.Error("DecodeFail accepted an oversize error")
	}
}

func TestTruncateErr(t *testing.T) {
	long := strings.Repeat("e", maxErrLen+100)
	got := truncateErr(long)
	if len(got) > maxErrLen {
		t.Fatalf("truncateErr left %d bytes", len(got))
	}
	if !strings.HasSuffix(got, "[truncated]") {
		t.Fatalf("truncateErr did not mark the cut: ...%s", got[len(got)-20:])
	}
	if _, err := DecodeFail([]byte(`{"worker_id":"w-1","attempt":1,"error":` + quote(truncateErr(long)) + `}`)); err != nil {
		t.Fatalf("truncated error rejected by DecodeFail: %v", err)
	}
}

func quote(s string) string {
	b := strings.Builder{}
	b.WriteByte('"')
	b.WriteString(s)
	b.WriteByte('"')
	return b.String()
}
