package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// MaxResultBody bounds a pushed result file. Shard files are JSON cell
// sets; 64 MiB is far beyond any current grid and protects the
// coordinator from a runaway client.
const MaxResultBody = 64 << 20

// Handler returns the coordinator's HTTP API. All endpoints live under
// /api/v1; the protocol is specified in docs/COORDINATOR.md.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/workers", c.handleRegister)
	mux.HandleFunc("POST /api/v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/lease", c.handleLease)
	mux.HandleFunc("POST /api/v1/runs", c.handleSubmit)
	mux.HandleFunc("GET /api/v1/runs", c.handleRuns)
	mux.HandleFunc("GET /api/v1/runs/{id}", c.handleRun)
	mux.HandleFunc("GET /api/v1/runs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /api/v1/runs/{id}/result", c.handleResult)
	mux.HandleFunc("POST /api/v1/runs/{id}/units/{unit}/result", c.handlePush)
	mux.HandleFunc("POST /api/v1/runs/{id}/units/{unit}/fail", c.handleFail)
	mux.HandleFunc("GET /api/v1/status", c.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownRun):
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, fmt.Errorf("coord: read body: %w", err))
		return nil, false
	}
	if int64(len(data)) > limit {
		http.Error(w, fmt.Sprintf("coord: body exceeds %d bytes", limit), http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return data, true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r, MaxJSONBody)
	if !ok {
		return
	}
	req, err := DecodeRegister(data)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, c.Register(req.Name))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !okID(id) {
		httpError(w, fmt.Errorf("coord: bad worker id"))
		return
	}
	if err := c.Heartbeat(id); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r, MaxJSONBody)
	if !ok {
		return
	}
	req, err := DecodeLeaseRequest(data)
	if err != nil {
		httpError(w, err)
		return
	}
	lease, err := c.Lease(req.WorkerID, time.Duration(req.WaitMillis)*time.Millisecond)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, LeaseResponse{Wire: WireVersion, Lease: lease})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r, MaxJSONBody)
	if !ok {
		return
	}
	req, err := DecodeSubmit(data)
	if err != nil {
		httpError(w, err)
		return
	}
	id, err := c.Submit(*req)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, SubmitResponse{Wire: WireVersion, RunID: id})
}

func (c *Coordinator) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, RunsResponse{Wire: WireVersion, Runs: c.RunStatuses()})
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	st, err := c.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	data, err := c.Result(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (c *Coordinator) handlePush(w http.ResponseWriter, r *http.Request) {
	runID := r.PathValue("id")
	unitID, err := strconv.Atoi(r.PathValue("unit"))
	if err != nil || unitID < 0 {
		httpError(w, fmt.Errorf("coord: bad unit id"))
		return
	}
	workerID := r.URL.Query().Get("worker")
	attempt, aerr := strconv.Atoi(r.URL.Query().Get("attempt"))
	if !okID(workerID) || aerr != nil || attempt < 1 || attempt > maxAttempt {
		httpError(w, fmt.Errorf("coord: bad worker/attempt query"))
		return
	}
	data, ok := readBody(w, r, MaxResultBody)
	if !ok {
		return
	}
	resp, err := c.Push(runID, unitID, workerID, attempt, data)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	runID := r.PathValue("id")
	unitID, err := strconv.Atoi(r.PathValue("unit"))
	if err != nil || unitID < 0 {
		httpError(w, fmt.Errorf("coord: bad unit id"))
		return
	}
	data, ok := readBody(w, r, MaxJSONBody)
	if !ok {
		return
	}
	req, err := DecodeFail(data)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := c.ReportFail(runID, unitID, *req); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, c.StatusText())
}

// handleEvents streams a run's progress events as server-sent events:
// the full history first, then live events until the run reaches its
// terminal state or the client goes away. Each event is one
// `data: <json>` line holding a dispatch.ProgressEvent.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	history, ch, cancel, err := c.Subscribe(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	send := func(e any) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	for _, e := range history {
		if !send(e) {
			return
		}
	}
	if ch == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if !send(e) {
				return
			}
		}
	}
}
