package coord_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/coordtest"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/shard"
)

func testParams() experiment.ShardParams {
	return experiment.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}
}

func testOpts() coord.Options {
	return coord.Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
	}
}

// TestCoordinatorRoundRobin drives a full sweep through the HTTP
// protocol with two honest workers and checks the merged result is
// byte-identical to the unsharded run.
func TestCoordinatorRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, testOpts())
	rig.StartWorker("w0", coordtest.Faults{})
	rig.StartWorker("w1", coordtest.Faults{})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	st := rig.WaitMerged(id, 60*time.Second)
	if st.Done != 3 || st.Total != 3 {
		t.Fatalf("final status %+v, want 3/3 done", st)
	}
	if got, want := rig.Result(id), coordtest.Reference(t, "fig5", testParams()); !bytes.Equal(got, want) {
		t.Fatalf("merged result differs from unsharded run (%d vs %d bytes)", len(got), len(want))
	}
	// The run directory speaks the dispatch journal schema: the stock
	// reader must see a complete, merged run.
	jst, err := dispatch.ReadJournalDir(rig.Coordinator().RunDir(id))
	if err != nil {
		t.Fatalf("ReadJournalDir: %v", err)
	}
	if !jst.Merged || jst.DoneCount() != 3 || len(jst.Missing()) != 0 {
		t.Fatalf("journal state: merged=%v done=%d missing=%v", jst.Merged, jst.DoneCount(), jst.Missing())
	}
	if jst.Selection != "fig5" || jst.Shards != 3 {
		t.Fatalf("journal plan: %q x%d", jst.Selection, jst.Shards)
	}
}

// TestCoordinatorCostBalanced checks the cost-packed decomposition path
// end to end: batches leased as cell specs, merged via MergeBatches.
func TestCoordinatorCostBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, testOpts())
	rig.StartWorker("w0", coordtest.Faults{})
	rig.StartWorker("w1", coordtest.Faults{})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3, Balance: "cost"})
	rig.WaitMerged(id, 60*time.Second)
	if got, want := rig.Result(id), coordtest.Reference(t, "fig5", testParams()); !bytes.Equal(got, want) {
		t.Fatalf("cost-balanced merge differs from unsharded run")
	}
	jst, err := dispatch.ReadJournalDir(rig.Coordinator().RunDir(id))
	if err != nil {
		t.Fatalf("ReadJournalDir: %v", err)
	}
	if jst.Balance != "cost" {
		t.Fatalf("journal balance %q, want cost", jst.Balance)
	}
	batches := 0
	for _, sh := range jst.ShardStates {
		if sh.Kind == "cost" {
			batches++
			if sh.Spec == "" {
				t.Errorf("batch %d journaled without a cell spec", sh.Index)
			}
		}
	}
	if batches == 0 {
		t.Fatal("no cost batch events journaled")
	}
}

// TestCoordinatorMultiplexesRuns submits two different sweeps and
// checks both complete correctly from the same worker pool.
func TestCoordinatorMultiplexesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, testOpts())
	rig.StartWorker("w0", coordtest.Faults{})
	rig.StartWorker("w1", coordtest.Faults{})
	idA := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 2})
	idB := rig.Submit(coord.SubmitRequest{Selection: "tailq", Params: testParams(), Shards: 3, Balance: "cost"})
	rig.WaitMerged(idA, 60*time.Second)
	rig.WaitMerged(idB, 60*time.Second)
	if got, want := rig.Result(idA), coordtest.Reference(t, "fig5", testParams()); !bytes.Equal(got, want) {
		t.Errorf("run %s differs from unsharded fig5", idA)
	}
	if got, want := rig.Result(idB), coordtest.Reference(t, "tailq", testParams()); !bytes.Equal(got, want) {
		t.Errorf("run %s differs from unsharded tailq", idB)
	}
	runs, err := rig.Client.Runs(context.Background())
	if err != nil {
		t.Fatalf("Runs: %v", err)
	}
	if len(runs) != 2 || runs[0].RunID != idA || runs[1].RunID != idB {
		t.Fatalf("run list %+v, want [%s %s]", runs, idA, idB)
	}
}

// TestCoordinatorEvents consumes the SSE stream of a live run and
// checks the progress schema arrives in order: plan first, then
// attempts/dones, merged last.
func TestCoordinatorEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, testOpts())
	id := rig.Submit(coord.SubmitRequest{Selection: "tailq", Params: testParams(), Shards: 2})
	var kinds []dispatch.ProgressKind
	done := make(chan error, 1)
	go func() {
		done <- rig.Client.Events(context.Background(), id, func(e dispatch.ProgressEvent) {
			if e.Version != dispatch.ProgressVersion {
				t.Errorf("event version %d, want %d", e.Version, dispatch.ProgressVersion)
			}
			kinds = append(kinds, e.Kind)
		})
	}()
	rig.StartWorker("w0", coordtest.Faults{})
	rig.WaitMerged(id, 60*time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Events: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate after merge")
	}
	if len(kinds) == 0 || kinds[0] != dispatch.ProgressPlan {
		t.Fatalf("stream kinds %v: want plan first", kinds)
	}
	if kinds[len(kinds)-1] != dispatch.ProgressMerged {
		t.Fatalf("stream kinds %v: want merged last", kinds)
	}
	count := map[dispatch.ProgressKind]int{}
	for _, k := range kinds {
		count[k]++
	}
	if count[dispatch.ProgressAttempt] < 2 || count[dispatch.ProgressDone] != 2 {
		t.Fatalf("stream kinds %v: want >=2 attempts and exactly 2 dones", kinds)
	}
}

// TestCoordinatorResultMatchesMergeSubcommandInput checks the result
// endpoint serves a well-formed single-shard file (re-renderable, like
// any merged cover).
func TestCoordinatorResultDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, testOpts())
	rig.StartWorker("w0", coordtest.Faults{})
	id := rig.Submit(coord.SubmitRequest{Selection: "tailq", Params: testParams(), Shards: 2})
	rig.WaitMerged(id, 60*time.Second)
	f, err := shard.Decode(rig.Result(id))
	if err != nil {
		t.Fatalf("result does not decode as a shard file: %v", err)
	}
	if f.Shards != 1 || f.Index != 0 {
		t.Fatalf("result is %d/%d, want single-shard", f.Index, f.Shards)
	}
}

// TestStatusEndpoint checks the deterministic status text over HTTP.
func TestStatusEndpoint(t *testing.T) {
	rig := coordtest.New(t, testOpts())
	resp, err := http.Get(rig.Client.BaseURL + "/api/v1/status")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %s: %s", resp.Status, body)
	}
	if want := "coordinator: 0 run(s), 0 worker(s) connected\n"; string(body) != want {
		t.Fatalf("empty status = %q, want %q", body, want)
	}
}

// TestSubmitRejectsNonsense checks server-side validation surfaces as
// client errors, not created runs.
func TestSubmitRejectsNonsense(t *testing.T) {
	rig := coordtest.New(t, testOpts())
	ctx := context.Background()
	if _, err := rig.Client.Submit(ctx, coord.SubmitRequest{Selection: "no-such-experiment", Shards: 2}); err == nil {
		t.Error("submit accepted an unknown selection")
	}
	if _, err := rig.Client.Submit(ctx, coord.SubmitRequest{Selection: "fig5", Shards: 0}); err == nil {
		t.Error("submit accepted zero shards")
	}
	if _, err := rig.Client.Submit(ctx, coord.SubmitRequest{Selection: "fig5", Shards: 2, Balance: "magic"}); err == nil {
		t.Error("submit accepted an unknown balance")
	}
	runs, err := rig.Client.Runs(ctx)
	if err != nil {
		t.Fatalf("Runs: %v", err)
	}
	if len(runs) != 0 {
		t.Fatalf("rejected submits left %d runs behind", len(runs))
	}
	if _, err := rig.Client.Run(ctx, "run-9999"); err == nil || !strings.Contains(err.Error(), "unknown run") {
		t.Errorf("unknown run error = %v", err)
	}
}

// TestSweepSurvivesRunFailureMidSweep pins the sweeper against the run
// going terminal mid-sweep: one worker holds two leases and vanishes
// with MaxAttempts=1, so the first expired lease fails the whole run
// and closes its journal. The second expired lease of the same run must
// then be skipped — not journaled against a closed (nil) journal, which
// used to panic the sweeper goroutine and crash the coordinator.
func TestSweepSurvivesRunFailureMidSweep(t *testing.T) {
	c, err := coord.New(t.TempDir(), coord.Options{
		HeartbeatTimeout: 200 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
		MaxAttempts:      1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	reg := c.Register("ghost")
	id, err := c.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < 2; i++ {
		l, lerr := c.Lease(reg.WorkerID, 0)
		if lerr != nil || l == nil {
			t.Fatalf("lease %d = %+v, %v", i, l, lerr)
		}
	}
	// The worker never heartbeats again: both leases expire in one sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, serr := c.Status(id)
		if serr != nil {
			t.Fatalf("Status: %v", serr)
		}
		if st.State == "failed" {
			if !strings.Contains(st.Failure, "attempts exhausted") {
				t.Fatalf("run failed with %q, want an attempts-exhausted reason", st.Failure)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never failed after losing its worker: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerIDsUniqueAcrossRestart checks a pre-restart worker id can
// never alias a post-restart registration: aliasing would let the old
// worker's heartbeats keep the new id alive, silently breaking
// heartbeat-timeout reassignment.
func TestWorkerIDsUniqueAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := coord.New(dir, testOpts())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	id1 := c1.Register("a").WorkerID
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2, err := coord.New(dir, testOpts())
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	defer c2.Close()
	if id2 := c2.Register("b").WorkerID; id1 == id2 {
		t.Fatalf("worker id %q reused across restart", id1)
	}
	if err := c2.Heartbeat(id1); err == nil {
		t.Fatalf("restarted coordinator accepted pre-restart worker id %q", id1)
	}
}

// TestRestartRestoresAttemptBudget checks journaled attempts count
// against MaxAttempts after a coordinator restart — the budget must not
// silently reset, or a persistently failing unit retries forever across
// restarts.
func TestRestartRestoresAttemptBudget(t *testing.T) {
	dir := t.TempDir()
	opts := coord.Options{HeartbeatTimeout: time.Minute, MaxAttempts: 3}
	c1, err := coord.New(dir, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := c1.Register("flaky")
	id, err := c1.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l, err := c1.Lease(reg.WorkerID, 0)
	if err != nil || l == nil || l.Attempt != 1 {
		t.Fatalf("first lease = %+v, %v", l, err)
	}
	if err := c1.ReportFail(id, l.Unit, coord.FailRequest{WorkerID: reg.WorkerID, Attempt: 1, Error: "boom"}); err != nil {
		t.Fatalf("ReportFail: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c2, err := coord.New(dir, opts)
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	defer c2.Close()
	reg2 := c2.Register("flaky-too")
	l2, err := c2.Lease(reg2.WorkerID, 0)
	if err != nil || l2 == nil {
		t.Fatalf("lease after restart = %+v, %v", l2, err)
	}
	if l2.Attempt != 2 {
		t.Fatalf("lease after restart is attempt %d, want 2: the journaled attempt must count against the budget", l2.Attempt)
	}
}

// TestLeaseUnknownWorker checks the protocol's re-register contract: a
// lease or heartbeat under an unknown id fails with 404.
func TestLeaseUnknownWorker(t *testing.T) {
	rig := coordtest.New(t, testOpts())
	ctx := context.Background()
	if _, err := rig.Client.Lease(ctx, "w-9999", 0); err == nil {
		t.Error("lease under an unregistered id succeeded")
	}
	if err := rig.Client.Heartbeat(ctx, "w-9999"); err == nil {
		t.Error("heartbeat under an unregistered id succeeded")
	}
	reg, err := rig.Client.Register(ctx, "probe")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := rig.Client.Heartbeat(ctx, reg.WorkerID); err != nil {
		t.Errorf("heartbeat after register: %v", err)
	}
	l, err := rig.Client.Lease(ctx, reg.WorkerID, 0)
	if err != nil || l != nil {
		t.Errorf("lease with no work = %+v, %v; want nil, nil", l, err)
	}
}
