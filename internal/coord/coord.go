package coord

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/shard"
	"repro/internal/textplot"
)

// Options configures a Coordinator.
type Options struct {
	// HeartbeatTimeout is how long a worker may go silent before its
	// leases are reassigned (default 15s).
	HeartbeatTimeout time.Duration
	// LeaseTimeout, when positive, bounds how long one attempt at a unit
	// may stay leased before it is failed and requeued — the defence
	// against a worker that heartbeats but hangs mid-compute. 0 disables
	// it (a lost worker is still detected by heartbeat timeout).
	LeaseTimeout time.Duration
	// MaxAttempts bounds attempts per unit, counting reassignments
	// (default 3). When a unit exhausts it, the run fails.
	MaxAttempts int
	// SweepEvery is the liveness sweep interval (default
	// HeartbeatTimeout/4, min 10ms).
	SweepEvery time.Duration
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Codec selects the encoding of the merged result file the
	// coordinator writes (shard.EncodingJSON when ""). Pushed unit files
	// are accepted in either encoding regardless — they are stored
	// verbatim and decoded through the auto-detecting reader. The merged
	// file keeps the name "merged.json" either way; the container magic,
	// not the name, identifies the format.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = o.HeartbeatTimeout / 4
	}
	if o.SweepEvery < 10*time.Millisecond {
		o.SweepEvery = 10 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Codec == "" {
		o.Codec = shard.EncodingJSON
	}
	return o
}

// Run and unit lifecycle states.
const (
	runRunning = "running"
	runMerged  = "merged"
	runFailed  = "failed"
)

// unit is one leasable work unit of a run: a round-robin shard or a
// cost-balanced cell batch. Units and shards share the journal id space
// exactly as in the in-process dispatcher.
type unit struct {
	id     int
	kind   string  // "shard", "cost" or "split" (journal batch kinds)
	index  int     // shard index for round-robin units (== id)
	cells  [][]int // batch cells aligned to run names; nil for shards
	spec   string  // formatted cell spec; "" for shards
	ncells int
	weight float64
	path   string // where the validated result file lands

	state      dispatch.ShardState
	attempts   int
	worker     string // worker id of the current lease
	workerName string
	leasedAt   time.Time
	cellCount  int // validated result's cell count (done units)
}

// run is one multiplexed sweep.
type run struct {
	id       string
	dir      string
	spec     dispatch.Spec
	params   []byte
	runNames []string
	balance  string
	jr       *dispatch.Journal

	units   []*unit
	pending []*unit // FIFO lease queue

	state      string
	failure    string
	resumed    int
	duplicates int
	mergedAt   bool
	mergedCell int

	history []dispatch.ProgressEvent
	subs    map[chan dispatch.ProgressEvent]struct{}
}

func (r *run) total() int { return len(r.units) }

func (r *run) doneCount() int {
	n := 0
	for _, u := range r.units {
		if u.state == dispatch.ShardDone {
			n++
		}
	}
	return n
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	lastBeat time.Time
}

// Coordinator is a long-running dispatch service: clients submit sweeps,
// workers lease units and push result files back over the wire, and the
// coordinator journals, reassigns, deduplicates and merges — the same
// guarantees as the in-process dispatcher, with the filesystem coupling
// replaced by HTTP.
type Coordinator struct {
	dir  string
	opts Options
	boot string // random per-process nonce embedded in worker ids

	mu      sync.Mutex
	wake    chan struct{} // closed+replaced when work may have appeared
	workers map[string]*workerState
	wseq    int
	pseq    int // push temp-file sequence
	runs    map[string]*run
	order   []string // run ids, submission order
	rseq    int

	closed   chan struct{}
	closeErr error
	once     sync.Once
	wg       sync.WaitGroup
}

// New opens (or creates) a coordinator over the given state directory,
// resuming every journaled run found under dir/runs, and starts the
// liveness sweeper. Call Close to stop it.
func New(dir string, opts Options) (*Coordinator, error) {
	if _, err := shard.ParseEncoding(opts.Codec); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(abs, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	nonce := make([]byte, 3)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	c := &Coordinator{
		dir:     abs,
		boot:    hex.EncodeToString(nonce),
		opts:    opts.withDefaults(),
		wake:    make(chan struct{}),
		workers: make(map[string]*workerState),
		runs:    make(map[string]*run),
		closed:  make(chan struct{}),
	}
	if err := c.loadRuns(); err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.sweeper()
	return c, nil
}

// Close stops the sweeper, closes every run's journal and wakes pending
// long-polls. Idempotent.
func (c *Coordinator) Close() error {
	c.once.Do(func() {
		close(c.closed)
		c.wg.Wait()
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, id := range c.order {
			r := c.runs[id]
			if r.jr != nil {
				if err := r.jr.Close(); err != nil && c.closeErr == nil {
					c.closeErr = err
				}
				r.jr = nil
			}
			for ch := range r.subs {
				close(ch)
			}
			r.subs = nil
		}
		c.wakeLocked()
	})
	return c.closeErr
}

// Dir returns the coordinator's absolute state directory.
func (c *Coordinator) Dir() string { return c.dir }

// RunDir returns the state directory of one run.
func (c *Coordinator) RunDir(runID string) string {
	return filepath.Join(c.dir, "runs", runID)
}

func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// emit appends a progress event to the run's history and fans it out to
// subscribers. Caller holds c.mu.
func (c *Coordinator) emit(r *run, e dispatch.ProgressEvent) {
	e.Version = dispatch.ProgressVersion
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.history = append(r.history, e)
	for ch := range r.subs {
		select {
		case ch <- e:
		default:
			// A stalled subscriber must not stall the coordinator; it can
			// re-read the journal for the full record.
			c.opts.Logf("coord: run %s: dropping event for slow subscriber", r.id)
		}
	}
}

// terminalLocked marks a run merged or failed, closes its journal and
// ends its event streams. Caller holds c.mu.
func (c *Coordinator) terminalLocked(r *run, state, failure string) {
	r.state, r.failure = state, failure
	r.pending = nil
	if r.jr != nil {
		if err := r.jr.Close(); err != nil {
			c.opts.Logf("coord: run %s: journal: %v", r.id, err)
		}
		r.jr = nil
	}
	for ch := range r.subs {
		close(ch)
	}
	r.subs = make(map[chan dispatch.ProgressEvent]struct{})
}

// ---- submission ----

// Submit creates a run for the given sweep and returns its id. The spec
// is normalised exactly as dispatch.Run would; the run starts pending
// and is served to workers as they lease.
func (c *Coordinator) Submit(req SubmitRequest) (string, error) {
	spec := dispatch.Spec{Selection: req.Selection, Params: req.Params, Shards: req.Shards}
	spec, params, runNames, err := spec.Normalised()
	if err != nil {
		return "", err
	}
	balance := req.Balance
	if balance == "" {
		balance = dispatch.BalanceRoundRobin
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return "", fmt.Errorf("coord: coordinator is shut down")
	default:
	}
	c.rseq++
	id := fmt.Sprintf("run-%04d", c.rseq)
	dir := c.RunDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("coord: %w", err)
	}
	jr, _, _, err := dispatch.OpenJournal(filepath.Join(dir, dispatch.JournalFileName), spec, params, balance)
	if err != nil {
		return "", err
	}
	r := &run{
		id: id, dir: dir, spec: spec, params: params, runNames: runNames,
		balance: balance, jr: jr, state: runRunning,
		subs: make(map[chan dispatch.ProgressEvent]struct{}),
	}
	if err := c.planUnits(r); err != nil {
		jr.Close()
		return "", err
	}
	c.runs[id] = r
	c.order = append(c.order, id)
	c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressPlan, Shards: r.total(), Shard: -1})
	for _, u := range r.units {
		if u.kind != "shard" {
			c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressBatch, Shard: u.id, Cells: u.ncells})
		}
	}
	r.pending = append(r.pending, r.units...)
	c.wakeLocked()
	c.opts.Logf("coord: run %s: %q x%d (%s), %d units", id, spec.Selection, spec.Shards, balance, r.total())
	return id, nil
}

// planUnits builds a fresh run's units: round-robin index shards, or
// cost-packed cell batches planned exactly as the in-process dispatcher
// plans them (and journaled as batch events).
func (c *Coordinator) planUnits(r *run) error {
	if r.balance == dispatch.BalanceRoundRobin {
		plan, err := experiment.PlanSelection(r.spec.Selection, r.spec.Params)
		if err != nil {
			return err
		}
		assign, err := shard.RoundRobin{}.Split(plan.Grids, r.spec.Shards)
		if err != nil {
			return err
		}
		counts := make([]int, r.spec.Shards)
		for ri := range assign {
			for _, part := range assign[ri] {
				counts[part]++
			}
		}
		for i := 0; i < r.spec.Shards; i++ {
			r.units = append(r.units, &unit{
				id: i, kind: "shard", index: i, ncells: counts[i],
				state: dispatch.ShardPending,
				path:  filepath.Join(r.dir, fmt.Sprintf("shard%d.json", i)),
			})
		}
		return nil
	}
	plan, err := experiment.PlanSelection(r.spec.Selection, r.spec.Params)
	if err != nil {
		return err
	}
	covered := make([]map[int]bool, len(plan.Names))
	for i := range covered {
		covered[i] = map[int]bool{}
	}
	batches, _, err := dispatch.PlanCostBatches(plan, plan.Costs, covered, r.spec.Shards, 0)
	if err != nil {
		return err
	}
	for _, b := range batches {
		r.jr.Batch(b.ID, "cost", -1, b.Spec, b.NCells, b.Weight)
		r.units = append(r.units, &unit{
			id: b.ID, kind: "cost", index: b.ID, cells: b.Cells, spec: b.Spec,
			ncells: b.NCells, weight: b.Weight, state: dispatch.ShardPending,
			path: filepath.Join(r.dir, fmt.Sprintf("batch%d.json", b.ID)),
		})
	}
	return nil
}

// ---- restart resume ----

// loadRuns restores every journaled run under dir/runs. Done units are
// revalidated against their files; anything else re-enters the pending
// queue — exactly the resume rules of the in-process dispatcher.
func (c *Coordinator) loadRuns() error {
	entries, err := os.ReadDir(filepath.Join(c.dir, "runs"))
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := c.loadRun(id); err != nil {
			// A corrupt run directory must not take the service down; it
			// stays on disk for the operator, invisible to the API.
			c.opts.Logf("coord: skipping run %s: %v", id, err)
		}
		var n int
		if _, err := fmt.Sscanf(id, "run-%d", &n); err == nil && n > c.rseq {
			c.rseq = n
		}
	}
	return nil
}

func (c *Coordinator) loadRun(id string) error {
	dir := c.RunDir(id)
	st, err := dispatch.ReadJournalDir(dir)
	if err != nil {
		return err
	}
	var p experiment.ShardParams
	if len(st.Params) > 0 {
		if err := json.Unmarshal(st.Params, &p); err != nil {
			return fmt.Errorf("coord: run %s: params: %w", id, err)
		}
	}
	spec := dispatch.Spec{Selection: st.Selection, Params: p, Shards: st.Shards}
	spec, params, runNames, err := spec.Normalised()
	if err != nil {
		return err
	}
	balance := st.Balance
	if balance == "" {
		balance = dispatch.BalanceRoundRobin
	}
	jr, _, prior, err := dispatch.OpenJournal(filepath.Join(dir, dispatch.JournalFileName), spec, params, balance)
	if err != nil {
		return err
	}
	r := &run{
		id: id, dir: dir, spec: spec, params: params, runNames: runNames,
		balance: balance, jr: jr, state: runRunning,
		subs: make(map[chan dispatch.ProgressEvent]struct{}),
	}
	if prior != nil && prior.Merged {
		r.state, r.mergedAt, r.mergedCell = runMerged, true, prior.MergedCells
		jr.Close()
		r.jr = nil
	}
	// Round-robin units re-derive their per-shard cell counts from the
	// plan (batches carry theirs in the journal). A plan failure only
	// degrades the counts; it must not block resuming the journal record.
	var rrCounts []int
	if balance == dispatch.BalanceRoundRobin {
		if plan, perr := experiment.PlanSelection(spec.Selection, spec.Params); perr == nil {
			if assign, aerr := (shard.RoundRobin{}).Split(plan.Grids, spec.Shards); aerr == nil {
				rrCounts = make([]int, spec.Shards)
				for ri := range assign {
					for _, part := range assign[ri] {
						rrCounts[part]++
					}
				}
			}
		}
	}
	for _, sh := range prior.ShardStates {
		if sh.Superseded {
			continue
		}
		// Attempts resume from the journal so the MaxAttempts budget
		// survives restarts: a journaled lease counts whether it failed or
		// was interrupted, exactly as it counted live.
		u := &unit{id: sh.Index, index: sh.Index, state: dispatch.ShardPending, attempts: sh.Attempts}
		if balance == dispatch.BalanceRoundRobin {
			u.kind = "shard"
			if sh.Index < len(rrCounts) {
				u.ncells = rrCounts[sh.Index]
			}
			u.path = filepath.Join(dir, fmt.Sprintf("shard%d.json", sh.Index))
		} else {
			u.kind = sh.Kind
			if u.kind == "" {
				u.kind = "cost"
			}
			u.spec, u.ncells, u.weight = sh.Spec, sh.Cells, sh.Weight
			u.path = filepath.Join(dir, fmt.Sprintf("batch%d.json", sh.Index))
			cells, err := cellsFor(runNames, sh.Spec)
			if err != nil {
				jr.Close()
				return fmt.Errorf("coord: run %s: batch %d: %w", id, sh.Index, err)
			}
			u.cells = cells
		}
		if sh.State == dispatch.ShardDone {
			// Trust but verify: the journal says done, the file must agree.
			path := filepath.Join(dir, filepath.Base(sh.File))
			f, verr := c.validateUnitFile(r, u, path)
			if r.state == runMerged {
				// A merged run's cover already proved itself; keep it done
				// even if a shard file was cleaned up since.
				u.state = dispatch.ShardDone
			} else if verr == nil {
				u.state = dispatch.ShardDone
				u.path = path
				u.cellCount = f.CellCount()
				r.resumed++
			} else {
				c.opts.Logf("coord: run %s: unit %d journaled done but %v; re-queueing", id, sh.Index, verr)
			}
		}
		r.units = append(r.units, u)
	}
	// Seed the event history so a late subscriber sees a coherent stream.
	c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressPlan, Shards: r.total(), Shard: -1})
	for _, u := range r.units {
		if u.kind != "shard" {
			c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressBatch, Shard: u.id, Cells: u.ncells})
		}
	}
	for _, u := range r.units {
		if u.state == dispatch.ShardDone && r.state != runMerged {
			c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressResumed, Shard: u.id, File: u.path})
		}
		if u.state != dispatch.ShardDone && r.state == runRunning {
			r.pending = append(r.pending, u)
		}
	}
	if r.state == runMerged {
		c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressMerged, Shards: r.total(), Shard: -1, Cells: r.mergedCell})
		r.subs = make(map[chan dispatch.ProgressEvent]struct{})
	}
	c.runs[id] = r
	c.order = append(c.order, id)
	if r.state == runRunning && len(r.pending) == 0 && r.total() > 0 {
		// Everything was already done but the merge never journaled
		// (killed between last done and merged): finish the job now.
		if err := c.mergeLocked(r); err != nil {
			c.opts.Logf("coord: run %s: %v", id, err)
		}
	}
	c.opts.Logf("coord: resumed run %s: %d/%d units done, state %s", id, r.doneCount(), r.total(), r.state)
	return nil
}

// cellsFor parses a journaled batch cell spec back into per-run cell
// sets aligned with the selection's canonical run names.
func cellsFor(runNames []string, spec string) ([][]int, error) {
	if spec == "" {
		return nil, nil
	}
	names, sets, err := shard.ParseCellSpec(spec)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(runNames))
	for i, n := range runNames {
		byName[n] = i
	}
	cells := make([][]int, len(runNames))
	for i, n := range names {
		ri, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("coord: cell spec names unknown run %q", n)
		}
		cells[ri] = sets[i]
	}
	return cells, nil
}

// ---- workers ----

// Register adds a worker and returns its identity plus heartbeat duty.
// Ids embed a per-process random nonce so an id issued before a
// coordinator restart can never alias one issued after it: a pre-restart
// worker's heartbeats get ErrUnknownWorker and it re-registers, instead
// of silently keeping a reused id alive.
func (c *Coordinator) Register(name string) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wseq++
	id := fmt.Sprintf("w-%s-%04d", c.boot, c.wseq)
	if name == "" {
		name = id
	}
	c.workers[id] = &workerState{id: id, name: name, lastBeat: time.Now()}
	c.opts.Logf("coord: worker %s (%q) registered", id, name)
	return RegisterResponse{
		Wire:            WireVersion,
		WorkerID:        id,
		HeartbeatMillis: c.opts.HeartbeatTimeout.Milliseconds() / 3,
	}
}

// ErrUnknownWorker reports a worker id the coordinator does not know —
// never registered, or dropped after missing heartbeats. The client's
// recovery is to register again.
var ErrUnknownWorker = fmt.Errorf("coord: unknown worker")

// ErrUnknownRun reports a run id the coordinator does not know.
var ErrUnknownRun = fmt.Errorf("coord: unknown run")

// Heartbeat refreshes a worker's liveness.
func (c *Coordinator) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return ErrUnknownWorker
	}
	w.lastBeat = time.Now()
	return nil
}

// Lease hands the worker one pending unit, long-polling up to wait for
// work to appear. A nil lease (and nil error) means the poll expired.
func (c *Coordinator) Lease(workerID string, wait time.Duration) (*Lease, error) {
	deadline := time.Now().Add(wait)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		w, ok := c.workers[workerID]
		if !ok {
			return nil, ErrUnknownWorker
		}
		if l := c.leaseLocked(w); l != nil {
			return l, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		wake := c.wake
		c.mu.Unlock()
		t := time.NewTimer(remaining)
		select {
		case <-wake:
		case <-t.C:
		case <-c.closed:
		}
		t.Stop()
		c.mu.Lock()
		select {
		case <-c.closed:
			return nil, fmt.Errorf("coord: coordinator is shut down")
		default:
		}
	}
}

// leaseLocked pops the first pending unit across runs in submission
// order. Caller holds c.mu.
func (c *Coordinator) leaseLocked(w *workerState) *Lease {
	for _, id := range c.order {
		r := c.runs[id]
		if r.state != runRunning || len(r.pending) == 0 {
			continue
		}
		u := r.pending[0]
		r.pending = r.pending[1:]
		u.state = dispatch.ShardRunning
		u.attempts++
		u.worker, u.workerName, u.leasedAt = w.id, w.name, time.Now()
		r.jr.Attempt(u.id, u.attempts, w.name)
		c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressAttempt, Shard: u.id, Attempt: u.attempts, Worker: w.name})
		return &Lease{
			RunID: r.id, Unit: u.id, Attempt: u.attempts,
			Selection: r.spec.Selection, Params: r.spec.Params,
			Shards: r.spec.Shards, Index: u.index, Cells: u.spec,
		}
	}
	return nil
}

// ---- results ----

// Push delivers one computed result file (raw shard-file bytes) for a
// leased unit. First completion wins: a push for an already-done unit is
// discarded as a duplicate, whoever sent it; a push that fails
// validation is journaled as a failed attempt if it belongs to the
// current lease.
func (c *Coordinator) Push(runID string, unitID int, workerID string, attempt int, data []byte) (PushResponse, error) {
	c.mu.Lock()
	r, ok := c.runs[runID]
	if !ok {
		c.mu.Unlock()
		return PushResponse{}, ErrUnknownRun
	}
	u := r.unitByID(unitID)
	if u == nil {
		c.mu.Unlock()
		return PushResponse{}, fmt.Errorf("coord: run %s has no unit %d", runID, unitID)
	}
	if resp, settled := c.settledPushLocked(r, u, workerID); settled {
		c.mu.Unlock()
		return resp, nil
	}
	c.pseq++
	tmp := fmt.Sprintf("%s.push%d.tmp", u.path, c.pseq)
	c.mu.Unlock()

	// The body may be tens of MiB: write it without holding c.mu so a slow
	// disk cannot stall heartbeats, leases, the sweeper and SSE fan-out
	// (or induce the very heartbeat timeouts it would then have to sweep).
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return PushResponse{}, fmt.Errorf("coord: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		os.Remove(tmp)
		return PushResponse{}, fmt.Errorf("coord: coordinator is shut down")
	default:
	}
	// Re-check: a rival completion, a sweep, or a merge may have settled
	// the unit or the run while the file was being written.
	if resp, settled := c.settledPushLocked(r, u, workerID); settled {
		os.Remove(tmp)
		return resp, nil
	}
	f, verr := c.validateUnitFile(r, u, tmp)
	if verr != nil {
		os.Remove(tmp)
		current := u.state == dispatch.ShardRunning && u.worker == workerID && u.attempt() == attempt
		if current {
			c.failUnitLocked(r, u, attempt, workerName(c, workerID, u), verr)
		}
		return PushResponse{Wire: WireVersion, Accepted: false, Reason: verr.Error()}, nil
	}
	if err := os.Rename(tmp, u.path); err != nil {
		os.Remove(tmp)
		return PushResponse{}, fmt.Errorf("coord: %w", err)
	}
	u.state = dispatch.ShardDone
	u.cellCount = f.CellCount()
	name := workerName(c, workerID, u)
	r.jr.Done(u.id, attempt, name, u.path, u.cellCount)
	c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressDone, Shard: u.id, Attempt: attempt, Worker: name, File: u.path, Cells: u.cellCount})
	// The unit may still sit in the pending queue (reassigned, then the
	// original worker finished first); drop it so nobody re-leases it.
	for i, p := range r.pending {
		if p == u {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			break
		}
	}
	u.worker, u.workerName = "", ""
	if r.doneCount() == r.total() {
		if err := c.mergeLocked(r); err != nil {
			return PushResponse{}, err
		}
	}
	return PushResponse{Wire: WireVersion, Accepted: true}, nil
}

// settledPushLocked reports whether a push for the unit is already moot
// — a duplicate of a completed unit, or a run no longer running — and
// the response to acknowledge it with. Caller holds c.mu.
func (c *Coordinator) settledPushLocked(r *run, u *unit, workerID string) (PushResponse, bool) {
	if u.state == dispatch.ShardDone || r.state == runMerged {
		r.duplicates++
		c.opts.Logf("coord: run %s: unit %d: duplicate result from %s discarded", r.id, u.id, workerID)
		return PushResponse{Wire: WireVersion, Accepted: false, Duplicate: true}, true
	}
	if r.state != runRunning {
		return PushResponse{Wire: WireVersion, Accepted: false, Reason: "run " + r.state}, true
	}
	return PushResponse{}, false
}

// attempt returns the unit's current attempt number.
func (u *unit) attempt() int { return u.attempts }

// workerName resolves a display name for a worker id: the registered
// name while the worker is alive, the lease's recorded name after it
// was dropped, the raw id as a last resort.
func workerName(c *Coordinator, workerID string, u *unit) string {
	if w, ok := c.workers[workerID]; ok {
		return w.name
	}
	if u.worker == workerID && u.workerName != "" {
		return u.workerName
	}
	return workerID
}

// validateUnitFile applies the dispatcher's validation gates to a
// candidate result file for the unit.
func (c *Coordinator) validateUnitFile(r *run, u *unit, path string) (*shard.File, error) {
	if u.kind == "shard" {
		return dispatch.ValidateShardFile(path, r.spec, u.index, r.params, r.runNames)
	}
	return dispatch.ValidateBatchFile(path, r.spec, u.cells, r.params, r.runNames)
}

// ReportFail records a worker's failed attempt at its leased unit. A
// stale report — the unit was reassigned or already completed — is
// acknowledged and ignored.
func (c *Coordinator) ReportFail(runID string, unitID int, req FailRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[runID]
	if !ok {
		return ErrUnknownRun
	}
	u := r.unitByID(unitID)
	if u == nil {
		return fmt.Errorf("coord: run %s has no unit %d", runID, unitID)
	}
	if r.state != runRunning || u.state != dispatch.ShardRunning ||
		u.worker != req.WorkerID || u.attempts != req.Attempt {
		return nil // stale: the sweeper or a rival already settled this attempt
	}
	c.failUnitLocked(r, u, req.Attempt, workerName(c, req.WorkerID, u), fmt.Errorf("%s", req.Error))
	return nil
}

// failUnitLocked journals a failed attempt and requeues the unit, or
// fails the run when the attempt budget is exhausted. Caller holds c.mu.
func (c *Coordinator) failUnitLocked(r *run, u *unit, attempt int, worker string, ferr error) {
	r.jr.Fail(u.id, attempt, worker, ferr)
	c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressFailed, Shard: u.id, Attempt: attempt, Worker: worker, Err: ferr.Error()})
	u.worker, u.workerName = "", ""
	if u.attempts >= c.opts.MaxAttempts {
		c.opts.Logf("coord: run %s: unit %d failed %d times; failing run: %v", r.id, u.id, u.attempts, ferr)
		c.terminalLocked(r, runFailed, fmt.Sprintf("unit %d: %d attempts exhausted: %v", u.id, u.attempts, ferr))
		return
	}
	u.state = dispatch.ShardPending
	r.pending = append(r.pending, u)
	c.wakeLocked()
}

func (r *run) unitByID(id int) *unit {
	for _, u := range r.units {
		if u.id == id {
			return u
		}
	}
	return nil
}

// mergeLocked merges a complete cover and journals the result. Caller
// holds c.mu.
func (c *Coordinator) mergeLocked(r *run) error {
	var (
		merged *shard.File
		err    error
	)
	files := make([]*shard.File, 0, len(r.units))
	for _, u := range r.units {
		f, rerr := shard.ReadFile(u.path)
		if rerr != nil {
			err = rerr
			break
		}
		files = append(files, f)
	}
	if err == nil {
		if r.balance == dispatch.BalanceRoundRobin {
			merged, err = shard.Merge(files)
		} else {
			var dups int
			merged, dups, err = shard.MergeBatches(files)
			r.duplicates += dups
		}
	}
	if err != nil {
		c.terminalLocked(r, runFailed, fmt.Sprintf("merge: %v", err))
		return fmt.Errorf("coord: run %s: merge: %w", r.id, err)
	}
	if err := merged.WriteFileAs(filepath.Join(r.dir, "merged.json"), c.opts.Codec); err != nil {
		c.terminalLocked(r, runFailed, fmt.Sprintf("merge: %v", err))
		return fmt.Errorf("coord: run %s: %w", r.id, err)
	}
	r.mergedAt, r.mergedCell = true, merged.CellCount()
	r.jr.Merged(r.total(), r.mergedCell)
	c.emit(r, dispatch.ProgressEvent{Kind: dispatch.ProgressMerged, Shards: r.total(), Shard: -1, Cells: r.mergedCell})
	c.opts.Logf("coord: run %s: merged %d units (%d cells)", r.id, r.total(), r.mergedCell)
	c.terminalLocked(r, runMerged, "")
	return nil
}

// Result returns the merged shard file's bytes for a merged run.
func (c *Coordinator) Result(runID string) ([]byte, error) {
	c.mu.Lock()
	r, ok := c.runs[runID]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknownRun
	}
	if r.state != runMerged {
		c.mu.Unlock()
		return nil, fmt.Errorf("coord: run %s is %s, not merged", runID, r.state)
	}
	path := filepath.Join(r.dir, "merged.json")
	c.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	return data, nil
}

// ---- liveness ----

func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep drops workers whose heartbeats expired (reassigning their
// leases) and, with LeaseTimeout set, expires overlong leases.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lost := map[string]string{} // id -> name
	for id, w := range c.workers {
		if now.Sub(w.lastBeat) > c.opts.HeartbeatTimeout {
			lost[id] = w.name
			delete(c.workers, id)
			c.opts.Logf("coord: worker %s (%q) lost: heartbeat timeout", id, w.name)
		}
	}
	for _, rid := range c.order {
		r := c.runs[rid]
		for _, u := range r.units {
			if r.state != runRunning {
				// failUnitLocked may exhaust a unit's attempt budget and
				// fail the whole run mid-loop, closing its journal; the
				// run's remaining expired leases are moot then — touching
				// them would fail against a nil journal.
				break
			}
			if u.state != dispatch.ShardRunning {
				continue
			}
			if name, isLost := lost[u.worker]; isLost {
				c.failUnitLocked(r, u, u.attempts, name,
					fmt.Errorf("worker %q lost: heartbeat timeout", name))
				continue
			}
			if c.opts.LeaseTimeout > 0 && now.Sub(u.leasedAt) > c.opts.LeaseTimeout {
				c.failUnitLocked(r, u, u.attempts, u.workerName,
					fmt.Errorf("lease expired after %s", c.opts.LeaseTimeout))
			}
		}
	}
}

// ---- observation ----

// Subscribe returns a copy of the run's event history and, for a live
// run, a channel of subsequent events (closed at the terminal event).
// cancel must be called when done with the channel.
func (c *Coordinator) Subscribe(runID string) (history []dispatch.ProgressEvent, ch <-chan dispatch.ProgressEvent, cancel func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[runID]
	if !ok {
		return nil, nil, nil, ErrUnknownRun
	}
	history = append([]dispatch.ProgressEvent(nil), r.history...)
	if r.state != runRunning {
		return history, nil, func() {}, nil
	}
	sub := make(chan dispatch.ProgressEvent, 1024)
	r.subs[sub] = struct{}{}
	cancel = func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, live := r.subs[sub]; live {
			delete(r.subs, sub)
			close(sub)
		}
	}
	return history, sub, cancel, nil
}

// RunStatuses lists every run, submission order.
func (c *Coordinator) RunStatuses() []RunStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RunStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.runs[id]))
	}
	return out
}

// Status returns one run's summary.
func (c *Coordinator) Status(runID string) (RunStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.runs[runID]
	if !ok {
		return RunStatus{}, ErrUnknownRun
	}
	return c.statusLocked(r), nil
}

func (c *Coordinator) statusLocked(r *run) RunStatus {
	return RunStatus{
		RunID: r.id, Selection: r.spec.Selection, Shards: r.spec.Shards,
		Balance: r.balance, State: r.state,
		Done: r.doneCount(), Total: r.total(),
		Resumed: r.resumed, Duplicates: r.duplicates,
		MergedCells: r.mergedCell, Failure: r.failure,
	}
}

// WorkerCount returns the number of live registered workers.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// StatusText renders a deterministic status summary: the coordinator
// counterpart of `ioschedbench status`, golden-tested. It carries no
// wall-clock so that identical state renders identical bytes.
func (c *Coordinator) StatusText() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "coordinator: %d run(s), %d worker(s) connected\n", len(c.order), len(c.workers))
	if len(c.order) == 0 {
		return b.String()
	}
	b.WriteString("\n")
	rows := make([][]string, 0, len(c.order))
	for _, id := range c.order {
		r := c.runs[id]
		st := c.statusLocked(r)
		note := ""
		switch {
		case st.State == runFailed:
			note = st.Failure
		case st.State == runMerged && st.Duplicates > 0:
			note = fmt.Sprintf("%d duplicate(s) discarded", st.Duplicates)
		case st.State == runRunning:
			running := 0
			for _, u := range r.units {
				if u.state == dispatch.ShardRunning {
					running++
				}
			}
			if running > 0 {
				note = fmt.Sprintf("%d in flight", running)
			}
		}
		rows = append(rows, []string{
			st.RunID, st.Selection, fmt.Sprintf("%d", st.Shards), r.balance, st.State,
			fmt.Sprintf("%d/%d", st.Done, st.Total), note,
		})
	}
	b.WriteString(textplot.Table(
		[]string{"run", "selection", "shards", "balance", "state", "done", "note"}, rows))
	return b.String()
}
