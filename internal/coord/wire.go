package coord

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/shard"
)

// WireVersion identifies the coordinator's HTTP message schema. Adding
// fields or endpoints is backwards-compatible (readers are tolerant);
// the version is bumped only when a field changes meaning. The normative
// spec is docs/COORDINATOR.md.
const WireVersion = 1

// Wire-message size and field limits. Decoders reject anything beyond
// them, so a single malformed client cannot balloon coordinator memory.
const (
	// MaxJSONBody bounds every JSON request body.
	MaxJSONBody = 1 << 20
	// maxNameLen bounds worker names and experiment selections.
	maxNameLen = 128
	// maxIDLen bounds worker and run identifiers.
	maxIDLen = 64
	// maxErrLen bounds reported failure messages (longer ones are
	// rejected, not truncated — the client truncates).
	maxErrLen = 16 << 10
	// maxCellSpecLen bounds a lease's cell spec.
	maxCellSpecLen = 1 << 20
	// maxWaitMillis bounds a lease long-poll.
	maxWaitMillis = 60_000
	// maxShards bounds a submitted decomposition.
	maxShards = 1_000_000
	// maxAttempt bounds attempt numbers in client reports.
	maxAttempt = 1_000_000
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's human-readable label, journaled on every
	// attempt it makes. Optional; the assigned worker id is used if "".
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and heartbeat duty.
type RegisterResponse struct {
	Wire     int    `json:"wire"`
	WorkerID string `json:"worker_id"`
	// HeartbeatMillis is how often the worker must heartbeat. It is a
	// fraction of the coordinator's timeout, so a worker that follows it
	// survives a missed beat or two.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest keeps a worker's registration alive.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// SubmitRequest submits one sweep: the dispatch spec plus the balance
// mode, exactly the knobs `ioschedbench dispatch` exposes locally.
type SubmitRequest struct {
	Selection string                 `json:"selection,omitempty"`
	Params    experiment.ShardParams `json:"params"`
	Shards    int                    `json:"shards"`
	// Balance picks the decomposition: "" or "roundrobin" for classic
	// index shards, "cost" for cost-packed cell batches.
	Balance string `json:"balance,omitempty"`
}

// SubmitResponse returns the created run's identity.
type SubmitResponse struct {
	Wire  int    `json:"wire"`
	RunID string `json:"run_id"`
}

// LeaseRequest asks for one unit of work, long-polling up to WaitMillis
// if none is pending.
type LeaseRequest struct {
	WorkerID   string `json:"worker_id"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
}

// Lease is one leased unit of work: everything a worker needs to build
// the equivalent dispatch.Task locally. Cells is empty for a classic
// round-robin shard (compute shard Index of Shards) and carries the
// cell spec for a cost-balanced batch (Index is then the batch id).
type Lease struct {
	RunID     string                 `json:"run_id"`
	Unit      int                    `json:"unit"`
	Attempt   int                    `json:"attempt"`
	Selection string                 `json:"selection"`
	Params    experiment.ShardParams `json:"params"`
	Shards    int                    `json:"shards"`
	Index     int                    `json:"index"`
	Cells     string                 `json:"cells,omitempty"`
}

// LeaseResponse carries the granted lease, or null when the long-poll
// expired with no work (the worker just asks again).
type LeaseResponse struct {
	Wire  int    `json:"wire"`
	Lease *Lease `json:"lease"`
}

// FailRequest reports a failed attempt at a leased unit.
type FailRequest struct {
	WorkerID string `json:"worker_id"`
	Attempt  int    `json:"attempt"`
	Error    string `json:"error"`
}

// PushResponse acknowledges a pushed result.
type PushResponse struct {
	Wire int `json:"wire"`
	// Accepted reports whether the pushed file became the unit's result.
	Accepted bool `json:"accepted"`
	// Duplicate reports a push for a unit that already completed — the
	// first completion won and this copy was discarded. Not an error:
	// reassignment and work stealing legitimately race.
	Duplicate bool `json:"duplicate,omitempty"`
	// Reason explains a rejection that is not a duplicate (validation
	// failure); the attempt is journaled failed.
	Reason string `json:"reason,omitempty"`
}

// RunStatus is one run's summary as reported by GET /api/v1/runs.
type RunStatus struct {
	RunID     string `json:"run_id"`
	Selection string `json:"selection"`
	Shards    int    `json:"shards"`
	Balance   string `json:"balance,omitempty"`
	// State is "running", "merged" or "failed".
	State string `json:"state"`
	// Done and Total count work units (shards or batches).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Resumed counts units restored from the journal at coordinator
	// start; Duplicates counts discarded duplicate completions.
	Resumed    int `json:"resumed,omitempty"`
	Duplicates int `json:"duplicates,omitempty"`
	// MergedCells is the merged cover's cell count once State is
	// "merged".
	MergedCells int `json:"merged_cells,omitempty"`
	// Failure is the terminal error once State is "failed".
	Failure string `json:"failure,omitempty"`
}

// RunsResponse lists every run the coordinator knows, submission order.
type RunsResponse struct {
	Wire int         `json:"wire"`
	Runs []RunStatus `json:"runs"`
}

// okName reports whether s is a printable identifier-ish string within
// limit runes (no control characters, no newlines).
func okName(s string, limit int) bool {
	if s == "" || len(s) > limit {
		return false
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// okID reports whether s is a well-formed worker/run identifier.
func okID(s string) bool {
	if s == "" || len(s) > maxIDLen {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.' || r == ':':
		default:
			return false
		}
	}
	return true
}

func decodeJSON(data []byte, v any) error {
	if len(data) > MaxJSONBody {
		return fmt.Errorf("coord: message exceeds %d bytes", MaxJSONBody)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("coord: decode: %w", err)
	}
	return nil
}

// DecodeRegister decodes and validates a RegisterRequest.
func DecodeRegister(data []byte) (*RegisterRequest, error) {
	var m RegisterRequest
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if m.Name != "" && !okName(m.Name, maxNameLen) {
		return nil, fmt.Errorf("coord: register: bad worker name")
	}
	return &m, nil
}

// DecodeHeartbeat decodes and validates a HeartbeatRequest.
func DecodeHeartbeat(data []byte) (*HeartbeatRequest, error) {
	var m HeartbeatRequest
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if !okID(m.WorkerID) {
		return nil, fmt.Errorf("coord: heartbeat: bad worker id")
	}
	return &m, nil
}

// DecodeSubmit decodes and validates a SubmitRequest. The selection's
// existence and the params' coherence are checked by the coordinator
// against the experiment registry, not here.
func DecodeSubmit(data []byte) (*SubmitRequest, error) {
	var m SubmitRequest
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if m.Selection != "" && !okName(m.Selection, maxNameLen) {
		return nil, fmt.Errorf("coord: submit: bad selection")
	}
	if m.Shards < 1 || m.Shards > maxShards {
		return nil, fmt.Errorf("coord: submit: shards must be in [1,%d]", maxShards)
	}
	switch m.Balance {
	case "", "roundrobin", "cost":
	default:
		return nil, fmt.Errorf("coord: submit: unknown balance %q", m.Balance)
	}
	return &m, nil
}

// DecodeLeaseRequest decodes and validates a LeaseRequest.
func DecodeLeaseRequest(data []byte) (*LeaseRequest, error) {
	var m LeaseRequest
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if !okID(m.WorkerID) {
		return nil, fmt.Errorf("coord: lease: bad worker id")
	}
	if m.WaitMillis < 0 || m.WaitMillis > maxWaitMillis {
		return nil, fmt.Errorf("coord: lease: wait_ms must be in [0,%d]", maxWaitMillis)
	}
	return &m, nil
}

// DecodeLease decodes and validates a Lease (the client side of a
// LeaseResponse's payload).
func DecodeLease(data []byte) (*Lease, error) {
	var m Lease
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks a lease's internal coherence.
func (l *Lease) Validate() error {
	if !okID(l.RunID) {
		return fmt.Errorf("coord: lease: bad run id")
	}
	if l.Unit < 0 || l.Attempt < 1 || l.Attempt > maxAttempt {
		return fmt.Errorf("coord: lease: bad unit/attempt")
	}
	if !okName(l.Selection, maxNameLen) {
		return fmt.Errorf("coord: lease: bad selection")
	}
	if l.Shards < 1 || l.Shards > maxShards || l.Index < 0 {
		return fmt.Errorf("coord: lease: bad shards/index")
	}
	if l.Cells == "" {
		if l.Index >= l.Shards {
			return fmt.Errorf("coord: lease: shard index %d out of range of %d", l.Index, l.Shards)
		}
		return nil
	}
	if len(l.Cells) > maxCellSpecLen {
		return fmt.Errorf("coord: lease: cell spec exceeds %d bytes", maxCellSpecLen)
	}
	if _, _, err := shard.ParseCellSpec(l.Cells); err != nil {
		return fmt.Errorf("coord: lease: %w", err)
	}
	return nil
}

// DecodeFail decodes and validates a FailRequest.
func DecodeFail(data []byte) (*FailRequest, error) {
	var m FailRequest
	if err := decodeJSON(data, &m); err != nil {
		return nil, err
	}
	if !okID(m.WorkerID) {
		return nil, fmt.Errorf("coord: fail: bad worker id")
	}
	if m.Attempt < 1 || m.Attempt > maxAttempt {
		return nil, fmt.Errorf("coord: fail: bad attempt")
	}
	if len(m.Error) > maxErrLen || strings.ContainsAny(m.Error, "\x00") {
		return nil, fmt.Errorf("coord: fail: bad error message")
	}
	return &m, nil
}

// truncateErr clamps a failure message to the wire limit, marking the
// cut. Clients apply it before reporting; the server rejects oversize.
func truncateErr(s string) string {
	const keep = maxErrLen - 20
	if len(s) <= maxErrLen {
		return s
	}
	return s[:keep] + "...[truncated]"
}
