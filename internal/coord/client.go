package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
)

// Client speaks the coordinator's HTTP protocol: the submit/observe side
// for sweep clients, the register/lease/push side for workers.
type Client struct {
	// BaseURL is the coordinator's root URL, e.g. "http://host:8337".
	BaseURL string
	// HTTPClient defaults to a client without a global timeout (lease
	// long-polls and SSE streams are deliberately long requests).
	HTTPClient *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return &http.Client{}
}

func (cl *Client) url(path string) string {
	return strings.TrimRight(cl.BaseURL, "/") + path
}

// do performs one request and returns the response body; non-2xx maps
// to an error carrying the server's message (404 to the sentinel the
// path implies, so callers can react to a dropped registration).
func (cl *Client) do(ctx context.Context, method, path string, body []byte, contentType string, notFound error) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.url(path), rd)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("coord: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxResultBody+1))
	if err != nil {
		return nil, fmt.Errorf("coord: %s %s: %w", method, path, err)
	}
	if resp.StatusCode == http.StatusNotFound && notFound != nil {
		return nil, fmt.Errorf("%w: %s", notFound, strings.TrimSpace(string(data)))
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("coord: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

func (cl *Client) postJSON(ctx context.Context, path string, req, resp any, notFound error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	data, err := cl.do(ctx, http.MethodPost, path, body, "application/json", notFound)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("coord: decode response: %w", err)
	}
	return nil
}

// Register announces a worker and returns its assigned identity.
func (cl *Client) Register(ctx context.Context, name string) (*RegisterResponse, error) {
	var resp RegisterResponse
	if err := cl.postJSON(ctx, "/api/v1/workers", RegisterRequest{Name: name}, &resp, nil); err != nil {
		return nil, err
	}
	if resp.WorkerID == "" {
		return nil, fmt.Errorf("coord: register: empty worker id")
	}
	return &resp, nil
}

// Heartbeat refreshes a registration; ErrUnknownWorker means the
// coordinator dropped it (or restarted) and the worker must re-register.
func (cl *Client) Heartbeat(ctx context.Context, workerID string) error {
	return cl.postJSON(ctx, "/api/v1/workers/"+workerID+"/heartbeat", HeartbeatRequest{WorkerID: workerID}, nil, ErrUnknownWorker)
}

// Lease asks for one unit of work, long-polling up to wait. A nil lease
// with nil error means no work was available.
func (cl *Client) Lease(ctx context.Context, workerID string, wait time.Duration) (*Lease, error) {
	var resp LeaseResponse
	err := cl.postJSON(ctx, "/api/v1/lease",
		LeaseRequest{WorkerID: workerID, WaitMillis: wait.Milliseconds()}, &resp, ErrUnknownWorker)
	if err != nil {
		return nil, err
	}
	if resp.Lease != nil {
		if err := resp.Lease.Validate(); err != nil {
			return nil, err
		}
	}
	return resp.Lease, nil
}

// Submit submits a sweep and returns its run id.
func (cl *Client) Submit(ctx context.Context, req SubmitRequest) (string, error) {
	var resp SubmitResponse
	if err := cl.postJSON(ctx, "/api/v1/runs", req, &resp, nil); err != nil {
		return "", err
	}
	if resp.RunID == "" {
		return "", fmt.Errorf("coord: submit: empty run id")
	}
	return resp.RunID, nil
}

// Push delivers a computed result file for a leased unit.
func (cl *Client) Push(ctx context.Context, l *Lease, workerID string, data []byte) (*PushResponse, error) {
	path := fmt.Sprintf("/api/v1/runs/%s/units/%d/result?worker=%s&attempt=%d", l.RunID, l.Unit, workerID, l.Attempt)
	body, err := cl.do(ctx, http.MethodPost, path, data, "application/json", ErrUnknownRun)
	if err != nil {
		return nil, err
	}
	var resp PushResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("coord: decode response: %w", err)
	}
	return &resp, nil
}

// ReportFail reports a failed attempt at a leased unit.
func (cl *Client) ReportFail(ctx context.Context, l *Lease, workerID, msg string) error {
	path := fmt.Sprintf("/api/v1/runs/%s/units/%d/fail", l.RunID, l.Unit)
	return cl.postJSON(ctx, path,
		FailRequest{WorkerID: workerID, Attempt: l.Attempt, Error: truncateErr(msg)}, nil, ErrUnknownRun)
}

// Runs lists the coordinator's runs.
func (cl *Client) Runs(ctx context.Context) ([]RunStatus, error) {
	data, err := cl.do(ctx, http.MethodGet, "/api/v1/runs", nil, "", nil)
	if err != nil {
		return nil, err
	}
	var resp RunsResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("coord: decode response: %w", err)
	}
	return resp.Runs, nil
}

// Run fetches one run's status.
func (cl *Client) Run(ctx context.Context, runID string) (*RunStatus, error) {
	data, err := cl.do(ctx, http.MethodGet, "/api/v1/runs/"+runID, nil, "", ErrUnknownRun)
	if err != nil {
		return nil, err
	}
	var st RunStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("coord: decode response: %w", err)
	}
	return &st, nil
}

// Result fetches a merged run's shard-file bytes.
func (cl *Client) Result(ctx context.Context, runID string) ([]byte, error) {
	return cl.do(ctx, http.MethodGet, "/api/v1/runs/"+runID+"/result", nil, "", ErrUnknownRun)
}

// Events streams a run's progress events (history, then live) to fn
// until the run reaches its terminal state, the stream drops, or ctx is
// done. It returns nil when the server ended the stream.
func (cl *Client) Events(ctx context.Context, runID string, fn func(dispatch.ProgressEvent)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.url("/api/v1/runs/"+runID+"/events"), nil)
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return fmt.Errorf("coord: events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, MaxJSONBody))
		if resp.StatusCode == http.StatusNotFound {
			return fmt.Errorf("%w: %s", ErrUnknownRun, strings.TrimSpace(string(body)))
		}
		return fmt.Errorf("coord: events: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), MaxJSONBody)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e dispatch.ProgressEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return fmt.Errorf("coord: events: %w", err)
		}
		fn(e)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("coord: events: %w", err)
	}
	return nil
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// ScratchDir holds the worker's local result files before they are
	// pushed (default: a fresh temp directory, removed on return).
	ScratchDir string
	// HeartbeatEvery overrides the server-suggested heartbeat interval.
	// Production workers leave it 0; coordtest uses it to inject
	// clock-skewed heartbeats.
	HeartbeatEvery time.Duration
	// LeaseWait is the lease long-poll duration (default 2s).
	LeaseWait time.Duration
	// Logf receives the worker's log lines (default: discard).
	Logf func(format string, args ...any)
	// Push, when non-nil, intercepts result delivery: it receives the
	// lease and a function that performs one push, and decides how many
	// times (if at all) to call it. The fault-injection seam coordtest
	// uses for dropped and duplicated pushes; nil pushes exactly once.
	Push func(l *Lease, push func() (*PushResponse, error)) error
}

// session tracks the worker's current registration; heartbeats and the
// lease loop share it and either may re-register after the coordinator
// drops (or forgets, across a restart) the previous identity.
type session struct {
	cl   *Client
	name string
	mu   sync.Mutex
	id   string
	hb   time.Duration
}

// current returns the registration, creating one if needed.
func (s *session) current(ctx context.Context) (string, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.id != "" {
		return s.id, s.hb, nil
	}
	resp, err := s.cl.Register(ctx, s.name)
	if err != nil {
		return "", 0, err
	}
	s.id = resp.WorkerID
	s.hb = time.Duration(resp.HeartbeatMillis) * time.Millisecond
	if s.hb <= 0 {
		s.hb = time.Second
	}
	return s.id, s.hb, nil
}

// drop forgets a registration the coordinator no longer honours.
func (s *session) drop(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.id == id {
		s.id = ""
	}
}

// RunWorker runs a worker loop against a coordinator: register,
// heartbeat, lease units, compute them through w — any dispatch.Worker,
// so the subprocess workers of `ioschedbench dispatch` serve a
// coordinator unchanged — and push the result files back. It returns
// when ctx is cancelled. Compute failures are reported to the
// coordinator and the loop continues; a cancelled ctx mid-compute
// abandons the unit silently (exactly what a crashed worker would do —
// the coordinator's heartbeat timeout reassigns it).
func RunWorker(ctx context.Context, cl *Client, name string, w dispatch.Worker, opts WorkerOptions) error {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.LeaseWait <= 0 {
		opts.LeaseWait = 2 * time.Second
	}
	scratch := opts.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "coordworker-*")
		if err != nil {
			return fmt.Errorf("coord: %w", err)
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}
	s := &session{cl: cl, name: name}
	id, hb, err := s.current(ctx)
	if err != nil {
		return err
	}
	logf("worker %s: registered as %s", name, id)

	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		heartbeatLoop(hctx, s, opts.HeartbeatEvery, hb, logf)
	}()
	defer wg.Wait()

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		id, _, err := s.current(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logf("worker %s: register: %v", name, err)
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		}
		l, err := cl.Lease(ctx, id, opts.LeaseWait)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrUnknownWorker) {
				s.drop(id)
				continue
			}
			logf("worker %s: lease: %v", name, err)
			if !sleepCtx(ctx, time.Second) {
				return ctx.Err()
			}
			continue
		}
		if l == nil {
			continue
		}
		runLease(ctx, cl, s, w, l, id, scratch, opts, logf)
	}
}

// runLease computes one leased unit and delivers the result.
func runLease(ctx context.Context, cl *Client, s *session, w dispatch.Worker, l *Lease, workerID, scratch string, opts WorkerOptions, logf func(string, ...any)) {
	out := filepath.Join(scratch, fmt.Sprintf("%s-u%d-a%d.json", l.RunID, l.Unit, l.Attempt))
	os.Remove(out)
	defer os.Remove(out)
	task := dispatch.Task{
		Spec:  dispatch.Spec{Selection: l.Selection, Params: l.Params, Shards: l.Shards},
		Index: l.Index, Cells: l.Cells, Out: out,
	}
	logf("worker %s: unit %d of %s (attempt %d)", w.Name(), l.Unit, l.RunID, l.Attempt)
	if err := w.Run(ctx, task); err != nil {
		if ctx.Err() != nil {
			return // dying mid-unit: no report, like a real crash
		}
		logf("worker %s: unit %d of %s: %v", w.Name(), l.Unit, l.RunID, err)
		if rerr := cl.ReportFail(ctx, l, workerID, err.Error()); rerr != nil {
			logf("worker %s: report fail: %v", w.Name(), rerr)
		}
		return
	}
	data, err := os.ReadFile(out)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		if rerr := cl.ReportFail(ctx, l, workerID, fmt.Sprintf("worker produced no output: %v", err)); rerr != nil {
			logf("worker %s: report fail: %v", w.Name(), rerr)
		}
		return
	}
	push := func() (*PushResponse, error) { return cl.Push(ctx, l, workerID, data) }
	if opts.Push != nil {
		if err := opts.Push(l, push); err != nil && ctx.Err() == nil {
			logf("worker %s: push unit %d of %s: %v", w.Name(), l.Unit, l.RunID, err)
		}
		return
	}
	resp, err := push()
	switch {
	case err != nil:
		if ctx.Err() == nil {
			// The coordinator will reassign via heartbeat timeout if it
			// never saw this result; nothing more to do here.
			logf("worker %s: push unit %d of %s: %v", w.Name(), l.Unit, l.RunID, err)
		}
	case resp.Duplicate:
		logf("worker %s: unit %d of %s already completed elsewhere", w.Name(), l.Unit, l.RunID)
	case !resp.Accepted:
		logf("worker %s: unit %d of %s rejected: %s", w.Name(), l.Unit, l.RunID, resp.Reason)
	}
}

// heartbeatLoop beats the current registration, re-registering when the
// coordinator stops recognising it (dropped after a timeout, or
// restarted with a fresh worker table).
func heartbeatLoop(ctx context.Context, s *session, override, initial time.Duration, logf func(string, ...any)) {
	interval := initial
	if override > 0 {
		interval = override
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		id, hb, err := s.current(ctx)
		if err != nil {
			continue
		}
		if override <= 0 && hb != interval && hb > 0 {
			interval = hb
			t.Reset(interval)
		}
		if err := s.cl.Heartbeat(ctx, id); err != nil && ctx.Err() == nil {
			if errors.Is(err, ErrUnknownWorker) {
				logf("worker: registration %s dropped; re-registering", id)
				s.drop(id)
			}
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
