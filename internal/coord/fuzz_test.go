package coord

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeWire drives every wire-message decoder over the same input:
// none may panic, and any message a decoder accepts must survive an
// encode/decode round trip (the coordinator re-emits what it accepted).
func FuzzDecodeWire(f *testing.F) {
	f.Add([]byte(`{"name":"worker-1"}`))
	f.Add([]byte(`{"worker_id":"w-0001"}`))
	f.Add([]byte(`{"worker_id":"w-0001","wait_ms":1500}`))
	f.Add([]byte(`{"selection":"fig5","params":{"Systems":4,"Seed":1},"shards":3,"balance":"cost"}`))
	f.Add([]byte(`{"run_id":"run-0001","unit":2,"attempt":1,"selection":"all","shards":3,"index":2}`))
	f.Add([]byte(`{"run_id":"run-0002","unit":0,"attempt":2,"selection":"tailq","shards":2,"index":0,"cells":"tailq=0-4,9"}`))
	f.Add([]byte(`{"worker_id":"w-0002","attempt":3,"error":"compute exploded"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeRegister(data); err == nil {
			roundTrip(t, m, func(b []byte) error { _, err := DecodeRegister(b); return err })
		}
		if m, err := DecodeHeartbeat(data); err == nil {
			roundTrip(t, m, func(b []byte) error { _, err := DecodeHeartbeat(b); return err })
		}
		if m, err := DecodeLeaseRequest(data); err == nil {
			roundTrip(t, m, func(b []byte) error { _, err := DecodeLeaseRequest(b); return err })
		}
		if m, err := DecodeSubmit(data); err == nil {
			roundTrip(t, m, func(b []byte) error { _, err := DecodeSubmit(b); return err })
		}
		if m, err := DecodeLease(data); err == nil {
			if err := m.Validate(); err != nil {
				t.Fatalf("DecodeLease accepted an invalid lease: %v", err)
			}
			roundTrip(t, m, func(b []byte) error { _, err := DecodeLease(b); return err })
		}
		if m, err := DecodeFail(data); err == nil {
			roundTrip(t, m, func(b []byte) error { _, err := DecodeFail(b); return err })
		}
	})
}

func roundTrip(t *testing.T, m any, decode func([]byte) error) {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-encode accepted message: %v", err)
	}
	if err := decode(data); err != nil {
		t.Fatalf("decoder rejects its own accepted message %s: %v", data, err)
	}
}
