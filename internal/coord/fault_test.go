package coord_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/coordtest"
	"repro/internal/dispatch"
)

// The fault matrix: every recovery path the coordinator promises —
// crashed workers, hung workers, duplicated and delayed pushes, skewed
// heartbeats, coordinator restart — must end in a merged cover that is
// byte-identical to the unsharded run, with the failure journaled.

func faultOpts() coord.Options {
	return coord.Options{
		HeartbeatTimeout: 300 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
		MaxAttempts:      10,
	}
}

// rawJournal reads the run's journal file as text, for asserting that
// specific failure notes were recorded.
func rawJournal(t *testing.T, rig *coordtest.Rig, runID string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(rig.Coordinator().RunDir(runID), dispatch.JournalFileName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return string(data)
}

// waitJournal polls until the run's journal contains marker.
func waitJournal(t *testing.T, rig *coordtest.Rig, runID, marker string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if strings.Contains(rawJournal(t, rig, runID), marker) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never recorded %q; have:\n%s", marker, rawJournal(t, rig, runID))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func assertIdentical(t *testing.T, rig *coordtest.Rig, runID, selection string) {
	t.Helper()
	got := rig.Result(runID)
	want := coordtest.Reference(t, selection, testParams())
	if !bytes.Equal(got, want) {
		t.Fatalf("merged %s run differs from unsharded reference (%d vs %d bytes)", selection, len(got), len(want))
	}
}

// TestFaultHeartbeatTimeout kills a worker mid-unit (crash: compute,
// heartbeats, everything stops). The sweep must declare it lost,
// requeue its lease, and a second worker must finish the sweep with a
// byte-identical merge.
func TestFaultHeartbeatTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, faultOpts())
	doomed := rig.StartWorker("doomed", coordtest.Faults{
		Die: func(unit int) bool { return true },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	// The lone worker grabs a unit, dies mid-compute, and the sweeper
	// notices the silence.
	waitJournal(t, rig, id, "heartbeat timeout", 10*time.Second)
	<-doomed.Done()
	rig.StartWorker("steady", coordtest.Faults{})
	rig.WaitMerged(id, 60*time.Second)
	assertIdentical(t, rig, id, "fig5")
	jtext := rawJournal(t, rig, id)
	if !strings.Contains(jtext, `"event":"fail"`) || !strings.Contains(jtext, `"event":"merged"`) {
		t.Fatalf("journal missing fail/merged record:\n%s", jtext)
	}
}

// TestFaultDuplicatePush delivers every result twice. The second copy
// must be discarded, counted, and must not disturb the merge.
func TestFaultDuplicatePush(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, faultOpts())
	rig.StartWorker("echoey", coordtest.Faults{
		DoublePush: func(l *coord.Lease) bool { return true },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	st := rig.WaitMerged(id, 60*time.Second)
	if st.Duplicates < 1 {
		t.Fatalf("status %+v: double-pushed every unit but no duplicates counted", st)
	}
	if st.Done != 3 {
		t.Fatalf("status %+v: want 3 done", st)
	}
	assertIdentical(t, rig, id, "fig5")
}

// TestFaultStalePushAfterReassignment delays one unit's push past the
// lease timeout: the coordinator reassigns it, and whichever completion
// lands second must be discarded as a duplicate — first-completion-wins
// keeps the merge deterministic either way.
func TestFaultStalePushAfterReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := faultOpts()
	opts.LeaseTimeout = 300 * time.Millisecond
	rig := coordtest.New(t, opts)
	rig.StartWorker("slow", coordtest.Faults{
		PushDelay: func(l *coord.Lease) time.Duration {
			if l.Unit == 0 && l.Attempt == 1 {
				return 700 * time.Millisecond
			}
			return 0
		},
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	// The first lease on unit 0 outlives its lease: the coordinator
	// journals the expiry and requeues before the stale push lands.
	waitJournal(t, rig, id, "lease expired", 10*time.Second)
	rig.StartWorker("steady", coordtest.Faults{})
	rig.WaitMerged(id, 60*time.Second)
	// The stale push trails the merge by the rest of its delay; wait for
	// it to land and be counted as a discarded duplicate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := rig.Coordinator().Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.Duplicates >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status %+v: stale push never counted as a duplicate", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertIdentical(t, rig, id, "fig5")
}

// TestFaultHungWorker wedges a worker on unit 0 while its heartbeats
// keep flowing — only the lease timeout can recover the unit.
func TestFaultHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := faultOpts()
	opts.LeaseTimeout = 300 * time.Millisecond
	rig := coordtest.New(t, opts)
	rig.StartWorker("stuck", coordtest.Faults{
		Hang: func(unit int) bool { return unit == 0 },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	waitJournal(t, rig, id, "lease expired", 10*time.Second)
	rig.StartWorker("steady", coordtest.Faults{})
	rig.WaitMerged(id, 60*time.Second)
	assertIdentical(t, rig, id, "fig5")
	if !strings.Contains(rawJournal(t, rig, id), "lease expired") {
		t.Fatal("lease expiry not journaled")
	}
}

// TestFaultClockSkewedHeartbeat runs a worker whose heartbeat interval
// exceeds the coordinator's timeout: it looks dead while still
// computing. Its leases are reassigned, its stale pushes are either
// first (accepted) or duplicate (discarded), and it transparently
// re-registers — the merge must still be exact.
func TestFaultClockSkewedHeartbeat(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := faultOpts()
	opts.HeartbeatTimeout = 250 * time.Millisecond
	rig := coordtest.New(t, opts)
	rig.StartWorker("skewed", coordtest.Faults{
		HeartbeatEvery: 2 * time.Second,
		PushDelay:      func(l *coord.Lease) time.Duration { return 400 * time.Millisecond },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 2})
	waitJournal(t, rig, id, "heartbeat timeout", 10*time.Second)
	rig.StartWorker("steady", coordtest.Faults{})
	rig.WaitMerged(id, 60*time.Second)
	assertIdentical(t, rig, id, "fig5")
}

// TestFaultCoordinatorRestart interrupts a run (one unit done, worker
// then killed), restarts the coordinator over the same directory, and
// checks the journal alone carries the run: the done unit is resumed,
// the rest recomputed, and the merge is byte-identical.
func TestFaultCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, faultOpts())
	first := rig.StartWorker("first", coordtest.Faults{
		// Completes unit 0, wedges forever on whatever it leases next.
		Hang: func(unit int) bool { return unit != 0 },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "fig5", Params: testParams(), Shards: 3})
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := rig.Coordinator().Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.Done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unit 0 never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	first.Kill()
	<-first.Done()
	rig.Restart()
	st, err := rig.Coordinator().Status(id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.State != "running" || st.Done != 1 || st.Resumed != 1 {
		t.Fatalf("after restart: %+v, want running with 1 done, 1 resumed", st)
	}
	rig.StartWorker("second", coordtest.Faults{})
	fin := rig.WaitMerged(id, 60*time.Second)
	if fin.Resumed != 1 {
		t.Fatalf("final status %+v: resumed count lost", fin)
	}
	assertIdentical(t, rig, id, "fig5")
	// And the restarted journal still reads as one coherent dispatch run.
	jst, err := dispatch.ReadJournalDir(rig.Coordinator().RunDir(id))
	if err != nil {
		t.Fatalf("ReadJournalDir: %v", err)
	}
	if !jst.Merged || jst.DoneCount() != 3 {
		t.Fatalf("journal after restart+merge: merged=%v done=%d", jst.Merged, jst.DoneCount())
	}
}

// TestFaultDropPushExhaustsAttempts drops every push: no result ever
// arrives, leases expire MaxAttempts times, and the run must land in a
// clean terminal failure rather than hang.
func TestFaultDropPushExhaustsAttempts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := faultOpts()
	opts.LeaseTimeout = 200 * time.Millisecond
	opts.MaxAttempts = 2
	rig := coordtest.New(t, opts)
	rig.StartWorker("void", coordtest.Faults{
		DropPush: func(l *coord.Lease) bool { return true },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "tailq", Params: testParams(), Shards: 1})
	st := rig.WaitTerminal(id, 60*time.Second)
	if st.State != "failed" || st.Failure == "" {
		t.Fatalf("run ended %+v, want failed with a reason", st)
	}
	if !strings.Contains(rawJournal(t, rig, id), `"event":"fail"`) {
		t.Fatal("terminal failure not journaled")
	}
}
