// Package coord is the network-native coordinator service behind
// `ioschedbench serve`: the long-running, multi-client promotion of the
// one-shot in-process dispatcher (internal/dispatch).
//
// A Coordinator multiplexes concurrent sweeps. Clients submit a sweep
// (selection, params, shard count, balance mode) and get a run id;
// workers register, heartbeat, lease work units — round-robin shards or
// cost-packed cell batches, planned by the same code the dispatcher
// uses — and push the computed shard files back over HTTP, so workers
// and coordinator share no filesystem. Every run keeps a journal in the
// dispatch v1 schema (dispatch.Journal) under <dir>/runs/<run-id>/, so
// `ioschedbench status` reads a coordinator run directory unchanged and
// a restarted coordinator resumes every run from its journal. Progress
// is streamed per run over SSE in the dispatch progress-event schema.
//
// Failure semantics mirror the dispatcher's: pushed files pass the same
// validation gates; a worker that stops heartbeating (or, with
// Options.LeaseTimeout, sits on a lease too long) has its units failed,
// journaled and requeued; completions race first-completion-wins with
// duplicates discarded by unit, so the merged cover remains
// byte-identical to the unsharded run no matter how many workers died,
// hung or double-pushed along the way. The protocol is specified in
// docs/COORDINATOR.md; the fault-injection test rig lives in
// internal/coord/coordtest.
package coord
