package coord_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/coordtest"
	"repro/internal/dispatch"
)

// TestE2ETailqKillWorkerMidBatch is the acceptance scenario end to end:
// a coordinator with two wire-connected workers runs the tailq grid,
// one worker is killed mid-batch, the coordinator journals the loss and
// reassigns, and the merged file is byte-identical to the unsharded
// run. Afterwards the coordinator is restarted over the same directory
// and must serve the same merged bytes purely from its journal.
func TestE2ETailqKillWorkerMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rig := coordtest.New(t, coord.Options{
		HeartbeatTimeout: 300 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
		MaxAttempts:      5,
	})

	// The doomed worker dies mid-compute of its very first unit.
	doomed := rig.StartWorker("doomed", coordtest.Faults{
		Die: func(unit int) bool { return true },
	})
	id := rig.Submit(coord.SubmitRequest{Selection: "tailq", Params: testParams(), Shards: 3})

	// Watch the progress stream for the whole run.
	var (
		mu     sync.Mutex
		events []dispatch.ProgressEvent
	)
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- rig.Client.Events(context.Background(), id, func(e dispatch.ProgressEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		})
	}()

	// Let the doomed worker actually take a unit and die before any
	// rescuer appears: the journal records its attempt, then the sweep
	// declares it lost.
	waitJournal(t, rig, id, `"event":"attempt"`, 10*time.Second)
	<-doomed.Done()
	waitJournal(t, rig, id, "heartbeat timeout", 10*time.Second)

	rig.StartWorker("steady", coordtest.Faults{})
	st := rig.WaitMerged(id, 120*time.Second)
	if st.Done != 3 || st.Total != 3 {
		t.Fatalf("final status %+v, want 3/3", st)
	}

	// Byte-identity against the unsharded run: the invariant everything
	// else exists to protect.
	merged := rig.Result(id)
	want := coordtest.Reference(t, "tailq", testParams())
	if !bytes.Equal(merged, want) {
		t.Fatalf("merged output differs from unsharded run (%d vs %d bytes)", len(merged), len(want))
	}

	// The journal tells the story: the lost worker's attempt, the
	// heartbeat-timeout fail, the reassignment, the merge.
	jtext := rawJournal(t, rig, id)
	for _, marker := range []string{`"event":"plan"`, `"event":"attempt"`, `"event":"fail"`, "heartbeat timeout", `"event":"done"`, `"event":"merged"`} {
		if !strings.Contains(jtext, marker) {
			t.Errorf("journal missing %s:\n%s", marker, jtext)
		}
	}

	// The SSE stream saw the same run: plan first, a failure, the merge
	// last, and it terminated on its own.
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("event stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not close after merge")
	}
	mu.Lock()
	kinds := make([]dispatch.ProgressKind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	mu.Unlock()
	if len(kinds) == 0 || kinds[0] != dispatch.ProgressPlan || kinds[len(kinds)-1] != dispatch.ProgressMerged {
		t.Fatalf("stream kinds %v: want plan..merged", kinds)
	}
	sawFail := false
	for _, k := range kinds {
		if k == dispatch.ProgressFailed {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatalf("stream kinds %v: worker loss never streamed", kinds)
	}

	// Restart leg: a fresh coordinator over the same directory must
	// resume the run as merged and serve identical bytes.
	rig.Restart()
	st2, err := rig.Coordinator().Status(id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st2.State != "merged" || st2.MergedCells != st.MergedCells {
		t.Fatalf("after restart: %+v, want merged with %d cells", st2, st.MergedCells)
	}
	if again := rig.Result(id); !bytes.Equal(again, merged) {
		t.Fatal("restarted coordinator serves different merged bytes")
	}
}
