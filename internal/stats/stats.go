package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; the mean of no samples is 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); fewer
// than two samples yield 0.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the middle sample (average of the middle two for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Ratio is a success count over a trial count with a Wilson confidence
// interval, used for schedulable-fraction curves.
type Ratio struct {
	Successes, Trials int
}

// Value returns the point estimate; zero trials yield 0.
func (r Ratio) Value() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Trials)
}

// Wilson95 returns the 95% Wilson score interval for the ratio.
func (r Ratio) Wilson95() (lo, hi float64) {
	if r.Trials == 0 {
		return 0, 0
	}
	const z = 1.959963984540054
	n := float64(r.Trials)
	p := r.Value()
	denom := 1 + z*z/n
	centre := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders "successes/trials (value)".
func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.3f)", r.Successes, r.Trials, r.Value())
}
