// Package stats provides the small summary-statistics helpers the
// experiment runners use: means, standard deviations, and binomial
// confidence intervals for schedulability ratios.
package stats
