package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of nothing should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean broken")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample stddev should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("stddev = %g", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("median sorted caller slice")
	}
}

func TestRatio(t *testing.T) {
	r := Ratio{Successes: 90, Trials: 100}
	if r.Value() != 0.9 {
		t.Error("value broken")
	}
	lo, hi := r.Wilson95()
	if lo >= 0.9 || hi <= 0.9 {
		t.Errorf("interval [%g, %g] should bracket 0.9", lo, hi)
	}
	if lo < 0.80 || hi > 0.97 {
		t.Errorf("interval [%g, %g] implausibly wide", lo, hi)
	}
	if (Ratio{}).Value() != 0 {
		t.Error("empty ratio value")
	}
	lo, hi = Ratio{}.Wilson95()
	if lo != 0 || hi != 0 {
		t.Error("empty ratio interval")
	}
	if !strings.Contains(r.String(), "90/100") {
		t.Errorf("String = %q", r.String())
	}
}

// Property: the Wilson interval always contains the point estimate and
// stays within [0, 1].
func TestWilsonProperty(t *testing.T) {
	f := func(sRaw, tRaw uint8) bool {
		trials := int(tRaw)%200 + 1
		succ := int(sRaw) % (trials + 1)
		r := Ratio{Successes: succ, Trials: trials}
		lo, hi := r.Wilson95()
		p := r.Value()
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: stddev is translation invariant and non-negative.
func TestStdDevProperty(t *testing.T) {
	f := func(raw []int8, shiftRaw int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		shift := float64(shiftRaw)
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + shift
		}
		a, b := StdDev(xs), StdDev(ys)
		return a >= 0 && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
