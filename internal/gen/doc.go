// Package gen generates the synthetic I/O systems used by the paper's
// evaluation (Section V-A):
//
//   - task utilisations drawn with the UUniFast algorithm (Bini & Buttazzo),
//     with total utilisation U = 0.05 · |Γ|;
//   - periods drawn uniformly from the divisors of the 1440 ms hyper-period
//     (restricted to a configurable range so job counts stay finite);
//   - implicit deadlines (D = T) and DMPO priorities;
//   - timing margin θi = Ti/4 and ideal start δi uniform in [θi, Di − θi];
//   - the constraint θi ≥ Ci enforced by redrawing the task's period/WCET;
//   - Vmax = Pi + 1 and a global Vmin = 1.
//
// All randomness flows through an injected *rand.Rand so experiments are
// reproducible from a seed.
package gen
