package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestUUniFastSumsToU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		for _, u := range []float64{0.1, 0.5, 0.9} {
			utils := UUniFast(rng, n, u)
			if len(utils) != n {
				t.Fatalf("n=%d: got %d utils", n, len(utils))
			}
			var sum float64
			for _, x := range utils {
				if x < 0 {
					t.Errorf("n=%d u=%g: negative utilisation %g", n, u, x)
				}
				sum += x
			}
			if math.Abs(sum-u) > 1e-9 {
				t.Errorf("n=%d u=%g: sum = %g", n, u, sum)
			}
		}
	}
}

func TestUUniFastPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct {
		n int
		u float64
	}{{0, 0.5}, {-1, 0.5}, {3, 0}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UUniFast(%d, %g): expected panic", c.n, c.u)
				}
			}()
			UUniFast(rng, c.n, c.u)
		}()
	}
}

func TestPaperConfigCandidatePeriods(t *testing.T) {
	c := PaperConfig()
	periods := c.CandidatePeriods()
	if len(periods) == 0 {
		t.Fatal("no candidate periods")
	}
	for _, p := range periods {
		if p < 120*timing.Millisecond || p > 480*timing.Millisecond {
			t.Errorf("period %v outside configured range", p)
		}
		if timing.HyperPeriod1440ms%p != 0 {
			t.Errorf("period %v does not divide hyper-period", p)
		}
	}
	// Harmonic chain rooted at 120 ms capped at 480 ms: {120, 240, 480}.
	if len(periods) != 3 {
		t.Errorf("got %d candidate periods, want 3: %v", len(periods), periods)
	}
	// Every pair of candidates is harmonic (the Figure 5 condition).
	for i := 0; i < len(periods); i++ {
		for k := i + 1; k < len(periods); k++ {
			if periods[k]%periods[i] != 0 {
				t.Errorf("periods %v and %v not harmonic", periods[i], periods[k])
			}
		}
	}
	// Non-harmonic configurations still enumerate all divisors.
	c.Harmonic = false
	c.MaxPeriod = 360 * timing.Millisecond
	if got := len(c.CandidatePeriods()); got != 7 {
		t.Errorf("non-harmonic candidates = %d, want 7", got)
	}
}

func TestTaskCount(t *testing.T) {
	c := PaperConfig()
	cases := []struct {
		u    float64
		want int
	}{{0.05, 1}, {0.2, 4}, {0.5, 10}, {0.9, 18}, {0.01, 1}}
	for _, cse := range cases {
		if got := c.TaskCount(cse.u); got != cse.want {
			t.Errorf("TaskCount(%g) = %d, want %d", cse.u, got, cse.want)
		}
	}
}

func TestSystemRespectsPaperConstraints(t *testing.T) {
	c := PaperConfig()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ts, err := c.System(rng, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts.Tasks) != 10 {
			t.Fatalf("task count = %d, want 10", len(ts.Tasks))
		}
		if h := ts.Hyperperiod(); timing.HyperPeriod1440ms%h != 0 {
			t.Errorf("hyper-period %v does not divide 1440ms", h)
		}
		for i := range ts.Tasks {
			tk := &ts.Tasks[i]
			if tk.D != tk.T {
				t.Errorf("task %d: D=%v != T=%v", i, tk.D, tk.T)
			}
			if tk.Theta != tk.T/4 {
				t.Errorf("task %d: θ=%v != T/4=%v", i, tk.Theta, tk.T/4)
			}
			if tk.C > tk.Theta {
				t.Errorf("task %d: C=%v > θ=%v", i, tk.C, tk.Theta)
			}
			if tk.Delta < tk.Theta || tk.Delta > tk.D-tk.Theta {
				t.Errorf("task %d: δ=%v outside [θ, D−θ]", i, tk.Delta)
			}
			if tk.Vmax != float64(tk.P)+1 || tk.Vmin != 1 {
				t.Errorf("task %d: quality Vmax=%g Vmin=%g P=%d", i, tk.Vmax, tk.Vmin, tk.P)
			}
		}
		// Utilisation should be at or below the target (clamping may lower
		// it) and reasonably close.
		u := ts.Utilization()
		if u > 0.5+1e-9 {
			t.Errorf("U = %g exceeds target", u)
		}
		if u < 0.25 {
			t.Errorf("U = %g implausibly far below target 0.5", u)
		}
	}
}

func TestSystemDeterministicFromSeed(t *testing.T) {
	c := PaperConfig()
	a, err := c.System(rand.New(rand.NewSource(7)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.System(rand.New(rand.NewSource(7)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("different task counts")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
}

func TestSystemMultiDevice(t *testing.T) {
	c := PaperConfig()
	c.Devices = 3
	rng := rand.New(rand.NewSource(3))
	ts, err := c.System(rng, 0.6) // 12 tasks over 3 devices
	if err != nil {
		t.Fatal(err)
	}
	devs := ts.Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %v, want 3 distinct", devs)
	}
	counts := map[int]int{}
	for i := range ts.Tasks {
		counts[int(ts.Tasks[i].Device)]++
	}
	for d, n := range counts {
		if n != 4 {
			t.Errorf("device %d has %d tasks, want 4 (round-robin)", d, n)
		}
	}
}

func TestBatch(t *testing.T) {
	c := PaperConfig()
	rng := rand.New(rand.NewSource(11))
	systems, err := c.Batch(rng, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 5 {
		t.Fatalf("batch size = %d", len(systems))
	}
	// Systems within a batch must differ (RNG advances).
	same := true
	for i := range systems[0].Tasks {
		if systems[0].Tasks[i] != systems[1].Tasks[i] {
			same = false
			break
		}
	}
	if same && len(systems[0].Tasks) == len(systems[1].Tasks) {
		t.Error("consecutive systems in a batch are identical")
	}
}

func TestNoCandidatePeriodsError(t *testing.T) {
	c := PaperConfig()
	c.MinPeriod = timing.HyperPeriod1440ms + 1
	if _, err := c.System(rand.New(rand.NewSource(1)), 0.3); err == nil {
		t.Fatal("expected error for empty period range")
	}
}

// Property: UUniFast output is always non-negative and sums to U for random
// n and U.
func TestUUniFastProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, uRaw uint8) bool {
		n := int(nRaw)%25 + 1
		u := float64(uRaw%90)/100 + 0.05
		utils := UUniFast(rand.New(rand.NewSource(seed)), n, u)
		var sum float64
		for _, x := range utils {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every generated system validates and respects θ ≥ C across
// random seeds and utilisations.
func TestSystemProperty(t *testing.T) {
	c := PaperConfig()
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%15)*0.05 // 0.2 .. 0.9
		ts, err := c.System(rand.New(rand.NewSource(seed)), u)
		if err != nil {
			return false
		}
		for i := range ts.Tasks {
			if ts.Tasks[i].C > ts.Tasks[i].Theta {
				return false
			}
			if err := ts.Tasks[i].Validate(); err != nil {
				return false
			}
		}
		return ts.Utilization() <= u+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
