package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// UUniFast draws n task utilisations summing to u, following Bini &
// Buttazzo's UUniFast algorithm. It panics if n <= 0 or u <= 0, which are
// programming errors in the caller's experiment configuration.
func UUniFast(rng *rand.Rand, n int, u float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("gen: UUniFast n = %d", n))
	}
	if u <= 0 {
		panic(fmt.Sprintf("gen: UUniFast u = %g", u))
	}
	out := make([]float64, n)
	sum := u
	for i := 1; i < n; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// Config parameterises system generation. The zero value is not valid; use
// PaperConfig for the evaluation's settings.
type Config struct {
	// Hyperperiod is the common hyper-period all task periods must divide.
	Hyperperiod timing.Time
	// MinPeriod and MaxPeriod bound the candidate periods (inclusive).
	// Candidates are divisors of Hyperperiod inside this range.
	MinPeriod, MaxPeriod timing.Time
	// UtilPerTask is the per-task utilisation quantum; the paper uses
	// U = 0.05 · |Γ|, i.e. 0.05 per task.
	UtilPerTask float64
	// Vmin is the global minimum quality (paper: 1).
	Vmin float64
	// Devices is the number of I/O devices; tasks are assigned round-robin
	// after shuffling. The paper's schedulability experiment assumes a
	// single device, so PaperConfig sets 1.
	Devices int
	// MaxRedraws bounds the attempts to satisfy θi ≥ Ci per task before
	// clamping Ci to θi. The clamp keeps total utilisation ≤ U.
	MaxRedraws int
	// Harmonic restricts the candidate periods to a harmonic chain
	// (MinPeriod, 2·MinPeriod, 4·MinPeriod, … up to MaxPeriod). Harmonic
	// task sets are the only ones for which fixed-priority scheduling is
	// utilisation-optimal, which is what Figure 5's "FPS-offline schedules
	// every system" boundary condition requires.
	Harmonic bool
}

// PaperConfig returns the Section V-A parameterisation. The paper draws
// periods "from all periods that lead to a hyper-period of 1440ms" without
// stating a range or structure; this configuration uses the harmonic chain
// {120, 240, 480} ms. The calibration reproduces Figure 5's boundary
// conditions: fixed-priority scheduling with full knowledge
// ("FPS-offline") schedules essentially every generated system at every
// utilisation — which FPS only achieves on (near-)harmonic periods — while
// the worst-case analysis ("FPS-online") visibly degrades, because the
// largest blocking time (max C = 480/4 = 120 ms) reaches the shortest
// deadline. Wider or non-harmonic bands produce many systems that no
// non-preemptive schedule at all can handle, contradicting the figure;
// EXPERIMENTS.md discusses the calibration.
func PaperConfig() Config {
	return Config{
		Hyperperiod: timing.HyperPeriod1440ms,
		MinPeriod:   120 * timing.Millisecond,
		MaxPeriod:   480 * timing.Millisecond,
		UtilPerTask: 0.05,
		Vmin:        1,
		Devices:     1,
		MaxRedraws:  64,
		Harmonic:    true,
	}
}

// CandidatePeriods returns the divisors of the hyper-period within
// [MinPeriod, MaxPeriod]; with Harmonic set, only the doubling chain
// rooted at MinPeriod.
func (c Config) CandidatePeriods() []timing.Time {
	if c.Harmonic {
		var out []timing.Time
		for p := c.MinPeriod; p <= c.MaxPeriod; p *= 2 {
			if p > 0 && int64(c.Hyperperiod)%int64(p) == 0 {
				out = append(out, p)
			}
		}
		return out
	}
	var out []timing.Time
	for _, d := range timing.Divisors(int64(c.Hyperperiod)) {
		t := timing.Time(d)
		if t >= c.MinPeriod && t <= c.MaxPeriod {
			out = append(out, t)
		}
	}
	return out
}

// TaskCount returns the number of tasks for a target utilisation, following
// U = UtilPerTask · |Γ|. It rounds to the nearest integer.
func (c Config) TaskCount(u float64) int {
	n := int(u/c.UtilPerTask + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// System draws one synthetic task set with total utilisation u.
// The returned set has DMPO priorities and paper quality values assigned.
func (c Config) System(rng *rand.Rand, u float64) (*taskmodel.TaskSet, error) {
	n := c.TaskCount(u)
	periods := c.CandidatePeriods()
	if len(periods) == 0 {
		return nil, fmt.Errorf("gen: no candidate periods in [%v, %v] dividing %v",
			c.MinPeriod, c.MaxPeriod, c.Hyperperiod)
	}
	utils := UUniFast(rng, n, u)
	tasks := make([]taskmodel.Task, n)
	for i := 0; i < n; i++ {
		task, err := c.drawTask(rng, periods, utils[i])
		if err != nil {
			return nil, err
		}
		tasks[i] = task
	}
	c.assignDevices(rng, tasks)
	ts, err := taskmodel.NewTaskSet(tasks)
	if err != nil {
		return nil, fmt.Errorf("gen: generated invalid task set: %w", err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(c.Vmin)
	return ts, nil
}

// drawTask draws one task with utilisation util, redrawing the period until
// θ = T/4 ≥ C (the paper's "we enforce that θi ≥ Ci"), then drawing
// δ ∈ [θ, D−θ].
func (c Config) drawTask(rng *rand.Rand, periods []timing.Time, util float64) (taskmodel.Task, error) {
	var t, theta, wcet timing.Time
	ok := false
	redraws := c.MaxRedraws
	if redraws <= 0 {
		redraws = 1
	}
	for attempt := 0; attempt < redraws; attempt++ {
		t = periods[rng.Intn(len(periods))]
		theta = t / 4
		wcet = timing.Time(util * float64(t))
		if wcet < 1 {
			wcet = 1
		}
		if wcet <= theta {
			ok = true
			break
		}
	}
	if !ok {
		// Give the task the largest candidate period and clamp C to θ.
		// Clamping only ever lowers utilisation, so the system stays at or
		// below its target U.
		t = periods[len(periods)-1]
		theta = t / 4
		wcet = timing.Time(util * float64(t))
		if wcet < 1 {
			wcet = 1
		}
		if wcet > theta {
			wcet = theta
		}
	}
	if theta < 1 {
		return taskmodel.Task{}, fmt.Errorf("gen: period %v yields θ < 1 tick", t)
	}
	// δ uniform over the integer range [θ, T−θ].
	span := int64(t - 2*theta)
	delta := theta + timing.Time(rng.Int63n(span+1))
	return taskmodel.Task{
		C:     wcet,
		T:     t,
		D:     t,
		Delta: delta,
		Theta: theta,
	}, nil
}

// assignDevices spreads tasks over c.Devices devices. With one device this
// is a no-op; with several, tasks are shuffled and dealt round-robin so the
// partitions have balanced cardinality but random composition.
func (c Config) assignDevices(rng *rand.Rand, tasks []taskmodel.Task) {
	n := c.Devices
	if n <= 1 {
		return
	}
	order := rng.Perm(len(tasks))
	for i, idx := range order {
		tasks[idx].Device = taskmodel.DeviceID(i % n)
	}
}

// Batch draws count systems at utilisation u, advancing the RNG between
// systems. Failures (which should not occur with a sane Config) abort.
func (c Config) Batch(rng *rand.Rand, count int, u float64) ([]*taskmodel.TaskSet, error) {
	out := make([]*taskmodel.TaskSet, 0, count)
	for i := 0; i < count; i++ {
		ts, err := c.System(rng, u)
		if err != nil {
			return nil, fmt.Errorf("gen: system %d: %w", i, err)
		}
		out = append(out, ts)
	}
	return out, nil
}
