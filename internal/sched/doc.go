// Package sched defines the common schedule representation shared by every
// scheduling method in the repository, together with the feasibility
// validator that encodes the paper's two constraints (Section III-B):
//
//	Constraint 1: every job executes inside its release window,
//	              Ti·j ≤ κi^j ≤ Ti·j + Di − Ci;
//	Constraint 2: job executions on one device never overlap.
//
// A Schedule is always for a single device partition — the scheduling model
// is fully partitioned (Section III), so cross-device interleavings are
// irrelevant by construction. DeviceSchedules aggregates partitions.
package sched
