package sched

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func mkJob(task, j int, release, deadline, ideal, c timing.Time) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: j},
		Release:  release,
		Deadline: deadline,
		Ideal:    ideal,
		C:        c,
		Theta:    (deadline - release) / 4,
		Vmax:     2,
		Vmin:     1,
	}
}

func TestNewValidSchedule(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 40, 10),
		mkJob(1, 0, 0, 100, 60, 10),
	}
	starts := quality.StartTimes{
		jobs[0].ID: 40,
		jobs[1].ID: 60,
	}
	s, err := New(jobs, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 2 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
	if s.Entries[0].Job.ID.Task != 0 || s.Entries[1].Job.ID.Task != 1 {
		t.Errorf("entries not sorted by start: %v", s)
	}
	if s.Makespan() != 70 {
		t.Errorf("makespan = %v, want 70", s.Makespan())
	}
}

func TestNewMissingStart(t *testing.T) {
	jobs := []taskmodel.Job{mkJob(0, 0, 0, 100, 40, 10)}
	if _, err := New(jobs, quality.StartTimes{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateRejectsEarlyStart(t *testing.T) {
	jobs := []taskmodel.Job{mkJob(0, 0, 50, 150, 90, 10)}
	_, err := New(jobs, quality.StartTimes{jobs[0].ID: 40})
	if err == nil || !strings.Contains(err.Error(), "before release") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDeadlineMiss(t *testing.T) {
	jobs := []taskmodel.Job{mkJob(0, 0, 0, 100, 40, 10)}
	_, err := New(jobs, quality.StartTimes{jobs[0].ID: 95})
	if err == nil {
		t.Fatal("expected deadline miss")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("deadline miss should wrap ErrInfeasible, got %v", err)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 40, 20),
		mkJob(1, 0, 0, 100, 50, 20),
	}
	_, err := New(jobs, quality.StartTimes{jobs[0].ID: 40, jobs[1].ID: 50})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v", err)
	}
	// Back-to-back is fine.
	if _, err := New(jobs, quality.StartTimes{jobs[0].ID: 40, jobs[1].ID: 60}); err != nil {
		t.Fatalf("back-to-back rejected: %v", err)
	}
}

func TestValidateRejectsDuplicate(t *testing.T) {
	j := mkJob(0, 0, 0, 100, 40, 10)
	s := &Schedule{Entries: []Entry{{Job: j, Start: 10}, {Job: j, Start: 50}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsMixedDevices(t *testing.T) {
	a := mkJob(0, 0, 0, 100, 40, 10)
	b := mkJob(1, 0, 0, 100, 60, 10)
	b.Device = 1
	s := &Schedule{Entries: []Entry{{Job: a, Start: 0}, {Job: b, Start: 50}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "devices") {
		t.Fatalf("err = %v", err)
	}
}

func TestScheduleMetrics(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 40, 10),
		mkJob(1, 0, 0, 100, 60, 10),
	}
	s, err := New(jobs, quality.StartTimes{jobs[0].ID: 40, jobs[1].ID: 70})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Psi(); got != 0.5 {
		t.Errorf("Ψ = %g, want 0.5", got)
	}
	ups := s.Upsilon(quality.Linear{})
	if ups <= 0 || ups >= 1 {
		t.Errorf("Υ = %g, want in (0,1)", ups)
	}
}

func TestResponseBound(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 40, 10),
		mkJob(0, 1, 100, 200, 140, 10),
		mkJob(1, 0, 0, 200, 60, 10),
	}
	s, err := New(jobs, quality.StartTimes{
		jobs[0].ID: 40, jobs[1].ID: 160, jobs[2].ID: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Task 0: job0 finishes at 50 (rel 0 → 50), job1 at 170 (rel 100 → 70).
	// The bound is release-relative — the absolute latest finish instant of
	// task 0 is 170, but ResponseBound reports the per-period worst, 70.
	rb, ok := s.ResponseBound(0)
	if !ok || rb != 70 {
		t.Errorf("ResponseBound(0) = %v,%v, want 70,true", rb, ok)
	}
	if _, ok := s.ResponseBound(9); ok {
		t.Error("ResponseBound of absent task should report false")
	}
	// The deprecated alias returns the same value.
	ft, ok := s.FinishTime(0)
	if !ok || ft != rb {
		t.Errorf("FinishTime(0) = %v,%v, want alias of ResponseBound %v", ft, ok, rb)
	}
}

func TestFreeSlots(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 20, 10),
		mkJob(1, 0, 0, 100, 50, 10),
	}
	s, err := New(jobs, quality.StartTimes{jobs[0].ID: 20, jobs[1].ID: 50})
	if err != nil {
		t.Fatal(err)
	}
	slots := s.FreeSlots(100)
	want := []FreeSlot{{0, 20}, {30, 50}, {60, 100}}
	if len(slots) != len(want) {
		t.Fatalf("slots = %v", slots)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Errorf("slot %d = %v, want %v", i, slots[i], want[i])
		}
	}
	// Empty schedule: one big slot.
	empty := &Schedule{}
	es := empty.FreeSlots(50)
	if len(es) != 1 || es[0] != (FreeSlot{0, 50}) {
		t.Errorf("empty slots = %v", es)
	}
	if (FreeSlot{10, 25}).Len() != 15 {
		t.Error("FreeSlot.Len broken")
	}
}

// TestFreeSlotsClampsToHorizon: entries at or past the horizon must not
// produce idle slots outside [0, horizon). Regression — an entry starting
// at 200 with horizon 100 used to emit [0,200) plus a trailing slot
// entirely beyond the horizon.
func TestFreeSlotsClampsToHorizon(t *testing.T) {
	mk := func(start, c timing.Time, task int) Entry {
		return Entry{
			Job: taskmodel.Job{
				ID: taskmodel.JobID{Task: task}, Release: start,
				Deadline: start + c + 1000, Ideal: start, C: c, Vmax: 2, Vmin: 1,
			},
			Start: start,
		}
	}
	cases := []struct {
		name    string
		entries []Entry
		horizon timing.Time
		want    []FreeSlot
	}{
		{"entry past horizon", []Entry{mk(200, 10, 0)}, 100, []FreeSlot{{0, 100}}},
		{"entry at horizon", []Entry{mk(100, 10, 0)}, 100, []FreeSlot{{0, 100}}},
		{"entry straddles horizon", []Entry{mk(90, 20, 0)}, 100, []FreeSlot{{0, 90}}},
		{"gap then entry past horizon", []Entry{mk(10, 10, 0), mk(150, 10, 1)}, 100,
			[]FreeSlot{{0, 10}, {20, 100}}},
		{"entry covers horizon exactly", []Entry{mk(0, 100, 0)}, 100, nil},
		{"zero horizon", []Entry{mk(5, 5, 0)}, 0, nil},
	}
	for _, tc := range cases {
		s := &Schedule{Entries: tc.entries}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid fixture: %v", tc.name, err)
		}
		got := s.FreeSlots(tc.horizon)
		if len(got) != len(tc.want) {
			t.Errorf("%s: slots = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("%s: slot %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

func TestScheduleAllPartitions(t *testing.T) {
	const ms = timing.Millisecond
	mk := func(dev taskmodel.DeviceID, delta timing.Time) taskmodel.Task {
		return taskmodel.Task{
			C: 1 * ms, T: 20 * ms, D: 20 * ms, Delta: delta, Theta: 5 * ms,
			Vmax: 2, Vmin: 1, Device: dev,
		}
	}
	ts, err := taskmodel.NewTaskSet([]taskmodel.Task{mk(0, 8*ms), mk(1, 8*ms), mk(0, 12*ms)})
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	ds, err := ScheduleAll(ts, idealScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("partitions = %d, want 2", len(ds))
	}
	psi, ups := ds.Metrics(quality.Linear{})
	if psi != 1 || ups != 1 {
		t.Errorf("metrics = %g, %g, want 1,1", psi, ups)
	}
}

// idealScheduler schedules every job at its ideal start; it is only valid
// for conflict-free partitions and serves as a test double.
type idealScheduler struct{}

func (idealScheduler) Name() string { return "ideal" }

func (idealScheduler) Schedule(jobs []taskmodel.Job) (*Schedule, error) {
	starts := quality.StartTimes{}
	for i := range jobs {
		starts[jobs[i].ID] = jobs[i].Ideal
	}
	return New(jobs, starts)
}

func TestScheduleAllPropagatesInfeasibility(t *testing.T) {
	const ms = timing.Millisecond
	// Two tasks on one device with identical ideal intervals: idealScheduler
	// must fail.
	mk := func() taskmodel.Task {
		return taskmodel.Task{
			C: 5 * ms, T: 20 * ms, D: 20 * ms, Delta: 8 * ms, Theta: 5 * ms,
			Vmax: 2, Vmin: 1,
		}
	}
	ts, err := taskmodel.NewTaskSet([]taskmodel.Task{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	if _, err := ScheduleAll(ts, idealScheduler{}); err == nil {
		t.Fatal("expected failure for conflicting ideals")
	}
}

// Property: FreeSlots of a valid schedule never overlap entries, are
// maximal, and total busy + free time equals the horizon.
func TestFreeSlotsProperty(t *testing.T) {
	f := func(raw [5]uint8) bool {
		// Build a chain of non-overlapping jobs with random gaps.
		var entries []Entry
		cursor := timing.Time(0)
		for i, r := range raw {
			gap := timing.Time(r % 7)
			c := timing.Time(r%5) + 1
			start := cursor + gap
			entries = append(entries, Entry{
				Job: taskmodel.Job{
					ID:       taskmodel.JobID{Task: i, J: 0},
					Release:  start,
					Deadline: start + c + 100,
					Ideal:    start,
					C:        c,
					Vmax:     2, Vmin: 1,
				},
				Start: start,
			})
			cursor = start + c
		}
		s := &Schedule{Entries: entries}
		if err := s.Validate(); err != nil {
			return false
		}
		horizon := cursor + 10
		slots := s.FreeSlots(horizon)
		var free, busy timing.Time
		for _, sl := range slots {
			if sl.Len() <= 0 {
				return false
			}
			free += sl.Len()
		}
		for i := range entries {
			busy += entries[i].Job.C
		}
		if free+busy != horizon {
			return false
		}
		// A horizon that cuts the chain: every slot stays inside
		// [0, horizon) and free + in-horizon busy time still partitions it.
		short := cursor / 2
		free, busy = 0, 0
		prevEnd := timing.Time(0)
		for _, sl := range s.FreeSlots(short) {
			if sl.Len() <= 0 || sl.Start < prevEnd || sl.End > short {
				return false
			}
			prevEnd = sl.End
			free += sl.Len()
		}
		for i := range entries {
			s, e := entries[i].Start, entries[i].End()
			if s < short {
				if e > short {
					e = short
				}
				busy += e - s
			}
		}
		return free+busy == short
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortTieBreaks(t *testing.T) {
	// Two zero-adjacent entries sharing a start only survive validation if
	// one has zero... they can't; Sort alone is still deterministic: higher
	// priority first, then task, then release index.
	a := mkJob(2, 0, 0, 100, 40, 10)
	a.P = 1
	b := mkJob(1, 0, 0, 100, 40, 10)
	b.P = 5
	c := mkJob(1, 1, 0, 100, 40, 10)
	c.P = 5
	s := &Schedule{Entries: []Entry{{Job: a, Start: 50}, {Job: c, Start: 50}, {Job: b, Start: 50}}}
	s.Sort()
	if s.Entries[0].Job.ID != b.ID {
		t.Errorf("first = %v, want higher priority", s.Entries[0].Job.ID)
	}
	if s.Entries[1].Job.ID != c.ID {
		t.Errorf("second = %v, want lower J of same task", s.Entries[1].Job.ID)
	}
	if s.Entries[2].Job.ID != a.ID {
		t.Errorf("third = %v", s.Entries[2].Job.ID)
	}
}

func TestScheduleString(t *testing.T) {
	empty := &Schedule{}
	if empty.String() != "schedule{}" {
		t.Errorf("empty = %q", empty.String())
	}
	j := mkJob(0, 0, 0, 100, 40, 10)
	s := &Schedule{Entries: []Entry{{Job: j, Start: 40}}}
	if got := s.String(); !strings.Contains(got, "λ0^0@40") {
		t.Errorf("String = %q", got)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if (&Schedule{}).Makespan() != 0 {
		t.Error("empty makespan should be 0")
	}
}

func TestMetricsPanicOnCorruptedSchedule(t *testing.T) {
	// Psi/Upsilon panic only if entries were mutated to be inconsistent;
	// normal path returns values — exercised here for the happy branch.
	jobs := []taskmodel.Job{mkJob(0, 0, 0, 100, 40, 10)}
	s, err := New(jobs, quality.StartTimes{jobs[0].ID: 40})
	if err != nil {
		t.Fatal(err)
	}
	if s.Psi() != 1 {
		t.Error("Psi of exact schedule")
	}
	if u := s.Upsilon(quality.Linear{}); u != 1 {
		t.Errorf("Upsilon = %g", u)
	}
}

// greedyScheduler is a deterministic double for the parallelism tests: it
// lays jobs out in release order (ties by ID), delaying to resolve
// overlaps. Unlike idealScheduler it handles contended partitions.
type greedyScheduler struct{}

func (greedyScheduler) Name() string { return "greedy" }

func (greedyScheduler) Schedule(jobs []taskmodel.Job) (*Schedule, error) {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := &jobs[order[a]], &jobs[order[b]]
		if ja.Release != jb.Release {
			return ja.Release < jb.Release
		}
		if ja.ID.Task != jb.ID.Task {
			return ja.ID.Task < jb.ID.Task
		}
		return ja.ID.J < jb.ID.J
	})
	starts := quality.StartTimes{}
	var cursor timing.Time
	for _, idx := range order {
		j := &jobs[idx]
		start := timing.Max(j.Release, cursor)
		starts[j.ID] = start
		cursor = start + j.C
	}
	return New(jobs, starts)
}

// TestScheduleAllParallelEquivalence pins the engine's invariant at the
// sched layer: scheduling the partitions of a generated multi-device
// system concurrently yields exactly the serial result.
func TestScheduleAllParallelEquivalence(t *testing.T) {
	cfg := gen.PaperConfig()
	cfg.Devices = 6
	ts, err := cfg.System(rand.New(rand.NewSource(3)), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ScheduleAll(ts, greedyScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 2 {
		t.Fatalf("want a multi-partition system, got %d partitions", len(ref))
	}
	for _, par := range []int{1, 2, 3, runtime.NumCPU()} {
		got, err := ScheduleAllParallel(ts, greedyScheduler{}, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("parallelism %d: schedules differ from serial result", par)
		}
	}
}

// TestScheduleAllParallelSameError checks the serial and parallel paths
// agree on the reported infeasibility (first failing device in order).
func TestScheduleAllParallelSameError(t *testing.T) {
	const ms = timing.Millisecond
	mk := func(dev taskmodel.DeviceID) taskmodel.Task {
		return taskmodel.Task{
			C: 5 * ms, T: 20 * ms, D: 20 * ms, Delta: 8 * ms, Theta: 5 * ms,
			Vmax: 2, Vmin: 1, Device: dev,
		}
	}
	// Device 1 has conflicting ideals; device 0 is fine.
	ts, err := taskmodel.NewTaskSet([]taskmodel.Task{mk(0), mk(1), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	refErr := func() string {
		_, err := ScheduleAll(ts, idealScheduler{})
		if err == nil {
			t.Fatal("expected failure")
		}
		return err.Error()
	}()
	for _, par := range []int{2, runtime.NumCPU()} {
		_, err := ScheduleAllParallel(ts, idealScheduler{}, par)
		if err == nil || err.Error() != refErr {
			t.Errorf("parallelism %d: err = %v, want %q", par, err, refErr)
		}
	}
}
