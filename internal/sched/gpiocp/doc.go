// Package gpiocp implements the scheduling behaviour of the GPIOCP baseline
// (Jiang & Audsley, DATE 2017) as evaluated in Section V of the paper.
//
// GPIOCP pre-loads timed I/O commands and lets the user request that a
// command execute at an exact instant — here, the job's ideal start time δ.
// At run time a fired request is appended to a FIFO queue and executes when
// it reaches the head, so the achieved timing depends entirely on the
// arrival order: under contention a request waits for every earlier-fired
// request to finish, regardless of its own deadline or ideal instant. This
// is precisely why the paper's introduction concludes GPIOCP "cannot
// guarantee either of the timing requirements".
package gpiocp
