package gpiocp

import (
	"fmt"
	"sort"

	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Scheduler reproduces GPIOCP's FIFO execution order offline so it can be
// compared with the proposed methods on identical job sets.
type Scheduler struct{}

// Name implements sched.Scheduler.
func (Scheduler) Name() string { return "gpiocp" }

// Schedule orders jobs by the instants their requests fire (the ideal start
// times δ; ties by priority, then identity, modelling a deterministic
// request bus) and executes them FIFO and work-conservingly on the device.
// A job that would finish past its deadline makes the system unschedulable.
func (Scheduler) Schedule(jobs []taskmodel.Job) (*sched.Schedule, error) {
	if len(jobs) == 0 {
		return &sched.Schedule{}, nil
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := &jobs[order[a]], &jobs[order[b]]
		if ja.Ideal != jb.Ideal {
			return ja.Ideal < jb.Ideal
		}
		if ja.P != jb.P {
			return ja.P > jb.P
		}
		if ja.ID.Task != jb.ID.Task {
			return ja.ID.Task < jb.ID.Task
		}
		return ja.ID.J < jb.ID.J
	})
	starts := make(quality.StartTimes, len(jobs))
	var now timing.Time
	for _, idx := range order {
		j := &jobs[idx]
		start := timing.Max(now, j.Ideal)
		if start+j.C > j.Deadline {
			return nil, fmt.Errorf("gpiocp: job %v finishes at %v past deadline %v: %w",
				j.ID, start+j.C, j.Deadline, sched.ErrInfeasible)
		}
		starts[j.ID] = start
		now = start + j.C
	}
	return sched.New(jobs, starts)
}
