package gpiocp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func mkJob(task, j int, release, deadline, ideal, c timing.Time, p int) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: j},
		Release:  release,
		Deadline: deadline,
		Ideal:    ideal,
		C:        c,
		P:        p,
		Theta:    (deadline - release) / 4,
		Vmax:     float64(p) + 1,
		Vmin:     1,
	}
}

func TestUncontendedJobsAreExact(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 20, 10, 1),
		mkJob(1, 0, 0, 100, 50, 10, 2),
	}
	s, err := Scheduler{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Psi() != 1 {
		t.Errorf("Ψ = %g, want 1 for uncontended FIFO", s.Psi())
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// Job firing first occupies the device; the second waits even though
	// it fires later at its own ideal instant.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 200, 20, 50, 1), // fires at 20, runs [20,70)
		mkJob(1, 0, 0, 200, 40, 10, 2), // fires at 40, must wait until 70
	}
	s, err := Scheduler{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if st[jobs[0].ID] != 20 {
		t.Errorf("first job start = %v, want 20", st[jobs[0].ID])
	}
	if st[jobs[1].ID] != 70 {
		t.Errorf("queued job start = %v, want 70 (head-of-line blocking)", st[jobs[1].ID])
	}
	if s.Psi() != 0.5 {
		t.Errorf("Ψ = %g, want 0.5", s.Psi())
	}
}

func TestFIFOOrderIgnoresPriorityAcrossInstants(t *testing.T) {
	// A low-priority job that fires earlier runs first — FIFO, not FPS.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 30, 50, 1), // low priority, fires first
		mkJob(1, 0, 0, 400, 31, 50, 9), // high priority, fires second
	}
	s, err := Scheduler{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if !(st[jobs[0].ID] == 30 && st[jobs[1].ID] == 80) {
		t.Errorf("starts = %v/%v, want 30/80", st[jobs[0].ID], st[jobs[1].ID])
	}
}

func TestSimultaneousFireTieBreak(t *testing.T) {
	// Same fire instant: the higher-priority request wins the bus.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 30, 20, 1),
		mkJob(1, 0, 0, 400, 30, 20, 2),
	}
	s, err := Scheduler{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if st[jobs[1].ID] != 30 || st[jobs[0].ID] != 50 {
		t.Errorf("starts = %v/%v, want 50/30", st[jobs[0].ID], st[jobs[1].ID])
	}
}

func TestDeadlineMissInfeasible(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 60, 30, 1), // runs [60,90)
		mkJob(1, 0, 0, 100, 70, 30, 2), // queued until 90 → misses 100
	}
	_, err := Scheduler{}.Schedule(jobs)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEmpty(t *testing.T) {
	s, err := Scheduler{}.Schedule(nil)
	if err != nil || len(s.Entries) != 0 {
		t.Fatal("empty partition misbehaves")
	}
}

// Property: GPIOCP schedules are valid when feasible, and every job starts
// at or after its fire instant (FIFO never runs early).
func TestGPIOCPProperty(t *testing.T) {
	cfg := gen.PaperConfig()
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%15)*0.05
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
		if err != nil {
			return false
		}
		jobs := ts.Jobs()
		s, err := Scheduler{}.Schedule(jobs)
		if err != nil {
			return errors.Is(err, sched.ErrInfeasible)
		}
		if err := s.Validate(); err != nil {
			return false
		}
		st := s.StartTimes()
		for i := range jobs {
			if st[jobs[i].ID] < jobs[i].Ideal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// GPIOCP's schedulability should collapse as utilisation rises — the
// qualitative claim of Figure 5.
func TestSchedulabilityCollapsesWithUtilisation(t *testing.T) {
	cfg := gen.PaperConfig()
	rate := func(u float64) float64 {
		ok := 0
		const n = 40
		for seed := int64(0); seed < n; seed++ {
			ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := (Scheduler{}).Schedule(ts.Jobs()); err == nil {
				ok++
			}
		}
		return float64(ok) / n
	}
	low, high := rate(0.3), rate(0.8)
	if low < high {
		t.Errorf("schedulability should fall with U: %.2f@0.3 vs %.2f@0.8", low, high)
	}
	if high > 0.5 {
		t.Errorf("GPIOCP at U=0.8 schedulable fraction = %.2f, expected collapse", high)
	}
}
