// Package depgraph implements phases one and two of Algorithm 1: the
// formation of dependency graphs over the jobs' ideal execution intervals,
// and their decomposition by penalty weight.
//
// A dependency graph links jobs whose ideal executions [Ideal, Ideal+C)
// overlap (Figure 2). The penalty weight ψ of a job is its degree — the
// number of jobs that cannot be exactly timing-accurate if this job runs at
// its ideal instant. Decomposition repeatedly removes the job with the
// highest ψ (ties broken by lowest priority Pi, then by job identity for
// determinism) until no conflicts remain; removed jobs form λ¬ and are
// later re-allocated by the LCC-D phase, while surviving jobs form λ* and
// execute exactly at their ideal start instants.
package depgraph
