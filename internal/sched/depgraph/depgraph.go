package depgraph

import (
	"sort"

	"repro/internal/taskmodel"
)

// Graph is the ideal-execution overlap graph over a slice of jobs.
// Node i corresponds to jobs[i].
type Graph struct {
	jobs []taskmodel.Job
	adj  [][]int // adjacency lists, symmetric
}

// Build constructs the overlap graph for one device partition's jobs.
// Construction sorts jobs by ideal start internally and uses a sweep, so it
// costs O(n log n + m) for m overlap pairs.
func Build(jobs []taskmodel.Job) *Graph {
	g := &Graph{
		jobs: jobs,
		adj:  make([][]int, len(jobs)),
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return jobs[order[a]].Ideal < jobs[order[b]].Ideal
	})
	// Sweep: for each job, link to later-starting jobs until the gap
	// exceeds the current job's ideal end.
	for oi, i := range order {
		ji := &g.jobs[i]
		for _, k := range order[oi+1:] {
			jk := &g.jobs[k]
			if jk.Ideal >= ji.IdealEnd() {
				break
			}
			if ji.OverlapsIdeal(jk) {
				g.adj[i] = append(g.adj[i], k)
				g.adj[k] = append(g.adj[k], i)
			}
		}
	}
	return g
}

// Len returns the number of jobs (nodes).
func (g *Graph) Len() int { return len(g.jobs) }

// Job returns the job at node i.
func (g *Graph) Job(i int) *taskmodel.Job { return &g.jobs[i] }

// Degree returns the penalty weight ψ of node i: the number of jobs whose
// ideal executions conflict with it.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns the nodes adjacent to i. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Components returns the connected components of the graph — the dependency
// graphs G = {G1, G2, ...} of Algorithm 1 line 1. Each component is a
// sorted list of node indices; components are ordered by their smallest
// node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.jobs))
	var comps [][]int
	for start := range g.jobs {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, nb := range g.adj[n] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Decomposition is the outcome of phase two: Exact (λ*) holds nodes that
// survive and can run at their ideal instants; Removed (λ¬) holds sacrificed
// nodes in removal order.
type Decomposition struct {
	Exact   []int
	Removed []int
}

// Decompose runs phase two of Algorithm 1 (lines 2–9): while any conflict
// edge remains, remove the node with the highest current penalty weight ψ;
// ties are broken by the lowest priority Pi (a job with a lower priority has
// a wider release window and is easier to re-allocate), then by job identity
// (task, then release index) for determinism. Degrees update dynamically as
// nodes are removed, which also realises the paper's graph splitting.
//
// The receiver is not modified; decomposition works on a copy of the degree
// structure.
func (g *Graph) Decompose() Decomposition {
	n := len(g.jobs)
	deg := make([]int, n)
	removed := make([]bool, n)
	edges := 0
	for i := range g.adj {
		deg[i] = len(g.adj[i])
		edges += len(g.adj[i])
	}
	edges /= 2

	var out Decomposition
	for edges > 0 {
		// Select the victim: highest ψ, then lowest priority, then identity.
		best := -1
		for i := 0; i < n; i++ {
			if removed[i] || deg[i] == 0 {
				continue
			}
			if best == -1 || g.better(i, best, deg) {
				best = i
			}
		}
		if best == -1 {
			break // unreachable: edges > 0 implies a positive-degree node
		}
		removed[best] = true
		out.Removed = append(out.Removed, best)
		for _, nb := range g.adj[best] {
			if !removed[nb] {
				deg[nb]--
				edges--
			}
		}
		deg[best] = 0
	}
	for i := 0; i < n; i++ {
		if !removed[i] {
			out.Exact = append(out.Exact, i)
		}
	}
	return out
}

// better reports whether candidate node a should be removed in preference
// to node b under the current degrees.
func (g *Graph) better(a, b int, deg []int) bool {
	if deg[a] != deg[b] {
		return deg[a] > deg[b]
	}
	ja, jb := &g.jobs[a], &g.jobs[b]
	if ja.P != jb.P {
		return ja.P < jb.P // lower priority preferred for removal
	}
	if ja.ID.Task != jb.ID.Task {
		return ja.ID.Task < jb.ID.Task
	}
	return ja.ID.J < jb.ID.J
}
