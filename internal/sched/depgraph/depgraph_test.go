package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func mkJob(task int, ideal, c timing.Time, p int) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: 0},
		Release:  0,
		Deadline: ideal + c + 1000,
		Ideal:    ideal,
		C:        c,
		P:        p,
		Vmax:     2,
		Vmin:     1,
	}
}

// figure2Jobs reproduces the paper's Figure 2 example: nine jobs forming
// four dependency graphs {1}, {2,3}, {4,5,6}, {7,8,9}, where job 5 links to
// jobs 4 and 6 (ψ=2) but 4 and 6 do not overlap, and jobs 7–9 mutually
// conflict. Indices are zero-based: paper job k = index k−1.
func figure2Jobs() []taskmodel.Job {
	return []taskmodel.Job{
		mkJob(0, 0, 10, 9),   // job 1: isolated
		mkJob(1, 20, 10, 8),  // job 2
		mkJob(2, 25, 10, 7),  // job 3: overlaps job 2
		mkJob(3, 50, 10, 6),  // job 4
		mkJob(4, 55, 10, 5),  // job 5: overlaps 4 and 6
		mkJob(5, 62, 10, 4),  // job 6: overlaps 5 only
		mkJob(6, 90, 15, 3),  // job 7
		mkJob(7, 95, 15, 2),  // job 8
		mkJob(8, 100, 15, 1), // job 9: 7,8,9 mutually overlap
	}
}

func TestFigure2Components(t *testing.T) {
	g := Build(figure2Jobs())
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4: %v", len(comps), comps)
	}
	want := [][]int{{0}, {1, 2}, {3, 4, 5}, {6, 7, 8}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for k := range want[i] {
			if comps[i][k] != want[i][k] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestFigure2PenaltyWeights(t *testing.T) {
	g := Build(figure2Jobs())
	wantDeg := []int{0, 1, 1, 1, 2, 1, 2, 2, 2}
	for i, w := range wantDeg {
		if got := g.Degree(i); got != w {
			t.Errorf("ψ(job %d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestFigure2Decomposition(t *testing.T) {
	g := Build(figure2Jobs())
	d := g.Decompose()
	// Expected: job 5 (index 4) removed from {4,5,6} leaving 4 and 6 exact;
	// one of {2,3} removed (tie ψ=1 → lower priority = index 2);
	// from {7,8,9}: ψ all 2 → lowest priority = index 8 removed first, then
	// 6 and 7 still overlap (ψ=1 each) → lower priority = index 7 removed.
	wantExact := []int{0, 1, 3, 5, 6}
	if len(d.Exact) != len(wantExact) {
		t.Fatalf("exact = %v, want %v", d.Exact, wantExact)
	}
	for i := range wantExact {
		if d.Exact[i] != wantExact[i] {
			t.Fatalf("exact = %v, want %v", d.Exact, wantExact)
		}
	}
	if len(d.Removed) != 4 {
		t.Fatalf("removed = %v, want 4 jobs", d.Removed)
	}
	// λ* jobs must be pairwise non-overlapping at their ideal instants.
	for a := 0; a < len(d.Exact); a++ {
		for b := a + 1; b < len(d.Exact); b++ {
			ja, jb := g.Job(d.Exact[a]), g.Job(d.Exact[b])
			if ja.OverlapsIdeal(jb) {
				t.Errorf("exact jobs %v and %v overlap", ja.ID, jb.ID)
			}
		}
	}
}

func TestDecomposePrefersHighDegree(t *testing.T) {
	// A "star": one job overlapping three others that do not overlap each
	// other. Removing the hub frees all three.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 100, 1), // hub covers [0,100)
		mkJob(1, 0, 10, 4),  // [0,10)
		mkJob(2, 40, 10, 3), // [40,50)
		mkJob(3, 80, 10, 2), // [80,90)
	}
	g := Build(jobs)
	d := g.Decompose()
	if len(d.Removed) != 1 || d.Removed[0] != 0 {
		t.Fatalf("removed = %v, want just the hub", d.Removed)
	}
	if len(d.Exact) != 3 {
		t.Fatalf("exact = %v", d.Exact)
	}
}

func TestDecomposeTieBreakByPriority(t *testing.T) {
	// Two overlapping jobs, equal ψ=1: the lower-priority one is removed.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 10, 1), // lower priority
		mkJob(1, 5, 10, 2),
	}
	d := Build(jobs).Decompose()
	if len(d.Removed) != 1 || d.Removed[0] != 0 {
		t.Fatalf("removed = %v, want [0] (lower priority)", d.Removed)
	}
}

func TestDecomposeTieBreakDeterministicOnEqualPriority(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(3, 0, 10, 2),
		mkJob(1, 5, 10, 2),
	}
	d := Build(jobs).Decompose()
	// Equal ψ and P: lower task ID removed.
	if len(d.Removed) != 1 || d.Removed[0] != 1 {
		t.Fatalf("removed = %v, want [1] (task 1 < task 3)", d.Removed)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	g := Build(nil)
	if g.Len() != 0 || len(g.Components()) != 0 {
		t.Error("empty graph misbehaves")
	}
	d := g.Decompose()
	if len(d.Exact) != 0 || len(d.Removed) != 0 {
		t.Error("empty decomposition misbehaves")
	}
	g1 := Build([]taskmodel.Job{mkJob(0, 5, 10, 1)})
	d1 := g1.Decompose()
	if len(d1.Exact) != 1 || len(d1.Removed) != 0 {
		t.Errorf("singleton: exact=%v removed=%v", d1.Exact, d1.Removed)
	}
}

func TestIdenticalIdealsAllConflict(t *testing.T) {
	// k jobs with identical ideal intervals form a clique; exactly one
	// survives.
	var jobs []taskmodel.Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, mkJob(i, 100, 10, i+1))
	}
	d := Build(jobs).Decompose()
	if len(d.Exact) != 1 {
		t.Fatalf("clique: exact = %v, want exactly 1", d.Exact)
	}
	if len(d.Removed) != 4 {
		t.Fatalf("clique: removed = %v", d.Removed)
	}
	// The survivor is the highest-priority job (lowest priorities are
	// removed first).
	if got := jobs[d.Exact[0]].P; got != 5 {
		t.Errorf("survivor priority = %d, want 5", got)
	}
}

func randomJobs(rng *rand.Rand, n int) []taskmodel.Job {
	jobs := make([]taskmodel.Job, n)
	for i := range jobs {
		ideal := timing.Time(rng.Intn(500))
		c := timing.Time(rng.Intn(30) + 1)
		jobs[i] = mkJob(i, ideal, c, rng.Intn(n)+1)
	}
	return jobs
}

// Property: after decomposition no two exact jobs overlap, every removed
// node had at least one conflict at removal time, and Exact ∪ Removed is a
// partition of all nodes.
func TestDecomposeProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		jobs := randomJobs(rand.New(rand.NewSource(seed)), n)
		g := Build(jobs)
		d := g.Decompose()
		if len(d.Exact)+len(d.Removed) != n {
			return false
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, d.Exact...), d.Removed...) {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		for a := 0; a < len(d.Exact); a++ {
			for b := a + 1; b < len(d.Exact); b++ {
				if g.Job(d.Exact[a]).OverlapsIdeal(g.Job(d.Exact[b])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: graph adjacency is symmetric and matches the pairwise overlap
// predicate exactly.
func TestBuildMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		jobs := randomJobs(rand.New(rand.NewSource(seed)), n)
		g := Build(jobs)
		for i := 0; i < n; i++ {
			nb := map[int]bool{}
			for _, k := range g.Neighbors(i) {
				if k == i {
					return false
				}
				nb[k] = true
			}
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				want := jobs[i].OverlapsIdeal(&jobs[k])
				if nb[k] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
