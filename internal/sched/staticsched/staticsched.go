package staticsched

import (
	"fmt"
	"sort"

	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/depgraph"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// SlotPolicy selects how case-1 allocation chooses among feasible slots.
type SlotPolicy int

const (
	// LCCD is the paper's policy: least contention, then least capacity.
	LCCD SlotPolicy = iota
	// FirstFit takes the earliest feasible slot (ablation baseline).
	FirstFit
	// BestFit takes the slot with the least usable capacity (ablation
	// baseline; LCC-D without the contention term).
	BestFit
)

func (p SlotPolicy) String() string {
	switch p {
	case LCCD:
		return "lccd"
	case FirstFit:
		return "firstfit"
	case BestFit:
		return "bestfit"
	default:
		return fmt.Sprintf("SlotPolicy(%d)", int(p))
	}
}

// Options configures the scheduler. The zero value is the paper's method.
type Options struct {
	// Policy selects the case-1 slot choice rule. Default LCCD.
	Policy SlotPolicy
	// PlaceNearIdeal, when true, places a sacrificed job at the feasible
	// start closest to its ideal instant instead of the earliest feasible
	// start. The paper allocates sacrificed jobs "only with the
	// schedulability concern" (earliest start); near-ideal placement is the
	// ablation that recovers some Υ at no Ψ cost.
	PlaceNearIdeal bool
	// AllowDemotion enables an extension beyond the literal Algorithm 1:
	// when a sacrificed job fits neither directly nor by shifting, the
	// default behaviour declares the schedule infeasible (line 19 — the
	// paper deliberately stops rather than replace allocated jobs, to
	// guarantee termination). With AllowDemotion, each exactly-placed job
	// may instead be demoted back into the allocation queue at most once,
	// which recovers most of the feasible systems the literal algorithm
	// gives up on while still terminating (the demoted set only grows).
	AllowDemotion bool
}

// Scheduler is the heuristic-based I/O scheduler ("static" in the figures).
type Scheduler struct {
	opts Options
}

// New returns a static scheduler with the given options.
func New(opts Options) *Scheduler { return &Scheduler{opts: opts} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.opts.Policy == LCCD && !s.opts.PlaceNearIdeal && !s.opts.AllowDemotion {
		return "static"
	}
	return fmt.Sprintf("static[%v,nearIdeal=%v,demote=%v]",
		s.opts.Policy, s.opts.PlaceNearIdeal, s.opts.AllowDemotion)
}

// placement is one committed job execution during allocation.
type placement struct {
	job   int // index into the jobs slice
	start timing.Time
	exact bool // still at its ideal instant
}

// allocator carries the mutable state of phase three.
type allocator struct {
	jobs    []taskmodel.Job
	placed  []placement // sorted by start
	horizon timing.Time
	opts    Options
}

// Schedule implements sched.Scheduler, running Algorithm 1 on one device
// partition.
func (s *Scheduler) Schedule(jobs []taskmodel.Job) (*sched.Schedule, error) {
	if len(jobs) == 0 {
		return &sched.Schedule{}, nil
	}
	g := depgraph.Build(jobs)
	d := g.Decompose()

	a := &allocator{jobs: jobs, opts: s.opts}
	for i := range jobs {
		if dl := jobs[i].Deadline; dl > a.horizon {
			a.horizon = dl
		}
	}

	// Commit λ* at ideal starts. A job whose ideal execution violates its
	// own window (possible only for hand-built sets with θ < C) cannot be
	// exact and joins λ¬ instead.
	pending := append([]int(nil), d.Removed...)
	for _, idx := range d.Exact {
		j := &jobs[idx]
		if j.Ideal < j.Release || j.Ideal+j.C > j.Deadline {
			pending = append(pending, idx)
			continue
		}
		a.placed = append(a.placed, placement{job: idx, start: j.Ideal, exact: true})
	}
	a.sortPlaced()

	// Allocate λ¬ highest priority first (Algorithm 1 line 11), ties by
	// job identity for determinism.
	sort.SliceStable(pending, func(x, y int) bool {
		jx, jy := &jobs[pending[x]], &jobs[pending[y]]
		if jx.P != jy.P {
			return jx.P > jy.P
		}
		if jx.ID.Task != jy.ID.Task {
			return jx.ID.Task < jy.ID.Task
		}
		return jx.ID.J < jy.ID.J
	})
	demoted := make(map[int]bool)
	for qi := 0; qi < len(pending); qi++ {
		idx := pending[qi]
		if a.allocateDirect(idx, pending[qi+1:]) {
			continue
		}
		if a.allocateWithShift(idx) {
			continue
		}
		if s.opts.AllowDemotion {
			if victim, ok := a.demoteFor(idx, demoted); ok {
				demoted[victim] = true
				pending = append(pending, victim)
				qi-- // retry the blocked job with the victim's space freed
				continue
			}
		}
		return nil, fmt.Errorf("staticsched: job %v cannot be allocated: %w",
			jobs[idx].ID, sched.ErrInfeasible)
	}

	starts := quality.StartTimes{}
	for _, p := range a.placed {
		starts[jobs[p.job].ID] = p.start
	}
	return sched.New(jobs, starts)
}

func (a *allocator) sortPlaced() {
	sort.Slice(a.placed, func(x, y int) bool { return a.placed[x].start < a.placed[y].start })
}

// freeSlots returns the maximal idle intervals of the current timeline.
func (a *allocator) freeSlots() []sched.FreeSlot {
	var out []sched.FreeSlot
	cursor := timing.Time(0)
	for _, p := range a.placed {
		if p.start > cursor {
			out = append(out, sched.FreeSlot{Start: cursor, End: p.start})
		}
		if end := p.start + a.jobs[p.job].C; end > cursor {
			cursor = end
		}
	}
	if cursor < a.horizon {
		out = append(out, sched.FreeSlot{Start: cursor, End: a.horizon})
	}
	return out
}

// fitRange returns the feasible start range [lo, hi] for job j inside slot
// s, and whether the job fits at all.
func fitRange(j *taskmodel.Job, s sched.FreeSlot) (lo, hi timing.Time, ok bool) {
	lo = timing.Max(s.Start, j.Release)
	end := timing.Min(s.End, j.Deadline)
	hi = end - j.C
	return lo, hi, lo <= hi
}

// cand is a feasible case-1 placement candidate: a slot, the feasible start
// range inside it, and the LCC-D contention count.
type cand struct {
	slot       sched.FreeSlot
	lo, hi     timing.Time
	contention int
}

// allocateDirect attempts LCC-D case 1: place job idx wholly inside one
// free slot. remaining lists the not-yet-allocated λ¬ jobs used by the
// contention count.
func (a *allocator) allocateDirect(idx int, remaining []int) bool {
	j := &a.jobs[idx]
	slots := a.freeSlots()
	var cands []cand
	for _, s := range slots {
		lo, hi, ok := fitRange(j, s)
		if !ok {
			continue
		}
		c := cand{slot: s, lo: lo, hi: hi}
		if a.opts.Policy == LCCD {
			for _, r := range remaining {
				if _, _, fits := fitRange(&a.jobs[r], s); fits {
					c.contention++
				}
			}
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if a.betterSlot(c, best) {
			best = c
		}
	}
	start := best.lo
	if a.opts.PlaceNearIdeal {
		start = clamp(j.Ideal, best.lo, best.hi)
	}
	a.placed = append(a.placed, placement{job: idx, start: start, exact: start == j.Ideal})
	a.sortPlaced()
	return true
}

func (a *allocator) betterSlot(c, best cand) bool {
	switch a.opts.Policy {
	case FirstFit:
		return c.slot.Start < best.slot.Start
	case BestFit:
		if c.slot.Len() != best.slot.Len() {
			return c.slot.Len() < best.slot.Len()
		}
		return c.slot.Start < best.slot.Start
	default: // LCCD
		if c.contention != best.contention {
			return c.contention < best.contention
		}
		if c.slot.Len() != best.slot.Len() {
			return c.slot.Len() < best.slot.Len()
		}
		return c.slot.Start < best.slot.Start
	}
}

func clamp(v, lo, hi timing.Time) timing.Time {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// allocateWithShift attempts LCC-D case 2: find a run of consecutive free
// slots whose combined capacity inside the job's window is at least C, then
// shift the placements between them to coalesce the space. Runs are tried
// in order of (number of exact jobs between the slots, run width), matching
// the paper's "least number of timing accurate jobs in between"; within a
// run the split point that moves the fewest exact jobs is chosen ("shifting
// least tasks in λ*").
func (a *allocator) allocateWithShift(idx int) bool {
	j := &a.jobs[idx]
	slots := a.freeSlots()
	if len(slots) == 0 {
		return false
	}
	// Prefix sums over slots: slotFree[i] = total free capacity of
	// slots[0..i). A span [ai..bi] can host the job only if its free
	// capacity is at least C (shifting conserves busy time inside the
	// span), which prunes most pairs cheaply.
	slotFree := make([]timing.Time, len(slots)+1)
	for i, s := range slots {
		slotFree[i+1] = slotFree[i] + s.Len()
	}
	// Prefix counts over placements: exact placements among placed[0..i).
	exactBefore := make([]int, len(a.placed)+1)
	for i, p := range a.placed {
		exactBefore[i+1] = exactBefore[i]
		if p.exact {
			exactBefore[i+1]++
		}
	}
	// exactWithin counts exact placements inside [from, to]; a.placed is
	// sorted and non-overlapping, so they form a contiguous index range.
	exactWithin := func(from, to timing.Time) int {
		lo := sort.Search(len(a.placed), func(i int) bool { return a.placed[i].start >= from })
		hi := sort.Search(len(a.placed), func(i int) bool {
			return a.placed[i].start+a.jobs[a.placed[i].job].C > to
		})
		if hi <= lo {
			return 0
		}
		return exactBefore[hi] - exactBefore[lo]
	}
	type span struct {
		a, b  int // slot index range [a, b]
		exact int
	}
	var spans []span
	for ai := range slots {
		if slots[ai].Start >= j.Deadline {
			break // span begins after the window: the gap cannot fit
		}
		for bi := ai; bi < len(slots); bi++ {
			if slots[bi].End <= j.Release {
				continue // span ends before the window opens
			}
			if slotFree[bi+1]-slotFree[ai] < j.C {
				continue
			}
			spans = append(spans, span{
				a:     ai,
				b:     bi,
				exact: exactWithin(slots[ai].Start, slots[bi].End),
			})
		}
	}
	sort.SliceStable(spans, func(x, y int) bool {
		if spans[x].exact != spans[y].exact {
			return spans[x].exact < spans[y].exact
		}
		if w1, w2 := spans[x].b-spans[x].a, spans[y].b-spans[y].a; w1 != w2 {
			return w1 < w2
		}
		return slots[spans[x].a].Start < slots[spans[y].a].Start
	})
	// Bound the work on pathological instances: the sorted order makes the
	// first feasible span overwhelmingly likely to appear early.
	const maxAttempts = 512
	for i, r := range spans {
		if i == maxAttempts {
			break
		}
		if a.tryInsertSpan(idx, slots[r.a].Start, slots[r.b].End) {
			return true
		}
	}
	return false
}

// tryInsertSpan attempts to place job idx inside the span
// [spanStart, spanEnd] by shifting the placements within the span: for a
// split point k, placements before k are compacted towards the span start
// (never earlier than their releases) and placements from k on are pushed
// towards the span end (never past their latest starts), leaving a middle
// gap. Among the split points whose gap fits the job inside its window, the
// one moving the fewest exact jobs (then fewest jobs overall) wins. On
// success the move is committed and true is returned.
//
// Both compaction passes are always individually feasible: a left shift can
// only move a job later than or at its release, and a right shift at most
// to its latest start, while the non-overlap of the existing placements
// guarantees the packs never collide.
func (a *allocator) tryInsertSpan(idx int, spanStart, spanEnd timing.Time) bool {
	j := &a.jobs[idx]
	// Collect placements wholly inside the span, in time order.
	var inside []int // indices into a.placed
	for pi, p := range a.placed {
		end := p.start + a.jobs[p.job].C
		if p.start >= spanStart && end <= spanEnd {
			inside = append(inside, pi)
		}
	}
	n := len(inside)
	// Prefix left-pack: lStart[i] is inside[i]'s start when the first i+1
	// placements are packed left; lEnd[k] is the pack's end for prefix
	// length k; lMovedEx/lMoved count moved exact/total jobs.
	lStart := make([]timing.Time, n)
	lEnd := make([]timing.Time, n+1)
	lMovedEx := make([]int, n+1)
	lMoved := make([]int, n+1)
	cursor := spanStart
	lEnd[0] = cursor
	for i := 0; i < n; i++ {
		p := a.placed[inside[i]]
		job := &a.jobs[p.job]
		ns := timing.Max(job.Release, cursor)
		if ns > p.start {
			ns = p.start // defensive: left pass never moves a job later
		}
		lStart[i] = ns
		lMovedEx[i+1] = lMovedEx[i]
		lMoved[i+1] = lMoved[i]
		if ns != p.start {
			lMoved[i+1]++
			if p.exact {
				lMovedEx[i+1]++
			}
		}
		cursor = ns + job.C
		lEnd[i+1] = cursor
	}
	// Suffix right-pack: rStart[i] is inside[i]'s start when placements
	// i..n-1 are packed right; rBegin[k] is the pack's start for suffixes
	// beginning at k.
	rStart := make([]timing.Time, n)
	rBegin := make([]timing.Time, n+1)
	rMovedEx := make([]int, n+1)
	rMoved := make([]int, n+1)
	cursor = spanEnd
	rBegin[n] = cursor
	for i := n - 1; i >= 0; i-- {
		p := a.placed[inside[i]]
		job := &a.jobs[p.job]
		ns := timing.Min(job.LatestStart(), cursor-job.C)
		if ns < p.start {
			ns = p.start // defensive: right pass never moves a job earlier
		}
		rStart[i] = ns
		rMovedEx[i] = rMovedEx[i+1]
		rMoved[i] = rMoved[i+1]
		if ns != p.start {
			rMoved[i]++
			if p.exact {
				rMovedEx[i]++
			}
		}
		cursor = ns
		rBegin[i] = cursor
	}
	// Pick the best feasible split.
	bestK := -1
	bestEx, bestTot := 0, 0
	var bestLo, bestHi timing.Time
	for k := 0; k <= n; k++ {
		lo := timing.Max(lEnd[k], j.Release)
		hi := timing.Min(rBegin[k], j.Deadline) - j.C
		if lo > hi {
			continue
		}
		ex := lMovedEx[k] + rMovedEx[k]
		tot := lMoved[k] + rMoved[k]
		if bestK == -1 || ex < bestEx || (ex == bestEx && tot < bestTot) {
			bestK, bestEx, bestTot = k, ex, tot
			bestLo, bestHi = lo, hi
		}
	}
	if bestK == -1 {
		return false
	}
	newStarts := make(map[int]timing.Time, n)
	for i := 0; i < bestK; i++ {
		newStarts[inside[i]] = lStart[i]
	}
	for i := bestK; i < n; i++ {
		newStarts[inside[i]] = rStart[i]
	}
	start := bestLo
	if a.opts.PlaceNearIdeal {
		start = clamp(j.Ideal, bestLo, bestHi)
	}
	a.commitShift(idx, start, newStarts)
	return true
}

// demoteFor selects one placed job to evict so that the blocked job idx can
// be retried. Candidates are placements overlapping the blocked job's
// window that have not been demoted before; among them the lowest-priority
// job with the widest own window is chosen, since it is the easiest to
// re-allocate. Returns the evicted job index and whether one was found.
func (a *allocator) demoteFor(idx int, demoted map[int]bool) (int, bool) {
	j := &a.jobs[idx]
	best := -1 // index into a.placed
	better := func(x, y int) bool {
		jx, jy := &a.jobs[a.placed[x].job], &a.jobs[a.placed[y].job]
		if jx.P != jy.P {
			return jx.P < jy.P
		}
		wx, wy := jx.Deadline-jx.Release, jy.Deadline-jy.Release
		if wx != wy {
			return wx > wy
		}
		if jx.ID.Task != jy.ID.Task {
			return jx.ID.Task < jy.ID.Task
		}
		return jx.ID.J < jy.ID.J
	}
	for pi, p := range a.placed {
		if demoted[p.job] {
			continue
		}
		end := p.start + a.jobs[p.job].C
		if end <= j.Release || p.start >= j.Deadline {
			continue // does not block the window
		}
		if best == -1 || better(pi, best) {
			best = pi
		}
	}
	if best == -1 {
		return 0, false
	}
	victim := a.placed[best].job
	a.placed = append(a.placed[:best], a.placed[best+1:]...)
	return victim, true
}

// commitShift applies the computed shifts and inserts the new job. A
// shifted job that no longer sits at its ideal instant loses exact status;
// Ψ is recomputed from the final schedule, so the bookkeeping here only
// affects later exactBetween counts.
func (a *allocator) commitShift(idx int, start timing.Time, newStarts map[int]timing.Time) {
	for pi, ns := range newStarts {
		a.placed[pi].start = ns
		a.placed[pi].exact = ns == a.jobs[a.placed[pi].job].Ideal
	}
	j := &a.jobs[idx]
	a.placed = append(a.placed, placement{job: idx, start: start, exact: start == j.Ideal})
	a.sortPlaced()
}
