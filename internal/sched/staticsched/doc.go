// Package staticsched implements the paper's first scheduling method
// (Section III-A, Algorithm 1): a heuristic job-level schedule that
// maximises Ψ, the fraction of exactly timing-accurate I/O jobs.
//
// The method has three phases:
//
//  1. Dependency graphs are formed over the jobs' ideal execution
//     intervals (package depgraph).
//  2. The graphs are decomposed by repeatedly sacrificing the job with the
//     highest penalty weight ψ; survivors (λ*) run exactly at their ideal
//     instants.
//  3. Sacrificed jobs (λ¬) are re-inserted into the free slots of the
//     timeline by the Least Contention and Capacity Decreasing (LCC-D)
//     allocation, highest priority first. When no single slot fits a job
//     but the total free capacity in its window suffices, already-placed
//     jobs are shifted (compacted) to coalesce the space, preferring the
//     candidate that disturbs the fewest exactly-accurate jobs
//     (Algorithm 1 line 16). If neither case applies the system is
//     declared infeasible — the paper deliberately stops here rather than
//     search replacements, to guarantee termination.
package staticsched
