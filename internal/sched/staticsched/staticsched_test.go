package staticsched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func mkJob(task, j int, release, deadline, ideal, c timing.Time, p int) taskmodel.Job {
	theta := (deadline - release) / 4
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: j},
		Release:  release,
		Deadline: deadline,
		Ideal:    ideal,
		C:        c,
		P:        p,
		Theta:    theta,
		Vmax:     float64(p) + 1,
		Vmin:     1,
	}
}

func TestEmptyPartition(t *testing.T) {
	s, err := New(Options{}).Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 0 {
		t.Fatal("expected empty schedule")
	}
}

func TestConflictFreeAllExact(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 30, 10, 2),
		mkJob(1, 0, 0, 100, 60, 10, 1),
	}
	s, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if psi := s.Psi(); psi != 1 {
		t.Errorf("Ψ = %g, want 1 for conflict-free jobs", psi)
	}
}

func TestTwoConflicting(t *testing.T) {
	// Identical ideal intervals: one must be exact, the other displaced.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 40, 10, 2),
		mkJob(1, 0, 0, 100, 40, 10, 1),
	}
	s, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if psi := s.Psi(); psi != 0.5 {
		t.Errorf("Ψ = %g, want 0.5", psi)
	}
	// The higher-priority job (task 0, P=2) survives decomposition.
	starts := s.StartTimes()
	if starts[jobs[0].ID] != 40 {
		t.Errorf("high-priority job start = %v, want 40", starts[jobs[0].ID])
	}
	if starts[jobs[1].ID] == 40 {
		t.Error("low-priority job should have been displaced")
	}
}

func TestStarSacrificesHub(t *testing.T) {
	// Hub overlapping three satellites: sacrificing the hub alone gives
	// Ψ = 3/4.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 100, 100, 4), // hub [100,200)
		mkJob(1, 0, 0, 400, 90, 15, 3),   // [90,105)
		mkJob(2, 0, 0, 400, 140, 15, 2),  // [140,155)
		mkJob(3, 0, 0, 400, 190, 15, 1),  // [190,205)
	}
	s, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if psi := s.Psi(); psi != 0.75 {
		t.Errorf("Ψ = %g, want 0.75", psi)
	}
	starts := s.StartTimes()
	for _, idx := range []int{1, 2, 3} {
		if starts[jobs[idx].ID] != jobs[idx].Ideal {
			t.Errorf("satellite %d displaced to %v", idx, starts[jobs[idx].ID])
		}
	}
}

func TestInfeasibleOverload(t *testing.T) {
	// Three jobs of 50 in a 100-wide window cannot all fit.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 25, 50, 3),
		mkJob(1, 0, 0, 100, 25, 50, 2),
		mkJob(2, 0, 0, 100, 25, 50, 1),
	}
	_, err := New(Options{}).Schedule(jobs)
	if err == nil {
		t.Fatal("expected infeasibility")
	}
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("error %v should wrap ErrInfeasible", err)
	}
}

func TestShiftingCase2(t *testing.T) {
	// Exact jobs fragment the timeline so no single slot fits the displaced
	// job, but shifting coalesces enough space.
	//
	// Window of victim: [0, 100], C = 40.
	// Exact jobs at ideal: A [20,50), B [60,90) → slots [0,20) [50,60)
	// [90,100): none fits 40, total = 40. Compacting A,B left yields
	// [0,30)+[30,60) busy, free [60,100) — victim fits.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 200, 20, 30, 3), // A: ideal [20,50)
		mkJob(1, 0, 0, 200, 60, 30, 2), // B: ideal [60,90)
		mkJob(2, 0, 0, 100, 30, 40, 1), // victim: conflicts with A and B
	}
	s, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	starts := s.StartTimes()
	if starts[jobs[2].ID]+40 > 100 {
		t.Errorf("victim misses deadline: start %v", starts[jobs[2].ID])
	}
}

func TestNamesByOptions(t *testing.T) {
	if New(Options{}).Name() != "static" {
		t.Error("default name should be static")
	}
	n := New(Options{Policy: FirstFit, PlaceNearIdeal: true}).Name()
	if n == "static" {
		t.Error("ablation options must change the name")
	}
	if FirstFit.String() != "firstfit" || BestFit.String() != "bestfit" || LCCD.String() != "lccd" {
		t.Error("SlotPolicy.String broken")
	}
	if SlotPolicy(9).String() != "SlotPolicy(9)" {
		t.Error("unknown SlotPolicy.String broken")
	}
}

func TestPlaceNearIdealImprovesUpsilon(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 100, 40, 2),
		mkJob(1, 0, 0, 400, 110, 40, 1), // conflicts; will be displaced
	}
	base, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	near, err := New(Options{PlaceNearIdeal: true}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	curve := quality.Linear{}
	if near.Upsilon(curve) < base.Upsilon(curve) {
		t.Errorf("near-ideal Υ = %g < earliest-fit Υ = %g",
			near.Upsilon(curve), base.Upsilon(curve))
	}
	if near.Psi() != base.Psi() {
		t.Errorf("placement policy changed Ψ: %g vs %g", near.Psi(), base.Psi())
	}
}

func TestLCCDPrefersLowContentionSlot(t *testing.T) {
	// Two displaced jobs with nested windows. The first allocated (higher
	// priority) fits in both an early contested slot and a late
	// low-contention slot; LCC-D must leave the contested slot for the
	// second job whose window only covers the early slot.
	jobs := []taskmodel.Job{
		// Exact anchor occupying [50,150) to split the timeline.
		mkJob(0, 0, 0, 400, 50, 100, 4),
		// Both of these ideally start inside the anchor: displaced.
		// Narrow-window job: only [0,50) usable.
		mkJob(1, 0, 0, 90, 60, 30, 2),
		// Wide-window job: [0,50) or [150,400) usable.
		mkJob(2, 0, 0, 400, 60, 30, 3),
	}
	s, err := New(Options{}).Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	starts := s.StartTimes()
	if starts[jobs[1].ID] >= 60 {
		t.Errorf("narrow job start = %v, must use the early slot", starts[jobs[1].ID])
	}
	if starts[jobs[2].ID] < 150 {
		t.Errorf("wide job start = %v, want the late slot (LCC-D)", starts[jobs[2].ID])
	}
	// First-fit, by contrast, grabs the early slot for the wide job —
	// which still works here only because the narrow job is allocated
	// first by priority; flip priorities to demonstrate the failure mode.
	jobs[1].P, jobs[2].P = 3, 2
	ff, errFF := New(Options{Policy: FirstFit}).Schedule(jobs)
	lc, errLC := New(Options{}).Schedule(jobs)
	if errLC != nil {
		t.Fatalf("LCC-D should stay feasible: %v", errLC)
	}
	_ = ff
	_ = errFF // FirstFit may or may not survive; LCC-D must.
	if st := lc.StartTimes(); st[jobs[1].ID] >= 60 {
		t.Errorf("narrow job displaced out of its window-only slot: %v", st[jobs[1].ID])
	}
}

func TestInfeasibleIdealJoinsPending(t *testing.T) {
	// A job whose ideal start would miss its deadline (θ < C hand-built
	// case) cannot be exact but must still be scheduled.
	j := taskmodel.Job{
		ID: taskmodel.JobID{Task: 0, J: 0}, Release: 0, Deadline: 100,
		Ideal: 80, C: 40, P: 1, Theta: 0, Vmax: 2, Vmin: 1,
	}
	s, err := New(Options{}).Schedule([]taskmodel.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()[j.ID]
	if st+40 > 100 {
		t.Errorf("job still misses deadline at %v", st)
	}
	if s.Psi() != 0 {
		t.Errorf("Ψ = %g, want 0", s.Psi())
	}
}

// paperPartition generates a single-device paper-style system and returns
// its jobs.
func paperPartition(seed int64, u float64) []taskmodel.Job {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
	if err != nil {
		panic(err)
	}
	return ts.Jobs()
}

func TestPaperScaleSystemsSchedulable(t *testing.T) {
	// At moderate utilisation the static method should almost always find
	// a feasible schedule with high Ψ.
	okCount, psiSum := 0, 0.0
	trials := 20
	for seed := int64(0); seed < int64(trials); seed++ {
		jobs := paperPartition(seed, 0.4)
		s, err := New(Options{}).Schedule(jobs)
		if err != nil {
			continue
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		okCount++
		psiSum += s.Psi()
	}
	if okCount < trials*3/4 {
		t.Errorf("only %d/%d systems schedulable at U=0.4", okCount, trials)
	}
	if psiSum/float64(okCount) < 0.5 {
		t.Errorf("mean Ψ = %g, implausibly low", psiSum/float64(okCount))
	}
}

// Property: on random paper-style systems the static scheduler either
// returns ErrInfeasible or a schedule that validates, covers every job, and
// achieves Ψ at least as high as the fraction the decomposition promised
// would be achievable... (we assert the weaker invariant Ψ ∈ [0,1] plus
// validation, since shifting may trade exactness for feasibility).
func TestScheduleAlwaysValidOrInfeasible(t *testing.T) {
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%14)*0.05
		jobs := paperPartition(seed, u)
		s, err := New(Options{}).Schedule(jobs)
		if err != nil {
			return errors.Is(err, sched.ErrInfeasible)
		}
		if len(s.Entries) != len(jobs) {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		psi := s.Psi()
		return psi >= 0 && psi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every slot policy yields a valid schedule when it succeeds, and
// LCC-D Ψ is never worse than first-fit Ψ minus a tolerance on the same
// instance (they share the same decomposition, so exact sets match; only
// feasibility can differ).
func TestPoliciesAgreeOnExactSet(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		jobs := paperPartition(seed, 0.5)
		var psis []float64
		for _, pol := range []SlotPolicy{LCCD, FirstFit, BestFit} {
			s, err := New(Options{Policy: pol}).Schedule(jobs)
			if err != nil {
				continue
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, pol, err)
			}
			psis = append(psis, s.Psi())
		}
		for i := 1; i < len(psis); i++ {
			if psis[i] != psis[0] {
				// Policies may shift different exact jobs in case 2, so Ψ can
				// differ slightly; flag only gross divergence.
				if diff := psis[i] - psis[0]; diff > 0.2 || diff < -0.2 {
					t.Errorf("seed %d: Ψ diverges across policies: %v", seed, psis)
				}
			}
		}
	}
}
