package fps

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

const ms = timing.Millisecond

func mkJob(task, j int, release, deadline, ideal, c timing.Time, p int) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: j},
		Release:  release,
		Deadline: deadline,
		Ideal:    ideal,
		C:        c,
		P:        p,
		Theta:    (deadline - release) / 4,
		Vmax:     float64(p) + 1,
		Vmin:     1,
	}
}

func TestOfflinePriorityOrder(t *testing.T) {
	// Both released at 0: higher priority runs first.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 30, 10, 1),
		mkJob(1, 0, 0, 100, 40, 10, 2),
	}
	s, err := Offline{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if st[jobs[1].ID] != 0 {
		t.Errorf("high-priority start = %v, want 0", st[jobs[1].ID])
	}
	if st[jobs[0].ID] != 10 {
		t.Errorf("low-priority start = %v, want 10", st[jobs[0].ID])
	}
}

func TestOfflineNonPreemptiveBlocking(t *testing.T) {
	// Low-priority long job starts at 0; high-priority job released at 5
	// must wait (non-preemptive).
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 200, 50, 40, 1),
		mkJob(1, 0, 5, 105, 30, 10, 2),
	}
	s, err := Offline{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if st[jobs[0].ID] != 0 {
		t.Errorf("long job start = %v, want 0", st[jobs[0].ID])
	}
	if st[jobs[1].ID] != 40 {
		t.Errorf("blocked job start = %v, want 40", st[jobs[1].ID])
	}
}

func TestOfflineWorkConservingIdle(t *testing.T) {
	// Gap between releases: the device idles, then runs immediately.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 30, 10, 1),
		mkJob(1, 0, 50, 150, 80, 10, 2),
	}
	s, err := Offline{}.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StartTimes()
	if st[jobs[1].ID] != 50 {
		t.Errorf("second job start = %v, want 50 (work-conserving)", st[jobs[1].ID])
	}
}

func TestOfflineDeadlineMiss(t *testing.T) {
	// Two 60-wide jobs in the same 100-wide window.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 100, 30, 60, 2),
		mkJob(1, 0, 0, 100, 40, 60, 1),
	}
	_, err := Offline{}.Schedule(jobs)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestOfflineEmpty(t *testing.T) {
	s, err := Offline{}.Schedule(nil)
	if err != nil || len(s.Entries) != 0 {
		t.Fatal("empty partition should yield empty schedule")
	}
}

func TestAnalyzeSimpleSchedulable(t *testing.T) {
	tasks := []taskmodel.Task{
		{ID: 0, C: 10 * ms, T: 100 * ms, D: 100 * ms, P: 2, Delta: 30 * ms, Theta: 25 * ms, Vmax: 3, Vmin: 1},
		{ID: 1, C: 20 * ms, T: 200 * ms, D: 200 * ms, P: 1, Delta: 60 * ms, Theta: 50 * ms, Vmax: 2, Vmin: 1},
	}
	v := Analyze(tasks)
	if !v.Schedulable {
		t.Fatalf("verdict = %+v, want schedulable", v)
	}
	// Task 0 (high priority): B = 20ms (task 1 blocks), no hp interference:
	// R = 20 + 10 = 30ms.
	r0 := v.Responses[0]
	if r0.B != 20*ms || r0.R != 30*ms {
		t.Errorf("task 0: B=%v R=%v, want 20ms/30ms", r0.B, r0.R)
	}
	// Task 1 (low priority): B = 0, interference from task 0:
	// w = ceil((w+1)/100)·10 → w = 10, R = 30ms.
	r1 := v.Responses[1]
	if r1.B != 0 || r1.R != 30*ms {
		t.Errorf("task 1: B=%v R=%v, want 0/30ms", r1.B, r1.R)
	}
}

func TestAnalyzeBlockingInducedMiss(t *testing.T) {
	// High-priority task with tight deadline blocked by a long
	// lower-priority job: 90ms blocking + 10ms C > 60ms deadline.
	tasks := []taskmodel.Task{
		{ID: 0, C: 10 * ms, T: 60 * ms, D: 60 * ms, P: 2, Delta: 15 * ms, Theta: 15 * ms, Vmax: 3, Vmin: 1},
		{ID: 1, C: 90 * ms, T: 360 * ms, D: 360 * ms, P: 1, Delta: 90 * ms, Theta: 90 * ms, Vmax: 2, Vmin: 1},
	}
	v := Analyze(tasks)
	if v.Schedulable {
		t.Fatal("expected unschedulable verdict")
	}
	if v.Responses[0].Schedulable {
		t.Error("task 0 should fail (blocking 90ms)")
	}
	if !v.Responses[1].Schedulable {
		t.Error("task 1 should pass")
	}
}

func TestAnalyzeInterferenceAccumulates(t *testing.T) {
	// Low-priority task under two high-priority tasks.
	tasks := []taskmodel.Task{
		{ID: 0, C: 10 * ms, T: 40 * ms, D: 40 * ms, P: 3, Delta: 10 * ms, Theta: 10 * ms, Vmax: 4, Vmin: 1},
		{ID: 1, C: 10 * ms, T: 80 * ms, D: 80 * ms, P: 2, Delta: 20 * ms, Theta: 20 * ms, Vmax: 3, Vmin: 1},
		{ID: 2, C: 20 * ms, T: 160 * ms, D: 160 * ms, P: 1, Delta: 40 * ms, Theta: 40 * ms, Vmax: 2, Vmin: 1},
	}
	v := Analyze(tasks)
	if !v.Schedulable {
		t.Fatalf("verdict: %+v", v)
	}
	// Task 2: w fixed point with hp tasks 0,1:
	// w0=0 → w1 = 10+10 = 20 → w2 = ceil(21/40)·10+ceil(21/80)·10 = 20. R=40.
	if got := v.Responses[2].R; got != 40*ms {
		t.Errorf("task 2 R = %v, want 40ms", got)
	}
}

func TestOnlineSchedulerWrapsAnalysis(t *testing.T) {
	tasks := []taskmodel.Task{
		{ID: 0, C: 10 * ms, T: 60 * ms, D: 60 * ms, P: 2, Delta: 15 * ms, Theta: 15 * ms, Vmax: 3, Vmin: 1},
		{ID: 1, C: 90 * ms, T: 360 * ms, D: 360 * ms, P: 1, Delta: 90 * ms, Theta: 90 * ms, Vmax: 2, Vmin: 1},
	}
	ts := &taskmodel.TaskSet{Tasks: tasks}
	_, err := Online{Tasks: tasks}.Schedule(ts.Jobs())
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// A relaxed variant passes and yields the offline schedule.
	tasks[1].C = 20 * ms
	s, err := Online{Tasks: tasks}.Schedule(ts.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) == 0 {
		t.Fatal("expected schedule entries")
	}
}

func TestOfflinePsiNearZeroOnPaperSystems(t *testing.T) {
	// The paper reports Ψ = 0 for FPS under every configuration: a
	// work-conserving scheduler essentially never hits ideal instants.
	cfg := gen.PaperConfig()
	totalPsi := 0.0
	n := 0
	for seed := int64(0); seed < 20; seed++ {
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Offline{}.Schedule(ts.Jobs())
		if err != nil {
			continue
		}
		totalPsi += s.Psi()
		n++
	}
	if n == 0 {
		t.Fatal("no schedulable systems")
	}
	if avg := totalPsi / float64(n); avg > 0.02 {
		t.Errorf("FPS mean Ψ = %g, expected ≈ 0", avg)
	}
}

// Property: the offline simulation, when feasible, yields a valid schedule
// in which no job starts while a higher-priority job is released and
// waiting (priority correctness of the work-conserving policy).
func TestOfflineProperty(t *testing.T) {
	cfg := gen.PaperConfig()
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%15)*0.05
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
		if err != nil {
			return false
		}
		jobs := ts.Jobs()
		s, err := Offline{}.Schedule(jobs)
		if err != nil {
			return errors.Is(err, sched.ErrInfeasible)
		}
		if err := s.Validate(); err != nil {
			return false
		}
		st := s.StartTimes()
		// No job may start at time t while a higher-priority job with
		// release ≤ t has a start > t (it was waiting and should have won).
		for a := range jobs {
			for b := range jobs {
				if a == b {
					continue
				}
				sa, sb := st[jobs[a].ID], st[jobs[b].ID]
				if jobs[b].Release <= sa && sb > sa && jobs[b].P > jobs[a].P {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: whenever the online analysis accepts a task set, the offline
// simulation of the same set meets every deadline (analysis soundness
// relative to the simulator).
func TestOnlineSoundAgainstSimulation(t *testing.T) {
	cfg := gen.PaperConfig()
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%15)*0.05
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
		if err != nil {
			return false
		}
		if !Analyze(ts.Tasks).Schedulable {
			return true // nothing to check
		}
		_, err = Offline{}.Schedule(ts.Jobs())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
