// Package fps implements the paper's two fixed-priority baselines
// (Section V-A):
//
//   - "FPS-offline": a clairvoyant non-preemptive fixed-priority simulation
//     over one hyper-period — at every scheduling point the highest-priority
//     released job runs, work-conservingly and without preemption. Its
//     schedulability is the best any priority-driven runtime could achieve,
//     and the paper reports it schedules every generated system.
//   - "FPS-online": the worst-case schedulability test for non-preemptive
//     fixed-priority scheduling in the style of Davis et al.'s CAN analysis
//     (ECRTS 2011): lower-priority blocking plus higher-priority
//     interference on the queueing delay, iterated to a fixed point.
//
// Neither baseline knows about ideal start times δ, which is why the paper
// reports Ψ = 0 for FPS in Figure 6: a work-conserving scheduler starts
// jobs as early as possible rather than at their ideal instants.
package fps
