package fps

import (
	"fmt"
	"sort"

	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Offline is the clairvoyant non-preemptive FPS simulator ("FPS-offline").
type Offline struct{}

// Name implements sched.Scheduler.
func (Offline) Name() string { return "fps-offline" }

// Schedule simulates non-preemptive fixed-priority execution of the jobs of
// one device partition. At any instant the device runs the released,
// not-yet-executed job with the highest priority; ties are broken by
// earliest release, then job identity. The simulation is work-conserving:
// the device idles only when no job is released.
func (Offline) Schedule(jobs []taskmodel.Job) (*sched.Schedule, error) {
	if len(jobs) == 0 {
		return &sched.Schedule{}, nil
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Release < jobs[order[b]].Release
	})
	starts := make(quality.StartTimes, len(jobs))
	var ready []int
	next := 0
	var now timing.Time
	for done := 0; done < len(jobs); done++ {
		for next < len(order) && jobs[order[next]].Release <= now {
			ready = append(ready, order[next])
			next++
		}
		if len(ready) == 0 {
			now = jobs[order[next]].Release
			done--
			continue
		}
		pick := 0
		for i := 1; i < len(ready); i++ {
			if higherPriority(&jobs[ready[i]], &jobs[ready[pick]]) {
				pick = i
			}
		}
		idx := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		j := &jobs[idx]
		start := timing.Max(now, j.Release)
		if start+j.C > j.Deadline {
			return nil, fmt.Errorf("fps: job %v misses deadline (start %v + C %v > %v): %w",
				j.ID, start, j.C, j.Deadline, sched.ErrInfeasible)
		}
		starts[j.ID] = start
		now = start + j.C
	}
	return sched.New(jobs, starts)
}

func higherPriority(a, b *taskmodel.Job) bool {
	if a.P != b.P {
		return a.P > b.P
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	if a.ID.Task != b.ID.Task {
		return a.ID.Task < b.ID.Task
	}
	return a.ID.J < b.ID.J
}

// Epsilon is the arbitration granularity of the online analysis: a
// higher-priority job arriving strictly before the instant a job starts can
// delay it; one that arrives at or after cannot. One scheduling tick.
const Epsilon = timing.Time(1)

// Response holds the online analysis outcome for one task.
type Response struct {
	Task int
	// B is the blocking from at most one lower-priority job.
	B timing.Time
	// W is the worst-case queueing delay (fixed point).
	W timing.Time
	// R is the worst-case response time W + C, or 0 if the iteration
	// diverged past the deadline.
	R timing.Time
	// Schedulable reports R ≤ D.
	Schedulable bool
}

// Verdict is the online analysis outcome for a task set partition.
type Verdict struct {
	Responses []Response
	// Schedulable reports whether every task passed.
	Schedulable bool
}

// Analyze runs the non-preemptive fixed-priority response-time analysis
// ("FPS-online") on one device partition of the task set. tasks must have
// distinct priorities (AssignDMPO guarantees this).
func Analyze(tasks []taskmodel.Task) Verdict {
	v := Verdict{Schedulable: true}
	for i := range tasks {
		r := analyzeTask(tasks, i)
		if !r.Schedulable {
			v.Schedulable = false
		}
		v.Responses = append(v.Responses, r)
	}
	return v
}

func analyzeTask(tasks []taskmodel.Task, i int) Response {
	ti := &tasks[i]
	resp := Response{Task: ti.ID}
	// Blocking: the longest lower-priority WCET (non-preemptive device).
	for k := range tasks {
		if tasks[k].P < ti.P && tasks[k].C > resp.B {
			resp.B = tasks[k].C
		}
	}
	// Queueing delay fixed point:
	// w = B + Σ_{hp j} ceil((w + ε)/Tj)·Cj.
	w := resp.B
	for {
		next := resp.B
		for k := range tasks {
			if tasks[k].P <= ti.P {
				continue
			}
			next += ceilDiv(w+Epsilon, tasks[k].T) * tasks[k].C
		}
		if next+ti.C > ti.D {
			// Diverged past the deadline: unschedulable.
			resp.W = next
			resp.R = next + ti.C
			resp.Schedulable = false
			return resp
		}
		if next == w {
			break
		}
		w = next
	}
	resp.W = w
	resp.R = w + ti.C
	resp.Schedulable = resp.R <= ti.D
	return resp
}

func ceilDiv(a, b timing.Time) timing.Time {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Online wraps Analyze as a feasibility-only "scheduler" so experiment
// runners can treat every method uniformly. Schedule returns the offline
// simulation's schedule when the analysis passes (the run-time schedule is
// some FPS execution), and ErrInfeasible when the analysis fails — it never
// fabricates start times the analysis cannot guarantee.
type Online struct {
	// Tasks must be the tasks of the partition being scheduled; the
	// analysis is task-level and cannot be reconstructed from jobs alone
	// (job expansion loses nothing, but grouping them back is the caller's
	// knowledge).
	Tasks []taskmodel.Task
}

// Name implements sched.Scheduler.
func (Online) Name() string { return "fps-online" }

// Schedule implements sched.Scheduler; see the Online type comment.
func (o Online) Schedule(jobs []taskmodel.Job) (*sched.Schedule, error) {
	if v := Analyze(o.Tasks); !v.Schedulable {
		return nil, fmt.Errorf("fps: online analysis rejects the task set: %w", sched.ErrInfeasible)
	}
	return Offline{}.Schedule(jobs)
}
