package ga

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/exec"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Options configures the solver. PaperOptions returns the evaluation's
// settings; DefaultOptions returns a faster configuration with the same
// structure for tests and interactive use.
type Options struct {
	// Population is the number of individuals (paper: 300).
	Population int
	// Generations is the iteration budget (paper: 500).
	Generations int
	// CrossoverRate is the probability a child is produced by uniform
	// crossover rather than cloning the first parent.
	CrossoverRate float64
	// MutationRate is the per-gene probability of redrawing the start time
	// inside the timing boundary. Zero means 1/len(jobs).
	MutationRate float64
	// TournamentSize controls selection pressure.
	TournamentSize int
	// Seed drives all randomness. Determinism contract: the same Seed,
	// jobs and options produce the same Result at every Parallelism. The
	// solver never draws from one shared stream across the run — it
	// derives one sub-seed for the initial population and one per
	// generation (exec.DeriveSeed), breeds serially from the generation's
	// private source, and evaluates fitness (which consumes no
	// randomness) in parallel, so worker scheduling can neither race on
	// nor reorder random draws.
	Seed int64
	// Parallelism bounds the goroutines used for fitness evaluation;
	// <= 0 selects one worker per CPU, 1 evaluates inline. It never
	// changes the evolved front — only the wall-clock time.
	Parallelism int
	// Curve is the quality model for Υ; nil means quality.Linear.
	Curve quality.Curve
	// SeedIdeal, when true, plants one all-ideal individual in the initial
	// population; the reconfiguration of that individual is a strong
	// starting point. Disabled in the ablation experiment.
	SeedIdeal bool
	// SnapToIdeal enables the reconfiguration function's pull towards ideal
	// start instants ("tries to execute them at their ideal starting
	// times"). Disabled in the ablation experiment.
	SnapToIdeal bool
}

// PaperOptions returns the Section V-A solver configuration
// (population 300, 500 iterations).
func PaperOptions() Options {
	return Options{
		Population:     300,
		Generations:    500,
		CrossoverRate:  0.9,
		TournamentSize: 2,
		SeedIdeal:      true,
		SnapToIdeal:    true,
	}
}

// DefaultOptions returns a reduced-budget configuration that preserves the
// algorithm's structure; experiments that must finish quickly use it and
// record the deviation from the paper's budget.
func DefaultOptions() Options {
	o := PaperOptions()
	o.Population = 60
	o.Generations = 80
	return o
}

func (o *Options) normalize(n int) {
	if o.Population < 2 {
		o.Population = 2
	}
	if o.Generations < 1 {
		o.Generations = 1
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.9
	}
	if o.MutationRate <= 0 {
		if n > 0 {
			o.MutationRate = 1 / float64(n)
		} else {
			o.MutationRate = 0.05
		}
	}
	if o.TournamentSize < 2 {
		o.TournamentSize = 2
	}
	if o.Curve == nil {
		o.Curve = quality.Linear{}
	}
}

// Solution is one feasible non-dominated schedule found by the search.
type Solution struct {
	Starts  quality.StartTimes
	Psi     float64
	Upsilon float64
}

// Result is the outcome of a GA run: the non-dominated front, sorted by
// decreasing Ψ (and increasing Υ, by the definition of non-domination).
type Result struct {
	Front []Solution
}

// Best returns the front solution maximising w·Ψ + (1−w)·Υ.
func (r *Result) Best(w float64) Solution {
	best := r.Front[0]
	bestScore := w*best.Psi + (1-w)*best.Upsilon
	for _, s := range r.Front[1:] {
		if score := w*s.Psi + (1-w)*s.Upsilon; score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// BestPsi returns the front solution with maximum Ψ.
func (r *Result) BestPsi() Solution { return r.Best(1) }

// BestUpsilon returns the front solution with maximum Υ.
func (r *Result) BestUpsilon() Solution { return r.Best(0) }

// Scheduler wraps the solver behind the sched.Scheduler interface.
// Schedule returns the balanced (w = 0.5) front solution.
type Scheduler struct {
	Opts Options
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "ga" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs []taskmodel.Job) (*sched.Schedule, error) {
	res, err := Solve(jobs, s.Opts)
	if err != nil {
		return nil, err
	}
	best := res.Best(0.5)
	return sched.New(jobs, best.Starts)
}

// gene bounds for one job: the timing boundary intersected with the
// feasible window.
type bounds struct{ lo, hi timing.Time }

func geneBounds(j *taskmodel.Job) (bounds, error) {
	lo := timing.Max(j.Release, j.Ideal-j.Theta)
	hi := timing.Min(j.Ideal+j.Theta, j.LatestStart())
	if lo > hi {
		// Degenerate (θ < C hand-built sets): fall back to the window.
		lo, hi = j.Release, j.LatestStart()
		if lo > hi {
			return bounds{}, fmt.Errorf("ga: job %v can never meet its deadline: %w",
				j.ID, sched.ErrInfeasible)
		}
	}
	return bounds{lo: lo, hi: hi}, nil
}

// Seed-stream tags for exec.DeriveSeed: the initial population draws from
// stream (streamInit), generation g breeds from stream (streamGen, g).
const (
	streamInit int64 = iota
	streamGen
)

// Solve runs the GA on the jobs of one device partition and returns the
// non-dominated front. It returns ErrInfeasible if no feasible individual
// was ever found.
//
// Each generation proceeds in three deterministic phases: breed the whole
// offspring population serially from the generation's derived random
// source, score every offspring on the worker pool (scoring is a pure
// function of the genes), then apply archive offers and slot elitism
// serially in slot order. See Options.Seed for the determinism contract.
func Solve(jobs []taskmodel.Job, opts Options) (*Result, error) {
	if len(jobs) == 0 {
		return &Result{Front: []Solution{{Starts: quality.StartTimes{}, Psi: 0, Upsilon: 0}}}, nil
	}
	opts.normalize(len(jobs))
	pool := exec.New(opts.Parallelism)

	bs := make([]bounds, len(jobs))
	for i := range jobs {
		b, err := geneBounds(&jobs[i])
		if err != nil {
			return nil, err
		}
		bs[i] = b
	}

	initRNG := exec.RNG(opts.Seed, streamInit)
	pop := make([]individual, opts.Population)
	for k := range pop {
		pop[k].genes = randomGenes(initRNG, bs)
	}
	if opts.SeedIdeal {
		g := make([]timing.Time, len(jobs))
		for i := range jobs {
			g[i] = clampT(jobs[i].Ideal, bs[i].lo, bs[i].hi)
		}
		pop[0].genes = g
	}
	arch := &archive{}
	weights := make([]float64, opts.Population)
	for k := range weights {
		if opts.Population == 1 {
			weights[k] = 0.5
		} else {
			weights[k] = float64(k) / float64(opts.Population-1)
		}
	}
	// One evaluator (with its private scratch) per worker chunk, reused
	// across every generation: the eval inner loop allocates nothing, so
	// the only per-generation allocations left are the offspring genes and
	// the generation's derived random source.
	nev := pool.Workers()
	if nev > opts.Population {
		nev = opts.Population
	}
	evs := make([]evaluator, nev)
	for c := range evs {
		evs[c] = evaluator{jobs: jobs, curve: opts.Curve, snap: opts.SnapToIdeal}
	}
	evaluate := func(batch []individual) {
		evalPopulation(pool, evs, batch)
		// Archive offers run serially in slot order (determinism), and a
		// solution's StartTimes map is materialised only when the archive
		// actually accepts it — re-running the deterministic repair for the
		// rare accepted individual instead of allocating a map per
		// evaluation.
		for k := range batch {
			ind := &batch[k]
			if !ind.feasible || !arch.wouldAccept(ind.psi, ind.ups) {
				continue
			}
			arch.insert(Solution{Starts: evs[0].materialize(ind.genes), Psi: ind.psi, Upsilon: ind.ups})
		}
	}
	evaluate(pop)

	next := make([]individual, opts.Population)
	for gen := 0; gen < opts.Generations; gen++ {
		rng := exec.RNG(opts.Seed, streamGen, int64(gen))
		for k := 0; k < opts.Population; k++ {
			w := weights[k]
			p1 := tournament(rng, pop, w, opts.TournamentSize)
			p2 := tournament(rng, pop, w, opts.TournamentSize)
			child := make([]timing.Time, len(jobs))
			if rng.Float64() < opts.CrossoverRate {
				for i := range child {
					if rng.Intn(2) == 0 {
						child[i] = pop[p1].genes[i]
					} else {
						child[i] = pop[p2].genes[i]
					}
				}
			} else {
				copy(child, pop[p1].genes)
			}
			for i := range child {
				if rng.Float64() < opts.MutationRate {
					child[i] = randomGene(rng, bs[i])
				}
			}
			next[k] = individual{genes: child}
		}
		evaluate(next)
		// Slot elitism: keep the incumbent when it scores better under the
		// slot's weight.
		for k := range next {
			if scalar(&pop[k], weights[k]) > scalar(&next[k], weights[k]) {
				next[k] = pop[k]
			}
		}
		pop, next = next, pop
	}

	if len(arch.sols) == 0 {
		return nil, fmt.Errorf("ga: no feasible individual after %d generations: %w",
			opts.Generations, sched.ErrInfeasible)
	}
	sort.Slice(arch.sols, func(a, b int) bool { return arch.sols[a].Psi > arch.sols[b].Psi })
	return &Result{Front: arch.sols}, nil
}

// evalPopulation scores a population on the pool in contiguous chunks, one
// long-lived evaluator (with its private scratch) per chunk. Scoring
// consumes no randomness and each chunk writes only its own slots, so the
// chunk count cannot affect the scores.
func evalPopulation(pool exec.Pool, evs []evaluator, batch []individual) {
	chunks := len(evs)
	// Each is error-free here; ignore the nil result.
	_ = pool.Each(context.Background(), chunks, func(_ context.Context, c int) error {
		ev := &evs[c]
		lo, hi := c*len(batch)/chunks, (c+1)*len(batch)/chunks
		for k := lo; k < hi; k++ {
			batch[k].psi, batch[k].ups, batch[k].feasible = ev.eval(batch[k].genes)
		}
		return nil
	})
}

type individual struct {
	genes    []timing.Time
	psi      float64
	ups      float64
	feasible bool
}

func scalar(ind *individual, w float64) float64 {
	return w*ind.psi + (1-w)*ind.ups
}

func tournament(rng *rand.Rand, pop []individual, w float64, size int) int {
	best := rng.Intn(len(pop))
	for t := 1; t < size; t++ {
		c := rng.Intn(len(pop))
		if scalar(&pop[c], w) > scalar(&pop[best], w) {
			best = c
		}
	}
	return best
}

func randomGenes(rng *rand.Rand, bs []bounds) []timing.Time {
	g := make([]timing.Time, len(bs))
	for i := range bs {
		g[i] = randomGene(rng, bs[i])
	}
	return g
}

func randomGene(rng *rand.Rand, b bounds) timing.Time {
	return b.lo + timing.Time(rng.Int63n(int64(b.hi-b.lo)+1))
}

func clampT(v, lo, hi timing.Time) timing.Time {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// evaluator runs the reconfiguration function and scores individuals. Its
// scratch slices and comparator state live for the whole Solve, so the eval
// inner loop performs no heap allocation: start times stay in an
// index-keyed slice (starts[i] belongs to jobs[i]) and only archive-bound
// individuals ever pay for a StartTimes map (materialize).
type evaluator struct {
	jobs  []taskmodel.Job
	curve quality.Curve
	snap  bool
	// scratch reused across evaluations
	order  []int
	starts []timing.Time
	ready  []int
	sorter layoutSorter
	// The FPS fallback ignores the genes, so its schedule — and whether one
	// exists at all — is a property of the job set alone: simulate once and
	// memoise the verdict, the starts and the scores.
	fpsDone   bool
	fpsOK     bool
	fpsStarts []timing.Time
	fpsPsi    float64
	fpsUps    float64
}

// layoutSorter is the pre-allocated comparator state for the gene-order
// sort: a sort.Interface over the evaluator's order scratch, so sorting
// captures no closure and allocates nothing per evaluation.
type layoutSorter struct {
	jobs  []taskmodel.Job
	genes []timing.Time
	order []int
}

func (s *layoutSorter) Len() int      { return len(s.order) }
func (s *layoutSorter) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
func (s *layoutSorter) Less(a, b int) bool {
	ja, jb := &s.jobs[s.order[a]], &s.jobs[s.order[b]]
	ga, gb := s.genes[s.order[a]], s.genes[s.order[b]]
	if ga != gb {
		return ga < gb
	}
	if ja.P != jb.P {
		return ja.P > jb.P
	}
	if ja.ID.Task != jb.ID.Task {
		return ja.ID.Task < jb.ID.Task
	}
	return ja.ID.J < jb.ID.J
}

// eval repairs the genes into a feasible layout and returns (Ψ, Υ, true);
// infeasible layouts return (−1, −1, false).
//
// Repair runs in two stages. Stage one is the paper's reconfiguration:
// lay the jobs out in gene order, delaying to resolve overlaps and
// snapping to ideal instants when possible. When that order busts a
// deadline, stage two falls back to a work-conserving fixed-priority
// simulation that ignores the genes entirely: it produces a feasible
// schedule whenever priority-driven execution can meet the deadlines, so a
// crowded system degrades the individual's objectives instead of emptying
// the archive. Stage two is what lets the GA's schedulability track the
// clairvoyant FPS bound instead of collapsing (Figure 5's ordering).
func (e *evaluator) eval(genes []timing.Time) (float64, float64, bool) {
	if e.layout(genes) {
		return e.score(e.starts)
	}
	if e.fps() {
		return e.fpsPsi, e.fpsUps, true
	}
	return -1, -1, false
}

func (e *evaluator) score(starts []timing.Time) (float64, float64, bool) {
	psi := quality.PsiIndexed(e.jobs, starts)
	ups, err := quality.UpsilonIndexed(e.jobs, starts, e.curve)
	if err != nil {
		panic(err)
	}
	return psi, ups, true
}

// materialize re-runs the deterministic repair for genes and returns the
// start times as the public map representation. Only archive-accepted
// individuals reach it, keeping the map allocation off the eval hot path.
func (e *evaluator) materialize(genes []timing.Time) quality.StartTimes {
	var src []timing.Time
	switch {
	case e.layout(genes):
		src = e.starts
	case e.fps():
		src = e.fpsStarts
	default:
		panic("ga: materialize called for an infeasible individual")
	}
	m := make(quality.StartTimes, len(e.jobs))
	for i := range e.jobs {
		m[e.jobs[i].ID] = src[i]
	}
	return m
}

// layout performs the gene-order repair pass (ties: higher priority
// first, as footnote 2 prescribes), writing the schedule into e.starts.
// It returns false when the order misses a deadline.
func (e *evaluator) layout(genes []timing.Time) bool {
	n := len(e.jobs)
	if e.order == nil {
		e.order = make([]int, n)
		e.starts = make([]timing.Time, n)
	}
	order := e.order
	for i := range order {
		order[i] = i
	}
	e.sorter = layoutSorter{jobs: e.jobs, genes: genes, order: order}
	sort.Stable(&e.sorter)
	var cursor timing.Time
	for oi, idx := range order {
		j := &e.jobs[idx]
		start := genes[idx]
		if start < j.Release {
			start = j.Release
		}
		if start < cursor {
			start = cursor
		}
		if e.snap && start <= j.Ideal {
			// Pull towards the ideal instant when that cannot reorder the
			// layout: the next job's gene must not want the gap.
			snapped := j.Ideal
			if oi+1 < len(order) {
				if nxt := genes[order[oi+1]]; snapped+j.C > nxt {
					snapped = start
				}
			}
			start = snapped
		}
		if start+j.C > j.Deadline {
			return false
		}
		e.starts[idx] = start
		cursor = start + j.C
	}
	return true
}

// fps returns whether the fixed-priority fallback schedule exists, running
// the simulation on first use and serving the memo afterwards.
func (e *evaluator) fps() bool {
	if !e.fpsDone {
		e.fpsDone = true
		e.fpsOK = e.simulateFPS()
		if e.fpsOK {
			e.fpsPsi, e.fpsUps, _ = e.score(e.fpsStarts)
		}
	}
	return e.fpsOK
}

// simulateFPS is the repair fallback: a work-conserving non-preemptive
// fixed-priority simulation over the partition's jobs (the discipline the
// FPS-offline baseline uses), writing the schedule into e.fpsStarts. It
// returns false when even that misses a deadline. The genes play no role,
// so every individual repaired this way shares the same (feasible,
// low-quality) point — selection then pulls the population back towards
// gene-feasible regions.
func (e *evaluator) simulateFPS() bool {
	n := len(e.jobs)
	if e.order == nil {
		e.order = make([]int, n)
		e.starts = make([]timing.Time, n)
	}
	if e.fpsStarts == nil {
		e.fpsStarts = make([]timing.Time, n)
	}
	order := e.order
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return e.jobs[order[a]].Release < e.jobs[order[b]].Release
	})
	ready := e.ready[:0]
	next := 0
	var now timing.Time
	for done := 0; done < n; done++ {
		for next < n && e.jobs[order[next]].Release <= now {
			ready = append(ready, order[next])
			next++
		}
		if len(ready) == 0 {
			now = e.jobs[order[next]].Release
			done--
			continue
		}
		pick := 0
		for i := 1; i < len(ready); i++ {
			ja, jb := &e.jobs[ready[i]], &e.jobs[ready[pick]]
			if ja.P > jb.P || (ja.P == jb.P && ja.Release < jb.Release) {
				pick = i
			}
		}
		idx := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		j := &e.jobs[idx]
		start := timing.Max(now, j.Release)
		if start+j.C > j.Deadline {
			e.ready = ready[:0]
			return false
		}
		e.fpsStarts[idx] = start
		now = start + j.C
	}
	e.ready = ready[:0]
	return true
}

// archive keeps the non-dominated (Ψ, Υ) solutions seen so far.
type archive struct {
	sols []Solution
}

// wouldAccept reports whether a feasible individual scoring (psi, ups)
// would enter the archive: true unless some member dominates or equals it.
func (a *archive) wouldAccept(psi, ups float64) bool {
	for i := range a.sols {
		s := &a.sols[i]
		if s.Psi >= psi && s.Upsilon >= ups {
			return false // dominated or duplicate
		}
	}
	return true
}

// insert adds an accepted solution, pruning members it now dominates.
// Callers must have checked wouldAccept first.
func (a *archive) insert(sol Solution) {
	kept := a.sols[:0]
	for i := range a.sols {
		s := a.sols[i]
		if sol.Psi >= s.Psi && sol.Upsilon >= s.Upsilon {
			continue // now dominated
		}
		kept = append(kept, s)
	}
	a.sols = append(kept, sol)
}
