// Package ga implements the paper's second scheduling method
// (Section III-B): a multi-objective genetic algorithm over the per-job
// start times κ that maximises both Ψ (the fraction of exactly
// timing-accurate jobs) and Υ (the normalised total quality).
//
// The encoding and operators follow the paper:
//
//   - the chromosome is the vector of start times κi^j, one gene per job;
//   - Constraint 1 (window containment) is enforced structurally: genes are
//     initialised and mutated inside the timing boundary
//     [Ti·j + δi − θi, Ti·j + δi + θi], clamped to the feasible window;
//   - Constraint 2 (non-overlap) is enforced by a reconfiguration function
//     applied before the objectives: jobs are laid out in gene order,
//     overlaps are resolved by delaying later jobs while preserving the
//     order (ties broken by priority), and each job is snapped to its ideal
//     instant when that is possible without disturbing the order;
//   - an individual that is infeasible after reconfiguration scores −1 on
//     both objectives;
//   - the population spreads its objective weights uniformly from (1.0, 0)
//     to (0, 1.0) so different slots press towards different ends of the
//     Pareto front;
//   - all non-dominated solutions found during the search are returned.
package ga
