package ga

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sched/staticsched"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func mkJob(task, j int, release, deadline, ideal, c timing.Time, p int) taskmodel.Job {
	return taskmodel.Job{
		ID:       taskmodel.JobID{Task: task, J: j},
		Release:  release,
		Deadline: deadline,
		Ideal:    ideal,
		C:        c,
		P:        p,
		Theta:    (deadline - release) / 4,
		Vmax:     float64(p) + 1,
		Vmin:     1,
	}
}

func testOpts(seed int64) Options {
	o := DefaultOptions()
	o.Population = 24
	o.Generations = 30
	o.Seed = seed
	return o
}

func TestEmptyPartition(t *testing.T) {
	res, err := Solve(nil, testOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 1 {
		t.Fatalf("front = %v", res.Front)
	}
}

func TestConflictFreeReachesOptimal(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 200, 50, 10, 2),
		mkJob(1, 0, 0, 200, 120, 10, 1),
	}
	res, err := Solve(jobs, testOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestPsi()
	if best.Psi != 1 || best.Upsilon != 1 {
		t.Errorf("best = (%g, %g), want (1,1)", best.Psi, best.Upsilon)
	}
}

func TestConflictingJobsTradeoff(t *testing.T) {
	// Two jobs with identical ideals: at most one can be exact.
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 100, 20, 2),
		mkJob(1, 0, 0, 400, 100, 20, 1),
	}
	res, err := Solve(jobs, testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestPsi()
	if best.Psi != 0.5 {
		t.Errorf("best Ψ = %g, want 0.5", best.Psi)
	}
	// The displaced job should stay near the boundary, keeping Υ well
	// above the minimum-quality floor.
	if best.Upsilon < 0.6 {
		t.Errorf("best-Ψ solution Υ = %g, suspiciously low", best.Upsilon)
	}
}

func TestFrontIsNonDominated(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 400, 100, 30, 3),
		mkJob(1, 0, 0, 400, 110, 30, 2),
		mkJob(2, 0, 0, 400, 120, 30, 1),
	}
	res, err := Solve(jobs, testOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Front {
		for k := range res.Front {
			if i == k {
				continue
			}
			a, b := res.Front[i], res.Front[k]
			if a.Psi >= b.Psi && a.Upsilon >= b.Upsilon && (a.Psi > b.Psi || a.Upsilon > b.Upsilon) {
				t.Fatalf("front member %d dominates member %d", i, k)
			}
		}
	}
	// Front sorted by decreasing Ψ.
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i-1].Psi < res.Front[i].Psi {
			t.Fatal("front not sorted by Ψ")
		}
	}
}

func TestAllSolutionsFeasible(t *testing.T) {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(5)), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := ts.Jobs()
	res, err := Solve(jobs, testOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range res.Front {
		if _, err := sched.New(jobs, sol.Starts); err != nil {
			t.Fatalf("front solution (Ψ=%g, Υ=%g) infeasible: %v", sol.Psi, sol.Upsilon, err)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := gen.PaperConfig()
	ts, _ := cfg.System(rand.New(rand.NewSource(7)), 0.4)
	jobs := ts.Jobs()
	a, err := Solve(jobs, testOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(jobs, testOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if a.Front[i].Psi != b.Front[i].Psi || a.Front[i].Upsilon != b.Front[i].Upsilon {
			t.Fatalf("front %d differs", i)
		}
	}
}

func TestGeneBoundsRespectTimingBoundary(t *testing.T) {
	j := mkJob(0, 0, 1000, 2000, 1400, 50, 1)
	b, err := geneBounds(&j)
	if err != nil {
		t.Fatal(err)
	}
	if b.lo != 1400-j.Theta {
		t.Errorf("lo = %v, want %v", b.lo, 1400-j.Theta)
	}
	if b.hi != 1400+j.Theta {
		t.Errorf("hi = %v, want %v", b.hi, 1400+j.Theta)
	}
	// Degenerate job: C bigger than boundary allows → window fallback.
	j2 := taskmodel.Job{
		ID: taskmodel.JobID{Task: 1, J: 0}, Release: 0, Deadline: 100,
		Ideal: 95, C: 60, Theta: 2, Vmax: 2, Vmin: 1,
	}
	b2, err := geneBounds(&j2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.lo != 0 || b2.hi != 40 {
		t.Errorf("fallback bounds = [%v, %v], want [0, 40]", b2.lo, b2.hi)
	}
	// Impossible job: C > D.
	j3 := taskmodel.Job{
		ID: taskmodel.JobID{Task: 2, J: 0}, Release: 0, Deadline: 50,
		Ideal: 10, C: 60, Theta: 5, Vmax: 2, Vmin: 1,
	}
	if _, err := geneBounds(&j3); !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSchedulerInterface(t *testing.T) {
	jobs := []taskmodel.Job{
		mkJob(0, 0, 0, 200, 50, 10, 2),
		mkJob(1, 0, 0, 200, 120, 10, 1),
	}
	s := &Scheduler{Opts: testOpts(11)}
	if s.Name() != "ga" {
		t.Error("name")
	}
	schedule, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBestSelectors(t *testing.T) {
	r := &Result{Front: []Solution{
		{Psi: 0.9, Upsilon: 0.5},
		{Psi: 0.5, Upsilon: 0.9},
		{Psi: 0.7, Upsilon: 0.75},
	}}
	if got := r.BestPsi(); got.Psi != 0.9 {
		t.Errorf("BestPsi = %+v", got)
	}
	if got := r.BestUpsilon(); got.Upsilon != 0.9 {
		t.Errorf("BestUpsilon = %+v", got)
	}
	if got := r.Best(0.5); got.Psi != 0.7 {
		t.Errorf("Best(0.5) = %+v", got)
	}
}

func TestGAUpsilonBeatsStaticOnPaperSystems(t *testing.T) {
	// Figure 7's qualitative claim: the GA's best-Υ solution matches or
	// beats the static heuristic's Υ (whose sacrificed jobs land at
	// schedulability-driven positions). Averaged over a few systems to
	// damp stochastic jitter.
	cfg := gen.PaperConfig()
	var gaSum, stSum float64
	n := 0
	for seed := int64(0); seed < 6; seed++ {
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		jobs := ts.Jobs()
		st, err := staticsched.New(staticsched.Options{}).Schedule(jobs)
		if err != nil {
			continue
		}
		opts := DefaultOptions()
		opts.Seed = seed
		res, err := Solve(jobs, opts)
		if err != nil {
			continue
		}
		gaSum += res.BestUpsilon().Upsilon
		stSum += st.Upsilon(quality.Linear{})
		n++
	}
	if n < 3 {
		t.Fatalf("too few feasible systems: %d", n)
	}
	if gaSum < stSum-0.05*float64(n) {
		t.Errorf("mean GA Υ %.3f < mean static Υ %.3f", gaSum/float64(n), stSum/float64(n))
	}
}

// Property: every front solution satisfies Constraint 1 and 2, all genes
// lie in the timing boundary or window, and metrics are within [0, 1].
func TestSolveProperty(t *testing.T) {
	cfg := gen.PaperConfig()
	f := func(seed int64, uRaw uint8) bool {
		u := 0.2 + float64(uRaw%14)*0.05
		ts, err := cfg.System(rand.New(rand.NewSource(seed)), u)
		if err != nil {
			return false
		}
		jobs := ts.Jobs()
		opts := testOpts(seed)
		opts.Generations = 10
		res, err := Solve(jobs, opts)
		if err != nil {
			return errors.Is(err, sched.ErrInfeasible)
		}
		for _, sol := range res.Front {
			if sol.Psi < 0 || sol.Psi > 1 || sol.Upsilon < 0 || sol.Upsilon > 1+1e-9 {
				return false
			}
			if _, err := sched.New(jobs, sol.Starts); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSolveParallelismInvariant pins the determinism contract on
// Options.Seed: the evolved front — values and Starts alike — is
// deep-equal at parallelism 1, 2 and NumCPU.
func TestSolveParallelismInvariant(t *testing.T) {
	cfg := gen.PaperConfig()
	for _, u := range []float64{0.4, 0.7} {
		ts, err := cfg.System(rand.New(rand.NewSource(13)), u)
		if err != nil {
			t.Fatal(err)
		}
		jobs := ts.Jobs()
		opts := testOpts(17)
		opts.Parallelism = 1
		ref, err := Solve(jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, runtime.NumCPU()} {
			opts.Parallelism = par
			got, err := Solve(jobs, opts)
			if err != nil {
				t.Fatalf("u=%g parallelism %d: %v", u, par, err)
			}
			if !reflect.DeepEqual(ref.Front, got.Front) {
				t.Errorf("u=%g: front at parallelism %d differs from serial front", u, par)
			}
		}
	}
}
