package ga

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TestSolveAllocationBudget guards the allocation-free fitness inner
// loop: a benchmark-shaped Solve must stay far below the map-keyed
// implementation's cost (~2000 allocations per solve before the
// index-keyed evaluator landed). The budget leaves headroom over the
// measured ~280 — population/front bookkeeping allocates legitimately —
// while still failing loudly if per-generation map churn creeps back in.
func TestSolveAllocationBudget(t *testing.T) {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := ts.Jobs()
	opts := DefaultOptions()
	opts.Population = 20
	opts.Generations = 10
	seed := int64(0)
	allocs := testing.AllocsPerRun(5, func() {
		opts.Seed = seed
		seed++
		if _, err := Solve(jobs, opts); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 700
	if allocs > budget {
		t.Fatalf("Solve allocated %.0f times per run, budget %d — the hot path has regressed", allocs, budget)
	}
}
