package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/quality"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// ErrInfeasible is returned by schedulers that cannot produce a feasible
// schedule for the given jobs. Callers distinguish it from programming
// errors with errors.Is.
var ErrInfeasible = errors.New("sched: no feasible schedule")

// Entry is one scheduled job execution: job λi^j starts at Start and
// occupies the device for Job.C.
type Entry struct {
	Job   taskmodel.Job
	Start timing.Time
}

// End returns the finish instant of the entry.
func (e *Entry) End() timing.Time { return e.Start + e.Job.C }

// Schedule is an explicit non-preemptive schedule for one device partition:
// every job of the partition with its decided start time κ, ordered by
// start time.
type Schedule struct {
	Entries []Entry
}

// New builds a Schedule from jobs and their start times, sorts it, and
// validates it. It returns an error if any job lacks a start time or the
// result violates Constraint 1 or 2.
func New(jobs []taskmodel.Job, starts quality.StartTimes) (*Schedule, error) {
	s := &Schedule{Entries: make([]Entry, 0, len(jobs))}
	for i := range jobs {
		k, ok := starts[jobs[i].ID]
		if !ok {
			return nil, fmt.Errorf("sched: job %v has no start time", jobs[i].ID)
		}
		s.Entries = append(s.Entries, Entry{Job: jobs[i], Start: k})
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Sort orders entries by start time, breaking ties by priority (higher
// first) and then job ID for determinism. Two entries can only share a
// start time transiently, before validation rejects the overlap, unless one
// of them has zero cost.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Entries, func(a, b int) bool {
		ea, eb := &s.Entries[a], &s.Entries[b]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		if ea.Job.P != eb.Job.P {
			return ea.Job.P > eb.Job.P
		}
		if ea.Job.ID.Task != eb.Job.ID.Task {
			return ea.Job.ID.Task < eb.Job.ID.Task
		}
		return ea.Job.ID.J < eb.Job.ID.J
	})
}

// Validate checks Constraint 1 (window containment), Constraint 2
// (non-overlap), single-device membership, and that no job appears twice.
// Entries must already be sorted by start time.
func (s *Schedule) Validate() error {
	seen := make(map[taskmodel.JobID]bool, len(s.Entries))
	for i := range s.Entries {
		e := &s.Entries[i]
		if seen[e.Job.ID] {
			return fmt.Errorf("sched: job %v scheduled twice", e.Job.ID)
		}
		seen[e.Job.ID] = true
		if e.Start < e.Job.Release {
			return fmt.Errorf("sched: job %v starts at %v before release %v",
				e.Job.ID, e.Start, e.Job.Release)
		}
		if e.End() > e.Job.Deadline {
			return fmt.Errorf("sched: job %v ends at %v after deadline %v (%w)",
				e.Job.ID, e.End(), e.Job.Deadline, ErrInfeasible)
		}
		if i > 0 {
			prev := &s.Entries[i-1]
			if prev.Job.Device != e.Job.Device {
				return fmt.Errorf("sched: schedule mixes devices %d and %d",
					prev.Job.Device, e.Job.Device)
			}
			if e.Start < prev.Start {
				return fmt.Errorf("sched: entries not sorted at index %d", i)
			}
			if e.Start < prev.End() {
				return fmt.Errorf("sched: jobs %v and %v overlap on device %d ([%v,%v) vs [%v,%v))",
					prev.Job.ID, e.Job.ID, e.Job.Device,
					prev.Start, prev.End(), e.Start, e.End())
			}
		}
	}
	return nil
}

// StartTimes returns the κ map of the schedule.
func (s *Schedule) StartTimes() quality.StartTimes {
	out := make(quality.StartTimes, len(s.Entries))
	for i := range s.Entries {
		out[s.Entries[i].Job.ID] = s.Entries[i].Start
	}
	return out
}

// Jobs returns the jobs in entry order.
func (s *Schedule) Jobs() []taskmodel.Job {
	out := make([]taskmodel.Job, len(s.Entries))
	for i := range s.Entries {
		out[i] = s.Entries[i].Job
	}
	return out
}

// Psi returns the fraction of exactly-accurate jobs (Equation 1).
func (s *Schedule) Psi() float64 {
	psi, err := quality.Psi(s.Jobs(), s.StartTimes())
	if err != nil {
		// Unreachable: StartTimes is built from the same entries.
		panic(err)
	}
	return psi
}

// Upsilon returns the normalised quality (Equation 2) under the curve.
func (s *Schedule) Upsilon(curve quality.Curve) float64 {
	ups, err := quality.Upsilon(s.Jobs(), s.StartTimes(), curve)
	if err != nil {
		panic(err)
	}
	return ups
}

// Makespan returns the finish instant of the last entry, or 0 for an empty
// schedule.
func (s *Schedule) Makespan() timing.Time {
	if len(s.Entries) == 0 {
		return 0
	}
	last := &s.Entries[len(s.Entries)-1]
	return last.End()
}

// ResponseBound returns the task's worst-case release-relative completion
// bound: the maximum of (finish − release) over all the task's jobs in
// the schedule. This per-period bound — not an absolute instant — is the
// value Section III-C proposes exporting to higher-level (e.g. NoC
// end-to-end) schedulability analyses, where it composes with per-period
// network bounds. The boolean reports whether the task has any job in the
// schedule. For the absolute finish instant of the whole schedule, see
// Makespan.
func (s *Schedule) ResponseBound(task int) (timing.Time, bool) {
	var worst timing.Time
	found := false
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Job.ID.Task != task {
			continue
		}
		found = true
		if rel := e.End() - e.Job.Release; rel > worst {
			worst = rel
		}
	}
	return worst, found
}

// FinishTime returns ResponseBound(task).
//
// Deprecated: the name suggested an absolute "latest finish instant", but
// the value has always been the release-relative per-period response
// bound. Use ResponseBound.
func (s *Schedule) FinishTime(task int) (timing.Time, bool) { return s.ResponseBound(task) }

// Scheduler produces a schedule for the jobs of one device partition.
// Implementations must be deterministic given their configuration (any
// randomness must come from an injected seed or *rand.Rand), and Schedule
// must be safe for concurrent calls on distinct job slices —
// ScheduleAllParallel runs one call per device partition across a worker
// pool.
type Scheduler interface {
	// Name identifies the method in experiment output ("static", "GA", ...).
	Name() string
	// Schedule computes start times for the given jobs. It returns
	// ErrInfeasible (possibly wrapped) when no feasible schedule is found.
	Schedule(jobs []taskmodel.Job) (*Schedule, error)
}

// DeviceSchedules maps each device partition to its schedule.
type DeviceSchedules map[taskmodel.DeviceID]*Schedule

// ScheduleAll runs the scheduler independently on every device partition of
// the task set (the fully-partitioned model), one partition at a time. It
// fails with the first infeasible partition in device order.
func ScheduleAll(ts *taskmodel.TaskSet, s Scheduler) (DeviceSchedules, error) {
	return ScheduleAllParallel(ts, s, 1)
}

// ScheduleAllParallel is ScheduleAll with the device partitions scheduled
// concurrently on a bounded worker pool (parallelism <= 0 selects one
// worker per CPU). The scheduling model is fully partitioned — partitions
// share no state — so this is safe by construction, and because results
// and errors are collected in device order the outcome is identical to
// ScheduleAll at every parallelism level.
func ScheduleAllParallel(ts *taskmodel.TaskSet, s Scheduler, parallelism int) (DeviceSchedules, error) {
	devs := ts.Devices()
	parts := ts.JobsByDevice()
	scheds, err := exec.Map(exec.New(parallelism), context.Background(), len(devs),
		func(_ context.Context, i int) (*Schedule, error) {
			sc, err := s.Schedule(parts[devs[i]])
			if err != nil {
				return nil, fmt.Errorf("device %d: %w", devs[i], err)
			}
			return sc, nil
		})
	if err != nil {
		return nil, err
	}
	out := make(DeviceSchedules, len(devs))
	for i, dev := range devs {
		out[dev] = scheds[i]
	}
	return out, nil
}

// Metrics aggregates Ψ and Υ across all device partitions. Partitions are
// visited in device order: the quality sums are floating-point, so a fixed
// summation order is what keeps the value reproducible bit for bit.
func (ds DeviceSchedules) Metrics(curve quality.Curve) (psi, upsilon float64) {
	devs := make([]taskmodel.DeviceID, 0, len(ds))
	for dev := range ds {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(a, b int) bool { return devs[a] < devs[b] })
	var jobs []taskmodel.Job
	starts := quality.StartTimes{}
	for _, dev := range devs {
		s := ds[dev]
		jobs = append(jobs, s.Jobs()...)
		for id, k := range s.StartTimes() {
			starts[id] = k
		}
	}
	p, err := quality.Psi(jobs, starts)
	if err != nil {
		panic(err)
	}
	u, err := quality.Upsilon(jobs, starts, curve)
	if err != nil {
		panic(err)
	}
	return p, u
}

// FreeSlot is a maximal idle interval [Start, End) on a device timeline.
type FreeSlot struct {
	Start, End timing.Time
}

// Len returns the slot capacity.
func (f FreeSlot) Len() timing.Time { return f.End - f.Start }

// FreeSlots returns the maximal idle intervals of the schedule within
// [0, horizon): every returned slot satisfies 0 <= Start < End <= horizon.
// Entries at or past the horizon only bound the idle time before them —
// they never produce slots outside the window. Entries must be sorted and
// non-overlapping (i.e. the schedule must be valid).
func (s *Schedule) FreeSlots(horizon timing.Time) []FreeSlot {
	var out []FreeSlot
	cursor := timing.Time(0)
	for i := range s.Entries {
		if cursor >= horizon {
			return out
		}
		e := &s.Entries[i]
		if start := min(e.Start, horizon); start > cursor {
			out = append(out, FreeSlot{Start: cursor, End: start})
		}
		if end := e.End(); end > cursor {
			cursor = end
		}
	}
	if cursor < horizon {
		out = append(out, FreeSlot{Start: cursor, End: horizon})
	}
	return out
}

// String renders a compact single-line summary, useful in test failures.
func (s *Schedule) String() string {
	if len(s.Entries) == 0 {
		return "schedule{}"
	}
	out := "schedule{"
	for i := range s.Entries {
		e := &s.Entries[i]
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v@%v", e.Job.ID, e.Start)
	}
	return out + "}"
}
