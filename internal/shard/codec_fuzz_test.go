package shard

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinary hammers the v2 binary container decoder with
// arbitrary bytes. The contract under fuzzing: decoding never panics,
// never allocates past the input size (the declared-count bounds), and
// anything it accepts is a well-formed File that round-trips — encode
// it back to binary and decode again, and both the re-encoded bytes and
// the rendered v1 JSON are stable.
func FuzzDecodeBinary(f *testing.F) {
	// Seed with a real encoded file plus targeted mutants: truncations,
	// a flipped magic byte, a corrupt header, and a huge declared count.
	valid, err := codecTestFile().EncodeBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(binaryMagic)])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flipped := append([]byte(nil), valid...)
	flipped[0] ^= 0xff
	f.Add(flipped)
	corrupt := append([]byte(nil), valid...)
	corrupt[len(binaryMagic)+1] ^= 0xff
	f.Add(corrupt)
	huge := &ColumnWriter{}
	huge.Blob([]byte(`{"version":1,"selection":"x","shards":1,"shard_index":0,` +
		`"runs":[{"experiment":"x","grid":{"points":4096,"systems":4096},"cells":16777216,"column":"json"}]}`))
	huge.Blob(nil)
	f.Add(append(append([]byte(nil), binaryMagic[:]...), huge.Bytes()...))
	f.Add([]byte(nil))
	f.Add(binaryMagic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		if !IsBinary(data) {
			return // the JSON path has its own decoder; fuzz the binary one
		}
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input: the decoded file must re-encode and decode to a
		// fixed point, and its v1 render must be reproducible.
		bin, err := decoded.EncodeBinary()
		if err != nil {
			t.Fatalf("decoded file does not re-encode: %v", err)
		}
		again, err := Decode(bin)
		if err != nil {
			t.Fatalf("re-encoded file does not decode: %v", err)
		}
		bin2, err := again.EncodeBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bin, bin2) {
			t.Fatal("re-encoding an accepted file is not a fixed point")
		}
		js1, err := decoded.Encode()
		if err != nil {
			t.Fatalf("decoded file does not render as v1 JSON: %v", err)
		}
		js2, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js1, js2) {
			t.Fatal("v1 render changed across a binary round trip")
		}
	})
}
