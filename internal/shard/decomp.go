package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Decomposition: the pluggable policy that assigns every cell of a
// selection's grids to one of a number of parts. The classic round-robin
// (point·systems + system) mod shards split is one implementation; the
// cost-packed split used by balanced dispatch is another. A decomposition
// only decides *placement* — cells are location-independent by
// construction, so the merged cover is byte-identical to the unsharded
// run for every decomposition.

// Decomposition assigns each global cell index of each run's grid to a
// part in [0, parts).
type Decomposition interface {
	// Name identifies the decomposition ("roundrobin", "cost").
	Name() string
	// Split returns assign[ri][g] = part for run ri's global cell index
	// g, with 0 <= part < parts. Every cell is assigned; parts may end
	// up empty (a valid degenerate split).
	Split(grids []Grid, parts int) ([][]int, error)
}

// RoundRobin is the classic decomposition: global cell index g of every
// run goes to part g mod parts — exactly the (Shards, Index) ownership
// rule of regular shard files.
type RoundRobin struct{}

// Name implements Decomposition.
func (RoundRobin) Name() string { return "roundrobin" }

// Split implements Decomposition.
func (RoundRobin) Split(grids []Grid, parts int) ([][]int, error) {
	if parts < 1 {
		return nil, fmt.Errorf("shard: decomposition needs >= 1 part, got %d", parts)
	}
	assign := make([][]int, len(grids))
	for ri, g := range grids {
		if err := g.validate(); err != nil {
			return nil, err
		}
		a := make([]int, g.Cells())
		for i := range a {
			a[i] = i % parts
		}
		assign[ri] = a
	}
	return assign, nil
}

// CostPacked partitions cells into contiguous blocks of near-equal
// predicted cost: walking runs and cells in canonical grid order, cell c
// with cumulative preceding cost w goes to part floor(w·parts/total).
// With uniform costs this degenerates to equal contiguous chunks. The
// split is deterministic in its inputs, so a re-plan over the same cost
// model reproduces the same batches.
type CostPacked struct {
	// Costs[ri][g] is the predicted cost of run ri's global cell index
	// g, in arbitrary units (only ratios matter). Must be non-negative
	// and shaped exactly like the grids passed to Split. An all-zero
	// model degenerates to uniform costs.
	Costs [][]float64
}

// Name implements Decomposition.
func (CostPacked) Name() string { return "cost" }

// Split implements Decomposition.
func (d CostPacked) Split(grids []Grid, parts int) ([][]int, error) {
	if parts < 1 {
		return nil, fmt.Errorf("shard: decomposition needs >= 1 part, got %d", parts)
	}
	if len(d.Costs) != len(grids) {
		return nil, fmt.Errorf("shard: cost model covers %d runs, grids have %d", len(d.Costs), len(grids))
	}
	total := 0.0
	for ri, g := range grids {
		if err := g.validate(); err != nil {
			return nil, err
		}
		if len(d.Costs[ri]) != g.Cells() {
			return nil, fmt.Errorf("shard: cost model run %d covers %d cells, grid holds %d",
				ri, len(d.Costs[ri]), g.Cells())
		}
		for gi, c := range d.Costs[ri] {
			if c < 0 {
				return nil, fmt.Errorf("shard: negative cost %v for run %d cell %d", c, ri, gi)
			}
			total += c
		}
	}
	uniform := total == 0
	if uniform {
		for _, g := range grids {
			total += float64(g.Cells())
		}
	}
	assign := make([][]int, len(grids))
	cum := 0.0
	for ri, g := range grids {
		a := make([]int, g.Cells())
		for gi := range a {
			part := int(cum * float64(parts) / total)
			if part >= parts {
				part = parts - 1
			}
			a[gi] = part
			if uniform {
				cum++
			} else {
				cum += d.Costs[ri][gi]
			}
		}
		assign[ri] = a
	}
	return assign, nil
}

// FormatRanges renders a set of global cell indices compactly:
// "0-4,7,9-12". The indices are de-duplicated and sorted; an empty set
// renders as "".
func FormatRanges(cells []int) string {
	if len(cells) == 0 {
		return ""
	}
	sorted := append([]int(nil), cells...)
	sort.Ints(sorted)
	var b strings.Builder
	lo, hi := sorted[0], sorted[0]
	flush := func() {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if lo == hi {
			fmt.Fprintf(&b, "%d", lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", lo, hi)
		}
	}
	for _, c := range sorted[1:] {
		if c == hi || c == hi+1 {
			hi = c
			continue
		}
		flush()
		lo, hi = c, c
	}
	flush()
	return b.String()
}

// ParseRanges parses FormatRanges' syntax back into a strictly ascending
// index slice. "" parses to an empty set.
func ParseRanges(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var cells []int
	prev := -1
	for _, part := range strings.Split(s, ",") {
		lo, hi := part, part
		if dash := strings.IndexByte(part, '-'); dash > 0 {
			lo, hi = part[:dash], part[dash+1:]
		}
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("shard: cell range %q: %w", part, err)
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, fmt.Errorf("shard: cell range %q: %w", part, err)
		}
		if a < 0 || b < a {
			return nil, fmt.Errorf("shard: cell range %q: bad bounds", part)
		}
		if a <= prev {
			return nil, fmt.Errorf("shard: cell ranges not strictly ascending at %q", part)
		}
		for c := a; c <= b; c++ {
			cells = append(cells, c)
		}
		prev = b
	}
	return cells, nil
}

// FormatCellSpec renders a batch's per-run cell sets as one string:
// "fig5=0-4,9;fig6=1,3-17". names and cells are parallel, in the
// selection's canonical run order; a run with no cells renders as
// "name=". The spec is the wire form of a batch — the -cells CLI flag
// and the journal's batch events both carry it.
func FormatCellSpec(names []string, cells [][]int) (string, error) {
	if len(names) != len(cells) {
		return "", fmt.Errorf("shard: cell spec: %d names for %d cell sets", len(names), len(cells))
	}
	parts := make([]string, len(names))
	for i, name := range names {
		if name == "" || strings.ContainsAny(name, "=;") {
			return "", fmt.Errorf("shard: cell spec: bad run name %q", name)
		}
		parts[i] = name + "=" + FormatRanges(cells[i])
	}
	return strings.Join(parts, ";"), nil
}

// ParseCellSpec parses FormatCellSpec's syntax back into run names and
// strictly ascending per-run cell sets.
func ParseCellSpec(spec string) (names []string, cells [][]int, err error) {
	if spec == "" {
		return nil, nil, fmt.Errorf("shard: empty cell spec")
	}
	for _, part := range strings.Split(spec, ";") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, nil, fmt.Errorf("shard: cell spec entry %q: want name=ranges", part)
		}
		set, err := ParseRanges(part[eq+1:])
		if err != nil {
			return nil, nil, err
		}
		names = append(names, part[:eq])
		cells = append(cells, set)
	}
	return names, cells, nil
}
