// Package shard splits an experiment's (utilisation point × system) cell
// grid into N deterministic shards so the grid can run as N independent
// processes — on one host or many — and be merged back into exactly the
// aggregate a single-process run produces.
//
// The decomposition leans on the execution engine's central invariant
// (internal/exec): every grid cell derives its randomness from a private
// sub-seed mixed over the (runner, point, system) path, so a cell's value
// does not depend on which process — or which machine — evaluates it.
// Sharding therefore only partitions the key space:
//
//   - a cell's global index on an outer × inner grid is
//     g = point·inner + system;
//   - shard i of N owns the cells with g mod N == i (round-robin, so every
//     shard carries a near-equal slice of every utilisation point — the
//     per-point cost varies far more than the per-system cost);
//   - each shard process writes one versioned JSON File of its cells, with
//     the derived seed recorded per cell for provenance;
//   - Merge validates that N files form one complete, disjoint cover of
//     the grid (same run parameters, same shard count, distinct indices,
//     every cell present exactly once and owned by its file's shard) and
//     returns the single-shard equivalent file with cells in grid order.
//
// A merged file is itself a valid 1-shard file, so partial merges can be
// merged again, and an interrupted sweep resumes by re-running only the
// missing shard indices. ValidateCells proves a single file complete
// (exactly the cells its plan owns), which is what the dispatch driver
// (internal/dispatch) uses to tell a finished shard from a partial one
// before retrying it.
//
// The on-disk file layout — header fields, cell keying, params-mismatch
// rules and the merge invariants — is specified in docs/SHARD_FORMAT.md;
// FormatVersion tracks that spec's version.
package shard
