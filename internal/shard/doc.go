// Package shard splits an experiment's (utilisation point × system) cell
// grid into N deterministic shards so the grid can run as N independent
// processes — on one host or many — and be merged back into exactly the
// aggregate a single-process run produces.
//
// The decomposition leans on the execution engine's central invariant
// (internal/exec): every grid cell derives its randomness from a private
// sub-seed mixed over the (runner, point, system) path, so a cell's value
// does not depend on which process — or which machine — evaluates it.
// Sharding therefore only partitions the key space:
//
//   - a cell's global index on an outer × inner grid is
//     g = point·inner + system;
//   - shard i of N owns the cells with g mod N == i (round-robin, so every
//     shard carries a near-equal slice of every utilisation point — the
//     per-point cost varies far more than the per-system cost);
//   - each shard process writes one versioned JSON File of its cells, with
//     the derived seed recorded per cell for provenance;
//   - Merge validates that N files form one complete, disjoint cover of
//     the grid (same run parameters, same shard count, distinct indices,
//     every cell present exactly once and owned by its file's shard) and
//     returns the single-shard equivalent file with cells in grid order.
//
// A merged file is itself a valid 1-shard file, so merged covers can be
// re-read and re-rendered, and an interrupted sweep resumes by re-running
// only the missing shard indices. ValidateCells proves a single file
// complete (exactly the cells it owns), which is what the dispatch driver
// (internal/dispatch) uses to tell a finished shard from a partial one
// before retrying it.
//
// MergePartial is the streaming counterpart of Merge: it accepts any
// mutually-consistent subset of a run's files — regular shards and
// previously-written partial covers alike — and returns a PartialCover
// with the held cells in grid order plus exact coverage accounting
// (per-run cell counts, the missing shard indices). An incomplete
// cover's file carries a PartialInfo header recording its provenance; a
// complete one is byte-identical to Merge's output, which is what lets
// provisional results converge to — never diverge from — the full run's.
//
// The on-disk file layout — header fields, cell keying, params-mismatch
// rules, the merge invariants and the partial-cover rules — is specified
// in docs/SHARD_FORMAT.md; FormatVersion tracks that spec's version.
package shard
