package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// FormatVersion identifies the shard file layout; readers reject files
// written by an incompatible future layout instead of mis-merging them.
const FormatVersion = 1

// Cell is one evaluated grid cell.
type Cell struct {
	// Point and System locate the cell on its run's outer × inner grid
	// (utilisation-point index × system index for the sweep runners).
	Point  int `json:"point"`
	System int `json:"system"`
	// Seed is the derived sub-seed the cell's computation drew its
	// randomness from (exec.DeriveSeed over the (runner, point, system)
	// path). It is recorded so any cell of a merged sweep can be
	// re-verified in isolation.
	Seed int64 `json:"seed"`
	// Data is the runner-specific payload (per-method verdicts for the
	// schedulability sweep, quality outcomes for the metric sweeps, …).
	Data json.RawMessage `json:"data"`
}

// Grid gives the dimensions of one run's cell grid.
type Grid struct {
	// Points is the outer dimension (utilisation points, device counts,
	// or 1 for single-point studies).
	Points int `json:"points"`
	// Systems is the inner dimension (systems per point, or the number of
	// simulated designs for the motivation experiment).
	Systems int `json:"systems"`
}

// Cells returns the total number of cells on the grid.
func (g Grid) Cells() int { return g.Points * g.Systems }

// MaxGridCells bounds a run's grid. The largest realistic sweep — the
// paper scale — is 15 utilisation points × 1000 systems; the bound
// leaves three orders of magnitude of headroom while keeping a corrupt
// or hand-edited header from driving an OOM-scale allocation (or an
// int-overflowed Cells()) at merge time.
const MaxGridCells = 16 << 20

// validate rejects grids no runner produces, so a corrupt or hand-edited
// file fails with a clean error instead of a panic or an absurd
// allocation at merge time.
func (g Grid) validate() error {
	if g.Points < 0 || g.Systems < 0 {
		return fmt.Errorf("shard: negative grid %dx%d", g.Points, g.Systems)
	}
	if g.Systems > 0 && g.Points > MaxGridCells/g.Systems {
		return fmt.Errorf("shard: grid %dx%d exceeds %d cells", g.Points, g.Systems, MaxGridCells)
	}
	return nil
}

// Index returns the global cell index of (point, system), or an error if
// the cell lies outside the grid.
func (g Grid) Index(point, system int) (int, error) {
	if point < 0 || point >= g.Points || system < 0 || system >= g.Systems {
		return 0, fmt.Errorf("shard: cell (%d,%d) outside %dx%d grid", point, system, g.Points, g.Systems)
	}
	return point*g.Systems + system, nil
}

// Run holds one experiment runner's sharded cells.
type Run struct {
	Experiment string `json:"experiment"`
	Grid       Grid   `json:"grid"`
	// PayloadVersion identifies the cell-payload layout (the registered
	// experiment codec's version), so a reader rejects cells written by
	// an incompatible layout instead of silently mis-decoding them. 0 in
	// files written before versions were recorded.
	PayloadVersion int    `json:"payload_version,omitempty"`
	Cells          []Cell `json:"cells"`
}

// File is the versioned output of one shard process.
type File struct {
	Version int `json:"version"`
	// Selection is the experiment selection the run was invoked with
	// ("all" or a single experiment name); merge re-renders exactly that
	// selection.
	Selection string `json:"selection"`
	// Shards and Index identify the decomposition: this file holds the
	// cells with globalIndex mod Shards == Index.
	Shards int `json:"shards"`
	Index  int `json:"shard_index"`
	// Params records the run parameterisation (seed, systems, GA budget,
	// …) so merge can rebuild the exact configuration and reject shard
	// files from different runs. The payload is owned by the experiment
	// layer; shard only compares it for equality.
	Params json.RawMessage `json:"params"`
	// Host is the producing host's fingerprint, recorded only for
	// selections containing a non-reproducible experiment (whose
	// payloads measure the host rather than derive from the seed; see
	// experiment.Reproducible). Reproducible runs leave it empty, so
	// their files carry no host-dependent byte. Merging files from
	// different hosts joins the distinct fingerprints.
	Host string `json:"host,omitempty"`
	// Partial, when set, marks the file as an incomplete cover written by
	// MergePartial: the union of the recorded present shards of the
	// original decomposition, not a full run. Complete files never carry
	// it, so a complete MergePartial output is byte-identical to Merge's.
	Partial *PartialInfo `json:"partial,omitempty"`
	// Batch, when set, marks the file as a cell batch: an explicit subset
	// of each run's cells assigned by a pluggable decomposition rather
	// than the round-robin (Shards, Index) rule. Batch files declare the
	// trivial 1/0 plan and merge through MergeBatches. Complete merged
	// covers never carry the header.
	Batch *BatchInfo `json:"batch,omitempty"`
	// Runs holds the sharded cells, one entry per experiment runner, in
	// the selection's canonical order.
	Runs []Run `json:"runs"`
	// Path is the file the shard was read from ("" for files built in
	// memory); ReadFile records it so validation errors can name the
	// offending file instead of an opaque shard index.
	Path string `json:"-"`
	// Encoding is the container layout the file was decoded from
	// (EncodingJSON or EncodingBinary; "" for files built in memory). An
	// annotation like Path — it never round-trips through the encoders,
	// and both encodings decode to the same File.
	Encoding string `json:"-"`
}

// label names the file in error messages: its path when known, the
// shard index otherwise.
func (f *File) label() string {
	if f.Path != "" {
		return f.Path
	}
	return fmt.Sprintf("shard %d", f.Index)
}

// CellCount returns the total number of cells across the file's runs.
func (f *File) CellCount() int {
	n := 0
	for _, r := range f.Runs {
		n += len(r.Cells)
	}
	return n
}

// Plan is a validated (shards, index) decomposition.
type Plan struct {
	Shards, Index int
}

// NewPlan validates the decomposition: at least one shard, and an index
// inside [0, shards).
func NewPlan(shards, index int) (Plan, error) {
	if shards < 1 {
		return Plan{}, fmt.Errorf("shard: shard count %d, need >= 1", shards)
	}
	if index < 0 || index >= shards {
		return Plan{}, fmt.Errorf("shard: shard index %d outside [0,%d)", index, shards)
	}
	return Plan{Shards: shards, Index: index}, nil
}

// Owns reports whether the plan's shard owns global cell index g.
func (p Plan) Owns(g int) bool { return g%p.Shards == p.Index }

// Selector returns the (point, system) ownership predicate for a grid
// with the given inner dimension, in the form the experiment layer's
// cell-subset runners take.
func (p Plan) Selector(inner int) func(point, system int) bool {
	return func(point, system int) bool { return p.Owns(point*inner + system) }
}

// Encode renders the file as indented JSON. The encoding is deterministic
// — struct fields in declaration order, cells in the order they are held
// — so identical runs produce byte-identical shard files.
func (f *File) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the encoded file to path.
func (f *File) WriteFile(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// Decode parses an encoded file — auto-detecting the container layout
// from its leading bytes (the v2 magic, else v1 JSON) — and validates
// its version and decomposition fields. Both layouts decode to the same
// File, so every reader accepts any mix of encodings; Encoding records
// which one the file carried.
func Decode(data []byte) (*File, error) {
	if IsBinary(data) {
		return decodeBinary(data)
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("shard: decode: %w", err)
	}
	f.Encoding = EncodingJSON
	if err := f.validateDecoded(); err != nil {
		return nil, err
	}
	return f, nil
}

// validateDecoded holds the structural checks both decoders share:
// format version, decomposition (batch header or plan indices) and the
// grid/cell-count sanity of every run.
func (f *File) validateDecoded() error {
	if f.Version != FormatVersion {
		return fmt.Errorf("shard: file format version %d, this build reads %d", f.Version, FormatVersion)
	}
	if f.Batch != nil {
		if err := f.validateBatch(); err != nil {
			return err
		}
	} else if _, _, err := f.indices(); err != nil {
		return err
	}
	for _, r := range f.Runs {
		if err := r.Grid.validate(); err != nil {
			return fmt.Errorf("shard: run %q: %w", r.Experiment, err)
		}
		if len(r.Cells) > r.Grid.Cells() {
			return fmt.Errorf("shard: run %q holds %d cells for a %dx%d grid",
				r.Experiment, len(r.Cells), r.Grid.Points, r.Grid.Systems)
		}
	}
	return nil
}

// ReadFile reads and decodes one shard file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	f.Path = path
	return f, nil
}

// ValidateCells verifies that every run holds exactly the cells the file
// owns — the (Shards, Index) plan's round-robin share, for a file
// carrying a Partial header the union of its recorded present shards, or
// for a file carrying a Batch header its declared cell sets: each cell
// in range, owned, present exactly once, and none missing. Decode does
// not enforce completeness — a process killed mid-run can legitimately
// persist a partial file that later attempts replace — so drivers that
// must detect a truncated or partially-written shard (e.g. dispatch
// retry logic) call this before accepting a worker's output.
func (f *File) ValidateCells() error {
	if f.Batch != nil {
		return f.validateBatchCells()
	}
	owns, err := f.ownership()
	if err != nil {
		return err
	}
	for _, r := range f.Runs {
		if err := r.Grid.validate(); err != nil {
			return fmt.Errorf("shard: run %q: %w", r.Experiment, err)
		}
		filled := make([]bool, r.Grid.Cells())
		for _, c := range r.Cells {
			g, err := r.Grid.Index(c.Point, c.System)
			if err != nil {
				return fmt.Errorf("shard: run %q: %w", r.Experiment, err)
			}
			if !owns(g) {
				return fmt.Errorf("shard: run %q holds foreign cell (%d,%d) for shard %d/%d",
					r.Experiment, c.Point, c.System, f.Index, f.Shards)
			}
			if filled[g] {
				return fmt.Errorf("shard: run %q cell (%d,%d) appears twice", r.Experiment, c.Point, c.System)
			}
			filled[g] = true
		}
		for g := range filled {
			if owns(g) && !filled[g] {
				return fmt.Errorf("shard: run %q cell (%d,%d) missing — partial shard",
					r.Experiment, g/r.Grid.Systems, g%r.Grid.Systems)
			}
		}
	}
	return nil
}

// ownership returns the global-index ownership predicate of the file: the
// plan's round-robin share for a regular shard file, or the union of the
// present shards for a file carrying a Partial header. It validates
// through indices(), the single accessor for a file's decomposition.
func (f *File) ownership() (func(g int) bool, error) {
	shards, owned, err := f.indices()
	if err != nil {
		return nil, err
	}
	set := make(map[int]bool, len(owned))
	for _, idx := range owned {
		set[idx] = true
	}
	return func(g int) bool { return set[g%shards] }, nil
}

// canonicalParams compacts a params payload so equality is insensitive to
// whitespace (files may be re-indented by hand or by other tools).
func canonicalParams(raw json.RawMessage) ([]byte, error) {
	var buf bytes.Buffer
	if len(raw) == 0 {
		return nil, nil
	}
	if err := json.Compact(&buf, raw); err != nil {
		return nil, fmt.Errorf("shard: params: %w", err)
	}
	return buf.Bytes(), nil
}

// Merge validates that the files form one complete, disjoint cover of a
// single run's cell grids and returns the single-shard equivalent file:
// Shards 1, Index 0, and every run's cells complete and in grid order.
// Aggregating a merged file therefore produces exactly the output of the
// unsharded run.
//
// The files may be given in any order. Merge fails if the files disagree
// on selection, run parameters, grid shapes or shard count; if an index
// is missing or duplicated; if any cell is out of range, duplicated, or
// not owned by its file's shard index.
// mergedHost combines the input files' host fingerprints: empty when
// none records one (every reproducible run), the common value when
// they agree, and the distinct values sorted and joined with "; " when
// shards of a non-reproducible run came from different hosts. Sorting
// keeps the merged value independent of file order, so re-merging a
// merged file is still the identity.
func mergedHost(files []*File) string {
	seen := map[string]bool{}
	var hosts []string
	for _, f := range files {
		if f.Host == "" || seen[f.Host] {
			continue
		}
		seen[f.Host] = true
		hosts = append(hosts, f.Host)
	}
	sort.Strings(hosts)
	return strings.Join(hosts, "; ")
}

func Merge(files []*File) (*File, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("shard: merge needs at least one file")
	}
	ref := files[0]
	refParams, err := canonicalParams(ref.Params)
	if err != nil {
		return nil, err
	}
	if len(files) != ref.Shards {
		return nil, fmt.Errorf("shard: merge got %d files for a %d-shard run", len(files), ref.Shards)
	}
	seen := make([]bool, ref.Shards)
	for _, f := range files {
		// Merge also accepts hand-built Files that never passed Decode;
		// re-validate the decomposition before indexing with it.
		if _, err := NewPlan(f.Shards, f.Index); err != nil {
			return nil, err
		}
		if f.Partial != nil {
			return nil, fmt.Errorf("shard: shard %d is a partial cover file; use MergePartial", f.Index)
		}
		if f.Batch != nil {
			return nil, fmt.Errorf("shard: %s is a cell-batch file; use MergeBatches", f.label())
		}
		if f.Version != ref.Version {
			return nil, fmt.Errorf("shard: mixed format versions %d and %d", ref.Version, f.Version)
		}
		if f.Selection != ref.Selection {
			return nil, fmt.Errorf("shard: mixed selections %q and %q", ref.Selection, f.Selection)
		}
		if f.Shards != ref.Shards {
			return nil, fmt.Errorf("shard: mixed shard counts %d and %d", ref.Shards, f.Shards)
		}
		if seen[f.Index] {
			return nil, fmt.Errorf("shard: shard index %d appears twice", f.Index)
		}
		seen[f.Index] = true
		params, err := canonicalParams(f.Params)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(params, refParams) {
			return nil, fmt.Errorf("shard: %s was produced by a different run than %s (params mismatch: %s)",
				f.label(), ref.label(), DiffParams(ref.Params, f.Params))
		}
		if len(f.Runs) != len(ref.Runs) {
			return nil, fmt.Errorf("shard: %s holds %d runs, %s holds %d",
				f.label(), len(f.Runs), ref.label(), len(ref.Runs))
		}
		for ri, r := range f.Runs {
			if r.Experiment != ref.Runs[ri].Experiment || r.Grid != ref.Runs[ri].Grid {
				return nil, fmt.Errorf("shard: %s run %d is %s %v, want %s %v",
					f.label(), ri, r.Experiment, r.Grid, ref.Runs[ri].Experiment, ref.Runs[ri].Grid)
			}
			if r.PayloadVersion != ref.Runs[ri].PayloadVersion {
				return nil, fmt.Errorf("shard: %s run %q records payload version %d, %s records %d",
					f.label(), r.Experiment, r.PayloadVersion, ref.label(), ref.Runs[ri].PayloadVersion)
			}
		}
	}
	merged := &File{
		Version:   ref.Version,
		Selection: ref.Selection,
		Shards:    1,
		Index:     0,
		Params:    ref.Params,
		Host:      mergedHost(files),
	}
	for ri, refRun := range ref.Runs {
		grid := refRun.Grid
		// Merge also accepts hand-built Files that never passed Decode, so
		// re-validate before sizing allocations from the header.
		if err := grid.validate(); err != nil {
			return nil, fmt.Errorf("shard: run %q: %w", refRun.Experiment, err)
		}
		cells := make([]Cell, grid.Cells())
		filled := make([]bool, grid.Cells())
		for _, f := range files {
			plan := Plan{Shards: f.Shards, Index: f.Index}
			for _, c := range f.Runs[ri].Cells {
				g, err := grid.Index(c.Point, c.System)
				if err != nil {
					return nil, fmt.Errorf("shard: %s shard %d: %w", refRun.Experiment, f.Index, err)
				}
				if !plan.Owns(g) {
					return nil, fmt.Errorf("shard: %s shard %d holds foreign cell (%d,%d)",
						refRun.Experiment, f.Index, c.Point, c.System)
				}
				if filled[g] {
					return nil, fmt.Errorf("shard: %s cell (%d,%d) appears twice",
						refRun.Experiment, c.Point, c.System)
				}
				filled[g] = true
				cells[g] = c
			}
		}
		for g, ok := range filled {
			if !ok {
				return nil, fmt.Errorf("shard: %s cell (%d,%d) missing — incomplete shard set",
					refRun.Experiment, g/grid.Systems, g%grid.Systems)
			}
		}
		merged.Runs = append(merged.Runs, Run{
			Experiment: refRun.Experiment, Grid: grid,
			PayloadVersion: refRun.PayloadVersion, Cells: cells,
		})
	}
	return merged, nil
}
