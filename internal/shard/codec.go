package shard

// The pluggable cell-file codec. A shard file has one logical content —
// the File struct — and two on-disk encodings:
//
//   - v1 ("json"): the indented JSON container shard.go encodes. Human-
//     readable, diff-able, and the only format older builds read.
//   - v2 ("binary"): a columnar binary container. Cells are stored
//     column-wise per run — points, systems, seeds, payloads — with the
//     payload column either packed by the experiment's registered
//     PayloadCodec or, for experiments without one, as length-prefixed
//     compact JSON. An order of magnitude smaller than v1 on the paper-
//     scale grids, which is what matters once sweeps reach millions of
//     cells.
//
// Readers never choose: Decode auto-detects the encoding from the first
// bytes (the v2 magic cannot collide with JSON, which must start with
// '{' whitespace-insensitively), so merges, journals, caches and the
// coordinator accept any mix of v1 and v2 files. Writers choose with
// EncodeAs/WriteFileAs; the plain Encode/WriteFile stay v1 JSON so
// nothing changes behind existing callers.
//
// Decoding is defensive end to end: every declared length is validated
// against the bytes actually present before anything is allocated, so a
// truncated, flipped-magic or absurd-count file fails with a clean error
// instead of a panic or an OOM-scale allocation (FuzzDecodeBinary pins
// this).

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
)

// Encoding names for the two container layouts. The strings are the
// -codec flag values and what File.Encoding reports after a Decode.
const (
	EncodingJSON   = "json"
	EncodingBinary = "binary"
)

// binaryMagic opens every v2 file. Modeled on PNG's signature: a
// non-ASCII first byte (never valid leading JSON, and mangled by any
// 7-bit transport), the format name and version, and a CRLF that a
// newline-translating transfer corrupts visibly.
var binaryMagic = [8]byte{0x89, 'I', 'O', 'S', 'B', '2', '\r', '\n'}

// IsBinary reports whether data opens with the v2 container magic.
func IsBinary(data []byte) bool {
	return len(data) >= len(binaryMagic) && bytes.Equal(data[:len(binaryMagic)], binaryMagic[:])
}

// ParseEncoding resolves a -codec flag value to an encoding name.
func ParseEncoding(s string) (string, error) {
	switch s {
	case "", EncodingJSON:
		return EncodingJSON, nil
	case EncodingBinary:
		return EncodingBinary, nil
	}
	return "", fmt.Errorf("shard: unknown codec %q (want %q or %q)", s, EncodingJSON, EncodingBinary)
}

// SniffFileEncoding reports which encoding the file at path carries, from
// its leading bytes alone (it never decodes the file).
func SniffFileEncoding(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(binaryMagic))
	n, _ := f.Read(head)
	if IsBinary(head[:n]) {
		return EncodingBinary, nil
	}
	return EncodingJSON, nil
}

// EncodeAs renders the file in the named encoding.
func (f *File) EncodeAs(encoding string) ([]byte, error) {
	switch encoding {
	case EncodingJSON:
		return f.Encode()
	case EncodingBinary:
		return f.EncodeBinary()
	}
	return nil, fmt.Errorf("shard: unknown encoding %q", encoding)
}

// WriteFileAs writes the file to path in the named encoding.
func (f *File) WriteFileAs(path, encoding string) error {
	data, err := f.EncodeAs(encoding)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// ---- payload codec registry ----

// PayloadCodec packs one run's cell payloads into a binary column and
// back. Implementations are registered per (experiment, payload version)
// — bumping the payload version orphans the codec exactly as it orphans
// cache entries — and must be lossless at the JSON level: DecodeColumn
// of EncodeColumn's output must reproduce each payload's compact JSON
// byte for byte (the v2 encoder verifies this on every encode and falls
// back to the JSON column if it does not hold, so a codec bug can cost
// compression but never correctness).
type PayloadCodec interface {
	// EncodeColumn packs the payloads (each one cell's compact JSON) into
	// one column. An error is not fatal: the container encoder falls back
	// to the JSON column (payloads an experiment's current layout cannot
	// express — foreign fields, wrong types — are legitimate in files
	// written by other builds).
	EncodeColumn(payloads []json.RawMessage) ([]byte, error)
	// DecodeColumn unpacks a column holding exactly n payloads and
	// returns their compact JSON. It must validate every declared length
	// against the data actually present — the column comes straight from
	// an untrusted file.
	DecodeColumn(data []byte, n int) ([]json.RawMessage, error)
}

type payloadKey struct {
	experiment string
	version    int
}

var (
	payloadMu     sync.RWMutex
	payloadCodecs = map[payloadKey]PayloadCodec{}
)

// RegisterPayloadCodec adds the codec for one experiment's payload
// layout version. The experiment registry calls it as experiments
// register; duplicate registration panics — a wiring bug, not a runtime
// condition.
func RegisterPayloadCodec(experiment string, version int, c PayloadCodec) {
	payloadMu.Lock()
	defer payloadMu.Unlock()
	k := payloadKey{experiment, version}
	if _, dup := payloadCodecs[k]; dup {
		panic(fmt.Sprintf("shard: payload codec for %q v%d registered twice", experiment, version))
	}
	payloadCodecs[k] = c
}

// LookupPayloadCodec returns the codec registered for the experiment's
// payload layout version.
func LookupPayloadCodec(experiment string, version int) (PayloadCodec, bool) {
	payloadMu.RLock()
	defer payloadMu.RUnlock()
	c, ok := payloadCodecs[payloadKey{experiment, version}]
	return c, ok
}

// ---- column primitives ----

// ColumnWriter appends the primitive encodings the v2 container and the
// payload codecs are built from: unsigned and zigzag varints, raw IEEE
// float bits, single-byte bools and length-prefixed byte strings.
type ColumnWriter struct {
	buf []byte
}

// Bytes returns everything written so far.
func (w *ColumnWriter) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *ColumnWriter) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a zigzag-encoded signed varint.
func (w *ColumnWriter) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Float64 appends the value's raw IEEE-754 bits (little-endian, 8
// bytes); the round trip is bit-exact, so re-marshalled JSON numbers
// come out byte-identical.
func (w *ColumnWriter) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Bool appends one byte, 0 or 1.
func (w *ColumnWriter) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte appends one raw byte.
func (w *ColumnWriter) Byte(b byte) { w.buf = append(w.buf, b) }

// Blob appends a length-prefixed byte string.
func (w *ColumnWriter) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *ColumnWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// ColumnReader consumes ColumnWriter's encodings with every read bounds-
// checked against the remaining bytes, so a decoder built on it can be
// handed untrusted data and fail with an error instead of a panic.
type ColumnReader struct {
	data []byte
	off  int
}

// NewColumnReader reads from data.
func NewColumnReader(data []byte) *ColumnReader { return &ColumnReader{data: data} }

// Remaining returns the number of unread bytes.
func (r *ColumnReader) Remaining() int { return len(r.data) - r.off }

// Uvarint reads one unsigned varint.
func (r *ColumnReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("shard: truncated or overlong uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Varint reads one zigzag-encoded signed varint.
func (r *ColumnReader) Varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("shard: truncated or overlong varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Int reads a uvarint that must fit a non-negative int.
func (r *ColumnReader) Int() (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(math.MaxInt) {
		return 0, fmt.Errorf("shard: value %d overflows int", v)
	}
	return int(v), nil
}

// Float64 reads raw IEEE-754 bits.
func (r *ColumnReader) Float64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("shard: truncated float64 at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

// Bool reads one byte that must be 0 or 1.
func (r *ColumnReader) Bool() (bool, error) {
	b, err := r.Byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, fmt.Errorf("shard: bool byte %d at offset %d", b, r.off-1)
	}
	return b == 1, nil
}

// Byte reads one raw byte.
func (r *ColumnReader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, fmt.Errorf("shard: truncated byte at offset %d", r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// Blob reads a length-prefixed byte string, validating the declared
// length against the bytes present before touching them. The returned
// slice aliases the reader's buffer.
func (r *ColumnReader) Blob() ([]byte, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("shard: blob declares %d bytes, %d remain", n, r.Remaining())
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b, nil
}

// String reads a length-prefixed string.
func (r *ColumnReader) String() (string, error) {
	b, err := r.Blob()
	return string(b), err
}

// ---- v2 container ----

// Column kinds of one run's payload column.
const (
	columnJSON   = "json"   // per cell: uvarint length + compact JSON
	columnNative = "native" // packed by the run's registered PayloadCodec
)

// binHeader is the v2 container's JSON header: File minus the cells
// (which follow column-wise) and minus Params (which follows as a
// verbatim blob, so its bytes survive the round trip untouched by JSON
// re-escaping).
type binHeader struct {
	Version   int          `json:"version"`
	Selection string       `json:"selection"`
	Shards    int          `json:"shards"`
	Index     int          `json:"shard_index"`
	Host      string       `json:"host,omitempty"`
	Partial   *PartialInfo `json:"partial,omitempty"`
	Batch     *BatchInfo   `json:"batch,omitempty"`
	Runs      []binRun     `json:"runs"`
}

// binRun describes one run's columns.
type binRun struct {
	Experiment     string `json:"experiment"`
	Grid           Grid   `json:"grid"`
	PayloadVersion int    `json:"payload_version,omitempty"`
	// Cells is the row count of every column that follows.
	Cells int `json:"cells"`
	// Column is the payload column's kind: columnJSON or columnNative.
	Column string `json:"column"`
}

// EncodeBinary renders the file as a v2 columnar container. Runs whose
// experiment has a registered PayloadCodec get a packed payload column —
// after a verification pass proving the codec reproduces each payload's
// compact JSON exactly; anything else (no codec, codec error, or a
// verification mismatch) falls back to the length-prefixed JSON column.
// Like Encode, the output is deterministic in the file's content.
func (f *File) EncodeBinary() ([]byte, error) {
	hdr := binHeader{
		Version:   f.Version,
		Selection: f.Selection,
		Shards:    f.Shards,
		Index:     f.Index,
		Host:      f.Host,
		Partial:   f.Partial,
		Batch:     f.Batch,
	}
	columns := make([][]byte, len(f.Runs))
	for ri, run := range f.Runs {
		compact, err := compactPayloads(run)
		if err != nil {
			return nil, err
		}
		kind := columnJSON
		var col []byte
		if c, ok := LookupPayloadCodec(run.Experiment, run.PayloadVersion); ok {
			if packed, err := c.EncodeColumn(compact); err == nil && verifyColumn(c, packed, compact) {
				kind, col = columnNative, packed
			}
		}
		if kind == columnJSON {
			w := &ColumnWriter{}
			for _, p := range compact {
				w.Blob(p)
			}
			col = w.Bytes()
		}
		columns[ri] = col
		hdr.Runs = append(hdr.Runs, binRun{
			Experiment:     run.Experiment,
			Grid:           run.Grid,
			PayloadVersion: run.PayloadVersion,
			Cells:          len(run.Cells),
			Column:         kind,
		})
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("shard: encode: %w", err)
	}
	w := &ColumnWriter{buf: append([]byte(nil), binaryMagic[:]...)}
	w.Blob(hdrJSON)
	w.Blob(f.Params)
	for ri, run := range f.Runs {
		for _, c := range run.Cells {
			w.Uvarint(uint64(c.Point))
		}
		for _, c := range run.Cells {
			w.Uvarint(uint64(c.System))
		}
		for _, c := range run.Cells {
			w.Varint(c.Seed)
		}
		w.Blob(columns[ri])
	}
	return w.Bytes(), nil
}

// compactPayloads compacts one run's cell payloads. Compact form is the
// canonical payload spelling across the codec boundary: the JSON column
// stores it, PayloadCodecs receive and must reproduce it, and v1's
// MarshalIndent re-normalises whitespace anyway, so a v1→v2→v1 round
// trip re-renders byte-identically.
func compactPayloads(run Run) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(run.Cells))
	for i, c := range run.Cells {
		data := c.Data
		if len(data) == 0 {
			// json.Marshal spells a nil RawMessage "null"; mirror it so the
			// two encoders agree on every input.
			data = json.RawMessage("null")
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, data); err != nil {
			return nil, fmt.Errorf("shard: run %q cell (%d,%d) payload: %w", run.Experiment, c.Point, c.System, err)
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// verifyColumn proves a packed column decodes back to exactly the
// compact payloads it was packed from. Run on every encode: the cost is
// one decode pass, the payoff is that a lossy or drifted PayloadCodec
// can never corrupt a file — it just loses its compression.
func verifyColumn(c PayloadCodec, packed []byte, want []json.RawMessage) bool {
	got, err := c.DecodeColumn(packed, len(want))
	if err != nil || len(got) != len(want) {
		return false
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

// decodeBinary parses a v2 container (data starts with the magic). Every
// declared count and length is validated against the bytes present
// before it drives an allocation.
func decodeBinary(data []byte) (*File, error) {
	r := NewColumnReader(data[len(binaryMagic):])
	hdrJSON, err := r.Blob()
	if err != nil {
		return nil, fmt.Errorf("shard: decode: header: %w", err)
	}
	var hdr binHeader
	if err := json.Unmarshal(hdrJSON, &hdr); err != nil {
		return nil, fmt.Errorf("shard: decode: header: %w", err)
	}
	params, err := r.Blob()
	if err != nil {
		return nil, fmt.Errorf("shard: decode: params: %w", err)
	}
	f := &File{
		Version:   hdr.Version,
		Selection: hdr.Selection,
		Shards:    hdr.Shards,
		Index:     hdr.Index,
		Host:      hdr.Host,
		Partial:   hdr.Partial,
		Batch:     hdr.Batch,
		Encoding:  EncodingBinary,
	}
	if len(params) > 0 {
		// Params are stored verbatim (never re-escaped), but they must
		// still be one well-formed JSON value or re-rendering the file as
		// v1 would fail.
		if !json.Valid(params) {
			return nil, fmt.Errorf("shard: decode: params blob is not valid JSON")
		}
		f.Params = json.RawMessage(params)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("shard: file format version %d, this build reads %d", hdr.Version, FormatVersion)
	}
	for _, br := range hdr.Runs {
		run := Run{Experiment: br.Experiment, Grid: br.Grid, PayloadVersion: br.PayloadVersion}
		if err := br.Grid.validate(); err != nil {
			return nil, fmt.Errorf("shard: run %q: %w", br.Experiment, err)
		}
		if br.Cells < 0 || br.Cells > br.Grid.Cells() {
			return nil, fmt.Errorf("shard: run %q declares %d cells for a %dx%d grid",
				br.Experiment, br.Cells, br.Grid.Points, br.Grid.Systems)
		}
		// Every cell needs at least one byte in each of the three key
		// columns; a count the remaining bytes cannot possibly hold is
		// rejected before it sizes an allocation.
		if br.Cells > r.Remaining() {
			return nil, fmt.Errorf("shard: run %q declares %d cells, only %d bytes remain",
				br.Experiment, br.Cells, r.Remaining())
		}
		cells := make([]Cell, br.Cells)
		for i := range cells {
			if cells[i].Point, err = r.Int(); err != nil {
				return nil, fmt.Errorf("shard: run %q points column: %w", br.Experiment, err)
			}
		}
		for i := range cells {
			if cells[i].System, err = r.Int(); err != nil {
				return nil, fmt.Errorf("shard: run %q systems column: %w", br.Experiment, err)
			}
		}
		for i := range cells {
			if cells[i].Seed, err = r.Varint(); err != nil {
				return nil, fmt.Errorf("shard: run %q seeds column: %w", br.Experiment, err)
			}
		}
		col, err := r.Blob()
		if err != nil {
			return nil, fmt.Errorf("shard: run %q payload column: %w", br.Experiment, err)
		}
		payloads, err := decodePayloadColumn(br, col)
		if err != nil {
			return nil, fmt.Errorf("shard: run %q payload column: %w", br.Experiment, err)
		}
		for i := range cells {
			cells[i].Data = payloads[i]
		}
		run.Cells = cells
		f.Runs = append(f.Runs, run)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("shard: decode: %d trailing bytes after the last column", r.Remaining())
	}
	if err := f.validateDecoded(); err != nil {
		return nil, err
	}
	return f, nil
}

// decodePayloadColumn unpacks one run's payload column by its declared
// kind.
func decodePayloadColumn(br binRun, col []byte) ([]json.RawMessage, error) {
	switch br.Column {
	case columnJSON:
		r := NewColumnReader(col)
		out := make([]json.RawMessage, br.Cells)
		for i := range out {
			b, err := r.Blob()
			if err != nil {
				return nil, err
			}
			// Compacting validates as it canonicalises: a blob that is not
			// one well-formed JSON value is a corrupt column, and accepting
			// it would poison every later re-encode of the file.
			var buf bytes.Buffer
			if err := json.Compact(&buf, b); err != nil {
				return nil, fmt.Errorf("shard: payload %d: %w", i, err)
			}
			out[i] = json.RawMessage(buf.Bytes())
		}
		if r.Remaining() != 0 {
			return nil, fmt.Errorf("shard: %d trailing bytes", r.Remaining())
		}
		return out, nil
	case columnNative:
		c, ok := LookupPayloadCodec(br.Experiment, br.PayloadVersion)
		if !ok {
			return nil, fmt.Errorf("shard: no payload codec registered for %q v%d (written by a build that had one)",
				br.Experiment, br.PayloadVersion)
		}
		out, err := c.DecodeColumn(col, br.Cells)
		if err != nil {
			return nil, err
		}
		if len(out) != br.Cells {
			return nil, fmt.Errorf("shard: payload codec returned %d payloads for %d cells", len(out), br.Cells)
		}
		return out, nil
	}
	return nil, fmt.Errorf("shard: unknown payload column kind %q", br.Column)
}
