package shard

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// DiffParams names the specific parameter two recorded params payloads
// disagree on, e.g. `param "seed" differs: 1 vs 2` — so a merge or
// dispatch rejection tells the operator which flag to fix instead of an
// opaque "params differ". Payloads that cannot be decoded, or that
// differ only in ways a key-by-key comparison cannot see, fall back to
// "params differ".
func DiffParams(want, got json.RawMessage) string {
	const fallback = "params differ"
	var a, b map[string]any
	if err := json.Unmarshal(want, &a); err != nil {
		return fallback
	}
	if err := json.Unmarshal(got, &b); err != nil {
		return fallback
	}
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		av, aok := a[k]
		bv, bok := b[k]
		if aok && bok && reflect.DeepEqual(av, bv) {
			continue
		}
		return fmt.Sprintf("param %q differs: %s vs %s", k, diffValue(av, aok), diffValue(bv, bok))
	}
	return fallback
}

// diffValue renders one side of a param difference.
func diffValue(v any, present bool) string {
	if !present {
		return "(absent)"
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(data)
}
