package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// subsets enumerates every non-empty strict subset of [0, n) for small n.
func subsets(n int) [][]int {
	var out [][]int
	for mask := 1; mask < (1<<n)-1; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, i)
			}
		}
		out = append(out, s)
	}
	return out
}

// TestMergePartialStrictSubsets pins the tentpole invariant at the shard
// layer: for every strict subset of a run's shard files, MergePartial
// reports exactly the missing indices and the exact per-run coverage, and
// the cells it holds are the ones the full merge holds — no more, no
// less, in grid order.
func TestMergePartialStrictSubsets(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	const n = 4
	files := make([]*File, n)
	for i := range files {
		files[i] = mkFile(t, "fig5", grid, n, i, `{"seed":1}`)
	}
	full, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subsets(n) {
		var pick []*File
		inSub := make(map[int]bool)
		for _, i := range sub {
			pick = append(pick, files[i])
			inSub[i] = true
		}
		cover, err := MergePartial(pick)
		if err != nil {
			t.Fatalf("subset %v: %v", sub, err)
		}
		if cover.Complete() {
			t.Fatalf("subset %v reported complete", sub)
		}
		if !reflect.DeepEqual(cover.Present, sub) {
			t.Fatalf("subset %v: present = %v", sub, cover.Present)
		}
		wantMissing := []int{}
		for i := 0; i < n; i++ {
			if !inSub[i] {
				wantMissing = append(wantMissing, i)
			}
		}
		if !reflect.DeepEqual(cover.Missing, wantMissing) {
			t.Fatalf("subset %v: missing = %v, want %v", sub, cover.Missing, wantMissing)
		}
		if cover.File.Partial == nil || cover.File.Partial.Shards != n ||
			!reflect.DeepEqual(cover.File.Partial.Present, sub) {
			t.Fatalf("subset %v: partial header = %+v", sub, cover.File.Partial)
		}
		// The held cells are exactly the full merge's cells at the owned
		// indices, in grid order.
		var want []Cell
		for g, c := range full.Runs[0].Cells {
			if inSub[g%n] {
				want = append(want, c)
			}
		}
		if !reflect.DeepEqual(cover.File.Runs[0].Cells, want) {
			t.Fatalf("subset %v: cells differ from the full merge's owned cells", sub)
		}
		if cover.Runs[0].Have != len(want) || cover.CellsHave() != len(want) ||
			cover.CellsTotal() != grid.Cells() {
			t.Fatalf("subset %v: coverage %d/%d, want %d/%d",
				sub, cover.CellsHave(), cover.CellsTotal(), len(want), grid.Cells())
		}
	}
}

// TestMergePartialCompleteIsByteIdentical: handing MergePartial the whole
// cover must produce exactly Merge's output — no Partial header, same
// bytes — so a streamed merge converges to the full run's output.
func TestMergePartialCompleteIsByteIdentical(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	for _, n := range []int{1, 3, 8} {
		files := make([]*File, n)
		for i := range files {
			files[i] = mkFile(t, "fig5", grid, n, i, `{"seed":1}`)
		}
		full, err := Merge(files)
		if err != nil {
			t.Fatal(err)
		}
		cover, err := MergePartial(files)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if !cover.Complete() || cover.File.Partial != nil {
			t.Fatalf("N=%d: complete cover reported partial (%+v)", n, cover.File.Partial)
		}
		a, err := full.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cover.File.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("N=%d: complete MergePartial differs from Merge", n)
		}
		if cover.Fraction() != 1 {
			t.Fatalf("N=%d: fraction = %v", n, cover.Fraction())
		}
	}
}

// TestMergePartialResumesFromPartialFile: a written partial file re-reads
// and merges with the remaining shards — the streaming workflow across
// process restarts — and the final output byte-equals the direct full
// merge.
func TestMergePartialResumesFromPartialFile(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	const n = 4
	files := make([]*File, n)
	for i := range files {
		files[i] = mkFile(t, "fig5", grid, n, i, `{"seed":1}`)
	}
	cover, err := MergePartial([]*File{files[0], files[2]})
	if err != nil {
		t.Fatal(err)
	}
	data, err := cover.File.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reread, err := Decode(data)
	if err != nil {
		t.Fatalf("written partial file does not decode: %v", err)
	}
	if err := reread.ValidateCells(); err != nil {
		t.Fatalf("written partial file fails validation: %v", err)
	}
	grown, err := MergePartial([]*File{reread, files[1]})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Complete() || !reflect.DeepEqual(grown.Missing, []int{3}) {
		t.Fatalf("grown cover missing = %v", grown.Missing)
	}
	final, err := MergePartial([]*File{grown.File, files[3]})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := full.Encode()
	b, err := final.File.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed partial merge differs from the direct full merge")
	}
}

func TestMergePartialRejectsInconsistentSets(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	f0 := mkFile(t, "fig5", grid, 3, 0, `{"seed":1}`)
	f1 := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)

	if _, err := MergePartial(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := MergePartial([]*File{f0, f0}); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate index: %v", err)
	}
	other := mkFile(t, "fig5", grid, 3, 1, `{"seed":2}`)
	if _, err := MergePartial([]*File{f0, other}); err == nil ||
		!strings.Contains(err.Error(), "different run") {
		t.Errorf("params mismatch: %v", err)
	}
	mixed := mkFile(t, "fig5", grid, 4, 1, `{"seed":1}`)
	if _, err := MergePartial([]*File{f0, mixed}); err == nil ||
		!strings.Contains(err.Error(), "shard counts") {
		t.Errorf("mixed shard counts: %v", err)
	}
	sel := mkFile(t, "fig6", grid, 3, 1, `{"seed":1}`)
	if _, err := MergePartial([]*File{f0, sel}); err == nil ||
		!strings.Contains(err.Error(), "selections") {
		t.Errorf("mixed selections: %v", err)
	}
	truncated := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	truncated.Runs[0].Cells = truncated.Runs[0].Cells[:1]
	if _, err := MergePartial([]*File{f0, truncated}); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated shard: %v", err)
	}
	foreign := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	foreign.Runs[0].Cells[0] = f0.Runs[0].Cells[0]
	if _, err := MergePartial([]*File{foreign}); err == nil ||
		!strings.Contains(err.Error(), "foreign") {
		t.Errorf("foreign cell: %v", err)
	}
	// A partial file overlapping a shard it already contains.
	cover, err := MergePartial([]*File{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePartial([]*File{cover.File, f1}); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("overlapping partial: %v", err)
	}
}

// TestMergeRejectsPartialFiles: the strict Merge must never silently
// accept an incomplete cover dressed as a 1-shard file.
func TestMergeRejectsPartialFiles(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	f0 := mkFile(t, "fig5", grid, 3, 0, `{"seed":1}`)
	f1 := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	cover, err := MergePartial([]*File{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*File{cover.File}); err == nil ||
		!strings.Contains(err.Error(), "MergePartial") {
		t.Errorf("Merge accepted a partial file: %v", err)
	}
}

func TestPartialInfoValidation(t *testing.T) {
	for _, tc := range []struct {
		pi PartialInfo
		ok bool
	}{
		{PartialInfo{Shards: 3, Present: []int{0}}, true},
		{PartialInfo{Shards: 3, Present: []int{0, 2}}, true},
		{PartialInfo{Shards: 0, Present: []int{0}}, false},
		{PartialInfo{Shards: 3, Present: nil}, false},
		{PartialInfo{Shards: 3, Present: []int{0, 1, 2}}, false}, // complete: must not be partial
		{PartialInfo{Shards: 3, Present: []int{3}}, false},
		{PartialInfo{Shards: 3, Present: []int{-1}}, false},
		{PartialInfo{Shards: 3, Present: []int{1, 0}}, false}, // not ascending
		{PartialInfo{Shards: 3, Present: []int{1, 1}}, false}, // duplicate
	} {
		err := tc.pi.validate()
		if (err == nil) != tc.ok {
			t.Errorf("validate(%+v) = %v, want ok=%v", tc.pi, err, tc.ok)
		}
	}
	pi := PartialInfo{Shards: 4, Present: []int{1, 3}}
	if got := pi.Missing(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Missing() = %v", got)
	}
}

// TestDecodeValidatesPartialHeader: a corrupt partial header must fail at
// decode time, before any ownership decision is derived from it.
func TestDecodeValidatesPartialHeader(t *testing.T) {
	grid := Grid{Points: 2, Systems: 2}
	f := mkFile(t, "fig5", grid, 1, 0, `{"seed":1}`)
	f.Partial = &PartialInfo{Shards: 2, Present: []int{5}}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "partial header") {
		t.Errorf("corrupt partial header decoded: %v", err)
	}
	bad := mkFile(t, "fig5", grid, 2, 1, `{"seed":1}`)
	bad.Partial = &PartialInfo{Shards: 2, Present: []int{1}}
	data, err = json.MarshalIndent(bad, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "want 0/1") {
		t.Errorf("partial file with non-trivial plan decoded: %v", err)
	}
}

// TestValidateCellsPartialFiles: ValidateCells understands partial files —
// exactly the present shards' cells, none missing, none foreign.
func TestValidateCellsPartialFiles(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	f0 := mkFile(t, "fig5", grid, 3, 0, `{"seed":1}`)
	f2 := mkFile(t, "fig5", grid, 3, 2, `{"seed":1}`)
	cover, err := MergePartial([]*File{f0, f2})
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.File.ValidateCells(); err != nil {
		t.Fatalf("valid partial file rejected: %v", err)
	}
	// Dropping a cell from a present shard must fail as truncated…
	chopped := *cover.File
	chopped.Runs = []Run{{
		Experiment: cover.File.Runs[0].Experiment,
		Grid:       grid,
		Cells:      cover.File.Runs[0].Cells[1:],
	}}
	if err := chopped.ValidateCells(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("truncated partial file: %v", err)
	}
	// …and a cell owned by an absent shard must fail as foreign.
	f1 := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	intruding := *cover.File
	intruding.Runs = []Run{{
		Experiment: cover.File.Runs[0].Experiment,
		Grid:       grid,
		Cells:      append(append([]Cell{}, cover.File.Runs[0].Cells...), f1.Runs[0].Cells[0]),
	}}
	if err := intruding.ValidateCells(); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Errorf("foreign cell in partial file: %v", err)
	}
}

// TestPartialCoverFractionEdge: a run with no cells (nothing to cover) is
// trivially complete rather than 0/0 = NaN.
func TestPartialCoverFractionEdge(t *testing.T) {
	p := &PartialCover{}
	if p.Fraction() != 1 {
		t.Errorf("empty cover fraction = %v", p.Fraction())
	}
	c := RunCoverage{Experiment: "fig5", Grid: Grid{Points: 2, Systems: 3}, Have: 4}
	if c.Total() != 6 || c.Complete() {
		t.Errorf("coverage %d/%d complete=%v", c.Have, c.Total(), c.Complete())
	}
	if s := fmt.Sprintf("%d/%d", c.Have, c.Total()); s != "4/6" {
		t.Errorf("coverage renders %q", s)
	}
}
