package shard

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

func TestRoundRobinSplitMatchesPlanOwnership(t *testing.T) {
	grids := []Grid{{Points: 3, Systems: 4}, {Points: 5, Systems: 1}}
	for _, parts := range []int{1, 3, 8} {
		assign, err := RoundRobin{}.Split(grids, parts)
		if err != nil {
			t.Fatal(err)
		}
		for ri, g := range grids {
			for gi := 0; gi < g.Cells(); gi++ {
				want := gi % parts
				if assign[ri][gi] != want {
					t.Fatalf("parts=%d run %d cell %d -> %d, want %d", parts, ri, gi, assign[ri][gi], want)
				}
				if !(Plan{Shards: parts, Index: want}).Owns(gi) {
					t.Fatalf("split disagrees with Plan.Owns at cell %d", gi)
				}
			}
		}
	}
	if _, err := (RoundRobin{}).Split(grids, 0); err == nil {
		t.Error("0 parts accepted")
	}
}

func TestCostPackedUniformIsContiguousChunks(t *testing.T) {
	grids := []Grid{{Points: 2, Systems: 6}}
	costs := [][]float64{make([]float64, 12)}
	for i := range costs[0] {
		costs[0][i] = 1
	}
	assign, err := CostPacked{Costs: costs}.Split(grids, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	if !reflect.DeepEqual(assign[0], want) {
		t.Errorf("assign = %v, want %v", assign[0], want)
	}
	// An all-zero model degenerates to the same uniform split.
	zero, err := CostPacked{Costs: [][]float64{make([]float64, 12)}}.Split(grids, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero[0], want) {
		t.Errorf("zero-cost assign = %v, want %v", zero[0], want)
	}
}

func TestCostPackedBalancesSkewedCosts(t *testing.T) {
	// One cell is as expensive as all others combined: a 2-way split must
	// isolate the tail instead of halving the index space.
	grids := []Grid{{Points: 1, Systems: 8}}
	costs := [][]float64{{1, 1, 1, 1, 1, 1, 1, 7}}
	assign, err := CostPacked{Costs: costs}.Split(grids, 2)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, 2)
	for gi, part := range assign[0] {
		if part < 0 || part > 1 {
			t.Fatalf("cell %d assigned to part %d", gi, part)
		}
		if gi > 0 && part < assign[0][gi-1] {
			t.Fatalf("assignment not monotone at cell %d", gi)
		}
		sums[part] += costs[0][gi]
	}
	if sums[0] != 7 || sums[1] != 7 {
		t.Errorf("part cost sums = %v, want [7 7]", sums)
	}
}

func TestCostPackedValidation(t *testing.T) {
	grids := []Grid{{Points: 1, Systems: 3}}
	if _, err := (CostPacked{Costs: [][]float64{{1, 1}}}).Split(grids, 2); err == nil {
		t.Error("short cost row accepted")
	}
	if _, err := (CostPacked{Costs: [][]float64{{1, -1, 1}}}).Split(grids, 2); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := (CostPacked{}).Split(grids, 2); err == nil {
		t.Error("missing cost rows accepted")
	}
	if _, err := (CostPacked{Costs: [][]float64{{1, 1, 1}}}).Split(grids, 0); err == nil {
		t.Error("0 parts accepted")
	}
}

func TestFormatParseRangesRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		cells []int
		want  string
	}{
		{nil, ""},
		{[]int{0}, "0"},
		{[]int{0, 1, 2, 3, 4}, "0-4"},
		{[]int{0, 1, 2, 4, 7, 8}, "0-2,4,7-8"},
		{[]int{9, 3, 3, 0, 1, 2}, "0-3,9"}, // unsorted + duplicate input
	} {
		got := FormatRanges(tc.cells)
		if got != tc.want {
			t.Errorf("FormatRanges(%v) = %q, want %q", tc.cells, got, tc.want)
		}
		parsed, err := ParseRanges(got)
		if err != nil {
			t.Fatalf("ParseRanges(%q): %v", got, err)
		}
		back := FormatRanges(parsed)
		if back != tc.want {
			t.Errorf("round trip %q -> %v -> %q", tc.want, parsed, back)
		}
	}
	for _, bad := range []string{"x", "3-1", "-1", "1,1", "5,3", "1-2,2"} {
		if _, err := ParseRanges(bad); err == nil {
			t.Errorf("ParseRanges(%q) accepted", bad)
		}
	}
}

func TestCellSpecRoundTrip(t *testing.T) {
	names := []string{"fig5", "fig6", "tailq"}
	cells := [][]int{{0, 1, 2, 9}, nil, {4}}
	spec, err := FormatCellSpec(names, cells)
	if err != nil {
		t.Fatal(err)
	}
	if spec != "fig5=0-2,9;fig6=;tailq=4" {
		t.Errorf("spec = %q", spec)
	}
	gotNames, gotCells, err := ParseCellSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotNames, names) {
		t.Errorf("names = %v", gotNames)
	}
	if !reflect.DeepEqual(gotCells, [][]int{{0, 1, 2, 9}, nil, {4}}) {
		t.Errorf("cells = %v", gotCells)
	}
	if _, err := FormatCellSpec(names, cells[:2]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FormatCellSpec([]string{"a=b"}, [][]int{{1}}); err == nil {
		t.Error("name with '=' accepted")
	}
	for _, bad := range []string{"", "fig5", "=1", "fig5=1;;fig6=2"} {
		if _, _, err := ParseCellSpec(bad); err == nil {
			t.Errorf("ParseCellSpec(%q) accepted", bad)
		}
	}
}

// mkBatch builds a batch file holding the given global cell indices of a
// grid, with the same synthetic payloads mkFile uses.
func mkBatch(t *testing.T, selection string, grid Grid, cells []int, params string) *File {
	t.Helper()
	f := &File{
		Version:   FormatVersion,
		Selection: selection,
		Shards:    1,
		Index:     0,
		Params:    json.RawMessage(params),
		Batch:     &BatchInfo{Cells: [][]int{cells}},
		Runs:      []Run{{Experiment: selection, Grid: grid}},
	}
	for _, g := range cells {
		f.Runs[0].Cells = append(f.Runs[0].Cells, Cell{
			Point:  g / grid.Systems,
			System: g % grid.Systems,
			Seed:   int64(1000 + g),
			Data:   json.RawMessage(fmt.Sprintf(`{"v":%d}`, g)),
		})
	}
	return f
}

func TestMergeBatchesEqualsMerge(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	unsharded := mkFile(t, "fig5", grid, 1, 0, `{"seed":1}`)
	ref, err := unsharded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// An uneven contiguous decomposition: cost-packed shapes look like this.
	batches := []*File{
		mkBatch(t, "fig5", grid, []int{0, 1, 2, 3, 4, 5, 6}, `{"seed":1}`),
		mkBatch(t, "fig5", grid, []int{7}, `{"seed":1}`),
		mkBatch(t, "fig5", grid, []int{8, 9, 10, 11}, `{"seed":1}`),
	}
	merged, dups, err := MergeBatches(batches)
	if err != nil {
		t.Fatal(err)
	}
	if dups != 0 {
		t.Errorf("duplicates = %d, want 0", dups)
	}
	got, err := merged.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Errorf("batch merge is not byte-identical to the unsharded file")
	}
}

func TestMergeBatchesDiscardsDuplicatesFirstWins(t *testing.T) {
	grid := Grid{Points: 1, Systems: 4}
	a := mkBatch(t, "fig5", grid, []int{0, 1, 2}, `{"seed":1}`)
	b := mkBatch(t, "fig5", grid, []int{1, 2, 3}, `{"seed":1}`)
	// The loser's copies differ; first-completion-wins must keep a's.
	b.Runs[0].Cells[0].Data = json.RawMessage(`{"v":999}`)
	merged, dups, err := MergeBatches([]*File{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if dups != 2 {
		t.Errorf("duplicates = %d, want 2", dups)
	}
	if string(merged.Runs[0].Cells[1].Data) != `{"v":1}` {
		t.Errorf("cell 1 = %s, want the first file's copy", merged.Runs[0].Cells[1].Data)
	}
	if merged.Batch != nil {
		t.Error("merged cover still carries a batch header")
	}
}

func TestMergeBatchesRejectsBadSets(t *testing.T) {
	grid := Grid{Points: 1, Systems: 4}
	ok := func() []*File {
		return []*File{
			mkBatch(t, "fig5", grid, []int{0, 1}, `{"seed":1}`),
			mkBatch(t, "fig5", grid, []int{2, 3}, `{"seed":1}`),
		}
	}
	if _, _, err := MergeBatches(nil); err == nil {
		t.Error("empty input accepted")
	}
	incomplete := ok()[:1]
	if _, _, err := MergeBatches(incomplete); err == nil {
		t.Error("incomplete cover accepted")
	}
	truncated := ok()
	truncated[0].Runs[0].Cells = truncated[0].Runs[0].Cells[:1]
	if _, _, err := MergeBatches(truncated); err == nil {
		t.Error("truncated batch accepted")
	}
	foreign := ok()
	foreign[0].Runs[0].Cells[0].System = 3
	if _, _, err := MergeBatches(foreign); err == nil {
		t.Error("foreign cell accepted")
	}
	params := ok()
	params[1].Params = json.RawMessage(`{"seed":2}`)
	if _, _, err := MergeBatches(params); err == nil {
		t.Error("params mismatch accepted")
	}
	notBatch := ok()
	notBatch[1] = mkFile(t, "fig5", grid, 2, 1, `{"seed":1}`)
	if _, _, err := MergeBatches(notBatch); err == nil {
		t.Error("non-batch file accepted")
	}
}

func TestBatchFileContract(t *testing.T) {
	grid := Grid{Points: 1, Systems: 4}
	good := mkBatch(t, "fig5", grid, []int{1, 3}, `{"seed":1}`)
	if err := good.ValidateCells(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// Batch files survive an encode/decode round trip with their header.
	data, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Batch == nil || !reflect.DeepEqual(back.Batch.Cells, [][]int{{1, 3}}) {
		t.Errorf("batch header lost in round trip: %+v", back.Batch)
	}
	if err := back.ValidateCells(); err != nil {
		t.Errorf("round-tripped batch invalid: %v", err)
	}

	for name, mutate := range map[string]func(*File){
		"nontrivial plan":  func(f *File) { f.Shards = 2; f.Index = 1 },
		"partial header":   func(f *File) { f.Partial = &PartialInfo{Shards: 2, Present: []int{0}} },
		"set count":        func(f *File) { f.Batch.Cells = f.Batch.Cells[:0] },
		"descending cells": func(f *File) { f.Batch.Cells = [][]int{{3, 1}} },
		"out of range":     func(f *File) { f.Batch.Cells = [][]int{{1, 99}} },
	} {
		f := mkBatch(t, "fig5", grid, []int{1, 3}, `{"seed":1}`)
		mutate(f)
		if err := f.validateBatch(); err == nil {
			t.Errorf("%s accepted", name)
		}
		data, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s survived Decode", name)
		}
	}

	// Merge and MergePartial both refuse batch files outright.
	if _, err := Merge([]*File{good}); err == nil {
		t.Error("Merge accepted a batch file")
	}
	if _, err := MergePartial([]*File{good}); err == nil {
		t.Error("MergePartial accepted a batch file")
	}
}
