package shard

import (
	"bytes"
	"fmt"
	"sort"
)

// Streaming/partial merge: MergePartial aggregates any incomplete but
// mutually-consistent subset of a run's shard files into a provisional
// single-shard-equivalent file, tracking exactly which cells the subset
// covers. The cells it does hold are byte-identical to the ones the full
// merge holds — a partial merge never recomputes or re-orders anything —
// so the moment the last shard arrives, MergePartial degenerates into
// Merge and the output byte-equals the complete run's.

// PartialInfo marks a file written from an incomplete cover and records
// its provenance: which shards of the original decomposition contributed.
// The field order is part of the versioned format (docs/SHARD_FORMAT.md).
type PartialInfo struct {
	// Shards is the original decomposition's shard count N.
	Shards int `json:"shards"`
	// Present lists the contributing shard indices, strictly ascending.
	// It is always a strict subset of [0, N): a complete cover is written
	// without a PartialInfo at all.
	Present []int `json:"present_shards"`
}

// validate rejects malformed partial headers before any ownership or
// allocation decision is derived from them.
func (pi *PartialInfo) validate() error {
	if pi.Shards < 1 {
		return fmt.Errorf("shard: partial header shard count %d, need >= 1", pi.Shards)
	}
	if len(pi.Present) == 0 {
		return fmt.Errorf("shard: partial header lists no present shards")
	}
	if len(pi.Present) >= pi.Shards {
		return fmt.Errorf("shard: partial header lists %d of %d shards — a complete cover must not be partial",
			len(pi.Present), pi.Shards)
	}
	prev := -1
	for _, idx := range pi.Present {
		if idx < 0 || idx >= pi.Shards {
			return fmt.Errorf("shard: partial header shard index %d outside [0,%d)", idx, pi.Shards)
		}
		if idx <= prev {
			return fmt.Errorf("shard: partial header present shards not strictly ascending at %d", idx)
		}
		prev = idx
	}
	return nil
}

// Missing returns the absent shard indices, ascending.
func (pi *PartialInfo) Missing() []int {
	present := make(map[int]bool, len(pi.Present))
	for _, idx := range pi.Present {
		present[idx] = true
	}
	var missing []int
	for i := 0; i < pi.Shards; i++ {
		if !present[i] {
			missing = append(missing, i)
		}
	}
	return missing
}

// RunCoverage reports how much of one run's grid a partial cover holds.
type RunCoverage struct {
	Experiment string
	Grid       Grid
	// Have counts the cells present; the full grid holds Grid.Cells().
	Have int
}

// Total returns the run's full cell count.
func (c RunCoverage) Total() int { return c.Grid.Cells() }

// Complete reports whether the run's grid is fully covered.
func (c RunCoverage) Complete() bool { return c.Have == c.Total() }

// PartialCover is the result of merging an arbitrary consistent subset of
// a run's shard files: the provisional single-shard-equivalent file plus
// exact coverage accounting.
type PartialCover struct {
	// File holds the merged cells in grid order — exactly the bytes the
	// full merge would hold for them. Its Partial header is set if and
	// only if the cover is incomplete; a complete cover's File is
	// byte-identical to Merge's output.
	File *File
	// Shards is the original decomposition's shard count N.
	Shards int
	// Present and Missing partition [0, N) into the shard indices the
	// cover holds and lacks, each ascending.
	Present, Missing []int
	// Runs reports per-run coverage, in the files' canonical run order.
	Runs []RunCoverage
}

// Complete reports whether every shard of the decomposition is present.
func (p *PartialCover) Complete() bool { return len(p.Missing) == 0 }

// CellsHave returns the total number of cells the cover holds.
func (p *PartialCover) CellsHave() int {
	n := 0
	for _, r := range p.Runs {
		n += r.Have
	}
	return n
}

// CellsTotal returns the total number of cells of the full run.
func (p *PartialCover) CellsTotal() int {
	n := 0
	for _, r := range p.Runs {
		n += r.Total()
	}
	return n
}

// Fraction returns the covered fraction of the run's cells, in [0, 1].
func (p *PartialCover) Fraction() float64 {
	total := p.CellsTotal()
	if total == 0 {
		return 1
	}
	return float64(p.CellsHave()) / float64(total)
}

// partialLabel names a MergePartial input in error messages: its path
// when known, its position in the argument list otherwise (a partial
// merge's inputs carry no unique shard index).
func partialLabel(f *File, fi int) string {
	if f.Path != "" {
		return f.Path
	}
	return fmt.Sprintf("file %d", fi)
}

// indices returns the shard indices a file contributes and the shard
// count it was decomposed under: the single (Shards, Index) plan of a
// regular shard file, or the recorded present set of a partial file. It
// is the one place the partial-file contract (trivial 0/1 plan, valid
// PartialInfo) is enforced — Decode, ownership and MergePartial all
// validate through it.
func (f *File) indices() (shards int, owned []int, err error) {
	if f.Batch != nil {
		// Batch files carry no modular share: they merge through
		// MergeBatches, never through Merge or MergePartial.
		return 0, nil, fmt.Errorf("shard: %s is a cell-batch file; merge with MergeBatches", f.label())
	}
	if f.Partial != nil {
		if f.Shards != 1 || f.Index != 0 {
			return 0, nil, fmt.Errorf("shard: partial file declares shard %d/%d, want 0/1", f.Index, f.Shards)
		}
		if err := f.Partial.validate(); err != nil {
			return 0, nil, err
		}
		return f.Partial.Shards, f.Partial.Present, nil
	}
	if _, err := NewPlan(f.Shards, f.Index); err != nil {
		return 0, nil, err
	}
	return f.Shards, []int{f.Index}, nil
}

// MergePartial validates that the files are mutually-consistent pieces of
// a single run — any mix of regular shard files and partial files a
// previous MergePartial wrote — and merges whatever subset of the cover
// they form. Unlike Merge it does not require completeness; everything
// else is held to the same standard: the files must agree on selection,
// params, grid shapes and shard count, contributed shard indices must be
// disjoint, and each file must carry exactly the cells its indices own
// (a truncated shard file is rejected, not silently under-counted).
//
// The returned cover's File is the provisional single-shard equivalent:
// cells in grid order, Partial header recording the decomposition and
// present shards when — and only when — the cover is incomplete. Merging
// the complete set therefore returns a File byte-identical to Merge's,
// which is what keeps streamed/partial rendering an approximation that
// converges to, never diverges from, the full run's output.
func MergePartial(files []*File) (*PartialCover, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("shard: partial merge needs at least one file")
	}
	ref := files[0]
	refParams, err := canonicalParams(ref.Params)
	if err != nil {
		return nil, err
	}
	shards, _, err := ref.indices()
	if err != nil {
		return nil, err
	}
	seen := make([]bool, shards)
	owned := make([]map[int]bool, len(files))
	for fi, f := range files {
		n, idxs, err := f.indices()
		if err != nil {
			return nil, err
		}
		if f.Version != ref.Version {
			return nil, fmt.Errorf("shard: mixed format versions %d and %d", ref.Version, f.Version)
		}
		if f.Selection != ref.Selection {
			return nil, fmt.Errorf("shard: mixed selections %q and %q", ref.Selection, f.Selection)
		}
		if n != shards {
			return nil, fmt.Errorf("shard: mixed shard counts %d and %d", shards, n)
		}
		owned[fi] = make(map[int]bool, len(idxs))
		for _, idx := range idxs {
			if seen[idx] {
				return nil, fmt.Errorf("shard: shard index %d appears twice", idx)
			}
			seen[idx] = true
			owned[fi][idx] = true
		}
		params, err := canonicalParams(f.Params)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(params, refParams) {
			return nil, fmt.Errorf("shard: %s was produced by a different run than %s (params mismatch: %s)",
				partialLabel(f, fi), partialLabel(ref, 0), DiffParams(ref.Params, f.Params))
		}
		if len(f.Runs) != len(ref.Runs) {
			return nil, fmt.Errorf("shard: %s holds %d runs, %s holds %d",
				partialLabel(f, fi), len(f.Runs), partialLabel(ref, 0), len(ref.Runs))
		}
		for ri, r := range f.Runs {
			if r.Experiment != ref.Runs[ri].Experiment || r.Grid != ref.Runs[ri].Grid {
				return nil, fmt.Errorf("shard: %s run %d is %s %v, want %s %v",
					partialLabel(f, fi), ri, r.Experiment, r.Grid, ref.Runs[ri].Experiment, ref.Runs[ri].Grid)
			}
			if r.PayloadVersion != ref.Runs[ri].PayloadVersion {
				return nil, fmt.Errorf("shard: %s run %q records payload version %d, %s records %d",
					partialLabel(f, fi), r.Experiment, r.PayloadVersion, partialLabel(ref, 0), ref.Runs[ri].PayloadVersion)
			}
		}
	}
	var present, missing []int
	for i, ok := range seen {
		if ok {
			present = append(present, i)
		} else {
			missing = append(missing, i)
		}
	}
	sort.Ints(present) // already ascending by construction; keep it explicit

	cover := &PartialCover{
		Shards:  shards,
		Present: present,
		Missing: missing,
		File: &File{
			Version:   ref.Version,
			Selection: ref.Selection,
			Shards:    1,
			Index:     0,
			Params:    ref.Params,
			Host:      mergedHost(files),
		},
	}
	if len(missing) > 0 {
		cover.File.Partial = &PartialInfo{Shards: shards, Present: present}
	}
	presentSet := make(map[int]bool, len(present))
	for _, idx := range present {
		presentSet[idx] = true
	}
	for ri, refRun := range ref.Runs {
		grid := refRun.Grid
		// MergePartial also accepts hand-built Files that never passed
		// Decode, so re-validate before sizing allocations from the header.
		if err := grid.validate(); err != nil {
			return nil, fmt.Errorf("shard: run %q: %w", refRun.Experiment, err)
		}
		dense := make([]Cell, grid.Cells())
		filled := make([]bool, grid.Cells())
		for fi, f := range files {
			for _, c := range f.Runs[ri].Cells {
				g, err := grid.Index(c.Point, c.System)
				if err != nil {
					return nil, fmt.Errorf("shard: %s file %d: %w", refRun.Experiment, fi, err)
				}
				if !owned[fi][g%shards] {
					return nil, fmt.Errorf("shard: %s file %d holds foreign cell (%d,%d)",
						refRun.Experiment, fi, c.Point, c.System)
				}
				if filled[g] {
					return nil, fmt.Errorf("shard: %s cell (%d,%d) appears twice",
						refRun.Experiment, c.Point, c.System)
				}
				filled[g] = true
				dense[g] = c
			}
		}
		have := 0
		cells := make([]Cell, 0, grid.Cells())
		for g, ok := range filled {
			if ok {
				have++
				cells = append(cells, dense[g])
				continue
			}
			if presentSet[g%shards] {
				return nil, fmt.Errorf("shard: %s cell (%d,%d) missing from a present shard — truncated file",
					refRun.Experiment, g/grid.Systems, g%grid.Systems)
			}
		}
		cover.File.Runs = append(cover.File.Runs, Run{
			Experiment: refRun.Experiment, Grid: grid,
			PayloadVersion: refRun.PayloadVersion, Cells: cells,
		})
		cover.Runs = append(cover.Runs, RunCoverage{Experiment: refRun.Experiment, Grid: grid, Have: have})
	}
	return cover, nil
}
