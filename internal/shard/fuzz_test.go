package shard

import (
	"reflect"
	"testing"
)

// FuzzParseCellSpec checks the cell-spec grammar's round trip: anything
// ParseCellSpec accepts must re-format through FormatCellSpec and parse
// back to the identical names and (strictly ascending) cell sets —
// the property the dispatch journal and the coordinator wire rely on
// when they pass batch specs between processes.
func FuzzParseCellSpec(f *testing.F) {
	f.Add("fig5=0-4,9;fig6=1,3-17")
	f.Add("tailq=")
	f.Add("a=0;b=1-2;c=")
	f.Add("fig5=0-0")
	f.Add("=1")
	f.Add("fig5=9,1")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		names, cells, err := ParseCellSpec(spec)
		if err != nil {
			return
		}
		out, err := FormatCellSpec(names, cells)
		if err != nil {
			t.Fatalf("FormatCellSpec rejects ParseCellSpec(%q)'s output: %v", spec, err)
		}
		names2, cells2, err := ParseCellSpec(out)
		if err != nil {
			t.Fatalf("ParseCellSpec rejects FormatCellSpec's output %q: %v", out, err)
		}
		if !reflect.DeepEqual(names, names2) {
			t.Fatalf("names round trip: %q -> %q: %v != %v", spec, out, names, names2)
		}
		if len(cells) != len(cells2) {
			t.Fatalf("cells round trip: %q -> %q: %d sets != %d", spec, out, len(cells), len(cells2))
		}
		for i := range cells {
			if len(cells[i]) == 0 && len(cells2[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(cells[i], cells2[i]) {
				t.Fatalf("cells round trip: %q -> %q: set %d %v != %v", spec, out, i, cells[i], cells2[i])
			}
		}
	})
}

// FuzzParseRanges checks the range grammar alone: accepted inputs parse
// to strictly ascending sets that round trip through FormatRanges.
func FuzzParseRanges(f *testing.F) {
	f.Add("0-4,7,9-12")
	f.Add("3")
	f.Add("")
	f.Add("1-1")
	f.Add("0,2,4")
	f.Fuzz(func(t *testing.T, s string) {
		cells, err := ParseRanges(s)
		if err != nil {
			return
		}
		for i := 1; i < len(cells); i++ {
			if cells[i] <= cells[i-1] {
				t.Fatalf("ParseRanges(%q) not strictly ascending: %v", s, cells)
			}
		}
		out := FormatRanges(cells)
		cells2, err := ParseRanges(out)
		if err != nil {
			t.Fatalf("ParseRanges rejects FormatRanges' output %q: %v", out, err)
		}
		if len(cells) == 0 && len(cells2) == 0 {
			return
		}
		if !reflect.DeepEqual(cells, cells2) {
			t.Fatalf("round trip %q -> %q: %v != %v", s, out, cells, cells2)
		}
	})
}
