package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewPlanValidation(t *testing.T) {
	for _, tc := range []struct {
		shards, index int
		ok            bool
	}{
		{1, 0, true}, {3, 0, true}, {3, 2, true}, {8, 7, true},
		{0, 0, false}, {-1, 0, false}, {3, 3, false}, {3, -1, false},
	} {
		_, err := NewPlan(tc.shards, tc.index)
		if (err == nil) != tc.ok {
			t.Errorf("NewPlan(%d,%d) err=%v, want ok=%v", tc.shards, tc.index, err, tc.ok)
		}
	}
}

func TestPlanOwnershipPartitions(t *testing.T) {
	// Every cell of a grid is owned by exactly one shard, and round-robin
	// ownership spreads each outer row across all shards.
	grid := Grid{Points: 5, Systems: 7}
	for _, n := range []int{1, 3, 8} {
		counts := make([]int, n)
		for g := 0; g < grid.Cells(); g++ {
			owners := 0
			for i := 0; i < n; i++ {
				if (Plan{Shards: n, Index: i}).Owns(g) {
					owners++
					counts[i]++
				}
			}
			if owners != 1 {
				t.Fatalf("N=%d: cell %d has %d owners", n, g, owners)
			}
		}
		for i, c := range counts {
			if c < grid.Cells()/n {
				t.Errorf("N=%d: shard %d owns %d cells, want >= %d", n, i, c, grid.Cells()/n)
			}
		}
	}
	// Selector agrees with Owns through the (point, system) coordinates.
	p := Plan{Shards: 3, Index: 1}
	sel := p.Selector(grid.Systems)
	for o := 0; o < grid.Points; o++ {
		for i := 0; i < grid.Systems; i++ {
			if sel(o, i) != p.Owns(o*grid.Systems+i) {
				t.Fatalf("Selector(%d,%d) disagrees with Owns", o, i)
			}
		}
	}
}

func TestGridIndexBounds(t *testing.T) {
	g := Grid{Points: 2, Systems: 3}
	if idx, err := g.Index(1, 2); err != nil || idx != 5 {
		t.Errorf("Index(1,2) = %d,%v", idx, err)
	}
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 3}} {
		if _, err := g.Index(c[0], c[1]); err == nil {
			t.Errorf("Index(%d,%d) accepted", c[0], c[1])
		}
	}
}

// mkFile builds a shard file holding its round-robin share of a grid whose
// cell payloads encode the global index.
func mkFile(t *testing.T, selection string, grid Grid, shards, index int, params string) *File {
	t.Helper()
	plan, err := NewPlan(shards, index)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{
		Version:   FormatVersion,
		Selection: selection,
		Shards:    shards,
		Index:     index,
		Params:    json.RawMessage(params),
		Runs:      []Run{{Experiment: selection, Grid: grid}},
	}
	for g := 0; g < grid.Cells(); g++ {
		if !plan.Owns(g) {
			continue
		}
		f.Runs[0].Cells = append(f.Runs[0].Cells, Cell{
			Point:  g / grid.Systems,
			System: g % grid.Systems,
			Seed:   int64(1000 + g),
			Data:   json.RawMessage(fmt.Sprintf(`{"v":%d}`, g)),
		})
	}
	return f
}

func TestMergeReassemblesGridOrder(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	for _, n := range []int{1, 3, 8} {
		files := make([]*File, n)
		for i := range files {
			files[i] = mkFile(t, "fig5", grid, n, i, `{"seed":1}`)
		}
		// Shuffle the file order: merge must not care.
		for i, j := 0, len(files)-1; i < j; i, j = i+1, j-1 {
			files[i], files[j] = files[j], files[i]
		}
		merged, err := Merge(files)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if merged.Shards != 1 || merged.Index != 0 {
			t.Errorf("N=%d: merged decomposition %d/%d", n, merged.Index, merged.Shards)
		}
		cells := merged.Runs[0].Cells
		if len(cells) != grid.Cells() {
			t.Fatalf("N=%d: %d cells", n, len(cells))
		}
		for g, c := range cells {
			var payload struct{ V int }
			if err := json.Unmarshal(c.Data, &payload); err != nil {
				t.Fatal(err)
			}
			if payload.V != g || c.Point != g/grid.Systems || c.System != g%grid.Systems {
				t.Fatalf("N=%d: cell %d = %+v payload %d", n, g, c, payload.V)
			}
			if c.Seed != int64(1000+g) {
				t.Errorf("N=%d: cell %d lost its seed: %d", n, g, c.Seed)
			}
		}
		// A merged file is a valid 1-shard file: merging it again is the
		// identity.
		again, err := Merge([]*File{merged})
		if err != nil {
			t.Fatalf("re-merge: %v", err)
		}
		if len(again.Runs[0].Cells) != grid.Cells() {
			t.Errorf("re-merge lost cells")
		}
	}
}

func TestMergeRejectsBadShardSets(t *testing.T) {
	grid := Grid{Points: 2, Systems: 3}
	mk := func(i int) *File { return mkFile(t, "fig5", grid, 3, i, `{"seed":1}`) }
	cases := []struct {
		name  string
		files func() []*File
		want  string
	}{
		{"empty", func() []*File { return nil }, "at least one"},
		{"missing shard", func() []*File { return []*File{mk(0), mk(1)} }, "3-shard"},
		{"duplicate index", func() []*File { return []*File{mk(0), mk(1), mk(1)} }, "twice"},
		{"params mismatch", func() []*File {
			f := mkFile(t, "fig5", grid, 3, 2, `{"seed":2}`)
			return []*File{mk(0), mk(1), f}
		}, "params mismatch"},
		{"selection mismatch", func() []*File {
			f := mkFile(t, "fig6", grid, 3, 2, `{"seed":1}`)
			return []*File{mk(0), mk(1), f}
		}, "selections"},
		{"grid mismatch", func() []*File {
			f := mkFile(t, "fig5", Grid{Points: 2, Systems: 4}, 3, 2, `{"seed":1}`)
			return []*File{mk(0), mk(1), f}
		}, "run"},
		{"foreign cell", func() []*File {
			f := mk(2)
			// Move the cell to g=3 (in range, owned by shard 0 of 3).
			f.Runs[0].Cells[0].Point, f.Runs[0].Cells[0].System = 1, 0
			return []*File{mk(0), mk(1), f}
		}, "foreign"},
		{"missing cell", func() []*File {
			f := mk(2)
			f.Runs[0].Cells = f.Runs[0].Cells[1:]
			return []*File{mk(0), mk(1), f}
		}, "missing"},
		{"out of range cell", func() []*File {
			f := mk(2)
			f.Runs[0].Cells[0].Point = 99
			return []*File{mk(0), mk(1), f}
		}, "outside"},
	}
	for _, tc := range cases {
		_, err := Merge(tc.files())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFileRoundTripAndVersionGate(t *testing.T) {
	f := mkFile(t, "fig5", Grid{Points: 2, Systems: 2}, 1, 0, `{"seed":7}`)
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encode/decode/encode is not byte-stable")
	}

	path := filepath.Join(t.TempDir(), "s.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rf, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rf.CellCount() != f.CellCount() || rf.Selection != f.Selection {
		t.Errorf("file round trip lost data: %+v", rf)
	}

	f.Version = FormatVersion + 1
	bad, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}

	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCorruptGridsAreRejected: a corrupt or hand-edited grid header must
// fail with a clean validation error, never a panic or an
// allocation sized by the corrupt value.
func TestCorruptGridsAreRejected(t *testing.T) {
	mk := func(mutate func(*File)) []byte {
		f := mkFile(t, "fig5", Grid{Points: 2, Systems: 2}, 1, 0, `{"seed":1}`)
		mutate(f)
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if _, err := Decode(mk(func(f *File) { f.Runs[0].Grid.Points = -1 })); err == nil ||
		!strings.Contains(err.Error(), "negative grid") {
		t.Errorf("negative points: %v", err)
	}
	if _, err := Decode(mk(func(f *File) { f.Runs[0].Grid.Systems = -3 })); err == nil ||
		!strings.Contains(err.Error(), "negative grid") {
		t.Errorf("negative systems: %v", err)
	}
	if _, err := Decode(mk(func(f *File) { f.Runs[0].Grid = Grid{Points: 1, Systems: 1} })); err == nil ||
		!strings.Contains(err.Error(), "cells") {
		t.Errorf("more cells than grid: %v", err)
	}
	if _, err := Decode(mk(func(f *File) {
		f.Runs[0].Grid = Grid{Points: 1 << 30, Systems: 1 << 30}
	})); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized grid: %v", err)
	}
	// Merge accepts hand-built files that never passed Decode; it must
	// reject the same corruption instead of panicking.
	f := mkFile(t, "fig5", Grid{Points: 2, Systems: 2}, 1, 0, `{"seed":1}`)
	f.Runs[0].Grid.Points = -1
	if _, err := Merge([]*File{f}); err == nil || !strings.Contains(err.Error(), "negative grid") {
		t.Errorf("merge of negative grid: %v", err)
	}
}

// TestMergeRejectsInvalidDecomposition: a hand-built file whose Index
// lies outside [0, Shards) must produce a clean error, not an
// out-of-range panic when merge indexes its bookkeeping by shard index.
func TestMergeRejectsInvalidDecomposition(t *testing.T) {
	mk := func(shards, index int) *File {
		f := mkFile(t, "fig5", Grid{Points: 2, Systems: 2}, 1, 0, `{"seed":1}`)
		f.Shards, f.Index = shards, index
		return f
	}
	for _, tc := range [][2]int{{1, 5}, {1, -1}, {0, 0}} {
		if _, err := Merge([]*File{mk(tc[0], tc[1])}); err == nil {
			t.Errorf("decomposition %d/%d accepted", tc[1], tc[0])
		}
	}
}

// TestValidateCells: the per-file completeness check dispatch retry logic
// relies on — a file must hold exactly the cells its plan owns.
func TestValidateCells(t *testing.T) {
	grid := Grid{Points: 3, Systems: 4}
	for _, tc := range [][2]int{{1, 0}, {3, 0}, {3, 2}, {5, 4}} {
		if err := mkFile(t, "fig5", grid, tc[0], tc[1], `{"seed":1}`).ValidateCells(); err != nil {
			t.Errorf("complete shard %d/%d rejected: %v", tc[1], tc[0], err)
		}
	}

	// Missing one owned cell (a partial write).
	f := mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Runs[0].Cells = f.Runs[0].Cells[:len(f.Runs[0].Cells)-1]
	if err := f.ValidateCells(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("partial shard: %v", err)
	}

	// A cell another shard owns.
	f = mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Runs[0].Cells[0] = Cell{Point: 0, System: 0, Data: json.RawMessage(`{}`)} // global index 0 ∉ shard 1
	if err := f.ValidateCells(); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Errorf("foreign cell: %v", err)
	}

	// A duplicated cell.
	f = mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Runs[0].Cells = append(f.Runs[0].Cells, f.Runs[0].Cells[0])
	if err := f.ValidateCells(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate cell: %v", err)
	}

	// An out-of-range cell.
	f = mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Runs[0].Cells[0] = Cell{Point: 9, System: 9, Data: json.RawMessage(`{}`)}
	if err := f.ValidateCells(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range cell: %v", err)
	}

	// An invalid decomposition or grid fails cleanly.
	f = mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Shards, f.Index = 3, 7
	if err := f.ValidateCells(); err == nil {
		t.Error("invalid decomposition accepted")
	}
	f = mkFile(t, "fig5", grid, 3, 1, `{"seed":1}`)
	f.Runs[0].Grid.Points = -1
	if err := f.ValidateCells(); err == nil {
		t.Error("negative grid accepted")
	}
}

// TestMergeHostConsensus: the merged Host is the distinct worker
// fingerprints, sorted and joined — order-independent, idempotent under
// re-merge, and empty when every shard is reproducible (no fingerprint),
// so byte-identity runs never gain a host field.
func TestMergeHostConsensus(t *testing.T) {
	grid := Grid{Points: 2, Systems: 3}
	mk := func(host string, n, i int) *File {
		f := mkFile(t, "fig5", grid, n, i, `{"seed":1}`)
		f.Host = host
		return f
	}
	for _, tc := range []struct {
		hosts []string
		want  string
	}{
		{[]string{"", "", ""}, ""},
		{[]string{"b", "a", "b"}, "a; b"},
		{[]string{"x", "", "x"}, "x"},
	} {
		files := make([]*File, len(tc.hosts))
		for i, h := range tc.hosts {
			files[i] = mk(h, len(tc.hosts), i)
		}
		merged, err := Merge(files)
		if err != nil {
			t.Fatalf("hosts %v: %v", tc.hosts, err)
		}
		if merged.Host != tc.want {
			t.Errorf("hosts %v: merged host %q, want %q", tc.hosts, merged.Host, tc.want)
		}
		// Idempotent: a merged file re-merges to the same consensus.
		again, err := Merge([]*File{merged})
		if err != nil {
			t.Fatalf("re-merge: %v", err)
		}
		if again.Host != tc.want {
			t.Errorf("hosts %v: re-merged host %q, want %q", tc.hosts, again.Host, tc.want)
		}
	}
}

// TestHostOmittedFromJSONWhenEmpty: reproducible shard files must not
// change by a byte with the host field's existence — empty Host
// marshals to nothing.
func TestHostOmittedFromJSONWhenEmpty(t *testing.T) {
	f := mkFile(t, "fig5", Grid{Points: 1, Systems: 1}, 1, 0, `{"seed":1}`)
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"host"`)) {
		t.Errorf("empty host serialised: %s", data)
	}
	f.Host = "linux/amd64 cpus=8 go1.24.0"
	data, err = json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"host":"linux/amd64 cpus=8 go1.24.0"`)) {
		t.Errorf("host not serialised: %s", data)
	}
}
