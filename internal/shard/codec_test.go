package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// codecTestFile builds a two-run, two-shard-decomposition file with
// JSON-only payloads (no codec is registered for the fake experiment
// names, so the binary encoder exercises the JSON fallback column).
func codecTestFile() *File {
	mk := func(p, s int, seed int64, data string) Cell {
		return Cell{Point: p, System: s, Seed: seed, Data: json.RawMessage(data)}
	}
	return &File{
		Version:   FormatVersion,
		Selection: "all",
		Shards:    2,
		Index:     0,
		Params:    json.RawMessage(`{"seed":7,"systems":4}`),
		Runs: []Run{
			{
				Experiment: "codectest-a", Grid: Grid{Points: 2, Systems: 2}, PayloadVersion: 1,
				Cells: []Cell{
					mk(0, 0, -9027405967633948161, `{"ok":true,"x":0.30000000000000004}`),
					mk(1, 0, 4611686018427387904, `{"ok":false,"x":-1e-09}`),
				},
			},
			{
				Experiment: "codectest-b", Grid: Grid{Points: 1, Systems: 4}, PayloadVersion: 3,
				Cells: []Cell{
					mk(0, 0, 0, `null`),
					mk(0, 2, 12, `[1,2,3]`),
				},
			},
		},
	}
}

// stripAnnotations clears the non-serialized fields so decoded files
// compare against in-memory originals.
func stripAnnotations(f *File) *File {
	g := *f
	g.Path, g.Encoding = "", ""
	return &g
}

func TestBinaryRoundTrip(t *testing.T) {
	f := codecTestFile()
	bin, err := f.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinary(bin) {
		t.Fatalf("EncodeBinary output does not open with the magic: % x", bin[:8])
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != EncodingBinary {
		t.Fatalf("decoded Encoding = %q, want %q", got.Encoding, EncodingBinary)
	}
	if !reflect.DeepEqual(stripAnnotations(got), f) {
		t.Fatalf("binary round trip differs:\ngot  %+v\nwant %+v", got, f)
	}
	// The re-rendered v1 form must be byte-identical to encoding the
	// original directly: the binary layout is an encoding, not a lossy
	// projection.
	wantJSON, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("v2→v1 re-encode differs:\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
	// Deterministic: encoding again is byte-identical.
	bin2, err := got.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("EncodeBinary is not deterministic")
	}
}

func TestDecodeAutoDetectsEncoding(t *testing.T) {
	f := codecTestFile()
	jsonBytes, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(jsonBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != EncodingJSON {
		t.Fatalf("JSON decode Encoding = %q, want %q", got.Encoding, EncodingJSON)
	}
	// The v1 decoder keeps each payload's in-file spelling (indented), so
	// the equality that matters is the re-rendered file, not raw bytes.
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, jsonBytes) {
		t.Fatal("JSON round trip render differs")
	}
}

func TestMixedEncodingMerge(t *testing.T) {
	// One run split in two shards; shard 0 travels as v1 JSON, shard 1 as
	// v2 binary. The merge must not notice.
	grid := Grid{Points: 2, Systems: 2}
	shardFile := func(index int) *File {
		f := &File{
			Version: FormatVersion, Selection: "codectest-a", Shards: 2, Index: index,
			Params: json.RawMessage(`{"seed":1}`),
			Runs:   []Run{{Experiment: "codectest-a", Grid: grid, PayloadVersion: 1}},
		}
		for g := 0; g < grid.Cells(); g++ {
			if g%2 != index {
				continue
			}
			f.Runs[0].Cells = append(f.Runs[0].Cells, Cell{
				Point: g / grid.Systems, System: g % grid.Systems,
				Seed: int64(1000 + g), Data: json.RawMessage(fmt.Sprintf(`{"g":%d}`, g)),
			})
		}
		return f
	}
	dir := t.TempDir()
	p0 := filepath.Join(dir, "shard0.json")
	p1 := filepath.Join(dir, "shard1.bin")
	if err := shardFile(0).WriteFileAs(p0, EncodingJSON); err != nil {
		t.Fatal(err)
	}
	if err := shardFile(1).WriteFileAs(p1, EncodingBinary); err != nil {
		t.Fatal(err)
	}
	f0, err := ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if f0.Encoding != EncodingJSON || f1.Encoding != EncodingBinary {
		t.Fatalf("encodings %q/%q, want json/binary", f0.Encoding, f1.Encoding)
	}
	mixed, err := Merge([]*File{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := Merge([]*File{shardFile(0), shardFile(1)})
	if err != nil {
		t.Fatal(err)
	}
	mixedJSON, err := mixed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pureJSON, err := pure.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mixedJSON, pureJSON) {
		t.Fatal("mixed v1/v2 merge is not byte-identical to the pure v1 merge")
	}
}

func TestBinaryPreservesHeaders(t *testing.T) {
	// Partial and batch headers, host fingerprints and nil params survive
	// the round trip.
	partial := &File{
		Version: FormatVersion, Selection: "all", Shards: 1, Index: 0,
		Partial: &PartialInfo{Shards: 3, Present: []int{0, 2}},
	}
	batch := &File{
		Version: FormatVersion, Selection: "codectest-a", Shards: 1, Index: 0,
		Batch: &BatchInfo{Cells: [][]int{{0, 1}}},
		Runs: []Run{{Experiment: "codectest-a", Grid: Grid{Points: 1, Systems: 2}, Cells: []Cell{
			{Point: 0, System: 0, Data: json.RawMessage(`1`)},
			{Point: 0, System: 1, Data: json.RawMessage(`2`)},
		}}},
	}
	hosted := &File{
		Version: FormatVersion, Selection: "codectest-a", Shards: 1, Index: 0,
		Host: "linux/amd64 cpus=8 go1.24.0",
		Runs: []Run{{Experiment: "codectest-a", Grid: Grid{Points: 1, Systems: 1}, Cells: []Cell{
			{Point: 0, System: 0, Data: json.RawMessage(`1`)},
		}}},
	}
	for _, f := range []*File{partial, batch, hosted} {
		bin, err := f.EncodeBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bin)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripAnnotations(got), f) {
			t.Fatalf("header round trip differs:\ngot  %+v\nwant %+v", got, f)
		}
	}
}

// lossyCodec deliberately breaks the losslessness contract: it decodes
// every payload to {} whatever was packed.
type lossyCodec struct{}

func (lossyCodec) EncodeColumn(payloads []json.RawMessage) ([]byte, error) { return nil, nil }
func (lossyCodec) DecodeColumn(data []byte, n int) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, n)
	for i := range out {
		out[i] = json.RawMessage(`{}`)
	}
	return out, nil
}

func TestEncodeBinaryFallsBackOnLossyCodec(t *testing.T) {
	RegisterPayloadCodec("codectest-lossy", 1, lossyCodec{})
	f := &File{
		Version: FormatVersion, Selection: "codectest-lossy", Shards: 1, Index: 0,
		Runs: []Run{{Experiment: "codectest-lossy", Grid: Grid{Points: 1, Systems: 1}, PayloadVersion: 1,
			Cells: []Cell{{Point: 0, System: 0, Data: json.RawMessage(`{"v":42}`)}}}},
	}
	bin, err := f.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	// The verification pass must have rejected the lossy column and kept
	// the JSON fallback, so the payload survives.
	if want := `{"v":42}`; string(got.Runs[0].Cells[0].Data) != want {
		t.Fatalf("payload = %s, want %s (lossy codec must not be trusted)", got.Runs[0].Cells[0].Data, want)
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	f := codecTestFile()
	bin, err := f.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Any truncation must fail with an error — no panic, no silent
	// success on a prefix.
	for i := len(binaryMagic); i < len(bin); i++ {
		if _, err := Decode(bin[:i]); err == nil {
			t.Fatalf("Decode accepted a %d-byte truncation of a %d-byte file", i, len(bin))
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := Decode(append(append([]byte(nil), bin...), 0xff)); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}
	// A flipped magic byte demotes the file to the JSON path, which must
	// reject it cleanly.
	flipped := append([]byte(nil), bin...)
	flipped[0] ^= 0xff
	if _, err := Decode(flipped); err == nil {
		t.Fatal("Decode accepted a flipped-magic file")
	}
}

func TestDecodeBinaryRejectsHugeCellCount(t *testing.T) {
	// A tiny file whose header declares an enormous (but grid-legal) cell
	// count must be rejected by the remaining-bytes bound, not allocated.
	hdr := fmt.Sprintf(`{"version":1,"selection":"x","shards":1,"shard_index":0,`+
		`"runs":[{"experiment":"x","grid":{"points":4096,"systems":4096},"cells":%d,"column":"json"}]}`,
		4096*4096)
	w := &ColumnWriter{}
	w.Blob([]byte(hdr))
	w.Blob(nil) // params
	data := append(append([]byte(nil), binaryMagic[:]...), w.Bytes()...)
	_, err := Decode(data)
	if err == nil || !strings.Contains(err.Error(), "bytes remain") {
		t.Fatalf("Decode error = %v, want a remaining-bytes bound failure", err)
	}
}

func TestParseEncoding(t *testing.T) {
	for in, want := range map[string]string{"": EncodingJSON, "json": EncodingJSON, "binary": EncodingBinary} {
		got, err := ParseEncoding(in)
		if err != nil || got != want {
			t.Fatalf("ParseEncoding(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseEncoding("v3"); err == nil {
		t.Fatal("ParseEncoding accepted an unknown codec name")
	}
}

func TestSniffFileEncoding(t *testing.T) {
	dir := t.TempDir()
	f := codecTestFile()
	for _, enc := range []string{EncodingJSON, EncodingBinary} {
		path := filepath.Join(dir, enc)
		if err := f.WriteFileAs(path, enc); err != nil {
			t.Fatal(err)
		}
		got, err := SniffFileEncoding(path)
		if err != nil || got != enc {
			t.Fatalf("SniffFileEncoding(%s) = %q, %v; want %q", path, got, err, enc)
		}
	}
	// An empty file sniffs as JSON (and would fail Decode later).
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := SniffFileEncoding(empty); err != nil || got != EncodingJSON {
		t.Fatalf("SniffFileEncoding(empty) = %q, %v", got, err)
	}
}
