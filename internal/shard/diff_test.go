package shard

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDiffParams(t *testing.T) {
	cases := []struct {
		name      string
		want, got string
		expect    string
	}{
		{"seed differs", `{"seed":1,"systems":4}`, `{"seed":2,"systems":4}`, `param "seed" differs: 1 vs 2`},
		{"systems differs", `{"seed":1,"systems":4}`, `{"seed":1,"systems":8}`, `param "systems" differs: 4 vs 8`},
		{"key absent on one side", `{"seed":1,"ablation_u":0.6}`, `{"seed":1}`, `param "ablation_u" differs: 0.6 vs (absent)`},
		{"key absent on the other", `{"seed":1}`, `{"seed":1,"paper_scale":true}`, `param "paper_scale" differs: (absent) vs true`},
		{"array differs", `{"multidevice_counts":[1,2,4,8]}`, `{"multidevice_counts":[1,2]}`, `param "multidevice_counts" differs: [1,2,4,8] vs [1,2]`},
		{"first of several named (sorted)", `{"b":1,"a":1}`, `{"b":2,"a":2}`, `param "a" differs: 1 vs 2`},
		{"undecodable falls back", `{"seed":`, `{"seed":1}`, "params differ"},
		{"equal falls back", `{"seed":1}`, `{"seed":1}`, "params differ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DiffParams(json.RawMessage(tc.want), json.RawMessage(tc.got)); got != tc.expect {
				t.Errorf("DiffParams(%s, %s) = %q, want %q", tc.want, tc.got, got, tc.expect)
			}
		})
	}
}

// diffFile builds a minimal valid shard file for the message tests.
func diffFile(index int, path, params string) *File {
	return &File{
		Version: FormatVersion, Selection: "fig5", Shards: 2, Index: index,
		Params: json.RawMessage(params), Path: path,
		Runs: []Run{{Experiment: "fig5", Grid: Grid{Points: 1, Systems: 2}}},
	}
}

// TestMergeMismatchMessages table-tests the validation errors: each must
// name the offending file (its path when known) and, for params, the
// specific mismatched parameter — not just "params differ".
func TestMergeMismatchMessages(t *testing.T) {
	cases := []struct {
		name  string
		files func() []*File
		want  []string
	}{
		{
			"params mismatch names path and param",
			func() []*File {
				a := diffFile(0, "work/shard0.json", `{"seed":1}`)
				b := diffFile(1, "work/shard1.json", `{"seed":2}`)
				return []*File{a, b}
			},
			[]string{"work/shard1.json", "params mismatch", `param "seed" differs: 1 vs 2`, "work/shard0.json"},
		},
		{
			"pathless files fall back to the shard index",
			func() []*File {
				a := diffFile(0, "", `{"seed":1}`)
				b := diffFile(1, "", `{"seed":1,"systems":6}`)
				return []*File{a, b}
			},
			[]string{"shard 1", `param "systems" differs: (absent) vs 6`},
		},
		{
			"payload version mismatch names the run",
			func() []*File {
				a := diffFile(0, "work/shard0.json", `{"seed":1}`)
				b := diffFile(1, "work/shard1.json", `{"seed":1}`)
				b.Runs[0].PayloadVersion = 2
				return []*File{a, b}
			},
			[]string{"work/shard1.json", `run "fig5"`, "payload version 2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Merge(tc.files())
			if err == nil {
				t.Fatal("mismatched files merged")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name %q", err, want)
				}
			}
			// MergePartial holds the same files to the same standard.
			_, perr := MergePartial(tc.files())
			if perr == nil {
				t.Fatal("mismatched files partially merged")
			}
			for _, want := range tc.want {
				if strings.HasPrefix(want, "shard ") {
					// MergePartial labels pathless inputs by argument
					// position, not shard index.
					want = "file 1"
				}
				if !strings.Contains(perr.Error(), want) {
					t.Errorf("partial error %q does not name %q", perr, want)
				}
			}
		})
	}
}
