package shard

import (
	"bytes"
	"fmt"
)

// Cell-batch files: the unit of balanced dispatch. A batch file holds an
// arbitrary explicit subset of each run's cells — whatever a cost-packed
// decomposition assigned to one batch — instead of the implicit
// round-robin share a (Shards, Index) plan owns. The Batch header makes
// the file self-describing, so resume can recover exactly which cells a
// directory already covers, and MergeBatches can verify a set of batch
// files forms a complete cover before emitting the single-shard
// equivalent — byte-identical to the unsharded run, like every other
// merge path.

// BatchInfo marks a file as a cell batch and records which cells it
// holds: one strictly-ascending global-cell-index set per run, parallel
// to Runs. Batch files always declare the trivial 1/0 plan and are never
// partial covers — the batch header *is* their decomposition.
type BatchInfo struct {
	Cells [][]int `json:"cells"`
}

// validateBatch enforces the batch-file contract against the file's runs:
// trivial 1/0 plan, no Partial header, one in-range strictly-ascending
// cell set per run.
func (f *File) validateBatch() error {
	if f.Batch == nil {
		return fmt.Errorf("shard: not a batch file")
	}
	if f.Shards != 1 || f.Index != 0 {
		return fmt.Errorf("shard: batch file declares shard %d/%d, want 0/1", f.Index, f.Shards)
	}
	if f.Partial != nil {
		return fmt.Errorf("shard: batch file carries a partial header")
	}
	if len(f.Batch.Cells) != len(f.Runs) {
		return fmt.Errorf("shard: batch header lists %d cell sets for %d runs", len(f.Batch.Cells), len(f.Runs))
	}
	for ri, r := range f.Runs {
		if err := r.Grid.validate(); err != nil {
			return fmt.Errorf("shard: run %q: %w", r.Experiment, err)
		}
		prev := -1
		for _, g := range f.Batch.Cells[ri] {
			if g < 0 || g >= r.Grid.Cells() {
				return fmt.Errorf("shard: run %q batch cell %d outside %dx%d grid",
					r.Experiment, g, r.Grid.Points, r.Grid.Systems)
			}
			if g <= prev {
				return fmt.Errorf("shard: run %q batch cells not strictly ascending at %d", r.Experiment, g)
			}
			prev = g
		}
	}
	return nil
}

// validateBatchCells verifies each run holds exactly the cells its batch
// header declares: every cell a member, none duplicated, none missing.
// It is ValidateCells' batch branch.
func (f *File) validateBatchCells() error {
	if err := f.validateBatch(); err != nil {
		return err
	}
	for ri, r := range f.Runs {
		member := make(map[int]bool, len(f.Batch.Cells[ri]))
		for _, g := range f.Batch.Cells[ri] {
			member[g] = true
		}
		filled := make(map[int]bool, len(member))
		for _, c := range r.Cells {
			g, err := r.Grid.Index(c.Point, c.System)
			if err != nil {
				return fmt.Errorf("shard: run %q: %w", r.Experiment, err)
			}
			if !member[g] {
				return fmt.Errorf("shard: run %q holds foreign cell (%d,%d) for its batch",
					r.Experiment, c.Point, c.System)
			}
			if filled[g] {
				return fmt.Errorf("shard: run %q cell (%d,%d) appears twice", r.Experiment, c.Point, c.System)
			}
			filled[g] = true
		}
		if len(filled) != len(member) {
			for _, g := range f.Batch.Cells[ri] {
				if !filled[g] {
					return fmt.Errorf("shard: run %q cell (%d,%d) missing — truncated batch",
						r.Experiment, g/r.Grid.Systems, g%r.Grid.Systems)
				}
			}
		}
	}
	return nil
}

// MergeBatches validates that the batch files cover every cell of a
// single run's grids and returns the single-shard equivalent file —
// byte-identical to Merge's output for the same run — plus the number of
// duplicate cells discarded. Unlike Merge, the inputs may overlap:
// work-stealing legitimately produces the same cell from two workers, so
// cells are merged first-completion-wins in the files' given order and
// later copies are discarded by cell key, not rejected. Everything else
// is strict: every file must be a self-consistent batch file of the same
// run (selection, params, grids, payload versions), every file must hold
// exactly the cells its header declares, and the union must be complete.
func MergeBatches(files []*File) (*File, int, error) {
	if len(files) == 0 {
		return nil, 0, fmt.Errorf("shard: batch merge needs at least one file")
	}
	ref := files[0]
	refParams, err := canonicalParams(ref.Params)
	if err != nil {
		return nil, 0, err
	}
	for fi, f := range files {
		// MergeBatches also accepts hand-built Files that never passed
		// Decode; hold them to the full batch contract first.
		if f.Batch == nil {
			return nil, 0, fmt.Errorf("shard: %s is not a cell-batch file; use Merge or MergePartial",
				partialLabel(f, fi))
		}
		if err := f.validateBatchCells(); err != nil {
			return nil, 0, err
		}
		if f.Version != ref.Version {
			return nil, 0, fmt.Errorf("shard: mixed format versions %d and %d", ref.Version, f.Version)
		}
		if f.Selection != ref.Selection {
			return nil, 0, fmt.Errorf("shard: mixed selections %q and %q", ref.Selection, f.Selection)
		}
		params, err := canonicalParams(f.Params)
		if err != nil {
			return nil, 0, err
		}
		if !bytes.Equal(params, refParams) {
			return nil, 0, fmt.Errorf("shard: %s was produced by a different run than %s (params mismatch: %s)",
				partialLabel(f, fi), partialLabel(ref, 0), DiffParams(ref.Params, f.Params))
		}
		if len(f.Runs) != len(ref.Runs) {
			return nil, 0, fmt.Errorf("shard: %s holds %d runs, %s holds %d",
				partialLabel(f, fi), len(f.Runs), partialLabel(ref, 0), len(ref.Runs))
		}
		for ri, r := range f.Runs {
			if r.Experiment != ref.Runs[ri].Experiment || r.Grid != ref.Runs[ri].Grid {
				return nil, 0, fmt.Errorf("shard: %s run %d is %s %v, want %s %v",
					partialLabel(f, fi), ri, r.Experiment, r.Grid, ref.Runs[ri].Experiment, ref.Runs[ri].Grid)
			}
			if r.PayloadVersion != ref.Runs[ri].PayloadVersion {
				return nil, 0, fmt.Errorf("shard: %s run %q records payload version %d, %s records %d",
					partialLabel(f, fi), r.Experiment, r.PayloadVersion, partialLabel(ref, 0), ref.Runs[ri].PayloadVersion)
			}
		}
	}
	merged := &File{
		Version:   ref.Version,
		Selection: ref.Selection,
		Shards:    1,
		Index:     0,
		Params:    ref.Params,
		Host:      mergedHost(files),
	}
	duplicates := 0
	for ri, refRun := range ref.Runs {
		grid := refRun.Grid
		if err := grid.validate(); err != nil {
			return nil, 0, fmt.Errorf("shard: run %q: %w", refRun.Experiment, err)
		}
		cells := make([]Cell, grid.Cells())
		filled := make([]bool, grid.Cells())
		for _, f := range files {
			for _, c := range f.Runs[ri].Cells {
				g, err := grid.Index(c.Point, c.System)
				if err != nil {
					return nil, 0, fmt.Errorf("shard: %s: %w", refRun.Experiment, err)
				}
				if filled[g] {
					// First completion wins: a stolen batch's loser copy
					// of the same cell is discarded, not an error.
					duplicates++
					continue
				}
				filled[g] = true
				cells[g] = c
			}
		}
		for g, ok := range filled {
			if !ok {
				return nil, 0, fmt.Errorf("shard: %s cell (%d,%d) missing — incomplete batch set",
					refRun.Experiment, g/grid.Systems, g%grid.Systems)
			}
		}
		merged.Runs = append(merged.Runs, Run{
			Experiment: refRun.Experiment, Grid: grid,
			PayloadVersion: refRun.PayloadVersion, Cells: cells,
		})
	}
	return merged, duplicates, nil
}
