package device

import (
	"fmt"

	"repro/internal/timing"
)

// Pin identifies one line of a GPIO bank.
type Pin int

// Edge is one recorded pin transition.
type Edge struct {
	At    timing.Cycle
	Pin   Pin
	Level bool
}

// GPIOBank is an n-pin general-purpose I/O bank. Writes are immediate
// (single-cycle from the EXU's perspective); every level change is recorded.
type GPIOBank struct {
	name   string
	levels []bool
	edges  []Edge
}

// NewGPIOBank returns a bank with pins all low.
func NewGPIOBank(name string, pins int) (*GPIOBank, error) {
	if pins <= 0 {
		return nil, fmt.Errorf("device: GPIO bank %q needs at least one pin", name)
	}
	return &GPIOBank{name: name, levels: make([]bool, pins)}, nil
}

// Name returns the bank's name.
func (g *GPIOBank) Name() string { return g.name }

// Pins returns the number of pins.
func (g *GPIOBank) Pins() int { return len(g.levels) }

// Set drives pin to level at the given cycle, recording an edge if the
// level changes.
func (g *GPIOBank) Set(pin Pin, level bool, now timing.Cycle) error {
	if int(pin) < 0 || int(pin) >= len(g.levels) {
		return fmt.Errorf("device: %s has no pin %d", g.name, pin)
	}
	if g.levels[pin] != level {
		g.levels[pin] = level
		g.edges = append(g.edges, Edge{At: now, Pin: pin, Level: level})
	}
	return nil
}

// Toggle inverts the pin level.
func (g *GPIOBank) Toggle(pin Pin, now timing.Cycle) error {
	if int(pin) < 0 || int(pin) >= len(g.levels) {
		return fmt.Errorf("device: %s has no pin %d", g.name, pin)
	}
	return g.Set(pin, !g.levels[pin], now)
}

// Read returns the current level of pin.
func (g *GPIOBank) Read(pin Pin) (bool, error) {
	if int(pin) < 0 || int(pin) >= len(g.levels) {
		return false, fmt.Errorf("device: %s has no pin %d", g.name, pin)
	}
	return g.levels[pin], nil
}

// Edges returns all recorded transitions in chronological order. The
// returned slice is owned by the bank; callers must not modify it.
func (g *GPIOBank) Edges() []Edge { return g.edges }

// EdgesFor returns the transitions of one pin.
func (g *GPIOBank) EdgesFor(pin Pin) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.Pin == pin {
			out = append(out, e)
		}
	}
	return out
}

// Frame is one unit transmitted by a protocol engine.
type Frame struct {
	// At is the cycle transmission began.
	At timing.Cycle
	// Duration is the bus occupancy in cycles.
	Duration timing.Cycle
	// Data is the payload (one byte for UART, a word for SPI, up to eight
	// bytes for CAN).
	Data []byte
}

// End returns the cycle the frame left the bus.
func (f *Frame) End() timing.Cycle { return f.At + f.Duration }

// UART is an 8N1 serial transmitter: every byte costs 10 bit times
// (start + 8 data + stop).
type UART struct {
	name         string
	CyclesPerBit timing.Cycle
	frames       []Frame
}

// NewUART builds a transmitter. cyclesPerBit must be positive (e.g. a
// 100 MHz controller driving 115200 baud uses ~868 cycles/bit).
func NewUART(name string, cyclesPerBit timing.Cycle) (*UART, error) {
	if cyclesPerBit <= 0 {
		return nil, fmt.Errorf("device: UART %q cyclesPerBit must be positive", name)
	}
	return &UART{name: name, CyclesPerBit: cyclesPerBit}, nil
}

// Name returns the device name.
func (u *UART) Name() string { return u.name }

// FrameDuration returns the bus occupancy of one byte.
func (u *UART) FrameDuration() timing.Cycle { return 10 * u.CyclesPerBit }

// Transmit sends one byte at now and returns the frame.
func (u *UART) Transmit(b byte, now timing.Cycle) Frame {
	f := Frame{At: now, Duration: u.FrameDuration(), Data: []byte{b}}
	u.frames = append(u.frames, f)
	return f
}

// Frames returns all transmitted frames.
func (u *UART) Frames() []Frame { return u.frames }

// SPI is a full-duplex shift engine: a word of Bits bits costs
// Bits·CyclesPerBit.
type SPI struct {
	name         string
	Bits         int
	CyclesPerBit timing.Cycle
	frames       []Frame
}

// NewSPI builds a shift engine with the given word width.
func NewSPI(name string, bits int, cyclesPerBit timing.Cycle) (*SPI, error) {
	if bits <= 0 || bits > 64 {
		return nil, fmt.Errorf("device: SPI %q word width %d out of range", name, bits)
	}
	if cyclesPerBit <= 0 {
		return nil, fmt.Errorf("device: SPI %q cyclesPerBit must be positive", name)
	}
	return &SPI{name: name, Bits: bits, CyclesPerBit: cyclesPerBit}, nil
}

// Name returns the device name.
func (s *SPI) Name() string { return s.name }

// FrameDuration returns the bus occupancy of one word.
func (s *SPI) FrameDuration() timing.Cycle { return timing.Cycle(s.Bits) * s.CyclesPerBit }

// Transfer shifts one word at now and returns the frame.
func (s *SPI) Transfer(word uint64, now timing.Cycle) Frame {
	data := make([]byte, 0, 8)
	for i := 0; i < (s.Bits+7)/8; i++ {
		data = append(data, byte(word>>(8*i)))
	}
	f := Frame{At: now, Duration: s.FrameDuration(), Data: data}
	s.frames = append(s.frames, f)
	return f
}

// Frames returns all transferred frames.
func (s *SPI) Frames() []Frame { return s.frames }

// CAN is a CAN 2.0A transmitter. A frame with n payload bytes has
// 44 + 8n nominal bits; the worst-case stuffing adds ⌊(34 + 8n − 1)/4⌋
// bits (Davis et al.), and this model always charges the worst case so the
// occupancy matches the WCET the schedulers budget.
type CAN struct {
	name         string
	CyclesPerBit timing.Cycle
	frames       []Frame
}

// NewCAN builds a transmitter (e.g. 100 MHz / 500 kbit/s = 200 cycles/bit).
func NewCAN(name string, cyclesPerBit timing.Cycle) (*CAN, error) {
	if cyclesPerBit <= 0 {
		return nil, fmt.Errorf("device: CAN %q cyclesPerBit must be positive", name)
	}
	return &CAN{name: name, CyclesPerBit: cyclesPerBit}, nil
}

// Name returns the device name.
func (c *CAN) Name() string { return c.name }

// FrameBits returns the worst-case bit count of a frame with n payload
// bytes (0..8).
func FrameBits(n int) (int, error) {
	if n < 0 || n > 8 {
		return 0, fmt.Errorf("device: CAN payload %d bytes out of range 0..8", n)
	}
	return 44 + 8*n + (34+8*n-1)/4, nil
}

// FrameDuration returns the worst-case bus occupancy of an n-byte frame.
func (c *CAN) FrameDuration(n int) (timing.Cycle, error) {
	bits, err := FrameBits(n)
	if err != nil {
		return 0, err
	}
	return timing.Cycle(bits) * c.CyclesPerBit, nil
}

// Transmit sends a frame at now.
func (c *CAN) Transmit(payload []byte, now timing.Cycle) (Frame, error) {
	d, err := c.FrameDuration(len(payload))
	if err != nil {
		return Frame{}, err
	}
	f := Frame{At: now, Duration: d, Data: append([]byte(nil), payload...)}
	c.frames = append(c.frames, f)
	return f, nil
}

// Frames returns all transmitted frames.
func (c *CAN) Frames() []Frame { return c.frames }
