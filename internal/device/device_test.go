package device

import (
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestGPIOBankBasics(t *testing.T) {
	g, err := NewGPIOBank("bank0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "bank0" || g.Pins() != 4 {
		t.Fatal("metadata broken")
	}
	if lvl, _ := g.Read(0); lvl {
		t.Error("pins must start low")
	}
	if err := g.Set(0, true, 100); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := g.Read(0); !lvl {
		t.Error("set did not stick")
	}
	// Redundant write records no edge.
	g.Set(0, true, 150)
	g.Set(0, false, 200)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != (Edge{At: 100, Pin: 0, Level: true}) {
		t.Errorf("edge 0 = %+v", edges[0])
	}
	if edges[1] != (Edge{At: 200, Pin: 0, Level: false}) {
		t.Errorf("edge 1 = %+v", edges[1])
	}
}

func TestGPIOToggle(t *testing.T) {
	g, _ := NewGPIOBank("b", 2)
	g.Toggle(1, 10)
	g.Toggle(1, 20)
	es := g.EdgesFor(1)
	if len(es) != 2 || !es[0].Level || es[1].Level {
		t.Fatalf("toggle edges = %v", es)
	}
	if len(g.EdgesFor(0)) != 0 {
		t.Error("pin 0 should have no edges")
	}
}

func TestGPIOErrors(t *testing.T) {
	if _, err := NewGPIOBank("x", 0); err == nil {
		t.Error("zero pins accepted")
	}
	g, _ := NewGPIOBank("x", 2)
	if err := g.Set(5, true, 0); err == nil {
		t.Error("out-of-range set accepted")
	}
	if err := g.Toggle(-1, 0); err == nil {
		t.Error("out-of-range toggle accepted")
	}
	if _, err := g.Read(9); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestUARTFrameTiming(t *testing.T) {
	u, err := NewUART("uart0", 868) // ~115200 baud at 100 MHz
	if err != nil {
		t.Fatal(err)
	}
	f := u.Transmit(0x55, 1000)
	if f.Duration != 8680 {
		t.Errorf("duration = %d, want 8680 (10 bits)", f.Duration)
	}
	if f.End() != 1000+8680 {
		t.Errorf("end = %d", f.End())
	}
	if len(u.Frames()) != 1 || u.Frames()[0].Data[0] != 0x55 {
		t.Error("frame log broken")
	}
	if _, err := NewUART("bad", 0); err == nil {
		t.Error("zero cyclesPerBit accepted")
	}
}

func TestSPIFrameTiming(t *testing.T) {
	s, err := NewSPI("spi0", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Transfer(0xBEEF, 0)
	if f.Duration != 64 {
		t.Errorf("duration = %d, want 64", f.Duration)
	}
	if len(f.Data) != 2 || f.Data[0] != 0xEF || f.Data[1] != 0xBE {
		t.Errorf("data = %x", f.Data)
	}
	if _, err := NewSPI("bad", 0, 4); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := NewSPI("bad", 65, 4); err == nil {
		t.Error("overwide word accepted")
	}
	if _, err := NewSPI("bad", 8, 0); err == nil {
		t.Error("zero cyclesPerBit accepted")
	}
}

func TestCANFrameBits(t *testing.T) {
	// 8-byte frame: 44 + 64 = 108 nominal bits + ⌊97/4⌋ = 24 stuff bits.
	bits, err := FrameBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 132 {
		t.Errorf("8-byte frame bits = %d, want 132", bits)
	}
	bits, _ = FrameBits(0)
	if bits != 44+8 {
		t.Errorf("0-byte frame bits = %d, want 52", bits)
	}
	if _, err := FrameBits(9); err == nil {
		t.Error("9-byte payload accepted")
	}
	if _, err := FrameBits(-1); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestCANTransmit(t *testing.T) {
	c, err := NewCAN("can0", 200) // 500 kbit/s at 100 MHz
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Transmit([]byte{1, 2, 3}, 500)
	if err != nil {
		t.Fatal(err)
	}
	wantBits := 44 + 24 + (34+24-1)/4
	if f.Duration != timing.Cycle(wantBits)*200 {
		t.Errorf("duration = %d, want %d", f.Duration, wantBits*200)
	}
	if len(c.Frames()) != 1 {
		t.Error("frame log broken")
	}
	if _, err := c.Transmit(make([]byte, 9), 0); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := NewCAN("bad", -1); err == nil {
		t.Error("negative cyclesPerBit accepted")
	}
	// Transmit must copy the payload.
	buf := []byte{7}
	f2, _ := c.Transmit(buf, 600)
	buf[0] = 9
	if f2.Data[0] != 7 {
		t.Error("CAN frame aliases caller buffer")
	}
}

// Property: a random pin-write sequence produces edges exactly at level
// changes, alternating levels per pin, with non-decreasing timestamps.
func TestGPIOEdgeProperty(t *testing.T) {
	f := func(writes []bool) bool {
		g, err := NewGPIOBank("p", 1)
		if err != nil {
			return false
		}
		now := timing.Cycle(0)
		changes := 0
		last := false
		for _, w := range writes {
			now += 5
			g.Set(0, w, now)
			if w != last {
				changes++
				last = w
			}
		}
		edges := g.EdgesFor(0)
		if len(edges) != changes {
			return false
		}
		want := true
		for i, e := range edges {
			if e.Level != want {
				return false
			}
			want = !want
			if i > 0 && edges[i-1].At >= e.At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
