// Package device models the I/O devices hanging off the controller: a
// GPIO bank with pin-level waveform capture, and UART/SPI/CAN protocol
// engines with per-frame timing.
//
// The scheduling layer only sees a device through the time a command
// occupies it (the task's Ci); the models here additionally expose the
// observable effects — pin edges and transmitted frames with cycle
// timestamps — so integration tests and examples can verify that the
// hardware executed the offline schedule exactly.
package device
