package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		out, err := Map(p, context.Background(), 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestEachReturnsFirstErrorInIndexOrder(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	fn := func(_ context.Context, i int) error {
		switch i {
		case 7:
			return errA
		case 31:
			return errB
		}
		return nil
	}
	// The serial and every parallel pool must agree on the reported error:
	// the lowest failing index, regardless of goroutine scheduling.
	for _, workers := range []int{1, 2, 8} {
		if err := New(workers).Each(context.Background(), 64, fn); !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := New(workers).Each(context.Background(), 200, func(_ context.Context, _ int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestEachErrorContract(t *testing.T) {
	// Every index below the lowest failing one runs; the lowest failure is
	// reported — at any worker count.
	const n, failAt = 200, 40
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		var ran [n]atomic.Bool
		err := New(workers).Each(context.Background(), n, func(_ context.Context, i int) error {
			ran[i].Store(true)
			if i == failAt {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := 0; i <= failAt; i++ {
			if !ran[i].Load() {
				t.Errorf("workers=%d: task %d below the failing index was skipped", workers, i)
			}
		}
	}
}

func TestEachHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := New(workers).Each(ctx, 10, func(_ context.Context, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d tasks ran under a cancelled context", workers, ran.Load())
		}
	}
}

func TestEachAndMapEmpty(t *testing.T) {
	if err := New(4).Each(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Map(New(4), context.Background(), 0, func(_ context.Context, _ int) (int, error) {
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestNewNormalisesWorkers(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d", got)
	}
	if got := (Pool{}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero-value Workers() = %d", got)
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	base := int64(42)
	if DeriveSeed(base) != DeriveSeed(base) {
		t.Error("DeriveSeed is not stable")
	}
	seen := map[int64]string{}
	record := func(name string, s int64) {
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %s == %s", name, prev)
		}
		seen[s] = name
	}
	record("base", DeriveSeed(base))
	record("(0)", DeriveSeed(base, 0))
	record("(1)", DeriveSeed(base, 1))
	record("(0,1)", DeriveSeed(base, 0, 1))
	record("(1,0)", DeriveSeed(base, 1, 0))
	record("(0,0)", DeriveSeed(base, 0, 0))
	record("otherbase(0)", DeriveSeed(base+1, 0))
	// RNG streams from sibling seeds must not be identical.
	a, b := RNG(base, 7), RNG(base, 8)
	same := true
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("sibling RNG streams are identical")
	}
}

// TestPoolStress hammers the pool with many small indexed writes; run
// under -race it proves the claim that per-index result slots and the
// atomic work counter are the only coordination the engine needs.
func TestPoolStress(t *testing.T) {
	const n = 5000
	p := New(8)
	for round := 0; round < 4; round++ {
		out, err := Map(p, context.Background(), n, func(_ context.Context, i int) (int64, error) {
			// Touch a derived RNG per task, as real callers do.
			return RNG(int64(round), int64(i)).Int63(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if want := RNG(int64(round), int64(i)).Int63(); out[i] != want {
				t.Fatalf("round %d slot %d: %d != %d", round, i, out[i], want)
			}
		}
	}
}
