package exec

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded, order-preserving parallel executor. The zero value
// behaves like New(0): one worker per available CPU.
type Pool struct {
	workers int
}

// New returns a pool with the given number of workers; workers <= 0
// selects runtime.GOMAXPROCS(0) (one worker per available CPU).
func New(workers int) Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Pool{workers: workers}
}

// Workers returns the pool's worker bound.
func (p Pool) Workers() int {
	if p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// Each runs fn(ctx, i) for every i in [0, n), with at most p.Workers()
// invocations in flight at once. A single worker runs the tasks inline in
// index order, with no goroutines.
//
// Error contract, identical at every worker count: every task whose index
// is below the lowest failing index runs; tasks above it may be skipped
// (so an early failure aborts a large grid quickly instead of computing
// results that will be discarded); and the returned error is always the
// one at the lowest failing index — not the temporally first — so for a
// deterministic fn the outcome is independent of goroutine scheduling.
// Side effects of tasks past the lowest failing index are unspecified. A
// cancelled ctx stops unstarted tasks, which report ctx.Err().
func (p Pool) Each(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	// firstErr tracks the lowest failing index seen so far; tasks above it
	// are skipped. Every index below it still runs, so the final scan
	// always finds the true lowest failure.
	var firstErr atomic.Int64
	firstErr.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > firstErr.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(ctx, i) for every i in [0, n) on the pool and returns the
// results in index order. On error the results are discarded and the first
// failure in index order is returned (see Pool.Each).
func Map[T any](p Pool, ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Each(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// splitmix64 is Steele et al.'s SplitMix64 finaliser: a cheap bijective
// mixer whose output passes BigCrush, which makes consecutive stream tags
// (0, 1, 2, …) yield statistically independent seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed derives an independent sub-seed from a base seed and a path
// of stream tags (experiment index, utilisation index, system index, …).
// The derivation is position-sensitive: DeriveSeed(s, 1, 0) and
// DeriveSeed(s, 0, 1) differ. Tasks seeded this way own disjoint
// randomness streams, so fanning them across a Pool cannot race on — or
// reorder draws from — a shared *rand.Rand.
func DeriveSeed(base int64, streams ...int64) int64 {
	h := splitmix64(uint64(base))
	for _, s := range streams {
		h = splitmix64(h ^ splitmix64(uint64(s)))
	}
	return int64(h)
}

// RNG returns a private *rand.Rand seeded with DeriveSeed(base, streams...).
func RNG(base int64, streams ...int64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, streams...)))
}
