// Package exec is the deterministic parallel execution engine shared by
// the scheduling, GA and experiment layers.
//
// The engine has one design constraint, inherited from the paper's setting
// (timing-accurate systems on multi- and many-core hosts): parallel
// speedup must never change results. Every construct here is therefore
// order-preserving and free of shared mutable state:
//
//   - Pool is a bounded worker pool whose tasks are indexed; Map collects
//     results in index order, and errors are reported in index order, so
//     the outcome of a run is independent of goroutine scheduling;
//   - DeriveSeed mixes a base seed with per-task stream tags (splitmix64),
//     so each task owns a private, reproducible randomness stream instead
//     of sharing one *rand.Rand across goroutines.
//
// A caller that runs the same work at Pool sizes 1 and NumCPU gets
// byte-identical results; the repository's parallel/serial equivalence
// tests enforce this for ScheduleAll, ga.Solve and the experiment runners.
package exec
