package controller

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/quality"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

func newGPIOProc(t *testing.T, pol Policy) (*sim.Kernel, *Memory, *device.GPIOBank, *Processor) {
	t.Helper()
	var k sim.Kernel
	mem, err := NewMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := device.NewGPIOBank("gpio0", 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(&k, mem, GPIOExecutor{Bank: bank}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return &k, mem, bank, p
}

func TestMemoryAccounting(t *testing.T) {
	mem, err := NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	prog := Program{{Op: OpSetPin, Pin: 0}, {Op: OpClearPin, Pin: 0}}
	if err := mem.Preload(1, prog); err != nil {
		t.Fatal(err)
	}
	if mem.Used() != 16 {
		t.Errorf("used = %d, want 16", mem.Used())
	}
	// Replace with a larger program: accounting adjusts.
	if err := mem.Preload(1, Program{{Op: OpSetPin}, {Op: OpWait, Arg: 5}, {Op: OpClearPin}}); err != nil {
		t.Fatal(err)
	}
	if mem.Used() != 24 {
		t.Errorf("used after replace = %d, want 24", mem.Used())
	}
	// Overflow rejected.
	big := make(Program, 9) // 72 bytes > 64
	for i := range big {
		big[i] = Command{Op: OpTogglePin}
	}
	if err := mem.Preload(2, big); err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("overflow err = %v", err)
	}
	if err := mem.Preload(3, nil); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := NewMemory(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestProgramBytesCANPayload(t *testing.T) {
	p := Program{{Op: OpCANSend, Data: make([]byte, 9)}}
	// 8 bytes command word + 16 bytes payload (9 rounded to 2 words).
	if p.Bytes() != 24 {
		t.Errorf("bytes = %d, want 24", p.Bytes())
	}
}

func TestExactStartTimes(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, SkipMissing)
	mem.Preload(0, Program{{Op: OpSetPin, Pin: 0}, {Op: OpWait, Arg: 48}, {Op: OpClearPin, Pin: 0}})
	p.EnableTask(0)
	if err := p.LoadTable([]TableEntry{
		{Task: 0, Job: 0, Start: 100, Budget: 50},
		{Task: 0, Job: 1, Start: 500, Budget: 50},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(0, 1); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	ex := p.Executions()
	if len(ex) != 2 {
		t.Fatalf("executions = %v", ex)
	}
	if ex[0].Start != 100 || ex[1].Start != 500 {
		t.Errorf("starts = %d, %d; want 100, 500", ex[0].Start, ex[1].Start)
	}
	// Pin edges: rising exactly at start (+1 cycle for SET), falling after
	// the wait.
	edges := bank.EdgesFor(0)
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0].At != 100 || edges[1].At != 100+1+48 {
		t.Errorf("first pulse edges at %d, %d", edges[0].At, edges[1].At)
	}
	if len(p.Faults()) != 0 {
		t.Errorf("faults = %v", p.Faults())
	}
}

func TestMissingRequestSkipsJob(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, SkipMissing)
	mem.Preload(0, Program{{Op: OpTogglePin, Pin: 1}})
	mem.Preload(1, Program{{Op: OpTogglePin, Pin: 2}})
	p.EnableTask(1) // task 0 never requested
	p.LoadTable([]TableEntry{
		{Task: 0, Job: 0, Start: 100, Budget: 10},
		{Task: 1, Job: 0, Start: 200, Budget: 10},
	})
	p.Start(0, 1)
	k.Run(0)
	faults := p.Faults()
	if len(faults) != 1 || faults[0].Kind != FaultMissingRequest || faults[0].Task != 0 {
		t.Fatalf("faults = %v", faults)
	}
	// Task 1 executed exactly on time despite task 0's fault.
	if len(bank.EdgesFor(2)) != 1 || bank.EdgesFor(2)[0].At != 200 {
		t.Errorf("task 1 edges = %v", bank.EdgesFor(2))
	}
	if len(bank.EdgesFor(1)) != 0 {
		t.Error("skipped job touched the device")
	}
}

func TestExecuteAlwaysPolicy(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, ExecuteAlways)
	mem.Preload(0, Program{{Op: OpTogglePin, Pin: 1}})
	p.LoadTable([]TableEntry{{Task: 0, Job: 0, Start: 50, Budget: 10}})
	p.Start(0, 1)
	k.Run(0)
	if len(p.Faults()) != 0 {
		t.Fatalf("faults = %v", p.Faults())
	}
	if len(bank.EdgesFor(1)) != 1 {
		t.Error("job should execute without a request under ExecuteAlways")
	}
}

func TestMissingProgramFault(t *testing.T) {
	k, _, _, p := newGPIOProc(t, ExecuteAlways)
	p.LoadTable([]TableEntry{{Task: 7, Job: 0, Start: 10, Budget: 5}})
	p.Start(0, 1)
	k.Run(0)
	f := p.Faults()
	if len(f) != 1 || f[0].Kind != FaultMissingProgram {
		t.Fatalf("faults = %v", f)
	}
}

func TestBudgetOverrunTruncates(t *testing.T) {
	k, mem, _, p := newGPIOProc(t, ExecuteAlways)
	mem.Preload(0, Program{{Op: OpWait, Arg: 100}, {Op: OpTogglePin, Pin: 0}})
	p.LoadTable([]TableEntry{{Task: 0, Job: 0, Start: 0, Budget: 20}})
	p.Start(0, 1)
	k.Run(0)
	f := p.Faults()
	if len(f) != 1 || f[0].Kind != FaultBudgetOverrun {
		t.Fatalf("faults = %v", f)
	}
	ex := p.Executions()
	if len(ex) != 1 || ex[0].End != 20 {
		t.Fatalf("execution truncated at %d, want 20", ex[0].End)
	}
}

func TestExecErrorFault(t *testing.T) {
	k, mem, _, p := newGPIOProc(t, ExecuteAlways)
	mem.Preload(0, Program{{Op: OpSetPin, Pin: 99}}) // no such pin
	p.LoadTable([]TableEntry{{Task: 0, Job: 0, Start: 0, Budget: 10}})
	p.Start(0, 1)
	k.Run(0)
	f := p.Faults()
	if len(f) != 1 || f[0].Kind != FaultExecError || f[0].Err == nil {
		t.Fatalf("faults = %v", f)
	}
}

func TestResponseChannel(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, ExecuteAlways)
	bank.Set(3, true, 0)
	mem.Preload(0, Program{{Op: OpReadPin, Pin: 3}})
	p.LoadTable([]TableEntry{{Task: 0, Job: 0, Start: 40, Budget: 10}})
	var got []Response
	p.OnResponse(func(r Response) { got = append(got, r) })
	p.Start(0, 1)
	k.Run(0)
	if len(got) != 1 || got[0].Value != 1 || got[0].Task != 0 {
		t.Fatalf("responses = %v", got)
	}
}

func TestTableRejectsOverlap(t *testing.T) {
	_, _, _, p := newGPIOProc(t, SkipMissing)
	err := p.LoadTable([]TableEntry{
		{Task: 0, Job: 0, Start: 0, Budget: 20},
		{Task: 1, Job: 0, Start: 10, Budget: 20},
	})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v", err)
	}
}

func TestHyperperiodRepetition(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, ExecuteAlways)
	mem.Preload(0, Program{{Op: OpTogglePin, Pin: 0}})
	p.LoadTable([]TableEntry{{Task: 0, Job: 0, Start: 10, Budget: 5}})
	if err := p.Start(1000, 3); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	edges := bank.EdgesFor(0)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	for i, want := range []timing.Cycle{10, 1010, 2010} {
		if edges[i].At != want {
			t.Errorf("repetition %d at %d, want %d", i, edges[i].At, want)
		}
	}
	// Repetition without hyper-period is rejected.
	if err := p.Start(0, 2); err == nil {
		t.Error("repetition with zero hyper-period accepted")
	}
	if err := p.Start(1000, 0); err == nil {
		t.Error("zero periods accepted")
	}
}

func TestTableFromSchedule(t *testing.T) {
	j := taskmodel.Job{
		ID: taskmodel.JobID{Task: 2, J: 1}, Release: 0,
		Deadline: 10000, Ideal: 500, C: 100, Vmax: 2, Vmin: 1,
	}
	s, err := sched.New([]taskmodel.Job{j}, quality.StartTimes{j.ID: 500})
	if err != nil {
		t.Fatal(err)
	}
	entries := TableFromSchedule(s, timing.Clock100MHz)
	if len(entries) != 1 {
		t.Fatal("no entries")
	}
	if entries[0].Start != 50000 || entries[0].Budget != 10000 {
		t.Errorf("entry = %+v", entries[0])
	}
	if entries[0].Task != 2 || entries[0].Job != 1 {
		t.Errorf("entry identity = %+v", entries[0])
	}
}

func TestControllerDeploy(t *testing.T) {
	var k sim.Kernel
	c := New()
	bank0, _ := device.NewGPIOBank("g0", 4)
	bank1, _ := device.NewGPIOBank("g1", 4)
	if _, err := c.AddProcessor(&k, 0, GPIOExecutor{Bank: bank0}, ExecuteAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddProcessor(&k, 1, GPIOExecutor{Bank: bank1}, ExecuteAlways); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddProcessor(&k, 0, GPIOExecutor{Bank: bank0}, ExecuteAlways); err == nil {
		t.Error("duplicate processor accepted")
	}

	mkJob := func(task int, dev taskmodel.DeviceID, ideal timing.Time) taskmodel.Job {
		return taskmodel.Job{
			ID: taskmodel.JobID{Task: task, J: 0}, Release: 0, Deadline: 10000,
			Ideal: ideal, C: 10, Device: dev, Vmax: 2, Vmin: 1,
		}
	}
	j0, j1 := mkJob(0, 0, 100), mkJob(1, 1, 200)
	s0, err := sched.New([]taskmodel.Job{j0}, quality.StartTimes{j0.ID: 100})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sched.New([]taskmodel.Job{j1}, quality.StartTimes{j1.ID: 200})
	if err != nil {
		t.Fatal(err)
	}
	programs := map[int]Program{
		0: {{Op: OpTogglePin, Pin: 0}},
		1: {{Op: OpTogglePin, Pin: 0}},
	}
	err = c.Deploy(programs, sched.DeviceSchedules{0: s0, 1: s1},
		timing.Clock100MHz, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	if len(bank0.EdgesFor(0)) != 1 || bank0.EdgesFor(0)[0].At != 100*100 {
		t.Errorf("device 0 edges = %v", bank0.EdgesFor(0))
	}
	if len(bank1.EdgesFor(0)) != 1 || bank1.EdgesFor(0)[0].At != 200*100 {
		t.Errorf("device 1 edges = %v", bank1.EdgesFor(0))
	}
	// Deploy to a device without a processor fails.
	err = c.Deploy(map[int]Program{}, sched.DeviceSchedules{9: s0}, timing.Clock100MHz, 10000, 1)
	if err == nil {
		t.Error("deploy to missing processor accepted")
	}
}

func TestUARTSPICANExecutors(t *testing.T) {
	u, _ := device.NewUART("u", 10)
	s, _ := device.NewSPI("s", 8, 2)
	cn, _ := device.NewCAN("c", 3)

	busy, _, err := (UARTExecutor{Dev: u}).Exec(Command{Op: OpUARTSend, Arg: 'A'}, 0)
	if err != nil || busy != 100 {
		t.Errorf("UART busy = %d err = %v", busy, err)
	}
	busy, _, err = (SPIExecutor{Dev: s}).Exec(Command{Op: OpSPIXfer, Arg: 0xFF}, 0)
	if err != nil || busy != 16 {
		t.Errorf("SPI busy = %d err = %v", busy, err)
	}
	busy, _, err = (CANExecutor{Dev: cn}).Exec(Command{Op: OpCANSend, Data: []byte{1}}, 0)
	if err != nil || busy <= 0 {
		t.Errorf("CAN busy = %d err = %v", busy, err)
	}
	// Wrong opcodes are rejected by each executor.
	if _, _, err := (UARTExecutor{Dev: u}).Exec(Command{Op: OpSetPin}, 0); err == nil {
		t.Error("UART accepted a pin op")
	}
	if _, _, err := (SPIExecutor{Dev: s}).Exec(Command{Op: OpUARTSend}, 0); err == nil {
		t.Error("SPI accepted a UART op")
	}
	if _, _, err := (CANExecutor{Dev: cn}).Exec(Command{Op: OpReadPin}, 0); err == nil {
		t.Error("CAN accepted a read op")
	}
	// All executors accept OpWait.
	for _, ex := range []Executor{UARTExecutor{Dev: u}, SPIExecutor{Dev: s}, CANExecutor{Dev: cn}} {
		busy, _, err := ex.Exec(Command{Op: OpWait, Arg: 7}, 0)
		if err != nil || busy != 7 {
			t.Errorf("%s wait: busy=%d err=%v", ex.DeviceName(), busy, err)
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpSetPin: "SET", OpClearPin: "CLR", OpTogglePin: "TGL", OpReadPin: "RD",
		OpWait: "WAIT", OpUARTSend: "UART", OpSPIXfer: "SPI", OpCANSend: "CAN",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if Opcode(99).String() != "Opcode(99)" {
		t.Error("unknown opcode string")
	}
	for k, want := range map[FaultKind]string{
		FaultMissingRequest: "missing-request", FaultMissingProgram: "missing-program",
		FaultBudgetOverrun: "budget-overrun", FaultExecError: "exec-error",
	} {
		if k.String() != want {
			t.Errorf("fault kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
	if FaultKind(9).String() != "FaultKind(9)" {
		t.Error("unknown fault kind string")
	}
}

// Section III-C: "In the case where jobs execute less than their WCETs,
// the scheduling decisions can be preserved by making the processor idle
// until the execution time of the next task arrives." The scheduling table
// triggers on absolute instants, so an early completion must leave every
// later start untouched.
func TestEarlyCompletionPreservesSchedule(t *testing.T) {
	k, mem, bank, p := newGPIOProc(t, ExecuteAlways)
	// Task 0's program finishes after 10 cycles although its budget is 50.
	mem.Preload(0, Program{{Op: OpTogglePin, Pin: 0}, {Op: OpWait, Arg: 9}})
	mem.Preload(1, Program{{Op: OpTogglePin, Pin: 1}})
	p.LoadTable([]TableEntry{
		{Task: 0, Job: 0, Start: 100, Budget: 50},
		{Task: 1, Job: 0, Start: 150, Budget: 10},
	})
	p.Start(0, 1)
	k.Run(0)
	ex := p.Executions()
	if len(ex) != 2 {
		t.Fatalf("executions = %v", ex)
	}
	if ex[0].End != 110 {
		t.Errorf("task 0 finished at %d, want 110 (early)", ex[0].End)
	}
	// Task 1 still starts exactly at its table instant, not at the early
	// completion.
	if ex[1].Start != 150 {
		t.Errorf("task 1 started at %d, want 150 (idle inserted)", ex[1].Start)
	}
	if es := bank.EdgesFor(1); len(es) != 1 || es[0].At != 150 {
		t.Errorf("task 1 edge = %v", es)
	}
}

// Property: the controller executes ANY valid offline schedule exactly —
// for random feasible schedules, every execution starts at its table cycle
// and the device trace reproduces the schedule. This is the paper's core
// hardware guarantee (Phase 3).
func TestControllerExecutesArbitrarySchedulesExactly(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		// Build a random non-overlapping table.
		var entries []TableEntry
		cursor := timing.Cycle(rng.Intn(50))
		for i := 0; i < n; i++ {
			budget := timing.Cycle(rng.Intn(40) + 2)
			entries = append(entries, TableEntry{Task: i, Job: 0, Start: cursor, Budget: budget})
			cursor += budget + timing.Cycle(rng.Intn(30))
		}
		var k sim.Kernel
		mem, err := NewMemory(1 << 16)
		if err != nil {
			return false
		}
		bank, err := device.NewGPIOBank("g", 32)
		if err != nil {
			return false
		}
		p, err := NewProcessor(&k, mem, GPIOExecutor{Bank: bank}, ExecuteAlways)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			// Each program toggles its pin then busy-waits within budget.
			wait := uint64(entries[i].Budget) - 2
			mem.Preload(i, Program{
				{Op: OpTogglePin, Pin: device.Pin(i % 32)},
				{Op: OpWait, Arg: wait},
			})
		}
		if err := p.LoadTable(entries); err != nil {
			return false
		}
		if err := p.Start(0, 1); err != nil {
			return false
		}
		k.Run(0)
		if len(p.Faults()) != 0 {
			return false
		}
		ex := p.Executions()
		if len(ex) != n {
			return false
		}
		for i, e := range ex {
			if e.Start != entries[i].Start {
				return false
			}
			if e.End > entries[i].Start+entries[i].Budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
